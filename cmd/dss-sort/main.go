// Command dss-sort sorts newline-separated strings with one of the
// paper's distributed algorithms on a simulated p-PE machine, writing the
// sorted lines to stdout and the run statistics to stderr.
//
// Usage:
//
//	dss-sort -algo PDMS -p 8 [-lcp] [-validate] < input.txt > sorted.txt
//	dss-sort -algo MS -p 16 -in big.txt -out sorted.txt
//	dss-sort -algo PDMS -p 4 -transport tcp < input.txt > sorted.txt
//
// With -transport tcp the PEs exchange messages over real loopback TCP
// sockets instead of in-process mailboxes (output and statistics are
// identical — accounting happens above the transport); -peers pins the
// bind addresses and sets p. For one PE per OS process, see dss-worker.
//
// The Step-3 string exchange is split-phase by default: each PE decodes
// incoming runs as they arrive, overlapping communication with compute
// (reported as the overlap statistic). -exchange blocking restores the
// bulk-synchronous seam; the deterministic statistics are identical in
// both modes. -merge streaming goes further: buckets ship as chunked
// frames feeding incremental run readers and the Step-4 loser tree
// starts on partially decoded runs, so merging begins before the last
// frame arrives (the "merge lead" line); output and deterministic
// statistics stay bit-identical to the eager merge.
//
// -codec decorates the transport with a wire codec (flate, or the
// LCP-front-coding-aware lcp codec) that compresses frames above
// -codec-min bytes before they cross the fabric. The model statistics
// (model time, bytes sent) are billed on the raw payloads and stay
// bit-identical under every codec; the "wire bytes" line reports what
// actually crossed the wire. All tuning flags (-algo, -seed,
// -oversampling, -charsample, -eps, -tiebreak, -randomsample, -exchange,
// -merge, -merge-chunk, -codec, -codec-min, -validate, -mem-budget,
// -spill-dir, -trace, -trace-cap, -chaos, -chaos-seed, -net-retries,
// -net-timeout) are shared verbatim with dss-worker.
//
// -chaos LEVEL injects deterministic faults (frame delays, reordering
// within delivery bounds, and at the "drop" level mid-run connection
// kills with partial final writes) under the codec, seeded by
// -chaos-seed. With -transport tcp the dropped connections exercise the
// backend's reconnect-with-resend path; output and model statistics must
// be — and are pinned by tests to be — bit-identical to an undisturbed
// run, and the stderr summary's "net:" line reports the reconnect and
// resend volume. -net-retries and -net-timeout bound the recovery.
//
// Observability: -trace FILE writes a Chrome trace-event timeline of the
// run (load in ui.perfetto.dev), -debug-addr HOST:PORT serves pprof,
// expvar run gauges and live trace snapshots over HTTP, and
// -cpuprofile/-memprofile write runtime/pprof profiles. See the README's
// "Observability" section.
//
// -mem-budget engages the bounded-memory out-of-core pipeline: each PE
// spills Step-3 runs to page files once its metered arenas exceed the
// budget and streams its merged fragment to a sorted-run file, which
// dss-sort then copies to the output line by line (PDMS prefixes are
// resolved to full strings through their recorded origins). The sorted
// output bytes are identical to an unbudgeted run; the stderr summary
// gains a "spill:" line with the bytes written/read back and the peak
// metered footprint.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dss/internal/debugserve"
	"dss/internal/input"
	"dss/internal/profiling"
	"dss/stringsort"
)

func main() {
	tuning := stringsort.RegisterTuningFlags(flag.CommandLine)
	profiling.RegisterFlags(flag.CommandLine)
	p := flag.Int("p", 4, "number of simulated PEs")
	inPath := flag.String("in", "", "input file (default stdin)")
	outPath := flag.String("out", "", "output file (default stdout)")
	printLCP := flag.Bool("lcp", false, "prefix each output line with its LCP value")
	transportName := flag.String("transport", "local", "message substrate: local (in-process mailboxes) or tcp (real sockets)")
	peersFlag := flag.String("peers", "", "comma-separated host:port bind addresses for the tcp transport, one per PE (sets p; default automatic loopback ports)")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar run gauges and live trace snapshots on this host:port (port 0 picks one; the bound address is printed)")
	flag.Parse()

	cfg := stringsort.Config{Reconstruct: true}
	if err := tuning.Apply(&cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiling.Exit(2)
	}
	tr, err := stringsort.ParseTransport(*transportName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiling.Exit(2)
	}
	var peers []string
	if *peersFlag != "" {
		if tr != stringsort.TransportTCP {
			fmt.Fprintln(os.Stderr, "dss-sort: -peers requires -transport tcp")
			profiling.Exit(2)
		}
		peers = stringsort.ParsePeers(*peersFlag)
		*p = len(peers)
	}
	if *debugAddr != "" {
		bound, err := debugserve.Start(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			profiling.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dss-sort: debug endpoint listening on http://%s/debug/pprof/\n", bound)
	}
	if err := profiling.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiling.Exit(1)
	}
	defer profiling.Stop()

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			profiling.Exit(1)
		}
		defer f.Close()
		in = f
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			profiling.Exit(1)
		}
		defer f.Close()
		out = f
	}

	// Distribute lines round-robin over the PEs, like the paper's inputs.
	// The chunked reader bounds the temporary read buffer and backs each
	// chunk's lines with one arena instead of one allocation per line.
	inputs := make([][][]byte, *p)
	lr := input.NewLineReader(in, 0)
	n := 0
	for {
		chunk, err := lr.Next()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			profiling.Exit(1)
		}
		if chunk == nil {
			break
		}
		for _, line := range chunk {
			inputs[n%*p] = append(inputs[n%*p], line)
			n++
		}
	}

	cfg.Transport = tr
	cfg.TCPPeers = peers
	res, err := stringsort.Sort(inputs, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiling.Exit(1)
	}

	w := bufio.NewWriter(out)
	defer w.Flush()
	for _, pe := range res.PEs {
		if pe.RunFile != "" {
			// Budget mode: the fragment lives in a sorted-run file; stream
			// it to the output. PDMS run files hold distinguishing prefixes
			// with origins — resolve each to its full input string, exactly
			// like Reconstruct does for in-RAM runs (so -lcp is moot there,
			// as prefix LCPs do not apply to full strings).
			if err := writeRunFile(w, pe.RunFile, res.PrefixOnly, inputs, *printLCP); err != nil {
				fmt.Fprintln(os.Stderr, err)
				profiling.Exit(1)
			}
			continue
		}
		for i, s := range pe.Strings {
			if *printLCP && pe.LCPs != nil {
				fmt.Fprintf(w, "%d\t", pe.LCPs[i])
			}
			w.Write(s)
			w.WriteByte('\n')
		}
	}
	if len(res.PEs) > 0 && res.PEs[0].RunFile != "" {
		os.RemoveAll(filepath.Dir(res.PEs[0].RunFile))
	}

	res.Stats.WriteSummary(os.Stderr, cfg.Algorithm, fmt.Sprintf("%d PEs", *p), n)
}

// writeRunFile streams one PE's sorted-run file to the output. With
// prefixOnly (PDMS under a budget) each item is a distinguishing prefix
// carrying its origin, which indexes the still-resident input fragments;
// the full string is written instead of the prefix.
func writeRunFile(w *bufio.Writer, path string, prefixOnly bool, inputs [][][]byte, printLCP bool) error {
	rf, err := stringsort.OpenRun(path)
	if err != nil {
		return err
	}
	defer rf.Close()
	for {
		s, lcp, origin, ok, err := rf.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if prefixOnly && rf.HasOrigins() {
			s = inputs[origin.PE][origin.Index]
		} else if printLCP && rf.HasLCP() {
			fmt.Fprintf(w, "%d\t", lcp)
		}
		if _, err := w.Write(s); err != nil {
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
}
