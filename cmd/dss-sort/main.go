// Command dss-sort sorts newline-separated strings with one of the
// paper's distributed algorithms on a simulated p-PE machine, writing the
// sorted lines to stdout and the run statistics to stderr.
//
// Usage:
//
//	dss-sort -algo PDMS -p 8 [-lcp] [-validate] < input.txt > sorted.txt
//	dss-sort -algo MS -p 16 -in big.txt -out sorted.txt
//	dss-sort -algo PDMS -p 4 -transport tcp < input.txt > sorted.txt
//
// With -transport tcp the PEs exchange messages over real loopback TCP
// sockets instead of in-process mailboxes (output and statistics are
// identical — accounting happens above the transport); -peers pins the
// bind addresses and sets p. For one PE per OS process, see dss-worker.
//
// The Step-3 string exchange is split-phase by default: each PE decodes
// incoming runs as they arrive, overlapping communication with compute
// (reported as the overlap statistic). -exchange blocking restores the
// bulk-synchronous seam; the deterministic statistics are identical in
// both modes. -merge streaming goes further: buckets ship as chunked
// frames feeding incremental run readers and the Step-4 loser tree
// starts on partially decoded runs, so merging begins before the last
// frame arrives (the "merge lead" line); output and deterministic
// statistics stay bit-identical to the eager merge.
//
// -codec decorates the transport with a wire codec (flate, or the
// LCP-front-coding-aware lcp codec) that compresses frames above
// -codec-min bytes before they cross the fabric. The model statistics
// (model time, bytes sent) are billed on the raw payloads and stay
// bit-identical under every codec; the "wire bytes" line reports what
// actually crossed the wire. All tuning flags (-algo, -seed,
// -oversampling, -charsample, -eps, -tiebreak, -randomsample, -exchange,
// -merge, -merge-chunk, -codec, -codec-min, -validate) are shared
// verbatim with dss-worker.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"dss/stringsort"
)

func main() {
	tuning := stringsort.RegisterTuningFlags(flag.CommandLine)
	p := flag.Int("p", 4, "number of simulated PEs")
	inPath := flag.String("in", "", "input file (default stdin)")
	outPath := flag.String("out", "", "output file (default stdout)")
	printLCP := flag.Bool("lcp", false, "prefix each output line with its LCP value")
	transportName := flag.String("transport", "local", "message substrate: local (in-process mailboxes) or tcp (real sockets)")
	peersFlag := flag.String("peers", "", "comma-separated host:port bind addresses for the tcp transport, one per PE (sets p; default automatic loopback ports)")
	flag.Parse()

	cfg := stringsort.Config{Reconstruct: true}
	if err := tuning.Apply(&cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tr, err := stringsort.ParseTransport(*transportName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var peers []string
	if *peersFlag != "" {
		if tr != stringsort.TransportTCP {
			fmt.Fprintln(os.Stderr, "dss-sort: -peers requires -transport tcp")
			os.Exit(2)
		}
		peers = stringsort.ParsePeers(*peersFlag)
		*p = len(peers)
	}

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	// Distribute lines round-robin over the PEs, like the paper's inputs.
	inputs := make([][][]byte, *p)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	n := 0
	for scanner.Scan() {
		line := append([]byte(nil), scanner.Bytes()...)
		inputs[n%*p] = append(inputs[n%*p], line)
		n++
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg.Transport = tr
	cfg.TCPPeers = peers
	res, err := stringsort.Sort(inputs, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := bufio.NewWriter(out)
	defer w.Flush()
	for _, pe := range res.PEs {
		for i, s := range pe.Strings {
			if *printLCP && pe.LCPs != nil {
				fmt.Fprintf(w, "%d\t", pe.LCPs[i])
			}
			w.Write(s)
			w.WriteByte('\n')
		}
	}

	res.Stats.WriteSummary(os.Stderr, cfg.Algorithm, fmt.Sprintf("%d PEs", *p), n)
}
