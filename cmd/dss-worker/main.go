// Command dss-worker runs ONE processing element of a distributed string
// sort as an OS process, communicating with its peers over TCP. Launch p
// workers — on one host or many — with the same peer table and input, and
// together they execute a real distributed sort: rank r's output file holds
// the r-th fragment of the globally sorted sequence, so concatenating the
// fragments in rank order yields exactly what `dss-sort` produces in a
// single process on the same input and seed (identical statistics too —
// byte accounting happens above the transport).
//
// Localhost example (4 workers, PDMS):
//
//	PEERS=127.0.0.1:9400,127.0.0.1:9401,127.0.0.1:9402,127.0.0.1:9403
//	for r in 0 1 2 3; do
//	  dss-worker -rank $r -peers $PEERS -algo PDMS -in input.txt -out sorted.$r &
//	done
//	wait
//	cat sorted.0 sorted.1 sorted.2 sorted.3 > sorted.txt
//
// Every worker reads the full input and keeps the lines of its own rank
// (round-robin by line number, the same distribution dss-sort uses); on a
// cluster, ship the input file to every host or place it on a shared
// filesystem.
//
// Flag parity with dss-sort: every tuning flag of dss-sort (-algo, -seed,
// -oversampling, -charsample, -eps, -tiebreak, -randomsample, -exchange,
// -merge, -merge-chunk, -codec, -codec-min, -validate, -mem-budget,
// -spill-dir, -trace, -trace-cap, -chaos, -chaos-seed, -net-retries,
// -net-timeout) is accepted here with identical semantics — both binaries
// register the same stringsort.RegisterTuningFlags set. -net-retries and
// -net-timeout shape the worker's reconnect-with-resend behavior when an
// established peer connection drops mid-run; the run's stats report the
// recovery volume on the `net:` line.
// With -mem-budget the worker runs the bounded-memory out-of-core
// pipeline: it spills Step-3 runs to page files under -spill-dir and
// streams its sorted fragment from a run file to -out instead of
// materializing it. One difference to dss-sort: a budgeted PDMS worker
// writes the distinguishing prefixes themselves (with -lcp available),
// since resolving an origin that lives on another rank would need the
// whole input resident — exactly what the budget forbids.
// Launch every worker of one job with the same -codec: RunPE decorates the
// endpoint with the wire codec, frames are compressed on the wire, and the
// model statistics stay bit-identical to an uncompressed run. The intentional
// gaps are the machine-assembly flags: dss-worker has no -p (the PE count
// is the length of the -peers table) and no -transport (one worker per OS
// process is by definition the TCP substrate); dss-sort in turn has no
// -rank, -rendezvous or -stats.
//
// Observability: with -trace FILE every worker records its own timeline,
// the buffers are gathered to rank 0 after the run with per-process
// clock-offset estimation, and rank 0 alone writes the single merged
// Chrome trace-event file (one process track per rank). -debug-addr
// serves this worker's own pprof/expvar/live-trace HTTP endpoint; port 0
// works — the bound address is printed at startup, before the
// rendezvous. -cpuprofile/-memprofile write runtime/pprof profiles,
// flushed on every exit path.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dss/internal/debugserve"
	"dss/internal/input"
	"dss/internal/profiling"
	"dss/internal/transport/tcp"
	"dss/stringsort"
)

func main() {
	tuning := stringsort.RegisterTuningFlags(flag.CommandLine)
	profiling.RegisterFlags(flag.CommandLine)
	rank := flag.Int("rank", -1, "this worker's rank in [0, p)")
	peersFlag := flag.String("peers", "", "comma-separated host:port peer table, one entry per rank (identical on all workers; its length is the PE count)")
	inPath := flag.String("in", "", "input file, newline-separated strings (read fully by every worker; required)")
	outPath := flag.String("out", "", "output file for this rank's sorted fragment (default stdout)")
	printLCP := flag.Bool("lcp", false, "prefix each output line with its LCP value")
	rendezvous := flag.Duration("rendezvous", 30*time.Second, "how long to wait for peers to appear")
	statsAll := flag.Bool("stats", false, "print run statistics on every rank (default: rank 0 only)")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar run gauges and live trace snapshots on this host:port (port 0 picks one; the bound address is printed at startup)")
	flag.Parse()

	cfg := stringsort.Config{Reconstruct: true}
	if err := tuning.Apply(&cfg); err != nil {
		fatal(err)
	}
	peers := stringsort.ParsePeers(*peersFlag)
	if len(peers) == 0 {
		fatal(fmt.Errorf("missing -peers"))
	}
	if *rank < 0 || *rank >= len(peers) {
		fatal(fmt.Errorf("-rank %d out of range for %d peers", *rank, len(peers)))
	}
	if *inPath == "" {
		fatal(fmt.Errorf("missing -in (every worker reads the shared input file)"))
	}
	if *debugAddr != "" {
		// Printed BEFORE the rendezvous so a port-0 listener is reachable
		// while the worker is still waiting for its peers.
		bound, err := debugserve.Start(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dss-worker: rank %d debug endpoint listening on http://%s/debug/pprof/\n", *rank, bound)
	}
	if err := profiling.Start(); err != nil {
		fatal(err)
	}
	defer profiling.Stop()

	local, total, err := readFragment(*inPath, *rank, len(peers))
	if err != nil {
		fatal(err)
	}

	ep, err := tcp.ConnectConfig(*rank, peers, tcp.Config{
		RendezvousTimeout: *rendezvous,
		ReconnectTimeout:  cfg.NetTimeout,
		MaxReconnects:     cfg.NetRetries,
	})
	if err != nil {
		fatal(err)
	}

	res, err := stringsort.RunPE(ep, local, cfg)
	if err != nil {
		ep.Close()
		fatal(fmt.Errorf("rank %d: %w", *rank, err))
	}
	// A transport failure swallowed mid-run (reader goroutine death, an
	// exhausted reconnect budget racing teardown) surfaces here: a worker
	// whose connections died must not exit 0 on a complete-looking output.
	if err := ep.Close(); err != nil {
		fatal(fmt.Errorf("rank %d: transport: %w", *rank, err))
	}

	// A truncated fragment must not exit 0: the whole point of the worker
	// is that concatenating the per-rank files yields the sorted sequence,
	// so write errors are checked explicitly rather than deferred away.
	var out io.Writer = os.Stdout
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		outFile = f
		out = f
	}
	w := bufio.NewWriter(out)
	if res.Output.RunFile != "" {
		// Budget mode: stream the sorted-run file to the output, then
		// remove the run directory this rank created.
		if err := writeRunFile(w, res.Output.RunFile, *printLCP); err != nil {
			fatal(fmt.Errorf("rank %d: %w", *rank, err))
		}
		os.RemoveAll(filepath.Dir(res.Output.RunFile))
	}
	for i, s := range res.Output.Strings {
		if *printLCP && res.Output.LCPs != nil {
			fmt.Fprintf(w, "%d\t", res.Output.LCPs[i])
		}
		w.Write(s)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		fatal(fmt.Errorf("rank %d: writing output: %w", *rank, err))
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(fmt.Errorf("rank %d: closing %s: %w", *rank, *outPath, err))
		}
	}

	if *rank == 0 || *statsAll {
		res.Stats.WriteSummary(os.Stderr, cfg.Algorithm,
			fmt.Sprintf("%d worker processes", len(peers)), total)
	}
}

// readFragment reads the shared input in bounded chunks and keeps the
// lines of the given rank, distributed round-robin by line number exactly
// like dss-sort. Kept lines are copied out of the chunk arena so the other
// ranks' share of each chunk can be freed immediately.
func readFragment(path string, rank, p int) (local [][]byte, total int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	lr := input.NewLineReader(f, 0)
	for {
		chunk, err := lr.Next()
		if err != nil {
			return nil, 0, err
		}
		if chunk == nil {
			return local, total, nil
		}
		for _, line := range chunk {
			if total%p == rank {
				local = append(local, append([]byte(nil), line...))
			}
			total++
		}
	}
}

// writeRunFile streams this rank's sorted-run file to the output line by
// line (LCP column included when asked for and present).
func writeRunFile(w *bufio.Writer, path string, printLCP bool) error {
	rf, err := stringsort.OpenRun(path)
	if err != nil {
		return err
	}
	defer rf.Close()
	for {
		s, lcp, _, ok, err := rf.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if printLCP && rf.HasLCP() {
			fmt.Fprintf(w, "%d\t", lcp)
		}
		if _, err := w.Write(s); err != nil {
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	profiling.Exit(1)
}
