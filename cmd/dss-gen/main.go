// Command dss-gen writes the synthetic evaluation workloads of Section VII
// to stdout (or a file), one string per line, for use with dss-sort or
// external tools.
//
// Usage:
//
//	dss-gen -kind dn -ratio 0.5 -n 100000 -len 100 > dn05.txt
//	dss-gen -kind cc -n 50000 > cc.txt
//	dss-gen -kind dna -n 50000 > dna.txt
//	dss-gen -kind suffix -n 20000 > suffix.txt
//	dss-gen -kind skew -ratio 0.5 -n 100000 -len 100 > skew.txt
//
// By default the whole instance is materialized in memory before writing.
// -chunk k switches to the streaming mode of the out-of-core pipeline: the
// instance is generated and written in batches of at most k strings, so
// peak memory is one batch regardless of -n. A chunked run emits the
// generator's p=ceil(n/k) instance (every generator is a deterministic
// function of (seed, pe, p)); for the strided generators (dn, skew,
// suffix) that is the same global string set as the monolithic run, merely
// emitted in strided order — for cc, dna and random it is a different (but
// equally distributed) sample. -stats in chunked mode reports the
// streaming aggregates (strings, chars, max len); the distinguishing
// prefix total D needs the whole instance sorted and is only computed in
// the monolithic mode.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"dss/internal/input"
	"dss/internal/strutil"
)

func main() {
	kind := flag.String("kind", "dn", "workload: dn, skew, cc, dna, suffix, random")
	n := flag.Int("n", 10000, "total number of strings (text length for suffix)")
	length := flag.Int("len", 100, "string length (dn/skew)")
	ratio := flag.Float64("ratio", 0.5, "D/N ratio (dn/skew)")
	seed := flag.Int64("seed", 1, "random seed")
	outPath := flag.String("out", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print instance statistics to stderr")
	chunk := flag.Int("chunk", 0, "streaming mode: generate and write in batches of at most this many strings (0 = materialize everything; bounds peak memory to one batch)")
	flag.Parse()

	// Number of generation batches: 1 materializes the whole instance. The
	// per-batch share must be uniform (the generators take a per-PE count),
	// so -n is rounded up to a multiple of -chunk in streaming mode.
	batches := 1
	perBatch := *n
	if *chunk > 0 && *chunk < *n {
		batches = (*n + *chunk - 1) / *chunk
		perBatch = *chunk
		if batches*perBatch != *n {
			fmt.Fprintf(os.Stderr, "dss-gen: -chunk %d does not divide -n %d; generating %d strings\n",
				*chunk, *n, batches*perBatch)
		}
	}

	var gen input.Generator
	switch *kind {
	case "dn":
		gen = func(pe, p int) [][]byte {
			return input.DN(input.DNConfig{StringsPerPE: perBatch, Length: *length, Ratio: *ratio, Seed: *seed}, pe, p)
		}
	case "skew":
		gen = func(pe, p int) [][]byte {
			return input.DNSkewed(input.DNConfig{StringsPerPE: perBatch, Length: *length, Ratio: *ratio, Seed: *seed}, pe, p)
		}
	case "cc":
		gen = func(pe, p int) [][]byte {
			return input.CommonCrawlLike(input.CCConfig{LinesPerPE: perBatch, Seed: *seed}, pe, p)
		}
	case "dna":
		gen = func(pe, p int) [][]byte {
			return input.DNAReads(input.DNAConfig{ReadsPerPE: perBatch, Seed: *seed}, pe, p)
		}
	case "suffix":
		gen = func(pe, p int) [][]byte {
			return input.SuffixInstance(input.SuffixConfig{TextLen: batches * perBatch, Seed: *seed}, pe, p)
		}
	case "random":
		gen = func(pe, p int) [][]byte {
			return input.Random(perBatch, *length, 26, pe, p, *seed)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -kind %q\n", *kind)
		os.Exit(2)
	}

	var out io.Writer = os.Stdout
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		outFile = f
		out = f
	}
	w := bufio.NewWriter(out)

	// Streaming aggregates (valid in both modes); D only when materialized.
	var count, maxLen int
	var chars, d int64

	emit := func(ss [][]byte) error {
		if *stats {
			count += len(ss)
			chars += strutil.TotalLen(ss)
			if m := strutil.MaxLen(ss); m > maxLen {
				maxLen = m
			}
			if batches == 1 {
				d = strutil.TotalD(ss)
			}
		}
		for _, s := range ss {
			if _, err := w.Write(s); err != nil {
				return err
			}
			if err := w.WriteByte('\n'); err != nil {
				return err
			}
		}
		return nil
	}
	if err := input.Batches(gen, batches, emit); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "strings:  %d\n", count)
		fmt.Fprintf(os.Stderr, "chars:    %d (avg %.1f per string)\n", chars, float64(chars)/float64(count))
		if batches == 1 {
			fmt.Fprintf(os.Stderr, "D:        %d\n", d)
			fmt.Fprintf(os.Stderr, "D/N:      %.4f\n", float64(d)/float64(chars))
		} else {
			fmt.Fprintf(os.Stderr, "D:        (not computed in -chunk mode)\n")
		}
		fmt.Fprintf(os.Stderr, "max len:  %d\n", maxLen)
	}
}
