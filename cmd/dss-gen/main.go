// Command dss-gen writes the synthetic evaluation workloads of Section VII
// to stdout (or a file), one string per line, for use with dss-sort or
// external tools.
//
// Usage:
//
//	dss-gen -kind dn -ratio 0.5 -n 100000 -len 100 > dn05.txt
//	dss-gen -kind cc -n 50000 > cc.txt
//	dss-gen -kind dna -n 50000 > dna.txt
//	dss-gen -kind suffix -n 20000 > suffix.txt
//	dss-gen -kind skew -ratio 0.5 -n 100000 -len 100 > skew.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"dss/internal/input"
	"dss/internal/strutil"
)

func main() {
	kind := flag.String("kind", "dn", "workload: dn, skew, cc, dna, suffix, random")
	n := flag.Int("n", 10000, "total number of strings (text length for suffix)")
	length := flag.Int("len", 100, "string length (dn/skew)")
	ratio := flag.Float64("ratio", 0.5, "D/N ratio (dn/skew)")
	seed := flag.Int64("seed", 1, "random seed")
	outPath := flag.String("out", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print instance statistics to stderr")
	flag.Parse()

	var ss [][]byte
	switch *kind {
	case "dn":
		ss = input.DN(input.DNConfig{StringsPerPE: *n, Length: *length, Ratio: *ratio, Seed: *seed}, 0, 1)
	case "skew":
		ss = input.DNSkewed(input.DNConfig{StringsPerPE: *n, Length: *length, Ratio: *ratio, Seed: *seed}, 0, 1)
	case "cc":
		ss = input.CommonCrawlLike(input.CCConfig{LinesPerPE: *n, Seed: *seed}, 0, 1)
	case "dna":
		ss = input.DNAReads(input.DNAConfig{ReadsPerPE: *n, Seed: *seed}, 0, 1)
	case "suffix":
		ss = input.SuffixInstance(input.SuffixConfig{TextLen: *n, Seed: *seed}, 0, 1)
	case "random":
		ss = input.Random(*n, *length, 26, 0, 1, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown -kind %q\n", *kind)
		os.Exit(2)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	for _, s := range ss {
		w.Write(s)
		w.WriteByte('\n')
	}

	if *stats {
		d := strutil.TotalD(ss)
		nn := strutil.TotalLen(ss)
		fmt.Fprintf(os.Stderr, "strings:  %d\n", len(ss))
		fmt.Fprintf(os.Stderr, "chars:    %d (avg %.1f per string)\n", nn, float64(nn)/float64(len(ss)))
		fmt.Fprintf(os.Stderr, "D:        %d\n", d)
		fmt.Fprintf(os.Stderr, "D/N:      %.4f\n", float64(d)/float64(nn))
		fmt.Fprintf(os.Stderr, "max len:  %d\n", strutil.MaxLen(ss))
	}
}
