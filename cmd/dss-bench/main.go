// Command dss-bench regenerates the paper's evaluation (Section VII):
// every figure's running-time and bytes-per-string series, plus the
// Section VII-E summary experiments and the ablations called out in
// DESIGN.md. Running times are α-β model times (the machine is simulated;
// see DESIGN.md for the substitution argument); communication volumes are
// exact byte counts.
//
// Usage:
//
//	dss-bench -fig 4            # weak scaling over D/N ratios (Fig. 4)
//	dss-bench -fig 5cc          # strong scaling, COMMONCRAWL-like (Fig. 5 left)
//	dss-bench -fig 5dna         # strong scaling, DNAREADS-like (Fig. 5 right)
//	dss-bench -fig suffix       # Section VII-E suffix instance
//	dss-bench -fig skew         # Section VII-E skewed D/N instance
//	dss-bench -fig ablation-v   # oversampling factor sweep
//	dss-bench -fig ablation-eps # prefix growth factor sweep
//	dss-bench -fig ablation-a2a # all-to-all routing tradeoff
//	dss-bench -fig ablation-tie # duplicate tie-breaking extension
//	dss-bench -fig all          # everything
//
// Scale knobs: -pes, -n (strings per PE, weak scaling), -len, -total
// (strings, strong scaling), -seed. -codec decorates the transport with a
// wire codec and adds the wire-bytes-per-string panel to every figure
// series (the model panels are codec-invariant by construction).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dss/internal/comm"
	"dss/internal/input"
	"dss/internal/profiling"
	"dss/internal/strutil"
	"dss/stringsort"
)

// benchCores is the -cores value: the intra-PE work pool width every
// sort of the harness runs with. The model panels are width-invariant by
// construction; the flag exists so wall-clock behavior can be compared
// across widths on the full figure workloads.
var benchCores int

// benchTraceDir is the -trace value: when set, every sort of the harness
// writes its own Chrome trace-event timeline into this directory. The
// model panels are trace-invariant by construction.
var benchTraceDir string

// benchTraceSeq numbers the trace files in run order (the harness runs
// its cells sequentially), so one -fig all sweep yields a browsable,
// ordered directory of timelines.
var benchTraceSeq int

// benchChaos/benchChaosSeed are the -chaos/-chaos-seed values: every sort
// of the harness runs under the named fault-injection level. The model
// panels are chaos-invariant by construction — the knob exists to confirm
// exactly that on the full figure workloads (and to measure the wall-time
// cost of recovery).
var (
	benchChaos     string
	benchChaosSeed uint64
)

// benchTracePath names the next cell's trace file ("" when -trace is
// unset): NNN-algo-pP.json, e.g. 017-PDMS-p32.json.
func benchTracePath(algo stringsort.Algorithm, p int) string {
	if benchTraceDir == "" {
		return ""
	}
	benchTraceSeq++
	return filepath.Join(benchTraceDir, fmt.Sprintf("%03d-%s-p%d.json", benchTraceSeq, algo, p))
}

type options struct {
	fig    string
	pes    []int
	nPerPE int
	length int
	total  int
	seed   int64
	codec  string
	// streaming selects the streaming Step-4 front-end (-merge). The model
	// panels are merge-invariant by construction — the axis exists so
	// wall-clock and overlap behavior can be compared between the seams on
	// the full figure workloads. Like -codec it applies to the series-based
	// figures.
	streaming bool
}

func main() {
	var opt options
	var pesFlag string
	flag.StringVar(&opt.fig, "fig", "all", "experiment to run: 4, 5cc, 5dna, suffix, skew, ablation-v, ablation-eps, ablation-a2a, ablation-tie, all")
	flag.StringVar(&pesFlag, "pes", "2,4,8,16,32,64", "comma-separated PE counts")
	flag.IntVar(&opt.nPerPE, "n", 1000, "strings per PE (weak scaling)")
	flag.IntVar(&opt.length, "len", 100, "string length for D/N instances")
	flag.IntVar(&opt.total, "total", 30000, "total strings (strong scaling)")
	flag.Int64Var(&opt.seed, "seed", 1, "random seed")
	flag.StringVar(&opt.codec, "codec", "none", "wire codec decorating the transport (none, flate, lcp); adds a wire-bytes panel")
	flag.IntVar(&benchCores, "cores", 0, "intra-PE work pool width per PE (0 = GOMAXPROCS, 1 = sequential; model panels are width-invariant)")
	flag.StringVar(&benchTraceDir, "trace", "", "write one Chrome trace-event JSON timeline per benchmark cell into this directory (created if missing; model panels are trace-invariant)")
	flag.StringVar(&benchChaos, "chaos", "", "fault-injection level for every cell: delay, reorder, drop (empty = off; model panels are chaos-invariant)")
	flag.Uint64Var(&benchChaosSeed, "chaos-seed", 1, "seed of the deterministic chaos schedule")
	mergeMode := flag.String("merge", "eager", "Step-4 front-end: eager or streaming (model panels are merge-invariant)")
	profiling.RegisterFlags(flag.CommandLine)
	flag.Parse()
	var err error
	if opt.streaming, err = stringsort.ParseMergeMode(*mergeMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiling.Exit(2)
	}
	if benchTraceDir != "" {
		if err := os.MkdirAll(benchTraceDir, 0o777); err != nil {
			fmt.Fprintln(os.Stderr, err)
			profiling.Exit(2)
		}
	}
	if err := profiling.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiling.Exit(1)
	}
	defer profiling.Stop()

	for _, part := range strings.Split(pesFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "invalid PE count %q\n", part)
			profiling.Exit(2)
		}
		opt.pes = append(opt.pes, p)
	}

	start := time.Now()
	switch opt.fig {
	case "4":
		figure4(opt)
	case "5cc":
		figure5CC(opt)
	case "5dna":
		figure5DNA(opt)
	case "suffix":
		suffixExperiment(opt)
	case "skew":
		skewExperiment(opt)
	case "ablation-v":
		ablationOversampling(opt)
	case "ablation-eps":
		ablationEps(opt)
	case "ablation-a2a":
		ablationAlltoall(opt)
	case "ablation-tie":
		ablationTieBreak(opt)
	case "all":
		figure4(opt)
		figure5CC(opt)
		figure5DNA(opt)
		suffixExperiment(opt)
		skewExperiment(opt)
		ablationOversampling(opt)
		ablationEps(opt)
		ablationAlltoall(opt)
		ablationTieBreak(opt)
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", opt.fig)
		profiling.Exit(2)
	}
	fmt.Printf("\n(total harness wall time: %v)\n", time.Since(start).Round(time.Millisecond))
}

// runOne sorts the given distributed input and returns its statistics.
func runOne(inputs [][][]byte, algo stringsort.Algorithm, seed uint64, charSampling bool, codec string, streaming bool) stringsort.Stats {
	res, err := stringsort.Sort(inputs, stringsort.Config{
		Algorithm:      algo,
		Seed:           seed,
		Cores:          benchCores,
		CharSampling:   charSampling,
		Codec:          codec,
		StreamingMerge: streaming,
		Trace:          benchTracePath(algo, len(inputs)),
		Chaos:          benchChaos,
		ChaosSeed:      benchChaosSeed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v failed: %v\n", algo, err)
		profiling.Exit(1)
	}
	return res.Stats
}

// series runs all algorithms over the PE axis and prints the two panels of
// the figure — plus, when a wire codec is selected, the wire-bytes and
// compression-ratio panels (what actually crossed the fabric; the model
// panels are codec-invariant), and, unless the pool is forced sequential,
// the measured merge-parallelism panel (PE-summed CPU ms inside the Step-4
// merge over the merge wall ms: a ratio above 1 proves the partitioned
// merge ran in parallel; ≈1 on single-CPU hosts or below the par-merge
// threshold).
func series(title string, pes []int, gen func(pe, p int) [][]byte, seed uint64, algos []stringsort.Algorithm, codec string, streaming bool) {
	fmt.Printf("\n=== %s ===\n", title)
	times := make(map[stringsort.Algorithm][]float64)
	vols := make(map[stringsort.Algorithm][]float64)
	wires := make(map[stringsort.Algorithm][]float64)
	ratios := make(map[stringsort.Algorithm][]float64)
	mergePar := make(map[stringsort.Algorithm][]float64)
	for _, p := range pes {
		inputs := make([][][]byte, p)
		for pe := 0; pe < p; pe++ {
			inputs[pe] = gen(pe, p)
		}
		for _, algo := range algos {
			st := runOne(inputs, algo, seed, false, codec, streaming)
			times[algo] = append(times[algo], st.ModelTime)
			vols[algo] = append(vols[algo], st.BytesPerString)
			wires[algo] = append(wires[algo], st.WireBytesPerString)
			ratios[algo] = append(ratios[algo], st.CompressionRatio)
			par := 1.0
			if st.MergeWallMS > 0 {
				par = st.MergeCPUMS / st.MergeWallMS
			}
			mergePar[algo] = append(mergePar[algo], par)
		}
	}
	printPanel("model time (s)", pes, algos, times, "%9.4f")
	printPanel("bytes sent per string", pes, algos, vols, "%9.1f")
	if codec != "" && codec != "none" {
		printPanel(fmt.Sprintf("wire bytes per string (codec=%s)", codec), pes, algos, wires, "%9.1f")
		printPanel(fmt.Sprintf("compression ratio, wire/raw (codec=%s)", codec), pes, algos, ratios, "%9.3f")
	}
	if benchCores != 1 {
		printPanel("merge CPU / merge wall (measured; >1 = partitioned Step-4 merge engaged)",
			pes, algos, mergePar, "%9.3f")
	}
}

func printPanel(label string, pes []int, algos []stringsort.Algorithm, data map[stringsort.Algorithm][]float64, cellFmt string) {
	fmt.Printf("-- %s --\n", label)
	fmt.Printf("%-6s", "p")
	for _, a := range algos {
		fmt.Printf(" %12s", a)
	}
	fmt.Println()
	for i, p := range pes {
		fmt.Printf("%-6d", p)
		for _, a := range algos {
			fmt.Printf(" %12s", fmt.Sprintf(cellFmt, data[a][i]))
		}
		fmt.Println()
	}
}

// figure4 reproduces the weak scaling experiment over D/N ratios: the top
// row (running time) and bottom row (bytes per string) of Figure 4.
func figure4(opt options) {
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := input.DNConfig{
			StringsPerPE: opt.nPerPE, Length: opt.length, Ratio: r, Seed: opt.seed,
		}
		title := fmt.Sprintf("Figure 4: weak scaling, D/N = %.2f (%d strings × %d chars per PE)",
			r, opt.nPerPE, opt.length)
		series(title, opt.pes, func(pe, p int) [][]byte {
			return input.DN(cfg, pe, p)
		}, uint64(opt.seed), stringsort.Algorithms, opt.codec, opt.streaming)
	}
}

// figure5CC reproduces the COMMONCRAWL strong scaling experiment. The
// paper could not run FKmerge here (it crashes on repeated strings); our
// implementation handles duplicates, so FKmerge is included for reference.
func figure5CC(opt options) {
	title := fmt.Sprintf("Figure 5 (left): strong scaling, COMMONCRAWL-like (%d lines total)", opt.total)
	series(title, opt.pes, func(pe, p int) [][]byte {
		return input.CommonCrawlLike(input.CCConfig{
			LinesPerPE: opt.total / p, Seed: opt.seed,
		}, pe, p)
	}, uint64(opt.seed), stringsort.Algorithms, opt.codec, opt.streaming)
}

// figure5DNA reproduces the DNAREADS strong scaling experiment.
func figure5DNA(opt options) {
	title := fmt.Sprintf("Figure 5 (right): strong scaling, DNAREADS-like (%d reads total)", opt.total)
	series(title, opt.pes, func(pe, p int) [][]byte {
		return input.DNAReads(input.DNAConfig{
			ReadsPerPE: opt.total / p, Seed: opt.seed,
		}, pe, p)
	}, uint64(opt.seed), stringsort.Algorithms, opt.codec, opt.streaming)
}

// suffixExperiment reproduces the Section VII-E suffix instance: all
// suffixes of one text, D/N ≪ 1, where PDMS wins by a large factor.
func suffixExperiment(opt options) {
	textLen := opt.total
	title := fmt.Sprintf("Section VII-E: suffix instance (%d suffixes, D/N ≪ 1)", textLen)
	// Report the actual D/N of the instance.
	all := input.Gather(func(pe int) [][]byte {
		return input.SuffixInstance(input.SuffixConfig{TextLen: textLen, Seed: opt.seed}, pe, 1)
	}, 1)
	dn := float64(strutil.TotalD(all)) / float64(strutil.TotalLen(all))
	fmt.Printf("\n(suffix instance D/N = %.5f)\n", dn)
	series(title, opt.pes, func(pe, p int) [][]byte {
		return input.SuffixInstance(input.SuffixConfig{TextLen: textLen, Seed: opt.seed}, pe, p)
	}, uint64(opt.seed), stringsort.Algorithms, opt.codec, opt.streaming)
}

// skewExperiment reproduces the Section VII-E skewed D/N instance,
// comparing string-based against character-based sampling for MS.
func skewExperiment(opt options) {
	fmt.Printf("\n=== Section VII-E: skewed D/N instance (20%% of strings padded 4×) ===\n")
	cfg := input.DNConfig{
		StringsPerPE: opt.nPerPE, Length: opt.length, Ratio: 0.5, Seed: opt.seed,
	}
	fmt.Printf("%-6s %14s %14s %18s %18s\n", "p",
		"MS-str time", "MS-char time", "MS-str recv-imbal", "MS-char recv-imbal")
	for _, p := range opt.pes {
		inputs := make([][][]byte, p)
		for pe := 0; pe < p; pe++ {
			inputs[pe] = input.DNSkewed(cfg, pe, p)
		}
		row := make([]float64, 0, 4)
		for _, char := range []bool{false, true} {
			res, err := stringsort.Sort(inputs, stringsort.Config{
				Algorithm:    stringsort.MS,
				Seed:         uint64(opt.seed),
				CharSampling: char,
				Cores:        benchCores,
				Trace:        benchTracePath(stringsort.MS, p),
				Chaos:        benchChaos,
				ChaosSeed:    benchChaosSeed,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				profiling.Exit(1)
			}
			recvImbal := 1.0
			if res.Stats.MeanBytesRecv > 0 {
				recvImbal = float64(res.Stats.MaxBytesRecv) / res.Stats.MeanBytesRecv
			}
			row = append(row, res.Stats.ModelTime, recvImbal)
		}
		fmt.Printf("%-6d %14.4f %14.4f %18.3f %18.3f\n", p, row[0], row[2], row[1], row[3])
	}
}

// ablationOversampling sweeps the oversampling factor v for MS.
func ablationOversampling(opt options) {
	fmt.Printf("\n=== Ablation: oversampling factor v (MS, D/N = 0.5) ===\n")
	p := opt.pes[len(opt.pes)-1]
	cfg := input.DNConfig{StringsPerPE: opt.nPerPE, Length: opt.length, Ratio: 0.5, Seed: opt.seed}
	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.DN(cfg, pe, p)
	}
	fmt.Printf("%-6s %14s %14s %12s\n", "v", "model time", "bytes/string", "imbalance")
	for _, v := range []int{2, 4, 8, 16, 32, 64} {
		res, err := stringsort.Sort(inputs, stringsort.Config{
			Algorithm:    stringsort.MS,
			Seed:         uint64(opt.seed),
			Oversampling: v,
			Cores:        benchCores,
			Trace:        benchTracePath(stringsort.MS, p),
			Chaos:        benchChaos,
			ChaosSeed:    benchChaosSeed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			profiling.Exit(1)
		}
		fmt.Printf("%-6d %14.4f %14.1f %12.3f\n", v, res.Stats.ModelTime,
			res.Stats.BytesPerString, res.Stats.Imbalance)
	}
}

// ablationEps sweeps PDMS's prefix growth factor (1+ε).
func ablationEps(opt options) {
	fmt.Printf("\n=== Ablation: prefix growth factor 1+ε (PDMS, D/N = 0.25) ===\n")
	p := opt.pes[len(opt.pes)-1]
	cfg := input.DNConfig{StringsPerPE: opt.nPerPE, Length: opt.length, Ratio: 0.25, Seed: opt.seed}
	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.DN(cfg, pe, p)
	}
	fmt.Printf("%-6s %14s %14s\n", "eps", "model time", "bytes/string")
	for _, eps := range []float64{0.5, 1, 2, 3} {
		res, err := stringsort.Sort(inputs, stringsort.Config{
			Algorithm: stringsort.PDMS,
			Seed:      uint64(opt.seed),
			Eps:       eps,
			Cores:     benchCores,
			Trace:     benchTracePath(stringsort.PDMS, p),
			Chaos:     benchChaos,
			ChaosSeed: benchChaosSeed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			profiling.Exit(1)
		}
		fmt.Printf("%-6.1f %14.4f %14.1f\n", eps, res.Stats.ModelTime, res.Stats.BytesPerString)
	}
}

// ablationTieBreak measures the Section VIII duplicate-handling extension:
// an input dominated by repeated strings, MS with and without tie
// breaking. The metric is the bottleneck receive volume over the mean
// (1.0 = perfectly spread duplicates).
func ablationTieBreak(opt options) {
	fmt.Printf("\n=== Ablation: tie breaking on duplicate-heavy input (MS) ===\n")
	fmt.Printf("%-6s %18s %18s %14s %14s\n", "p",
		"plain frag-imbal", "tie frag-imbal", "plain time", "tie time")
	for _, p := range opt.pes {
		// 70%% copies of 4 hot strings, 30%% unique: each hot value has
		// 0.175·n copies, far above the per-PE share n/p for p ≥ 8.
		inputs := make([][][]byte, p)
		for pe := 0; pe < p; pe++ {
			for j := 0; j < opt.nPerPE; j++ {
				if j%10 < 7 {
					inputs[pe] = append(inputs[pe],
						[]byte(fmt.Sprintf("hot-string-%02d", (pe+j)%4)))
				} else {
					inputs[pe] = append(inputs[pe],
						[]byte(fmt.Sprintf("unique-%03d-%06d", pe, j)))
				}
			}
		}
		row := make([]float64, 0, 4)
		for _, tie := range []bool{false, true} {
			res, err := stringsort.Sort(inputs, stringsort.Config{
				Algorithm: stringsort.MS,
				Seed:      uint64(opt.seed),
				TieBreak:  tie,
				Cores:     benchCores,
				Trace:     benchTracePath(stringsort.MS, p),
				Chaos:     benchChaos,
				ChaosSeed: benchChaosSeed,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				profiling.Exit(1)
			}
			// Fragment-size imbalance: duplicates are nearly free to
			// *transmit* under LCP compression, but they still pile onto
			// one PE's output (and its merge) without tie breaking.
			maxFrag, total := 0, 0
			for _, frag := range res.PEs {
				total += len(frag.Strings)
				if len(frag.Strings) > maxFrag {
					maxFrag = len(frag.Strings)
				}
			}
			imbal := float64(maxFrag) / (float64(total) / float64(p))
			row = append(row, imbal, res.Stats.ModelTime)
		}
		fmt.Printf("%-6d %18.3f %18.3f %14.4f %14.4f\n", p, row[0], row[2], row[1], row[3])
	}
}

// ablationAlltoall compares the direct and hypercube all-to-all primitives
// on equal payloads: the volume/latency tradeoff of Section II.
func ablationAlltoall(opt options) {
	fmt.Printf("\n=== Ablation: all-to-all routing (direct vs hypercube) ===\n")
	fmt.Printf("%-6s %16s %16s %16s %16s\n", "p",
		"direct msgs/PE", "hcube msgs/PE", "direct bytes", "hcube bytes")
	for _, p := range opt.pes {
		if p&(p-1) != 0 {
			continue // hypercube variant needs powers of two
		}
		const payload = 2048
		run := func(hyper bool) (int64, int64) {
			m := comm.New(p)
			err := m.Run(func(c *comm.Comm) error {
				g := c.World()
				parts := make([][]byte, p)
				for i := range parts {
					parts[i] = make([]byte, payload)
				}
				if hyper {
					g.AlltoallvHypercube(parts)
				} else {
					g.Alltoallv(parts)
				}
				return nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				profiling.Exit(1)
			}
			rep := m.Report()
			return rep.PEs[0].Total().Messages, rep.TotalBytesSent()
		}
		dm, db := run(false)
		hm, hb := run(true)
		fmt.Printf("%-6d %16d %16d %16d %16d\n", p, dm, hm, db, hb)
	}
}
