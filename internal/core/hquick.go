package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"

	"dss/internal/comm"
	"dss/internal/par"
	"dss/internal/spill"
	"dss/internal/stats"
	"dss/internal/strsort"
	"dss/internal/wire"
)

// HQOptions configure algorithm hQuick.
type HQOptions struct {
	// GroupID is the base communicator namespace; the algorithm consumes
	// gids [GroupID, GroupID+d+2) where d = ⌊log₂ p⌋.
	GroupID int
	// Seed drives the initial random placement and pivot sampling.
	Seed uint64
	// TrackPhases, when set, attributes work to the standard phases
	// (partition for pivot selection, exchange for data movement, local
	// sort at the end). When hQuick runs embedded as the sample sorter of
	// MS/PDMS this stays false so everything is billed to the caller's
	// phase.
	TrackPhases bool
	// PivotSamples is the number of random local candidates contributed to
	// each pivot reduction (default 3).
	PivotSamples int
	// BlockingExchange selects the pre-split bulk-synchronous seam for the
	// initial random-placement all-to-all instead of the default
	// split-phase decode-on-arrival one (see MSOptions.BlockingExchange).
	BlockingExchange bool
	// StreamingMerge routes the random-placement all-to-all through the
	// chunked exchange and incremental readers: each (string, tag) pair
	// decodes the moment its bytes land instead of when its whole payload
	// has (hQuick has no Step-4 merge, so this is the streaming seam's
	// reach here). Results and statistics are bit-identical.
	StreamingMerge bool
	// StreamChunk bounds the streaming frame payload (0 = default).
	StreamChunk int
	// Spill selects budget mode: the sorted fragment streams into Out
	// (strings, LCPs and origin satellites) instead of materializing a
	// result arena. hQuick is not an out-of-core algorithm — every string
	// moves O(log p) times and the recursion keeps the working set
	// resident — so unlike the merge families the budget bounds only the
	// output accumulation, not the working set (documented in the README's
	// out-of-core section).
	Spill *spill.Pool
	Out   *spill.RunWriter
}

// HQuick sorts the distributed string array with hypercube quicksort
// adapted to strings (Section IV of the paper, after [Axtmann & Sanders,
// Robust Massively Parallel Sorting]). Only the first 2^⌊log₂ p⌋ PEs hold
// output; ties are broken by unique (origin PE, index) tags so duplicate
// strings cannot unbalance the recursion. Latency is polylogarithmic,
// which makes hQuick the sorter of choice for small inputs such as the
// splitter samples of MS and PDMS — but every string is moved O(log p)
// times, so it is not communication-efficient on large data.
func HQuick(c *comm.Comm, ss [][]byte, opt HQOptions) Result {
	if opt.PivotSamples <= 0 {
		opt.PivotSamples = 3
	}
	p := c.P()
	d := 0
	for 1<<(d+1) <= p {
		d++
	}
	q := 1 << d // hypercube size: 2^d ≥ p/2 PEs are used

	setPhase := func(ph stats.Phase) stats.Phase {
		if opt.TrackPhases {
			return c.SetPhase(ph)
		}
		return c.Phase()
	}

	// Tag every string with a unique (PE, index) id for tie breaking.
	strings := cloneSpine(ss)
	uids := make([]uint64, len(strings))
	for i := range uids {
		uids[i] = originSat(c.Rank(), i)
	}

	// Initial placement: every string moves to a uniformly random
	// hypercube node. This balances the expected load and makes the
	// pivot-based recursion behave like randomized quicksort.
	setPhase(stats.PhaseExchange)
	rng := rand.New(rand.NewSource(int64(opt.Seed) ^ int64(c.Rank()+1)*0x9e3779b9))
	world := comm.NewGroup(c, allRanks(p), opt.GroupID)
	{
		perDest := make([][]int, p)
		for i := range strings {
			dst := rng.Intn(q)
			perDest[dst] = append(perDest[dst], i)
		}
		sizes, sbusy := par.MapOrdered(c.Pool(), p, func(dst int) int {
			return taggedSize(strings, uids, perDest[dst])
		})
		c.AddCPU(sbusy)
		enc := func(dst int, buf []byte) []byte {
			return appendTagged(buf, strings, uids, perDest[dst])
		}
		// The placement drain and decode are hQuick's merge-equivalent: in
		// tracked runs their busy and wall time bill to the merge channel so
		// the bench panel's merge columns stay honest. Only measured gauges
		// move — the sends are posted and the received bytes billed before
		// the seam switches phases.
		next := c.Phase()
		if opt.TrackPhases {
			next = stats.PhaseMerge
		}
		if opt.StreamingMerge {
			// Chunked transfer into incremental readers: pairs decode as
			// their bytes arrive, and the rank-ordered pull keeps the
			// concatenation independent of arrival timing.
			parts := encodeParts(c, sizes, enc)
			rs := streamRuns(c, world, parts, wire.RunTagged, opt.BlockingExchange, opt.StreamChunk, next)
			strings, uids = rs.drainTagged()
		} else {
			// Encode each part on the pool (posting it as its encoder
			// finishes) and decode each part as it arrives, into
			// per-source slots: the concatenation below stays in rank
			// order, so the string sequence feeding the pivot recursion is
			// independent of arrival timing.
			perS := make([][][]byte, p)
			perU := make([][]uint64, p)
			exchangeEncoded(c, world, sizes, enc, opt.BlockingExchange, next, func(src int, msg []byte) {
				s, u, err := decodeTagged(msg)
				if err != nil {
					panic("hquick: corrupt redistribution payload")
				}
				perS[src], perU[src] = s, u
			})
			strings, uids = nil, nil
			for src := 0; src < p; src++ {
				strings = append(strings, perS[src]...)
				uids = append(uids, perU[src]...)
			}
		}
	}

	if c.Rank() < q {
		// d iterations: split the current subcube by a pivot, low half
		// keeps ≤ pivot, high half keeps > pivot.
		for k := d - 1; k >= 0; k-- {
			base := c.Rank() &^ ((1 << (k + 1)) - 1)
			members := make([]int, 1<<(k+1))
			for i := range members {
				members[i] = base + i
			}
			g := comm.NewGroup(c, members, opt.GroupID+1+(d-1-k))

			setPhase(stats.PhasePartition)
			pivotS, pivotU, ok := selectPivot(c, g, strings, uids, rng, opt.PivotSamples)

			setPhase(stats.PhaseExchange)
			partner := c.Rank() ^ (1 << k)
			keepLow := c.Rank()&(1<<k) == 0
			var keepIdx, sendIdx []int
			for i := range strings {
				low := ok && lessEqTagged(strings[i], uids[i], pivotS, pivotU)
				if !ok {
					low = true // empty subcube: nothing moves
				}
				if low == keepLow {
					keepIdx = append(keepIdx, i)
				} else {
					sendIdx = append(sendIdx, i)
				}
			}
			// Distinct from every collective tag (groups use gid<<32|seq
			// with small seq; bit 28 of the low word is never set there).
			tag := opt.GroupID<<32 | 1<<28 | k
			got := c.SendRecv(partner, tag, encodeTagged(strings, uids, sendIdx))
			ks, ku := filterTagged(strings, uids, keepIdx)
			rs, ru, err := decodeTagged(got)
			if err != nil {
				panic("hquick: corrupt exchange payload")
			}
			c.Release(got) // decodeTagged copied into its own arena
			strings = append(ks, rs...)
			uids = append(ku, ru...)
		}
	} else {
		strings, uids = nil, nil
	}

	// Final local sort with LCP output, spread over the PE's work pool.
	setPhase(stats.PhaseLocalSort)
	lcp, work, busy := strsort.ParallelSortLCP(c.Pool(), strings, uids, nil)
	c.AddWork(work)
	c.AddCPU(busy)

	if opt.Spill != nil {
		return Result{Drained: drainSorted(opt.Out, strings, lcp, uids)}
	}
	origins := make([]Origin, len(uids))
	for i, u := range uids {
		origins[i] = satOrigin(u)
	}
	return Result{Strings: strings, LCPs: lcp, Origins: origins}
}

// selectPivot approximates the subcube median: every PE contributes up to
// `samples` random local (string, uid) candidates; a binomial reduction
// merges candidate lists, downsampling to `samples` evenly spaced elements
// per step (so each reduction message carries at most samples·ℓ̂
// characters, matching the ℓ̂·log²p volume term of Theorem 1); the group
// root picks the middle candidate and broadcasts it. Returns ok=false when
// the whole subcube is empty.
func selectPivot(c *comm.Comm, g *comm.Group, strings [][]byte, uids []uint64, rng *rand.Rand, samples int) ([]byte, uint64, bool) {
	idxs := make([]int, 0, samples)
	if len(strings) > 0 {
		for i := 0; i < samples; i++ {
			idxs = append(idxs, rng.Intn(len(strings)))
		}
		sortTaggedIdx(strings, uids, idxs)
	}
	mine := encodeTagged(strings, uids, idxs)
	combined := g.ReduceBytes(0, mine, func(lo, hi []byte) []byte {
		ls, lu, err1 := decodeTagged(lo)
		hs, hu, err2 := decodeTagged(hi)
		if err1 != nil || err2 != nil {
			panic("hquick: corrupt pivot candidates")
		}
		ms, mu := mergeTagged(ls, lu, hs, hu)
		// Downsample to at most `samples` evenly spaced candidates.
		if len(ms) > samples {
			ds := make([][]byte, 0, samples)
			du := make([]uint64, 0, samples)
			for i := 0; i < samples; i++ {
				j := (2*i + 1) * len(ms) / (2 * samples)
				ds = append(ds, ms[j])
				du = append(du, mu[j])
			}
			ms, mu = ds, du
		}
		all := make([]int, len(ms))
		for i := range all {
			all[i] = i
		}
		return encodeTagged(ms, mu, all)
	})
	var payload []byte
	if g.Idx() == 0 {
		cs, cu, err := decodeTagged(combined)
		if err != nil {
			panic("hquick: corrupt pivot reduction")
		}
		if len(cs) == 0 {
			payload = encodeTagged(nil, nil, nil)
		} else {
			mid := len(cs) / 2
			payload = encodeTagged(cs, cu, []int{mid})
		}
	}
	payload = g.Bcast(0, payload)
	ps, pu, err := decodeTagged(payload)
	if err != nil {
		panic("hquick: corrupt pivot broadcast")
	}
	if len(ps) == 0 {
		return nil, 0, false
	}
	return ps[0], pu[0], true
}

// lessEqTagged compares (s, uid) ≤ (pivotS, pivotU) lexicographically with
// the uid as tie breaker, making every pivot effectively unique.
func lessEqTagged(s []byte, u uint64, ps []byte, pu uint64) bool {
	switch bytes.Compare(s, ps) {
	case -1:
		return true
	case 1:
		return false
	default:
		return u <= pu
	}
}

// encodeTagged serializes the selected (string, uid) pairs.
func encodeTagged(strings [][]byte, uids []uint64, idxs []int) []byte {
	w := wire.NewBuffer(16 + len(idxs)*16)
	w.Uvarint(uint64(len(idxs)))
	for _, i := range idxs {
		w.BytesPrefixed(strings[i])
		w.Uvarint(uids[i])
	}
	return w.Bytes()
}

// taggedSize returns the exact encoded size of encodeTagged's output for
// the same selection — the pre-computed arena share of one redistribution
// bucket.
func taggedSize(strings [][]byte, uids []uint64, idxs []int) int {
	total := wire.UvarintLen(uint64(len(idxs)))
	for _, i := range idxs {
		total += wire.UvarintLen(uint64(len(strings[i]))) + len(strings[i]) +
			wire.UvarintLen(uids[i])
	}
	return total
}

// appendTagged appends encodeTagged's encoding, byte for byte, into a
// caller-provided buffer (a disjoint arena slice in the parallel Step-3
// encode).
func appendTagged(dst []byte, strings [][]byte, uids []uint64, idxs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(idxs)))
	for _, i := range idxs {
		dst = binary.AppendUvarint(dst, uint64(len(strings[i])))
		dst = append(dst, strings[i]...)
		dst = binary.AppendUvarint(dst, uids[i])
	}
	return dst
}

// decodeTagged reverses encodeTagged. The decoded strings are copies laid
// out in one flat arena (the message size bounds the character total, so
// the arena never reallocates): three allocations per message instead of
// one per string, and the message itself is releasable afterwards.
func decodeTagged(msg []byte) ([][]byte, []uint64, error) {
	r := wire.NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, nil, err
	}
	ss := make([][]byte, 0, cnt)
	us := make([]uint64, 0, cnt)
	arena := make([]byte, 0, r.Remaining())
	for i := uint64(0); i < cnt; i++ {
		s, err := r.BytesPrefixed()
		if err != nil {
			return nil, nil, err
		}
		u, err := r.Uvarint()
		if err != nil {
			return nil, nil, err
		}
		off := len(arena)
		arena = append(arena, s...)
		end := len(arena)
		ss = append(ss, arena[off:end:end])
		us = append(us, u)
	}
	return ss, us, nil
}

func filterTagged(strings [][]byte, uids []uint64, idxs []int) ([][]byte, []uint64) {
	ss := make([][]byte, 0, len(idxs))
	us := make([]uint64, 0, len(idxs))
	for _, i := range idxs {
		ss = append(ss, strings[i])
		us = append(us, uids[i])
	}
	return ss, us
}

// sortTaggedIdx sorts the index list by (string, uid).
func sortTaggedIdx(strings [][]byte, uids []uint64, idxs []int) {
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0; j-- {
			a, b := idxs[j-1], idxs[j]
			if lessEqTagged(strings[a], uids[a], strings[b], uids[b]) {
				break
			}
			idxs[j-1], idxs[j] = idxs[j], idxs[j-1]
		}
	}
}

// mergeTagged merges two (string, uid)-sorted candidate lists.
func mergeTagged(as [][]byte, au []uint64, bs [][]byte, bu []uint64) ([][]byte, []uint64) {
	ms := make([][]byte, 0, len(as)+len(bs))
	mu := make([]uint64, 0, len(au)+len(bu))
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		if lessEqTagged(as[i], au[i], bs[j], bu[j]) {
			ms, mu = append(ms, as[i]), append(mu, au[i])
			i++
		} else {
			ms, mu = append(ms, bs[j]), append(mu, bu[j])
			j++
		}
	}
	for ; i < len(as); i++ {
		ms, mu = append(ms, as[i]), append(mu, au[i])
	}
	for ; j < len(bs); j++ {
		ms, mu = append(ms, bs[j]), append(mu, bu[j])
	}
	return ms, mu
}
