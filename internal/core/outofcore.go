// The bounded-memory Step-3→Step-4 seam: streamRuns' out-of-core
// counterpart. The chunked exchange and the incremental run readers are
// the same machinery, but every arriving fragment may be diverted to a
// per-run page file when the decoded arenas exceed the spill pool's
// budget, the sink-mode loser tree drains straight into a sorted-run
// writer instead of an output arena, and each run's consumed arena prefix
// is recycled as the merge passes it. Feeding order equals arrival order
// whether bytes take the resident or the spilled route, so the decoded
// runs — and with them the merged output and every deterministic
// statistic — are byte-identical to the in-RAM seams. Only where bytes
// wait (RAM vs page file) and where the output lands (arena vs run file)
// differ, and those differences live on the measured channels:
// SpillBytesWritten/Read, PeakLiveBytes and the write-behind CPU share.
package core

import (
	"encoding/binary"
	"fmt"

	"dss/internal/comm"
	"dss/internal/merge"
	"dss/internal/spill"
	"dss/internal/stats"
	"dss/internal/wire"
)

// spillStream couples a chunked exchange in flight with one budgeted run
// per source. It is confined to the PE goroutine, like runStream; only
// the page writes run concurrently (spill.File's write-behind chain).
type spillStream struct {
	c     *comm.Comm
	pd    *comm.ChunkPending
	pool  *spill.Pool
	runs  []*spillRun
	force bool // spill every run from its first chunk (composite format)
}

// spillRun is one incoming run's state: resident (file == nil, fragments
// feed the reader directly) or spilled (every further fragment appends to
// the page file and is paged back in sequentially ahead of the merge
// cursor). A run switches to spilled at most once — reverting would
// reorder its bytes — so the file, once created, receives every later
// fragment even if the pool drops back under budget.
type spillRun struct {
	r        *wire.RunReader
	file     *spill.File
	fed      int64 // page-file bytes fed back to the reader so far
	metered  int64 // reader arena bytes currently reserved in the pool
	arrived  bool  // last exchange fragment received
	finished bool  // reader.Finish called
}

// spillRuns posts the outgoing buckets as chunked transfers (exactly like
// streamRuns — the deterministic accounting is shared) and returns the
// budgeted pull views. Blocking mode drains every fragment before the
// phase switch, spilling past-budget bytes as it goes: the bulk-
// synchronous out-of-core reference.
func spillRuns(c *comm.Comm, g *comm.Group, parts [][]byte, format wire.RunFormat, blocking bool, chunk int, next stats.Phase, pool *spill.Pool) *spillStream {
	// The composite PDMS layout trails the origin column behind the whole
	// prefix blob, so no item can emit before its bucket is complete —
	// feeding a reader on arrival would grow the resident arenas to the
	// full received volume. Those runs go to their page files from the
	// first chunk and are merged from a two-cursor file view instead
	// (sinkMergeComposite).
	st := &spillStream{c: c, pool: pool, runs: make([]*spillRun, len(parts)),
		force: format == wire.RunPrefixOrigins}
	for i := range st.runs {
		st.runs[i] = &spillRun{r: wire.NewRunReader(format)}
	}
	st.pd = g.IAlltoallvChunked(parts, chunk)
	if blocking {
		st.pd.NoOverlapCredit()
		for st.drainOne() {
		}
	}
	c.SetPhase(next)
	return st
}

// drainOne receives the next fragment of the exchange and routes it: to
// its run's reader while the pool has budget, to the run's page file once
// it does not. The spill decision is a pure scheduling choice — it can
// differ run to run and transport to transport — and therefore only ever
// moves measured gauges, never a deterministic counter.
func (st *spillStream) drainOne() bool {
	idx, chunk, frame, last, ok := st.pd.RecvChunk()
	if !ok {
		return false
	}
	run := st.runs[idx]
	if run.file == nil && (st.force || st.pool.Over()) {
		f, err := st.pool.CreateFile(fmt.Sprintf("run%d", idx))
		if err != nil {
			panic("core: spill: " + err.Error())
		}
		run.file = f
	}
	if run.file != nil {
		run.file.Append(chunk)
	} else {
		run.r.Feed(chunk)
		st.meter(run)
	}
	st.c.Release(frame)
	if last {
		run.arrived = true
		if run.file == nil {
			run.finished = true
			run.r.Finish()
		}
	}
	return true
}

// meter reserves the run reader's arena growth against the budget.
func (st *spillStream) meter(run *spillRun) {
	if a := int64(run.r.ArenaBytes()); a > run.metered {
		st.pool.Reserve(a - run.metered)
		run.metered = a
	}
}

// recycle returns the run's consumed arena to the budget. Only legal in
// sink mode: every emitted string has been copied out by the run writer
// before its source advanced, so no live pointer reaches the freed block.
// (The reader's LCP rematerialization still pins one stale block via its
// prev buffer — part of the documented fixed overhead.)
func (st *spillStream) recycle(run *spillRun) {
	if freed := int64(run.r.Recycle()); freed > 0 {
		st.pool.Release(freed)
		run.metered -= freed
	}
}

// feedMore makes progress for a stalled reader: recycle what the merge
// has consumed, page spilled bytes back in, finish the reader when every
// byte has been fed, or drain the next exchange fragment (which may
// belong to any run).
func (st *spillStream) feedMore(run *spillRun) {
	st.recycle(run)
	if run.file != nil && run.fed < run.file.Size() {
		b, err := run.file.ReadSpan(run.fed, st.pool.PageSize())
		if err != nil {
			panic("core: spill: " + err.Error())
		}
		run.fed += int64(len(b))
		run.r.Feed(b)
		st.meter(run)
		return
	}
	if run.arrived || !st.drainOne() {
		// Every byte of the run has been fed (resident runs finished at
		// arrival) or the exchange is unexpectedly dry: finish so the
		// reader reports completion — or truncation — on the next pull.
		if !run.finished {
			run.finished = true
			run.r.Finish()
		}
	}
}

// sources returns the budgeted pull views of all runs, in group rank
// order.
func (st *spillStream) sources() []merge.Source {
	out := make([]merge.Source, len(st.runs))
	for i, run := range st.runs {
		out[i] = &spillSource{st: st, run: run}
	}
	return out
}

// finish completes the write-behind chains, bills their busy time to the
// measured CPU channel, releases the metered arenas and closes the page
// descriptors (the pool's Close unlinks the files themselves). Called
// after the sink merge has drained every source.
func (st *spillStream) finish() {
	var busy int64
	for _, run := range st.runs {
		if run.file != nil {
			b, err := run.file.Finish()
			busy += b
			if err != nil {
				panic("core: spill write: " + err.Error())
			}
			run.file.Close()
		}
		st.recycle(run)
		if run.metered > 0 {
			st.pool.Release(run.metered)
			run.metered = 0
		}
	}
	st.c.AddCPU(busy)
}

// spillSource adapts one budgeted run to merge.Source. Unlike
// streamSource, a head is only valid until its source advances past it —
// the arena behind consumed heads is recycled — which is exactly the
// guarantee the sink-mode merge needs and no more.
type spillSource struct {
	st  *spillStream
	run *spillRun
	cur wire.Item
	has bool
	eof bool
}

// Head returns the run's current head, paging and draining until it is
// decodable; ok=false reports the run exhausted.
func (s *spillSource) Head() ([]byte, bool) {
	for !s.has && !s.eof {
		it, ok, err := s.run.r.Next()
		switch {
		case err != nil:
			panic("core: corrupt spilled run: " + err.Error())
		case ok:
			s.cur, s.has = it, true
		case s.run.r.Done():
			s.eof = true
		default:
			s.st.feedMore(s.run)
		}
	}
	if s.eof {
		return nil, false
	}
	return s.cur.S, true
}

// HeadLCP returns the current head's LCP with the run's previous string.
func (s *spillSource) HeadLCP() int32 { return s.cur.LCP }

// HeadSat returns the current head's satellite word (PDMS origin).
func (s *spillSource) HeadSat() uint64 { return s.cur.Sat }

// Advance consumes the current head.
func (s *spillSource) Advance() { s.has = false }

// sinkMerge drains the budgeted sources through the sequential sink-mode
// loser tree into the run writer. The item sequence and the returned work
// are bit-identical to the in-RAM merges — merge.MergeStreamSink shares
// the streaming tree and its comparators — only where the output lands
// differs.
func sinkMerge(c *comm.Comm, st *spillStream, lcp, sats bool, out *spill.RunWriter) (n, work int64) {
	n, work, err := merge.MergeStreamSink(st.sources(), merge.StreamOptions{
		LCP: lcp, Sats: sats, OnFirstOutput: markMergeStart(c),
	}, out.Add)
	st.finish()
	if err != nil {
		panic("core: run writer: " + err.Error())
	}
	return n, work
}

// compositeSource is the budgeted pull view of one RunPrefixOrigins run.
// The whole bucket lives in the run's page file (spillStream.force); two
// cursors page it back in independently — a RunStringsLCP reader over the
// prefix-blob section and a varint scanner over the trailing origin
// section — so the resident footprint is a page or two per run even
// though no (prefix, origin) pair exists before the bucket's last byte.
type compositeSource struct {
	st  *spillStream
	run *spillRun

	sr    *wire.RunReader // RunStringsLCP view of the blob section
	srMet int64           // sr arena bytes reserved in the pool
	fed   int64           // next blob byte (absolute file offset) to feed sr
	end   int64           // absolute end of the blob section
	hdr   bool            // blob-length header parsed

	obuf []byte // buffered origin-section bytes
	oMet int64  // obuf bytes reserved in the pool
	opos int    // consumed prefix of obuf
	oabs int64  // next origin byte (absolute file offset) to page in
	ohdr int    // 0 = before oSize varint, 1 = before count, 2 = origins

	cur wire.Item
	has bool
	eof bool
}

// Head returns the run's current (prefix, origin) head, draining the
// exchange and paging the bucket as needed; ok=false reports exhaustion.
func (s *compositeSource) Head() ([]byte, bool) {
	for !s.has && !s.eof {
		s.pull()
	}
	if s.eof {
		return nil, false
	}
	return s.cur.S, true
}

// HeadLCP returns the current head's LCP with the run's previous prefix.
func (s *compositeSource) HeadLCP() int32 { return s.cur.LCP }

// HeadSat returns the current head's origin word.
func (s *compositeSource) HeadSat() uint64 { return s.cur.Sat }

// Advance consumes the current head.
func (s *compositeSource) Advance() { s.has = false }

// pull makes one step of progress: complete the bucket, parse the header,
// decode the next prefix or page in more of a section.
func (s *compositeSource) pull() {
	run := s.run
	for !run.arrived {
		if !s.st.drainOne() {
			// RecvChunk reports completion only when every transfer is done,
			// so a dry exchange with an incomplete run cannot happen.
			panic("core: spill: exchange ended before a composite run arrived")
		}
	}
	if run.file == nil {
		// No bytes ever arrived for this run; a PDMS bucket is never empty
		// on the wire, so nothing can be decoded from it.
		s.eof = true
		return
	}
	if !s.hdr {
		b, err := run.file.ReadSpan(0, 16)
		if err != nil {
			panic("core: spill: " + err.Error())
		}
		v, n := binary.Uvarint(b)
		if n <= 0 || v > uint64(maxSpillSection) {
			panic("core: corrupt spilled run: bad composite header")
		}
		s.fed = int64(n)
		s.end = int64(n) + int64(v)
		s.oabs = s.end
		s.hdr = true
	}
	it, ok, err := s.sr.Next()
	switch {
	case err != nil:
		panic("core: corrupt spilled run: " + err.Error())
	case ok:
		it.Sat = s.nextOrigin()
		s.cur, s.has = it, true
	case s.sr.Done():
		s.eof = true
	default:
		s.feedBlob()
	}
}

// feedBlob recycles the consumed prefix arena and pages the next span of
// the blob section into the string reader.
func (s *compositeSource) feedBlob() {
	if freed := int64(s.sr.Recycle()); freed > 0 {
		s.st.pool.Release(freed)
		s.srMet -= freed
	}
	if s.fed >= s.end {
		s.sr.Finish() // surfaces truncation through the next Next
		return
	}
	max := s.st.pool.PageSize()
	if rem := s.end - s.fed; int64(max) > rem {
		max = int(rem)
	}
	b, err := s.run.file.ReadSpan(s.fed, max)
	if err != nil {
		panic("core: spill: " + err.Error())
	}
	if len(b) == 0 {
		panic("core: corrupt spilled run: composite blob truncated")
	}
	s.fed += int64(len(b))
	s.sr.Feed(b)
	if a := int64(s.sr.ArenaBytes()); a > s.srMet {
		s.st.pool.Reserve(a - s.srMet)
		s.srMet = a
	}
}

// nextOrigin returns the next origin varint of the trailing section,
// paging more of the file in as needed.
func (s *compositeSource) nextOrigin() uint64 {
	for {
		if v, n := binary.Uvarint(s.obuf[s.opos:]); n > 0 {
			s.opos += n
			switch s.ohdr {
			case 0:
				s.ohdr = 1 // section length; the count below bounds the scan
			case 1:
				s.ohdr = 2 // origin count; a mismatch with the string count
				// surfaces as a truncation panic when the origins run out
			default:
				return v
			}
			continue
		} else if n < 0 {
			panic("core: corrupt spilled run: bad origin varint")
		}
		s.pageOrigins()
	}
}

// pageOrigins compacts the consumed origin bytes and pages in the next
// span of the origin section.
func (s *compositeSource) pageOrigins() {
	if s.opos > 0 {
		s.obuf = append(s.obuf[:0], s.obuf[s.opos:]...)
		s.opos = 0
		s.meterO()
	}
	b, err := s.run.file.ReadSpan(s.oabs, s.st.pool.PageSize())
	if err != nil {
		panic("core: spill: " + err.Error())
	}
	if len(b) == 0 {
		panic("core: corrupt spilled run: composite origins truncated")
	}
	s.oabs += int64(len(b))
	s.obuf = append(s.obuf, b...)
	s.meterO()
}

// meterO reconciles the origin buffer's pool reservation with its size.
func (s *compositeSource) meterO() {
	if d := int64(len(s.obuf)) - s.oMet; d > 0 {
		s.st.pool.Reserve(d)
		s.oMet += d
	} else if d < 0 {
		s.st.pool.Release(-d)
		s.oMet += d
	}
}

// release returns the source's metered bytes to the budget.
func (s *compositeSource) release() {
	s.st.pool.Release(s.srMet + s.oMet)
	s.srMet, s.oMet = 0, 0
	s.obuf = nil
}

// maxSpillSection mirrors the wire package's section bound: a declared
// blob length beyond it cannot belong to a real bucket.
const maxSpillSection = 1<<31 - 1

// sinkMergeComposite drains budgeted RunPrefixOrigins runs through the
// sink-mode loser tree into the run writer, pairing each prefix with its
// origin from the bucket's trailing section. Item sequence and work are
// bit-identical to the in-RAM PDMS merges.
func sinkMergeComposite(c *comm.Comm, st *spillStream, out *spill.RunWriter) (n, work int64) {
	srcs := make([]merge.Source, len(st.runs))
	comps := make([]*compositeSource, len(st.runs))
	for i, run := range st.runs {
		cs := &compositeSource{st: st, run: run, sr: wire.NewRunReader(wire.RunStringsLCP)}
		comps[i] = cs
		srcs[i] = cs
	}
	n, work, err := merge.MergeStreamSink(srcs, merge.StreamOptions{
		LCP: true, Sats: true, OnFirstOutput: markMergeStart(c),
	}, out.Add)
	for _, cs := range comps {
		cs.release()
	}
	st.finish()
	if err != nil {
		panic("core: run writer: " + err.Error())
	}
	return n, work
}

// drainSorted streams an already materialized sorted fragment into the
// budget pipeline's run writer — the hQuick path and the p == 1 fast
// paths, which have no Step-4 merge to sink.
func drainSorted(out *spill.RunWriter, ss [][]byte, lcps []int32, sats []uint64) int64 {
	for i, s := range ss {
		var lcp int32
		if lcps != nil && i > 0 {
			lcp = lcps[i]
		}
		var sat uint64
		if sats != nil {
			sat = sats[i]
		}
		if err := out.Add(s, lcp, sat); err != nil {
			panic("core: run writer: " + err.Error())
		}
	}
	return int64(len(ss))
}
