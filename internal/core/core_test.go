package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dss/internal/comm"
	"dss/internal/strutil"
)

// scatter distributes a global string set over p PEs round-robin.
func scatter(global [][]byte, p int) [][][]byte {
	locals := make([][][]byte, p)
	for i, s := range global {
		locals[i%p] = append(locals[i%p], s)
	}
	return locals
}

// runDistributed executes one algorithm collectively and returns the
// per-PE results and the machine (for statistics).
func runDistributed(t *testing.T, locals [][][]byte, algo func(c *comm.Comm, ss [][]byte) Result) ([]Result, *comm.Machine) {
	t.Helper()
	p := len(locals)
	m := comm.New(p)
	results := make([]Result, p)
	err := m.Run(func(c *comm.Comm) error {
		results[c.Rank()] = algo(c, locals[c.Rank()])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, m
}

// checkGlobalOrder verifies that the concatenation of the per-PE fragments
// is sorted, that per-PE LCP arrays (if present) are correct, and that the
// output is a permutation of the input (for full-string algorithms).
func checkGlobalOrder(t *testing.T, global [][]byte, results []Result, wantPermutation bool) {
	t.Helper()
	var concat [][]byte
	for pe, res := range results {
		if !strutil.IsSorted(res.Strings) {
			t.Fatalf("PE %d fragment not locally sorted", pe)
		}
		if res.LCPs != nil {
			if i := strutil.ValidateLCPArray(res.Strings, res.LCPs); i >= 0 {
				t.Fatalf("PE %d: wrong LCP at %d", pe, i)
			}
		}
		concat = append(concat, res.Strings...)
	}
	if !strutil.IsSorted(concat) {
		t.Fatal("fragments not globally ordered across PEs")
	}
	if len(concat) != len(global) {
		t.Fatalf("output has %d strings, input had %d", len(concat), len(global))
	}
	if wantPermutation && strutil.MultisetHash(concat) != strutil.MultisetHash(global) {
		t.Fatal("output is not a permutation of the input")
	}
}

// reconstructPDMS maps (PE, index) origins back to the scattered input.
func reconstructPDMS(t *testing.T, locals [][][]byte, results []Result) [][]byte {
	t.Helper()
	var out [][]byte
	for pe, res := range results {
		if !res.PrefixOnly {
			t.Fatalf("PE %d: PDMS result not marked PrefixOnly", pe)
		}
		if len(res.Origins) != len(res.Strings) {
			t.Fatalf("PE %d: %d origins for %d strings", pe, len(res.Origins), len(res.Strings))
		}
		for i, o := range res.Origins {
			full := locals[o.PE][o.Index]
			if !bytes.HasPrefix(full, res.Strings[i]) {
				t.Fatalf("PE %d: output prefix %q is not a prefix of origin string %q",
					pe, res.Strings[i], full)
			}
			out = append(out, full)
		}
	}
	return out
}

// Workload generators for the integration tests.

func genRandom(rng *rand.Rand, n, maxLen, sigma int) [][]byte {
	ss := make([][]byte, n)
	for i := range ss {
		l := rng.Intn(maxLen + 1)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('a' + rng.Intn(sigma))
		}
		ss[i] = s
	}
	return ss
}

// genSmallD builds strings with long equal padding and short unique cores:
// D ≪ N, the PDMS sweet spot.
func genSmallD(n, length int) [][]byte {
	ss := make([][]byte, n)
	for i := range ss {
		s := bytes.Repeat([]byte{'a'}, length)
		copy(s[8:], []byte(fmt.Sprintf("%08d", i)))
		ss[i] = s
	}
	rand.New(rand.NewSource(7)).Shuffle(n, func(i, j int) { ss[i], ss[j] = ss[j], ss[i] })
	return ss
}

var testPs = []int{1, 2, 3, 4, 7, 8}

func TestMergeSortAllConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	configs := map[string]MSOptions{
		"MS-simple":    MSSimple(),
		"MS":           DefaultMS(),
		"MS-comp-only": {LCPCompression: true},
		"MS-merge-only": {
			LCPMerge: true,
		},
		"MS-central": {LCPCompression: true, LCPMerge: true, CentralSampleSort: true},
	}
	for name, opt := range configs {
		for _, p := range testPs {
			global := genRandom(rng, 300+p*37, 16, 3)
			locals := scatter(global, p)
			o := opt
			o.GroupID = 1
			results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
				return MergeSort(c, ss, o)
			})
			checkGlobalOrder(t, global, results, true)
			if o.LCPMerge {
				for pe, res := range results {
					if res.LCPs == nil && len(res.Strings) > 0 {
						t.Fatalf("%s p=%d PE %d: missing LCP output", name, p, pe)
					}
				}
			}
		}
	}
}

func TestFKMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, p := range testPs {
		global := genRandom(rng, 400, 12, 4)
		locals := scatter(global, p)
		results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
			return FKMerge(c, ss, FKOptions{GroupID: 1})
		})
		checkGlobalOrder(t, global, results, true)
	}
}

func TestFKMergeManyDuplicates(t *testing.T) {
	// The original FKmerge crashes on inputs with many repeated strings
	// (Section VII-D); ours must handle them.
	var global [][]byte
	for i := 0; i < 500; i++ {
		global = append(global, []byte("repeated-line"))
	}
	for i := 0; i < 100; i++ {
		global = append(global, []byte(fmt.Sprintf("unique-%03d", i)))
	}
	for _, p := range []int{2, 4, 8} {
		locals := scatter(global, p)
		results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
			return FKMerge(c, ss, FKOptions{GroupID: 1})
		})
		checkGlobalOrder(t, global, results, true)
	}
}

func TestHQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, p := range testPs {
		global := genRandom(rng, 500, 14, 3)
		locals := scatter(global, p)
		results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
			return HQuick(c, ss, HQOptions{GroupID: 1, Seed: 42, TrackPhases: true})
		})
		checkGlobalOrder(t, global, results, true)
	}
}

func TestHQuickNonPowerOfTwoLeavesHighRanksEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	global := genRandom(rng, 300, 10, 3)
	p := 7 // hypercube size 4
	locals := scatter(global, p)
	results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		return HQuick(c, ss, HQOptions{GroupID: 1, Seed: 1})
	})
	checkGlobalOrder(t, global, results, true)
	for pe := 4; pe < 7; pe++ {
		if len(results[pe].Strings) != 0 {
			t.Fatalf("PE %d (outside hypercube) holds %d strings", pe, len(results[pe].Strings))
		}
	}
}

func TestHQuickAllEqualStrings(t *testing.T) {
	// Duplicate-only input: tie breaking by (PE, index) must keep the
	// recursion balanced and terminate.
	var global [][]byte
	for i := 0; i < 600; i++ {
		global = append(global, []byte("all-the-same"))
	}
	locals := scatter(global, 8)
	results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		return HQuick(c, ss, HQOptions{GroupID: 1, Seed: 5})
	})
	checkGlobalOrder(t, global, results, true)
	// Tie-broken quicksort must not pile everything on one PE.
	maxFrag := 0
	for _, res := range results {
		if len(res.Strings) > maxFrag {
			maxFrag = len(res.Strings)
		}
	}
	if maxFrag > 400 {
		t.Fatalf("duplicate input unbalanced: max fragment %d of 600", maxFrag)
	}
}

func TestPDMSVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, golomb := range []bool{false, true} {
		for _, p := range testPs {
			global := genRandom(rng, 300+p*11, 20, 3)
			locals := scatter(global, p)
			opt := DefaultPDMS()
			opt.Golomb = golomb
			opt.GroupID = 1
			opt.Seed = 99
			results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
				return PDMS(c, ss, opt)
			})
			// Prefix order must reproduce the true global order.
			full := reconstructPDMS(t, locals, results)
			if !strutil.IsSorted(full) {
				t.Fatalf("golomb=%v p=%d: reconstructed strings not sorted", golomb, p)
			}
			if strutil.MultisetHash(full) != strutil.MultisetHash(global) {
				t.Fatalf("golomb=%v p=%d: output not a permutation", golomb, p)
			}
			// Per-PE prefix fragments carry valid LCP arrays.
			for pe, res := range results {
				if i := strutil.ValidateLCPArray(res.Strings, res.LCPs); i >= 0 {
					t.Fatalf("p=%d PE %d: wrong prefix LCP at %d", p, pe, i)
				}
			}
		}
	}
}

func TestPDMSDuplicatesAndPrefixChains(t *testing.T) {
	var global [][]byte
	for i := 0; i < 50; i++ {
		global = append(global, []byte("dup-string"))
		global = append(global, bytes.Repeat([]byte("a"), i%13))
		global = append(global, []byte(fmt.Sprintf("key-%04d-suffix", i)))
	}
	for _, p := range []int{1, 3, 4} {
		locals := scatter(global, p)
		opt := DefaultPDMS()
		opt.GroupID = 1
		results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
			return PDMS(c, ss, opt)
		})
		full := reconstructPDMS(t, locals, results)
		if !strutil.IsSorted(full) {
			t.Fatalf("p=%d: not sorted", p)
		}
		if strutil.MultisetHash(full) != strutil.MultisetHash(global) {
			t.Fatalf("p=%d: not a permutation", p)
		}
	}
}

func TestPDMSCharSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	global := genRandom(rng, 600, 25, 2)
	locals := scatter(global, 4)
	opt := PDMSOptions{Eps: 1, GroupID: 1} // char-based by default
	results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		return PDMS(c, ss, opt)
	})
	full := reconstructPDMS(t, locals, results)
	if !strutil.IsSorted(full) {
		t.Fatal("char-sampled PDMS output not sorted")
	}
}

func TestReconstructCollective(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	global := genRandom(rng, 200, 18, 3)
	p := 4
	locals := scatter(global, p)
	m := comm.New(p)
	results := make([]Result, p)
	fulls := make([][][]byte, p)
	err := m.Run(func(c *comm.Comm) error {
		opt := DefaultPDMS()
		opt.GroupID = 1
		res := PDMS(c, locals[c.Rank()], opt)
		results[c.Rank()] = res
		fulls[c.Rank()] = Reconstruct(c, res, locals[c.Rank()], 99)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var concat [][]byte
	for pe := 0; pe < p; pe++ {
		if len(fulls[pe]) != len(results[pe].Strings) {
			t.Fatalf("PE %d: reconstructed %d of %d", pe, len(fulls[pe]), len(results[pe].Strings))
		}
		for i, full := range fulls[pe] {
			if !bytes.HasPrefix(full, results[pe].Strings[i]) {
				t.Fatalf("PE %d: %q not a prefix of %q", pe, results[pe].Strings[i], full)
			}
		}
		concat = append(concat, fulls[pe]...)
	}
	if !strutil.IsSorted(concat) {
		t.Fatal("reconstructed output not sorted")
	}
	if strutil.MultisetHash(concat) != strutil.MultisetHash(global) {
		t.Fatal("reconstructed output not a permutation")
	}
}

func TestLCPCompressionReducesVolume(t *testing.T) {
	// High-LCP input: MS must send clearly fewer bytes than MS-simple.
	var global [][]byte
	prefix := bytes.Repeat([]byte("common"), 10)
	for i := 0; i < 2000; i++ {
		global = append(global, append(append([]byte{}, prefix...), []byte(fmt.Sprintf("%06d", i))...))
	}
	p := 8
	locals := scatter(global, p)
	_, mPlain := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		o := MSSimple()
		o.GroupID = 1
		return MergeSort(c, ss, o)
	})
	_, mLCP := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		o := DefaultMS()
		o.GroupID = 1
		return MergeSort(c, ss, o)
	})
	vPlain := mPlain.Report().TotalBytesSent()
	vLCP := mLCP.Report().TotalBytesSent()
	if vLCP*2 > vPlain {
		t.Fatalf("LCP compression weak: MS=%d vs MS-simple=%d bytes", vLCP, vPlain)
	}
}

func TestPDMSSavesVolumeWhenDSmall(t *testing.T) {
	// D ≪ N: PDMS must send much less than MS.
	global := genSmallD(2000, 200)
	p := 8
	locals := scatter(global, p)
	_, mMS := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		o := DefaultMS()
		o.GroupID = 1
		return MergeSort(c, ss, o)
	})
	_, mPD := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		o := DefaultPDMS()
		o.GroupID = 1
		return PDMS(c, ss, o)
	})
	vMS := mMS.Report().TotalBytesSent()
	vPD := mPD.Report().TotalBytesSent()
	if vPD*3 > vMS {
		t.Fatalf("PDMS volume %d not ≪ MS volume %d on small-D input", vPD, vMS)
	}
}

func TestHQuickMovesMoreDataThanMergeSort(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	global := genRandom(rng, 3000, 20, 4)
	p := 8
	locals := scatter(global, p)
	_, mHQ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		return HQuick(c, ss, HQOptions{GroupID: 1, Seed: 3, TrackPhases: true})
	})
	_, mMS := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		o := MSSimple()
		o.GroupID = 1
		return MergeSort(c, ss, o)
	})
	if mHQ.Report().TotalBytesSent() <= mMS.Report().TotalBytesSent() {
		t.Fatalf("hQuick volume %d not above MS-simple volume %d",
			mHQ.Report().TotalBytesSent(), mMS.Report().TotalBytesSent())
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for _, n := range []int{0, 1, 2, p} {
			global := genRandom(rand.New(rand.NewSource(int64(n))), n, 5, 2)
			locals := scatter(global, p)
			algos := map[string]func(c *comm.Comm, ss [][]byte) Result{
				"MS": func(c *comm.Comm, ss [][]byte) Result {
					o := DefaultMS()
					o.GroupID = 1
					return MergeSort(c, ss, o)
				},
				"FK": func(c *comm.Comm, ss [][]byte) Result {
					return FKMerge(c, ss, FKOptions{GroupID: 1})
				},
				"HQ": func(c *comm.Comm, ss [][]byte) Result {
					return HQuick(c, ss, HQOptions{GroupID: 1})
				},
			}
			for name, algo := range algos {
				results, _ := runDistributed(t, locals, algo)
				checkGlobalOrder(t, global, results, true)
				_ = name
			}
			// PDMS via reconstruction.
			opt := DefaultPDMS()
			opt.GroupID = 1
			results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
				return PDMS(c, ss, opt)
			})
			full := reconstructPDMS(t, locals, results)
			if len(full) != n || !strutil.IsSorted(full) {
				t.Fatalf("p=%d n=%d: PDMS tiny input wrong", p, n)
			}
		}
	}
}

func TestAllAlgorithmsAgreeOnReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	global := genRandom(rng, 1200, 15, 3)
	ref := strutil.Clone(global)
	sort.Slice(ref, func(i, j int) bool { return bytes.Compare(ref[i], ref[j]) < 0 })
	p := 4
	locals := scatter(global, p)

	collect := func(results []Result) [][]byte {
		var out [][]byte
		for _, r := range results {
			out = append(out, r.Strings...)
		}
		return out
	}
	msRes, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		o := DefaultMS()
		o.GroupID = 1
		return MergeSort(c, ss, o)
	})
	fkRes, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		return FKMerge(c, ss, FKOptions{GroupID: 1})
	})
	hqRes, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		return HQuick(c, ss, HQOptions{GroupID: 1, Seed: 11})
	})
	for name, got := range map[string][][]byte{
		"MS": collect(msRes), "FK": collect(fkRes), "HQ": collect(hqRes),
	} {
		if len(got) != len(ref) {
			t.Fatalf("%s: %d strings, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if !bytes.Equal(got[i], ref[i]) {
				t.Fatalf("%s: position %d: %q != %q", name, i, got[i], ref[i])
			}
		}
	}
}

func TestInputSlicesNotModified(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	global := genRandom(rng, 200, 10, 3)
	p := 4
	locals := scatter(global, p)
	snapshots := make([][][]byte, p)
	for pe := range locals {
		snapshots[pe] = append([][]byte{}, locals[pe]...)
	}
	runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		o := DefaultMS()
		o.GroupID = 1
		return MergeSort(c, ss, o)
	})
	for pe := range locals {
		for i := range locals[pe] {
			if len(locals[pe][i]) > 0 && &locals[pe][i][0] != &snapshots[pe][i][0] {
				t.Fatalf("PE %d: input spine reordered", pe)
			}
			if !bytes.Equal(locals[pe][i], snapshots[pe][i]) {
				t.Fatalf("PE %d: input string %d mutated", pe, i)
			}
		}
	}
}

func TestPDMSTwoLevelAndHypercubeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	global := genRandom(rng, 900, 24, 4)
	for _, p := range []int{4, 8} {
		locals := scatter(global, p)
		opt := DefaultPDMS()
		opt.GroupID = 1
		opt.TwoLevelFingerprints = true
		opt.HypercubeRouting = true
		results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
			return PDMS(c, ss, opt)
		})
		full := reconstructPDMS(t, locals, results)
		if !strutil.IsSorted(full) {
			t.Fatalf("p=%d: two-level/hypercube PDMS output not sorted", p)
		}
		if strutil.MultisetHash(full) != strutil.MultisetHash(global) {
			t.Fatalf("p=%d: not a permutation", p)
		}
	}
}
