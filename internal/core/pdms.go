package core

import (
	"encoding/binary"

	"dss/internal/comm"
	"dss/internal/dupdetect"
	"dss/internal/merge"
	"dss/internal/par"
	"dss/internal/partition"
	"dss/internal/spill"
	"dss/internal/stats"
	"dss/internal/strsort"
	"dss/internal/wire"
)

// PDMSOptions configure Algorithm PDMS (Section VI).
type PDMSOptions struct {
	// Eps is the geometric prefix growth factor of Step 1+ε; the default 1
	// gives prefix doubling.
	Eps float64
	// Golomb enables Golomb coding of the duplicate detection fingerprints
	// (the PDMS-Golomb variant of the evaluation).
	Golomb bool
	// InitialLen is the first prefix guess ℓ₀ (default 8).
	InitialLen int
	// TwoLevelFingerprints enables the two-round (32-bit, then 64-bit)
	// fingerprint exchange of [Sanders-Schlag-Müller] in Step 1+ε.
	TwoLevelFingerprints bool
	// HypercubeRouting routes the Step 1+ε fingerprint all-to-alls along a
	// hypercube: α·log p latency per round instead of α·p, at a log p
	// volume factor (Theorem 6's latency variant).
	HypercubeRouting bool
	// V is the oversampling factor; default 2p−1 (see MergeSort).
	V int
	// Sampling defaults to character-based sampling weighted by the
	// approximated distinguishing prefix lengths, which balances the
	// actual communication and merge work (Section VI).
	Sampling partition.Sampling
	// StringSamplingOverride forces string-based sampling (the paper's
	// benchmarked configuration uses string-based sampling for all
	// algorithms; the skew experiment uses character-based).
	StringSamplingOverride bool
	// GroupID is the base communicator namespace (the call consumes
	// [GroupID, GroupID+16)).
	GroupID int
	// Seed drives fingerprinting and hQuick randomness.
	Seed uint64
	// BlockingExchange selects the pre-split bulk-synchronous Step-3 seam
	// instead of the default split-phase decode-on-arrival one (see
	// MSOptions.BlockingExchange).
	BlockingExchange bool
	// StreamingMerge starts the Step-4 loser tree on partially decoded
	// prefix runs over a chunked exchange (see MSOptions.StreamingMerge).
	// A PDMS head becomes available once its origin has decoded too — the
	// origins trail the prefixes within one bucket, so streaming's win here
	// is bounded by the composite layout, but output and statistics stay
	// bit-identical.
	StreamingMerge bool
	// StreamChunk bounds the streaming frame payload (0 = default).
	StreamChunk int
	// ParMergeMin gates the partitioned parallel Step-4 merge (see
	// MSOptions.ParMergeMin).
	ParMergeMin int
	// Spill runs the bounded-memory out-of-core pipeline (see
	// MSOptions.Spill). Out receives the merged prefix run with its origin
	// satellites in the run file's satellite column — budget-mode callers
	// reconstruct full strings by origin lookup instead of core.Reconstruct
	// (which needs the materialized result).
	Spill *spill.Pool
	Out   *spill.RunWriter
}

// DefaultPDMS returns the evaluation configuration of algorithm PDMS:
// prefix doubling (ε=1), no Golomb coding, string-based sampling over
// distinguishing prefixes.
func DefaultPDMS() PDMSOptions {
	return PDMSOptions{Eps: 1, StringSamplingOverride: true}
}

// DefaultPDMSGolomb returns the PDMS-Golomb configuration.
func DefaultPDMSGolomb() PDMSOptions {
	o := DefaultPDMS()
	o.Golomb = true
	return o
}

// PDMS runs Distributed Prefix-Doubling String Merge Sort (Section VI):
// Algorithm MS with an additional Step 1+ε that approximates each string's
// distinguishing prefix length by distributed duplicate detection over
// geometrically growing prefixes. Only those prefixes are sampled,
// exchanged (LCP-compressed) and merged, so the bottleneck communication
// volume drops to (1+ε)·D̂·log σ + O(n̂ log p + p·d̂·log σ·log p) bits
// (Theorem 5) instead of Θ(N̂) — the decisive saving when D ≪ N.
//
// PDMS does not materialize the sorted full strings: the result holds the
// sorted distinguishing prefixes plus the origin (PE, index) of each, which
// is sufficient for search trees, pattern lookups and suffix sorting. Use
// Reconstruct to fetch the full strings when needed.
func PDMS(c *comm.Comm, ss [][]byte, opt PDMSOptions) Result {
	p := c.P()
	if opt.V <= 0 {
		opt.V = 2*p - 1 // v = Θ(p), aligned: see MergeSort's default
		if opt.V < 15 {
			opt.V = 15
		}
	}
	if opt.Eps <= 0 {
		opt.Eps = 1
	}
	local := cloneSpine(ss)
	sats := make([]uint64, len(local))
	for i := range sats {
		sats[i] = originSat(c.Rank(), i)
	}

	// Step 1: local sort with LCP array, carrying origins, spread over the
	// PE's work pool. Radix scratch comes from the size-classed sorter
	// pools.
	c.SetPhase(stats.PhaseLocalSort)
	lcp, work, busy := strsort.ParallelSortLCP(c.Pool(), local, sats, nil)
	c.AddWork(work)
	c.AddCPU(busy)

	// Step 1+ε: approximate distinguishing prefix lengths.
	dd := dupdetect.ApproxDist(c, local, dupdetect.Options{
		Eps:        opt.Eps,
		InitialLen: opt.InitialLen,
		Golomb:     opt.Golomb,
		TwoLevel:   opt.TwoLevelFingerprints,
		Hypercube:  opt.HypercubeRouting,
		Seed:       opt.Seed,
		GroupID:    opt.GroupID + 2,
	})
	dist := dd.Dist

	// Materialize the prefix view: transmitted string i is local[i][:dist[i]],
	// and the prefix LCP array is the full LCP capped by both prefix
	// lengths.
	prefixes := make([][]byte, len(local))
	plcp := make([]int32, len(local))
	for i := range local {
		prefixes[i] = local[i][:dist[i]]
		if i > 0 {
			h := lcp[i]
			if dist[i-1] < h {
				h = dist[i-1]
			}
			if dist[i] < h {
				h = dist[i]
			}
			plcp[i] = h
		}
	}

	if p == 1 {
		c.SetPhase(stats.PhaseOther)
		if opt.Spill != nil {
			return Result{Drained: drainSorted(opt.Out, prefixes, plcp, sats), PrefixOnly: true}
		}
		origins := make([]Origin, len(sats))
		for i, u := range sats {
			origins[i] = satOrigin(u)
		}
		return Result{Strings: prefixes, LCPs: plcp, Origins: origins, PrefixOnly: true}
	}

	// Step 2: splitters over the distinguishing prefixes — samples and
	// splitters have length at most d̂, and character-based sampling uses
	// the approximated prefix lengths as weights, balancing the work that
	// is actually done (Theorem 5 analysis).
	sampling := partition.CharSampling
	if opt.StringSamplingOverride {
		sampling = partition.StringSampling
	} else if opt.Sampling == partition.StringSampling {
		sampling = opt.Sampling
	}
	seed := opt.Seed
	popt := partition.Options{
		V:         opt.V,
		Sampling:  sampling,
		Weights:   dist,
		Transform: func(i int) []byte { return prefixes[i] },
		GroupID:   opt.GroupID + 5,
		DistSort: func(cc *comm.Comm, samples [][]byte, gid int) [][]byte {
			return HQuick(cc, samples, HQOptions{
				GroupID: gid, Seed: seed, BlockingExchange: opt.BlockingExchange,
				StreamingMerge: opt.StreamingMerge, StreamChunk: opt.StreamChunk,
			}).Strings
		},
	}
	splitters := partition.SelectSplitters(c, local, popt)
	// Buckets are computed over the prefixes: the transmitted prefixes
	// preserve the order of the underlying strings (distinct strings never
	// tie; see dupdetect), so bucketing prefixes against prefix splitters
	// is globally consistent.
	off := partition.Buckets(prefixes, splitters)

	// Step 3: LCP-compressed all-to-all exchange of the prefixes plus
	// their origins. As in MergeSort, all outgoing parts are encoded into
	// one exactly pre-sized arena — O(1) buffer allocations per PE — and
	// the per-bucket LCP runs are direct sub-slices of the prefix LCP
	// array (the encoder ignores the boundary entry).
	c.SetPhase(stats.PhaseExchange)
	g := comm.NewGroup(c, allRanks(p), opt.GroupID+8)
	blobSizes := make([]int, p)
	oSizes := make([]int, p)
	sizes, sbusy := par.MapOrdered(c.Pool(), p, func(dst int) int {
		lo, hi := off[dst], off[dst+1]
		blobSizes[dst] = wire.StringsLCPSize(prefixes[lo:hi], lcpSub(plcp, lo, hi))
		oSize := wire.UvarintLen(uint64(hi - lo))
		for _, u := range sats[lo:hi] {
			oSize += wire.UvarintLen(u)
		}
		oSizes[dst] = oSize
		return wire.UvarintLen(uint64(blobSizes[dst])) + blobSizes[dst] +
			wire.UvarintLen(uint64(oSize)) + oSize
	})
	c.AddCPU(sbusy)
	enc := func(dst int, buf []byte) []byte {
		lo, hi := off[dst], off[dst+1]
		buf = binary.AppendUvarint(buf, uint64(blobSizes[dst]))
		buf = wire.AppendStringsLCP(buf, prefixes[lo:hi], lcpSub(plcp, lo, hi))
		buf = binary.AppendUvarint(buf, uint64(oSizes[dst]))
		buf = binary.AppendUvarint(buf, uint64(hi-lo))
		for _, u := range sats[lo:hi] {
			buf = binary.AppendUvarint(buf, u)
		}
		return buf
	}
	// Step 4: LCP-aware multiway merge of the prefix runs — streaming (the
	// tree pulls (prefix, origin) heads off partially decoded runs) or
	// eager (decode each run whole on arrival; the decoders copy
	// everything out).
	var out merge.Sequence
	var mwork, mbusy int64
	if opt.Spill != nil {
		// Bounded-memory pipeline (see MergeSort's budget branch): the
		// origins travel as the run file's satellite column.
		parts := encodeParts(c, sizes, enc)
		st := spillRuns(c, g, parts, wire.RunPrefixOrigins, opt.BlockingExchange, opt.StreamChunk, stats.PhaseMerge, opt.Spill)
		n, mw := sinkMergeComposite(c, st, opt.Out)
		c.AddWork(mw)
		c.SetPhase(stats.PhaseOther)
		return Result{Drained: n, PrefixOnly: true}
	}
	if opt.StreamingMerge {
		parts := encodeParts(c, sizes, enc)
		rs := streamRuns(c, g, parts, wire.RunPrefixOrigins, opt.BlockingExchange, opt.StreamChunk, stats.PhaseMerge)
		out, mwork, mbusy = merge.MergeStreamPar(rs.sources(), merge.StreamOptions{
			LCP: true, Sats: true, OnFirstOutput: markMergeStart(c),
			Pool: c.Pool(), ParMin: opt.ParMergeMin, Snapshot: rs.snapshot(true),
			Hooks: mergeHooks(c),
		})
	} else {
		runs := make([]merge.Sequence, p)
		exchangeEncoded(c, g, sizes, enc, opt.BlockingExchange, stats.PhaseMerge, func(src int, msg []byte) {
			r := wire.NewReader(msg)
			blob, err1 := r.BytesPrefixed()
			oblob, err2 := r.BytesPrefixed()
			if err1 != nil || err2 != nil {
				panic("pdms: corrupt exchange message")
			}
			rs, rl, err := wire.DecodeStringsLCP(blob)
			if err != nil {
				panic("pdms: corrupt prefix run: " + err.Error())
			}
			ro, err := wire.DecodeUint64s(oblob)
			if err != nil || len(ro) != len(rs) {
				panic("pdms: corrupt origin run")
			}
			runs[src] = merge.Sequence{Strings: rs, LCPs: rl, Sats: ro}
		})
		out, mwork, mbusy = merge.MergeLCPParHooked(c.Pool(), runs, opt.ParMergeMin, mergeHooks(c))
	}
	c.AddWork(mwork)
	c.AddCPU(mbusy)
	origins := make([]Origin, len(out.Sats))
	for i, u := range out.Sats {
		origins[i] = satOrigin(u)
	}
	c.SetPhase(stats.PhaseOther)
	return Result{Strings: out.Strings, LCPs: out.LCPs, Origins: origins, PrefixOnly: true}
}

// Reconstruct materializes the full strings behind a PDMS result: every PE
// queries the origin PEs of its output prefixes and receives the original
// strings (one extra all-to-all in each direction). input must be the same
// array the PE passed to PDMS. The returned array is aligned with
// res.Strings. This models the paper's observation that a PE "can be
// queried for the suffix and associated information" of an output string;
// the query cost is excluded from the sorting volume only if the caller
// resets statistics, which the benchmarks do.
func Reconstruct(c *comm.Comm, res Result, input [][]byte, gid int) [][]byte {
	p := c.P()
	g := comm.NewGroup(c, allRanks(p), gid)
	// Queries: per origin PE, the list of (my position, origin index).
	type q struct{ pos, idx int }
	perPE := make([][]q, p)
	for pos, o := range res.Origins {
		perPE[o.PE] = append(perPE[o.PE], q{pos: pos, idx: int(o.Index)})
	}
	parts := make([][]byte, p)
	for pe := 0; pe < p; pe++ {
		w := wire.NewBuffer(8 + 4*len(perPE[pe]))
		w.Uvarint(uint64(len(perPE[pe])))
		for _, qq := range perPE[pe] {
			w.Uvarint(uint64(qq.idx))
		}
		parts[pe] = w.Bytes()
	}
	queries := g.Alltoallv(parts)
	// Answer with the requested strings.
	answers := make([][]byte, p)
	for src := 0; src < p; src++ {
		r := wire.NewReader(queries[src])
		cnt, err := r.Uvarint()
		if err != nil {
			panic("pdms: corrupt reconstruction query")
		}
		resp := wire.NewBuffer(64)
		resp.Uvarint(cnt)
		for k := uint64(0); k < cnt; k++ {
			idx, err := r.Uvarint()
			if err != nil || idx >= uint64(len(input)) {
				panic("pdms: reconstruction query out of range")
			}
			resp.BytesPrefixed(input[idx])
		}
		answers[src] = resp.Bytes()
		c.Release(queries[src])
	}
	got := g.Alltoallv(answers)
	out := make([][]byte, len(res.Origins))
	for pe := 0; pe < p; pe++ {
		r := wire.NewReader(got[pe])
		cnt, err := r.Uvarint()
		if err != nil || cnt != uint64(len(perPE[pe])) {
			panic("pdms: corrupt reconstruction answer")
		}
		// Flat-arena copy: all answered strings from this PE share one
		// backing buffer instead of one allocation each.
		arena := make([]byte, 0, r.Remaining())
		for k := 0; k < int(cnt); k++ {
			s, err := r.BytesPrefixed()
			if err != nil {
				panic("pdms: corrupt reconstruction answer")
			}
			off := len(arena)
			arena = append(arena, s...)
			end := len(arena)
			out[perPE[pe][k].pos] = arena[off:end:end]
		}
		c.Release(got[pe])
	}
	return out
}
