package core

import (
	"encoding/binary"

	"dss/internal/comm"
	"dss/internal/merge"
	"dss/internal/par"
	"dss/internal/partition"
	"dss/internal/spill"
	"dss/internal/stats"
	"dss/internal/strsort"
	"dss/internal/wire"
)

// MSOptions configure Algorithm MS (Section V). The zero value is the
// MS-simple configuration; DefaultMS() enables all LCP optimizations.
type MSOptions struct {
	// LCPCompression enables the Step 3 exchange format that sends, per
	// string, only the suffix beyond the LCP with the previous string.
	LCPCompression bool
	// LCPMerge selects the LCP-aware loser tree for Step 4 (and makes the
	// algorithm produce the output LCP array). Without it a plain loser
	// tree is used and no LCP data is communicated.
	LCPMerge bool
	// Sampling selects string- or character-based splitter sampling.
	Sampling partition.Sampling
	// V is the oversampling factor (samples per PE); default 2p−1 (v = Θ(p),
	// aligned with the bucket quantiles).
	V int
	// CentralSampleSort sorts the splitter sample on PE 0 instead of with
	// distributed hQuick.
	CentralSampleSort bool
	// TieBreak partitions by (string, origin) pairs so duplicated strings
	// spread evenly over the PEs instead of piling onto one bucket — the
	// Section VIII extension for duplicate-heavy inputs.
	TieBreak bool
	// RandomSampling draws random instead of regularly spaced samples
	// (Section VIII).
	RandomSampling bool
	// GroupID is the base communicator namespace (the call consumes
	// [GroupID, GroupID+16)).
	GroupID int
	// Seed drives hQuick's randomness during sample sorting.
	Seed uint64
	// BlockingExchange selects the pre-split bulk-synchronous Step-3 seam
	// (Alltoallv, then decode) instead of the default split-phase one that
	// decodes each run on arrival. Deterministic statistics are identical
	// either way; blocking mode exists for differential testing.
	BlockingExchange bool
	// StreamingMerge goes beyond the split-phase seam: Step 3 ships each
	// bucket as a chunked transfer and Step 4's loser tree starts on
	// partially decoded runs, pulling heads on demand — merging begins
	// before the last frame lands. Output and deterministic statistics are
	// bit-identical to the eager seams. Combined with BlockingExchange the
	// chunked machinery runs but every fragment is drained before merging
	// (the differential reference cell). The one configuration without a
	// streaming wire format — LCPMerge without LCPCompression, which no
	// public configuration produces — falls back to the eager seam.
	StreamingMerge bool
	// StreamChunk bounds the streaming frame payload in bytes (0 = the
	// comm default). Small values force many frames; tests use them to
	// exercise resume-mid-frame paths.
	StreamChunk int
	// ParMergeMin gates the partitioned parallel Step-4 merge by received
	// strings: 0 = merge.DefaultParMin, negative = always sequential.
	// Output and deterministic stats are pool-width-independent either way.
	ParMergeMin int
	// Spill, if non-nil, runs the bounded-memory out-of-core pipeline:
	// Step 3 ships through the chunked machinery regardless of
	// StreamingMerge, incoming runs spill to page files once the pool's
	// budget is exceeded, and the Step-4 sink merge drains into Out
	// (required non-nil with Spill) instead of an output arena. The
	// deterministic statistics are untouched — they are seam-invariant and
	// the spill decision only moves measured gauges — and the result holds
	// Drained instead of Strings.
	Spill *spill.Pool
	// Out receives the merged run in budget mode (nil otherwise).
	Out *spill.RunWriter
}

// DefaultMS returns the full Algorithm MS configuration: LCP compression,
// LCP-aware merging, string-based sampling (the configuration the paper
// benchmarks as "MS"), distributed sample sorting with hQuick.
func DefaultMS() MSOptions {
	return MSOptions{LCPCompression: true, LCPMerge: true}
}

// MSSimple returns the MS-simple configuration: the same mergesort scheme
// with no LCP-related optimizations at all.
func MSSimple() MSOptions {
	return MSOptions{}
}

// MergeSort runs distributed string merge sort (Algorithm MS, Figure 1):
//
//  1. sort locally, producing the local LCP array;
//  2. determine p−1 splitters by regular sampling and distributed (or
//     centralized) sample sorting;
//  3. all-to-all exchange of the buckets, optionally LCP-compressed;
//  4. multiway merge of the p received runs, LCP-aware if configured.
//
// Every PE calls collectively with its local strings; PE i's result holds
// the i-th fragment of the global sorted order.
func MergeSort(c *comm.Comm, ss [][]byte, opt MSOptions) Result {
	p := c.P()
	if opt.V <= 0 {
		// Theory (Theorems 2–4) wants v = Θ(p). Choosing v ≡ −1 (mod p)
		// aligns the local sample quantiles j/(v+1) with the bucket
		// boundaries i/p, which brings the bucket bound of Theorem 2 from
		// 1+p/v down to ~1.0 on evenly distributed inputs.
		opt.V = 2*p - 1
		if opt.V < 15 {
			opt.V = 15
		}
	}
	local := cloneSpine(ss)

	// Step 1: local sort with LCP array, spread over the PE's work pool
	// (permutation, LCPs and work total are pool-width-independent; see
	// strsort's parallel front-ends). Radix scratch is drawn from the
	// size-classed package pools.
	c.SetPhase(stats.PhaseLocalSort)
	var lcp []int32
	var work, busy int64
	if opt.LCPMerge || opt.LCPCompression {
		lcp, work, busy = strsort.ParallelSortLCP(c.Pool(), local, nil, nil)
	} else {
		work, busy = strsort.ParallelSort(c.Pool(), local, nil)
	}
	c.AddWork(work)
	c.AddCPU(busy)
	if p == 1 {
		c.SetPhase(stats.PhaseOther)
		if opt.Spill != nil {
			return Result{Drained: drainSorted(opt.Out, local, lcp, nil)}
		}
		return Result{Strings: local, LCPs: lcp}
	}

	// Step 2: splitter selection.
	popt := partition.Options{
		V:              opt.V,
		Sampling:       opt.Sampling,
		TieBreak:       opt.TieBreak,
		RandomSampling: opt.RandomSampling,
		Seed:           opt.Seed,
		GroupID:        opt.GroupID + 1,
	}
	if !opt.CentralSampleSort {
		seed := opt.Seed
		blocking := opt.BlockingExchange
		streaming, chunk := opt.StreamingMerge, opt.StreamChunk
		popt.DistSort = func(cc *comm.Comm, samples [][]byte, gid int) [][]byte {
			return HQuick(cc, samples, HQOptions{
				GroupID: gid, Seed: seed, BlockingExchange: blocking,
				StreamingMerge: streaming, StreamChunk: chunk,
			}).Strings
		}
	}
	splitters := partition.SelectSplitters(c, local, popt)
	var off []int
	if opt.TieBreak {
		off = partition.BucketsTie(local, c.Rank(), splitters)
	} else {
		off = partition.Buckets(local, splitters)
	}

	// Step 3: all-to-all bucket exchange. All p outgoing parts are encoded
	// into one exactly pre-sized arena (Send copies payloads, so the parts
	// may share backing storage): O(1) buffer allocations per PE instead of
	// one per destination, with zero growth reallocations. The LCP run of a
	// bucket is passed as a direct sub-slice of the local LCP array — the
	// encoders ignore the boundary entry lcps[lo], which belongs to a
	// string that stays on this PE.
	c.SetPhase(stats.PhaseExchange)
	g := comm.NewGroup(c, allRanks(p), opt.GroupID+8)
	var wsizes [][2]int // per-dst (blob, lblob) sizes of the LCPMerge format
	if opt.LCPMerge && !opt.LCPCompression {
		wsizes = make([][2]int, p)
	}
	sizes, sbusy := par.MapOrdered(c.Pool(), p, func(dst int) int {
		lo, hi := off[dst], off[dst+1]
		switch {
		case opt.LCPCompression:
			return wire.StringsLCPSize(local[lo:hi], lcpSub(lcp, lo, hi))
		case opt.LCPMerge:
			blob := wire.StringsSize(local[lo:hi])
			lblob := wire.Int32sRunSize(lcpSub(lcp, lo, hi))
			wsizes[dst] = [2]int{blob, lblob}
			return wire.UvarintLen(uint64(blob)) + blob +
				wire.UvarintLen(uint64(lblob)) + lblob
		default:
			return wire.StringsSize(local[lo:hi])
		}
	})
	c.AddCPU(sbusy)
	enc := func(dst int, buf []byte) []byte {
		lo, hi := off[dst], off[dst+1]
		switch {
		case opt.LCPCompression:
			return wire.AppendStringsLCP(buf, local[lo:hi], lcpSub(lcp, lo, hi))
		case opt.LCPMerge:
			return appendStringsWithLCPs(buf, local[lo:hi], lcpSub(lcp, lo, hi), wsizes[dst])
		default:
			return wire.AppendStrings(buf, local[lo:hi])
		}
	}
	// Streaming seam: ship the buckets chunked and let the Step-4 loser
	// tree pull heads off partially decoded runs — merging starts before
	// the last frame lands. The composite LCPMerge-without-compression
	// layout has no streaming reader; that configuration (unreachable from
	// the public API) keeps the eager seam.
	var out merge.Sequence
	var mwork, mbusy int64
	if opt.Spill != nil {
		// Bounded-memory pipeline: the chunked exchange with spillable run
		// sources and the sink-mode merge draining straight into the
		// sorted-run writer.
		format := wire.RunStrings
		if opt.LCPCompression {
			format = wire.RunStringsLCP
		} else if opt.LCPMerge {
			// LCPMerge without LCPCompression has no streaming wire format
			// (unreachable from the public API).
			panic("mergesort: the budget pipeline needs a streaming wire format")
		}
		parts := encodeParts(c, sizes, enc)
		st := spillRuns(c, g, parts, format, opt.BlockingExchange, opt.StreamChunk, stats.PhaseMerge, opt.Spill)
		n, mw := sinkMerge(c, st, opt.LCPMerge, false, opt.Out)
		c.AddWork(mw)
		c.SetPhase(stats.PhaseOther)
		return Result{Drained: n}
	}
	if opt.StreamingMerge && !(opt.LCPMerge && !opt.LCPCompression) {
		format := wire.RunStrings
		if opt.LCPCompression {
			format = wire.RunStringsLCP
		}
		parts := encodeParts(c, sizes, enc)
		rs := streamRuns(c, g, parts, format, opt.BlockingExchange, opt.StreamChunk, stats.PhaseMerge)
		out, mwork, mbusy = merge.MergeStreamPar(rs.sources(), merge.StreamOptions{
			LCP: opt.LCPMerge, OnFirstOutput: markMergeStart(c),
			Pool: c.Pool(), ParMin: opt.ParMergeMin, Snapshot: rs.snapshot(false),
			Hooks: mergeHooks(c),
		})
	} else {
		// Eager seam: encode each bucket on the pool, posting it as its
		// encoder finishes, then decode each incoming run as soon as it
		// lands WHOLE (the arena decoders copy everything out of the
		// message); the phase switches to merging while the stragglers are
		// still in flight.
		runs := make([]merge.Sequence, p)
		exchangeEncoded(c, g, sizes, enc, opt.BlockingExchange, stats.PhaseMerge, func(src int, msg []byte) {
			switch {
			case opt.LCPCompression:
				rs, rl, err := wire.DecodeStringsLCP(msg)
				if err != nil {
					panic("mergesort: corrupt compressed run: " + err.Error())
				}
				runs[src] = merge.Sequence{Strings: rs, LCPs: rl}
			case opt.LCPMerge:
				rs, rl, err := decodeStringsWithLCPs(msg)
				if err != nil {
					panic("mergesort: corrupt run: " + err.Error())
				}
				runs[src] = merge.Sequence{Strings: rs, LCPs: rl}
			default:
				rs, err := wire.DecodeStrings(msg)
				if err != nil {
					panic("mergesort: corrupt run: " + err.Error())
				}
				runs[src] = merge.Sequence{Strings: rs}
			}
		})

		// Step 4: multiway merge of the fully decoded runs, partitioned
		// across the pool by multisequence selection (width-independent
		// output and work by the deterministic merge-back contract).
		if opt.LCPMerge {
			out, mwork, mbusy = merge.MergeLCPParHooked(c.Pool(), runs, opt.ParMergeMin, mergeHooks(c))
		} else {
			out, mwork, mbusy = merge.MergeParHooked(c.Pool(), runs, opt.ParMergeMin, mergeHooks(c))
		}
	}
	c.AddWork(mwork)
	c.AddCPU(mbusy)
	c.SetPhase(stats.PhaseOther)
	return Result{Strings: out.Strings, LCPs: out.LCPs}
}

// lcpSub is the allocation-free view of a bucket's LCP run: the boundary
// entry lcp[lo] belongs to a string that stays on this PE, and every
// encoder of a run ignores (or re-derives as zero) its first entry, so no
// zeroed copy is needed.
func lcpSub(lcp []int32, lo, hi int) []int32 {
	if lo >= hi {
		return nil
	}
	return lcp[lo:hi]
}

// appendStringsWithLCPs appends the no-compression, LCP-merging exchange
// format: full strings plus the raw LCP array (the LCP values still enable
// the cheaper merge even though the strings travel uncompressed). The
// first LCP entry is transmitted as zero — it is the boundary with a
// string that stays on the sender. sizes carries the (blob, lblob) byte
// sizes the caller already computed for the arena, so the bucket is not
// traversed a second time.
func appendStringsWithLCPs(dst []byte, ss [][]byte, lcps []int32, sizes [2]int) []byte {
	dst = binary.AppendUvarint(dst, uint64(sizes[0]))
	dst = wire.AppendStrings(dst, ss)
	dst = binary.AppendUvarint(dst, uint64(sizes[1]))
	dst = wire.AppendInt32sRun(dst, lcps)
	return dst
}

func decodeStringsWithLCPs(msg []byte) ([][]byte, []int32, error) {
	r := wire.NewReader(msg)
	blob, err := r.BytesPrefixed()
	if err != nil {
		return nil, nil, err
	}
	lblob, err := r.BytesPrefixed()
	if err != nil {
		return nil, nil, err
	}
	ss, err := wire.DecodeStrings(blob)
	if err != nil {
		return nil, nil, err
	}
	lcps, err := wire.DecodeInt32s(lblob)
	if err != nil {
		return nil, nil, err
	}
	if len(lcps) != len(ss) {
		return nil, nil, wire.ErrCorrupt
	}
	return ss, lcps, nil
}
