package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dss/internal/comm"
)

func TestMergeSortTieBreakCorrectOnDuplicates(t *testing.T) {
	// Heavy duplicates mixed with unique strings: tie breaking must keep
	// the output a sorted permutation.
	var global [][]byte
	for i := 0; i < 800; i++ {
		global = append(global, []byte("heavy-duplicate"))
	}
	for i := 0; i < 200; i++ {
		global = append(global, []byte(fmt.Sprintf("uniq-%04d", i)))
	}
	rand.New(rand.NewSource(1)).Shuffle(len(global), func(i, j int) {
		global[i], global[j] = global[j], global[i]
	})
	for _, p := range []int{2, 4, 8} {
		locals := scatter(global, p)
		results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
			o := DefaultMS()
			o.GroupID = 1
			o.TieBreak = true
			return MergeSort(c, ss, o)
		})
		checkGlobalOrder(t, global, results, true)
	}
}

func TestMergeSortTieBreakBalancesAllEqualInput(t *testing.T) {
	// The pathological case of Section VIII: the input is one repeated
	// string. Without tie breaking, all strings land on one PE; with it,
	// every PE receives an even share.
	p := 8
	locals := make([][][]byte, p)
	var global [][]byte
	for pe := 0; pe < p; pe++ {
		for j := 0; j < 250; j++ {
			locals[pe] = append(locals[pe], []byte("only-one-value"))
			global = append(global, []byte("only-one-value"))
		}
	}
	maxFrag := func(tie bool) int {
		results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
			o := DefaultMS()
			o.GroupID = 1
			o.TieBreak = tie
			return MergeSort(c, ss, o)
		})
		checkGlobalOrder(t, global, results, true)
		m := 0
		for _, res := range results {
			if len(res.Strings) > m {
				m = len(res.Strings)
			}
		}
		return m
	}
	plain := maxFrag(false)
	tie := maxFrag(true)
	if plain < 2000 {
		t.Fatalf("plain MS unexpectedly balanced all-equal input: max fragment %d", plain)
	}
	if tie > 500 { // mean is 250
		t.Fatalf("tie-break MS fragment still unbalanced: %d of 2000", tie)
	}
}

func TestMergeSortRandomSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	global := genRandom(rng, 1500, 12, 3)
	for _, p := range []int{2, 4, 8} {
		locals := scatter(global, p)
		results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
			o := DefaultMS()
			o.GroupID = 1
			o.RandomSampling = true
			o.Seed = 77
			return MergeSort(c, ss, o)
		})
		checkGlobalOrder(t, global, results, true)
	}
}

func TestTieBreakWithMSSimple(t *testing.T) {
	// Tie breaking composes with the no-LCP configuration too.
	var global [][]byte
	for i := 0; i < 600; i++ {
		global = append(global, []byte("xx"))
	}
	locals := scatter(global, 4)
	results, _ := runDistributed(t, locals, func(c *comm.Comm, ss [][]byte) Result {
		o := MSSimple()
		o.GroupID = 1
		o.TieBreak = true
		return MergeSort(c, ss, o)
	})
	checkGlobalOrder(t, global, results, true)
	for pe, res := range results {
		if len(res.Strings) > 300 {
			t.Fatalf("PE %d holds %d of 600 equal strings", pe, len(res.Strings))
		}
	}
}
