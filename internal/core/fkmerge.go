package core

import (
	"dss/internal/comm"
	"dss/internal/merge"
	"dss/internal/par"
	"dss/internal/partition"
	"dss/internal/spill"
	"dss/internal/stats"
	"dss/internal/strsort"
	"dss/internal/wire"
)

// FKOptions configure the FKmerge baseline.
type FKOptions struct {
	// GroupID is the base communicator namespace.
	GroupID int
	// BlockingExchange selects the pre-split bulk-synchronous Step-3 seam
	// instead of the default split-phase decode-on-arrival one (see
	// MSOptions.BlockingExchange).
	BlockingExchange bool
	// StreamingMerge starts the Step-4 loser tree on partially decoded
	// runs over a chunked exchange (see MSOptions.StreamingMerge).
	StreamingMerge bool
	// StreamChunk bounds the streaming frame payload (0 = default).
	StreamChunk int
	// ParMergeMin gates the partitioned parallel Step-4 merge (see
	// MSOptions.ParMergeMin).
	ParMergeMin int
	// Spill runs the bounded-memory out-of-core pipeline (see
	// MSOptions.Spill); Out receives the merged run.
	Spill *spill.Pool
	Out   *spill.RunWriter
}

// FKMerge is the distributed multiway string mergesort of Fischer and
// Kurpicz (Section II-C), the only previously published distributed-memory
// string sorter: local sort, deterministic regular sampling with p−1
// samples per PE, *centralized* sorting of the p(p−1) samples on PE 0,
// full-string all-to-all exchange and a plain (non-LCP) loser tree merge.
// The centralized quadratic sample sort and the uncompressed exchange are
// exactly the bottlenecks the paper's evaluation exposes beyond ~320 cores.
func FKMerge(c *comm.Comm, ss [][]byte, opt FKOptions) Result {
	p := c.P()
	local := cloneSpine(ss)

	// Step 1: local sort on the PE's work pool (no LCP output needed:
	// FKmerge never uses LCPs).
	c.SetPhase(stats.PhaseLocalSort)
	work, busy := strsort.ParallelSort(c.Pool(), local, nil)
	c.AddWork(work)
	c.AddCPU(busy)
	if p == 1 {
		c.SetPhase(stats.PhaseOther)
		if opt.Spill != nil {
			return Result{Drained: drainSorted(opt.Out, local, nil, nil)}
		}
		return Result{Strings: local}
	}

	// Step 2: deterministic sampling, v = p−1 samples per PE, gathered and
	// sorted on PE 0 (the paper notes this needs samples of quadratic
	// size, costing a factor p in the minimal efficient input size).
	splitters := partition.SelectSplitters(c, local, partition.Options{
		V:        p - 1,
		Sampling: partition.StringSampling,
		GroupID:  opt.GroupID + 1,
		// DistSort nil → centralized sort on PE 0.
	})
	off := partition.Buckets(local, splitters)

	// Step 3: uncompressed all-to-all exchange, all parts encoded on the
	// work pool into one exactly pre-sized arena (see MergeSort Step 3).
	c.SetPhase(stats.PhaseExchange)
	g := comm.NewGroup(c, allRanks(p), opt.GroupID+8)
	sizes, sbusy := par.MapOrdered(c.Pool(), p, func(dst int) int {
		return wire.StringsSize(local[off[dst]:off[dst+1]])
	})
	c.AddCPU(sbusy)
	enc := func(dst int, buf []byte) []byte {
		return wire.AppendStrings(buf, local[off[dst]:off[dst+1]])
	}
	// Step 4: ordinary loser tree merge — streaming (the tree pulls heads
	// off partially decoded runs) or eager (decode each run whole on
	// arrival; DecodeStrings copies into its own backing).
	var out merge.Sequence
	var mwork, mbusy int64
	if opt.Spill != nil {
		// Bounded-memory pipeline (see MergeSort's budget branch).
		parts := encodeParts(c, sizes, enc)
		st := spillRuns(c, g, parts, wire.RunStrings, opt.BlockingExchange, opt.StreamChunk, stats.PhaseMerge, opt.Spill)
		n, mw := sinkMerge(c, st, false, false, opt.Out)
		c.AddWork(mw)
		c.SetPhase(stats.PhaseOther)
		return Result{Drained: n}
	}
	if opt.StreamingMerge {
		parts := encodeParts(c, sizes, enc)
		rs := streamRuns(c, g, parts, wire.RunStrings, opt.BlockingExchange, opt.StreamChunk, stats.PhaseMerge)
		out, mwork, mbusy = merge.MergeStreamPar(rs.sources(), merge.StreamOptions{
			OnFirstOutput: markMergeStart(c),
			Pool:          c.Pool(), ParMin: opt.ParMergeMin, Snapshot: rs.snapshot(false),
			Hooks: mergeHooks(c),
		})
	} else {
		runs := make([]merge.Sequence, p)
		exchangeEncoded(c, g, sizes, enc, opt.BlockingExchange, stats.PhaseMerge, func(src int, msg []byte) {
			rs, err := wire.DecodeStrings(msg)
			if err != nil {
				panic("fkmerge: corrupt run: " + err.Error())
			}
			runs[src] = merge.Sequence{Strings: rs}
		})
		out, mwork, mbusy = merge.MergeParHooked(c.Pool(), runs, opt.ParMergeMin, mergeHooks(c))
	}
	c.AddWork(mwork)
	c.AddCPU(mbusy)
	c.SetPhase(stats.PhaseOther)
	return Result{Strings: out.Strings}
}
