// The streaming Step-3→Step-4 seam: the chunked exchange feeding
// incremental run readers, exposed to the loser tree as pull-based merge
// Sources. Where exchangeRuns (core.go) decodes each incoming run WHOLE on
// arrival, streamRuns lets Step 4 begin once the first head of every run
// is decodable: the merge pulls heads on demand and, whenever the one head
// it needs next has not been decoded yet, drains more frames of the
// exchange — feeding whichever run they belong to — until it has. Merging
// therefore starts before the last frame lands, and the tail of the
// exchange hides under real merge work instead of only under decode work.
//
// The deterministic statistics are identical to the eager seam by
// construction: the chunked exchange bills each bucket as one logical
// message (comm/stream.go), the readers decode byte-identical runs
// (wire/stream.go), and the streaming loser tree replays the eager tree's
// exact comparison sequence (merge/stream.go). The differential suite in
// stringsort asserts all of it end to end, for every algorithm, transport
// and seam mode.
package core

import (
	"time"

	"dss/internal/comm"
	"dss/internal/merge"
	"dss/internal/stats"
	"dss/internal/trace"
	"dss/internal/wire"
)

// runStream couples a chunked exchange in flight with one incremental run
// reader per source. It is confined to the PE goroutine, like the Comm.
type runStream struct {
	c       *comm.Comm
	pd      *comm.ChunkPending
	readers []*wire.RunReader
	srcs    []*streamSource // memoized pull views, shared by merge and snapshot
}

// streamRuns executes the streaming variant of the Step-3 seam: it posts
// every outgoing bucket as a chunked transfer, switches the accounting
// phase to next, and returns one pull-based source per group member. In
// blocking mode (the bulk-synchronous differential reference) every
// fragment is drained and decoded BEFORE the phase switch, so the merge
// never blocks — reproducing the eager blocking seam's schedule with the
// streaming decode machinery.
func streamRuns(c *comm.Comm, g *comm.Group, parts [][]byte, format wire.RunFormat, blocking bool, chunk int, next stats.Phase) *runStream {
	rs := &runStream{c: c, readers: make([]*wire.RunReader, len(parts))}
	for i := range rs.readers {
		rs.readers[i] = wire.NewRunReader(format)
	}
	rs.pd = g.IAlltoallvChunked(parts, chunk)
	if blocking {
		// The bulk-synchronous reference hides no communication and must
		// report the same zero overlap (and no merge lead) as the eager
		// blocking seam.
		rs.pd.NoOverlapCredit()
		for rs.drainOne() {
		}
	}
	c.SetPhase(next)
	return rs
}

// drainOne receives the next fragment of the exchange and feeds it to its
// run's reader (readers copy, so the backing transport frame is released
// immediately). false reports that every bucket has been fully delivered.
func (rs *runStream) drainOne() bool {
	idx, chunk, frame, last, ok := rs.pd.RecvChunk()
	if !ok {
		return false
	}
	rs.readers[idx].Feed(chunk)
	rs.c.Release(frame)
	if last {
		rs.readers[idx].Finish()
	}
	return true
}

// tryDrain opportunistically receives every already-queued fragment of the
// exchange without blocking and reports whether the exchange is now fully
// delivered. On transports without the non-blocking capability it receives
// nothing and reports false (unless the exchange already drained), which
// callers treat as "keep going sequentially". Early draining only shifts
// WHEN fragments are consumed; the accounting is RecvChunk's.
func (rs *runStream) tryDrain() bool {
	for {
		idx, chunk, frame, last, ok := rs.pd.TryRecvChunk()
		if !ok {
			return rs.pd.Drained()
		}
		rs.readers[idx].Feed(chunk)
		rs.c.Release(frame)
		if last {
			rs.readers[idx].Finish()
		}
	}
}

// sourceList returns the memoized per-run pull views. Memoization matters:
// the snapshot must materialize the SAME sources the merge has been
// pulling from, or their positions would diverge.
func (rs *runStream) sourceList() []*streamSource {
	if rs.srcs == nil {
		rs.srcs = make([]*streamSource, len(rs.readers))
		for i, r := range rs.readers {
			rs.srcs[i] = &streamSource{rs: rs, r: r}
		}
	}
	return rs.srcs
}

// sources returns the pull-based views of all runs, in group rank order.
func (rs *runStream) sources() []merge.Source {
	list := rs.sourceList()
	out := make([]merge.Source, len(list))
	for i, s := range list {
		out[i] = s
	}
	return out
}

// snapshot returns the merge's handoff probe (merge.StreamOptions.Snapshot):
// it reports ready only once every fragment of the exchange has been
// received, at which point it decodes all remaining run tails in parallel
// on the pool and hands the merge fully materialized remainders. The
// decode busy time lands on the measured CPU channel (like the eager
// seam's parallel run decode); the deterministic stats are untouched.
func (rs *runStream) snapshot(withSats bool) func() ([]merge.Sequence, bool) {
	return func() ([]merge.Sequence, bool) {
		if !rs.tryDrain() {
			return nil, false
		}
		// The streaming tree commits to the partitioned finish here: the
		// exchange has fully arrived and the remainders materialize next.
		rs.c.Trace().Instant(trace.TrackControl, "merge-handoff", 0, 0)
		srcs := rs.sourceList()
		rem := make([]merge.Sequence, len(srcs))
		busy := rs.c.ForEachSpan("decode-tail", len(srcs), func(i int) {
			rem[i] = srcs[i].materializeRemaining(withSats)
		})
		rs.c.AddCPU(busy)
		return rem, true
	}
}

// streamSource adapts one run's reader to merge.Source. Heads obey the
// merge aliasing contract because the reader decodes into append-only
// arenas that never alias (released) transport buffers.
type streamSource struct {
	rs  *runStream
	r   *wire.RunReader
	cur wire.Item
	has bool
	eof bool
}

// Head returns the run's current head, draining exchange frames until it
// is decodable; ok=false reports the run exhausted.
func (s *streamSource) Head() ([]byte, bool) {
	for !s.has && !s.eof {
		it, ok, err := s.r.Next()
		switch {
		case err != nil:
			panic("core: corrupt streamed run: " + err.Error())
		case ok:
			s.cur, s.has = it, true
		case s.r.Done():
			s.eof = true
		default:
			// The head is not decodable yet: pull the next frame of the
			// exchange (it may belong to any run). When everything has
			// been delivered the reader is finished, and the next Next
			// reports either completion or the truncation error.
			s.rs.drainOne()
		}
	}
	if s.eof {
		return nil, false
	}
	return s.cur.S, true
}

// HeadLCP returns the current head's LCP with the run's previous string.
func (s *streamSource) HeadLCP() int32 { return s.cur.LCP }

// HeadSat returns the current head's satellite word (hQuick tag or PDMS
// origin).
func (s *streamSource) HeadSat() uint64 { return s.cur.Sat }

// Advance consumes the current head.
func (s *streamSource) Advance() { s.has = false }

// materializeRemaining decodes the rest of the run into a Sequence, the
// current un-advanced head (if any) first. Only valid once the exchange is
// fully delivered — it never drains frames, so a stalled reader is a
// programming error, not a wait. The source is exhausted afterwards; the
// handoff contract guarantees it is never pulled again.
func (s *streamSource) materializeRemaining(withSats bool) merge.Sequence {
	var seq merge.Sequence
	add := func(it wire.Item) {
		seq.Strings = append(seq.Strings, it.S)
		seq.LCPs = append(seq.LCPs, it.LCP)
		if withSats {
			seq.Sats = append(seq.Sats, it.Sat)
		}
	}
	if s.has {
		add(s.cur)
		s.has = false
	}
	for !s.eof {
		it, ok, err := s.r.Next()
		switch {
		case err != nil:
			panic("core: corrupt streamed run: " + err.Error())
		case ok:
			add(it)
		case s.r.Done():
			s.eof = true
		default:
			panic("core: streamed run stalled after drained exchange")
		}
	}
	return seq
}

// markMergeStart returns the merge's first-output hook: it stamps the PE's
// merge-start milestone, which the overlap reporting compares against the
// exchange-done stamp to show merging began while frames were in flight.
func markMergeStart(c *comm.Comm) func() {
	return func() {
		c.StatsPE().MergeStartNS = time.Now().UnixNano()
		c.Trace().Instant(trace.TrackControl, "merge-start", 0, 0)
	}
}

// mergeHooks builds the merge layer's trace hooks from the PE's recorder:
// worker spans labeled "merge" plus one "merge-seam" instant per
// partition boundary (Arg = output index, Arg2 = partition). Zero hooks —
// costing nothing — when tracing is off.
func mergeHooks(c *comm.Comm) merge.Hooks {
	tr := c.Trace()
	if tr == nil {
		return merge.Hooks{}
	}
	return merge.Hooks{
		Obs: c.WorkerObserver("merge"),
		OnPartition: func(bounds []int) {
			for j := 1; j < len(bounds); j++ {
				tr.Instant(trace.TrackControl, "merge-seam", int64(bounds[j]), int64(j-1))
			}
		},
	}
}

// drainTagged pulls every (string, tag) pair of all runs in rank order —
// hQuick's streaming counterpart of decode-then-concatenate: fragments
// still decode incrementally as they arrive (pulling run i drains frames
// of every run), and the concatenation stays in rank order, independent of
// arrival timing.
func (rs *runStream) drainTagged() ([][]byte, []uint64) {
	// Parallel fast path: once every fragment has arrived, the per-run
	// decodes are independent — materialize them on the pool and
	// concatenate in rank order. Timing cannot affect the result (or any
	// deterministic stat): the concatenation order is fixed and no merge
	// work is billed on this path either way.
	if pool := rs.c.Pool(); !pool.Sequential() && rs.tryDrain() {
		srcs := rs.sourceList()
		rem := make([]merge.Sequence, len(srcs))
		busy := rs.c.ForEachSpan("decode-tail", len(srcs), func(i int) {
			rem[i] = srcs[i].materializeRemaining(true)
		})
		rs.c.AddCPU(busy)
		var ss [][]byte
		var us []uint64
		for _, r := range rem {
			ss = append(ss, r.Strings...)
			us = append(us, r.Sats...)
		}
		return ss, us
	}
	var ss [][]byte
	var us []uint64
	for _, src := range rs.sources() {
		for {
			s, ok := src.Head()
			if !ok {
				break
			}
			ss = append(ss, s)
			us = append(us, src.HeadSat())
			src.Advance()
		}
	}
	return ss, us
}
