// Package core implements the paper's distributed string sorting
// algorithms on the comm substrate:
//
//   - HQuick (Section IV): hypercube quicksort adapted to strings — the
//     atomic baseline and the distributed sample sorter of MS and PDMS;
//   - MergeSort (Section V): distributed string merge sort, in the
//     MS-simple configuration (no LCP optimizations) and the MS
//     configuration (LCP compression + LCP-aware multiway merging);
//   - PDMS (Section VI): distributed prefix-doubling string merge sort,
//     which approximates distinguishing prefix lengths with distributed
//     duplicate detection and transmits only those prefixes;
//   - FKMerge (Section II-C): the Fischer-Kurpicz distributed mergesort
//     baseline with centralized deterministic sample sorting and a plain
//     loser tree.
//
// All algorithms are SPMD: every PE calls the function collectively with
// its local string array and receives its fragment of the globally sorted
// output (PE i's strings ≤ PE i+1's strings, each fragment locally sorted).
// Input slices are not modified; the spine is copied internally.
//
// The Step-3→Step-4 seam of every algorithm is split-phase by default:
// all outgoing buckets are posted first (comm.IAlltoallv), and each
// incoming run is decoded the moment its frames land, so the exchange
// overlaps the decode work instead of ending at a global barrier. The
// deterministic statistics are unaffected — received bytes are billed to
// the phase the exchange was posted in — and the pre-split bulk-synchronous
// seam remains selectable through the BlockingExchange options for
// differential testing.
package core

import (
	"dss/internal/comm"
	"dss/internal/stats"
)

// Origin identifies where an output string came from: the PE it was
// submitted on and its index in that PE's input array. PDMS reports origins
// so that applications (and the verifier) can fetch the full string behind
// a transmitted prefix.
type Origin struct {
	PE    int32
	Index int32
}

// Result is one PE's fragment of the sorted output.
type Result struct {
	// Strings is the locally sorted fragment; globally, fragments are
	// ordered by PE rank. For PDMS these are distinguishing prefixes, not
	// full strings (see PrefixOnly).
	Strings [][]byte
	// LCPs is the LCP array of Strings (LCPs[0] = 0). It is nil for
	// algorithms that do not produce LCP output (MS-simple, FKMerge).
	LCPs []int32
	// Origins, if non-nil, gives the provenance of each output string
	// (PDMS always fills it).
	Origins []Origin
	// PrefixOnly marks PDMS results: Strings hold only the approximated
	// distinguishing prefixes. The permutation they define is the correct
	// sorted order of the underlying full strings; use Reconstruct to
	// materialize them.
	PrefixOnly bool
	// Drained counts the items streamed to the budget pipeline's run
	// writer. Budget-mode results hold no Strings — the sorted fragment
	// lives in the caller's sorted-run file.
	Drained int64
}

// originSat packs an Origin into a merge satellite word.
func originSat(pe, idx int) uint64 {
	return uint64(uint32(pe))<<32 | uint64(uint32(idx))
}

func satOrigin(u uint64) Origin {
	return Origin{PE: int32(u >> 32), Index: int32(uint32(u))}
}

func allRanks(p int) []int {
	r := make([]int, p)
	for i := range r {
		r[i] = i
	}
	return r
}

// cloneSpine copies the slice headers (not the character data) so the
// caller's array survives in-place sorting.
func cloneSpine(ss [][]byte) [][]byte {
	out := make([][]byte, len(ss))
	copy(out, ss)
	return out
}

// partOffsets prefix-sums per-destination encoded sizes into arena
// offsets: bucket dst occupies [offs[dst], offs[dst+1]).
func partOffsets(sizes []int) []int {
	offs := make([]int, len(sizes)+1)
	for i, s := range sizes {
		offs[i+1] = offs[i] + s
	}
	return offs
}

// encodeParts runs the Step-3 bucket encoders on the PE's work pool: each
// enc(dst, buf) receives a zero-length slice whose capacity is exactly
// sizes[dst] — a disjoint region of ONE pre-sized arena — appends its
// bucket's encoding, and returns the filled slice. The regions are
// disjoint by construction, so the p encoders run concurrently without
// synchronization, and the encoded bytes are identical at every pool
// width (each encoder is a pure function of its bucket). Worker busy time
// is credited to the current phase's CPU channel. Used directly by the
// streaming seam, which hands the parts to the chunked exchange.
func encodeParts(c *comm.Comm, sizes []int, enc func(dst int, buf []byte) []byte) [][]byte {
	offs := partOffsets(sizes)
	arena := make([]byte, offs[len(sizes)])
	parts := make([][]byte, len(sizes))
	busy := c.ForEachSpan("encode", len(sizes), func(dst int) {
		lo, hi := offs[dst], offs[dst+1]
		buf := enc(dst, arena[lo:lo:hi])
		if len(buf) != hi-lo {
			panic("core: bucket encoder size mismatch")
		}
		parts[dst] = buf
	})
	c.AddCPU(busy)
	return parts
}

// exchangeEncoded executes the Step-3 all-to-all seam shared by all four
// algorithms, with both sides of the exchange spread over the PE's work
// pool: the p bucket encoders run concurrently into disjoint regions of
// one exactly pre-sized arena (sizes[dst] bytes each), and every received
// part is handed to decode exactly once — concurrently too — with its
// buffer released afterwards (all decoders copy their results out). The
// accounting phase is left at next.
//
// Split-phase mode (blocking=false, the default): the exchange is posted
// STAGED — each bucket is posted the moment its encoder task finishes,
// signaled through a completion channel so the send and its accounting
// stay on the PE goroutine — and each incoming run is dispatched to a
// decode task as soon as its frames land, in ARRIVAL order. Stragglers'
// communication thus hides under both the faster buckets' sends and the
// decode work. Received bytes stay billed to the posting phase and the
// encoded bytes are schedule-independent, so model time and bytes/string
// are bit-identical to the sequential blocking seam; only wall-clock
// improves, measured as stats.PE.Overlap and the CPU channel.
//
// Blocking mode reproduces the bulk-synchronous seam: encode all (in
// parallel), one Alltoallv, decode all (in parallel), then the phase
// switch.
func exchangeEncoded(c *comm.Comm, g *comm.Group, sizes []int,
	enc func(dst int, buf []byte) []byte, blocking bool, next stats.Phase,
	decode func(src int, msg []byte)) {
	pool := c.Pool()
	if blocking {
		parts := encodeParts(c, sizes, enc)
		recvd := g.Alltoallv(parts)
		dgrp := pool.Group()
		for src, msg := range recvd {
			dgrp.Go(func() {
				decode(src, msg)
				c.Release(msg)
			})
		}
		c.AddCPU(dgrp.Wait())
		c.SetPhase(next)
		return
	}
	// Staged posting: the Pending is created first (it captures the
	// accounting phase and the overlap clock), encoder tasks signal their
	// bucket index on completion, and the PE goroutine posts each part as
	// the signal arrives — at width 1 the tasks run inline, the channel
	// fills in destination order, and the seam is exactly sequential.
	offs := partOffsets(sizes)
	arena := make([]byte, offs[len(sizes)])
	parts := make([][]byte, len(sizes))
	pd := g.IAlltoallvStaged()
	egrp := pool.Group()
	done := make(chan int, len(sizes))
	for dst := 0; dst < len(sizes); dst++ {
		dst := dst
		egrp.Go(func() {
			// Signal via defer so a panicking encoder still unblocks the
			// posting loop below; the panic itself re-raises at egrp.Wait.
			defer func() { done <- dst }()
			lo, hi := offs[dst], offs[dst+1]
			buf := enc(dst, arena[lo:lo:hi])
			if len(buf) != hi-lo {
				panic("core: bucket encoder size mismatch")
			}
			parts[dst] = buf
		})
	}
	for range sizes {
		dst := <-done
		pd.Post(dst, parts[dst])
	}
	c.AddCPU(egrp.Wait())
	c.SetPhase(next)
	dgrp := pool.Group()
	for {
		src, msg, ok := pd.PollAny()
		if !ok {
			break
		}
		dgrp.Go(func() {
			decode(src, msg)
			c.Release(msg)
		})
	}
	c.AddCPU(dgrp.Wait())
}
