// Package core implements the paper's distributed string sorting
// algorithms on the comm substrate:
//
//   - HQuick (Section IV): hypercube quicksort adapted to strings — the
//     atomic baseline and the distributed sample sorter of MS and PDMS;
//   - MergeSort (Section V): distributed string merge sort, in the
//     MS-simple configuration (no LCP optimizations) and the MS
//     configuration (LCP compression + LCP-aware multiway merging);
//   - PDMS (Section VI): distributed prefix-doubling string merge sort,
//     which approximates distinguishing prefix lengths with distributed
//     duplicate detection and transmits only those prefixes;
//   - FKMerge (Section II-C): the Fischer-Kurpicz distributed mergesort
//     baseline with centralized deterministic sample sorting and a plain
//     loser tree.
//
// All algorithms are SPMD: every PE calls the function collectively with
// its local string array and receives its fragment of the globally sorted
// output (PE i's strings ≤ PE i+1's strings, each fragment locally sorted).
// Input slices are not modified; the spine is copied internally.
//
// The Step-3→Step-4 seam of every algorithm is split-phase by default:
// all outgoing buckets are posted first (comm.IAlltoallv), and each
// incoming run is decoded the moment its frames land, so the exchange
// overlaps the decode work instead of ending at a global barrier. The
// deterministic statistics are unaffected — received bytes are billed to
// the phase the exchange was posted in — and the pre-split bulk-synchronous
// seam remains selectable through the BlockingExchange options for
// differential testing.
package core

import (
	"dss/internal/comm"
	"dss/internal/stats"
)

// Origin identifies where an output string came from: the PE it was
// submitted on and its index in that PE's input array. PDMS reports origins
// so that applications (and the verifier) can fetch the full string behind
// a transmitted prefix.
type Origin struct {
	PE    int32
	Index int32
}

// Result is one PE's fragment of the sorted output.
type Result struct {
	// Strings is the locally sorted fragment; globally, fragments are
	// ordered by PE rank. For PDMS these are distinguishing prefixes, not
	// full strings (see PrefixOnly).
	Strings [][]byte
	// LCPs is the LCP array of Strings (LCPs[0] = 0). It is nil for
	// algorithms that do not produce LCP output (MS-simple, FKMerge).
	LCPs []int32
	// Origins, if non-nil, gives the provenance of each output string
	// (PDMS always fills it).
	Origins []Origin
	// PrefixOnly marks PDMS results: Strings hold only the approximated
	// distinguishing prefixes. The permutation they define is the correct
	// sorted order of the underlying full strings; use Reconstruct to
	// materialize them.
	PrefixOnly bool
}

// originSat packs an Origin into a merge satellite word.
func originSat(pe, idx int) uint64 {
	return uint64(uint32(pe))<<32 | uint64(uint32(idx))
}

func satOrigin(u uint64) Origin {
	return Origin{PE: int32(u >> 32), Index: int32(uint32(u))}
}

func allRanks(p int) []int {
	r := make([]int, p)
	for i := range r {
		r[i] = i
	}
	return r
}

// cloneSpine copies the slice headers (not the character data) so the
// caller's array survives in-place sorting.
func cloneSpine(ss [][]byte) [][]byte {
	out := make([][]byte, len(ss))
	copy(out, ss)
	return out
}

// exchangeRuns executes the Step-3 all-to-all seam shared by all four
// algorithms: it hands every received part to decode exactly once and
// releases the underlying buffer afterwards (all decoders copy their
// results out), then leaves the accounting phase at next.
//
// Split-phase mode (blocking=false, the default): every outgoing part is
// posted first, the accounting phase switches to next, and each incoming
// run is decoded as soon as its frames land — in ARRIVAL order — so the
// stragglers' communication is hidden under the decode work of the runs
// that already arrived. Received bytes stay billed to the posting phase
// (the exchange), so model time and bytes/string are bit-identical to the
// blocking seam; only wall-clock improves, measured as stats.PE.Overlap.
//
// Blocking mode reproduces the pre-split seam: a bulk-synchronous
// Alltoallv, then decode in rank order, then the phase switch.
func exchangeRuns(c *comm.Comm, g *comm.Group, parts [][]byte, blocking bool, next stats.Phase, decode func(src int, msg []byte)) {
	if blocking {
		recvd := g.Alltoallv(parts)
		for src, msg := range recvd {
			decode(src, msg)
			c.Release(msg)
		}
		c.SetPhase(next)
		return
	}
	pd := g.IAlltoallv(parts)
	c.SetPhase(next)
	for {
		src, msg, ok := pd.PollAny()
		if !ok {
			return
		}
		decode(src, msg)
		c.Release(msg)
	}
}
