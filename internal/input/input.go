// Package input generates the evaluation workloads of Section VII. The
// paper's real-world datasets (82 GB of CommonCrawl text, 125 GB of
// 1000-Genomes DNA reads, a Wikipedia suffix instance) are not available
// offline, so this package builds synthetic equivalents with matched
// statistics — alphabet size, string length distribution, duplicate rate,
// average LCP share and D/N ratio — as documented per generator and
// validated by the package tests. The D/N instances are implemented
// exactly as the paper describes them.
//
// All generators are deterministic functions of (seed, pe, p): every PE
// produces its own fragment without communication, and the union over PEs
// is the same global instance regardless of p (for the strided generators).
package input

import (
	"math/rand"
)

// DNConfig parameterizes the synthetic D/N-ratio instance of Section VII-A:
// string i consists of repetitions of the first alphabet character, then a
// base-σ encoding of i, then filler characters up to the target length.
// Ratio r places the encoding: r=0 puts it at the front (tiny D), r=1 at
// the end (D = N).
type DNConfig struct {
	StringsPerPE int
	Length       int     // paper: 500; scaled down in our experiments
	Ratio        float64 // r = D/N ∈ [0,1]
	Sigma        int     // alphabet size (default 26)
	Seed         int64
}

// DN generates PE pe's fragment of the D/N instance. Strings are assigned
// to PEs by stride (i = j·p + pe), which distributes the lexicographic
// range uniformly like the paper's random distribution.
func DN(cfg DNConfig, pe, p int) [][]byte {
	if cfg.Sigma <= 1 {
		cfg.Sigma = 26
	}
	n := cfg.StringsPerPE * p
	w := digitsBase(n, cfg.Sigma)
	pad := int(cfg.Ratio * float64(cfg.Length-w))
	if pad < 0 {
		pad = 0
	}
	if pad+w > cfg.Length {
		pad = cfg.Length - w
	}
	out := make([][]byte, 0, cfg.StringsPerPE)
	for j := 0; j < cfg.StringsPerPE; j++ {
		i := j*p + pe
		s := make([]byte, cfg.Length)
		for k := 0; k < pad; k++ {
			s[k] = alphaChar(0)
		}
		encodeBase(s[pad:pad+w], i, cfg.Sigma)
		for k := pad + w; k < cfg.Length; k++ {
			s[k] = alphaChar(0)
		}
		out = append(out, s)
	}
	return out
}

// DNSkewed generates the skewed D/N variant of Section VII-E: the 20%
// lexicographically smallest strings are padded with trailing filler to 4×
// the length, without contributing to the distinguishing prefixes. This
// breaks string-based load balancing while char-based sampling copes.
func DNSkewed(cfg DNConfig, pe, p int) [][]byte {
	ss := DN(cfg, pe, p)
	n := cfg.StringsPerPE * p
	cut := n / 5
	for j := range ss {
		i := j*p + pe
		if i < cut { // smallest base-σ encodings are the smallest strings
			padded := make([]byte, 4*cfg.Length)
			copy(padded, ss[j])
			for k := cfg.Length; k < len(padded); k++ {
				padded[k] = alphaChar(0)
			}
			ss[j] = padded
		}
	}
	return ss
}

// CCConfig parameterizes the COMMONCRAWL-like text instance: lines of
// Zipf-distributed words over a large byte alphabet, with a deliberate
// share of exactly repeated lines. Matched statistics (Section VII-A):
// alphabet ≈ 242, average line ≈ 40 characters, D/N ≈ 0.68, average LCP
// ≈ 60% of the line.
type CCConfig struct {
	LinesPerPE int
	Seed       int64
	// DupProb is the probability that a line is drawn from the shared hot
	// pool instead of being freshly sampled (default 0.35, giving the high
	// duplicate rate of real web dumps).
	DupProb float64
	// HotPool is the number of globally shared duplicate lines (default 256).
	HotPool int
}

// CommonCrawlLike generates PE pe's text lines.
func CommonCrawlLike(cfg CCConfig, pe, p int) [][]byte {
	if cfg.DupProb == 0 {
		cfg.DupProb = 0.35
	}
	if cfg.HotPool == 0 {
		cfg.HotPool = 256
	}
	// Shared state (identical on every PE): vocabulary and hot pool.
	shared := rand.New(rand.NewSource(cfg.Seed))
	vocab := makeVocab(shared, 8192)
	zipf := rand.NewZipf(shared, 1.4, 4, uint64(len(vocab)-1))
	hot := make([][]byte, cfg.HotPool)
	for i := range hot {
		hot[i] = makeLine(shared, zipf, vocab)
	}
	// Per-PE stream.
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(pe+1)*0x5deece66d))
	zipfLocal := rand.NewZipf(rng, 1.4, 4, uint64(len(vocab)-1))
	out := make([][]byte, 0, cfg.LinesPerPE)
	for j := 0; j < cfg.LinesPerPE; j++ {
		if rng.Float64() < cfg.DupProb {
			out = append(out, hot[rng.Intn(len(hot))])
		} else {
			out = append(out, makeLine(rng, zipfLocal, vocab))
		}
	}
	return out
}

// makeVocab builds a word list over a 242-symbol byte alphabet with
// Zipf-friendly short words.
func makeVocab(rng *rand.Rand, size int) [][]byte {
	vocab := make([][]byte, size)
	seen := map[string]bool{}
	for i := 0; i < size; {
		l := 2 + rng.Intn(9)
		w := make([]byte, l)
		for k := range w {
			// 242 printable-ish symbols: 0x21..0xFF minus a few.
			w[k] = byte(0x21 + rng.Intn(222))
		}
		if seen[string(w)] {
			continue
		}
		seen[string(w)] = true
		vocab[i] = w
		i++
	}
	return vocab
}

func makeLine(rng *rand.Rand, zipf *rand.Zipf, vocab [][]byte) []byte {
	words := 2 + rng.Intn(9)
	var line []byte
	for k := 0; k < words; k++ {
		if k > 0 {
			line = append(line, ' ')
		}
		line = append(line, vocab[zipf.Uint64()]...)
	}
	return line
}

// DNAConfig parameterizes the DNAREADS-like instance: fixed-length reads
// sampled from a shared random genome over {A,C,G,T}, with a share of
// reads drawn from hot offsets (sequencing coverage duplicates). Matched
// statistics: alphabet 4, read length ≈ 99, average LCP ≈ 30% of the read,
// D/N ≈ 0.38.
type DNAConfig struct {
	ReadsPerPE int
	ReadLen    int // default 99
	GenomeLen  int // default 1<<20
	Seed       int64
	// HotFrac is the fraction of reads drawn from the hot offset pool
	// (default 0.42).
	HotFrac float64
	// HotPool is the number of hot offsets (default ReadsPerPE/8+16).
	HotPool int
}

// DNAReads generates PE pe's reads.
func DNAReads(cfg DNAConfig, pe, p int) [][]byte {
	if cfg.ReadLen == 0 {
		cfg.ReadLen = 99
	}
	if cfg.GenomeLen == 0 {
		cfg.GenomeLen = 1 << 20
	}
	if cfg.HotFrac == 0 {
		cfg.HotFrac = 0.42
	}
	if cfg.HotPool == 0 {
		cfg.HotPool = cfg.ReadsPerPE/8 + 16
	}
	bases := []byte("ACGT")
	shared := rand.New(rand.NewSource(cfg.Seed))
	genome := make([]byte, cfg.GenomeLen)
	for i := range genome {
		genome[i] = bases[shared.Intn(4)]
	}
	hot := make([]int, cfg.HotPool)
	for i := range hot {
		hot[i] = shared.Intn(cfg.GenomeLen - cfg.ReadLen)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(pe+1)*0x2545f4914f6cdd1d))
	out := make([][]byte, 0, cfg.ReadsPerPE)
	for j := 0; j < cfg.ReadsPerPE; j++ {
		var off int
		if rng.Float64() < cfg.HotFrac {
			// Hot offset with small jitter: long shared prefixes without
			// exact duplication dominating.
			off = hot[rng.Intn(len(hot))] + rng.Intn(3)
		} else {
			off = rng.Intn(cfg.GenomeLen - cfg.ReadLen - 4)
		}
		read := make([]byte, cfg.ReadLen)
		copy(read, genome[off:off+cfg.ReadLen])
		out = append(out, read)
	}
	return out
}

// SuffixConfig parameterizes the suffix sorting instance of Section VII-E:
// all suffixes of one generated text, the extreme D ≪ N case
// (the paper measures D/N ≈ 1e-4).
type SuffixConfig struct {
	TextLen int
	Seed    int64
}

// SuffixInstance generates PE pe's share of the suffixes of the shared
// text: suffix j goes to PE j mod p. Suffixes are zero-copy slices of a
// per-PE copy of the text, like the pointer representation the sorters use.
func SuffixInstance(cfg SuffixConfig, pe, p int) [][]byte {
	shared := rand.New(rand.NewSource(cfg.Seed))
	vocab := makeVocab(shared, 2048)
	zipf := rand.NewZipf(shared, 1.3, 3, uint64(len(vocab)-1))
	var text []byte
	for len(text) < cfg.TextLen {
		text = append(text, vocab[zipf.Uint64()]...)
		text = append(text, ' ')
	}
	text = text[:cfg.TextLen]
	out := make([][]byte, 0, cfg.TextLen/p+1)
	for j := pe; j < cfg.TextLen; j += p {
		out = append(out, text[j:])
	}
	return out
}

// Random generates uniformly random strings (lengths in [1, maxLen]) for
// property tests and microbenchmarks.
func Random(n, maxLen, sigma int, pe, p int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed ^ int64(pe+1)*0x9e3779b9))
	out := make([][]byte, n)
	for i := range out {
		l := 1 + rng.Intn(maxLen)
		s := make([]byte, l)
		for k := range s {
			s[k] = byte('a' + rng.Intn(sigma))
		}
		out[i] = s
	}
	return out
}

// Helpers.

// alphaChar maps digit d to the d-th alphabet character (printable,
// starting at 'a' and wrapping through the byte range).
func alphaChar(d int) byte {
	return byte('a' + d%26)
}

// digitsBase returns the number of base-σ digits needed for values < n.
func digitsBase(n, sigma int) int {
	w := 1
	for v := sigma; v < n; v *= sigma {
		w++
	}
	return w
}

// encodeBase writes i as exactly len(dst) base-σ digits, most significant
// first, using distinct characters per digit value.
func encodeBase(dst []byte, i, sigma int) {
	for k := len(dst) - 1; k >= 0; k-- {
		dst[k] = digitChar(i % sigma)
		i /= sigma
	}
}

// digitChar maps a digit to a character; digits must be distinct and
// ordered, so we use an increasing byte ramp starting at '0'.
func digitChar(d int) byte {
	return byte('0' + d)
}

// Gather concatenates the fragments of all PEs (test/tool helper).
func Gather(gen func(pe int) [][]byte, p int) [][]byte {
	var all [][]byte
	for pe := 0; pe < p; pe++ {
		all = append(all, gen(pe)...)
	}
	return all
}
