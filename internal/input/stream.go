package input

import (
	"bufio"
	"bytes"
	"io"
)

// DefaultChunkBytes is the arena size LineReader targets per chunk when the
// caller passes 0.
const DefaultChunkBytes = 1 << 20

// LineReader reads newline-separated strings from r in bounded chunks: each
// Next call returns the lines whose bytes fit into one arena of roughly
// chunkBytes, backed by a single allocation instead of one per line. It is
// the chunked-input half of the out-of-core pipeline — the caller's peak
// temporary footprint per call is one chunk, not the whole file — and also
// the fast path for in-RAM runs (far fewer allocations than a
// line-at-a-time scanner).
//
// A line longer than chunkBytes is returned alone in an oversized chunk;
// lines are never split. The final line may lack a trailing newline.
type LineReader struct {
	br      *bufio.Reader
	chunk   int
	pending []byte // one read-ahead line that overflowed the previous chunk
	eof     bool
}

// NewLineReader returns a LineReader over r with the given per-chunk byte
// target (0 = DefaultChunkBytes).
func NewLineReader(r io.Reader, chunkBytes int) *LineReader {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	buf := chunkBytes
	if buf > 1<<20 {
		buf = 1 << 20
	}
	if buf < 64 {
		buf = 64
	}
	return &LineReader{br: bufio.NewReaderSize(r, buf), chunk: chunkBytes}
}

// Next returns the next chunk of lines, or (nil, nil) after the last line.
// The returned slices share one arena owned by the caller; the reader keeps
// no reference to them.
func (lr *LineReader) Next() ([][]byte, error) {
	var lines [][]byte
	used := 0
	arena := make([]byte, 0, lr.chunk)
	if lr.pending != nil {
		// The line that overflowed the previous chunk opens this one (its
		// own allocation; it may exceed the chunk bound on its own, in
		// which case it ships alone).
		lines = append(lines, lr.pending)
		used = len(lr.pending)
		lr.pending = nil
		if used >= lr.chunk {
			return lines, nil
		}
	}
	for !lr.eof && used < lr.chunk {
		line, err := lr.br.ReadBytes('\n')
		if err == io.EOF {
			lr.eof = true
		} else if err != nil {
			return nil, err
		}
		line = bytes.TrimSuffix(line, []byte("\n"))
		if len(line) == 0 && lr.eof {
			break
		}
		if used+len(line) > lr.chunk {
			if len(lines) == 0 {
				// The line alone exceeds the bound: ship it as its own
				// oversized chunk rather than splitting it.
				return [][]byte{append([]byte(nil), line...)}, nil
			}
			// Doesn't fit: hold it for the next chunk instead of growing
			// this arena past the bound.
			lr.pending = append([]byte(nil), line...)
			break
		}
		off := len(arena)
		arena = append(arena, line...)
		lines = append(lines, arena[off:len(arena):len(arena)])
		used += len(line)
	}
	if len(lines) == 0 && lr.eof && lr.pending == nil {
		return nil, nil
	}
	return lines, nil
}

// ReadAllLines drains the reader into one flat slice (convenience for
// callers that keep everything resident anyway, with chunked allocation
// behavior underneath).
func (lr *LineReader) ReadAllLines() ([][]byte, error) {
	var all [][]byte
	for {
		chunk, err := lr.Next()
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			return all, nil
		}
		all = append(all, chunk...)
	}
}

// A Generator produces PE pe's fragment of a deterministic instance over p
// PEs (all package generators fit after currying their config).
type Generator func(pe, p int) [][]byte

// Batches streams the instance that gen defines over `batches` virtual PEs,
// invoking emit once per fragment in order and releasing each fragment
// before generating the next. Peak memory is one fragment, so a workload of
// any size can be written to disk under a bounded footprint (the streaming
// mode of cmd/dss-gen). The emitted instance is exactly gen's p=batches
// instance; for the strided generators (DN, DNSkewed, SuffixInstance) that
// is the same global string set as the p=1 instance, merely emitted in
// strided order.
func Batches(gen Generator, batches int, emit func([][]byte) error) error {
	if batches < 1 {
		batches = 1
	}
	for pe := 0; pe < batches; pe++ {
		if err := emit(gen(pe, batches)); err != nil {
			return err
		}
	}
	return nil
}
