package input

import (
	"bytes"
	"testing"

	"dss/internal/strutil"
)

func dnRatioOf(ss [][]byte) float64 {
	return float64(strutil.TotalD(ss)) / float64(strutil.TotalLen(ss))
}

func avgLCPShare(ss [][]byte) float64 {
	sorted := strutil.Clone(ss)
	// cheap insertion-free sort via strutil reference path
	lcps := strutil.ComputeLCPArray(sortBytes(sorted))
	var lcpSum, lenSum int64
	for i, s := range sorted {
		lcpSum += int64(lcps[i])
		lenSum += int64(len(s))
	}
	return float64(lcpSum) / float64(lenSum)
}

func sortBytes(ss [][]byte) [][]byte {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && bytes.Compare(ss[j-1], ss[j]) > 0; j-- {
			ss[j-1], ss[j] = ss[j], ss[j-1]
		}
	}
	return ss
}

func TestDNRatioBands(t *testing.T) {
	p := 4
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := DNConfig{StringsPerPE: 500, Length: 100, Ratio: r, Seed: 1}
		all := Gather(func(pe int) [][]byte { return DN(cfg, pe, p) }, p)
		got := dnRatioOf(all)
		// w/L ≈ 0.03 noise floor for r=0.
		if got < r-0.05 || got > r+0.08 {
			t.Fatalf("D/N(r=%.2f) = %.3f, outside band", r, got)
		}
		for _, s := range all {
			if len(s) != 100 {
				t.Fatalf("string length %d, want 100", len(s))
			}
		}
	}
}

func TestDNGlobalUniquenessAndPInvariance(t *testing.T) {
	cfg := DNConfig{StringsPerPE: 0, Length: 50, Ratio: 0.5, Seed: 1}
	// Same global instance for different p (weak-scaling comparability).
	cfg.StringsPerPE = 120
	all4 := Gather(func(pe int) [][]byte { return DN(cfg, pe, 4) }, 4)
	cfg.StringsPerPE = 160
	all3 := Gather(func(pe int) [][]byte { return DN(cfg, pe, 3) }, 3)
	if len(all4) != len(all3) {
		t.Fatalf("sizes differ: %d vs %d", len(all4), len(all3))
	}
	if strutil.MultisetHash(all4) != strutil.MultisetHash(all3) {
		t.Fatal("global D/N instance depends on p")
	}
	// All strings distinct.
	seen := map[string]bool{}
	for _, s := range all4 {
		if seen[string(s)] {
			t.Fatalf("duplicate string in D/N instance: %q", s)
		}
		seen[string(s)] = true
	}
}

func TestDNSkewedLengths(t *testing.T) {
	cfg := DNConfig{StringsPerPE: 250, Length: 80, Ratio: 0.5, Seed: 2}
	p := 4
	all := Gather(func(pe int) [][]byte { return DNSkewed(cfg, pe, p) }, p)
	long, short := 0, 0
	for _, s := range all {
		switch len(s) {
		case 80:
			short++
		case 320:
			long++
		default:
			t.Fatalf("unexpected length %d", len(s))
		}
	}
	if long != len(all)/5 {
		t.Fatalf("padded %d of %d strings, want exactly 20%%", long, len(all))
	}
	// Padding must not change D much: D/N of the skewed instance (per
	// string) stays near the original distinguishing structure.
	d := strutil.TotalD(all)
	if float64(d) > 1.2*float64(strutil.TotalLen(all))/4*2 {
		t.Fatalf("padding added distinguishing characters: D=%d", d)
	}
}

func TestCommonCrawlLikeStatistics(t *testing.T) {
	cfg := CCConfig{LinesPerPE: 2500, Seed: 3}
	p := 4
	all := Gather(func(pe int) [][]byte { return CommonCrawlLike(cfg, pe, p) }, p)
	// Average line length ≈ 40 (paper: 40).
	avgLen := float64(strutil.TotalLen(all)) / float64(len(all))
	if avgLen < 25 || avgLen > 60 {
		t.Fatalf("average line length %.1f outside [25,60]", avgLen)
	}
	// Duplicates present and cross-PE (hot pool).
	counts := map[string]int{}
	for _, s := range all {
		counts[string(s)]++
	}
	dups := 0
	for _, c := range counts {
		if c > 1 {
			dups += c
		}
	}
	if frac := float64(dups) / float64(len(all)); frac < 0.15 || frac > 0.6 {
		t.Fatalf("duplicate line fraction %.2f outside [0.15,0.6]", frac)
	}
	// D/N band around the paper's 0.68 (duplicates force full-length DIST).
	if r := dnRatioOf(all); r < 0.45 || r > 0.9 {
		t.Fatalf("CC D/N = %.2f outside [0.45,0.9]", r)
	}
	// Alphabet is large (multi-symbol, ≈242 reachable).
	alpha := map[byte]bool{}
	for _, s := range all {
		for _, c := range s {
			alpha[c] = true
		}
	}
	if len(alpha) < 150 {
		t.Fatalf("alphabet size %d, want ≥ 150", len(alpha))
	}
}

func TestDNAReadsStatistics(t *testing.T) {
	cfg := DNAConfig{ReadsPerPE: 2500, Seed: 4}
	p := 4
	all := Gather(func(pe int) [][]byte { return DNAReads(cfg, pe, p) }, p)
	// Alphabet exactly {A,C,G,T}.
	alpha := map[byte]bool{}
	for _, s := range all {
		if len(s) != 99 {
			t.Fatalf("read length %d, want 99", len(s))
		}
		for _, c := range s {
			alpha[c] = true
		}
	}
	if len(alpha) != 4 {
		t.Fatalf("alphabet size %d, want 4", len(alpha))
	}
	// D/N band around the paper's 0.38.
	if r := dnRatioOf(all); r < 0.2 || r > 0.6 {
		t.Fatalf("DNA D/N = %.2f outside [0.2,0.6]", r)
	}
}

func TestSuffixInstanceTinyDN(t *testing.T) {
	cfg := SuffixConfig{TextLen: 4000, Seed: 5}
	p := 4
	all := Gather(func(pe int) [][]byte { return SuffixInstance(cfg, pe, p) }, p)
	if len(all) != cfg.TextLen {
		t.Fatalf("got %d suffixes, want %d", len(all), cfg.TextLen)
	}
	// All suffixes of one text: D/N must be tiny (the paper's instance has
	// D/N ≈ 1e-4; at our scale ≲ 0.02).
	if r := dnRatioOf(all); r > 0.05 {
		t.Fatalf("suffix instance D/N = %.4f, want ≪ 1", r)
	}
	// Suffix lengths must be exactly {1, ..., TextLen}.
	seen := make([]bool, cfg.TextLen+1)
	for _, s := range all {
		if seen[len(s)] {
			t.Fatalf("duplicate suffix length %d", len(s))
		}
		seen[len(s)] = true
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := CommonCrawlLike(CCConfig{LinesPerPE: 100, Seed: 7}, 2, 4)
	b := CommonCrawlLike(CCConfig{LinesPerPE: 100, Seed: 7}, 2, 4)
	if strutil.MultisetHash(a) != strutil.MultisetHash(b) {
		t.Fatal("CommonCrawlLike not deterministic")
	}
	c := DNAReads(DNAConfig{ReadsPerPE: 100, Seed: 7}, 1, 4)
	d := DNAReads(DNAConfig{ReadsPerPE: 100, Seed: 7}, 1, 4)
	if strutil.MultisetHash(c) != strutil.MultisetHash(d) {
		t.Fatal("DNAReads not deterministic")
	}
	e := DNAReads(DNAConfig{ReadsPerPE: 100, Seed: 8}, 1, 4)
	if strutil.MultisetHash(c) == strutil.MultisetHash(e) {
		t.Fatal("DNAReads ignores seed")
	}
}

func TestRandomGenerator(t *testing.T) {
	ss := Random(500, 20, 3, 0, 1, 9)
	if len(ss) != 500 {
		t.Fatalf("got %d strings", len(ss))
	}
	for _, s := range ss {
		if len(s) < 1 || len(s) > 20 {
			t.Fatalf("length %d out of range", len(s))
		}
		for _, c := range s {
			if c < 'a' || c > 'c' {
				t.Fatalf("character %q out of alphabet", c)
			}
		}
	}
}

var _ = avgLCPShare // exercised indirectly; kept for the bench harness
