package input

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestLineReaderMatchesSplit feeds files of varying shapes through the
// chunked reader at several chunk sizes and checks the line sequence is
// exactly the newline split, with every chunk arena within bound (except a
// single oversized line, which is allowed to travel alone).
func TestLineReaderMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	files := []string{
		"",
		"\n",
		"a",
		"a\n",
		"a\nbb\nccc\n",
		"a\n\nb\n", // empty interior line survives
		strings.Repeat("x", 5000) + "\nshort\n", // line larger than any chunk
	}
	// A bigger random file: lines of length 0..80.
	var big strings.Builder
	for i := 0; i < 2000; i++ {
		for k := rng.Intn(81); k > 0; k-- {
			big.WriteByte(byte('a' + rng.Intn(26)))
		}
		big.WriteByte('\n')
	}
	files = append(files, big.String())

	for fi, file := range files {
		want := strings.Split(file, "\n")
		if len(want) > 0 && want[len(want)-1] == "" && file != "" {
			want = want[:len(want)-1] // trailing newline is a terminator, not an empty line
		}
		if file == "" {
			want = nil
		}
		for _, chunk := range []int{1, 7, 64, 1024, 1 << 20} {
			lr := NewLineReader(strings.NewReader(file), chunk)
			var got []string
			for {
				lines, err := lr.Next()
				if err != nil {
					t.Fatalf("file %d chunk %d: %v", fi, chunk, err)
				}
				if lines == nil {
					break
				}
				total := 0
				oversize := false
				for _, l := range lines {
					got = append(got, string(l))
					total += len(l)
					if len(l) > chunk {
						oversize = true
					}
				}
				if total > chunk && !(oversize && len(lines) == 1) {
					t.Fatalf("file %d chunk %d: arena %d bytes over bound with %d lines",
						fi, chunk, total, len(lines))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("file %d chunk %d: got %d lines, want %d", fi, chunk, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("file %d chunk %d line %d: got %q want %q", fi, chunk, i, got[i], want[i])
				}
			}
		}
	}
}

// TestLineReaderReadAll checks the drain helper against a direct split.
func TestLineReaderReadAll(t *testing.T) {
	file := "one\ntwo\nthree"
	all, err := NewLineReader(strings.NewReader(file), 4).ReadAllLines()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "three"}
	if len(all) != len(want) {
		t.Fatalf("got %d lines, want %d", len(all), len(want))
	}
	for i := range want {
		if string(all[i]) != want[i] {
			t.Fatalf("line %d: got %q want %q", i, all[i], want[i])
		}
	}
}

// TestBatchesStridedEquivalence checks that streaming the DN instance over
// virtual PEs emits exactly the monolithic instance's string multiset (DN
// assigns strings by stride, so the union over batches is the p=1 set).
func TestBatchesStridedEquivalence(t *testing.T) {
	const n, batchCount = 120, 6
	mono := DN(DNConfig{StringsPerPE: n, Length: 40, Ratio: 0.5, Seed: 3}, 0, 1)

	gen := func(pe, p int) [][]byte {
		return DN(DNConfig{StringsPerPE: n / batchCount, Length: 40, Ratio: 0.5, Seed: 3}, pe, p)
	}
	var streamed [][]byte
	batches := 0
	err := Batches(gen, batchCount, func(ss [][]byte) error {
		if len(ss) != n/batchCount {
			t.Fatalf("batch of %d strings, want %d", len(ss), n/batchCount)
		}
		streamed = append(streamed, ss...)
		batches++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches != batchCount {
		t.Fatalf("emit called %d times, want %d", batches, batchCount)
	}
	if len(streamed) != len(mono) {
		t.Fatalf("streamed %d strings, want %d", len(streamed), len(mono))
	}
	count := map[string]int{}
	for _, s := range mono {
		count[string(s)]++
	}
	for _, s := range streamed {
		count[string(s)]--
		if count[string(s)] < 0 {
			t.Fatalf("streamed string %q not in monolithic instance", s)
		}
	}
	for s, c := range count {
		if c != 0 {
			t.Fatalf("monolithic string %q missing from stream (count %d)", s, c)
		}
	}
	// And the strided order is a permutation, not the identity: the modes
	// genuinely differ in emission order.
	if bytes.Equal(streamed[1], mono[1]) && bytes.Equal(streamed[2], mono[2]) {
		t.Fatalf("streamed order unexpectedly identical to monolithic order")
	}
}
