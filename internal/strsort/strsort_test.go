package strsort

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dss/internal/strutil"
)

// randStrings generates n random strings with lengths in [0, maxLen] over
// an alphabet of the given size. Small alphabets force long LCPs.
func randStrings(rng *rand.Rand, n, maxLen, sigma int) [][]byte {
	ss := make([][]byte, n)
	for i := range ss {
		l := rng.Intn(maxLen + 1)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('a' + rng.Intn(sigma))
		}
		ss[i] = s
	}
	return ss
}

func checkSorted(t *testing.T, ss [][]byte, lcp []int32, wantHash uint64, label string) {
	t.Helper()
	if !strutil.IsSorted(ss) {
		t.Fatalf("%s: output not sorted", label)
	}
	if strutil.MultisetHash(ss) != wantHash {
		t.Fatalf("%s: output is not a permutation of the input", label)
	}
	if lcp != nil {
		if i := strutil.ValidateLCPArray(ss, lcp); i >= 0 {
			t.Fatalf("%s: wrong LCP at index %d: got %d, strings %q | %q",
				label, i, lcp[i], ss[maxInt(i-1, 0)], ss[i])
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSortLCPSmallCases(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("")},
		{[]byte("a")},
		{[]byte(""), []byte("")},
		{[]byte("b"), []byte("a")},
		{[]byte("abc"), []byte("ab"), []byte("a"), []byte("")},
		{[]byte("same"), []byte("same"), []byte("same")},
		{[]byte("aaa"), []byte("aab"), []byte("aa"), []byte("aaaa")},
	}
	for _, in := range cases {
		ss := strutil.Clone(in)
		h := strutil.MultisetHash(ss)
		lcp, work := SortLCP(ss, nil)
		checkSorted(t, ss, lcp, h, "small")
		if len(ss) > 1 && work < 0 {
			t.Fatal("negative work")
		}
	}
}

func TestSortLCPPaperExample(t *testing.T) {
	// The twelve strings of Figure 2 of the paper.
	words := []string{
		"alpha", "order", "alps", "algae", "sorter", "snow",
		"algo", "sorbet", "sorted", "orange", "soul", "organ",
	}
	ss := make([][]byte, len(words))
	for i, w := range words {
		ss[i] = []byte(w)
	}
	h := strutil.MultisetHash(ss)
	lcp, _ := SortLCP(ss, nil)
	checkSorted(t, ss, lcp, h, "figure2")
	want := []string{
		"algae", "algo", "alpha", "alps", "orange", "order",
		"organ", "snow", "sorbet", "sorted", "sorter", "soul",
	}
	for i, w := range want {
		if string(ss[i]) != w {
			t.Fatalf("position %d: got %q, want %q", i, ss[i], w)
		}
	}
	// Figure 2 shows these LCPs after the final merge.
	wantLCP := []int32{0, 3, 2, 3, 0, 2, 2, 0, 1, 3, 5, 2}
	for i, v := range wantLCP {
		if lcp[i] != v {
			t.Fatalf("lcp[%d] = %d, want %d", i, lcp[i], v)
		}
	}
}

func TestSortLCPRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(800)
		sigma := 1 + rng.Intn(4)
		maxLen := rng.Intn(30)
		ss := randStrings(rng, n, maxLen, sigma)
		ref := strutil.Clone(ss)
		sort.Slice(ref, func(i, j int) bool { return bytes.Compare(ref[i], ref[j]) < 0 })
		h := strutil.MultisetHash(ss)
		lcp, _ := SortLCP(ss, nil)
		checkSorted(t, ss, lcp, h, "random")
		for i := range ref {
			if !bytes.Equal(ss[i], ref[i]) {
				t.Fatalf("trial %d: position %d: got %q, want %q", trial, i, ss[i], ref[i])
			}
		}
	}
}

func TestSortLCPLargeTriggersRadixPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Big enough that multiple radix levels are used (shared prefixes).
	n := 20000
	ss := make([][]byte, n)
	for i := range ss {
		s := append([]byte("commonprefix"), byte('a'+rng.Intn(3)), byte('a'+rng.Intn(3)), byte('a'+rng.Intn(26)))
		ss[i] = s
	}
	h := strutil.MultisetHash(ss)
	lcp, work := SortLCP(ss, nil)
	checkSorted(t, ss, lcp, h, "radix")
	if work == 0 {
		t.Fatal("radix path reported no work")
	}
}

func TestSortSatellitePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(500)
		ss := randStrings(rng, n, 12, 2)
		orig := strutil.Clone(ss)
		sat := make([]uint64, n)
		for i := range sat {
			sat[i] = uint64(i)
		}
		lcp, _ := SortLCP(ss, sat)
		checkSorted(t, ss, lcp, strutil.MultisetHash(orig), "satellite")
		// Each satellite value must point back at an equal original string.
		seen := make([]bool, n)
		for i, u := range sat {
			if u >= uint64(n) || seen[u] {
				t.Fatalf("satellite not a permutation: %v", sat)
			}
			seen[u] = true
			if !bytes.Equal(ss[i], orig[u]) {
				t.Fatalf("satellite %d points at %q but output is %q", u, orig[u], ss[i])
			}
		}
	}
}

func TestSortNoLCP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		ss := randStrings(rng, rng.Intn(600), 20, 3)
		h := strutil.MultisetHash(ss)
		Sort(ss, nil)
		checkSorted(t, ss, nil, h, "plain")
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		ss := strutil.Clone(raw)
		h := strutil.MultisetHash(ss)
		lcp, _ := SortLCP(ss, nil)
		return strutil.IsSorted(ss) &&
			strutil.MultisetHash(ss) == h &&
			strutil.ValidateLCPArray(ss, lcp) < 0
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSortAllEqualStrings(t *testing.T) {
	// Heavy duplicates exercise the end bucket of the radix sort and the
	// equal partition of multikey quicksort.
	for _, n := range []int{2, 100, 5000} {
		ss := make([][]byte, n)
		for i := range ss {
			ss[i] = []byte("duplicate")
		}
		lcp, _ := SortLCP(ss, nil)
		for i := 1; i < n; i++ {
			if lcp[i] != int32(len("duplicate")) {
				t.Fatalf("n=%d: lcp[%d] = %d", n, i, lcp[i])
			}
		}
	}
}

func TestSortPrefixChains(t *testing.T) {
	// a, aa, aaa, ... tests end-of-string ordering at every depth.
	n := 300
	ss := make([][]byte, n)
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for i, p := range perm {
		ss[i] = bytes.Repeat([]byte("a"), p)
	}
	h := strutil.MultisetHash(ss)
	lcp, _ := SortLCP(ss, nil)
	checkSorted(t, ss, lcp, h, "chain")
	for i := 0; i < n; i++ {
		if len(ss[i]) != i {
			t.Fatalf("position %d has length %d", i, len(ss[i]))
		}
		if i > 0 && lcp[i] != int32(i-1) {
			t.Fatalf("lcp[%d] = %d, want %d", i, lcp[i], i-1)
		}
	}
}

func TestWorkIsLinearishInD(t *testing.T) {
	// Sorting strings with a long shared prefix must not inspect the
	// shared prefix more than a small constant number of times per string.
	prefixLen := 1000
	n := 256
	prefix := bytes.Repeat([]byte("p"), prefixLen)
	ss := make([][]byte, n)
	for i := range ss {
		ss[i] = append(append([]byte{}, prefix...), byte(i))
	}
	rand.New(rand.NewSource(6)).Shuffle(n, func(i, j int) { ss[i], ss[j] = ss[j], ss[i] })
	_, work := SortLCP(ss, nil)
	d := strutil.TotalD(ss)
	if work > 8*d {
		t.Fatalf("work %d exceeds 8×D = %d: shared prefixes re-inspected too often", work, 8*d)
	}
}

func TestSorterReuse(t *testing.T) {
	st := &Sorter{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		ss := randStrings(rng, 400, 15, 2)
		h := strutil.MultisetHash(ss)
		lcp := st.SortLCPInto(ss, nil, nil)
		checkSorted(t, ss, lcp, h, "reuse")
	}
	if st.Work() == 0 {
		t.Fatal("no work accumulated across reuses")
	}
}

func BenchmarkSortLCPRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ss := randStrings(rng, 100000, 20, 26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		in := make([][]byte, len(ss))
		copy(in, ss)
		b.StartTimer()
		SortLCP(in, nil)
	}
}

func BenchmarkSortLCPCommonPrefix(b *testing.B) {
	prefix := bytes.Repeat([]byte("w"), 40)
	rng := rand.New(rand.NewSource(9))
	ss := make([][]byte, 50000)
	for i := range ss {
		ss[i] = append(append([]byte{}, prefix...), byte(rng.Intn(256)), byte(rng.Intn(256)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		in := make([][]byte, len(ss))
		copy(in, ss)
		b.StartTimer()
		SortLCP(in, nil)
	}
}
