package strsort

import (
	"bytes"
	"math/rand"
	"testing"

	"dss/internal/strutil"
)

func TestSampleSortMatchesRadix(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(4000)
		ss := randStrings(rng, n, 20, 1+rng.Intn(5))
		ref := strutil.Clone(ss)
		SortLCP(ref, nil)
		h := strutil.MultisetHash(ss)
		lcp, work := SampleSortLCP(ss, nil)
		checkSorted(t, ss, lcp, h, "samplesort")
		for i := range ref {
			if !bytes.Equal(ss[i], ref[i]) {
				t.Fatalf("trial %d: position %d differs from radix sort", trial, i)
			}
		}
		if n > 1 && work <= 0 {
			t.Fatal("no work reported")
		}
	}
}

func TestSampleSortLargeTriggersSplitterPath(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	ss := randStrings(rng, 20000, 12, 26)
	h := strutil.MultisetHash(ss)
	lcp, _ := SampleSortLCP(ss, nil)
	checkSorted(t, ss, lcp, h, "samplesort-large")
}

func TestSampleSortHeavyDuplicates(t *testing.T) {
	// Equality buckets: most strings are copies of few values.
	rng := rand.New(rand.NewSource(33))
	vals := [][]byte{[]byte("aaa"), []byte("bbb"), []byte("ccc")}
	ss := make([][]byte, 30000)
	for i := range ss {
		ss[i] = vals[rng.Intn(3)]
	}
	h := strutil.MultisetHash(ss)
	work := SampleSort(ss, nil)
	checkSorted(t, ss, nil, h, "samplesort-dups")
	// Duplicates must be cheap: equality buckets stop recursion, so work
	// stays near one classification pass (≈ n · |s| · log k).
	if work > int64(len(ss))*4*8 {
		t.Fatalf("duplicate-heavy sample sort did %d work", work)
	}
}

func TestSampleSortSatellites(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	ss := randStrings(rng, 3000, 10, 3)
	orig := strutil.Clone(ss)
	sat := make([]uint64, len(ss))
	for i := range sat {
		sat[i] = uint64(i)
	}
	SampleSort(ss, sat)
	for i, u := range sat {
		if !bytes.Equal(ss[i], orig[u]) {
			t.Fatalf("satellite %d points at %q, output %q", u, orig[u], ss[i])
		}
	}
}

func TestSampleSortVsRadixOnLargeAlphabetSkew(t *testing.T) {
	// The input class Section II-A mentions: large alphabet, skewed
	// (Zipf-ish) first characters. Both sorters must agree; the benchmark
	// below compares their cost profiles.
	rng := rand.New(rand.NewSource(35))
	ss := make([][]byte, 8000)
	for i := range ss {
		l := 3 + rng.Intn(20)
		s := make([]byte, l)
		for j := range s {
			// Skew: half the mass on few symbols, rest across 200.
			if rng.Intn(2) == 0 {
				s[j] = byte(rng.Intn(4))
			} else {
				s[j] = byte(rng.Intn(200))
			}
		}
		ss[i] = s
	}
	ref := strutil.Clone(ss)
	SortLCP(ref, nil)
	SampleSort(ss, nil)
	for i := range ref {
		if !bytes.Equal(ss[i], ref[i]) {
			t.Fatalf("position %d differs", i)
		}
	}
}

func BenchmarkSampleSortRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	ss := randStrings(rng, 100000, 20, 26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		in := make([][]byte, len(ss))
		copy(in, ss)
		b.StartTimer()
		SampleSort(in, nil)
	}
}

func BenchmarkSampleSortHeavyDuplicates(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	vals := randStrings(rng, 20, 30, 26)
	ss := make([][]byte, 100000)
	for i := range ss {
		ss[i] = vals[rng.Intn(len(vals))]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		in := make([][]byte, len(ss))
		copy(in, ss)
		b.StartTimer()
		SampleSort(in, nil)
	}
}

func BenchmarkRadixSortHeavyDuplicates(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	vals := randStrings(rng, 20, 30, 26)
	ss := make([][]byte, 100000)
	for i := range ss {
		ss[i] = vals[rng.Intn(len(vals))]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		in := make([][]byte, len(ss))
		copy(in, ss)
		b.StartTimer()
		SortLCP(in, nil)
	}
}
