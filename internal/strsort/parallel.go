// Parallel Step-1 sorting: multi-core front-ends for SortLCP and Sort that
// are EQUIVALENT to the sequential sorters — same permutation, same LCP
// array, same characters-inspected work total — at every pool width.
//
// Why not a splitter-based parallel sample sort (pS5-style)? Classifying
// strings against sampled splitters inspects characters the sequential
// sorter never looks at, so the work counter — the input of the paper's
// α-β model time — would change with the core count and the model
// statistics would stop being comparable across machines. Instead, the
// parallel decomposition follows the sequential algorithm's own structure:
//
//   - ParallelSortLCP parallelizes the MSD radix pass itself. The 257-way
//     character histogram IS the classification step (computed from the
//     same single character inspection per string the sequential counting
//     pass bills), chunk-parallel counting plus per-worker prefix-summed
//     offsets make the distribution both parallel and stable, and the 257
//     bucket recursions — disjoint subarrays — run as pool tasks, bottoming
//     out in the unmodified sequential kernels (msdRadix → mkqsort →
//     insertion sort).
//   - ParallelSort parallelizes multikey quicksort by running the ternary
//     partition sequentially at each node (identical swaps, identical
//     work billing) and recursing into the disjoint <, =, > parts as pool
//     tasks, again bottoming out in the sequential kernel.
//
// Equivalence argument (pinned by FuzzParallelSortEquivalence and the
// stringsort determinism suite): chunk-major distribution order equals the
// sequential encounter order, so the permutation entering every bucket is
// identical; each sub-sort runs the exact sequential code on an identical
// subarray; and the work total is a sum of per-task int64 counters whose
// addition commutes, so no schedule can change it.
package strsort

import (
	"sync/atomic"
	"time"

	"dss/internal/par"
)

// Parallel decomposition thresholds. Subproblems below parSortMin strings
// are handed to the sequential kernels whole (fork/join overhead would
// dominate); counting/distribution chunks never shrink below parChunkMin
// strings.
const (
	parSortMin  = 4096
	parChunkMin = 1024
)

// parSorter carries the shared state of one parallel sorting run: the
// pool, the spawned-task group of the bucket recursion, and the
// order-independent work / busy-time accumulators. busy is the single
// source of truth for CPU time: ForEach passes, sequential leaves and
// partition loops each bill their own span, and no timed span ever
// encloses a spawn site — so the group's own busy meter (which would
// double-count nested spans) is deliberately discarded at Wait.
type parSorter struct {
	pool *par.Pool
	grp  *par.Group
	work atomic.Int64
	busy atomic.Int64
}

// ParallelSortLCP sorts ss in place with its LCP array, permuting sat
// alongside if non-nil, spreading the work over the pool. It returns the
// LCP array (lcp reused if non-nil, like Sorter.SortLCPInto), the
// characters-inspected work total — bit-identical to SortLCP's at every
// pool width — and the summed busy nanoseconds of all workers (the
// CPU-seconds measurement; NOT a model input).
func ParallelSortLCP(pool *par.Pool, ss [][]byte, sat []uint64, lcp []int32) ([]int32, int64, int64) {
	if sat != nil && len(sat) != len(ss) {
		panic("strsort: satellite length mismatch")
	}
	if lcp == nil {
		lcp = make([]int32, len(ss))
	} else if len(lcp) != len(ss) {
		panic("strsort: lcp length mismatch")
	}
	if pool.Sequential() || len(ss) < parSortMin {
		t0 := time.Now()
		st := GetSized(len(ss))
		if len(ss) > 1 {
			st.msdRadix(ss, sat, lcp, 0)
		}
		work := st.work
		Put(st)
		return lcp, work, time.Since(t0).Nanoseconds()
	}
	ps := &parSorter{pool: pool, grp: pool.Group()}
	ps.radix(ss, sat, lcp, 0)
	ps.grp.Wait() // join + panic propagation; busy is tracked by ps.busy
	return lcp, ps.work.Load(), ps.busy.Load()
}

// ParallelSort sorts ss in place without LCP output (the Sort / MS-simple
// / FKmerge path), returning the work total — bit-identical to Sort's —
// and the summed worker busy nanoseconds.
func ParallelSort(pool *par.Pool, ss [][]byte, sat []uint64) (int64, int64) {
	if pool.Sequential() || len(ss) < parSortMin {
		t0 := time.Now()
		st := GetSized(len(ss))
		st.Sort(ss, sat)
		work := st.work
		Put(st)
		return work, time.Since(t0).Nanoseconds()
	}
	ps := &parSorter{pool: pool, grp: pool.Group()}
	ps.mkq(ss, sat, 0)
	ps.grp.Wait() // join + panic propagation; busy is tracked by ps.busy
	return ps.work.Load(), ps.busy.Load()
}

// seqLeaf runs one subproblem on the unmodified sequential radix kernel.
func (ps *parSorter) seqLeaf(ss [][]byte, sat []uint64, lcp []int32, depth int) {
	t0 := time.Now()
	st := GetSized(len(ss))
	if len(ss) > 1 {
		st.msdRadix(ss, sat, lcp, depth)
	}
	ps.work.Add(st.work)
	Put(st)
	ps.busy.Add(time.Since(t0).Nanoseconds())
}

// radix is the parallel form of Sorter.msdRadix: one counting pass billed
// exactly like the sequential one (n characters), a stable chunk-parallel
// distribution producing the sequential permutation, the sequential LCP
// boundary assignment, and the bucket recursions spawned on the group.
func (ps *parSorter) radix(ss [][]byte, sat []uint64, lcp []int32, depth int) {
	n := len(ss)
	if n < parSortMin {
		ps.seqLeaf(ss, sat, lcp, depth)
		return
	}

	// Chunk-parallel counting pass over the (depth+1)-st character: worker
	// w histograms chunk [lo(w), lo(w+1)). One character inspection per
	// string, billed once for the whole pass — identical to sequential.
	w := ps.pool.Cores()
	if max := n / parChunkMin; w > max {
		w = max
	}
	chunkLo := func(k int) int { return k * n / w }
	counts := make([][257]int, w)
	ps.busy.Add(ps.pool.ForEach(w, func(k int) {
		c := &counts[k]
		for _, s := range ss[chunkLo(k):chunkLo(k+1)] {
			c[bucketOf(s, depth)]++
		}
	}))
	ps.work.Add(int64(n))

	// Global bucket starts, then per-worker write cursors: worker w's slot
	// in bucket b begins after all earlier chunks' strings of that bucket,
	// so the chunk-major distribution below reproduces the sequential
	// encounter order exactly (stability).
	var start [258]int
	next := make([][257]int, w)
	{
		run := 0
		for b := 0; b < 257; b++ {
			start[b] = run
			for k := 0; k < w; k++ {
				next[k][b] = run
				run += counts[k][b]
			}
		}
		start[257] = run
	}

	// Stable out-of-place distribution into pooled scratch, then a
	// chunk-parallel copy back. Each tmp index is written by exactly one
	// worker (disjoint cursor ranges); the ForEach barrier orders the
	// scatter before the copy.
	scratch := GetSized(n)
	if cap(scratch.tmpStrings) < n {
		scratch.tmpStrings = make([][]byte, n)
	}
	tmp := scratch.tmpStrings[:n]
	var tmpSat []uint64
	if sat != nil {
		if cap(scratch.tmpSat) < n {
			scratch.tmpSat = make([]uint64, n)
		}
		tmpSat = scratch.tmpSat[:n]
	}
	ps.busy.Add(ps.pool.ForEach(w, func(k int) {
		nx := &next[k]
		for i := chunkLo(k); i < chunkLo(k+1); i++ {
			b := bucketOf(ss[i], depth)
			tmp[nx[b]] = ss[i]
			if sat != nil {
				tmpSat[nx[b]] = sat[i]
			}
			nx[b]++
		}
	}))
	ps.busy.Add(ps.pool.ForEach(w, func(k int) {
		lo, hi := chunkLo(k), chunkLo(k+1)
		copy(ss[lo:hi], tmp[lo:hi])
		if sat != nil {
			copy(sat[lo:hi], tmpSat[lo:hi])
		}
	}))
	Put(scratch)

	// LCP boundaries, exactly as in the sequential pass: depth between
	// equal strings of the end bucket and at every bucket's first string.
	count0 := start[1] - start[0]
	for i := 1; i < count0; i++ {
		lcp[i] = int32(depth)
	}
	for b := 1; b <= 256; b++ {
		lo, hi := start[b], start[b+1]
		if lo < hi && lo > 0 {
			lcp[lo] = int32(depth)
		}
		if hi-lo > 1 {
			lo, hi := lo, hi
			ps.grp.Go(func() {
				ps.radix(ss[lo:hi], satSlice(sat, lo, hi), lcp[lo:hi], depth+1)
			})
		}
	}
}

// mkq is the parallel form of Sorter.mkqsort: the ternary partition at
// each node is the sequential code verbatim (identical swaps, identical
// n-character billing); the <, > parts become group tasks and the = part
// is the sequential tail-iteration one character deeper.
func (ps *parSorter) mkq(ss [][]byte, sat []uint64, depth int) {
	for len(ss) >= parSortMin {
		n := len(ss)
		t0 := time.Now()
		p := medianOf3Char(ss, depth)
		lt, i, gt := 0, 0, n-1
		for i <= gt {
			c := charAt(ss[i], depth)
			switch {
			case c < p:
				swap(ss, sat, lt, i)
				lt++
				i++
			case c > p:
				swap(ss, sat, i, gt)
				gt--
			default:
				i++
			}
		}
		ps.work.Add(int64(n))
		ps.busy.Add(time.Since(t0).Nanoseconds())
		// Capture depth by value: the tail-iteration below mutates the
		// variable before the spawned tasks may run.
		low, lowSat, d := ss[:lt], satSlice(sat, 0, lt), depth
		high, highSat := ss[gt+1:], satSlice(sat, gt+1, n)
		ps.grp.Go(func() { ps.mkq(low, lowSat, d) })
		ps.grp.Go(func() { ps.mkq(high, highSat, d) })
		if p < 0 {
			// Strings ending at depth: fully equal, nothing left to sort.
			return
		}
		ss = ss[lt : gt+1]
		sat = satSlice(sat, lt, gt+1)
		depth++
	}
	t0 := time.Now()
	st := GetSized(len(ss))
	if len(ss) > 1 {
		st.mkqsort(ss, sat, depth)
	}
	ps.work.Add(st.work)
	Put(st)
	ps.busy.Add(time.Since(t0).Nanoseconds())
}
