package strsort

import "math/rand"

// Sequential string sample sort, the alternative base-case sorter the
// paper's Section II-A points to for large alphabets and skewed inputs
// ("sample sort [Bingmann & Sanders, Parallel String Sample Sort] might be
// better"): instead of distributing by single characters like MSD radix
// sort, it draws a random sample, picks k splitters, classifies all
// strings into 2k+1 buckets (k+1 range buckets interleaved with k equality
// buckets) and recurses on the range buckets. Equality buckets hold exact
// copies of their splitter and need no further work, which makes the
// sorter robust against heavy duplicates.

const (
	ssortBuckets   = 63  // splitters per level (k)
	ssortThreshold = 512 // below this, multikey quicksort takes over
)

// SampleSort sorts ss in place (carrying sat) with string sample sort and
// returns the number of characters inspected.
func SampleSort(ss [][]byte, sat []uint64) (work int64) {
	if sat != nil && len(sat) != len(ss) {
		panic("strsort: satellite length mismatch")
	}
	st := &Sorter{}
	rng := rand.New(rand.NewSource(0x5ca1ab1e))
	st.sampleSort(ss, sat, rng)
	return st.work
}

// SampleSortLCP is SampleSort plus LCP array computation.
func SampleSortLCP(ss [][]byte, sat []uint64) (lcp []int32, work int64) {
	st := &Sorter{}
	rng := rand.New(rand.NewSource(0x5ca1ab1e))
	st.sampleSort(ss, sat, rng)
	lcp = make([]int32, len(ss))
	st.fillLCP(ss, lcp, 0)
	return lcp, st.work
}

func (st *Sorter) sampleSort(ss [][]byte, sat []uint64, rng *rand.Rand) {
	n := len(ss)
	if n < ssortThreshold {
		st.mkqsort(ss, sat, 0)
		return
	}

	// Draw an oversampled random sample and sort it.
	k := ssortBuckets
	sampleSize := 2*k + 1
	sample := make([][]byte, sampleSize)
	for i := range sample {
		sample[i] = ss[rng.Intn(n)]
	}
	st.mkqsort(sample, nil, 0)
	splitters := make([][]byte, k)
	for i := 0; i < k; i++ {
		splitters[i] = sample[(2*i+1)*sampleSize/(2*k)]
	}
	// Deduplicate splitters (equal splitters would create empty ranges —
	// harmless, but shrinking k speeds classification).
	splitters = dedupSorted(splitters)
	k = len(splitters)

	// Classify into 2k+1 buckets: bucket 2i = strings strictly between
	// splitter i-1 and splitter i; bucket 2i+1 = strings equal to
	// splitter i.
	nb := 2*k + 1
	bucketOf := make([]int32, n)
	counts := make([]int, nb)
	for i, s := range ss {
		b := st.classify(s, splitters)
		bucketOf[i] = int32(b)
		counts[b]++
	}

	// Stable distribution into a scratch copy.
	start := make([]int, nb+1)
	for b := 0; b < nb; b++ {
		start[b+1] = start[b] + counts[b]
	}
	tmp := make([][]byte, n)
	var tmpSat []uint64
	if sat != nil {
		tmpSat = make([]uint64, n)
	}
	next := make([]int, nb)
	copy(next, start[:nb])
	for i, s := range ss {
		b := bucketOf[i]
		tmp[next[b]] = s
		if sat != nil {
			tmpSat[next[b]] = sat[i]
		}
		next[b]++
	}
	copy(ss, tmp)
	if sat != nil {
		copy(sat, tmpSat)
	}

	// Recurse on range buckets; equality buckets are already sorted (all
	// their strings are byte-equal to the splitter).
	for i := 0; i <= k; i++ {
		b := 2 * i
		lo, hi := start[b], start[b+1]
		if hi-lo > 1 {
			st.sampleSort(ss[lo:hi], satSlice(sat, lo, hi), rng)
		}
	}
}

// classify locates the bucket of s: binary search over the splitters with
// character-counting comparisons, then a ternary refinement for equality.
func (st *Sorter) classify(s []byte, splitters [][]byte) int {
	lo, hi := 0, len(splitters) // invariant: splitter[lo-1] < s ≤ splitter[hi]
	for lo < hi {
		mid := (lo + hi) / 2
		cmp, lcp := compareLCPFrom(s, splitters[mid], 0)
		st.work += int64(lcp + 1)
		switch {
		case cmp == 0:
			return 2*mid + 1 // equality bucket
		case cmp < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return 2 * lo // range bucket
}

// dedupSorted removes adjacent duplicates from a sorted string slice.
func dedupSorted(ss [][]byte) [][]byte {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || compare(ss[i-1], s) != 0 {
			out = append(out, s)
		}
	}
	return out
}

func compare(a, b []byte) int {
	cmp, _ := compareLCPFrom(a, b, 0)
	return cmp
}
