package strsort

import (
	"bytes"
	"math/rand"
	"testing"

	"dss/internal/par"
)

// randomStrings builds an input mix that exercises every kernel layer:
// shared prefixes (deep radix recursion), duplicates (equal partitions and
// bucket-0 end-of-string handling), and a skewed alphabet.
func randomStrings(rng *rand.Rand, n int) [][]byte {
	prefixes := [][]byte{{}, []byte("pre"), []byte("prefix-shared-"), []byte("prefix-shared-deep/")}
	ss := make([][]byte, n)
	for i := range ss {
		p := prefixes[rng.Intn(len(prefixes))]
		l := rng.Intn(20)
		s := make([]byte, len(p)+l)
		copy(s, p)
		for j := len(p); j < len(s); j++ {
			s[j] = byte('a' + rng.Intn(4))
		}
		ss[i] = s
	}
	// Sprinkle exact duplicates.
	for i := 0; i < n/10; i++ {
		ss[rng.Intn(n)] = ss[rng.Intn(n)]
	}
	return ss
}

func cloneInput(ss [][]byte) ([][]byte, []uint64) {
	cp := make([][]byte, len(ss))
	copy(cp, ss)
	sat := make([]uint64, len(ss))
	for i := range sat {
		sat[i] = uint64(i)
	}
	return cp, sat
}

// checkEquivalent asserts the full parallel ≡ sequential contract on one
// input: same permutation (via the satellite original-index channel, which
// distinguishes duplicate strings), same LCP array, same work total.
func checkEquivalent(t *testing.T, ss [][]byte, cores int) {
	t.Helper()
	seqSS, seqSat := cloneInput(ss)
	seqLCP, seqWork := SortLCP(seqSS, seqSat)

	pool := par.New(cores)
	parSS, parSat := cloneInput(ss)
	parLCP, parWork, _ := ParallelSortLCP(pool, parSS, parSat, nil)

	if parWork != seqWork {
		t.Fatalf("cores=%d: work %d, sequential %d", cores, parWork, seqWork)
	}
	for i := range seqSS {
		if !bytes.Equal(parSS[i], seqSS[i]) {
			t.Fatalf("cores=%d: string %d differs: %q vs %q", cores, i, parSS[i], seqSS[i])
		}
		if parSat[i] != seqSat[i] {
			t.Fatalf("cores=%d: permutation differs at %d: sat %d vs %d", cores, i, parSat[i], seqSat[i])
		}
		if parLCP[i] != seqLCP[i] {
			t.Fatalf("cores=%d: lcp[%d] = %d, sequential %d", cores, i, parLCP[i], seqLCP[i])
		}
	}

	// The no-LCP path (Sort / ParallelSort) against the same baseline.
	mkSS, mkSat := cloneInput(ss)
	mkWork := Sort(mkSS, mkSat)
	pmSS, pmSat := cloneInput(ss)
	pmWork, _ := ParallelSort(pool, pmSS, pmSat)
	if pmWork != mkWork {
		t.Fatalf("cores=%d: ParallelSort work %d, Sort %d", cores, pmWork, mkWork)
	}
	for i := range mkSS {
		if !bytes.Equal(pmSS[i], mkSS[i]) || pmSat[i] != mkSat[i] {
			t.Fatalf("cores=%d: ParallelSort diverges from Sort at %d", cores, i)
		}
	}
}

func TestParallelSortEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Sizes straddling parSortMin so both the inline fallback and the real
	// parallel decomposition (including multi-level recursion) run.
	for _, n := range []int{0, 1, 500, parSortMin - 1, parSortMin, 3 * parSortMin, 20000} {
		ss := randomStrings(rng, n)
		for _, cores := range []int{1, 2, 3, 8} {
			checkEquivalent(t, ss, cores)
		}
	}
}

func TestParallelSortLCPReusesProvidedSlice(t *testing.T) {
	ss := randomStrings(rand.New(rand.NewSource(3)), 2*parSortMin)
	lcp := make([]int32, len(ss))
	got, _, _ := ParallelSortLCP(par.New(4), ss, nil, lcp)
	if &got[0] != &lcp[0] {
		t.Fatal("provided lcp slice was not reused")
	}
}

func TestParallelSortNilSatellites(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ss := randomStrings(rng, 3*parSortMin)
	seq := make([][]byte, len(ss))
	copy(seq, ss)
	wantLCP, wantWork := SortLCP(seq, nil)
	gotLCP, gotWork, _ := ParallelSortLCP(par.New(4), ss, nil, nil)
	if gotWork != wantWork {
		t.Fatalf("work %d, want %d", gotWork, wantWork)
	}
	for i := range seq {
		if !bytes.Equal(ss[i], seq[i]) || gotLCP[i] != wantLCP[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

// FuzzParallelSortEquivalence: random string sets and core counts, parallel
// sort ≡ sequential SortLCP on permutation, LCPs and work.
func FuzzParallelSortEquivalence(f *testing.F) {
	f.Add([]byte("apple\nbanana\napple\nbanan\n"), uint8(4), uint16(100))
	f.Add([]byte{0, 0, 1, 0xff, 0, 0}, uint8(2), uint16(5000))
	f.Add([]byte("seed"), uint8(7), uint16(9000))
	f.Fuzz(func(t *testing.T, corpus []byte, coresByte uint8, nWant uint16) {
		cores := 1 + int(coresByte%8)
		n := int(nWant) % 12000
		if len(corpus) == 0 {
			corpus = []byte{0}
		}
		// Derive n strings as slices of the corpus: fuzzer-controlled
		// content with heavy overlap, which maximizes shared prefixes.
		rng := rand.New(rand.NewSource(int64(len(corpus))*31 + int64(cores)))
		ss := make([][]byte, n)
		for i := range ss {
			lo := rng.Intn(len(corpus))
			hi := lo + rng.Intn(len(corpus)-lo+1)
			ss[i] = corpus[lo:hi]
		}

		seqSS, seqSat := cloneInput(ss)
		seqLCP, seqWork := SortLCP(seqSS, seqSat)
		parSS, parSat := cloneInput(ss)
		parLCP, parWork, _ := ParallelSortLCP(par.New(cores), parSS, parSat, nil)
		if parWork != seqWork {
			t.Fatalf("cores=%d n=%d: work %d, sequential %d", cores, n, parWork, seqWork)
		}
		for i := range seqSS {
			if !bytes.Equal(parSS[i], seqSS[i]) || parSat[i] != seqSat[i] || parLCP[i] != seqLCP[i] {
				t.Fatalf("cores=%d n=%d: diverged at %d", cores, n, i)
			}
		}
	})
}
