// Package strsort implements the sequential string sorting stack used as
// the base case of all distributed algorithms (Section II-A of the paper):
// MSD string radix sort down to small subproblems, multikey quicksort
// (Bentley-Sedgewick) below that, and LCP-aware insertion sort for constant
// size inputs. The sorters produce the LCP array as part of the output at
// no additional asymptotic cost and report the number of characters
// inspected, the work measure the cost model is based on.
//
// All sorters optionally carry one word of satellite data per string
// (original index, origin id) through the permutation, which the
// distributed algorithms use to report where each output string came from.
package strsort

import (
	"math/bits"
	"sync"

	"dss/internal/strutil"
)

// Thresholds: subproblems with at least radixThreshold strings are sorted
// by one MSD radix sort pass; medium ones by multikey quicksort; below
// insertionThreshold plain LCP insertion sort takes over.
const (
	radixThreshold     = 128
	insertionThreshold = 16
)

// Sorter carries the scratch state of one sorting run; it exists so that
// repeated sorts can reuse allocations.
type Sorter struct {
	work int64
	// scratch buffers for the radix passes
	tmpStrings [][]byte
	tmpSat     []uint64
}

// sorterPools recycle Sorter scratch space across sorting runs, bucketed
// by the power-of-two size class of the radix distribution buffer. One
// undifferentiated pool was fine while each PE ran one sort at a time; the
// parallel Step-1 sorter checks out many Sorters concurrently — one per
// bucket subproblem — and a single class would hand a scratch buffer grown
// for the whole input to a 200-string bucket (pinning memory) or a tiny
// one to a large bucket (forcing a reallocation). sync.Pool itself is
// per-P, so concurrent workers mostly hit thread-local free lists and
// never share a scratch buffer: a pooled Sorter is owned exclusively
// between Get and Put.
var sorterPools [bits.UintSize + 1]sync.Pool

// sizeClass buckets a scratch capacity: class k holds buffers with
// cap in [2^(k-1), 2^k).
func sizeClass(n int) int { return bits.Len(uint(n)) }

// Get returns a Sorter with recycled scratch space and a zeroed work
// counter. Return it with Put when the sort is done.
func Get() *Sorter { return GetSized(0) }

// GetSized returns a Sorter whose recycled scratch space, if any, comes
// from the size class of an n-string subproblem — the right checkout for
// the parallel sorter's per-worker bucket sorts.
func GetSized(n int) *Sorter {
	st, _ := sorterPools[sizeClass(n)].Get().(*Sorter)
	if st == nil {
		st = new(Sorter)
	}
	st.work = 0
	return st
}

// Put returns a Sorter to the scratch pool of its size class. The string
// scratch is cleared so pooled Sorters do not pin the last run's character
// data.
func Put(st *Sorter) {
	clear(st.tmpStrings[:cap(st.tmpStrings)])
	sorterPools[sizeClass(cap(st.tmpStrings))].Put(st)
}

// Work returns the characters-inspected counter accumulated so far.
func (st *Sorter) Work() int64 { return st.work }

// SortLCP sorts ss in place lexicographically, computes its LCP array
// (lcp[0] == 0, lcp[i] == LCP(ss[i-1], ss[i])), permutes sat alongside if
// non-nil, and returns the number of characters inspected. This is the
// Step 1 sorter of Algorithms MS and PDMS. Scratch space is drawn from the
// package pool.
func SortLCP(ss [][]byte, sat []uint64) (lcp []int32, work int64) {
	st := Get()
	lcp = st.SortLCPInto(ss, sat, nil)
	work = st.work
	Put(st)
	return lcp, work
}

// Sort sorts ss in place without producing an LCP array and returns the
// number of characters inspected. Scratch space is drawn from the package
// pool.
func Sort(ss [][]byte, sat []uint64) (work int64) {
	st := Get()
	if len(ss) > 1 {
		st.mkqsort(ss, sat, 0)
	}
	work = st.work
	Put(st)
	return work
}

// Sort sorts ss in place without producing an LCP array, reusing the
// Sorter's scratch space and accumulating into its work counter.
func (st *Sorter) Sort(ss [][]byte, sat []uint64) {
	if len(ss) > 1 {
		st.mkqsort(ss, sat, 0)
	}
}

// SortLCPInto is like SortLCP but reuses the Sorter's scratch space and an
// optional caller-provided LCP slice (must have len(ss) if non-nil).
func (st *Sorter) SortLCPInto(ss [][]byte, sat []uint64, lcp []int32) []int32 {
	if sat != nil && len(sat) != len(ss) {
		panic("strsort: satellite length mismatch")
	}
	if lcp == nil {
		lcp = make([]int32, len(ss))
	} else if len(lcp) != len(ss) {
		panic("strsort: lcp length mismatch")
	}
	if len(ss) > 1 {
		st.msdRadix(ss, sat, lcp, 0)
	}
	return lcp
}

// msdRadix sorts one subproblem whose strings all share a common prefix of
// length depth, assigning lcp[1:] within the subproblem (lcp[0] belongs to
// the caller: it is the boundary with whatever precedes the subproblem).
func (st *Sorter) msdRadix(ss [][]byte, sat []uint64, lcp []int32, depth int) {
	n := len(ss)
	if n < 2 {
		return
	}
	if n < radixThreshold {
		st.mkqsort(ss, sat, depth)
		st.fillLCP(ss, lcp, depth)
		return
	}

	// Counting pass over the (depth+1)-st character. Bucket 0 holds strings
	// that end exactly at depth; bucket c+1 holds strings with s[depth]==c.
	var count [257]int
	for _, s := range ss {
		count[bucketOf(s, depth)]++
	}
	st.work += int64(n)

	// Bucket start offsets.
	var start [258]int
	for i := 0; i < 257; i++ {
		start[i+1] = start[i] + count[i]
	}

	// Out-of-place stable distribution, then copy back.
	if cap(st.tmpStrings) < n {
		st.tmpStrings = make([][]byte, n)
	}
	tmp := st.tmpStrings[:n]
	var tmpSat []uint64
	if sat != nil {
		if cap(st.tmpSat) < n {
			st.tmpSat = make([]uint64, n)
		}
		tmpSat = st.tmpSat[:n]
	}
	next := start
	for i, s := range ss {
		b := bucketOf(s, depth)
		tmp[next[b]] = s
		if sat != nil {
			tmpSat[next[b]] = sat[i]
		}
		next[b]++
	}
	copy(ss, tmp)
	if sat != nil {
		copy(sat, tmpSat)
	}

	// LCP values: the boundary between two buckets, and between equal
	// strings in the end bucket, is exactly depth. The end bucket occupies
	// [0, count[0]); index 0 is the subproblem boundary owned by the caller.
	for i := 1; i < count[0]; i++ {
		lcp[i] = int32(depth)
	}
	for b := 1; b <= 256; b++ {
		lo, hi := start[b], start[b]+count[b]
		if lo < hi && lo > 0 {
			lcp[lo] = int32(depth)
		}
		if count[b] > 1 {
			st.msdRadix(ss[lo:hi], satSlice(sat, lo, hi), lcp[lo:hi], depth+1)
		}
	}
	// Fix the end bucket's first entry if the subproblem starts with it:
	// lcp[0] is owned by the caller, nothing to do (the loop above skipped
	// i == 0 already).
}

func bucketOf(s []byte, depth int) int {
	if len(s) == depth {
		return 0
	}
	return int(s[depth]) + 1
}

func satSlice(sat []uint64, lo, hi int) []uint64 {
	if sat == nil {
		return nil
	}
	return sat[lo:hi]
}

// mkqsort is multikey quicksort: ternary partition on the character at
// position depth, recursing into <, =, > parts [Bentley & Sedgewick 1997].
// Characters before depth are known to be equal across the subproblem and
// are never inspected again.
func (st *Sorter) mkqsort(ss [][]byte, sat []uint64, depth int) {
	for len(ss) > insertionThreshold {
		n := len(ss)
		p := medianOf3Char(ss, depth)
		// Ternary partition by charAt(s, depth) compared to p.
		// Invariant: [0,lt) < p, [lt,i) == p, (gt,n-1] > p.
		lt, i, gt := 0, 0, n-1
		for i <= gt {
			c := charAt(ss[i], depth)
			switch {
			case c < p:
				swap(ss, sat, lt, i)
				lt++
				i++
			case c > p:
				swap(ss, sat, i, gt)
				gt--
			default:
				i++
			}
		}
		st.work += int64(n)
		st.mkqsort(ss[:lt], satSlice(sat, 0, lt), depth)
		st.mkqsort(ss[gt+1:], satSlice(sat, gt+1, n), depth)
		if p < 0 {
			// The equal part consists of strings ending at depth: they are
			// fully equal, nothing left to sort.
			return
		}
		// Tail-call into the equal part one character deeper.
		ss = ss[lt : gt+1]
		sat = satSlice(sat, lt, gt+1)
		depth++
	}
	st.insertionSort(ss, sat, depth)
}

// charAt returns the character at position depth, or -1 if the string ends
// there (end-of-string sorts before every character).
func charAt(s []byte, depth int) int {
	if len(s) == depth {
		return -1
	}
	return int(s[depth])
}

func medianOf3Char(ss [][]byte, depth int) int {
	n := len(ss)
	a, b, c := charAt(ss[0], depth), charAt(ss[n/2], depth), charAt(ss[n-1], depth)
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
		if a > b {
			b = a
		}
	}
	return b
}

func swap(ss [][]byte, sat []uint64, i, j int) {
	ss[i], ss[j] = ss[j], ss[i]
	if sat != nil {
		sat[i], sat[j] = sat[j], sat[i]
	}
}

// insertionSort sorts a small subproblem whose strings share a prefix of
// length depth, comparing only from depth onwards.
func (st *Sorter) insertionSort(ss [][]byte, sat []uint64, depth int) {
	for i := 1; i < len(ss); i++ {
		s := ss[i]
		var u uint64
		if sat != nil {
			u = sat[i]
		}
		j := i
		for j > 0 {
			cmp, lcp := compareLCPFrom(ss[j-1], s, depth)
			st.work += int64(lcp - depth + 1)
			if cmp <= 0 {
				break
			}
			ss[j] = ss[j-1]
			if sat != nil {
				sat[j] = sat[j-1]
			}
			j--
		}
		ss[j] = s
		if sat != nil {
			sat[j] = u
		}
	}
}

// fillLCP computes lcp[1:] of a sorted subproblem whose strings share a
// prefix of length depth. Characters before depth are not inspected.
func (st *Sorter) fillLCP(ss [][]byte, lcp []int32, depth int) {
	for i := 1; i < len(ss); i++ {
		_, h := compareLCPFrom(ss[i-1], ss[i], depth)
		st.work += int64(h - depth + 1)
		lcp[i] = int32(h)
	}
}

// compareLCPFrom compares a and b skipping the first `from` characters,
// returning the comparison and the full LCP (word-wise via strutil).
func compareLCPFrom(a, b []byte, from int) (cmp, lcp int) {
	return strutil.CompareLCP(a, b, from)
}
