package golomb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundtrip(t *testing.T) {
	w := &BitWriter{}
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBits(0b10110, 5)
	w.WriteUnary(7)
	w.WriteBits(0xdead, 16)
	r := NewBitReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit 0")
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("bit 1")
	}
	if v, _ := r.ReadBits(5); v != 0b10110 {
		t.Fatalf("bits = %b", v)
	}
	if q, _ := r.ReadUnary(); q != 7 {
		t.Fatalf("unary = %d", q)
	}
	if v, _ := r.ReadBits(16); v != 0xdead {
		t.Fatalf("field = %x", v)
	}
}

func TestBitReaderEOF(t *testing.T) {
	r := NewBitReader(nil)
	if _, err := r.ReadBit(); err != ErrCorrupt {
		t.Fatalf("err = %v", err)
	}
	w := &BitWriter{}
	w.WriteUnary(3)
	r = NewBitReader(w.Bytes())
	r.ReadUnary()
	// Padding zeros decode as unary 0s until exhaustion; eventually EOF.
	for i := 0; i < 20; i++ {
		if _, err := r.ReadBit(); err != nil {
			return
		}
	}
	t.Fatal("no EOF after stream end")
}

func TestGolombValueRoundtripAllM(t *testing.T) {
	for _, m := range []uint64{1, 2, 3, 4, 5, 7, 8, 13, 64, 100, 1 << 20} {
		w := &BitWriter{}
		vals := []uint64{0, 1, 2, 3, m - 1, m, m + 1, 2*m + 3, 1000000}
		for _, v := range vals {
			encodeValue(w, v, m)
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := decodeValue(r, m)
			if err != nil || got != v {
				t.Fatalf("m=%d: got %d (%v), want %d", m, got, err, v)
			}
		}
	}
}

func TestEncodeSortedRoundtrip(t *testing.T) {
	cases := [][]uint64{
		nil,
		{},
		{0},
		{42},
		{1, 1, 1, 1},
		{0, 1, 2, 3, 4, 5},
		{5, 1000, 1000, 123456789, 1 << 62},
	}
	for _, vals := range cases {
		got, err := DecodeSorted(EncodeSorted(vals))
		if err != nil {
			t.Fatalf("%v: %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("count %d, want %d", len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%v: position %d = %d", vals, i, got[i])
			}
		}
	}
}

func TestEncodeSortedQuick(t *testing.T) {
	f := func(raw []uint64) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		got, err := DecodeSorted(EncodeSorted(raw))
		if err != nil || len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGolombCompressesUniformHashes(t *testing.T) {
	// n sorted uniform 64-bit values: raw encoding costs 8 bytes each;
	// Golomb delta coding should get close to the entropy
	// log2(range/n) + ~1.5 bits ≈ 64 - log2(n) + 1.5 bits per value.
	rng := rand.New(rand.NewSource(31))
	n := 10000
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	enc := EncodeSorted(vals)
	bitsPer := float64(len(enc)*8) / float64(n)
	if bitsPer > 56 {
		t.Fatalf("golomb coding ineffective: %.1f bits/value", bitsPer)
	}
	if bitsPer < 45 {
		t.Fatalf("suspiciously small: %.1f bits/value (entropy ≈ 52.2)", bitsPer)
	}
}

func TestGolombDenseSequenceCompressesHard(t *testing.T) {
	vals := make([]uint64, 5000)
	for i := range vals {
		vals[i] = uint64(i * 3)
	}
	enc := EncodeSorted(vals)
	if len(enc)*8 > 5*len(vals) {
		t.Fatalf("dense sequence: %d bits for %d values", len(enc)*8, len(vals))
	}
	got, err := DecodeSorted(enc)
	if err != nil || len(got) != len(vals) {
		t.Fatal("roundtrip failed")
	}
}

func TestChooseM(t *testing.T) {
	if ChooseM(0, 10) != 1 {
		t.Fatal("zero span must clamp to 1")
	}
	if ChooseM(1000, 0) != 1 {
		t.Fatal("zero count must clamp to 1")
	}
	m := ChooseM(1<<40, 1000)
	if m < 1<<28 || m > 1<<31 {
		t.Fatalf("M = %d out of plausible range", m)
	}
}

func TestDecodeSortedCorrupt(t *testing.T) {
	// Claim many values with no payload.
	msg := EncodeSorted([]uint64{1, 2, 3})
	if _, err := DecodeSorted(msg[:2]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestEncodeSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted input accepted")
		}
	}()
	EncodeSorted([]uint64{5, 3})
}
