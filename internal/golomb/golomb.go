// Package golomb implements bit-level Golomb coding of monotone integer
// sequences. PDMS-Golomb uses it to compress the sorted fingerprint sets
// exchanged by the distributed duplicate detection (Section VI-A of the
// paper, following [Sanders, Schlag, Müller 2013]): deltas of sorted
// uniformly-distributed hashes are geometrically distributed, for which
// Golomb codes with parameter M ≈ 0.69·(mean gap) are near-optimal.
package golomb

import (
	"errors"
	"math/bits"

	"dss/internal/wire"
)

// ErrCorrupt is returned when a decode reads past the end of the stream.
var ErrCorrupt = errors.New("golomb: corrupt stream")

// BitWriter appends single bits and fixed-width bit fields to a byte slice,
// most-significant-bit first within each byte. Bits accumulate in a 64-bit
// word and are flushed to the byte slice eight bytes' worth at a time, so a
// WriteBits or unary-run call costs O(1) instead of one shift per bit. The
// zero value is ready to use.
type BitWriter struct {
	buf []byte
	acc uint64 // pending bits, MSB-aligned: the top n bits are valid
	n   uint   // number of pending bits in acc (0..7 between calls)
}

// NewBitWriter returns a writer whose byte buffer is pre-sized to hold
// sizeHint bytes, avoiding growth reallocations when the caller can
// estimate the final code length.
func NewBitWriter(sizeHint int) *BitWriter {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &BitWriter{buf: make([]byte, 0, sizeHint)}
}

// flush moves all complete bytes from the accumulator to the buffer,
// leaving at most 7 pending bits.
func (w *BitWriter) flush() {
	for w.n >= 8 {
		w.buf = append(w.buf, byte(w.acc>>56))
		w.acc <<= 8
		w.n -= 8
	}
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteBits appends the low n bits of v, most significant first (n ≤ 64).
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= 1<<n - 1
	}
	if w.n+n > 64 {
		// Up to 7 pending bits plus up to 64 new ones: split the field.
		half := n / 2
		w.WriteBits(v>>half, n-half)
		w.WriteBits(v, half)
		return
	}
	w.acc |= v << (64 - w.n - n)
	w.n += n
	w.flush()
}

// WriteUnary appends q 1-bits followed by a terminating 0-bit, emitting up
// to 32 bits per step.
func (w *BitWriter) WriteUnary(q uint64) {
	for q >= 32 {
		w.WriteBits(0xFFFFFFFF, 32)
		q -= 32
	}
	// q ones followed by the terminating zero, in one field of q+1 bits.
	w.WriteBits(1<<(q+1)-2, uint(q)+1)
}

// Bytes returns the encoded stream (the last byte is zero-padded). The
// writer remains usable: further writes continue the unpadded stream. The
// padding byte is appended with the buffer's capacity clipped, so a
// returned snapshot is never mutated by later writes.
func (w *BitWriter) Bytes() []byte {
	if w.n == 0 {
		return w.buf
	}
	return append(w.buf[:len(w.buf):len(w.buf)], byte(w.acc>>56))
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int {
	return len(w.buf)*8 + int(w.n)
}

// BitReader consumes a stream produced by BitWriter. It keeps up to 64
// look-ahead bits in an accumulator refilled eight bytes at a time, so
// field reads and unary runs cost O(1) per call instead of per bit.
type BitReader struct {
	buf []byte
	pos int    // next byte to load into the accumulator
	acc uint64 // look-ahead bits, MSB-aligned: the top n bits are valid
	n   uint   // number of valid bits in acc
}

// NewBitReader returns a reader over the stream.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// refill tops the accumulator up to at least 57 valid bits (or to end of
// stream).
func (r *BitReader) refill() {
	for r.n <= 56 && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << (56 - r.n)
		r.pos++
		r.n += 8
	}
}

// ReadBit reads one bit.
func (r *BitReader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// ReadBits reads an n-bit big-endian field (n ≤ 64).
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 56 {
		// A refill tops the accumulator up to 57..64 bits, which cannot be
		// guaranteed to cover the widest fields: read them in two halves.
		hi, err := r.ReadBits(n - 32)
		if err != nil {
			return 0, err
		}
		lo, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return hi<<32 | lo, nil
	}
	if r.n < n {
		r.refill()
		if r.n < n {
			return 0, ErrCorrupt
		}
	}
	v := r.acc >> (64 - n)
	r.acc <<= n
	r.n -= n
	return v, nil
}

// ReadUnary reads a unary-coded quotient, consuming whole runs of 1-bits
// per accumulator refill via leading-zero counting.
func (r *BitReader) ReadUnary() (uint64, error) {
	var q uint64
	for {
		if r.n == 0 {
			r.refill()
			if r.n == 0 {
				return 0, ErrCorrupt
			}
		}
		// Leading ones of the valid window = leading zeros of ^acc; the
		// invalid low bits of acc are zero, so ^acc is one there and the
		// count never overshoots r.n by more than the window end.
		ones := uint(bits.LeadingZeros64(^r.acc))
		if ones >= r.n {
			// Every valid bit is a one: consume them all and refill.
			q += uint64(r.n)
			r.acc, r.n = 0, 0
			continue
		}
		// ones 1-bits followed by the terminating 0-bit.
		q += uint64(ones)
		r.acc <<= ones + 1
		r.n -= ones + 1
		return q, nil
	}
}

// WriteGolomb appends one Golomb-coded value with parameter m (m ≥ 1).
// Exported for codecs that interleave Golomb fields with other bit data
// (the transport codec layer's LCP front-coding codec); EncodeSorted
// remains the one-shot API for whole monotone sequences.
func (w *BitWriter) WriteGolomb(v, m uint64) { encodeValue(w, v, m) }

// ReadGolomb reads one Golomb-coded value with parameter m, the inverse of
// WriteGolomb.
func (r *BitReader) ReadGolomb(m uint64) (uint64, error) { return decodeValue(r, m) }

// encodeValue writes v with Golomb parameter m (m ≥ 1): quotient v/m in
// unary, remainder by truncated binary coding.
func encodeValue(w *BitWriter, v, m uint64) {
	q := v / m
	rem := v % m
	w.WriteUnary(q)
	if m == 1 {
		return
	}
	b := uint(bits.Len64(m - 1)) // ⌈log2 m⌉
	cutoff := uint64(1)<<b - m   // number of short codewords
	if rem < cutoff {
		w.WriteBits(rem, b-1)
	} else {
		w.WriteBits(rem+cutoff, b)
	}
}

// decodeValue reads one Golomb-coded value with parameter m.
func decodeValue(r *BitReader, m uint64) (uint64, error) {
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if m == 1 {
		return q, nil
	}
	b := uint(bits.Len64(m - 1))
	cutoff := uint64(1)<<b - m
	rem, err := r.ReadBits(b - 1)
	if err != nil {
		return 0, err
	}
	if rem >= cutoff {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		rem = rem<<1 | uint64(bit)
		rem -= cutoff
	}
	return q*m + rem, nil
}

// ChooseM returns the Golomb parameter for n values spread over the range
// [0, span]: M ≈ ln(2) · span/n, clamped to ≥ 1. This is the near-optimal
// choice for geometrically distributed gaps of sorted uniform values.
func ChooseM(span uint64, n int) uint64 {
	if n <= 0 {
		return 1
	}
	m := uint64(float64(span) / float64(n) * 0.6931471805599453)
	if m < 1 {
		m = 1
	}
	return m
}

// EncodeSorted Golomb-codes an ascending (not necessarily strictly) uint64
// sequence: header (count, M, first value), then delta-coded gaps. The
// caller must pass a sorted slice; duplicates are allowed (gap 0).
func EncodeSorted(vals []uint64) []byte {
	hdr := wire.NewBuffer(16)
	hdr.Uvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return hdr.Bytes()
	}
	span := vals[len(vals)-1] - vals[0]
	m := ChooseM(span, len(vals))
	hdr.Uvarint(m)
	hdr.Uvarint(vals[0])
	// Estimated code length: the quotients sum to span/m ≈ n/ln 2 bits of
	// unary, plus one terminator and one ⌈log2 m⌉-bit remainder per value.
	remBits := uint64(bits.Len64(m-1)) + 1
	estBits := span/m + uint64(len(vals)-1)*remBits
	w := NewBitWriter(int(estBits/8) + 1)
	prev := vals[0]
	for _, v := range vals[1:] {
		if v < prev {
			panic("golomb: EncodeSorted input not sorted")
		}
		encodeValue(w, v-prev, m)
		prev = v
	}
	out := hdr.Bytes()
	return append(out, w.Bytes()...)
}

// DecodeSorted reverses EncodeSorted.
func DecodeSorted(msg []byte) ([]uint64, error) {
	r := wire.NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	if cnt == 0 {
		return nil, nil
	}
	if cnt > uint64(len(msg))*9 { // each value needs ≥ 1 bit
		return nil, ErrCorrupt
	}
	m, err := r.Uvarint()
	if err != nil || m == 0 {
		return nil, ErrCorrupt
	}
	first, err := r.Uvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	rest, err := r.Raw(r.Remaining())
	if err != nil {
		return nil, ErrCorrupt
	}
	out := make([]uint64, 0, cnt)
	out = append(out, first)
	br := NewBitReader(rest)
	prev := first
	for i := uint64(1); i < cnt; i++ {
		gap, err := decodeValue(br, m)
		if err != nil {
			return nil, err
		}
		prev += gap
		out = append(out, prev)
	}
	return out, nil
}
