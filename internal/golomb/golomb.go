// Package golomb implements bit-level Golomb coding of monotone integer
// sequences. PDMS-Golomb uses it to compress the sorted fingerprint sets
// exchanged by the distributed duplicate detection (Section VI-A of the
// paper, following [Sanders, Schlag, Müller 2013]): deltas of sorted
// uniformly-distributed hashes are geometrically distributed, for which
// Golomb codes with parameter M ≈ 0.69·(mean gap) are near-optimal.
package golomb

import (
	"errors"
	"math/bits"

	"dss/internal/wire"
)

// ErrCorrupt is returned when a decode reads past the end of the stream.
var ErrCorrupt = errors.New("golomb: corrupt stream")

// BitWriter appends single bits and fixed-width bit fields to a byte slice,
// most-significant-bit first within each byte.
type BitWriter struct {
	buf  []byte
	nbit uint8 // bits used in the last byte (0..7; 0 means last byte full)
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b uint) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.nbit)
	}
	w.nbit = (w.nbit + 1) & 7
}

// WriteBits appends the low n bits of v, most significant first (n ≤ 64).
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// WriteUnary appends q 1-bits followed by a terminating 0-bit.
func (w *BitWriter) WriteUnary(q uint64) {
	for ; q > 0; q-- {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// Bytes returns the encoded stream (the last byte is zero-padded).
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int {
	if w.nbit == 0 {
		return len(w.buf) * 8
	}
	return (len(w.buf)-1)*8 + int(w.nbit)
}

// BitReader consumes a stream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader returns a reader over the stream.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit reads one bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, ErrCorrupt
	}
	b := r.buf[r.pos/8] >> (7 - uint(r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits reads an n-bit big-endian field.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUnary reads a unary-coded quotient.
func (r *BitReader) ReadUnary() (uint64, error) {
	var q uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return q, nil
		}
		q++
	}
}

// encodeValue writes v with Golomb parameter m (m ≥ 1): quotient v/m in
// unary, remainder by truncated binary coding.
func encodeValue(w *BitWriter, v, m uint64) {
	q := v / m
	rem := v % m
	w.WriteUnary(q)
	if m == 1 {
		return
	}
	b := uint(bits.Len64(m - 1)) // ⌈log2 m⌉
	cutoff := uint64(1)<<b - m   // number of short codewords
	if rem < cutoff {
		w.WriteBits(rem, b-1)
	} else {
		w.WriteBits(rem+cutoff, b)
	}
}

// decodeValue reads one Golomb-coded value with parameter m.
func decodeValue(r *BitReader, m uint64) (uint64, error) {
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if m == 1 {
		return q, nil
	}
	b := uint(bits.Len64(m - 1))
	cutoff := uint64(1)<<b - m
	rem, err := r.ReadBits(b - 1)
	if err != nil {
		return 0, err
	}
	if rem >= cutoff {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		rem = rem<<1 | uint64(bit)
		rem -= cutoff
	}
	return q*m + rem, nil
}

// ChooseM returns the Golomb parameter for n values spread over the range
// [0, span]: M ≈ ln(2) · span/n, clamped to ≥ 1. This is the near-optimal
// choice for geometrically distributed gaps of sorted uniform values.
func ChooseM(span uint64, n int) uint64 {
	if n <= 0 {
		return 1
	}
	m := uint64(float64(span) / float64(n) * 0.6931471805599453)
	if m < 1 {
		m = 1
	}
	return m
}

// EncodeSorted Golomb-codes an ascending (not necessarily strictly) uint64
// sequence: header (count, M, first value), then delta-coded gaps. The
// caller must pass a sorted slice; duplicates are allowed (gap 0).
func EncodeSorted(vals []uint64) []byte {
	hdr := wire.NewBuffer(16)
	hdr.Uvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return hdr.Bytes()
	}
	span := vals[len(vals)-1] - vals[0]
	m := ChooseM(span, len(vals))
	hdr.Uvarint(m)
	hdr.Uvarint(vals[0])
	w := &BitWriter{}
	prev := vals[0]
	for _, v := range vals[1:] {
		if v < prev {
			panic("golomb: EncodeSorted input not sorted")
		}
		encodeValue(w, v-prev, m)
		prev = v
	}
	out := hdr.Bytes()
	return append(out, w.Bytes()...)
}

// DecodeSorted reverses EncodeSorted.
func DecodeSorted(msg []byte) ([]uint64, error) {
	r := wire.NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	if cnt == 0 {
		return nil, nil
	}
	if cnt > uint64(len(msg))*9 { // each value needs ≥ 1 bit
		return nil, ErrCorrupt
	}
	m, err := r.Uvarint()
	if err != nil || m == 0 {
		return nil, ErrCorrupt
	}
	first, err := r.Uvarint()
	if err != nil {
		return nil, ErrCorrupt
	}
	rest, err := r.Raw(r.Remaining())
	if err != nil {
		return nil, ErrCorrupt
	}
	out := make([]uint64, 0, cnt)
	out = append(out, first)
	br := NewBitReader(rest)
	prev := first
	for i := uint64(1); i < cnt; i++ {
		gap, err := decodeValue(br, m)
		if err != nil {
			return nil, err
		}
		prev += gap
		out = append(out, prev)
	}
	return out, nil
}
