package golomb

import (
	"bytes"
	"math/rand"
	"testing"
)

// scalarBitWriter is the pre-word-buffered reference implementation: one
// bit per operation, most-significant-bit first. The buffered BitWriter
// must produce byte-identical streams.
type scalarBitWriter struct {
	buf  []byte
	nbit uint8
}

func (w *scalarBitWriter) writeBit(b uint) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.nbit)
	}
	w.nbit = (w.nbit + 1) & 7
}

func (w *scalarBitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.writeBit(uint(v>>uint(i)) & 1)
	}
}

func (w *scalarBitWriter) writeUnary(q uint64) {
	for ; q > 0; q-- {
		w.writeBit(1)
	}
	w.writeBit(0)
}

// scalarBitReader is the matching one-bit-at-a-time reference reader.
type scalarBitReader struct {
	buf []byte
	pos int
}

func (r *scalarBitReader) readBit() (uint, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, ErrCorrupt
	}
	b := r.buf[r.pos/8] >> (7 - uint(r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

func (r *scalarBitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

func (r *scalarBitReader) readUnary() (uint64, error) {
	var q uint64
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return q, nil
		}
		q++
	}
}

// bitOp is one step of a differential bit I/O script.
type bitOp struct {
	unary bool
	v     uint64
	n     uint
}

func runScript(t *testing.T, ops []bitOp) {
	t.Helper()
	w := &BitWriter{}
	ref := &scalarBitWriter{}
	for _, op := range ops {
		if op.unary {
			w.WriteUnary(op.v)
			ref.writeUnary(op.v)
		} else {
			w.WriteBits(op.v, op.n)
			ref.writeBits(op.v, op.n)
		}
	}
	got, want := w.Bytes(), ref.buf
	if !bytes.Equal(got, want) {
		t.Fatalf("streams differ:\n buffered %x\n scalar   %x\nops: %+v", got, want, ops)
	}
	if wantLen := len(ref.buf)*8 - int((8-ref.nbit)&7); w.BitLen() != wantLen {
		t.Fatalf("BitLen = %d, scalar %d", w.BitLen(), wantLen)
	}
	// Both readers must decode the shared stream identically.
	r := NewBitReader(got)
	sr := &scalarBitReader{buf: want}
	for _, op := range ops {
		if op.unary {
			gv, gerr := r.ReadUnary()
			wv, werr := sr.readUnary()
			if gv != wv || (gerr == nil) != (werr == nil) {
				t.Fatalf("ReadUnary = (%d, %v), scalar (%d, %v)", gv, gerr, wv, werr)
			}
		} else {
			gv, gerr := r.ReadBits(op.n)
			wv, werr := sr.readBits(op.n)
			if gv != wv || (gerr == nil) != (werr == nil) {
				t.Fatalf("ReadBits(%d) = (%d, %v), scalar (%d, %v)", op.n, gv, gerr, wv, werr)
			}
		}
	}
}

func TestBitIODifferentialCrafted(t *testing.T) {
	scripts := [][]bitOp{
		// Cross-byte boundaries: fields of every width 1..64 back to back.
		func() []bitOp {
			var ops []bitOp
			for n := uint(1); n <= 64; n++ {
				ops = append(ops, bitOp{v: 0xA5A5A5A5A5A5A5A5, n: n})
			}
			return ops
		}(),
		// Unary runs longer than 64 bits (the accumulator must drain
		// multiple times within one call).
		{{unary: true, v: 0}, {unary: true, v: 1}, {unary: true, v: 63},
			{unary: true, v: 64}, {unary: true, v: 65}, {unary: true, v: 200}},
		// Unary interleaved with unaligned fields.
		{{v: 1, n: 3}, {unary: true, v: 7}, {v: 0x1FF, n: 9},
			{unary: true, v: 100}, {v: 0xFFFFFFFFFFFFFFFF, n: 64}},
		// Maximum-width fields at every pending-bit phase.
		func() []bitOp {
			var ops []bitOp
			for phase := uint(1); phase <= 7; phase++ {
				ops = append(ops, bitOp{v: 1, n: phase}, bitOp{v: ^uint64(0), n: 64})
			}
			return ops
		}(),
	}
	for _, ops := range scripts {
		runScript(t, ops)
	}
}

func TestBitIODifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		ops := make([]bitOp, rng.Intn(40)+1)
		for i := range ops {
			if rng.Intn(3) == 0 {
				ops[i] = bitOp{unary: true, v: uint64(rng.Intn(150))}
			} else {
				n := uint(rng.Intn(64) + 1)
				ops[i] = bitOp{v: rng.Uint64(), n: n}
			}
		}
		runScript(t, ops)
	}
}

// scalarEncodeSorted re-implements EncodeSorted with the scalar writer so
// the buffered encoder can be checked for byte identity (the stream format
// — and therefore the bytes/str benchmark metric — must not change).
func scalarEncodeSorted(vals []uint64) []byte {
	w := &scalarBitWriter{}
	if len(vals) == 0 {
		full := EncodeSorted(vals)
		return full // header-only message has no bit stream
	}
	span := vals[len(vals)-1] - vals[0]
	m := ChooseM(span, len(vals))
	prev := vals[0]
	for _, v := range vals[1:] {
		q := (v - prev) / m
		rem := (v - prev) % m
		w.writeUnary(q)
		if m > 1 {
			b := uint(lenB(m - 1))
			cutoff := uint64(1)<<b - m
			if rem < cutoff {
				w.writeBits(rem, b-1)
			} else {
				w.writeBits(rem+cutoff, b)
			}
		}
		prev = v
	}
	return w.buf
}

func lenB(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

func TestEncodeSortedByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		n := rng.Intn(50)
		vals := make([]uint64, n)
		var cur uint64
		for i := range vals {
			cur += uint64(rng.Intn(1 << uint(rng.Intn(40))))
			vals[i] = cur
		}
		full := EncodeSorted(vals)
		wantBits := scalarEncodeSorted(vals)
		if len(wantBits) > 0 && !bytes.HasSuffix(full, wantBits) {
			t.Fatalf("bit stream differs from scalar encoder for %v", vals)
		}
		got, err := DecodeSorted(full)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(vals) {
			t.Fatalf("decode count %d, want %d", len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("decode[%d] = %d, want %d", i, got[i], vals[i])
			}
		}
	}
}

// FuzzEncodeSorted checks the roundtrip and the byte identity with the
// scalar encoder on fuzzer-chosen gap sequences, including huge spans that
// force remainder fields wider than the reader's refill guarantee.
func FuzzEncodeSorted(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(2), uint64(3))
	f.Add(uint64(0), uint64(1)<<62, uint64(1)<<63, ^uint64(0))
	f.Add(uint64(5), uint64(0), uint64(0), uint64(0)) // duplicates
	f.Fuzz(func(t *testing.T, a, b, c, d uint64) {
		a %= 1 << 60 // keep the ascending sums from overflowing
		vals := []uint64{a, a + b%(1<<60), 0, 0}
		vals[2] = vals[1] + c%(1<<60)
		vals[3] = vals[2] + d%(1<<60)
		full := EncodeSorted(vals)
		wantBits := scalarEncodeSorted(vals)
		if len(wantBits) > 0 && !bytes.HasSuffix(full, wantBits) {
			t.Fatalf("bit stream differs from scalar encoder for %v", vals)
		}
		got, err := DecodeSorted(full)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("decode[%d] = %d, want %d", i, got[i], vals[i])
			}
		}
	})
}
