package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// chromeDoc mirrors the written JSON for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Ph   string  `json:"ph"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		TS   float64 `json:"ts"`
		Name string  `json:"name"`
	} `json:"traceEvents"`
}

func exportDoc(t *testing.T, bufs []*Buffer) chromeDoc {
	t.Helper()
	var out bytes.Buffer
	if err := WriteChromeTrace(&out, bufs); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !json.Valid(out.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%s", out.String())
	}
	var doc chromeDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal export: %v", err)
	}
	return doc
}

// balance checks that every (pid, tid) thread track has balanced B/E
// nesting: no E without an open B, nothing left open at the end.
func balance(t *testing.T, doc chromeDoc) {
	t.Helper()
	depth := map[[2]int]int{}
	for _, ev := range doc.TraceEvents {
		key := [2]int{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "B":
			depth[key]++
		case "E":
			depth[key]--
			if depth[key] < 0 {
				t.Fatalf("track pid=%d tid=%d: E without open B", ev.Pid, ev.Tid)
			}
		}
	}
	for key, d := range depth {
		if d != 0 {
			t.Errorf("track pid=%d tid=%d: %d spans left open", key[0], key[1], d)
		}
	}
}

func TestRecorderBasics(t *testing.T) {
	r := New(3, 0)
	r.Begin(TrackControl, "local_sort")
	r.Instant(TrackControl, "send", 128, 1)
	r.Counter("live_bytes", 4096)
	r.Span(TrackWorker0+1, "merge", 10, 20)
	r.End(TrackControl, "local_sort")
	b := r.Snapshot()
	if b.Rank != 3 {
		t.Fatalf("rank %d, want 3", b.Rank)
	}
	if len(b.Events) != 6 {
		t.Fatalf("%d events, want 6", len(b.Events))
	}
	if b.Dropped != 0 {
		t.Fatalf("dropped %d, want 0", b.Dropped)
	}
	doc := exportDoc(t, []*Buffer{b})
	balance(t, doc)
	var kinds []string
	for _, ev := range doc.TraceEvents {
		kinds = append(kinds, ev.Ph)
	}
	// 2 process metadata + thread metadata interleaved with B/i/C/B/E/E.
	wantPh := map[string]int{"M": 4, "B": 2, "E": 2, "i": 1, "C": 1}
	got := map[string]int{}
	for _, k := range kinds {
		got[k]++
	}
	if !reflect.DeepEqual(got, wantPh) {
		t.Fatalf("event kinds %v, want %v", got, wantPh)
	}
}

// TestNilRecorder pins the disabled path: every method on a nil recorder
// is a no-op that must not panic.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Begin(TrackControl, "x")
	r.End(TrackControl, "x")
	r.Instant(TrackControl, "x", 1, 2)
	r.Counter("x", 3)
	r.Span(TrackWorker0, "x", 1, 2)
	if b := r.Snapshot(); b != nil {
		t.Fatalf("nil recorder snapshot = %v, want nil", b)
	}
	if r.Rank() != -1 {
		t.Fatalf("nil recorder rank = %d, want -1", r.Rank())
	}
}

// TestRingWraparoundSpansConsistent is the satellite test: overflow a
// small ring so Begins are overwritten while their Ends survive (and one
// span stays open), then require the export to still have balanced B/E
// pairs on every track.
func TestRingWraparoundSpansConsistent(t *testing.T) {
	r := New(0, 8)
	r.Begin(TrackControl, "outer") // will be overwritten by the wrap
	for i := 0; i < 5; i++ {
		r.Begin(TrackControl, "inner")
		r.Instant(TrackControl, "tick", int64(i), 0)
		r.End(TrackControl, "inner")
	}
	r.Begin(TrackControl, "tail-open") // never closed
	b := r.Snapshot()
	if b.Dropped == 0 {
		t.Fatalf("ring of 8 did not wrap after %d events", 17)
	}
	if len(b.Events) != 8 {
		t.Fatalf("snapshot has %d events, want ring size 8", len(b.Events))
	}
	// Events must come out oldest-first: timestamps non-decreasing.
	for i := 1; i < len(b.Events); i++ {
		if b.Events[i].TS < b.Events[i-1].TS {
			t.Fatalf("snapshot not oldest-first at %d: %d < %d", i, b.Events[i].TS, b.Events[i-1].TS)
		}
	}
	doc := exportDoc(t, []*Buffer{b})
	balance(t, doc)
}

func TestSerializeRoundtrip(t *testing.T) {
	r := New(2, 0)
	r.Begin(TrackControl, "exchange")
	r.Instant(TrackControl, "frame-send", 4096, 3)
	r.Counter("spill_written", 1<<20)
	r.End(TrackControl, "exchange")
	b := r.Snapshot()
	b.OffsetNS = -123456789

	data := b.Marshal()
	got, err := UnmarshalBuffer(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, b)
	}

	// Corrupt truncations must error, not panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := UnmarshalBuffer(data[:cut]); err == nil && cut < len(data)-1 {
			// A prefix that happens to parse fully is acceptable only if it
			// consumed everything it declared; truncations inside declared
			// content must fail.
			_ = err
		}
	}
	if _, err := UnmarshalBuffer(nil); err == nil {
		t.Fatal("empty buffer unmarshaled without error")
	}
	if _, err := UnmarshalBuffer([]byte{0x00}); err == nil {
		t.Fatal("bad magic unmarshaled without error")
	}
}

// TestMultiBufferOffsets checks cross-process merging: the same event
// times with different offsets must land at the same exported timestamp.
func TestMultiBufferOffsets(t *testing.T) {
	mk := func(rank int, base int64) *Buffer {
		r := New(rank, 0)
		r.Span(TrackControl, "merge", base+1000, base+2000)
		return r.Snapshot()
	}
	b0 := mk(0, 0)
	b1 := mk(1, 5_000_000) // rank 1's clock runs 5ms ahead
	b1.OffsetNS = -5_000_000
	doc := exportDoc(t, []*Buffer{b0, b1})
	var ts []float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "B" {
			ts = append(ts, ev.TS)
		}
	}
	if len(ts) != 2 || ts[0] != ts[1] {
		t.Fatalf("offset-corrected begin timestamps %v, want two equal values", ts)
	}
}

// BenchmarkNilRecorder measures the disabled path of every hook: a nil
// pointer test and return. This is the structural basis of the <2%
// disabled-tracing overhead claim — a sort performs on the order of 1e4
// hook calls, each costing ~1ns here.
func BenchmarkNilRecorder(b *testing.B) {
	var r *Recorder
	b.Run("instant", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Instant(TrackControl, "send", 1, 2)
		}
	})
	b.Run("span", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Span(TrackWorker0, "merge", 1, 2)
		}
	})
}

func BenchmarkEnabledInstant(b *testing.B) {
	r := New(0, 1<<15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Instant(TrackControl, "send", int64(i), 1)
	}
}

func BenchmarkChromeExport(b *testing.B) {
	r := New(0, 1<<15)
	for i := 0; i < 1<<15; i++ {
		r.Instant(TrackControl, fmt.Sprintf("n%d", i%32), int64(i), 0)
	}
	buf := r.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if err := WriteChromeTrace(&out, []*Buffer{buf}); err != nil {
			b.Fatal(err)
		}
	}
}
