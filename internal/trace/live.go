// Live introspection state behind the -debug-addr endpoint: a global set
// of gauges the hot paths update only when the endpoint is actually
// serving (one atomic load when it is not), plus a registry of live
// recorders for the on-demand trace snapshot.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// liveEnabled flips to true once and stays true: the debug endpoint lives
// for the rest of the process.
var liveEnabled atomic.Bool

// EnableLive turns on the live gauges and the recorder registry. Called
// by the debug endpoint at startup; there is no way back — the cost while
// enabled is a handful of atomic adds per accounting call.
func EnableLive() { liveEnabled.Store(true) }

// LiveOn reports whether the live gauges are being served. Hot paths
// check this before touching Live.
func LiveOn() bool { return liveEnabled.Load() }

// Gauges is the expvar-published live view of a running sort. All fields
// are cumulative byte counters except LiveBytes (current metered arena
// bytes) and the per-rank phase map.
type Gauges struct {
	RawSent      atomic.Int64 // model-channel bytes entering the transport
	RawRecv      atomic.Int64
	WireSent     atomic.Int64 // post-codec frame bytes on the wire
	WireRecv     atomic.Int64
	SpillWritten atomic.Int64 // spill page bytes flushed
	SpillRead    atomic.Int64 // spill page bytes paged back in
	LiveBytes    atomic.Int64 // current metered arena bytes (all pools)

	mu     sync.Mutex
	phases map[int]string // rank → current phase name
}

// Live is the process-wide gauge set. Updates are gated on LiveOn.
var Live Gauges

// SetPhase records the current phase of one rank.
func (g *Gauges) SetPhase(rank int, phase string) {
	g.mu.Lock()
	if g.phases == nil {
		g.phases = make(map[int]string)
	}
	g.phases[rank] = phase
	g.mu.Unlock()
}

// Map snapshots the gauges as an expvar-friendly map.
func (g *Gauges) Map() map[string]any {
	m := map[string]any{
		"raw_sent_bytes":      g.RawSent.Load(),
		"raw_recv_bytes":      g.RawRecv.Load(),
		"wire_sent_bytes":     g.WireSent.Load(),
		"wire_recv_bytes":     g.WireRecv.Load(),
		"spill_written_bytes": g.SpillWritten.Load(),
		"spill_read_bytes":    g.SpillRead.Load(),
		"live_arena_bytes":    g.LiveBytes.Load(),
	}
	g.mu.Lock()
	phases := make(map[string]string, len(g.phases))
	for rank, ph := range g.phases {
		phases[itoa(rank)] = ph
	}
	g.mu.Unlock()
	m["phase"] = phases
	return m
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// maxLiveRecorders bounds the snapshot registry: a long-lived process
// running many sorts keeps only the most recent recorders alive through
// the registry (the sorts themselves drop theirs when done).
const maxLiveRecorders = 64

var (
	regMu    sync.Mutex
	registry []*Recorder
)

// register adds a recorder to the live-snapshot registry (called from New
// when the endpoint is enabled).
func register(r *Recorder) {
	regMu.Lock()
	registry = append(registry, r)
	if len(registry) > maxLiveRecorders {
		registry = append(registry[:0], registry[len(registry)-maxLiveRecorders:]...)
	}
	regMu.Unlock()
}

// Snapshots returns a snapshot of every registered live recorder, sorted
// by rank — the payload of the endpoint's on-demand trace download.
func Snapshots() []*Buffer {
	regMu.Lock()
	recs := append([]*Recorder(nil), registry...)
	regMu.Unlock()
	bufs := make([]*Buffer, 0, len(recs))
	for _, r := range recs {
		bufs = append(bufs, r.Snapshot())
	}
	sort.SliceStable(bufs, func(i, j int) bool { return bufs[i].Rank < bufs[j].Rank })
	return bufs
}
