// Chrome trace-event export: the JSON Array Format understood by Perfetto
// and chrome://tracing. Each Buffer becomes one process track (pid = PE
// rank) with one thread track per event track; timestamps are shifted by
// the buffer's clock offset and rebased so the earliest event sits at 0.
package trace

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"unicode/utf8"
)

// WriteChromeTrace writes the buffers as one merged Chrome trace-event
// JSON document. Ring wraparound may leave a buffer with an End whose
// Begin was overwritten or a Begin whose End never landed; orphaned Ends
// are dropped and unclosed Begins get a synthetic End at the buffer's
// last timestamp, so the output always has balanced B/E pairs per thread
// track and loads cleanly.
func WriteChromeTrace(w io.Writer, bufs []*Buffer) error {
	base := int64(0)
	haveBase := false
	for _, b := range bufs {
		if b == nil {
			continue
		}
		for _, ev := range b.Events {
			if ts := ev.TS + b.OffsetNS; !haveBase || ts < base {
				base, haveBase = ts, true
			}
		}
	}

	out := make([]byte, 0, 1<<16)
	out = append(out, `{"traceEvents":[`...)
	first := true
	emit := func(rec []byte) error {
		if !first {
			out = append(out, ',', '\n')
		}
		first = false
		out = append(out, rec...)
		if len(out) >= 1<<16 {
			if _, err := w.Write(out); err != nil {
				return err
			}
			out = out[:0]
		}
		return nil
	}

	var rec []byte
	for _, b := range bufs {
		if b == nil {
			continue
		}
		if err := writeBufferEvents(b, base, &rec, emit); err != nil {
			return err
		}
	}
	out = append(out, "]}\n"...)
	_, err := w.Write(out)
	return err
}

// WriteFile writes the merged Chrome trace to path.
func WriteFile(path string, bufs []*Buffer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := WriteChromeTrace(f, bufs); err != nil {
		f.Close()
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

func trackName(t int32) string {
	switch {
	case t == TrackControl:
		return "pe"
	case t == TrackSpill:
		return "spill"
	default:
		return "worker " + strconv.Itoa(int(t-TrackWorker0))
	}
}

// writeBufferEvents emits metadata, events and synthetic closes of one
// buffer through emit, reusing *scratch as the record buffer.
func writeBufferEvents(b *Buffer, base int64, scratch *[]byte, emit func([]byte) error) error {
	pid := b.Rank
	name := func(ev Event) string {
		if int(ev.Name) < len(b.Names) {
			return b.Names[ev.Name]
		}
		return "?"
	}
	ts := func(ev Event) float64 {
		return float64(ev.TS+b.OffsetNS-base) / 1e3 // ns → µs
	}

	rec := (*scratch)[:0]
	meta := func(metaName, key string, val any) error {
		rec = rec[:0]
		rec = append(rec, `{"ph":"M","pid":`...)
		rec = strconv.AppendInt(rec, int64(pid), 10)
		rec = append(rec, `,"tid":0,"name":"`...)
		rec = append(rec, metaName...)
		rec = append(rec, `","args":{"`...)
		rec = append(rec, key...)
		rec = append(rec, `":`...)
		switch v := val.(type) {
		case string:
			rec = appendJSONString(rec, v)
		case int:
			rec = strconv.AppendInt(rec, int64(v), 10)
		}
		rec = append(rec, `}}`...)
		return emit(rec)
	}
	if err := meta("process_name", "name", fmt.Sprintf("PE %d", b.Rank)); err != nil {
		return err
	}
	if err := meta("process_sort_index", "sort_index", b.Rank); err != nil {
		return err
	}
	tracksSeen := map[int32]bool{}

	// depth/stack track span nesting per thread track so wrap-orphaned
	// events can be repaired: Ends at depth 0 are dropped, Begins still
	// open at the end of the buffer are closed synthetically.
	type open struct{ name string }
	stacks := map[int32][]open{}
	lastTS := map[int32]int64{}

	for _, ev := range b.Events {
		if ev.Kind != KindCounter && !tracksSeen[ev.Track] {
			tracksSeen[ev.Track] = true
			rec = rec[:0]
			rec = append(rec, `{"ph":"M","pid":`...)
			rec = strconv.AppendInt(rec, int64(pid), 10)
			rec = append(rec, `,"tid":`...)
			rec = strconv.AppendInt(rec, int64(ev.Track), 10)
			rec = append(rec, `,"name":"thread_name","args":{"name":`...)
			rec = appendJSONString(rec, trackName(ev.Track))
			rec = append(rec, `}}`...)
			if err := emit(rec); err != nil {
				return err
			}
		}
		switch ev.Kind {
		case KindBegin:
			stacks[ev.Track] = append(stacks[ev.Track], open{name: name(ev)})
		case KindEnd:
			st := stacks[ev.Track]
			if len(st) == 0 {
				continue // Begin lost to ring wraparound: drop the orphan End
			}
			stacks[ev.Track] = st[:len(st)-1]
		}
		if ev.Kind != KindCounter {
			if t := ev.TS; t > lastTS[ev.Track] {
				lastTS[ev.Track] = t
			}
		}
		rec = appendEvent(rec[:0], pid, ev, name(ev), ts(ev))
		if err := emit(rec); err != nil {
			return err
		}
	}

	// Synthetic closes for spans still open (End lost to wraparound or
	// the run stopped mid-span), innermost first.
	for track, st := range stacks {
		endTS := float64(lastTS[track]+b.OffsetNS-base) / 1e3
		for i := len(st) - 1; i >= 0; i-- {
			rec = appendEvent(rec[:0], pid,
				Event{Track: track, Kind: KindEnd}, st[i].name, endTS)
			if err := emit(rec); err != nil {
				return err
			}
		}
	}
	if b.Dropped > 0 {
		rec = appendEvent(rec[:0], pid,
			Event{Track: TrackControl, Kind: KindInstant, Arg: int64(b.Dropped)},
			"ring dropped events", float64(lastTS[TrackControl]+b.OffsetNS-base)/1e3)
		if err := emit(rec); err != nil {
			return err
		}
	}
	*scratch = rec
	return nil
}

// appendEvent renders one trace record. Counter events ignore the track
// (Chrome counters are per-process); everything else lands on its thread
// track.
func appendEvent(rec []byte, pid int, ev Event, name string, tsUS float64) []byte {
	rec = append(rec, `{"ph":"`...)
	switch ev.Kind {
	case KindBegin:
		rec = append(rec, 'B')
	case KindEnd:
		rec = append(rec, 'E')
	case KindInstant:
		rec = append(rec, 'i')
	case KindCounter:
		rec = append(rec, 'C')
	}
	rec = append(rec, `","pid":`...)
	rec = strconv.AppendInt(rec, int64(pid), 10)
	if ev.Kind != KindCounter {
		rec = append(rec, `,"tid":`...)
		rec = strconv.AppendInt(rec, int64(ev.Track), 10)
	}
	rec = append(rec, `,"ts":`...)
	rec = strconv.AppendFloat(rec, tsUS, 'f', 3, 64)
	rec = append(rec, `,"name":`...)
	rec = appendJSONString(rec, name)
	switch ev.Kind {
	case KindInstant:
		rec = append(rec, `,"s":"t"`...)
		if ev.Arg != 0 || ev.Arg2 != 0 {
			rec = append(rec, `,"args":{"v":`...)
			rec = strconv.AppendInt(rec, ev.Arg, 10)
			rec = append(rec, `,"v2":`...)
			rec = strconv.AppendInt(rec, ev.Arg2, 10)
			rec = append(rec, '}')
		}
	case KindCounter:
		rec = append(rec, `,"args":{"v":`...)
		rec = strconv.AppendInt(rec, ev.Arg, 10)
		rec = append(rec, '}')
	}
	rec = append(rec, '}')
	return rec
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal that is valid for
// ANY byte content: control characters become \u00XX escapes, quote and
// backslash are escaped, and bytes that are not valid UTF-8 are replaced
// with U+FFFD — json.Valid holds on the output no matter what label bytes
// a caller interned (fuzzed in json_test.go).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				dst = append(dst, '\\', '"')
			case c == '\\':
				dst = append(dst, '\\', '\\')
			case c >= 0x20:
				dst = append(dst, c)
			case c == '\n':
				dst = append(dst, '\\', 'n')
			case c == '\t':
				dst = append(dst, '\\', 't')
			case c == '\r':
				dst = append(dst, '\\', 'r')
			default:
				dst = append(dst, '\\', 'u', '0', '0',
					hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, `�`...)
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}
