// Binary Buffer serialization for the cross-process trace gather: worker
// ranks marshal their snapshot, ship it through the report machinery's
// Allgatherv, and rank 0 unmarshals every peer's buffer before writing
// the merged Chrome trace.
package trace

import (
	"encoding/binary"
	"fmt"
)

// bufferMagic versions the wire layout of a marshaled Buffer.
const bufferMagic = 0xD5 // 'dss trace' v1

// Marshal encodes the buffer as a self-describing byte string (varint
// fields, name table by length prefix).
func (b *Buffer) Marshal() []byte {
	n := 16 + len(b.Events)*10
	for _, s := range b.Names {
		n += len(s) + 2
	}
	out := make([]byte, 0, n)
	out = append(out, bufferMagic)
	out = binary.AppendUvarint(out, uint64(b.Rank))
	out = binary.AppendVarint(out, b.OffsetNS)
	out = binary.AppendUvarint(out, b.Dropped)
	out = binary.AppendUvarint(out, uint64(len(b.Names)))
	for _, s := range b.Names {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	out = binary.AppendUvarint(out, uint64(len(b.Events)))
	prevTS := int64(0)
	for _, ev := range b.Events {
		// Timestamps are near-monotonic, so delta coding keeps them short.
		out = binary.AppendVarint(out, ev.TS-prevTS)
		prevTS = ev.TS
		out = binary.AppendVarint(out, ev.Arg)
		out = binary.AppendVarint(out, ev.Arg2)
		out = binary.AppendUvarint(out, uint64(ev.Name))
		out = binary.AppendUvarint(out, uint64(ev.Track))
		out = append(out, byte(ev.Kind))
	}
	return out
}

type bufReader struct {
	b   []byte
	off int
	err error
}

func (r *bufReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("trace: truncated buffer at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *bufReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("trace: truncated buffer at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *bufReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("trace: truncated buffer at offset %d", r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// UnmarshalBuffer decodes a Marshal-produced byte string.
func UnmarshalBuffer(data []byte) (*Buffer, error) {
	if len(data) == 0 || data[0] != bufferMagic {
		return nil, fmt.Errorf("trace: bad buffer magic")
	}
	r := &bufReader{b: data, off: 1}
	b := &Buffer{
		Rank:     int(r.uvarint()),
		OffsetNS: r.varint(),
		Dropped:  r.uvarint(),
	}
	nNames := int(r.uvarint())
	if r.err == nil && nNames > len(data) {
		return nil, fmt.Errorf("trace: implausible name count %d", nNames)
	}
	b.Names = make([]string, 0, nNames)
	for i := 0; i < nNames && r.err == nil; i++ {
		b.Names = append(b.Names, string(r.bytes(int(r.uvarint()))))
	}
	nEvents := int(r.uvarint())
	if r.err == nil && nEvents > len(data) {
		return nil, fmt.Errorf("trace: implausible event count %d", nEvents)
	}
	b.Events = make([]Event, 0, nEvents)
	prevTS := int64(0)
	for i := 0; i < nEvents && r.err == nil; i++ {
		var ev Event
		prevTS += r.varint()
		ev.TS = prevTS
		ev.Arg = r.varint()
		ev.Arg2 = r.varint()
		ev.Name = int32(r.uvarint())
		ev.Track = int32(r.uvarint())
		kb := r.bytes(1)
		if r.err == nil {
			ev.Kind = Kind(kb[0])
		}
		b.Events = append(b.Events, ev)
	}
	if r.err != nil {
		return nil, r.err
	}
	return b, nil
}
