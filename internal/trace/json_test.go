package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// TestJSONStringEscaping spot-checks the hostile corners the fuzz target
// explores: control bytes, quotes, backslashes, invalid UTF-8.
func TestJSONStringEscaping(t *testing.T) {
	cases := []string{
		"",
		"plain",
		`quote " backslash \ done`,
		"newline\n tab\t cr\r null\x00 bell\x07",
		"invalid utf8 \xff\xfe middle",
		"truncated rune \xe2\x82",
		"emoji 🙂 and   line sep",
		string([]byte{0x80, 0x81, 0xc0, 0xaf}),
	}
	for _, s := range cases {
		out := appendJSONString(nil, s)
		if !json.Valid(out) {
			t.Errorf("appendJSONString(%q) = %s: not valid JSON", s, out)
			continue
		}
		var back string
		if err := json.Unmarshal(out, &back); err != nil {
			t.Errorf("unmarshal %s: %v", out, err)
			continue
		}
		// Valid UTF-8 input must roundtrip exactly; invalid bytes become
		// replacement characters.
		if utf8.ValidString(s) && back != s {
			t.Errorf("roundtrip %q -> %q", s, back)
		}
	}
}

// FuzzChromeJSONEscaping is the satellite fuzz target: whatever bytes end
// up as event names (labels can carry arbitrary input fragments), the
// exported document must parse as valid JSON.
func FuzzChromeJSONEscaping(f *testing.F) {
	f.Add("plain", "other")
	f.Add("quote\"and\\slash", "ctrl\x01\x02")
	f.Add("bad\xff utf8\xc3(", "\xe2\x82")
	f.Add("", "\x00\x00\x00")
	f.Fuzz(func(t *testing.T, name1, name2 string) {
		out := appendJSONString(nil, name1)
		if !json.Valid(out) {
			t.Fatalf("appendJSONString(%q) invalid: %s", name1, out)
		}

		r := New(0, 16)
		r.Begin(TrackControl, name1)
		r.Instant(TrackControl, name2, 7, -3)
		r.Counter(name1, 42)
		r.End(TrackControl, name1)
		var doc bytes.Buffer
		if err := WriteChromeTrace(&doc, []*Buffer{r.Snapshot()}); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		if !json.Valid(doc.Bytes()) {
			t.Fatalf("export with names %q, %q is invalid JSON:\n%s", name1, name2, doc.String())
		}
	})
}
