// Package trace is the per-PE timeline recorder behind Config.Trace and
// the -debug-addr live endpoint: a fixed-size ring of binary event
// records (span begin/end, instant events, counter samples) stamped with
// nanosecond wall-clock timestamps, cheap enough to leave compiled into
// every hot path.
//
// Cost model. Every Recorder method is nil-safe: a disabled run passes a
// nil *Recorder around and each hook point costs one pointer test and a
// branch — no interface dispatch, no allocation, no time syscall. An
// enabled recorder takes a mutex per event (spill write-behind helpers
// and pool workers record concurrently with the PE goroutine) and writes
// one 48-byte record; names are interned once per distinct string.
//
// The ring holds the most recent Capacity events; older events are
// dropped, counted in Buffer.Dropped. Span consistency across the wrap
// seam (an End whose Begin was overwritten, a Begin whose End is gone) is
// restored at export time by WriteChromeTrace, which drops orphaned Ends
// and synthesizes Ends for unclosed Begins — so a wrapped ring still
// loads in Perfetto.
//
// Tracks. Events carry a track id that becomes a Chrome thread track:
// TrackControl is the PE goroutine itself (phase spans, collective posts,
// frame instants), TrackSpill the write-behind spill traffic, and
// TrackWorker0+w the w-th participating worker of a `par` fork point.
package trace

import (
	"sync"
	"time"
)

// Kind discriminates the event records in the ring.
type Kind uint8

const (
	// KindBegin opens a span on a track.
	KindBegin Kind = iota
	// KindEnd closes the most recent open span on the same track.
	KindEnd
	// KindInstant is a point event (Arg/Arg2 carry bytes and peer rank
	// where that makes sense).
	KindInstant
	// KindCounter is a sampled counter value (Arg is the sample).
	KindCounter
)

// Track ids. Anything >= TrackWorker0 is a pool-worker track.
const (
	// TrackControl is the PE's own goroutine: phase spans, collective
	// post/arrival instants, transport frame events.
	TrackControl int32 = 0
	// TrackSpill carries the write-behind spill instants and counter
	// samples (page flushes run on helper goroutines, so they get their
	// own track rather than interleaving with worker spans).
	TrackSpill int32 = 1
	// TrackWorker0 is pool worker 0 (the forking goroutine); worker w
	// records on TrackWorker0 + w.
	TrackWorker0 int32 = 2
)

// DefaultCapacity is the ring size used when the caller passes 0: at
// 48 bytes per event this is ~1.5 MiB per PE, enough for every event of
// the benchmark-scale runs and a bounded tail of the biggest ones.
const DefaultCapacity = 32768

// Event is one fixed-size ring record. TS is a time.Now().UnixNano()
// stamp of the recording process; cross-process alignment happens at
// export time via Buffer.OffsetNS.
type Event struct {
	TS    int64 // UnixNano in the recorder's clock domain
	Arg   int64 // bytes / counter value / overlap-ns — per event name
	Arg2  int64 // peer rank for send/recv instants, else 0
	Name  int32 // index into the recorder's interned name table
	Track int32
	Kind  Kind
}

// Recorder collects the timeline of one PE. The zero value is not usable;
// call New. A nil *Recorder is the disabled state: every method returns
// immediately.
type Recorder struct {
	mu      sync.Mutex
	rank    int
	names   []string
	nameIx  map[string]int32
	ring    []Event
	next    uint64 // total events ever recorded; ring slot is next % cap
	dropped uint64
}

// Buffer is a self-contained snapshot of one recorder: the interned name
// table plus the surviving events, oldest first. OffsetNS is the additive
// correction that maps this buffer's clock domain onto the aggregating
// rank's (0 for same-process buffers; estimated at gather time for
// multi-process runs).
type Buffer struct {
	Rank     int
	OffsetNS int64
	Dropped  uint64
	Names    []string
	Events   []Event
}

// New creates a recorder for the given PE rank. capacity <= 0 selects
// DefaultCapacity. When the live debug endpoint is enabled the recorder
// registers itself for on-demand snapshots (see Snapshots).
func New(rank, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{
		rank:   rank,
		nameIx: make(map[string]int32),
		ring:   make([]Event, 0, capacity),
	}
	if LiveOn() {
		register(r)
	}
	return r
}

// Rank returns the PE rank the recorder was created for.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// intern returns the index of name in the table, adding it on first use.
// Callers hold r.mu.
func (r *Recorder) intern(name string) int32 {
	if ix, ok := r.nameIx[name]; ok {
		return ix
	}
	ix := int32(len(r.names))
	r.names = append(r.names, name)
	r.nameIx[name] = ix
	return ix
}

// record appends one event, overwriting the oldest once the ring is full.
// Callers hold r.mu.
func (r *Recorder) record(ev Event) {
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[r.next%uint64(cap(r.ring))] = ev
		r.dropped++
	}
	r.next++
}

// Begin opens a span named name on the given track, stamped now.
func (r *Recorder) Begin(track int32, name string) {
	if r == nil {
		return
	}
	ts := time.Now().UnixNano()
	r.mu.Lock()
	r.record(Event{TS: ts, Name: r.intern(name), Track: track, Kind: KindBegin})
	r.mu.Unlock()
}

// End closes the most recent open span on the track, stamped now.
func (r *Recorder) End(track int32, name string) {
	if r == nil {
		return
	}
	ts := time.Now().UnixNano()
	r.mu.Lock()
	r.record(Event{TS: ts, Name: r.intern(name), Track: track, Kind: KindEnd})
	r.mu.Unlock()
}

// Span records a complete span with explicit begin/end stamps — the shape
// `par` fork points use: each worker's busy interval is known only once
// it finishes, so both records land at once.
func (r *Recorder) Span(track int32, name string, startNS, endNS int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ix := r.intern(name)
	r.record(Event{TS: startNS, Name: ix, Track: track, Kind: KindBegin})
	r.record(Event{TS: endNS, Name: ix, Track: track, Kind: KindEnd})
	r.mu.Unlock()
}

// Instant records a point event. arg and arg2 are event-specific (frame
// instants carry bytes and the peer rank).
func (r *Recorder) Instant(track int32, name string, arg, arg2 int64) {
	if r == nil {
		return
	}
	ts := time.Now().UnixNano()
	r.mu.Lock()
	r.record(Event{TS: ts, Arg: arg, Arg2: arg2, Name: r.intern(name), Track: track, Kind: KindInstant})
	r.mu.Unlock()
}

// Counter records a sample of the named counter (rendered as a Chrome
// counter track).
func (r *Recorder) Counter(name string, value int64) {
	if r == nil {
		return
	}
	ts := time.Now().UnixNano()
	r.mu.Lock()
	r.record(Event{TS: ts, Arg: value, Name: r.intern(name), Kind: KindCounter})
	r.mu.Unlock()
}

// Snapshot copies the current ring contents into a Buffer, oldest event
// first. The recorder stays usable; later events keep accumulating.
func (r *Recorder) Snapshot() *Buffer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := &Buffer{
		Rank:    r.rank,
		Dropped: r.dropped,
		Names:   append([]string(nil), r.names...),
	}
	n := len(r.ring)
	b.Events = make([]Event, 0, n)
	if n == cap(r.ring) && r.next > uint64(n) {
		// Wrapped: the oldest surviving event sits at the next write slot.
		start := int(r.next % uint64(n))
		b.Events = append(b.Events, r.ring[start:]...)
		b.Events = append(b.Events, r.ring[:start]...)
	} else {
		b.Events = append(b.Events, r.ring...)
	}
	return b
}
