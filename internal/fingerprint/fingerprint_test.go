package fingerprint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIncrementalMatchesOneShot(t *testing.T) {
	h := New(7)
	s := []byte("the quick brown fox jumps over the lazy dog")
	for upto := 0; upto <= len(s); upto++ {
		// Grow in several steps.
		st := State{}
		for pos := 0; pos < upto; {
			step := 1 + (pos % 5)
			next := pos + step
			if next > upto {
				next = upto
			}
			st = h.Extend(st, s, next)
			pos = next
		}
		if h.Finalize(st) != h.Sum(s, upto) {
			t.Fatalf("incremental != one-shot at upto=%d", upto)
		}
	}
}

func TestEqualPrefixesHashEqual(t *testing.T) {
	h := New(99)
	a := []byte("prefix-sharing-alpha")
	b := []byte("prefix-sharing-beta")
	if h.Sum(a, 15) != h.Sum(b, 15) { // LCP(a,b) = 15
		t.Fatal("equal prefixes produced different fingerprints")
	}
	if h.Sum(a, 16) == h.Sum(b, 16) {
		t.Fatal("diverging prefixes collided (astronomically unlikely)")
	}
}

func TestLengthDistinguishes(t *testing.T) {
	// A zero byte extension must change the fingerprint even though the
	// polynomial might absorb it weakly; the length tag guarantees it.
	h := New(1)
	s := []byte{0, 0, 0, 0}
	seen := map[uint64]int{}
	for upto := 0; upto <= len(s); upto++ {
		v := h.Sum(s, upto)
		if prev, dup := seen[v]; dup {
			t.Fatalf("prefix lengths %d and %d collide", prev, upto)
		}
		seen[v] = upto
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, b := New(1), New(2)
	s := []byte("seed sensitivity")
	if a.Sum(s, len(s)) == b.Sum(s, len(s)) {
		t.Fatal("different seeds produced equal fingerprints")
	}
}

func TestDeterministicAcrossHasherInstances(t *testing.T) {
	f := func(s []byte, seed uint64) bool {
		if len(s) == 0 {
			return true
		}
		return New(seed).Sum(s, len(s)) == New(seed).Sum(s, len(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollisionRateSane(t *testing.T) {
	// 64-bit hash over 100k random short strings: expect zero collisions.
	h := New(1234)
	rng := rand.New(rand.NewSource(42))
	seen := make(map[uint64][]byte, 100000)
	for i := 0; i < 100000; i++ {
		l := 1 + rng.Intn(12)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte(rng.Intn(4)) // small alphabet stresses mixing
		}
		v := h.Sum(s, len(s))
		if prev, dup := seen[v]; dup && string(prev) != string(s) {
			t.Fatalf("collision: %v vs %v", prev, s)
		}
		seen[v] = s
	}
}

func TestExtendPanicsOnBadRange(t *testing.T) {
	h := New(0)
	s := []byte("abc")
	st := h.Extend(State{}, s, 2)
	for _, upto := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Extend(upto=%d) did not panic", upto)
				}
			}()
			h.Extend(st, s, upto)
		}()
	}
}
