// Package fingerprint computes 64-bit fingerprints of string prefixes for
// the distributed duplicate detection of Section VI-A of the paper. The
// hash is an incremental polynomial (multiply-accumulate with an odd
// multiplier) finished with a splitmix64-style mixer. Crucially,
// fingerprints extend incrementally: when prefix doubling grows a string's
// inspected prefix from ℓ to ℓ', only the ℓ'−ℓ new characters are hashed,
// keeping the local hashing work O(D̂) overall (Theorem 6).
package fingerprint

// State is the running polynomial state of one string's prefix. The zero
// State is the hash of the empty prefix.
type State struct {
	h   uint64
	pos int // number of characters absorbed so far
}

// Pos returns how many characters have been absorbed.
func (s State) Pos() int { return s.pos }

// Hasher produces fingerprints under a fixed seed. Two Hashers with the
// same seed produce identical fingerprints on all PEs, which the duplicate
// detection relies on.
type Hasher struct {
	mul  uint64
	seed uint64
}

// New returns a Hasher for the given seed.
func New(seed uint64) Hasher {
	// Odd multiplier derived from the golden ratio; any odd constant works,
	// seeding varies the finalization rather than the polynomial.
	return Hasher{mul: 0x9e3779b97f4a7c15, seed: seed ^ 0xa0761d6478bd642f}
}

// Extend absorbs s[state.Pos():upto] into the state and returns the new
// state. It panics if upto exceeds len(s) or precedes the current position.
func (h Hasher) Extend(state State, s []byte, upto int) State {
	if upto > len(s) || upto < state.pos {
		panic("fingerprint: invalid extension range")
	}
	x := state.h
	for _, c := range s[state.pos:upto] {
		x = (x + uint64(c) + 1) * h.mul
	}
	return State{h: x, pos: upto}
}

// Finalize returns the fingerprint of the absorbed prefix. The prefix
// length and the seed are mixed in so that equal polynomial states of
// different lengths (or under different seeds) yield different values.
func (h Hasher) Finalize(state State) uint64 {
	return mix64(state.h ^ (uint64(state.pos) * 0xbf58476d1ce4e5b9) ^ h.seed)
}

// FinalizeTerminated returns the fingerprint of the absorbed prefix
// followed by the end-of-string terminator. In the paper's model strings
// are 0-terminated, so the prefix of a string s at any length beyond |s|
// is s itself plus the terminator: it collides only with exact copies of
// s, never with an equal-length prefix of a longer string. The duplicate
// detection uses this for strings shorter than the current prefix guess.
func (h Hasher) FinalizeTerminated(state State) uint64 {
	return mix64(h.Finalize(state) ^ 0xd6e8feb86659fd93)
}

// Sum is a convenience one-shot fingerprint of s[:upto].
func (h Hasher) Sum(s []byte, upto int) uint64 {
	return h.Finalize(h.Extend(State{}, s, upto))
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
