package transport

import (
	"math/bits"
	"sync"
)

// Pool recycles message payload buffers in power-of-two size classes. The
// local backend draws Send's mandatory payload copy from here; the TCP
// backend draws receive buffers for incoming frames. Receivers that have
// fully consumed a payload hand it back through Transport.Release, making a
// steady-state exchange allocation-free. Returning buffers is optional: an
// unreleased buffer is simply collected by the GC.
//
// The free lists are plain mutex-guarded stacks rather than sync.Pool:
// putting a []byte into a sync.Pool boxes the slice header on every call,
// which would re-introduce exactly the per-message allocation the pool is
// meant to remove. Each endpoint keeps its own Pool, and in the local
// backend each PE goroutine only ever touches its own, so the mutex is
// essentially uncontended (the TCP backend shares an endpoint's pool
// between its reader goroutines and the PE goroutine, where the lock does
// real work). Buffers migrate freely: a buffer allocated by one pool may be
// released into another.
type Pool struct {
	mu      sync.Mutex
	classes [numBufClasses][][]byte
}

// numBufClasses covers pooled payloads up to 128 MiB; larger ones fall
// back to plain allocation. maxPerClass bounds the memory parked per size
// class.
const (
	numBufClasses = 28
	maxPerClass   = 256
)

// Get returns a buffer of length n with capacity of the containing size
// class. Contents are unspecified; callers overwrite the full length.
func (p *Pool) Get(n int) []byte {
	if n == 0 {
		return []byte{}
	}
	c := bits.Len(uint(n - 1)) // smallest c with n ≤ 1<<c
	if c >= numBufClasses {
		return make([]byte, n)
	}
	p.mu.Lock()
	if l := len(p.classes[c]); l > 0 {
		b := p.classes[c][l-1]
		p.classes[c] = p.classes[c][:l-1]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]byte, n, 1<<c)
}

// Put returns a buffer to the pool, classed by its capacity so that a
// future Get never receives a buffer that is too small.
func (p *Pool) Put(b []byte) {
	n := cap(b)
	if n == 0 {
		return
	}
	c := bits.Len(uint(n)) - 1 // largest c with 1<<c ≤ cap
	if c >= numBufClasses {
		return
	}
	p.mu.Lock()
	if len(p.classes[c]) < maxPerClass {
		p.classes[c] = append(p.classes[c], b[:0])
	}
	p.mu.Unlock()
}
