package tcp_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dss/internal/transport"
	"dss/internal/transport/conformance"
	"dss/internal/transport/tcp"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, func(tb testing.TB, p int) transport.Fabric {
		f, err := tcp.NewLoopback(p)
		if err != nil {
			tb.Fatalf("loopback fabric: %v", err)
		}
		return f
	})
}

// freeAddrs reserves p distinct loopback ports the way an SPMD launcher
// would pick them: bind, record, release.
func freeAddrs(t *testing.T, p int) []string {
	t.Helper()
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestStaggeredRendezvous starts the workers of a 4-PE fabric with
// staggered delays, as the processes of a real SPMD launch would, and
// checks that the dial-retry rendezvous still assembles the full mesh and
// carries traffic.
func TestStaggeredRendezvous(t *testing.T) {
	const p = 4
	addrs := freeAddrs(t, p)
	eps := make([]*tcp.Endpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			time.Sleep(time.Duration(rank) * 150 * time.Millisecond)
			eps[rank], errs[rank] = tcp.ConnectConfig(rank, addrs, tcp.Config{
				RendezvousTimeout: 10 * time.Second,
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	defer func() {
		for _, e := range eps {
			e.Close()
		}
	}()
	// One all-to-all round over the assembled mesh.
	wg.Add(p)
	bodyErrs := make([]error, p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			e := eps[rank]
			for dst := 0; dst < p; dst++ {
				e.Send(dst, 1, []byte(fmt.Sprintf("%d->%d", rank, dst)))
			}
			for src := 0; src < p; src++ {
				want := fmt.Sprintf("%d->%d", src, rank)
				if got := e.Recv(src, 1); string(got) != want {
					bodyErrs[rank] = fmt.Errorf("from %d: got %q, want %q", src, got, want)
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range bodyErrs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestDialBackoffSurvivesLateListener pins the dial-side hardening: a
// worker whose peer appears only after many refused connects (well past
// the point where the exponential backoff has reached its cap) must keep
// retrying and join the mesh instead of giving up on the first refusal.
func TestDialBackoffSurvivesLateListener(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	eps := make([]*tcp.Endpoint, 2)
	errs := make([]error, 2)
	wg.Add(2)
	go func() { // rank 1 dials rank 0 immediately and eats refusals
		defer wg.Done()
		eps[1], errs[1] = tcp.ConnectConfig(1, addrs, tcp.Config{RendezvousTimeout: 10 * time.Second})
	}()
	go func() { // rank 0's listener appears ~1s late
		defer wg.Done()
		time.Sleep(1 * time.Second)
		eps[0], errs[0] = tcp.ConnectConfig(0, addrs, tcp.Config{RendezvousTimeout: 10 * time.Second})
	}()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	defer eps[0].Close()
	defer eps[1].Close()
	eps[1].Send(0, 1, []byte("late"))
	if got := eps[0].Recv(1, 1); string(got) != "late" {
		t.Fatalf("payload after late rendezvous: %q", got)
	}
}

func TestConnectRejectsBadRank(t *testing.T) {
	if _, err := tcp.Connect(3, []string{"127.0.0.1:0", "127.0.0.1:0"}); err == nil {
		t.Fatal("rank out of range accepted")
	}
	if _, err := tcp.Connect(0, nil); err == nil {
		t.Fatal("empty peer table accepted")
	}
}

// TestRendezvousTimesOut checks that a worker whose peers never appear
// fails with a descriptive error instead of hanging forever.
func TestRendezvousTimesOut(t *testing.T) {
	addrs := freeAddrs(t, 2)
	start := time.Now()
	_, err := tcp.ConnectConfig(1, addrs, tcp.Config{RendezvousTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("rendezvous with absent peer succeeded")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("error does not mention the timeout: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("timeout took %v", time.Since(start))
	}
}

// TestStrangerConnectionIgnored checks that a connection that never
// completes the handshake does not consume a peer slot or corrupt the
// rendezvous.
func TestStrangerConnectionIgnored(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	eps := make([]*tcp.Endpoint, 2)
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		eps[0], errs[0] = tcp.ConnectConfig(0, addrs, tcp.Config{RendezvousTimeout: 10 * time.Second})
	}()
	// A stranger pokes rank 0's listener with garbage before rank 1 dials.
	if conn, err := net.Dial("tcp", addrs[0]); err == nil {
		conn.Write([]byte("GET / HTTP/1.0\r\n\r\n"))
		conn.Close()
	}
	go func() {
		defer wg.Done()
		time.Sleep(100 * time.Millisecond)
		eps[1], errs[1] = tcp.ConnectConfig(1, addrs, tcp.Config{RendezvousTimeout: 10 * time.Second})
	}()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	defer eps[0].Close()
	defer eps[1].Close()
	eps[0].Send(1, 9, []byte("ok"))
	if got := eps[1].Recv(0, 9); string(got) != "ok" {
		t.Fatalf("got %q", got)
	}
}

// TestStalledStrangerDoesNotDelayRendezvous pins the concurrent-handshake
// guarantee: a stranger that connects to the acceptor and then goes silent
// (never completing a handshake) must not stall the mesh until its deadline
// expires — the real peer's handshake proceeds in parallel and the
// rendezvous completes promptly.
func TestStalledStrangerDoesNotDelayRendezvous(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	eps := make([]*tcp.Endpoint, 2)
	errs := make([]error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		eps[0], errs[0] = tcp.ConnectConfig(0, addrs, tcp.Config{RendezvousTimeout: 30 * time.Second})
	}()
	// The stranger connects first and holds the connection open without
	// ever writing a byte; the serial acceptor would sit in its handshake
	// read until the 30 s deadline. Retry until rank 0's listener is bound.
	var stranger net.Conn
	var err error
	for i := 0; i < 200; i++ {
		if stranger, err = net.Dial("tcp", addrs[0]); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("stranger dial: %v", err)
	}
	defer stranger.Close()
	time.Sleep(50 * time.Millisecond) // let the acceptor take the stranger first
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		eps[1], errs[1] = tcp.ConnectConfig(1, addrs, tcp.Config{RendezvousTimeout: 30 * time.Second})
	}()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	defer eps[0].Close()
	defer eps[1].Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rendezvous took %v with a stalled stranger; handshakes are not concurrent", elapsed)
	}
	eps[1].Send(0, 9, []byte("ok"))
	if got := eps[0].Recv(1, 9); string(got) != "ok" {
		t.Fatalf("got %q", got)
	}
}

// TestReconnectAfterDrop kills an established connection mid-exchange with
// the ConnDropper fault injector and asserts the pair reconnects, replays
// the unacknowledged suffix, and delivers every message exactly once and
// in order — the core protocol-v2 guarantee the chaos suite builds on.
func TestReconnectAfterDrop(t *testing.T) {
	f, err := tcp.NewLoopback(2)
	if err != nil {
		t.Fatalf("loopback fabric: %v", err)
	}
	a := f.Endpoint(0).(*tcp.Endpoint)
	b := f.Endpoint(1)

	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			got := b.Recv(0, 7)
			if len(got) != 64 || got[0] != byte(i) || got[63] != byte(i) {
				panic(fmt.Sprintf("frame %d corrupted after reconnect: % x", i, got[:4]))
			}
			b.Release(got)
		}
	}()
	buf := make([]byte, 64)
	for i := 0; i < n; i++ {
		if i == 50 || i == 120 {
			// Cut the live connection mid-frame: the next write is
			// truncated after 10 bytes — a torn header on the wire.
			if !a.DropConn(1, 10) {
				t.Errorf("DropConn(1) = false, want true")
			}
		}
		buf[0], buf[63] = byte(i), byte(i)
		a.Send(1, 7, buf)
	}
	wg.Wait()

	reconnects, resentFrames, _ := a.NetStats()
	if reconnects < 1 {
		t.Fatalf("reconnects = %d after injected drops, want >= 1", reconnects)
	}
	if resentFrames < 1 {
		t.Fatalf("resentFrames = %d after injected drops, want >= 1", resentFrames)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close after successful recovery: %v", err)
	}
}

// TestExhaustedReconnectBudgetFailsClose pins the error-propagation half
// of recovery: with reconnection disabled, an injected drop must fail the
// endpoint permanently and Close must report the cause instead of
// returning nil — a run's exit status reflects the lost connection.
func TestExhaustedReconnectBudgetFailsClose(t *testing.T) {
	f, err := tcp.NewLoopbackConfig(2, tcp.Config{MaxReconnects: -1})
	if err != nil {
		t.Fatalf("loopback fabric: %v", err)
	}
	a := f.Endpoint(0).(*tcp.Endpoint)
	if !a.DropConn(1, 3) {
		t.Fatalf("DropConn(1) = false, want true")
	}
	a.Send(1, 5, []byte("doomed"))
	// The failure closes the mailboxes, so a blocked Recv panics with the
	// cause — that is the ordering point after which Close must report it.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("Recv returned instead of panicking on a failed endpoint")
			}
			if !strings.Contains(fmt.Sprint(r), "reconnect budget exhausted") {
				t.Fatalf("Recv panic = %v, want reconnect budget exhausted", r)
			}
		}()
		a.Recv(1, 99)
	}()
	if err := a.Close(); err == nil || !strings.Contains(err.Error(), "reconnect budget exhausted") {
		t.Fatalf("Close error = %v, want reconnect budget exhausted", err)
	}
	f.Close()
}

// TestReconnectBudgetSurvivesEndpointClose asserts the inverse of the
// budget test: a clean Close right after normal traffic reports no error
// even though the peer's teardown races our readers (EOF on a closing
// fabric is shutdown, not failure).
func TestCleanCloseReportsNoError(t *testing.T) {
	f, err := tcp.NewLoopback(3)
	if err != nil {
		t.Fatalf("loopback fabric: %v", err)
	}
	for r := 0; r < 3; r++ {
		for d := 0; d < 3; d++ {
			f.Endpoint(r).Send(d, 1, []byte{byte(r), byte(d)})
		}
	}
	for r := 0; r < 3; r++ {
		for s := 0; s < 3; s++ {
			got := f.Endpoint(r).Recv(s, 1)
			if len(got) != 2 || got[0] != byte(s) || got[1] != byte(r) {
				t.Fatalf("rank %d from %d: got % x", r, s, got)
			}
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("clean Close: %v", err)
	}
}
