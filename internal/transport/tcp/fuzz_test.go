package tcp

import (
	"bufio"
	"bytes"
	"sync"
	"testing"

	"dss/internal/transport"
)

// fuzzReaderEndpoint builds the minimal endpoint state readFrames needs:
// mailboxes to deliver into and a peer connection holding the incoming
// sequence state. No sockets — the fuzzer feeds the byte stream directly.
func fuzzReaderEndpoint() (*Endpoint, *peerConn) {
	e := &Endpoint{rank: 0, p: 2, done: make(chan struct{})}
	e.boxes = []*transport.Mailbox{transport.NewMailbox(), transport.NewMailbox()}
	pc := newPeerConn(e, 1, "")
	return e, pc
}

// frameBytes encodes one wire frame exactly like the writer goroutine.
func frameBytes(seq, ack uint64, tag int, payload []byte) []byte {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, seq, ack, tag, payload); err != nil {
		panic(err)
	}
	w.Flush()
	return buf.Bytes()
}

// FuzzFrameHeader drives the connection reader with arbitrary bytes. The
// invariant under fuzz: readFrames NEVER panics — every malformed header
// (oversized length, payload on an ack frame, a sequence gap, a stream
// that ends mid-frame) comes back as a connection error, which the read
// loop turns into a reconnect or an endpoint failure. A panic here would
// kill the reader goroutine of a live run.
func FuzzFrameHeader(f *testing.F) {
	// Well-formed streams, so mutations explore the interesting frontier.
	f.Add(frameBytes(1, 0, 7, []byte("hello")))
	f.Add(frameBytes(0, 3, 0, nil)) // pure ack
	f.Add(append(frameBytes(1, 0, 7, []byte("a")), frameBytes(2, 0, 7, []byte("b"))...))
	f.Add(frameBytes(5, 0, 7, []byte("gap")))            // sequence gap
	f.Add(frameBytes(1, ^uint64(0), -1, []byte("big")))  // absurd ack, negative tag
	f.Add(frameBytes(0, 0, 9, []byte("payload on ack"))) // ack with payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the stream below the reader's large-payload probe so a header
		// claiming gigabytes dies at the probe read, not at a huge Get.
		if len(data) > 48<<10 {
			data = data[:48<<10]
		}
		e, pc := fuzzReaderEndpoint()
		err := e.readFrames(1, pc, bufio.NewReader(bytes.NewReader(data)))
		if err == nil {
			t.Fatal("readFrames returned nil on a finite stream (must at least hit EOF)")
		}
	})
}

// FuzzResendReplay drives a real loopback pair through a fuzz-chosen
// schedule of mid-stream connection kills (frame index and byte offset of
// the cut both drawn from the corpus) and requires the receiver to observe
// the exact undisturbed delivery sequence: every frame once, in order,
// with its exact bytes — no loss, no duplicate delivery, no reordering —
// and a clean fabric close afterwards.
func FuzzResendReplay(f *testing.F) {
	f.Add([]byte{0, 25, 3})
	f.Add([]byte{90, 7, 200, 41})
	f.Add([]byte{1, 1, 1, 1, 1, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, plan []byte) {
		const nFrames = 40
		const tag = 5
		if len(plan) > 12 {
			plan = plan[:12]
		}
		// Derive (frame index → cut offset) pairs; the reconnect budget is 8,
		// so cap the kills at 6 to keep exhaustion out of this property.
		drops := make(map[int]int)
		for i, b := range plan {
			if len(drops) >= 6 {
				break
			}
			drops[(int(b)*7+i*13)%nFrames] = int(b)
		}

		fab, err := NewLoopback(2)
		if err != nil {
			t.Fatal(err)
		}
		a := fab.Endpoint(0).(*Endpoint)
		b := fab.Endpoint(1).(*Endpoint)

		payload := func(i int) []byte {
			p := make([]byte, 48)
			for j := range p {
				p[j] = byte(i*31 + j)
			}
			return p
		}

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < nFrames; i++ {
				if after, ok := drops[i]; ok {
					a.DropConn(1, after)
				}
				a.Send(1, tag, payload(i))
			}
		}()

		for i := 0; i < nFrames; i++ {
			got := b.Recv(0, tag)
			if !bytes.Equal(got, payload(i)) {
				t.Fatalf("frame %d: delivery diverged from the undisturbed sequence (got % x)", i, got[:8])
			}
			b.Release(got)
		}
		wg.Wait()
		if err := fab.Close(); err != nil {
			t.Fatalf("close after replay: %v", err)
		}
	})
}
