// Package tcp implements the multi-process transport backend: PEs exchange
// length-prefixed framed messages over persistent pairwise TCP connections,
// so p workers on one or many hosts execute a genuinely distributed sort.
//
// Topology and rendezvous. Every PE knows the full peer table (rank →
// host:port, identical on all PEs) and binds a listener on its own entry.
// Exactly one connection exists per unordered PE pair: rank i dials every
// rank j < i (transient connect failures retry with bounded exponential
// backoff until the peer's listener is up, capped by the rendezvous
// timeout) and accepts from every rank j > i. A 22-byte handshake in each
// direction (magic, protocol version, flags, rank, fabric size, delivered
// sequence) maps connections to ranks and rejects strangers; accepted
// handshakes run concurrently under the rendezvous deadline, so one
// stalled stranger cannot delay the whole mesh. The listener stays open
// after the rendezvous: it is the rendezvous point for reconnects.
//
// Wire format. One frame per message: an 8-byte little-endian sequence
// number, an 8-byte cumulative acknowledgement, an 8-byte tag, a 4-byte
// payload length, then the payload. Data frames carry per-direction
// monotone sequence numbers starting at 1; a frame with sequence 0 is a
// pure acknowledgement and carries no payload. Every frame — data or ack —
// piggybacks the sender's cumulative delivered sequence for the reverse
// direction. The connection is the (src, dst) pair, so ranks never travel
// with data frames.
//
// Surviving connection loss. Each direction keeps a bounded ring of sent
// but unacknowledged frames. When an established connection dies — a
// broken write, a read error, a frame that fails validation — the endpoint
// does not kill the run: the original dialer of the pair redials (reusing
// the rendezvous dial backoff) with a reconnect handshake that carries its
// delivered sequence, the acceptor's persistent listener adopts the
// replacement connection and replies with its own delivered sequence, and
// both sides resend exactly the suffix of the ring the peer has not
// delivered. Receivers enforce contiguous sequences, so a replayed
// duplicate is dropped idempotently and a gap is a connection error that
// the next reconnect repairs. Config.MaxReconnects and
// Config.ReconnectTimeout bound the patience; when they are exhausted the
// endpoint fails permanently: mailboxes close (blocked receivers panic
// with the cause), senders unblock, and Close reports the first error so
// the run's exit status reflects the failure instead of hanging.
//
// Delivery. A reader goroutine per connection drains frames into per-source
// mailboxes (shared with the local backend), which yields the substrate
// contract: sends never block indefinitely (the remote reader always
// drains, queues are unbounded, acknowledgements flow regardless of the
// application's receive pattern), per-pair same-tag messages are
// non-overtaking (sequence numbers make this hold across reconnects), and
// receives are tag-selective. Self-sends short-circuit through an
// in-memory mailbox without touching a socket — consistent with the
// accounting rule that no bytes leave the PE.
package tcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dss/internal/trace"
	"dss/internal/transport"
)

const (
	handshakeMagic    = 0x31535344 // "DSS1", little-endian
	protocolVersion   = 2
	handshakeLen      = 22 // magic u32 | version u8 | flags u8 | rank u32 | p u32 | delivered u64
	headerLen         = 28 // seq u64 | ack u64 | tag u64 | payload length u32
	maxPayload        = 1<<31 - 1
	defaultRendezvous = 30 * time.Second

	// flagReconnect marks a handshake that re-establishes a previously
	// connected pair; the delivered field then selects the resend suffix.
	flagReconnect = 1 << 0

	// seqGoodbye marks a control frame announcing a deliberate staged
	// shutdown: the sender has flushed — everything it sent is
	// acknowledged, everything it delivered is acked back — and will
	// close the connection next. The receiver parks the pair instead of
	// treating the following EOF as a fault. A bare EOF without a
	// goodbye is NEVER trusted as a shutdown: a connection cut exactly at
	// a frame boundary is indistinguishable from one, and must take the
	// reconnect path. (Data frames count from 1 and can never reach this
	// value; seq 0 is the pure ack.)
	seqGoodbye = ^uint64(0)

	// The resend ring bounds the frames parked per direction awaiting
	// acknowledgement. A full ring blocks Send until acks drain it — never
	// a deadlock, because the peer's reader drains and acknowledges
	// independently of its application's receive pattern.
	maxRingFrames = 1024
	maxRingBytes  = 32 << 20

	defaultReconnectTimeout = 10 * time.Second
	defaultMaxReconnects    = 8

	// Dial retries back off exponentially between these bounds. The first
	// retries come fast (workers of one job usually start within
	// milliseconds of each other, and a refused connection simply means the
	// peer's listener is not up yet), but a peer that stays away — a slow
	// container pull, a host still booting — must not be hammered with
	// thousands of SYNs for the rest of the rendezvous window.
	dialBackoffMin = 2 * time.Millisecond
	dialBackoffMax = 250 * time.Millisecond
)

// Config tunes connection establishment and failure recovery.
type Config struct {
	// RendezvousTimeout bounds how long Connect waits for all peers to
	// appear (workers of an SPMD job may start seconds apart). Zero means
	// 30 s.
	RendezvousTimeout time.Duration
	// ReconnectTimeout bounds each reconnect attempt after an established
	// connection dies: the redialing side retries with the dial backoff
	// until this deadline, the accepting side waits this long for the
	// replacement to arrive. Zero means 10 s.
	ReconnectTimeout time.Duration
	// MaxReconnects bounds how many times each pairwise connection may be
	// re-established before the endpoint fails permanently. Zero means the
	// default (8); negative disables reconnection entirely — the first
	// drop of an established connection fails the endpoint, the pre-v2
	// behavior.
	MaxReconnects int
}

func (cfg Config) reconnectTimeout() time.Duration {
	if cfg.ReconnectTimeout == 0 {
		return defaultReconnectTimeout
	}
	return cfg.ReconnectTimeout
}

func (cfg Config) maxReconnects() int {
	switch {
	case cfg.MaxReconnects == 0:
		return defaultMaxReconnects
	case cfg.MaxReconnects < 0:
		return 0
	}
	return cfg.MaxReconnects
}

// Endpoint is one PE's endpoint of a TCP fabric. It implements
// transport.Transport. Send/Recv are confined to the PE's goroutine like
// every transport; the internal reader, acker and reconnect goroutines are
// managed by the endpoint itself.
type Endpoint struct {
	rank  int
	p     int
	cfg   Config
	conns []*peerConn          // conns[r], nil at own rank
	boxes []*transport.Mailbox // boxes[src]
	pool  transport.Pool
	ln    net.Listener  // kept open after rendezvous for reconnects
	done  chan struct{} // closed on teardown; unblocks internal goroutines

	rendezvoused atomic.Bool
	closing      atomic.Bool
	spawnMu      sync.Mutex // serializes goroutine spawn against teardown
	workers      sync.WaitGroup
	tdOnce       sync.Once
	closeOnce    sync.Once

	errMu    sync.Mutex
	firstErr error

	// Measured failure-recovery counters, exposed through NetStats. They
	// are observations like wall clock, never model inputs: the
	// deterministic statistics are bit-identical with or without drops.
	reconnects   atomic.Int64
	resentFrames atomic.Int64
	resentBytes  atomic.Int64

	tr atomic.Pointer[trace.Recorder] // timeline recorder; nil = off
}

// peerConn is one persistent pairwise connection: the live socket (nil
// while disconnected), the outgoing resend ring, and the incoming
// delivered sequence. It survives reconnects — only c/w/gen change.
//
// Nothing ever blocks on the socket while holding mu: all socket writes —
// data, standalone acks, reconnect replay — happen in the pair's single
// writer goroutine (writerLoop) with the lock released. Holding mu across
// a blocking write deadlocks head-to-head exchanges: each side's writer
// would stall on a full send buffer while its reader needs the same lock
// to fold the peer's acks (which is what would drain the peer's send
// buffer).
type peerConn struct {
	e      *Endpoint
	peer   int
	dialer bool   // this side redials after a drop (peer < own rank)
	addr   string // peer's listen address, for redials

	mu         sync.Mutex
	cond       *sync.Cond // wakes senders: ring drained, or pair failed
	condW      *sync.Cond // wakes the writer: work pending, conn adopted, or failed
	c          net.Conn   // nil while disconnected
	w          *bufio.Writer
	gen        int  // bumped per adopted connection; stale errors are ignored
	connecting bool // a reconnect attempt is under way
	failed      bool
	flushing    bool // Close's flush phase is waiting for this pair to quiesce
	goodbyeSent bool // our goodbye control frame made it onto the wire
	departed    bool // peer announced a clean staged shutdown (goodbye received)
	budget     int           // remaining reconnects
	waitRedial chan struct{} // closed by adopt; arms the acceptor-side timeout

	// Outgoing direction (guarded by mu). The ring holds every frame from
	// ackedSeq+1 to nextSeq-1 in order; sendCursor is the next frame the
	// writer will put on the current connection (adopt rewinds it to
	// ackedSeq+1, which is what replays the unacknowledged suffix).
	nextSeq    uint64 // sequence of the next data frame (first frame = 1)
	ackedSeq   uint64 // highest sequence cumulatively acked by the peer
	sendCursor uint64 // next sequence the writer puts on the wire
	ring       []ringFrame
	ringBytes  int
	ackedOut   uint64 // delivered value most recently written to the peer

	// inFlightSeq marks the frame the writer is currently putting on the
	// wire with mu released. If an ack trims that frame meanwhile, its
	// buffer is parked in orphan instead of returned to the pool — the
	// writer is still reading it — and the writer releases it afterwards.
	inFlightSeq uint64
	orphan      []byte

	// Incoming direction. delivered is written by the reader goroutine and
	// read by the writer for ack piggybacking and by reconnect handshakes.
	delivered atomic.Uint64

	drop atomic.Pointer[dropTrap] // armed fault injection (transport.ConnDropper)
}

type ringFrame struct {
	seq  uint64
	tag  int
	data []byte
}

// dropTrap is an armed ConnDropper fault: the connection is cut after the
// next remaining bytes written to this peer.
type dropTrap struct {
	remaining int64
}

func newPeerConn(e *Endpoint, peer int, addr string) *peerConn {
	pc := &peerConn{
		e:      e,
		peer:   peer,
		dialer: peer < e.rank,
		addr:   addr,
		budget: e.cfg.maxReconnects(),
		// Data frames are numbered from 1; sequence 0 is the pure-ack frame.
		nextSeq:    1,
		sendCursor: 1,
	}
	pc.cond = sync.NewCond(&pc.mu)
	pc.condW = sync.NewCond(&pc.mu)
	return pc
}

// trapWriter sits between the framed bufio.Writer and the socket and
// fires an armed dropTrap: it truncates the write after the trap's
// remaining bytes, closes the connection, and returns an error — the same
// observable failure as a network cut mid-frame. Writes are serialized by
// the pair's single writer goroutine, so the trap needs no further
// locking beyond the atomic pointer.
type trapWriter struct {
	pc *peerConn
	c  net.Conn
}

func (tw trapWriter) Write(p []byte) (int, error) {
	if t := tw.pc.drop.Load(); t != nil {
		if int64(len(p)) >= t.remaining {
			tw.pc.drop.Store(nil)
			n := int(t.remaining)
			if n > 0 {
				tw.c.Write(p[:n])
			}
			tw.c.Close()
			return n, errors.New("transport/tcp: injected connection drop")
		}
		t.remaining -= int64(len(p))
	}
	return tw.c.Write(p)
}

// Connect joins the fabric described by peers as the given rank: it binds a
// listener on peers[rank], establishes the pairwise mesh, and returns when
// every connection is up. peers must be identical (including order) on
// every rank; its length is the fabric size. This is the SPMD entry point —
// one call per OS process.
func Connect(rank int, peers []string) (*Endpoint, error) {
	return ConnectConfig(rank, peers, Config{})
}

// ConnectConfig is Connect with explicit tuning.
func ConnectConfig(rank int, peers []string, cfg Config) (*Endpoint, error) {
	if len(peers) == 0 {
		return nil, errors.New("transport/tcp: empty peer table")
	}
	if rank < 0 || rank >= len(peers) {
		return nil, fmt.Errorf("transport/tcp: rank %d out of range (P=%d)", rank, len(peers))
	}
	ln, err := net.Listen("tcp", peers[rank])
	if err != nil {
		return nil, fmt.Errorf("transport/tcp: rank %d: bind %s: %w", rank, peers[rank], err)
	}
	return connect(ln, rank, peers, cfg)
}

// identified is one accepted connection mapped to its peer rank.
type identified struct {
	rank int
	conn net.Conn
}

// connect establishes the mesh over an already-bound listener.
func connect(ln net.Listener, rank int, peers []string, cfg Config) (*Endpoint, error) {
	p := len(peers)
	timeout := cfg.RendezvousTimeout
	if timeout == 0 {
		timeout = defaultRendezvous
	}
	deadline := time.Now().Add(timeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	e := &Endpoint{
		rank:  rank,
		p:     p,
		cfg:   cfg,
		conns: make([]*peerConn, p),
		boxes: make([]*transport.Mailbox, p),
		ln:    ln,
		done:  make(chan struct{}),
	}
	for i := range e.boxes {
		e.boxes[i] = transport.NewMailbox()
		if i != rank {
			e.conns[i] = newPeerConn(e, i, peers[i])
		}
	}

	// The accept loop runs for the endpoint's whole lifetime: during the
	// rendezvous it funnels identified initial handshakes to the collector
	// below; afterwards it adopts reconnect handshakes.
	idCh := make(chan identified)
	acceptErrCh := make(chan error, 1)
	e.workers.Add(1)
	go e.acceptLoop(ln, deadline, idCh, acceptErrCh)

	var acceptErr error
	accepted := make(chan struct{})     // closed when the accept side is done
	acceptFailed := make(chan struct{}) // closed only on accept failure; aborts dial retries
	go func() {
		defer close(accepted)
		acceptErr = e.collectPeers(idCh, acceptErrCh)
		if acceptErr != nil {
			close(acceptFailed)
		}
	}()
	dialErr := e.dialPeers(peers, deadline, acceptFailed)
	if dialErr != nil {
		ln.Close() // abort a blocked Accept
	}
	<-accepted
	if dialErr != nil || acceptErr != nil {
		e.Close()
		// Surface the root cause: whichever side failed first made the
		// other side fail by aborting it.
		if dialErr != nil && !errors.Is(dialErr, errRendezvousAborted) {
			return nil, dialErr
		}
		if acceptErr != nil {
			return nil, acceptErr
		}
		return nil, dialErr
	}
	e.rendezvoused.Store(true)
	// The listener outlives the rendezvous — it is where peers reconnect —
	// so the rendezvous deadline must come off it.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	for _, pc := range e.conns {
		if pc != nil {
			pc := pc
			e.spawn(pc.writerLoop)
		}
	}
	return e, nil
}

// spawn starts a worker goroutine tracked by the endpoint's WaitGroup,
// unless teardown has begun. The mutex serializes the closing check with
// the Add so Close's Wait cannot race a late spawn.
func (e *Endpoint) spawn(f func()) bool {
	e.spawnMu.Lock()
	defer e.spawnMu.Unlock()
	if e.closing.Load() {
		return false
	}
	e.workers.Add(1)
	go func() {
		defer e.workers.Done()
		f()
	}()
	return true
}

// acceptLoop accepts connections for the endpoint's lifetime. Handshakes
// run concurrently, one goroutine per accepted connection, so a stranger
// that connects and then stalls mid-handshake cannot delay the rendezvous
// or a reconnect: the loop keeps accepting while the stalled handshake
// waits out its deadline in the background.
func (e *Endpoint) acceptLoop(ln net.Listener, rendezvousDeadline time.Time, idCh chan<- identified, acceptErrCh chan<- error) {
	defer e.workers.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !e.rendezvoused.Load() && !e.closing.Load() {
				select {
				case acceptErrCh <- err:
				default:
				}
			}
			return
		}
		go e.handleAccept(conn, rendezvousDeadline, idCh)
	}
}

// handleAccept performs the acceptor side of one handshake: read the
// dialer's hello, reply with ours, then either funnel the identified
// connection to the rendezvous collector or adopt it as a reconnect.
// Strangers and stale probes are dropped silently without consuming a peer
// slot.
func (e *Endpoint) handleAccept(conn net.Conn, rendezvousDeadline time.Time, idCh chan<- identified) {
	deadline := rendezvousDeadline
	if e.rendezvoused.Load() {
		deadline = time.Now().Add(e.cfg.reconnectTimeout())
	}
	conn.SetDeadline(deadline)
	h, err := readHello(conn, e.p)
	if err != nil || h.rank <= e.rank || h.rank >= e.p {
		conn.Close()
		return
	}
	// The reply carries OUR delivered sequence for that peer, which on a
	// reconnect tells the dialer which ring suffix to resend. A
	// misconfigured dialer (wrong fabric size, wrong protocol) also sees
	// the mismatch in this reply and fails fast on its side.
	if err := writeHello(conn, e.rank, e.p, h.flags&flagReconnect, e.conns[h.rank].delivered.Load()); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	if h.flags&flagReconnect != 0 {
		if !e.rendezvoused.Load() {
			conn.Close() // reconnect before the mesh exists: stale probe
			return
		}
		e.conns[h.rank].adopt(conn, h.delivered, true)
		return
	}
	if e.rendezvoused.Load() {
		conn.Close() // fresh initial handshake after the rendezvous: stranger
		return
	}
	select {
	case idCh <- identified{rank: h.rank, conn: conn}:
	case <-e.done:
		conn.Close()
	}
}

// collectPeers waits for one identified initial connection from every
// higher rank, funneled in by the accept loop.
func (e *Endpoint) collectPeers(idCh <-chan identified, acceptErrCh <-chan error) error {
	remaining := e.p - 1 - e.rank
	got := make([]bool, e.p)
	for remaining > 0 {
		select {
		case id := <-idCh:
			if got[id.rank] {
				id.conn.Close()
				return fmt.Errorf("transport/tcp: rank %d: duplicate handshake from rank %d", e.rank, id.rank)
			}
			got[id.rank] = true
			e.conns[id.rank].adopt(id.conn, 0, false)
			remaining--
		case err := <-acceptErrCh:
			return fmt.Errorf("transport/tcp: rank %d: accept: %w", e.rank, err)
		}
	}
	return nil
}

// dialPeers connects to every lower rank, retrying until the peer's
// listener is reachable, the rendezvous deadline expires, or the accept
// side fails (abort closes).
func (e *Endpoint) dialPeers(peers []string, deadline time.Time, abort <-chan struct{}) error {
	for r := 0; r < e.rank; r++ {
		conn, peerDelivered, err := e.dialPeer(r, peers[r], deadline, abort, 0)
		if err != nil {
			return err
		}
		e.conns[r].adopt(conn, peerDelivered, false)
	}
	return nil
}

// dialPeer dials one lower-ranked peer, treating transient connect
// failures (connection refused, host momentarily unreachable, a listener
// backlog overflow) as "not up yet" and retrying with bounded exponential
// backoff until the deadline. Only handshake mismatches that redialing
// cannot cure (errFatalHandshake) and an abort from the accept side fail
// immediately. flags selects the initial vs reconnect handshake; the
// peer's delivered sequence from its reply hello is returned alongside the
// connection.
func (e *Endpoint) dialPeer(r int, addr string, deadline time.Time, abort <-chan struct{}, flags byte) (net.Conn, uint64, error) {
	var lastErr error
	backoff := dialBackoffMin
	var delivered uint64
	if flags&flagReconnect != 0 {
		delivered = e.conns[r].delivered.Load()
	}
	for time.Now().Before(deadline) {
		d := net.Dialer{Deadline: deadline}
		conn, err := d.Dial("tcp", addr)
		if err == nil {
			conn.SetDeadline(deadline)
			err = writeHello(conn, e.rank, e.p, flags, delivered)
			var h hello
			if err == nil {
				h, err = readHello(conn, e.p)
			}
			if err == nil {
				if h.rank != r {
					conn.Close()
					return nil, 0, fmt.Errorf("transport/tcp: rank %d: peer at %s identifies as rank %d, want %d",
						e.rank, addr, h.rank, r)
				}
				conn.SetDeadline(time.Time{})
				return conn, h.delivered, nil
			}
			conn.Close()
			// Redialing cannot cure a protocol or peer-table mismatch.
			if errors.Is(err, errFatalHandshake) {
				return nil, 0, fmt.Errorf("transport/tcp: rank %d: handshake with rank %d at %s: %w",
					e.rank, r, addr, err)
			}
			// A connection that handshook partially (e.g. the peer died
			// mid-hello) is worth a quick retry: reset the backoff, the
			// peer was demonstrably reachable a moment ago.
			backoff = dialBackoffMin
		}
		lastErr = err
		select {
		case <-abort:
			return nil, 0, fmt.Errorf("transport/tcp: rank %d: %w", e.rank, errRendezvousAborted)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
	return nil, 0, fmt.Errorf("transport/tcp: rank %d: rendezvous with rank %d at %s timed out: %w",
		e.rank, r, addr, lastErr)
}

// hello is one parsed handshake message.
type hello struct {
	rank      int
	flags     byte
	delivered uint64
}

func writeHello(c net.Conn, rank, p int, flags byte, delivered uint64) error {
	var b [handshakeLen]byte
	binary.LittleEndian.PutUint32(b[0:4], handshakeMagic)
	b[4] = protocolVersion
	b[5] = flags
	binary.LittleEndian.PutUint32(b[6:10], uint32(rank))
	binary.LittleEndian.PutUint32(b[10:14], uint32(p))
	binary.LittleEndian.PutUint64(b[14:22], delivered)
	_, err := c.Write(b[:])
	return err
}

// errRendezvousAborted marks a dial loop stopped because the accept side
// failed first; the accept error is the root cause then.
var errRendezvousAborted = errors.New("rendezvous aborted")

// errFatalHandshake marks handshake failures that redialing cannot cure
// (protocol or configuration mismatches, as opposed to a peer that is not
// up yet); the dial retry loop fails fast on them.
var errFatalHandshake = errors.New("fatal handshake mismatch")

func readHello(c net.Conn, wantP int) (hello, error) {
	var b [handshakeLen]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return hello{}, err
	}
	if binary.LittleEndian.Uint32(b[0:4]) != handshakeMagic {
		return hello{}, fmt.Errorf("%w: bad magic", errFatalHandshake)
	}
	if b[4] != protocolVersion {
		return hello{}, fmt.Errorf("%w: protocol version %d, want %d", errFatalHandshake, b[4], protocolVersion)
	}
	if p := int(binary.LittleEndian.Uint32(b[10:14])); p != wantP {
		return hello{}, fmt.Errorf("%w: peer believes P=%d, want %d", errFatalHandshake, p, wantP)
	}
	return hello{
		rank:      int(binary.LittleEndian.Uint32(b[6:10])),
		flags:     b[5],
		delivered: binary.LittleEndian.Uint64(b[14:22]),
	}, nil
}

// adopt installs a (re)established connection on the pair: trim the resend
// ring by the peer's delivered sequence, rewind the writer's cursor so it
// replays the rest in order, wake blocked senders and the writer, and
// start a fresh reader. Both sides of a reconnect run adopt — each
// direction replays its own unacknowledged suffix.
func (pc *peerConn) adopt(conn net.Conn, peerDelivered uint64, isReconnect bool) {
	e := pc.e
	pc.mu.Lock()
	if pc.failed || e.closing.Load() {
		pc.mu.Unlock()
		conn.Close()
		return
	}
	if pc.c != nil {
		// A replacement raced the old connection's death detection on this
		// side; the peer has already abandoned the old one, so trust the
		// newcomer and let the old reader's error fall into the stale-gen
		// path below.
		pc.c.Close()
	}
	pc.c = conn
	pc.w = bufio.NewWriterSize(trapWriter{pc: pc, c: conn}, 64<<10)
	pc.gen++
	gen := pc.gen
	pc.connecting = false
	if pc.waitRedial != nil {
		close(pc.waitRedial)
		pc.waitRedial = nil
	}
	pc.trimRingLocked(peerDelivered)
	// Everything still in the ring is unacknowledged: replay it all on the
	// fresh connection (the receiver discards what did survive the old
	// one). The suffix length IS the resend volume — counted here, whether
	// or not an individual frame ever fully made it onto the old socket.
	pc.sendCursor = pc.ackedSeq + 1
	resent := int64(len(pc.ring))
	resentBytes := int64(pc.ringBytes)
	pc.cond.Broadcast()
	pc.condW.Broadcast()
	pc.mu.Unlock()
	if isReconnect {
		e.reconnects.Add(1)
		e.resentFrames.Add(resent)
		e.resentBytes.Add(resentBytes)
		e.tr.Load().Instant(trace.TrackControl, "net-reconnect", int64(pc.peer), resent)
	}
	e.spawn(func() { e.readLoop(pc.peer, pc, conn, gen) })
}

// trimRingLocked drops ring frames the peer has cumulatively acknowledged
// and wakes senders blocked on a full ring. Acks beyond what was ever sent
// (a corrupt header) are clamped — robustness, not trust. A frame the
// writer is putting on the wire right now is parked for the writer to
// release instead of returned to the pool, so the pool can never hand its
// bytes to a new owner mid-write.
func (pc *peerConn) trimRingLocked(ack uint64) {
	if ack >= pc.nextSeq {
		ack = pc.nextSeq - 1
	}
	if ack <= pc.ackedSeq {
		return
	}
	drop := int(ack - pc.ackedSeq)
	if drop > len(pc.ring) {
		drop = len(pc.ring)
	}
	for i := 0; i < drop; i++ {
		f := pc.ring[i]
		pc.ringBytes -= len(f.data)
		if f.seq == pc.inFlightSeq {
			pc.orphan = f.data
		} else {
			pc.e.pool.Put(f.data)
		}
		pc.ring[i].data = nil
	}
	pc.ring = append(pc.ring[:0], pc.ring[drop:]...)
	pc.ackedSeq = ack
	if pc.sendCursor <= ack {
		pc.sendCursor = ack + 1
	}
	pc.cond.Broadcast()
	if pc.flushing {
		// The ack that empties the ring is what makes the goodbye due:
		// wake the writer so the flush phase can finish.
		pc.condW.Signal()
	}
}

// writeFrame puts one frame — seq 0 is a pure ack — on the wire. Called
// only from the pair's writer goroutine, with mu released: a blocking
// socket write must never hold the pair's lock.
func writeFrame(w *bufio.Writer, seq, ack uint64, tag int, data []byte) error {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	binary.LittleEndian.PutUint64(hdr[8:16], ack)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(int64(tag)))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(len(data)))
	_, err := w.Write(hdr[:])
	if err == nil && len(data) > 0 {
		_, err = w.Write(data)
	}
	if err == nil {
		err = w.Flush()
	}
	return err
}

// connError reports a dead connection from a goroutine that does not hold
// the pair's lock.
func (pc *peerConn) connError(gen int, err error) {
	pc.mu.Lock()
	pc.connErrorLocked(gen, err)
	pc.mu.Unlock()
}

// connErrorLocked handles a connection failure: ignore it if it concerns a
// superseded connection or a reconnect is already under way, otherwise tear
// the socket down and start recovery — the original dialer redials, the
// acceptor arms a timeout and waits for the peer's redial. An exhausted
// reconnect budget fails the endpoint permanently.
func (pc *peerConn) connErrorLocked(gen int, err error) {
	e := pc.e
	if pc.failed || e.closing.Load() || gen != pc.gen {
		return
	}
	if pc.c != nil {
		pc.c.Close()
		pc.c = nil
		pc.w = nil
	}
	if pc.connecting {
		return
	}
	// The peer announced a staged shutdown with a goodbye frame before
	// this connection died: the death IS the shutdown, not a fault. Park
	// the pair quietly — no reconnect, no budget spent, no error. An EOF
	// without a preceding goodbye takes the recovery path like any other
	// failure (a cut exactly at a frame boundary looks identical).
	if pc.departed {
		return
	}
	e.tr.Load().Instant(trace.TrackControl, "net-drop", int64(pc.peer), 0)
	if pc.budget <= 0 {
		pc.failLocked(fmt.Errorf("transport/tcp: rank %d: connection to rank %d lost and reconnect budget exhausted: %w",
			e.rank, pc.peer, err))
		return
	}
	pc.budget--
	pc.connecting = true
	if pc.dialer {
		e.spawn(pc.redial)
	} else {
		waitCh := make(chan struct{})
		pc.waitRedial = waitCh
		e.spawn(func() { pc.awaitRedial(waitCh) })
	}
}

// failLocked marks the pair dead, records the endpoint's first error, and
// schedules the endpoint-wide teardown (asynchronously — teardown takes
// every pair's lock, including the one held here).
func (pc *peerConn) failLocked(err error) {
	pc.failed = true
	pc.cond.Broadcast()
	pc.condW.Broadcast()
	e := pc.e
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
	go e.teardown()
}

// redial re-establishes the connection this side originally dialed,
// reusing the rendezvous dial backoff under the reconnect timeout.
func (pc *peerConn) redial() {
	e := pc.e
	deadline := time.Now().Add(e.cfg.reconnectTimeout())
	conn, peerDelivered, err := e.dialPeer(pc.peer, pc.addr, deadline, e.done, flagReconnect)
	if err != nil {
		if e.closing.Load() {
			return
		}
		pc.mu.Lock()
		pc.failLocked(fmt.Errorf("transport/tcp: rank %d: reconnect to rank %d failed: %w", e.rank, pc.peer, err))
		pc.mu.Unlock()
		return
	}
	pc.adopt(conn, peerDelivered, true)
}

// awaitRedial is the acceptor side of a reconnect: the peer redials us
// (the accept loop adopts it and closes waitCh); if it never arrives
// within the reconnect timeout, the endpoint fails.
func (pc *peerConn) awaitRedial(waitCh <-chan struct{}) {
	e := pc.e
	select {
	case <-waitCh:
	case <-e.done:
	case <-time.After(e.cfg.reconnectTimeout()):
		pc.mu.Lock()
		if !pc.failed && pc.connecting && !e.closing.Load() {
			pc.failLocked(fmt.Errorf("transport/tcp: rank %d: rank %d did not reconnect within %v",
				e.rank, pc.peer, e.cfg.reconnectTimeout()))
		}
		pc.mu.Unlock()
	}
}

// writerLoop is the pair's single socket writer: it drains the resend
// ring from sendCursor in sequence order and emits standalone cumulative
// acks when the incoming direction has delivered frames the outgoing
// direction has not acknowledged yet (data frames piggyback the ack for
// free). The socket write itself runs with mu released; a frame on the
// wire is pinned via inFlightSeq so a concurrent ack cannot recycle its
// buffer. Send never touches the socket — it appends to the ring and
// wakes this loop — so a PE can never wedge inside a blocking write while
// its reader needs the pair's lock.
// goodbyeDueLocked reports that the writer should announce the staged
// shutdown: Close is flushing, both directions are fully quiescent, and
// the goodbye has not been written on a surviving connection yet.
func (pc *peerConn) goodbyeDueLocked() bool {
	return pc.flushing && !pc.goodbyeSent && !pc.departed &&
		pc.sendCursor == pc.nextSeq && pc.ackedSeq == pc.nextSeq-1 &&
		pc.delivered.Load() == pc.ackedOut
}

func (pc *peerConn) writerLoop() {
	e := pc.e
	for {
		pc.mu.Lock()
		for {
			if pc.failed || e.closing.Load() {
				pc.mu.Unlock()
				return
			}
			if pc.c != nil && !pc.connecting &&
				(pc.sendCursor < pc.nextSeq || pc.delivered.Load() != pc.ackedOut ||
					pc.goodbyeDueLocked()) {
				break
			}
			pc.condW.Wait()
		}
		gen := pc.gen
		w := pc.w
		ack := pc.delivered.Load()
		var seq uint64
		var tag int
		var data []byte
		if pc.sendCursor < pc.nextSeq {
			f := pc.ring[int(pc.sendCursor-pc.ackedSeq-1)]
			seq, tag, data = f.seq, f.tag, f.data
			pc.inFlightSeq = seq
		} else if pc.goodbyeDueLocked() {
			// Both directions are quiescent and Close is flushing: announce
			// the staged shutdown. The goodbye is regenerated rather than
			// ringed — if the connection dies before it lands, the replay
			// after reconnect re-arms it.
			seq = seqGoodbye
		}
		pc.mu.Unlock()

		err := writeFrame(w, seq, ack, tag, data)

		pc.mu.Lock()
		if pc.inFlightSeq != 0 {
			pc.inFlightSeq = 0
		}
		if pc.orphan != nil {
			e.pool.Put(pc.orphan)
			pc.orphan = nil
		}
		if gen == pc.gen {
			if err != nil {
				pc.connErrorLocked(gen, err)
			} else {
				if ack > pc.ackedOut {
					pc.ackedOut = ack
				}
				if seq == seqGoodbye {
					pc.goodbyeSent = true
				} else if seq != 0 && seq+1 > pc.sendCursor {
					pc.sendCursor = seq + 1
				}
				if pc.flushing {
					// Close's flush phase waits on cond for ackedOut to
					// catch up with delivered and for the goodbye to land;
					// ack progress (ackedSeq) broadcasts via
					// trimRingLocked already.
					pc.cond.Broadcast()
				}
			}
		}
		// On a stale generation the write raced a reconnect: adopt already
		// rewound the cursor, and whatever this write put on the old socket
		// is either lost or discarded as a duplicate by the receiver.
		pc.mu.Unlock()
	}
}

// readLoop drains frames from one adopted connection into the peer's
// mailbox until the connection dies, then reports the error for recovery.
// Unlike protocol v1 it never closes the mailbox itself: transient
// connection loss must not fail receivers, and permanent failure closes
// every mailbox through the endpoint-wide teardown with the cause
// recorded.
func (e *Endpoint) readLoop(src int, pc *peerConn, c net.Conn, gen int) {
	err := e.readFrames(src, pc, bufio.NewReaderSize(c, 64<<10))
	pc.connError(gen, err)
}

// readFrames validates and delivers frames from one connection's byte
// stream until it errors. Every malformed header — oversized length,
// payload on an ack, a sequence gap — is a connection error returned to
// the caller, never a panic: the fuzz suite drives this function with
// arbitrary bytes.
func (e *Endpoint) readFrames(src int, pc *peerConn, br *bufio.Reader) error {
	var hdr [headerLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return err
		}
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		ack := binary.LittleEndian.Uint64(hdr[8:16])
		tag := int(int64(binary.LittleEndian.Uint64(hdr[16:24])))
		n := int64(binary.LittleEndian.Uint32(hdr[24:28]))
		if n > maxPayload {
			return fmt.Errorf("frame length %d exceeds limit", n)
		}
		pc.ackReceived(ack)
		if seq == seqGoodbye {
			if n != 0 {
				return fmt.Errorf("goodbye frame carries %d payload bytes", n)
			}
			// The peer has flushed and is about to close the connection
			// for good. Park the pair so the imminent EOF is not treated
			// as a fault, and wake anything blocked on it.
			pc.mu.Lock()
			pc.departed = true
			pc.cond.Broadcast()
			pc.condW.Broadcast()
			pc.mu.Unlock()
			continue
		}
		if seq == 0 {
			if n != 0 {
				return fmt.Errorf("ack frame carries %d payload bytes", n)
			}
			continue
		}
		delivered := pc.delivered.Load()
		if seq <= delivered {
			// A replayed duplicate: the resend suffix can overlap what
			// already arrived when the ack for it was lost with the old
			// connection. Consume and drop — delivery stays idempotent.
			if _, err := io.CopyN(io.Discard, br, n); err != nil {
				return err
			}
			continue
		}
		if seq != delivered+1 {
			return fmt.Errorf("sequence gap: frame %d after delivered %d", seq, delivered)
		}
		// Read the payload. For large frames the first chunk is read
		// before the full buffer is allocated, so a corrupt header
		// claiming gigabytes costs nothing when the stream cannot back it
		// up.
		buf, err := e.readPayload(br, int(n))
		if err != nil {
			return err
		}
		e.boxes[src].Push(tag, buf)
		pc.delivered.Store(seq)
		// Wake the writer so the delivery is acknowledged even when no
		// reverse-direction data frame is around to piggyback on; the
		// writer coalesces bursts into one cumulative ack.
		pc.noteDelivered()
	}
}

// noteDelivered wakes the pair's writer to acknowledge newly delivered
// frames. It takes the lock only momentarily — no one holds mu across a
// blocking operation — so the reader is never stalled by it.
func (pc *peerConn) noteDelivered() {
	pc.mu.Lock()
	pc.condW.Signal()
	pc.mu.Unlock()
}

// readPayload reads one payload of n bytes into a pooled buffer,
// probing the first 64 KiB before committing to a large allocation.
func (e *Endpoint) readPayload(br *bufio.Reader, n int) ([]byte, error) {
	const probe = 64 << 10
	if n <= probe {
		buf := e.pool.Get(n)
		if _, err := io.ReadFull(br, buf); err != nil {
			e.pool.Put(buf)
			return nil, err
		}
		return buf, nil
	}
	head := e.pool.Get(probe)
	if _, err := io.ReadFull(br, head); err != nil {
		e.pool.Put(head)
		return nil, err
	}
	buf := e.pool.Get(n)
	copy(buf, head)
	e.pool.Put(head)
	if _, err := io.ReadFull(br, buf[probe:]); err != nil {
		e.pool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// ackReceived folds a cumulative ack from any incoming frame into the
// outgoing ring.
func (pc *peerConn) ackReceived(ack uint64) {
	pc.mu.Lock()
	pc.trimRingLocked(ack)
	pc.mu.Unlock()
}

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// P returns the fabric size.
func (e *Endpoint) P() int { return e.p }

// BindTrace installs a timeline recorder: connection drops and reconnects
// appear as net-drop / net-reconnect instants on the control track. Bound
// by the comm layer (through the decorators); nil keeps it off. The
// recorder is concurrency-safe, so reader and reconnect goroutines record
// directly.
func (e *Endpoint) BindTrace(tr *trace.Recorder) { e.tr.Store(tr) }

// NetStats reports the endpoint's failure-recovery counters: connections
// re-established, and frames/bytes replayed from the resend ring. They are
// measurements (like wall clock), not model inputs — resent frames are
// never re-billed by the accounting above.
func (e *Endpoint) NetStats() (reconnects, resentFrames, resentBytes int64) {
	return e.reconnects.Load(), e.resentFrames.Load(), e.resentBytes.Load()
}

// DropConn implements transport.ConnDropper: it arms a one-shot trap that
// truncates the next write to peer after afterBytes bytes and cuts the
// connection — fault injection for the chaos decorator and the tests.
func (e *Endpoint) DropConn(peer int, afterBytes int) bool {
	if peer < 0 || peer >= e.p || peer == e.rank {
		return false
	}
	e.conns[peer].drop.Store(&dropTrap{remaining: int64(afterBytes)})
	return true
}

// lastErr describes the endpoint's recorded failure for panic messages.
func (e *Endpoint) lastErr() string {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.firstErr != nil {
		return e.firstErr.Error()
	}
	return "endpoint closed"
}

// Send appends one frame to dst's resend ring and writes it to the live
// connection (or short-circuits self-sends through the local mailbox). The
// payload is copied before Send returns, so the caller retains ownership
// of data; the copy stays in the ring until the peer acknowledges
// delivery. A full ring blocks until acks drain it; a disconnected pair
// parks the frame in the ring for the reconnect to replay.
func (e *Endpoint) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= e.p {
		panic(fmt.Sprintf("transport/tcp: send to invalid rank %d (P=%d)", dst, e.p))
	}
	if len(data) > maxPayload {
		panic(fmt.Sprintf("transport/tcp: payload of %d bytes exceeds frame limit", len(data)))
	}
	if dst == e.rank {
		cp := e.pool.Get(len(data))
		copy(cp, data)
		e.boxes[dst].Push(tag, cp)
		return
	}
	pc := e.conns[dst]
	pc.mu.Lock()
	for pc.ringFullLocked(len(data)) && !pc.failed && !pc.departed {
		pc.cond.Wait()
	}
	if pc.failed || pc.departed {
		departed := pc.departed && !pc.failed
		pc.mu.Unlock()
		if departed {
			// The peer completed a clean staged shutdown: everything both
			// sides sent was delivered and acknowledged before it closed.
			// A later send means the two sides disagree about the
			// communication schedule — fail loudly, not with a timeout.
			panic(fmt.Sprintf("transport/tcp: rank %d: send to %d: peer closed its endpoint after a clean shutdown", e.rank, dst))
		}
		panic(fmt.Sprintf("transport/tcp: rank %d: send to %d failed: %s", e.rank, dst, e.lastErr()))
	}
	cp := e.pool.Get(len(data))
	copy(cp, data)
	seq := pc.nextSeq
	pc.nextSeq++
	pc.ring = append(pc.ring, ringFrame{seq: seq, tag: tag, data: cp})
	pc.ringBytes += len(cp)
	pc.condW.Signal()
	pc.mu.Unlock()
}

// ringFullLocked reports whether admitting a frame of n payload bytes
// would overflow the resend ring. A lone oversized frame is admitted when
// the ring is empty, so frames near the byte bound cannot wedge.
func (pc *peerConn) ringFullLocked(n int) bool {
	if len(pc.ring) >= maxRingFrames {
		return true
	}
	return len(pc.ring) > 0 && pc.ringBytes+n > maxRingBytes
}

// Recv blocks until a message with the given tag arrives from src.
func (e *Endpoint) Recv(src, tag int) []byte {
	if src < 0 || src >= e.p {
		panic(fmt.Sprintf("transport/tcp: recv from invalid rank %d (P=%d)", src, e.p))
	}
	data, ok := e.boxes[src].Pop(tag)
	if !ok {
		panic(fmt.Sprintf("transport/tcp: rank %d: connection to rank %d lost while receiving tag %d: %s",
			e.rank, src, tag, e.lastErr()))
	}
	return data
}

// RecvAny blocks until a message with the given tag is available from any
// of the listed sources and returns it with its source rank and delivery
// time.
func (e *Endpoint) RecvAny(srcs []int, tag int) (int, []byte, time.Time) {
	if len(srcs) == 0 {
		panic("transport/tcp: RecvAny needs at least one source")
	}
	boxes := make([]*transport.Mailbox, len(srcs))
	for i, src := range srcs {
		if src < 0 || src >= e.p {
			panic(fmt.Sprintf("transport/tcp: recv from invalid rank %d (P=%d)", src, e.p))
		}
		boxes[i] = e.boxes[src]
	}
	i, data, arrived, ok := transport.PopAny(boxes, tag)
	if !ok {
		panic(fmt.Sprintf("transport/tcp: rank %d: connection to rank %d lost while receiving tag %d: %s",
			e.rank, srcs[i], tag, e.lastErr()))
	}
	return srcs[i], data, arrived
}

// TryRecvAny is the non-blocking variant of RecvAny (the transport.AnyPoller
// capability): it returns a queued matching frame if one is already
// receivable, ok=false otherwise, and never blocks.
func (e *Endpoint) TryRecvAny(srcs []int, tag int) (int, []byte, time.Time, bool) {
	if len(srcs) == 0 {
		panic("transport/tcp: TryRecvAny needs at least one source")
	}
	boxes := make([]*transport.Mailbox, len(srcs))
	for i, src := range srcs {
		if src < 0 || src >= e.p {
			panic(fmt.Sprintf("transport/tcp: recv from invalid rank %d (P=%d)", src, e.p))
		}
		boxes[i] = e.boxes[src]
	}
	i, data, arrived, ok := transport.TryPopAny(boxes, tag)
	if !ok {
		return -1, nil, time.Time{}, false
	}
	return srcs[i], data, arrived, true
}

// Release returns payload buffers to the endpoint's pool; future incoming
// frames reuse them.
func (e *Endpoint) Release(bufs ...[]byte) {
	for _, b := range bufs {
		e.pool.Put(b)
	}
}

// teardown closes the listener, every connection and every mailbox and
// unblocks all internal goroutines and blocked senders/receivers. Called
// by Close and — with the first error already recorded — when recovery is
// exhausted. Pending mailbox messages stay receivable.
func (e *Endpoint) teardown() {
	e.tdOnce.Do(func() {
		e.spawnMu.Lock()
		e.closing.Store(true)
		e.spawnMu.Unlock()
		close(e.done)
		if e.ln != nil {
			e.ln.Close()
		}
		for _, pc := range e.conns {
			if pc == nil {
				continue
			}
			pc.mu.Lock()
			if pc.c != nil {
				pc.c.Close()
				pc.c = nil
			}
			pc.failed = true
			pc.cond.Broadcast()
			pc.condW.Broadcast()
			pc.mu.Unlock()
		}
		for _, b := range e.boxes {
			b.Close()
		}
	})
}

// flush blocks until every pair's outgoing direction is quiescent — all
// data frames acknowledged by the peer and every delivered frame acked
// back — or the reconnect timeout expires. Close runs it before teardown:
// the writer is asynchronous (Send only posts to the resend ring), so a
// rank can reach Close with its final frames still unwritten or unacked —
// in an SPMD run a collective completes on the sender as soon as the
// frames are posted, while slower ranks still need them. The listener and
// all recovery machinery stay live throughout, so a connection that drops
// mid-flush is redialed and the unacked suffix replayed as usual.
func (e *Endpoint) flush() {
	if e.closing.Load() {
		return
	}
	deadline := time.Now().Add(e.cfg.reconnectTimeout())
	for _, pc := range e.conns {
		if pc != nil {
			pc.flushOut(deadline)
		}
	}
}

// flushOut is one pair's share of Close's flush phase. sync.Cond has no
// timed wait, so the deadline is enforced by a timer that broadcasts the
// condition the loop re-checks.
func (pc *peerConn) flushOut(deadline time.Time) {
	timer := time.AfterFunc(time.Until(deadline), func() {
		pc.mu.Lock()
		pc.cond.Broadcast()
		pc.mu.Unlock()
	})
	defer timer.Stop()
	e := pc.e
	pc.mu.Lock()
	pc.flushing = true
	pc.condW.Signal()
	for !pc.failed && !pc.departed && !pc.goodbyeSent {
		if pc.c == nil && !pc.connecting {
			// No live connection and no recovery under way — a pair that
			// never rendezvoused (recovery that gave up sets failed,
			// handled above). Nothing can make progress; don't burn the
			// deadline on it.
			break
		}
		if !time.Now().Before(deadline) {
			// Undelivered data at the deadline is a real loss — record it
			// so Close's return value surfaces it. Unreturned acks alone
			// are not: the peer merely keeps a fully-delivered suffix in
			// its ring a little longer.
			if pc.ackedSeq != pc.nextSeq-1 {
				err := fmt.Errorf("transport/tcp: rank %d: close: %d frames to rank %d still unacknowledged after %v",
					e.rank, pc.nextSeq-1-pc.ackedSeq, pc.peer, e.cfg.reconnectTimeout())
				e.errMu.Lock()
				if e.firstErr == nil {
					e.firstErr = err
				}
				e.errMu.Unlock()
			}
			break
		}
		pc.cond.Wait()
	}
	if pc.departed && pc.ackedSeq != pc.nextSeq-1 {
		// The peer finished its own staged shutdown while we still had
		// undelivered frames for it: the two sides disagree about the
		// communication schedule. Surface it through Close.
		err := fmt.Errorf("transport/tcp: rank %d: close: rank %d shut down with %d frames still undelivered",
			e.rank, pc.peer, pc.nextSeq-1-pc.ackedSeq)
		e.errMu.Lock()
		if e.firstErr == nil {
			e.firstErr = err
		}
		e.errMu.Unlock()
	}
	pc.mu.Unlock()
}

// Close flushes the outgoing direction of every pair (see flush), then
// tears down the listener and every connection, waits for the internal
// goroutines to drain, and closes the mailboxes. Idempotent. It returns
// the first connection-level failure the endpoint recorded — a reader
// that hit a decode error, an exhausted reconnect budget, an unflushable
// pair — so a run's exit status surfaces transport failures instead of
// dropping them.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		e.flush()
		e.teardown()
		e.workers.Wait()
	})
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// fabric holds all endpoints of an in-process TCP mesh.
type fabric struct {
	eps []*Endpoint
}

// NewLoopback builds a p-endpoint fabric on automatically chosen loopback
// ports — real sockets, one process. This is how Sort runs over TCP and how
// the conformance suite exercises the backend.
func NewLoopback(p int) (transport.Fabric, error) {
	return NewLoopbackConfig(p, Config{})
}

// NewLoopbackConfig is NewLoopback with explicit tuning.
func NewLoopbackConfig(p int, cfg Config) (transport.Fabric, error) {
	if p <= 0 {
		return nil, errors.New("transport/tcp: fabric needs at least one PE")
	}
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return NewFabricConfig(addrs, cfg)
}

// NewFabric binds one endpoint per address in the calling process and
// connects them into a full mesh. Addresses should carry an explicit host;
// port 0 picks an ephemeral port.
func NewFabric(addrs []string) (transport.Fabric, error) {
	return NewFabricConfig(addrs, Config{})
}

// NewFabricConfig is NewFabric with explicit tuning.
func NewFabricConfig(addrs []string, cfg Config) (transport.Fabric, error) {
	p := len(addrs)
	if p == 0 {
		return nil, errors.New("transport/tcp: empty address list")
	}
	lns := make([]net.Listener, p)
	bound := make([]string, p)
	for i, a := range addrs {
		ln, err := net.Listen("tcp", a)
		if err != nil {
			for _, prev := range lns[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("transport/tcp: bind %s: %w", a, err)
		}
		lns[i] = ln
		bound[i] = ln.Addr().String()
	}
	eps := make([]*Endpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = connect(lns[r], r, bound, cfg)
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, ep := range eps {
			if ep != nil {
				ep.Close()
			}
		}
		return nil, err
	}
	return &fabric{eps: eps}, nil
}

// P returns the number of endpoints.
func (f *fabric) P() int { return len(f.eps) }

// Endpoint returns the endpoint of the given rank.
func (f *fabric) Endpoint(rank int) transport.Transport { return f.eps[rank] }

// Close tears down every endpoint. It returns the first recorded
// connection-level failure, like Endpoint.Close.
func (f *fabric) Close() error {
	var err error
	for _, ep := range f.eps {
		err = errors.Join(err, ep.Close())
	}
	return err
}
