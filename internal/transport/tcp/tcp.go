// Package tcp implements the multi-process transport backend: PEs exchange
// length-prefixed framed messages over persistent pairwise TCP connections,
// so p workers on one or many hosts execute a genuinely distributed sort.
//
// Topology and rendezvous. Every PE knows the full peer table (rank →
// host:port, identical on all PEs) and binds a listener on its own entry.
// Exactly one connection exists per unordered PE pair: rank i dials every
// rank j < i (transient connect failures retry with bounded exponential
// backoff until the peer's listener is up, capped by the rendezvous
// timeout) and accepts from every rank j > i. A 13-byte
// handshake in each direction (magic, protocol version, rank, fabric size)
// maps connections to ranks and rejects strangers; accepted handshakes run
// concurrently under the rendezvous deadline, so one stalled stranger
// cannot delay the whole mesh.
//
// Wire format. One frame per message: an 8-byte little-endian tag, a 4-byte
// little-endian payload length, then the payload. The connection is the
// (src, dst) pair, so ranks never travel with data frames.
//
// Delivery. A reader goroutine per connection drains frames into per-source
// mailboxes (shared with the local backend), which yields the substrate
// contract: sends never block indefinitely (the remote reader always
// drains, queues are unbounded), per-pair same-tag messages are
// non-overtaking, and receives are tag-selective. Self-sends short-circuit
// through an in-memory mailbox without touching a socket — consistent with
// the accounting rule that no bytes leave the PE.
package tcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dss/internal/transport"
)

const (
	handshakeMagic    = 0x31535344 // "DSS1", little-endian
	protocolVersion   = 1
	handshakeLen      = 13 // magic u32 | version u8 | rank u32 | p u32
	headerLen         = 12 // tag u64 | payload length u32
	maxPayload        = 1<<31 - 1
	defaultRendezvous = 30 * time.Second

	// Dial retries back off exponentially between these bounds. The first
	// retries come fast (workers of one job usually start within
	// milliseconds of each other, and a refused connection simply means the
	// peer's listener is not up yet), but a peer that stays away — a slow
	// container pull, a host still booting — must not be hammered with
	// thousands of SYNs for the rest of the rendezvous window.
	dialBackoffMin = 2 * time.Millisecond
	dialBackoffMax = 250 * time.Millisecond
)

// Config tunes connection establishment.
type Config struct {
	// RendezvousTimeout bounds how long Connect waits for all peers to
	// appear (workers of an SPMD job may start seconds apart). Zero means
	// 30 s.
	RendezvousTimeout time.Duration
}

// Endpoint is one PE's endpoint of a TCP fabric. It implements
// transport.Transport. Send/Recv are confined to the PE's goroutine like
// every transport; the internal reader goroutines are managed by the
// endpoint itself.
type Endpoint struct {
	rank  int
	p     int
	conns []*peerConn          // conns[r], nil at own rank
	boxes []*transport.Mailbox // boxes[src]
	pool  transport.Pool

	readers   sync.WaitGroup
	closeOnce sync.Once
}

// peerConn is one persistent pairwise connection with its framed writer.
type peerConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

func newPeerConn(c net.Conn) *peerConn {
	return &peerConn{c: c, w: bufio.NewWriterSize(c, 64<<10)}
}

// Connect joins the fabric described by peers as the given rank: it binds a
// listener on peers[rank], establishes the pairwise mesh, and returns when
// every connection is up. peers must be identical (including order) on
// every rank; its length is the fabric size. This is the SPMD entry point —
// one call per OS process.
func Connect(rank int, peers []string) (*Endpoint, error) {
	return ConnectConfig(rank, peers, Config{})
}

// ConnectConfig is Connect with explicit tuning.
func ConnectConfig(rank int, peers []string, cfg Config) (*Endpoint, error) {
	if len(peers) == 0 {
		return nil, errors.New("transport/tcp: empty peer table")
	}
	if rank < 0 || rank >= len(peers) {
		return nil, fmt.Errorf("transport/tcp: rank %d out of range (P=%d)", rank, len(peers))
	}
	ln, err := net.Listen("tcp", peers[rank])
	if err != nil {
		return nil, fmt.Errorf("transport/tcp: rank %d: bind %s: %w", rank, peers[rank], err)
	}
	return connect(ln, rank, peers, cfg)
}

// connect establishes the mesh over an already-bound listener.
func connect(ln net.Listener, rank int, peers []string, cfg Config) (*Endpoint, error) {
	p := len(peers)
	timeout := cfg.RendezvousTimeout
	if timeout == 0 {
		timeout = defaultRendezvous
	}
	deadline := time.Now().Add(timeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	e := &Endpoint{
		rank:  rank,
		p:     p,
		conns: make([]*peerConn, p),
		boxes: make([]*transport.Mailbox, p),
	}
	for i := range e.boxes {
		e.boxes[i] = transport.NewMailbox()
	}

	var acceptErr error
	accepted := make(chan struct{})     // closed when the accept side is done
	acceptFailed := make(chan struct{}) // closed only on accept failure; aborts dial retries
	go func() {
		defer close(accepted)
		acceptErr = e.acceptPeers(ln, deadline)
		if acceptErr != nil {
			close(acceptFailed)
		}
	}()
	dialErr := e.dialPeers(peers, deadline, acceptFailed)
	if dialErr != nil {
		ln.Close() // abort a blocked Accept
	}
	<-accepted
	ln.Close()
	if dialErr != nil || acceptErr != nil {
		e.Close()
		// Surface the root cause: whichever side failed first made the
		// other side fail by aborting it.
		if dialErr != nil && !errors.Is(dialErr, errRendezvousAborted) {
			return nil, dialErr
		}
		if acceptErr != nil {
			return nil, acceptErr
		}
		return nil, dialErr
	}
	e.startReaders()
	return e, nil
}

// acceptPeers accepts and identifies one connection from every higher rank.
// Connections that fail the handshake (strangers, stale probes) are dropped
// without consuming a slot.
//
// Handshakes run concurrently, one goroutine per accepted connection, so a
// stranger that connects and then stalls mid-handshake cannot delay the
// whole rendezvous: the accept loop keeps accepting while the stalled
// handshake waits out its deadline in the background. Identified peers are
// funnelled back through a channel; only this function touches e.conns.
func (e *Endpoint) acceptPeers(ln net.Listener, deadline time.Time) error {
	remaining := e.p - 1 - e.rank
	if remaining == 0 {
		return nil
	}
	type identified struct {
		rank int
		conn net.Conn
	}
	peers := make(chan identified)
	acceptErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case acceptErr <- err:
				case <-done:
				}
				return
			}
			go func(conn net.Conn) {
				r, err := e.handshakeAccept(conn, deadline)
				if err != nil {
					conn.Close() // stranger or stale probe: drop silently
					return
				}
				select {
				case peers <- identified{rank: r, conn: conn}:
				case <-done:
					conn.Close() // rendezvous already over
				}
			}(conn)
		}
	}()
	for remaining > 0 {
		select {
		case id := <-peers:
			if id.rank <= e.rank || id.rank >= e.p || e.conns[id.rank] != nil {
				id.conn.Close()
				return fmt.Errorf("transport/tcp: rank %d: unexpected peer rank %d in handshake", e.rank, id.rank)
			}
			e.conns[id.rank] = newPeerConn(id.conn)
			remaining--
		case err := <-acceptErr:
			return fmt.Errorf("transport/tcp: rank %d: accept: %w", e.rank, err)
		}
	}
	return nil
}

// handshakeAccept performs the acceptor side of the handshake. Our hello
// goes out before the dialer's is validated: a misconfigured peer (wrong
// fabric size, wrong protocol) then sees the mismatch in OUR hello and
// fails fast instead of redialing a silently-dropping acceptor until its
// rendezvous deadline.
func (e *Endpoint) handshakeAccept(conn net.Conn, deadline time.Time) (int, error) {
	conn.SetDeadline(deadline)
	if err := writeHello(conn, e.rank, e.p); err != nil {
		return 0, err
	}
	r, err := readHello(conn, e.p)
	if err != nil {
		return 0, err
	}
	conn.SetDeadline(time.Time{})
	return r, nil
}

// dialPeers connects to every lower rank, retrying until the peer's
// listener is reachable, the rendezvous deadline expires, or the accept
// side fails (abort closes).
func (e *Endpoint) dialPeers(peers []string, deadline time.Time, abort <-chan struct{}) error {
	for r := 0; r < e.rank; r++ {
		conn, err := e.dialPeer(r, peers[r], deadline, abort)
		if err != nil {
			return err
		}
		e.conns[r] = newPeerConn(conn)
	}
	return nil
}

// dialPeer dials one lower-ranked peer, treating transient connect
// failures (connection refused, host momentarily unreachable, a listener
// backlog overflow) as "not up yet" and retrying with bounded exponential
// backoff until the rendezvous deadline. Only handshake mismatches that
// redialing cannot cure (errFatalHandshake) and an abort from the accept
// side fail immediately.
func (e *Endpoint) dialPeer(r int, addr string, deadline time.Time, abort <-chan struct{}) (net.Conn, error) {
	var lastErr error
	backoff := dialBackoffMin
	for time.Now().Before(deadline) {
		d := net.Dialer{Deadline: deadline}
		conn, err := d.Dial("tcp", addr)
		if err == nil {
			conn.SetDeadline(deadline)
			err = writeHello(conn, e.rank, e.p)
			var peerRank int
			if err == nil {
				peerRank, err = readHello(conn, e.p)
			}
			if err == nil {
				if peerRank != r {
					conn.Close()
					return nil, fmt.Errorf("transport/tcp: rank %d: peer at %s identifies as rank %d, want %d",
						e.rank, addr, peerRank, r)
				}
				conn.SetDeadline(time.Time{})
				return conn, nil
			}
			conn.Close()
			// Redialing cannot cure a protocol or peer-table mismatch.
			if errors.Is(err, errFatalHandshake) {
				return nil, fmt.Errorf("transport/tcp: rank %d: handshake with rank %d at %s: %w",
					e.rank, r, addr, err)
			}
			// A connection that handshook partially (e.g. the peer died
			// mid-hello) is worth a quick retry: reset the backoff, the
			// peer was demonstrably reachable a moment ago.
			backoff = dialBackoffMin
		}
		lastErr = err
		select {
		case <-abort:
			return nil, fmt.Errorf("transport/tcp: rank %d: %w", e.rank, errRendezvousAborted)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
	return nil, fmt.Errorf("transport/tcp: rank %d: rendezvous with rank %d at %s timed out: %w",
		e.rank, r, addr, lastErr)
}

func writeHello(c net.Conn, rank, p int) error {
	var b [handshakeLen]byte
	binary.LittleEndian.PutUint32(b[0:4], handshakeMagic)
	b[4] = protocolVersion
	binary.LittleEndian.PutUint32(b[5:9], uint32(rank))
	binary.LittleEndian.PutUint32(b[9:13], uint32(p))
	_, err := c.Write(b[:])
	return err
}

// errRendezvousAborted marks a dial loop stopped because the accept side
// failed first; the accept error is the root cause then.
var errRendezvousAborted = errors.New("rendezvous aborted")

// errFatalHandshake marks handshake failures that redialing cannot cure
// (protocol or configuration mismatches, as opposed to a peer that is not
// up yet); the dial retry loop fails fast on them.
var errFatalHandshake = errors.New("fatal handshake mismatch")

func readHello(c net.Conn, wantP int) (int, error) {
	var b [handshakeLen]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(b[0:4]) != handshakeMagic {
		return 0, fmt.Errorf("%w: bad magic", errFatalHandshake)
	}
	if b[4] != protocolVersion {
		return 0, fmt.Errorf("%w: protocol version %d, want %d", errFatalHandshake, b[4], protocolVersion)
	}
	if p := int(binary.LittleEndian.Uint32(b[9:13])); p != wantP {
		return 0, fmt.Errorf("%w: peer believes P=%d, want %d", errFatalHandshake, p, wantP)
	}
	return int(binary.LittleEndian.Uint32(b[5:9])), nil
}

// startReaders spawns one frame-draining goroutine per peer connection.
func (e *Endpoint) startReaders() {
	for r, pc := range e.conns {
		if pc == nil {
			continue
		}
		e.readers.Add(1)
		go e.readLoop(r, pc)
	}
}

// readLoop drains frames from one peer into its mailbox until the
// connection dies, then closes the mailbox so blocked receivers fail loudly
// instead of hanging.
func (e *Endpoint) readLoop(src int, pc *peerConn) {
	defer e.readers.Done()
	defer e.boxes[src].Close()
	br := bufio.NewReaderSize(pc.c, 64<<10)
	var hdr [headerLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(hdr[0:8])))
		n := int(binary.LittleEndian.Uint32(hdr[8:12]))
		buf := e.pool.Get(n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		e.boxes[src].Push(tag, buf)
	}
}

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// P returns the fabric size.
func (e *Endpoint) P() int { return e.p }

// Send writes one frame to dst's connection (or short-circuits self-sends
// through the local mailbox). The payload is fully written before Send
// returns, so the caller retains ownership of data.
func (e *Endpoint) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= e.p {
		panic(fmt.Sprintf("transport/tcp: send to invalid rank %d (P=%d)", dst, e.p))
	}
	if len(data) > maxPayload {
		panic(fmt.Sprintf("transport/tcp: payload of %d bytes exceeds frame limit", len(data)))
	}
	if dst == e.rank {
		cp := e.pool.Get(len(data))
		copy(cp, data)
		e.boxes[dst].Push(tag, cp)
		return
	}
	pc := e.conns[dst]
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(int64(tag)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	pc.mu.Lock()
	_, err := pc.w.Write(hdr[:])
	if err == nil {
		_, err = pc.w.Write(data)
	}
	if err == nil {
		err = pc.w.Flush()
	}
	pc.mu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("transport/tcp: rank %d: send to %d failed: %v", e.rank, dst, err))
	}
}

// Recv blocks until a message with the given tag arrives from src.
func (e *Endpoint) Recv(src, tag int) []byte {
	if src < 0 || src >= e.p {
		panic(fmt.Sprintf("transport/tcp: recv from invalid rank %d (P=%d)", src, e.p))
	}
	data, ok := e.boxes[src].Pop(tag)
	if !ok {
		panic(fmt.Sprintf("transport/tcp: rank %d: connection to rank %d lost while receiving tag %d",
			e.rank, src, tag))
	}
	return data
}

// RecvAny blocks until a message with the given tag is available from any
// of the listed sources and returns it with its source rank and delivery
// time.
func (e *Endpoint) RecvAny(srcs []int, tag int) (int, []byte, time.Time) {
	if len(srcs) == 0 {
		panic("transport/tcp: RecvAny needs at least one source")
	}
	boxes := make([]*transport.Mailbox, len(srcs))
	for i, src := range srcs {
		if src < 0 || src >= e.p {
			panic(fmt.Sprintf("transport/tcp: recv from invalid rank %d (P=%d)", src, e.p))
		}
		boxes[i] = e.boxes[src]
	}
	i, data, arrived, ok := transport.PopAny(boxes, tag)
	if !ok {
		panic(fmt.Sprintf("transport/tcp: rank %d: connection to rank %d lost while receiving tag %d",
			e.rank, srcs[i], tag))
	}
	return srcs[i], data, arrived
}

// TryRecvAny is the non-blocking variant of RecvAny (the transport.AnyPoller
// capability): it returns a queued matching frame if one is already
// receivable, ok=false otherwise, and never blocks.
func (e *Endpoint) TryRecvAny(srcs []int, tag int) (int, []byte, time.Time, bool) {
	if len(srcs) == 0 {
		panic("transport/tcp: TryRecvAny needs at least one source")
	}
	boxes := make([]*transport.Mailbox, len(srcs))
	for i, src := range srcs {
		if src < 0 || src >= e.p {
			panic(fmt.Sprintf("transport/tcp: recv from invalid rank %d (P=%d)", src, e.p))
		}
		boxes[i] = e.boxes[src]
	}
	i, data, arrived, ok := transport.TryPopAny(boxes, tag)
	if !ok {
		return -1, nil, time.Time{}, false
	}
	return srcs[i], data, arrived, true
}

// Release returns payload buffers to the endpoint's pool; future incoming
// frames reuse them.
func (e *Endpoint) Release(bufs ...[]byte) {
	for _, b := range bufs {
		e.pool.Put(b)
	}
}

// Close tears down every connection, waits for the readers to drain, and
// closes the mailboxes. Idempotent.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		for _, pc := range e.conns {
			if pc != nil {
				pc.c.Close()
			}
		}
		e.readers.Wait()
		for _, b := range e.boxes {
			b.Close()
		}
	})
	return nil
}

// fabric holds all endpoints of an in-process TCP mesh.
type fabric struct {
	eps []*Endpoint
}

// NewLoopback builds a p-endpoint fabric on automatically chosen loopback
// ports — real sockets, one process. This is how Sort runs over TCP and how
// the conformance suite exercises the backend.
func NewLoopback(p int) (transport.Fabric, error) {
	if p <= 0 {
		return nil, errors.New("transport/tcp: fabric needs at least one PE")
	}
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return NewFabric(addrs)
}

// NewFabric binds one endpoint per address in the calling process and
// connects them into a full mesh. Addresses should carry an explicit host;
// port 0 picks an ephemeral port.
func NewFabric(addrs []string) (transport.Fabric, error) {
	p := len(addrs)
	if p == 0 {
		return nil, errors.New("transport/tcp: empty address list")
	}
	lns := make([]net.Listener, p)
	bound := make([]string, p)
	for i, a := range addrs {
		ln, err := net.Listen("tcp", a)
		if err != nil {
			for _, prev := range lns[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("transport/tcp: bind %s: %w", a, err)
		}
		lns[i] = ln
		bound[i] = ln.Addr().String()
	}
	eps := make([]*Endpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = connect(lns[r], r, bound, Config{})
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, ep := range eps {
			if ep != nil {
				ep.Close()
			}
		}
		return nil, err
	}
	return &fabric{eps: eps}, nil
}

// P returns the number of endpoints.
func (f *fabric) P() int { return len(f.eps) }

// Endpoint returns the endpoint of the given rank.
func (f *fabric) Endpoint(rank int) transport.Transport { return f.eps[rank] }

// Close tears down every endpoint.
func (f *fabric) Close() error {
	var err error
	for _, ep := range f.eps {
		err = errors.Join(err, ep.Close())
	}
	return err
}
