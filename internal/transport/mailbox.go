package transport

import (
	"sync"
	"time"
)

// envelope is one in-flight message. The arrival stamp is taken at Push —
// the moment the message became receivable — so any-source receivers can
// distinguish communication time from the time a payload merely sat queued
// (the overlap model's honest "comm hidden under compute" cut-off).
type envelope struct {
	tag  int
	data []byte
	at   time.Time
}

// Mailbox queues messages from one fixed sender to one fixed receiver.
// Senders never block (the queue is unbounded); receivers block until a
// message with a matching tag arrives. Both backends build their delivery
// on Mailboxes: the local backend pushes directly from Send, the TCP
// backend pushes from the per-connection reader goroutine.
//
// Beyond the blocking Pop, a Mailbox supports the readiness protocol the
// split-phase collectives need: a receiver can register a notification
// channel that is signalled on every Push (and on Close), which PopAny
// uses to wait on many mailboxes at once without polling. At most one
// notification channel is registered per mailbox at a time — mailbox
// receivers are single-goroutine by the transport contract.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []envelope
	closed bool
	notify chan<- struct{} // signalled (non-blocking) on Push/Close while set
}

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox {
	m := &Mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Push appends a message. Pushing to a closed mailbox drops the message.
// The arrival stamp is taken inside the critical section, so within one
// mailbox stamps and queue order always agree, and a message enqueued
// after PopAny's scan visited its box is stamped later than anything that
// scan observed — which bounds how far out of arrival order a racing push
// can be delivered (see PopAny).
func (m *Mailbox) Push(tag int, data []byte) {
	m.mu.Lock()
	if !m.closed {
		m.q = append(m.q, envelope{tag: tag, data: data, at: time.Now()})
	}
	n := m.notify
	m.mu.Unlock()
	m.cond.Broadcast()
	signal(n)
}

// Pop removes and returns the earliest message with the given tag, blocking
// until one is available. It returns ok=false if the mailbox is closed and
// no matching message is queued (pending messages remain receivable after
// Close).
func (m *Mailbox) Pop(tag int) (data []byte, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if env, ok := m.popLocked(tag); ok {
			return env.data, true
		}
		if m.closed {
			return nil, false
		}
		m.cond.Wait()
	}
}

// popLocked removes and returns the earliest matching message.
func (m *Mailbox) popLocked(tag int) (env envelope, ok bool) {
	for i := range m.q {
		if m.q[i].tag == tag {
			env = m.q[i]
			m.q = append(m.q[:i], m.q[i+1:]...)
			return env, true
		}
	}
	return envelope{}, false
}

// peekLocked returns the earliest matching message without removing it.
// Per-box queues are push-ordered, so the first match is the box's oldest.
func (m *Mailbox) peekLocked(tag int) (env envelope, ok bool) {
	for i := range m.q {
		if m.q[i].tag == tag {
			return m.q[i], true
		}
	}
	return envelope{}, false
}

// setNotify registers (or, with nil, clears) the channel signalled whenever
// a message is pushed or the mailbox closes. Signals are non-blocking: the
// channel should be buffered with capacity 1, and a waiter must re-scan all
// its mailboxes after every wakeup.
func (m *Mailbox) setNotify(ch chan<- struct{}) {
	m.mu.Lock()
	m.notify = ch
	m.mu.Unlock()
}

// Close marks the mailbox closed and wakes all blocked receivers. Already
// queued messages stay receivable; blocked Pops with no matching message
// return ok=false.
func (m *Mailbox) Close() {
	m.mu.Lock()
	m.closed = true
	n := m.notify
	m.mu.Unlock()
	m.cond.Broadcast()
	signal(n)
}

// signal delivers a non-blocking wakeup.
func signal(ch chan<- struct{}) {
	if ch == nil {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// PopAny removes and returns the earliest-arrived matching message among
// those its scan observes across the given mailboxes, blocking until one
// arrives: when several boxes hold a match, their arrival stamps decide.
// Drain loops therefore see payloads in arrival order up to a scan-width
// race — a push that lands in an already-visited box while the scan is
// still running is observed one drain late, so an inversion is bounded by
// the duration of a single scan (microseconds), never by queue depth.
// idx is the position within boxes the message came from; arrived is the
// moment the message was pushed (it may predate the call when the payload
// sat queued). ok=false means no message was ready and some mailbox
// (reported by idx) is closed with no matching message pending — the
// message can never arrive. All boxes must belong to the same single
// receiver goroutine (which is also what makes the peek-then-pop below
// pop-safe: nobody else drains these boxes).
//
// The wait is notification-driven, not polled: a shared one-slot channel is
// registered on every box, the boxes are scanned, and the caller sleeps on
// the channel until a Push signals it. Registering before the scan makes
// lost wakeups impossible: a Push either precedes the scan (the scan finds
// the message) or follows the registration (the channel is signalled).
// TryPopAny is the non-blocking variant of PopAny: one scan over the boxes,
// popping the earliest-arrived match if any is already queued. ok=false
// means nothing was receivable at scan time (including the all-closed
// case — TryPopAny cannot distinguish "not yet" from "never", that is the
// blocking call's job). The same single-receiver contract applies.
func TryPopAny(boxes []*Mailbox, tag int) (idx int, data []byte, arrived time.Time, ok bool) {
	best := -1
	var bestAt time.Time
	for i, b := range boxes {
		b.mu.Lock()
		env, got := b.peekLocked(tag)
		b.mu.Unlock()
		if got && (best < 0 || env.at.Before(bestAt)) {
			best, bestAt = i, env.at
		}
	}
	if best < 0 {
		return -1, nil, time.Time{}, false
	}
	b := boxes[best]
	b.mu.Lock()
	env, got := b.popLocked(tag)
	b.mu.Unlock()
	if !got {
		panic("transport: TryPopAny mailbox drained concurrently (receiver not single-goroutine)")
	}
	return best, env.data, env.at, true
}

func PopAny(boxes []*Mailbox, tag int) (idx int, data []byte, arrived time.Time, ok bool) {
	var ch chan struct{}
	for {
		best, closedIdx := -1, -1
		var bestAt time.Time
		for i, b := range boxes {
			b.mu.Lock()
			env, got := b.peekLocked(tag)
			closed := b.closed
			b.mu.Unlock()
			if got && (best < 0 || env.at.Before(bestAt)) {
				best, bestAt = i, env.at
			}
			if !got && closed && closedIdx < 0 {
				closedIdx = i
			}
		}
		if best >= 0 {
			b := boxes[best]
			b.mu.Lock()
			env, got := b.popLocked(tag)
			b.mu.Unlock()
			if !got {
				panic("transport: PopAny mailbox drained concurrently (receiver not single-goroutine)")
			}
			return best, env.data, env.at, true
		}
		if closedIdx >= 0 {
			return closedIdx, nil, time.Time{}, false
		}
		if ch == nil {
			// Nothing ready on the first scan: register for wakeups and
			// re-scan (registration before the scan, so no lost wakeups).
			ch = make(chan struct{}, 1)
			for _, b := range boxes {
				b.setNotify(ch)
			}
			defer func() {
				for _, b := range boxes {
					b.setNotify(nil)
				}
			}()
			continue
		}
		<-ch
	}
}
