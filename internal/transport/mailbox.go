package transport

import "sync"

// envelope is one in-flight message.
type envelope struct {
	tag  int
	data []byte
}

// Mailbox queues messages from one fixed sender to one fixed receiver.
// Senders never block (the queue is unbounded); receivers block until a
// message with a matching tag arrives. Both backends build their delivery
// on Mailboxes: the local backend pushes directly from Send, the TCP
// backend pushes from the per-connection reader goroutine.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []envelope
	closed bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox {
	m := &Mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Push appends a message. Pushing to a closed mailbox drops the message.
func (m *Mailbox) Push(tag int, data []byte) {
	m.mu.Lock()
	if !m.closed {
		m.q = append(m.q, envelope{tag: tag, data: data})
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Pop removes and returns the earliest message with the given tag, blocking
// until one is available. It returns ok=false if the mailbox is closed and
// no matching message is queued (pending messages remain receivable after
// Close).
func (m *Mailbox) Pop(tag int) (data []byte, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.q {
			if m.q[i].tag == tag {
				data = m.q[i].data
				m.q = append(m.q[:i], m.q[i+1:]...)
				return data, true
			}
		}
		if m.closed {
			return nil, false
		}
		m.cond.Wait()
	}
}

// Close marks the mailbox closed and wakes all blocked receivers. Already
// queued messages stay receivable; blocked Pops with no matching message
// return ok=false.
func (m *Mailbox) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
