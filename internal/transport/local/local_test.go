package local_test

import (
	"testing"

	"dss/internal/transport"
	"dss/internal/transport/conformance"
	"dss/internal/transport/local"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, func(tb testing.TB, p int) transport.Fabric {
		return local.New(p)
	})
}
