// Package local implements the in-process transport backend: each PE is a
// goroutine and messages travel through per-(sender, receiver) mailboxes.
// This is the substrate the reproduction originally hard-wired into the
// comm package, moved behind the transport interface with zero behavior
// change: Send copies its payload from a per-PE buffer pool (so a PE can
// never observe another PE's memory), sends never block, and messages
// between a fixed pair are non-overtaking with tag-selective receives.
package local

import (
	"fmt"
	"time"

	"dss/internal/transport"
)

// Machine is the in-process fabric: P mailbox-connected endpoints sharing
// one address space. Create one with New; it needs no teardown (Close is a
// no-op) and can be reused for several consecutive runs.
type Machine struct {
	p     int
	boxes [][]*transport.Mailbox // boxes[dst][src]
	pools []transport.Pool       // per-PE recycled payload buffers
}

// New creates a fabric with p endpoints.
func New(p int) *Machine {
	if p <= 0 {
		panic("transport/local: fabric needs at least one PE")
	}
	m := &Machine{
		p:     p,
		boxes: make([][]*transport.Mailbox, p),
		pools: make([]transport.Pool, p),
	}
	for dst := 0; dst < p; dst++ {
		m.boxes[dst] = make([]*transport.Mailbox, p)
		for src := 0; src < p; src++ {
			m.boxes[dst][src] = transport.NewMailbox()
		}
	}
	return m
}

// P returns the number of endpoints.
func (m *Machine) P() int { return m.p }

// Endpoint returns the endpoint of the given rank. Like the rest of the
// substrate it is confined to the goroutine running the PE.
func (m *Machine) Endpoint(rank int) transport.Transport {
	if rank < 0 || rank >= m.p {
		panic(fmt.Sprintf("transport/local: invalid rank %d (P=%d)", rank, m.p))
	}
	return &endpoint{rank: rank, m: m}
}

// Close is a no-op: goroutine mailboxes hold no external resources.
func (m *Machine) Close() error { return nil }

// endpoint is one PE's view of the machine.
type endpoint struct {
	rank int
	m    *Machine
}

// Rank returns this endpoint's rank.
func (e *endpoint) Rank() int { return e.rank }

// P returns the fabric size.
func (e *endpoint) P() int { return e.m.p }

// Send copies data into a pooled buffer and enqueues it at dst.
func (e *endpoint) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= e.m.p {
		panic(fmt.Sprintf("transport/local: send to invalid rank %d (P=%d)", dst, e.m.p))
	}
	cp := e.m.pools[e.rank].Get(len(data))
	copy(cp, data)
	e.m.boxes[dst][e.rank].Push(tag, cp)
}

// Recv blocks until a message with the given tag arrives from src.
func (e *endpoint) Recv(src, tag int) []byte {
	if src < 0 || src >= e.m.p {
		panic(fmt.Sprintf("transport/local: recv from invalid rank %d (P=%d)", src, e.m.p))
	}
	data, ok := e.m.boxes[e.rank][src].Pop(tag)
	if !ok {
		panic(fmt.Sprintf("transport/local: recv from %d on closed endpoint %d", src, e.rank))
	}
	return data
}

// RecvAny blocks until a message with the given tag is available from any
// of the listed sources and returns it with its source rank and delivery
// time.
func (e *endpoint) RecvAny(srcs []int, tag int) (int, []byte, time.Time) {
	if len(srcs) == 0 {
		panic("transport/local: RecvAny needs at least one source")
	}
	boxes := make([]*transport.Mailbox, len(srcs))
	for i, src := range srcs {
		if src < 0 || src >= e.m.p {
			panic(fmt.Sprintf("transport/local: recv from invalid rank %d (P=%d)", src, e.m.p))
		}
		boxes[i] = e.m.boxes[e.rank][src]
	}
	i, data, arrived, ok := transport.PopAny(boxes, tag)
	if !ok {
		panic(fmt.Sprintf("transport/local: recv from %d on closed endpoint %d", srcs[i], e.rank))
	}
	return srcs[i], data, arrived
}

// TryRecvAny is the non-blocking variant of RecvAny (the transport.AnyPoller
// capability): it returns a queued matching message if one is already
// receivable, ok=false otherwise, and never blocks.
func (e *endpoint) TryRecvAny(srcs []int, tag int) (int, []byte, time.Time, bool) {
	if len(srcs) == 0 {
		panic("transport/local: TryRecvAny needs at least one source")
	}
	boxes := make([]*transport.Mailbox, len(srcs))
	for i, src := range srcs {
		if src < 0 || src >= e.m.p {
			panic(fmt.Sprintf("transport/local: recv from invalid rank %d (P=%d)", src, e.m.p))
		}
		boxes[i] = e.m.boxes[e.rank][src]
	}
	i, data, arrived, ok := transport.TryPopAny(boxes, tag)
	if !ok {
		return -1, nil, time.Time{}, false
	}
	return srcs[i], data, arrived, true
}

// Release returns payload buffers to this PE's pool for reuse by future
// Sends.
func (e *endpoint) Release(bufs ...[]byte) {
	for _, b := range bufs {
		e.m.pools[e.rank].Put(b)
	}
}

// Close closes this endpoint's inbound mailboxes, waking blocked receivers.
func (e *endpoint) Close() error {
	for _, box := range e.m.boxes[e.rank] {
		box.Close()
	}
	return nil
}
