package chaos_test

import (
	"fmt"
	"testing"

	"dss/internal/transport"
	"dss/internal/transport/chaos"
	"dss/internal/transport/conformance"
	"dss/internal/transport/local"
	"dss/internal/transport/tcp"
)

// TestConformanceUnderChaos runs the full transport conformance suite over
// both built-in backends decorated with every chaos severity level: the
// substrate contract — non-overtaking per-(pair, tag) streams, tag
// selectivity, RecvAny earliest-arrival semantics with plausible stamps —
// must hold while frames are delayed, reordered across streams, and (over
// tcp) connections are killed and resumed mid-traffic.
func TestConformanceUnderChaos(t *testing.T) {
	backends := []struct {
		name string
		make func(tb testing.TB, p int) transport.Fabric
	}{
		{"local", func(tb testing.TB, p int) transport.Fabric { return local.New(p) }},
		{"tcp", func(tb testing.TB, p int) transport.Fabric {
			f, err := tcp.NewLoopback(p)
			if err != nil {
				tb.Fatalf("loopback fabric: %v", err)
			}
			return f
		}},
	}
	for _, level := range chaos.Names() {
		cfg, err := chaos.Parse(level)
		if err != nil {
			t.Fatalf("Parse(%q): %v", level, err)
		}
		cfg.Seed = 0xC5A0 + uint64(len(level))
		for _, b := range backends {
			t.Run(fmt.Sprintf("%s-%s", b.name, level), func(t *testing.T) {
				mk := b.make
				conformance.Run(t, func(tb testing.TB, p int) transport.Fabric {
					return chaos.WrapFabric(mk(tb, p), cfg)
				})
			})
		}
	}
}

// TestScheduleDeterminism pins the decorator's core promise: the fault
// schedule is a pure function of (seed, rank, send sequence). Two
// endpoints wrapped with the same seed over identical send sequences must
// inject the drops at the same frame indices — observed here through the
// wrapped tcp endpoint's reconnect counters.
func TestScheduleDeterminism(t *testing.T) {
	run := func(seed uint64) (reconnects, resent int64) {
		f, err := tcp.NewLoopback(2)
		if err != nil {
			t.Fatalf("loopback fabric: %v", err)
		}
		cfg, err := chaos.Parse("drop")
		if err != nil {
			t.Fatalf("Parse(drop): %v", err)
		}
		cfg.Seed = seed
		cfg.MaxDelay = 0
		cfg.DelayProb = 0 // timing out of the picture: drops only
		cf := chaos.WrapFabric(f, cfg)
		a, b := cf.Endpoint(0), cf.Endpoint(1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 120; i++ {
				buf := b.Recv(0, 3)
				if len(buf) != 32 || buf[0] != byte(i) {
					panic(fmt.Sprintf("frame %d corrupted: % x", i, buf[:2]))
				}
				b.Release(buf)
			}
		}()
		payload := make([]byte, 32)
		for i := 0; i < 120; i++ {
			payload[0] = byte(i)
			a.Send(1, 3, payload)
		}
		<-done
		rc, rf, _ := a.(interface {
			NetStats() (int64, int64, int64)
		}).NetStats()
		if err := cf.Close(); err != nil {
			t.Fatalf("Close after recovered drops: %v", err)
		}
		return rc, rf
	}

	r1, f1 := run(42)
	r2, f2 := run(42)
	if r1 < 1 {
		t.Fatalf("drop schedule injected no drops over 120 frames (reconnects = %d)", r1)
	}
	if r1 != r2 || f1 != f2 {
		t.Fatalf("same seed, different schedule: (%d reconnects, %d resent) vs (%d, %d)", r1, f1, r2, f2)
	}
}

// TestDropsRequireCapability pins the graceful degradation: over the local
// backend (no transport.ConnDropper) the drop level must inject nothing
// and report zero reconnects, while still delivering everything.
func TestDropsRequireCapability(t *testing.T) {
	cfg, err := chaos.Parse("drop")
	if err != nil {
		t.Fatalf("Parse(drop): %v", err)
	}
	cfg.Seed = 7
	f := chaos.WrapFabric(local.New(2), cfg)
	a, b := f.Endpoint(0), f.Endpoint(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			buf := b.Recv(0, 1)
			if len(buf) != 1 || buf[0] != byte(i) {
				panic(fmt.Sprintf("frame %d: % x", i, buf))
			}
			b.Release(buf)
		}
	}()
	for i := 0; i < 100; i++ {
		a.Send(1, 1, []byte{byte(i)})
	}
	<-done
	rc, rf, rb := a.(interface {
		NetStats() (int64, int64, int64)
	}).NetStats()
	if rc != 0 || rf != 0 || rb != 0 {
		t.Fatalf("local backend reported net stats (%d, %d, %d), want zeros", rc, rf, rb)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestParseRejectsUnknownLevel pins the flag-parsing contract.
func TestParseRejectsUnknownLevel(t *testing.T) {
	if _, err := chaos.Parse("tsunami"); err == nil {
		t.Fatalf("Parse(tsunami) accepted an unknown severity level")
	}
	for _, name := range chaos.Names() {
		if _, err := chaos.Parse(name); err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
	}
}
