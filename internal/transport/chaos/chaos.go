// Package chaos is a fault-injecting transport decorator: it wraps any
// Transport (or whole Fabric) the same way the codec decorator does and
// disturbs the frame stream according to a deterministic seeded schedule —
// random frame delays, reorders across independent streams, and (on
// backends that expose the transport.ConnDropper capability, i.e. tcp)
// connection drops with optional partial writes that tear a frame on the
// wire. It exists so the test suite can prove the substrate's guarantees
// hold on a hostile network, not just on a quiet loopback: the conformance
// suite runs every backend under chaos, and the differential suite pins
// the sorted output and the deterministic model statistics bit-identical
// to an undisturbed run while connections are being killed mid-exchange.
//
// Determinism. Every decision — delay or not, how long, when to schedule a
// connection drop, where to cut the frame — is drawn from a per-endpoint
// PRNG seeded with Config.Seed mixed with the endpoint's rank. Replaying a
// run with the same seed, fabric size and send sequence reproduces the
// exact same fault schedule; the delivery *timing* still depends on the
// scheduler and the network, which is precisely what the differential
// tests need (same faults, nondeterministic interleaving, identical
// output).
//
// Ordering. The transport contract promises per-(pair, tag) FIFO, nothing
// more. Chaos exploits exactly that freedom: a delayed frame may overtake
// frames of other streams, but never a frame of its own (dst, tag) stream
// — each stream's release times are monotonically clamped. With
// Config.Reorder off the clamp is global, so delays shift arrival times
// without reordering anything.
//
// Stacking. The chaos layer wraps the raw backend and sits UNDER the codec
// decorator (comm → codec → chaos → tcp): faults hit post-codec wire
// frames, the way a real network would corrupt or delay the bytes actually
// in flight, and the codec's wire accounting stays untouched by replays
// because resends happen below the comm boundary.
package chaos

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"dss/internal/trace"
	"dss/internal/transport"
)

// Config is one deterministic fault schedule.
type Config struct {
	// Seed selects the schedule. Each endpoint mixes its rank into the
	// seed, so the PEs of one run draw independent but reproducible fault
	// sequences.
	Seed uint64
	// DelayProb is the probability that a remote frame is held back by a
	// uniform random delay in (0, MaxDelay] before it reaches the wrapped
	// transport.
	DelayProb float64
	// MaxDelay bounds the injected delay.
	MaxDelay time.Duration
	// Reorder allows delayed frames to overtake frames of OTHER
	// (destination, tag) streams. Off, delays shift arrivals but preserve
	// the endpoint's global send order.
	Reorder bool
	// DropEvery schedules a connection drop on (roughly) every n-th remote
	// frame, jittered by the PRNG; 0 never drops. Drops require the
	// wrapped transport to implement transport.ConnDropper (tcp does, the
	// local backend does not) and are silently skipped otherwise.
	DropEvery int
	// MaxDrops caps the injected drops per endpoint, so a bounded
	// reconnect budget is never exhausted by the schedule itself.
	MaxDrops int
	// PartialWrite tears the dropped frame mid-write (the connection dies
	// after a random prefix of the frame's bytes); off, the cut lands
	// cleanly before the frame.
	PartialWrite bool
}

// Levels are the named severity presets the test suite and the -chaos
// flag use. All delays stay well under the conformance suite's 1 ms
// arrival-order tolerance.
var levels = map[string]Config{
	"delay": {
		DelayProb: 0.35,
		MaxDelay:  300 * time.Microsecond,
	},
	"reorder": {
		DelayProb: 0.5,
		MaxDelay:  800 * time.Microsecond,
		Reorder:   true,
	},
	"drop": {
		DelayProb:    0.4,
		MaxDelay:     800 * time.Microsecond,
		Reorder:      true,
		DropEvery:    25,
		MaxDrops:     3,
		PartialWrite: true,
	},
}

// Parse resolves a severity level name ("delay", "reorder", "drop") to its
// preset Config. The seed is zero; callers overlay their own.
func Parse(name string) (Config, error) {
	cfg, ok := levels[name]
	if !ok {
		return Config{}, fmt.Errorf("chaos: unknown severity level %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return cfg, nil
}

// Names lists the severity levels in stable order, for flag help texts.
func Names() []string {
	names := make([]string, 0, len(levels))
	for n := range levels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// traceBinder is the capability (implemented by tcp, forwarded by codec
// and by this decorator) of routing a timeline recorder down the stack.
type traceBinder interface {
	BindTrace(tr *trace.Recorder)
}

// netStats is the failure-recovery counter capability of the wrapped
// transport, forwarded so the stats plumbing sees through the decorator.
type netStats interface {
	NetStats() (reconnects, resentFrames, resentBytes int64)
}

// Endpoint decorates one transport endpoint with the fault schedule. All
// fault decisions are drawn on the caller's Send path (one PE goroutine),
// which is what makes the schedule a pure function of the seed and the
// send sequence; the delivery of delayed frames happens on the endpoint's
// single executor goroutine, which also serializes them per release order.
type Endpoint struct {
	inner   transport.Transport
	cfg     Config
	rank    int
	rng     *rand.Rand
	poller  transport.AnyPoller   // inner's, if present
	dropper transport.ConnDropper // inner's, if present
	pool    transport.Pool

	// Send-path state (PE goroutine only).
	sent      int // remote frames scheduled so far
	drops     int // drops injected so far
	nextDrop  int // frame index of the next scheduled drop
	lastKey   map[streamKey]time.Time
	lastAll   time.Time
	seq       uint64 // FIFO tiebreak for equal release times
	pendDrop  *drop  // armed for the next scheduled frame
	closeOnce sync.Once

	mu      sync.Mutex
	queue   delayHeap
	wake    chan struct{} // capacity 1; kicks the executor
	done    chan struct{}
	drained chan struct{} // executor exited (queue flushed)
}

type streamKey struct {
	dst, tag int
}

type drop struct {
	afterBytes int
}

// frame is one scheduled remote send.
type frame struct {
	dst, tag  int
	data      []byte
	releaseAt time.Time
	seq       uint64
	drop      *drop
}

type delayHeap []frame

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if !h[i].releaseAt.Equal(h[j].releaseAt) {
		return h[i].releaseAt.Before(h[j].releaseAt)
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)        { *h = append(*h, x.(frame)) }
func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = frame{}
	*h = old[:n-1]
	return f
}

// Wrap decorates a transport endpoint with the fault schedule.
func Wrap(t transport.Transport, cfg Config) *Endpoint {
	e := &Endpoint{
		inner:   t,
		cfg:     cfg,
		rank:    t.Rank(),
		lastKey: make(map[streamKey]time.Time),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	// splitmix-style rank mixing: endpoints of one run share the seed but
	// draw independent sequences.
	e.rng = rand.New(rand.NewSource(int64(cfg.Seed ^ (uint64(t.Rank())+1)*0x9E3779B97F4A7C15)))
	e.poller, _ = t.(transport.AnyPoller)
	e.dropper, _ = t.(transport.ConnDropper)
	if cfg.DropEvery > 0 {
		e.nextDrop = 1 + e.rng.Intn(cfg.DropEvery)
	}
	go e.run()
	return e
}

// Rank returns the wrapped endpoint's rank.
func (e *Endpoint) Rank() int { return e.inner.Rank() }

// P returns the fabric size.
func (e *Endpoint) P() int { return e.inner.P() }

// Send draws this frame's faults from the schedule and routes the frame
// through the delay queue (self-sends bypass chaos entirely: there is no
// wire to disturb). The payload is copied before Send returns, per the
// transport contract.
func (e *Endpoint) Send(dst, tag int, data []byte) {
	if dst == e.rank {
		e.inner.Send(dst, tag, data)
		return
	}

	e.sent++
	var dr *drop
	if e.cfg.DropEvery > 0 && e.drops < e.cfg.MaxDrops && e.sent >= e.nextDrop && e.dropper != nil {
		e.drops++
		e.nextDrop = e.sent + 1 + e.rng.Intn(e.cfg.DropEvery)
		after := 0
		if e.cfg.PartialWrite {
			// Tear the frame itself: somewhere inside header+payload.
			after = e.rng.Intn(28 + len(data) + 1)
		}
		dr = &drop{afterBytes: after}
	}

	now := time.Now()
	releaseAt := now
	if e.cfg.DelayProb > 0 && e.rng.Float64() < e.cfg.DelayProb {
		releaseAt = now.Add(time.Duration(1 + e.rng.Int63n(int64(e.cfg.MaxDelay))))
	}
	// FIFO clamps: a frame never overtakes its own (dst, tag) stream, and
	// without Reorder it never overtakes any earlier frame at all.
	key := streamKey{dst, tag}
	if last := e.lastKey[key]; releaseAt.Before(last) {
		releaseAt = last
	}
	if !e.cfg.Reorder && releaseAt.Before(e.lastAll) {
		releaseAt = e.lastAll
	}
	e.lastKey[key] = releaseAt
	if releaseAt.After(e.lastAll) {
		e.lastAll = releaseAt
	}

	cp := e.pool.Get(len(data))
	copy(cp, data)
	e.seq++
	f := frame{dst: dst, tag: tag, data: cp, releaseAt: releaseAt, seq: e.seq, drop: dr}

	e.mu.Lock()
	heap.Push(&e.queue, f)
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// run is the executor: it delivers queued frames to the wrapped transport
// in release order, arming the scheduled connection drop immediately
// before the frame whose write it is meant to tear. On Close the queue is
// flushed promptly (remaining delays are cut short, order preserved) so no
// message is ever lost to the decorator.
func (e *Endpoint) run() {
	defer close(e.drained)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		e.mu.Lock()
		closing := false
		select {
		case <-e.done:
			closing = true
		default:
		}
		var wait time.Duration = -1
		var deliver []frame
		for len(e.queue) > 0 {
			now := time.Now()
			if d := e.queue[0].releaseAt.Sub(now); d > 0 && !closing {
				wait = d
				break
			}
			deliver = append(deliver, heap.Pop(&e.queue).(frame))
		}
		empty := len(e.queue) == 0
		e.mu.Unlock()

		for _, f := range deliver {
			if f.drop != nil && e.dropper != nil {
				e.dropper.DropConn(f.dst, f.drop.afterBytes)
			}
			e.inner.Send(f.dst, f.tag, f.data)
			e.pool.Put(f.data)
		}
		if closing && empty {
			return
		}
		if len(deliver) > 0 {
			continue // re-check the queue before sleeping
		}
		if wait < 0 {
			select {
			case <-e.wake:
			case <-e.done:
			}
			continue
		}
		timer.Reset(wait)
		select {
		case <-e.wake:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
		case <-e.done:
			if !timer.Stop() {
				<-timer.C
			}
		}
	}
}

// Recv delegates to the wrapped transport: chaos disturbs the send path
// only (that is where the wire is).
func (e *Endpoint) Recv(src, tag int) []byte { return e.inner.Recv(src, tag) }

// RecvAny delegates to the wrapped transport.
func (e *Endpoint) RecvAny(srcs []int, tag int) (int, []byte, time.Time) {
	return e.inner.RecvAny(srcs, tag)
}

// TryRecvAny delegates the transport.AnyPoller capability when the wrapped
// transport provides it.
func (e *Endpoint) TryRecvAny(srcs []int, tag int) (int, []byte, time.Time, bool) {
	if e.poller == nil {
		panic(fmt.Sprintf("chaos: wrapped transport %T does not implement transport.AnyPoller", e.inner))
	}
	return e.poller.TryRecvAny(srcs, tag)
}

// Release delegates buffer recycling to the wrapped transport.
func (e *Endpoint) Release(bufs ...[]byte) { e.inner.Release(bufs...) }

// BindTrace forwards the timeline recorder to the wrapped transport, so
// net-drop/net-reconnect instants reach the run's trace through the
// decorator stack.
func (e *Endpoint) BindTrace(tr *trace.Recorder) {
	if tb, ok := e.inner.(traceBinder); ok {
		tb.BindTrace(tr)
	}
}

// NetStats forwards the wrapped transport's failure-recovery counters
// (zero when the backend has none — the local backend never reconnects).
func (e *Endpoint) NetStats() (reconnects, resentFrames, resentBytes int64) {
	if ns, ok := e.inner.(netStats); ok {
		return ns.NetStats()
	}
	return 0, 0, 0
}

// Drain flushes the delay queue — every already-sent frame still reaches
// the wrapped transport, with its remaining delay cut short — and stops
// the executor, leaving the wrapped transport open. Decorators whose
// inner endpoint is owned by the caller (the RunPE path) MUST drain
// before that owner closes it: a collective completes on the sender's
// side even while its last outgoing frame is still queued here, so
// without the drain the executor could deliver into a closed transport.
func (e *Endpoint) Drain() {
	e.closeOnce.Do(func() {
		close(e.done)
	})
	<-e.drained
}

// Close drains the delay queue, then closes the wrapped transport.
func (e *Endpoint) Close() error {
	e.Drain()
	return e.inner.Close()
}

// fabric decorates every endpoint of a wrapped fabric.
type fabric struct {
	inner transport.Fabric
	eps   []*Endpoint
}

// WrapFabric decorates all endpoints of f with the fault schedule. Each
// endpoint draws an independent PRNG sequence from the shared seed.
func WrapFabric(f transport.Fabric, cfg Config) transport.Fabric {
	eps := make([]*Endpoint, f.P())
	for r := range eps {
		eps[r] = Wrap(f.Endpoint(r), cfg)
	}
	return &fabric{inner: f, eps: eps}
}

// P returns the number of endpoints.
func (f *fabric) P() int { return len(f.eps) }

// Endpoint returns the decorated endpoint of the given rank.
func (f *fabric) Endpoint(rank int) transport.Transport { return f.eps[rank] }

// Close flushes and closes every decorated endpoint. The wrapped fabric's
// endpoints are closed through the decorators, not directly, so queued
// frames drain first; the wrapped fabric's own Close then reaps whatever
// fabric-level state remains.
func (f *fabric) Close() error {
	for _, ep := range f.eps {
		ep.closeOnce.Do(func() { close(ep.done) })
	}
	var err error
	for _, ep := range f.eps {
		if cerr := ep.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if cerr := f.inner.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
