// Package conformance is a backend-independent test suite for the
// transport contract. Every backend must deliver MPI-like point-to-point
// semantics — payload isolation, per-pair non-overtaking order,
// tag-selective receives, deadlock-free eager sends — and the comm layer's
// collectives and byte accounting silently depend on all of them. Backend
// test files call Run with a fabric factory; the suite itself never imports
// a backend.
package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dss/internal/transport"
)

// Factory produces a connected fabric with p endpoints. Fabrics are closed
// by the suite.
type Factory func(tb testing.TB, p int) transport.Fabric

// Run executes the conformance suite against fabrics produced by the
// factory. Each case runs as a subtest on its own fabric.
func Run(t *testing.T, newFabric Factory) {
	cases := []struct {
		name string
		p    int
		fn   func(t *testing.T, f transport.Fabric)
	}{
		{"RankMetadata", 5, testRankMetadata},
		{"PingPong", 2, testPingPong},
		{"PayloadIsolation", 2, testPayloadIsolation},
		{"NonOvertakingSameTag", 2, testNonOvertaking},
		{"TagSelectiveReceive", 2, testTagSelective},
		{"SelfSendDelivery", 1, testSelfSend},
		{"EmptyPayload", 2, testEmptyPayload},
		{"LargePayload", 2, testLargePayload},
		{"ReleaseRecycling", 2, testReleaseRecycling},
		{"EagerSendsNoDeadlock", 4, testEagerSends},
		{"RecvAnyDrainsAllSources", 5, testRecvAnyDrains},
		{"RecvAnyTagSelective", 2, testRecvAnyTagSelective},
		{"TryRecvAnyNonBlocking", 3, testTryRecvAny},
		{"ConcurrentStress", 5, testConcurrentStress},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFabric(t, tc.p)
			defer f.Close()
			if f.P() != tc.p {
				t.Fatalf("fabric P = %d, want %d", f.P(), tc.p)
			}
			tc.fn(t, f)
		})
	}
}

// runPEs executes body once per endpoint, concurrently, and fails the test
// on the first error.
func runPEs(t *testing.T, f transport.Fabric, body func(tr transport.Transport) error) {
	t.Helper()
	p := f.P()
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(f.Endpoint(rank))
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("PE %d: %v", rank, err)
		}
	}
}

func testRankMetadata(t *testing.T, f transport.Fabric) {
	for rank := 0; rank < f.P(); rank++ {
		e := f.Endpoint(rank)
		if e.Rank() != rank {
			t.Fatalf("endpoint %d reports rank %d", rank, e.Rank())
		}
		if e.P() != f.P() {
			t.Fatalf("endpoint %d reports P=%d, want %d", rank, e.P(), f.P())
		}
	}
}

func testPingPong(t *testing.T, f transport.Fabric) {
	runPEs(t, f, func(tr transport.Transport) error {
		if tr.Rank() == 0 {
			tr.Send(1, 7, []byte("ping"))
			if got := tr.Recv(1, 8); string(got) != "pong" {
				return fmt.Errorf("got %q", got)
			}
		} else {
			if got := tr.Recv(0, 7); string(got) != "ping" {
				return fmt.Errorf("got %q", got)
			}
			tr.Send(0, 8, []byte("pong"))
		}
		return nil
	})
}

// testPayloadIsolation checks both halves of payload ownership: mutating
// the source buffer after Send must not affect the delivered message, and
// the receiver's buffer must hold a private copy rather than alias the
// sender's memory.
func testPayloadIsolation(t *testing.T, f transport.Fabric) {
	runPEs(t, f, func(tr transport.Transport) error {
		if tr.Rank() == 0 {
			buf := []byte("original")
			tr.Send(1, 1, buf)
			copy(buf, "MUTATED!")
			tr.Send(1, 2, buf)
			return nil
		}
		got := tr.Recv(0, 1)
		// Non-overtaking order guarantees the second message arrives after
		// the first, so by the time both are here the sender has mutated.
		got2 := tr.Recv(0, 2)
		if string(got) != "original" {
			return fmt.Errorf("payload aliased sender memory: %q", got)
		}
		if string(got2) != "MUTATED!" {
			return fmt.Errorf("second payload = %q", got2)
		}
		return nil
	})
}

func testNonOvertaking(t *testing.T, f transport.Fabric) {
	const k = 200
	runPEs(t, f, func(tr transport.Transport) error {
		if tr.Rank() == 0 {
			for i := 0; i < k; i++ {
				tr.Send(1, 3, []byte{byte(i)})
			}
			return nil
		}
		for i := 0; i < k; i++ {
			got := tr.Recv(0, 3)
			if len(got) != 1 || got[0] != byte(i) {
				return fmt.Errorf("message %d out of order: %v", i, got)
			}
		}
		return nil
	})
}

func testTagSelective(t *testing.T, f transport.Fabric) {
	runPEs(t, f, func(tr transport.Transport) error {
		if tr.Rank() == 0 {
			tr.Send(1, 10, []byte("ten"))
			tr.Send(1, 20, []byte("twenty"))
			// Collective-style wide tags (gid<<32|seq) must survive framing.
			tr.Send(1, 5<<32|7, []byte("wide"))
			return nil
		}
		// Receive in the opposite order of sending.
		if got := tr.Recv(0, 5<<32|7); string(got) != "wide" {
			return fmt.Errorf("wide tag: got %q", got)
		}
		if got := tr.Recv(0, 20); string(got) != "twenty" {
			return fmt.Errorf("tag 20: got %q", got)
		}
		if got := tr.Recv(0, 10); string(got) != "ten" {
			return fmt.Errorf("tag 10: got %q", got)
		}
		return nil
	})
}

func testSelfSend(t *testing.T, f transport.Fabric) {
	runPEs(t, f, func(tr transport.Transport) error {
		tr.Send(0, 1, []byte("loop"))
		if got := tr.Recv(0, 1); string(got) != "loop" {
			return fmt.Errorf("self-send lost: %q", got)
		}
		return nil
	})
}

func testEmptyPayload(t *testing.T, f transport.Fabric) {
	runPEs(t, f, func(tr transport.Transport) error {
		partner := 1 - tr.Rank()
		tr.Send(partner, 1, nil)
		tr.Send(partner, 1, []byte{})
		tr.Send(partner, 2, []byte("end"))
		for i := 0; i < 2; i++ {
			if got := tr.Recv(partner, 1); len(got) != 0 {
				return fmt.Errorf("empty message %d carries %d bytes", i, len(got))
			}
		}
		if got := tr.Recv(partner, 2); string(got) != "end" {
			return fmt.Errorf("trailer = %q", got)
		}
		return nil
	})
}

func testLargePayload(t *testing.T, f transport.Fabric) {
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 2654435761)
	}
	runPEs(t, f, func(tr transport.Transport) error {
		partner := 1 - tr.Rank()
		tr.Send(partner, 1, big)
		got := tr.Recv(partner, 1)
		if !bytes.Equal(got, big) {
			return fmt.Errorf("large payload corrupted")
		}
		return nil
	})
}

// testReleaseRecycling checks that releasing received buffers back into the
// pool never lets a recycled buffer leak into a later, still-referenced
// message.
func testReleaseRecycling(t *testing.T, f transport.Fabric) {
	const rounds = 64
	runPEs(t, f, func(tr transport.Transport) error {
		partner := 1 - tr.Rank()
		for r := 0; r < rounds; r++ {
			msg := []byte(fmt.Sprintf("round-%03d-from-%d", r, tr.Rank()))
			tr.Send(partner, 1, msg)
			got := tr.Recv(partner, 1)
			want := fmt.Sprintf("round-%03d-from-%d", r, partner)
			if string(got) != want {
				return fmt.Errorf("round %d: got %q, want %q", r, got, want)
			}
			tr.Release(got)
		}
		return nil
	})
}

// testEagerSends checks deadlock freedom of the all-to-all pattern every
// collective reduces to: all PEs send everything before receiving anything.
func testEagerSends(t *testing.T, f transport.Fabric) {
	p := f.P()
	payload := func(src, dst int) []byte {
		b := make([]byte, 64<<10)
		for i := range b {
			b[i] = byte(src*31 + dst*17 + i)
		}
		return b
	}
	runPEs(t, f, func(tr transport.Transport) error {
		for dst := 0; dst < p; dst++ {
			tr.Send(dst, 1, payload(tr.Rank(), dst))
		}
		for src := 0; src < p; src++ {
			got := tr.Recv(src, 1)
			if !bytes.Equal(got, payload(src, tr.Rank())) {
				return fmt.Errorf("payload from %d corrupted", src)
			}
			tr.Release(got)
		}
		return nil
	})
}

// testRecvAnyDrains checks the any-source receive primitive the split-phase
// collectives rely on: every other rank sends one message to rank 0 (with
// deliberate per-sender delays so arrivals interleave), and rank 0 drains
// them in arrival order with RecvAny, seeing each source exactly once.
// Self-sends must be eligible sources too.
func testRecvAnyDrains(t *testing.T, f transport.Fabric) {
	p := f.P()
	runPEs(t, f, func(tr transport.Transport) error {
		if tr.Rank() != 0 {
			// Staggered sends: later arrivals land while the receiver is
			// already inside RecvAny, exercising the wait-notify path as
			// well as the already-queued fast path.
			time.Sleep(time.Duration(tr.Rank()) * 3 * time.Millisecond)
			tr.Send(0, 9, []byte{byte(tr.Rank())})
			return nil
		}
		tr.Send(0, 9, []byte{0}) // self-send is a valid RecvAny source
		srcs := make([]int, p)
		for i := range srcs {
			srcs[i] = i
		}
		seen := make([]bool, p)
		var prev time.Time
		for i := 0; i < p; i++ {
			src, data, arrived := tr.RecvAny(srcs, 9)
			if len(data) != 1 || int(data[0]) != src {
				return fmt.Errorf("RecvAny: payload %v from %d", data, src)
			}
			if seen[src] {
				return fmt.Errorf("RecvAny returned source %d twice", src)
			}
			if arrived.IsZero() || arrived.After(time.Now()) {
				return fmt.Errorf("RecvAny: implausible arrival stamp %v from %d", arrived, src)
			}
			// Arrival order: even when several payloads are already queued
			// (the stagger above guarantees some queue up while earlier
			// ones are processed), RecvAny must hand them out oldest
			// first. The contract allows an inversion bounded by one scan
			// width (a push racing the scan); the senders are staggered
			// milliseconds apart, so a 1 ms tolerance separates that
			// benign race from genuine misordering.
			if arrived.Before(prev.Add(-time.Millisecond)) {
				return fmt.Errorf("RecvAny out of arrival order: %v from %d after %v", arrived, src, prev)
			}
			prev = arrived
			seen[src] = true
			tr.Release(data)
		}
		return nil
	})
}

// testRecvAnyTagSelective checks that RecvAny ignores pending messages with
// other tags and coexists with targeted Recv on those tags.
func testRecvAnyTagSelective(t *testing.T, f transport.Fabric) {
	runPEs(t, f, func(tr transport.Transport) error {
		if tr.Rank() == 0 {
			tr.Send(1, 10, []byte("decoy"))
			tr.Send(1, 11, []byte("wanted"))
			return nil
		}
		src, data, _ := tr.RecvAny([]int{0}, 11)
		if src != 0 || string(data) != "wanted" {
			return fmt.Errorf("RecvAny tag 11: got %q from %d", data, src)
		}
		if got := tr.Recv(0, 10); string(got) != "decoy" {
			return fmt.Errorf("tag 10 after RecvAny: got %q", got)
		}
		return nil
	})
}

// testTryRecvAny checks the optional transport.AnyPoller capability, which
// both built-in backends provide: an empty queue reports not-ready without
// blocking, queued messages are handed out earliest-arrival-first and
// tag-selectively, and the primitive interoperates with targeted Recv.
func testTryRecvAny(t *testing.T, f transport.Fabric) {
	runPEs(t, f, func(tr transport.Transport) error {
		poller, ok := tr.(transport.AnyPoller)
		if !ok {
			return fmt.Errorf("endpoint %T does not implement transport.AnyPoller", tr)
		}
		srcs := []int{0, 1, 2}
		if tr.Rank() != 0 {
			// Rendezvous: wait for go-ahead, then send one message.
			tr.Recv(0, 1)
			tr.Send(0, 9, []byte{byte(tr.Rank())})
			return nil
		}
		// Nothing has been sent yet: must report not-ready, not block.
		if _, _, _, got := poller.TryRecvAny(srcs, 9); got {
			return fmt.Errorf("TryRecvAny reported a message on an empty queue")
		}
		tr.Send(1, 1, nil)
		tr.Send(2, 1, nil)
		tr.Send(0, 8, []byte("decoy")) // wrong tag: must stay invisible
		tr.Send(0, 9, []byte{0})       // self-send is a valid source
		seen := make([]bool, 3)
		var prev time.Time
		for n := 0; n < 3; {
			src, data, arrived, got := poller.TryRecvAny(srcs, 9)
			if !got {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			if len(data) != 1 || int(data[0]) != src {
				return fmt.Errorf("TryRecvAny: payload %v from %d", data, src)
			}
			if seen[src] {
				return fmt.Errorf("TryRecvAny returned source %d twice", src)
			}
			if arrived.IsZero() || arrived.After(time.Now()) {
				return fmt.Errorf("TryRecvAny: implausible arrival stamp %v", arrived)
			}
			if arrived.Before(prev.Add(-time.Millisecond)) {
				return fmt.Errorf("TryRecvAny out of arrival order: %v from %d after %v", arrived, src, prev)
			}
			prev = arrived
			seen[src] = true
			tr.Release(data)
			n++
		}
		// The queue is drained again; the decoy is still there for Recv.
		if _, _, _, got := poller.TryRecvAny(srcs, 9); got {
			return fmt.Errorf("TryRecvAny found a message after draining")
		}
		if got := tr.Recv(0, 8); string(got) != "decoy" {
			return fmt.Errorf("decoy after TryRecvAny drain: %q", got)
		}
		return nil
	})
}

// testConcurrentStress floods the fabric with a deterministic random plan
// of messages between every pair with random tags and sizes, then verifies
// that every payload arrives intact and in per-(pair, tag) FIFO order.
func testConcurrentStress(t *testing.T, f transport.Fabric) {
	p := f.P()
	const rounds = 400
	type msg struct {
		tag  int
		size int
	}
	plan := make([][][]msg, p) // plan[src][dst] = ordered messages
	rng := rand.New(rand.NewSource(7))
	for src := 0; src < p; src++ {
		plan[src] = make([][]msg, p)
		for r := 0; r < rounds; r++ {
			dst := rng.Intn(p)
			plan[src][dst] = append(plan[src][dst], msg{tag: 1 + rng.Intn(3), size: rng.Intn(300)})
		}
	}
	payload := func(src, dst, k, size int) []byte {
		b := make([]byte, size)
		for i := range b {
			b[i] = byte(src*31 + dst*17 + k*7 + i)
		}
		return b
	}
	runPEs(t, f, func(tr transport.Transport) error {
		src := tr.Rank()
		// Send everything first (sends never block).
		for dst := 0; dst < p; dst++ {
			for k, mm := range plan[src][dst] {
				tr.Send(dst, mm.tag, payload(src, dst, k, mm.size))
			}
		}
		// Receive per source in per-tag FIFO order.
		for from := 0; from < p; from++ {
			byTag := map[int][]int{} // tag → ordered indices into plan
			for k, mm := range plan[from][tr.Rank()] {
				byTag[mm.tag] = append(byTag[mm.tag], k)
			}
			for tag, idxs := range byTag {
				for _, k := range idxs {
					mm := plan[from][tr.Rank()][k]
					got := tr.Recv(from, tag)
					want := payload(from, tr.Rank(), k, mm.size)
					if !bytes.Equal(got, want) {
						return fmt.Errorf("message %d from %d tag %d corrupted", k, from, tag)
					}
					tr.Release(got)
				}
			}
		}
		return nil
	})
}
