// Package transport defines the point-to-point message substrate that the
// comm layer (accounting and collective operations) runs on. The paper's
// algorithms were built on MPI over InfiniBand; this reproduction makes the
// delivery mechanism pluggable: the same algorithm code runs unchanged over
// in-process goroutine mailboxes (transport/local) or over real sockets
// between OS processes (transport/tcp).
//
// A Transport is one processing element's endpoint. Its semantics follow
// MPI point-to-point messaging:
//
//   - Send copies (or fully serializes) its payload before returning, so
//     the caller retains ownership of the slice and a PE can never observe
//     another PE's memory.
//   - Sends never block waiting for a matching receive (eager/buffered
//     delivery with unbounded queues), which the comm layer's collectives
//     rely on for deadlock freedom.
//   - Messages between a fixed (sender, receiver) pair with the same tag
//     are non-overtaking; Recv selects the earliest pending message from
//     the requested source with the requested tag.
//
// Byte accounting is deliberately NOT a transport concern: the comm layer
// attributes communication volume at its own Send/Recv boundary, so the
// paper's "bytes sent per string" statistics are identical no matter which
// backend carries the messages.
package transport

import "time"

// Transport is one PE's endpoint of the message substrate.
type Transport interface {
	// Rank returns this endpoint's rank in [0, P).
	Rank() int
	// P returns the number of PEs of the fabric this endpoint belongs to.
	P() int
	// Send transmits data to dst with the given tag. The payload is copied
	// (or written out) before Send returns; the caller retains ownership of
	// data. Send never blocks waiting for the receiver. Delivery failures
	// are programming or infrastructure errors and panic.
	Send(dst, tag int, data []byte)
	// Recv blocks until a message with the given tag arrives from src and
	// returns its payload. The returned slice is owned by the caller. Recv
	// panics if the endpoint is closed or the peer connection is lost while
	// waiting.
	Recv(src, tag int) []byte
	// RecvAny blocks until a message with the given tag is available from
	// ANY of the listed sources, removes it, and returns it together with
	// the rank it came from and its delivery time (the moment the message
	// became receivable, which may predate the call when the payload sat
	// queued — the split-phase overlap model needs arrival, not pickup,
	// times). It is the readiness primitive of the split-phase
	// collectives: received runs can be processed in arrival order instead
	// of a fixed rank order. Like Recv it panics if a needed peer
	// connection is lost while waiting. srcs must be non-empty and may
	// include the endpoint's own rank.
	RecvAny(srcs []int, tag int) (src int, data []byte, arrived time.Time)
	// Release returns payload buffers (typically obtained from Recv) to the
	// endpoint's buffer pool for reuse. Callers must no longer reference the
	// buffers or any sub-slice of them. Releasing is optional and never
	// required for correctness.
	Release(bufs ...[]byte)
	// Close tears the endpoint down. Blocked and future Recvs panic. Close
	// is idempotent.
	Close() error
}

// AnyPoller is an optional capability of a Transport: a non-blocking
// variant of RecvAny. TryRecvAny returns the earliest-arrived pending
// message with the given tag among the listed sources, or ok=false when
// nothing is currently receivable — it never blocks and never panics on a
// merely-empty queue. Both built-in backends (and the codec decorator over
// them) implement it; consumers must type-assert and degrade gracefully
// when the capability is absent, since Transport implementations outside
// this module are not required to provide it.
type AnyPoller interface {
	TryRecvAny(srcs []int, tag int) (src int, data []byte, arrived time.Time, ok bool)
}

// ConnDropper is an optional capability of a Transport: fault injection
// for backends with real connections. DropConn arms a one-shot trap on the
// connection to peer — the next write to that peer is truncated after
// afterBytes bytes and the connection is torn down, exactly as if the
// network had cut it mid-frame. It reports false when the backend has no
// droppable connection to that peer (the local backend, or peer == own
// rank). The chaos decorator (transport/chaos) is the only intended
// caller; a backend that implements ConnDropper must survive its own
// injected drops (reconnect and resend, see transport/tcp).
type ConnDropper interface {
	DropConn(peer int, afterBytes int) bool
}

// Fabric is a connected set of P endpoints, one per rank. In-process runs
// (the local backend, or the TCP backend bound to loopback ports) hold all
// endpoints of the fabric in one process; SPMD multi-process runs construct
// a single endpoint per process instead (see tcp.Connect) and never see a
// Fabric.
type Fabric interface {
	// P returns the number of endpoints.
	P() int
	// Endpoint returns the endpoint of the given rank. Each endpoint is
	// confined to the goroutine running its PE.
	Endpoint(rank int) Transport
	// Close tears down every endpoint of the fabric.
	Close() error
}
