package codec

import (
	"bytes"
	"testing"

	"dss/internal/transport/local"
	"dss/internal/wire"
)

// fuzzSeeds are representative payload shapes: empty, tiny control
// messages, genuine front-coded string runs, plain string sets, varint
// vectors, and raw noise.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte("barrier"))
	f.Add(lcpRunFrame(32))
	f.Add(wire.EncodeStrings([][]byte{[]byte("abc"), []byte("abd"), []byte("xyz")}))
	f.Add(wire.EncodeUint64s([]uint64{1, 5, 9, 1 << 40}))
	f.Add(bytes.Repeat([]byte{0xFF, 0x00, 0x80, 0x7F}, 100))
}

// FuzzCodecRoundTrip fuzzes each codec directly: any payload a codec
// accepts must decode back bit-identically, and encoding must be a pure
// function of the payload (the wire-byte determinism the stats layer
// advertises).
func FuzzCodecRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mk := range []func() Codec{newFlateCodec, newLCPCodec} {
			c := mk()
			enc, ok := c.Encode(nil, data)
			if !ok {
				continue // unrepresentable: the endpoint ships such frames raw
			}
			enc2, ok2 := c.Encode(nil, data)
			if !ok2 || !bytes.Equal(enc, enc2) {
				t.Fatalf("%s: encoding not deterministic", c.Name())
			}
			dec, err := c.Decode(nil, enc, len(data))
			if err != nil {
				t.Fatalf("%s: decode failed on own encoding: %v", c.Name(), err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s: round trip mismatch (%d bytes in, %d out)", c.Name(), len(data), len(dec))
			}
		}
	})
}

// FuzzFrameRoundTrip fuzzes the endpoint's whole frame path — threshold
// dispatch, compression fallback, self-describing header, pooled decode —
// for every codec: decodeFrame(encodeFrame(p)) == p on arbitrary payloads,
// and frames below the threshold pass through verbatim.
func FuzzFrameRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		const min = 64
		for _, name := range codecNames {
			e, err := Wrap(local.New(2).Endpoint(0), Config{Name: name, MinSize: min})
			if err != nil {
				t.Fatal(err)
			}
			frame := e.encodeFrame(data)
			if len(data) < min && (frame[0] != idRaw || !bytes.Equal(frame[1:], data)) {
				t.Fatalf("%s: sub-threshold frame not a verbatim passthrough", name)
			}
			if len(frame) > len(data)+1 {
				t.Fatalf("%s: frame overhead beyond the raw header byte: %d > %d",
					name, len(frame), len(data)+1)
			}
			got := e.decodeFrame(1, frame)
			if !bytes.Equal(got, data) {
				t.Fatalf("%s: frame round trip mismatch (%d bytes in, %d out)", name, len(data), len(got))
			}
		}
	})
}

// FuzzLCPDecodeRobustness feeds arbitrary bytes to the lcp decoder, which
// must reject garbage with an error (never panic, never overrun) — the
// decorator turns the error into a loud failure, but only for frames a
// peer actually declared as lcp-coded.
func FuzzLCPDecodeRobustness(f *testing.F) {
	fuzzSeeds(f)
	c := newLCPCodec()
	if enc, ok := c.Encode(nil, lcpRunFrame(16)); ok {
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := newLCPCodec()
		out, err := c.Decode(nil, data, 4096)
		if err == nil && len(out) > 4096 {
			t.Fatalf("decode emitted %d bytes beyond the declared raw length", len(out))
		}
	})
}
