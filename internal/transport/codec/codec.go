// Package codec implements the wire-compression subsystem: a decorator
// that wraps any transport.Transport (or a whole Fabric) and runs every
// remote frame through a pluggable codec before it reaches the underlying
// substrate. The paper's algorithms already shrink the MODEL volume — LCP
// front-coding of the Step-3 string runs, Golomb-coded duplicate hashes —
// but until this layer the transports shipped every frame verbatim; the
// decorator shrinks what actually crosses the fabric while leaving the
// paper's accounting untouched.
//
// Accounting contract. The comm layer keeps billing raw payload bytes at
// its own Send/Recv boundary, exactly as before — model time and
// bytes-per-string are bit-identical no matter which codec (if any)
// decorates the transport. The decorator reports a SECOND channel, the
// post-codec wire bytes, into stats.PE.Wire via the binding the comm layer
// establishes (BindWireStats/SetWirePhase); figures can then show raw
// (model) bytes and wire bytes side by side.
//
// Frame format. Every remote frame is self-describing: one codec-id byte,
// then — for a compressed frame — the uvarint raw payload length and the
// codec's encoding. Frames smaller than the configured threshold, frames a
// codec cannot represent, and frames whose encoding fails to beat the raw
// form ship as id 0 (raw) with the payload verbatim after the id byte, so
// the decoder never needs out-of-band configuration and an incompressible
// workload pays exactly one byte per frame. Self-sends bypass the codec
// entirely (no bytes leave the PE — the same rule the raw accounting
// applies).
//
// Delivery semantics are inherited unchanged from the wrapped transport:
// payload isolation, per-pair non-overtaking order, tag-selective and
// any-source receives with the original arrival stamps. Decoding happens
// on the receiving PE's goroutine into pooled buffers (Release feeds them
// back), so a steady-state exchange stays allocation-free.
package codec

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Codec ids on the wire. Id 0 marks a raw (verbatim) frame and is not a
// selectable codec; real codecs start at 1. Wire compatibility: ids are
// part of the frame format and must never be reassigned.
const (
	idRaw   byte = 0
	idFlate byte = 1
	idLCP   byte = 2

	numIDs = 3
)

// DefaultMinSize is the default compression threshold: frames smaller than
// this many bytes ship raw. Tiny control messages (barrier signals,
// splitter counts) cost more to deflate than they save, and the threshold
// keeps their latency overhead at the one header byte.
const DefaultMinSize = 64

// Codec turns raw payloads into wire encodings and back. Implementations
// are stateful scratch holders (reused flate streams, suffix arenas) and
// therefore confined to one endpoint; the registry hands out a fresh
// instance per endpoint.
type Codec interface {
	// ID returns the codec's wire id (written into every frame header).
	ID() byte
	// Name returns the codec's canonical flag name.
	Name() string
	// Encode appends an encoding of src to dst and returns the extended
	// slice with ok=true. ok=false means the codec cannot represent src
	// (e.g. the LCP codec on a frame that is not a string run); the caller
	// ships the frame raw then. Encode never fails on a representable
	// input.
	Encode(dst, src []byte) ([]byte, bool)
	// Decode appends the decoded payload — exactly rawLen bytes — to dst.
	Decode(dst, src []byte, rawLen int) ([]byte, error)
}

// factories maps canonical codec names to per-endpoint constructors. The
// nil entry is "none": the decorator frames but never compresses.
var factories = map[string]func() Codec{
	"none":  nil,
	"flate": newFlateCodec,
	"lcp":   newLCPCodec,
}

// Parse resolves a (case-insensitive) codec name to its canonical form.
// The empty string means "none".
func Parse(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == "" {
		n = "none"
	}
	if _, ok := factories[n]; !ok {
		return "", fmt.Errorf("codec: unknown codec %q (have %s)", name, Names())
	}
	return n, nil
}

// Names returns the selectable codec names, comma-separated — the single
// source for CLI usage strings.
func Names() string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		// "none" first, then alphabetical: the order of increasing effort.
		if names[i] == "none" || names[j] == "none" {
			return names[i] == "none"
		}
		return names[i] < names[j]
	})
	return strings.Join(names, ", ")
}

// Config selects the codec a decorator runs.
type Config struct {
	// Name is a codec name accepted by Parse ("" means none).
	Name string
	// MinSize is the compression threshold in bytes; frames smaller than
	// this ship raw. Zero or negative means DefaultMinSize.
	MinSize int
}

// instance resolves the config into a codec instance (nil for none) and
// the effective threshold.
func (cfg Config) instance() (Codec, int, error) {
	name, err := Parse(cfg.Name)
	if err != nil {
		return nil, 0, err
	}
	min := cfg.MinSize
	if min <= 0 {
		min = DefaultMinSize
	}
	var c Codec
	if f := factories[name]; f != nil {
		c = f()
	}
	return c, min, nil
}

// flateCodec is the general-purpose LZ codec over compress/flate. One
// writer and one reader are reused across frames (Reset), so steady-state
// encode/decode does not allocate flate state.
type flateCodec struct {
	aw appendWriter
	fw *flate.Writer
	br bytes.Reader
	fr io.ReadCloser
}

func newFlateCodec() Codec {
	c := &flateCodec{}
	// BestSpeed keeps the codec off the critical path; the DN/CommonCrawl
	// workloads are redundant enough that higher levels buy little. The
	// level is fixed, which keeps frame encodings — and therefore the wire
	// byte totals — deterministic.
	c.fw, _ = flate.NewWriter(&c.aw, flate.BestSpeed)
	c.fr = flate.NewReader(&c.br)
	return c
}

func (c *flateCodec) ID() byte     { return idFlate }
func (c *flateCodec) Name() string { return "flate" }

func (c *flateCodec) Encode(dst, src []byte) ([]byte, bool) {
	c.aw.b = dst
	c.fw.Reset(&c.aw)
	if _, err := c.fw.Write(src); err != nil {
		c.aw.b = nil
		return dst, false
	}
	if err := c.fw.Close(); err != nil {
		c.aw.b = nil
		return dst, false
	}
	out := c.aw.b
	c.aw.b = nil
	return out, true
}

func (c *flateCodec) Decode(dst, src []byte, rawLen int) ([]byte, error) {
	c.br.Reset(src)
	if err := c.fr.(flate.Resetter).Reset(&c.br, nil); err != nil {
		return dst, err
	}
	start := len(dst)
	if cap(dst)-start < rawLen {
		dst = append(dst, make([]byte, rawLen)...)
	} else {
		dst = dst[:start+rawLen]
	}
	if _, err := io.ReadFull(c.fr, dst[start:]); err != nil {
		return dst, fmt.Errorf("codec: flate frame truncated: %w", err)
	}
	// The stream must hold exactly rawLen bytes.
	var probe [1]byte
	if n, _ := c.fr.Read(probe[:]); n != 0 {
		return dst, fmt.Errorf("codec: flate frame longer than declared raw length %d", rawLen)
	}
	return dst, nil
}

// appendWriter adapts a byte slice to io.Writer for the reused flate
// writer without per-frame buffer allocations.
type appendWriter struct{ b []byte }

func (a *appendWriter) Write(p []byte) (int, error) {
	a.b = append(a.b, p...)
	return len(p), nil
}
