package codec

import (
	"encoding/binary"
	"fmt"
	"time"

	"dss/internal/stats"
	"dss/internal/trace"
	"dss/internal/transport"
)

// maxRawLen bounds the declared raw length of a compressed frame; it
// mirrors the TCP backend's frame limit.
const maxRawLen = 1<<31 - 1

// Endpoint decorates a transport endpoint with the wire codec. It
// implements transport.Transport and inherits the wrapped endpoint's
// delivery semantics; only the bytes handed to (and received from) the
// inner substrate change. Like every endpoint it is confined to the
// goroutine running its PE.
type Endpoint struct {
	inner transport.Transport
	rank  int
	codec Codec // nil for "none": frame, but never compress
	min   int   // compression threshold in raw bytes
	decs  [numIDs]Codec
	pool  transport.Pool

	// Wire metering, bound by the comm layer (BindWireStats). pe is nil
	// when the endpoint is used without accounting (tests, raw tools).
	pe *stats.PE
	ph stats.Phase
	tr *trace.Recorder // timeline recorder, bound by the comm layer; nil = off
}

// Wrap decorates a single endpoint. This is the SPMD entry point: wrap
// the tcp.Connect endpoint before handing it to the algorithm layer.
func Wrap(t transport.Transport, cfg Config) (*Endpoint, error) {
	c, min, err := cfg.instance()
	if err != nil {
		return nil, err
	}
	return newEndpoint(t, c, min), nil
}

func newEndpoint(t transport.Transport, c Codec, min int) *Endpoint {
	e := &Endpoint{inner: t, rank: t.Rank(), codec: c, min: min}
	// Decoders for every known id: frames are self-describing, and a
	// peer's encoder may fall back per frame (or, in principle, run a
	// different codec than ours).
	e.decs[idFlate] = newFlateCodec()
	e.decs[idLCP] = newLCPCodec()
	return e
}

// BindWireStats directs the endpoint's wire-byte metering into the given
// accounting state. Called by the comm layer when it adopts the endpoint;
// frames moved while unbound are not metered.
func (e *Endpoint) BindWireStats(pe *stats.PE) { e.pe = pe }

// SetWirePhase switches the phase wire bytes are attributed to. The comm
// layer forwards its SetPhase transitions here.
func (e *Endpoint) SetWirePhase(ph stats.Phase) { e.ph = ph }

// BindTrace installs the PE's timeline recorder so post-codec frame sizes
// appear as wire-send/wire-recv instants next to the raw-volume events the
// comm layer records, and forwards it down the decorator stack (the tcp
// backend records net-drop/net-reconnect instants on the same timeline).
// Bound by comm.SetTrace; nil keeps tracing off.
func (e *Endpoint) BindTrace(tr *trace.Recorder) {
	e.tr = tr
	if tb, ok := e.inner.(traceBinder); ok {
		tb.BindTrace(tr)
	}
}

// traceBinder mirrors the capability this endpoint itself implements, for
// forwarding the recorder to the wrapped transport.
type traceBinder interface {
	BindTrace(tr *trace.Recorder)
}

// NetStats forwards the wrapped transport's failure-recovery counters
// (reconnects and resend volume; zero for backends without connections),
// so the comm layer's stats plumbing sees through the codec decorator.
func (e *Endpoint) NetStats() (reconnects, resentFrames, resentBytes int64) {
	if ns, ok := e.inner.(netStats); ok {
		return ns.NetStats()
	}
	return 0, 0, 0
}

// netStats is the failure-recovery counter capability of the wrapped
// transport (implemented by tcp, forwarded by the chaos decorator).
type netStats interface {
	NetStats() (reconnects, resentFrames, resentBytes int64)
}

// Rank returns the wrapped endpoint's rank.
func (e *Endpoint) Rank() int { return e.inner.Rank() }

// P returns the fabric size.
func (e *Endpoint) P() int { return e.inner.P() }

// Send encodes data into a frame and ships it through the wrapped
// endpoint. Self-sends bypass the codec entirely: no bytes leave the PE,
// matching the raw accounting rule.
func (e *Endpoint) Send(dst, tag int, data []byte) {
	if dst == e.rank {
		e.inner.Send(dst, tag, data)
		return
	}
	frame := e.encodeFrame(data)
	e.inner.Send(dst, tag, frame)
	if e.pe != nil {
		e.pe.Wire[e.ph].Sent += int64(len(frame))
	}
	e.tr.Instant(trace.TrackControl, "wire-send", int64(len(frame)), int64(dst))
	if trace.LiveOn() {
		trace.Live.WireSent.Add(int64(len(frame)))
	}
	// The inner Send has fully copied (or written out) the frame, so the
	// scratch goes straight back to the pool: steady-state encoding is
	// allocation-free.
	e.pool.Put(frame)
}

// encodeFrame builds the self-describing wire frame for one payload.
func (e *Endpoint) encodeFrame(data []byte) []byte {
	if e.codec != nil && len(data) >= e.min {
		buf := e.pool.Get(len(data) + 1 + binary.MaxVarintLen32)[:0]
		buf = append(buf, e.codec.ID())
		buf = binary.AppendUvarint(buf, uint64(len(data)))
		if enc, ok := e.codec.Encode(buf, data); ok {
			if len(enc) < 1+len(data) {
				return enc
			}
			e.pool.Put(enc) // encoding lost to the raw form: ship raw
		} else {
			e.pool.Put(buf)
		}
	}
	frame := e.pool.Get(1 + len(data))
	frame[0] = idRaw
	copy(frame[1:], data)
	return frame
}

// Recv receives one frame and returns its decoded payload.
func (e *Endpoint) Recv(src, tag int) []byte {
	data := e.inner.Recv(src, tag)
	if src == e.rank {
		return data
	}
	return e.decodeFrame(src, data)
}

// RecvAny receives the earliest-arrived matching frame from any of the
// listed sources and returns its decoded payload. The arrival stamp is the
// wrapped transport's delivery time — decoding happens at pickup, on this
// PE's goroutine, and must not shift the overlap model's arrival order.
func (e *Endpoint) RecvAny(srcs []int, tag int) (int, []byte, time.Time) {
	src, data, arrived := e.inner.RecvAny(srcs, tag)
	if src == e.rank {
		return src, data, arrived
	}
	return src, e.decodeFrame(src, data), arrived
}

// TryRecvAny is the non-blocking variant of RecvAny: available exactly when
// the wrapped transport implements transport.AnyPoller, in which case the
// frame is decoded at pickup like RecvAny. With an inner transport that
// lacks the capability it reports not-ready forever, which consumers treat
// as "capability absent" (they must type-assert the decorated endpoint
// anyway — this method only exists when the assertion on the decorator
// succeeds, and the decorator always defines it, so it degrades by
// delegation instead).
func (e *Endpoint) TryRecvAny(srcs []int, tag int) (int, []byte, time.Time, bool) {
	p, ok := e.inner.(transport.AnyPoller)
	if !ok {
		return -1, nil, time.Time{}, false
	}
	src, data, arrived, got := p.TryRecvAny(srcs, tag)
	if !got {
		return -1, nil, time.Time{}, false
	}
	if src == e.rank {
		return src, data, arrived, true
	}
	return src, e.decodeFrame(src, data), arrived, true
}

// decodeFrame meters the wire bytes and restores the raw payload. Corrupt
// frames are infrastructure errors and panic, like every transport
// delivery failure.
func (e *Endpoint) decodeFrame(src int, frame []byte) []byte {
	if e.pe != nil {
		e.pe.Wire[e.ph].Recv += int64(len(frame))
	}
	e.tr.Instant(trace.TrackControl, "wire-recv", int64(len(frame)), int64(src))
	if trace.LiveOn() {
		trace.Live.WireRecv.Add(int64(len(frame)))
	}
	if len(frame) == 0 {
		panic(fmt.Sprintf("transport/codec: rank %d: empty frame from rank %d", e.rank, src))
	}
	id := frame[0]
	if id == idRaw {
		// The payload sits behind the id byte; hand out the sub-slice
		// instead of copying (Release re-pools it by its capacity class).
		return frame[1:]
	}
	var dec Codec
	if int(id) < numIDs {
		dec = e.decs[id]
	}
	if dec == nil {
		panic(fmt.Sprintf("transport/codec: rank %d: unknown codec id %d from rank %d", e.rank, id, src))
	}
	rawLen, n := binary.Uvarint(frame[1:])
	if n <= 0 || rawLen > maxRawLen {
		panic(fmt.Sprintf("transport/codec: rank %d: corrupt frame header from rank %d", e.rank, src))
	}
	out := e.pool.Get(int(rawLen))[:0]
	out, err := dec.Decode(out, frame[1+n:], int(rawLen))
	if err != nil || len(out) != int(rawLen) {
		panic(fmt.Sprintf("transport/codec: rank %d: %s frame from rank %d does not decode to %d bytes: %v",
			e.rank, dec.Name(), src, rawLen, err))
	}
	// The compressed frame is fully consumed; recycle it for the wrapped
	// endpoint's own buffers (receive frames, send copies).
	e.inner.Release(frame)
	return out
}

// Release returns payload buffers to the decorator's pool, where future
// decodes and frame encodings draw from. Buffers may have come from either
// layer (decoded payloads from this pool, raw pass-through frames from the
// wrapped endpoint's); pools are interchangeable by design.
func (e *Endpoint) Release(bufs ...[]byte) {
	for _, b := range bufs {
		e.pool.Put(b)
	}
}

// Close tears down the wrapped endpoint.
func (e *Endpoint) Close() error { return e.inner.Close() }

// fabric decorates every endpoint of a wrapped fabric.
type fabric struct {
	inner transport.Fabric
	eps   []*Endpoint
}

// WrapFabric decorates all endpoints of a fabric with the configured
// codec. Each endpoint gets its own codec instance (codecs hold per-
// endpoint scratch), created eagerly so repeated Endpoint calls return the
// same decorated instance.
func WrapFabric(f transport.Fabric, cfg Config) (transport.Fabric, error) {
	p := f.P()
	w := &fabric{inner: f, eps: make([]*Endpoint, p)}
	for rank := 0; rank < p; rank++ {
		c, min, err := cfg.instance()
		if err != nil {
			return nil, err
		}
		w.eps[rank] = newEndpoint(f.Endpoint(rank), c, min)
	}
	return w, nil
}

// P returns the number of endpoints.
func (f *fabric) P() int { return f.inner.P() }

// Endpoint returns the decorated endpoint of the given rank.
func (f *fabric) Endpoint(rank int) transport.Transport { return f.eps[rank] }

// Close tears down the wrapped fabric.
func (f *fabric) Close() error { return f.inner.Close() }
