// The LCP front-coding-aware codec. The Step-3 exchange frames of MS and
// PDMS are already front-coded by the wire package — per string a uvarint
// LCP with the predecessor, a uvarint suffix length, and the suffix
// characters — but the header varints still cost whole bytes and the
// suffix characters still ship verbatim. This codec understands that
// structure: a frame that parses as a canonical string run has its
// (lcp, length) header pairs re-packed as Golomb codes in a single bit
// stream (reusing internal/golomb's word-buffered bit I/O) and its
// concatenated suffix characters deflated separately, which compresses
// better once the interleaved varints are out of the way.
//
// Frames with any other structure — PDMS's composite prefix+origin
// bundles, plain (non-front-coded) string sets, splitter samples,
// fingerprint vectors — fall back to whole-frame deflate inside the same
// codec id; a leading mode byte tells the decoder which path ran. The
// codec is therefore never worse than flate by more than the mode byte,
// and strictly better exactly where the front-coded structure it
// understands dominates the frame.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dss/internal/golomb"
	"dss/internal/wire"
)

// errCorrupt is returned for undecodable LCP frames; the decorator treats
// it as an infrastructure error and panics like the transports do.
var errCorrupt = errors.New("codec: corrupt lcp frame")

// Modes of an lcp-coded frame (the first payload byte).
const (
	modeRun   byte = 0 // structural: Golomb headers + deflated suffixes
	modeFlate byte = 1 // fallback: whole frame deflated
)

// Suffix-region encodings inside a modeRun frame.
const (
	sufRaw   byte = 0 // suffix characters stored verbatim
	sufFlate byte = 1 // suffix characters deflate-compressed
)

type lcpCodec struct {
	flate *flateCodec // reused for the suffix character region
	suf   []byte      // suffix concatenation arena, reused across frames
}

func newLCPCodec() Codec {
	return &lcpCodec{flate: newFlateCodec().(*flateCodec)}
}

func (c *lcpCodec) ID() byte     { return idLCP }
func (c *lcpCodec) Name() string { return "lcp" }

// canonUvarint decodes a uvarint and reports its width, accepting only the
// canonical (minimal-length) encoding. Round-trip identity of Decode
// depends on this: the decoder re-emits canonical varints, so a frame that
// merely HAPPENS to parse but uses padded varints must be rejected here
// and shipped raw instead.
func canonUvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n <= 0 || n != wire.UvarintLen(v) {
		return 0, 0
	}
	return v, n
}

// parseRun is the strict structural pass over a candidate string-run
// frame. It returns ok=false unless the whole frame is exactly a count
// followed by count (lcp, suffix-length, suffix) records with canonical
// varints. The lcp bound rejects values that cannot occur in a real run
// (an LCP never exceeds the frame that carries the string), which also
// bounds the Golomb quotients below.
func parseRun(src []byte) (cnt, sumH, sumN uint64, ok bool) {
	cnt, n := canonUvarint(src)
	if n == 0 || cnt > uint64(len(src)) {
		return 0, 0, 0, false
	}
	pos := n
	for i := uint64(0); i < cnt; i++ {
		h, hn := canonUvarint(src[pos:])
		if hn == 0 || h > uint64(len(src)) {
			return 0, 0, 0, false
		}
		pos += hn
		l, ln := canonUvarint(src[pos:])
		if ln == 0 {
			return 0, 0, 0, false
		}
		pos += ln
		if l > uint64(len(src)-pos) {
			return 0, 0, 0, false
		}
		pos += int(l)
		sumH += h
		sumN += l
	}
	if pos != len(src) {
		return 0, 0, 0, false
	}
	return cnt, sumH, sumN, true
}

// Encode dispatches on the frame's structure: string runs take the
// structural path, everything else deflates whole.
func (c *lcpCodec) Encode(dst, src []byte) ([]byte, bool) {
	if cnt, sumH, sumN, ok := parseRun(src); ok && cnt > 0 {
		return c.encodeRun(append(dst, modeRun), src, cnt, sumH, sumN)
	}
	mark := len(dst)
	out, ok := c.flate.Encode(append(dst, modeFlate), src)
	if !ok {
		return dst[:mark], false
	}
	return out, true
}

// encodeRun re-packs a front-coded string run:
//
//	uvarint count | uvarint Mh | uvarint Mn | uvarint bitLen |
//	bit stream of count (golomb(lcp, Mh), golomb(len, Mn)) pairs |
//	suffix-flag byte | suffix characters (raw or deflated)
func (c *lcpCodec) encodeRun(dst, src []byte, cnt, sumH, sumN uint64) ([]byte, bool) {
	mh := golomb.ChooseM(sumH, int(cnt))
	mn := golomb.ChooseM(sumN, int(cnt))

	// Second pass: split headers from characters. The canonical checks
	// already passed, so plain Uvarint reads cannot fail here.
	bw := golomb.NewBitWriter(int(cnt)) // ≈1 byte per value for typical runs
	c.suf = c.suf[:0]
	_, pos := binary.Uvarint(src)
	for i := uint64(0); i < cnt; i++ {
		h, hn := binary.Uvarint(src[pos:])
		pos += hn
		bw.WriteGolomb(h, mh)
		l, ln := binary.Uvarint(src[pos:])
		pos += ln
		bw.WriteGolomb(l, mn)
		c.suf = append(c.suf, src[pos:pos+int(l)]...)
		pos += int(l)
	}
	bits := bw.Bytes()

	dst = binary.AppendUvarint(dst, cnt)
	dst = binary.AppendUvarint(dst, mh)
	dst = binary.AppendUvarint(dst, mn)
	dst = binary.AppendUvarint(dst, uint64(len(bits)))
	dst = append(dst, bits...)
	// Suffix region: deflate when it wins, verbatim otherwise (short runs
	// of already-high-entropy characters can be incompressible).
	mark := len(dst)
	dst = append(dst, sufFlate)
	if packed, ok := c.flate.Encode(dst, c.suf); ok && len(packed)-mark-1 < len(c.suf) {
		return packed, true
	}
	dst = dst[:mark]
	dst = append(dst, sufRaw)
	dst = append(dst, c.suf...)
	return dst, true
}

// Decode rebuilds the original frame byte for byte, dispatching on the
// leading mode byte the encoder wrote.
func (c *lcpCodec) Decode(dst, src []byte, rawLen int) ([]byte, error) {
	if len(src) == 0 {
		return dst, errCorrupt
	}
	mode := src[0]
	src = src[1:]
	switch mode {
	case modeRun:
		return c.decodeRun(dst, src, rawLen)
	case modeFlate:
		return c.flate.Decode(dst, src, rawLen)
	default:
		return dst, errCorrupt
	}
}

// decodeRun rebuilds a structurally re-packed front-coded string run.
func (c *lcpCodec) decodeRun(dst, src []byte, rawLen int) ([]byte, error) {
	cnt, n := binary.Uvarint(src)
	if n <= 0 || cnt == 0 || cnt > uint64(rawLen) {
		return dst, errCorrupt
	}
	pos := n
	mh, n := binary.Uvarint(src[pos:])
	if n <= 0 || mh == 0 {
		return dst, errCorrupt
	}
	pos += n
	mn, n := binary.Uvarint(src[pos:])
	if n <= 0 || mn == 0 {
		return dst, errCorrupt
	}
	pos += n
	bsLen, n := binary.Uvarint(src[pos:])
	if n <= 0 || bsLen > uint64(len(src)-pos-n) {
		return dst, errCorrupt
	}
	pos += n
	bits := src[pos : pos+int(bsLen)]
	pos += int(bsLen)

	// First pass over the bit stream: total suffix length, so the suffix
	// region can be decoded (and validated) up front.
	br := golomb.NewBitReader(bits)
	var sumN uint64
	for i := uint64(0); i < cnt; i++ {
		if _, err := br.ReadGolomb(mh); err != nil {
			return dst, err
		}
		l, err := br.ReadGolomb(mn)
		if err != nil {
			return dst, err
		}
		// Bound before accumulating: a huge declared length must not wrap
		// sumN around and slip past the total check (sumN ≤ rawLen holds on
		// entry, so the subtraction cannot underflow).
		if l > uint64(rawLen)-sumN {
			return dst, errCorrupt
		}
		sumN += l
	}

	if pos >= len(src) { // at least the suffix-flag byte must remain
		return dst, errCorrupt
	}
	flag := src[pos]
	pos++
	var suffix []byte
	switch flag {
	case sufRaw:
		suffix = src[pos:]
		if uint64(len(suffix)) != sumN {
			return dst, errCorrupt
		}
	case sufFlate:
		c.suf = c.suf[:0]
		var err error
		c.suf, err = c.flate.Decode(c.suf, src[pos:], int(sumN))
		if err != nil {
			return dst, fmt.Errorf("codec: lcp suffix region: %w", err)
		}
		suffix = c.suf
	default:
		return dst, errCorrupt
	}

	// Second pass: re-emit the original canonical frame. The bit stream
	// was fully validated by the first pass, so these reads cannot fail.
	br = golomb.NewBitReader(bits)
	dst = binary.AppendUvarint(dst, cnt)
	spos := 0
	for i := uint64(0); i < cnt; i++ {
		h, _ := br.ReadGolomb(mh)
		l, _ := br.ReadGolomb(mn)
		dst = binary.AppendUvarint(dst, h)
		dst = binary.AppendUvarint(dst, l)
		dst = append(dst, suffix[spos:spos+int(l)]...)
		spos += int(l)
	}
	if spos != len(suffix) {
		return dst, errCorrupt
	}
	return dst, nil
}
