package codec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"dss/internal/golomb"
	"dss/internal/stats"
	"dss/internal/transport"
	"dss/internal/transport/conformance"
	"dss/internal/transport/local"
	"dss/internal/transport/tcp"
	"dss/internal/wire"
)

// codecNames are the selectable codecs the decorated backends are
// conformance-tested with.
var codecNames = []string{"none", "flate", "lcp"}

// TestConformanceDecoratedLocal runs the full transport conformance suite
// — payload isolation, non-overtaking order, tag selectivity, RecvAny
// arrival-time semantics, release recycling, concurrent stress — against
// the codec decorator over the in-process backend, once per codec. The
// decorator must be semantically invisible.
func TestConformanceDecoratedLocal(t *testing.T) {
	for _, name := range codecNames {
		t.Run(name, func(t *testing.T) {
			conformance.Run(t, func(tb testing.TB, p int) transport.Fabric {
				f, err := WrapFabric(local.New(p), Config{Name: name})
				if err != nil {
					tb.Fatalf("wrap local fabric: %v", err)
				}
				return f
			})
		})
	}
}

// TestConformanceDecoratedTCP is the same suite over real loopback TCP
// sockets under the decorator.
func TestConformanceDecoratedTCP(t *testing.T) {
	for _, name := range codecNames {
		t.Run(name, func(t *testing.T) {
			conformance.Run(t, func(tb testing.TB, p int) transport.Fabric {
				inner, err := tcp.NewLoopback(p)
				if err != nil {
					tb.Fatalf("loopback fabric: %v", err)
				}
				f, err := WrapFabric(inner, Config{Name: name})
				if err != nil {
					tb.Fatalf("wrap tcp fabric: %v", err)
				}
				return f
			})
		})
	}
}

// frameEndpoint builds a decorated endpoint suitable for white-box frame
// tests (the inner endpoint is only touched by decodeFrame's Release).
func frameEndpoint(t testing.TB, name string, min int) *Endpoint {
	t.Helper()
	e, err := Wrap(local.New(2).Endpoint(0), Config{Name: name, MinSize: min})
	if err != nil {
		t.Fatalf("wrap: %v", err)
	}
	return e
}

// lcpRunFrame builds a realistic Step-3 exchange frame: a front-coded run
// of sorted strings sharing prefixes, exactly as wire.AppendStringsLCP
// ships them.
func lcpRunFrame(n int) []byte {
	ss := make([][]byte, n)
	lcps := make([]int32, n)
	prev := ""
	for i := range ss {
		s := fmt.Sprintf("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaprefix-%06d-suffix-payload", i*3)
		h := 0
		for h < len(s) && h < len(prev) && s[h] == prev[h] {
			h++
		}
		ss[i] = []byte(s)
		lcps[i] = int32(h)
		prev = s
	}
	return wire.AppendStringsLCP(nil, ss, lcps)
}

// TestFramePassthroughBelowThreshold pins the size threshold: frames
// smaller than MinSize ship raw behind the 1-byte header, bit-identical to
// the payload.
func TestFramePassthroughBelowThreshold(t *testing.T) {
	for _, name := range []string{"flate", "lcp"} {
		e := frameEndpoint(t, name, 64)
		data := []byte("short control message")
		frame := e.encodeFrame(data)
		if frame[0] != idRaw {
			t.Fatalf("%s: small frame compressed (id %d)", name, frame[0])
		}
		if !bytes.Equal(frame[1:], data) {
			t.Fatalf("%s: passthrough frame not verbatim", name)
		}
		if got := e.decodeFrame(1, frame); !bytes.Equal(got, data) {
			t.Fatalf("%s: passthrough decode mismatch: %q", name, got)
		}
	}
}

// TestFrameCompressesRedundantPayload checks the win case: a redundant
// payload above the threshold must ship strictly smaller than raw framing
// and decode to the identical payload.
func TestFrameCompressesRedundantPayload(t *testing.T) {
	payloads := map[string][]byte{
		"flate": bytes.Repeat([]byte("the same twelve bytes again and again "), 64),
		"lcp":   lcpRunFrame(200),
	}
	for name, data := range payloads {
		e := frameEndpoint(t, name, 64)
		frame := e.encodeFrame(data)
		if frame[0] == idRaw {
			t.Fatalf("%s: redundant %d-byte payload shipped raw", name, len(data))
		}
		if len(frame) >= len(data)+1 {
			t.Fatalf("%s: frame (%d bytes) not smaller than raw framing (%d)", name, len(frame), len(data)+1)
		}
		if got := e.decodeFrame(1, frame); !bytes.Equal(got, data) {
			t.Fatalf("%s: decode mismatch", name)
		}
	}
}

// TestFrameFallsBackOnIncompressibleData checks the loss case: a
// high-entropy payload must fall back to the raw frame — the codec header
// is the only overhead a hostile workload can ever pay.
func TestFrameFallsBackOnIncompressibleData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 4096)
	rng.Read(data)
	for _, name := range []string{"flate", "lcp"} {
		e := frameEndpoint(t, name, 64)
		frame := e.encodeFrame(data)
		if frame[0] != idRaw {
			t.Fatalf("%s: incompressible payload shipped compressed and necessarily larger", name)
		}
		if len(frame) != len(data)+1 {
			t.Fatalf("%s: raw frame is %d bytes, want %d", name, len(frame), len(data)+1)
		}
	}
}

// TestLCPCodecTargetsStringRuns pins the front-coding codec's dual-mode
// dispatch: a genuine Step-3 run takes the structural Golomb-repack path
// (and shrinks), while structurally different messages — fixed-width
// fingerprint sets, composite PDMS bundles — take the whole-frame deflate
// fallback, each marked by the leading mode byte and both round-tripping
// byte-identically.
func TestLCPCodecTargetsStringRuns(t *testing.T) {
	c := newLCPCodec()
	run := lcpRunFrame(128)
	enc, ok := c.Encode(nil, run)
	if !ok {
		t.Fatal("string run rejected by lcp codec")
	}
	if enc[0] != modeRun {
		t.Fatalf("string run took mode %d, want structural mode %d", enc[0], modeRun)
	}
	if len(enc) >= len(run) {
		t.Fatalf("lcp codec grew a front-coded run: %d -> %d bytes", len(run), len(enc))
	}
	dec, err := c.Decode(nil, enc, len(run))
	if err != nil || !bytes.Equal(dec, run) {
		t.Fatalf("lcp round trip failed: err=%v", err)
	}

	// Determinism: wire byte totals are advertised as deterministic, so
	// the same payload must encode to the same bytes every time.
	enc2, ok := c.Encode(nil, run)
	if !ok || !bytes.Equal(enc, enc2) {
		t.Fatal("lcp encoding not deterministic")
	}

	// A fixed-width fingerprint message is not a string run; it must take
	// the deflate fallback and still round-trip byte-identically.
	fp := wire.EncodeUint64sFixed(make([]uint64, 300))
	encFP, ok := c.Encode(nil, fp)
	if !ok {
		t.Fatal("fingerprint frame rejected by dual-mode lcp codec")
	}
	if encFP[0] != modeFlate {
		t.Fatalf("fingerprint frame took mode %d, want fallback mode %d", encFP[0], modeFlate)
	}
	decFP, err := c.Decode(nil, encFP, len(fp))
	if err != nil || !bytes.Equal(decFP, fp) {
		t.Fatalf("lcp fallback round trip failed: err=%v", err)
	}
}

// TestLCPDecodeRejectsWrappingSuffixLengths pins a corrupt-frame case the
// structural decoder must reject rather than panic on: declared suffix
// lengths whose uint64 sum wraps around (5 + 2^64-2 ≡ 3) would otherwise
// slip past the total-length bound and overrun the 3-byte suffix region in
// the re-emit pass.
func TestLCPDecodeRejectsWrappingSuffixLengths(t *testing.T) {
	const mh, mn = uint64(1), uint64(1) << 62
	bw := golomb.NewBitWriter(8)
	bw.WriteGolomb(0, mh)
	bw.WriteGolomb(5, mn)
	bw.WriteGolomb(0, mh)
	bw.WriteGolomb(^uint64(0)-1, mn) // 2^64-2: wraps sumN to 3
	bits := bw.Bytes()

	frame := []byte{modeRun}
	frame = binary.AppendUvarint(frame, 2)
	frame = binary.AppendUvarint(frame, mh)
	frame = binary.AppendUvarint(frame, mn)
	frame = binary.AppendUvarint(frame, uint64(len(bits)))
	frame = append(frame, bits...)
	frame = append(frame, 0)                // sufRaw
	frame = append(frame, []byte("abc")...) // 3 bytes: matches wrapped sum

	c := newLCPCodec()
	if _, err := c.Decode(nil, frame, 8); err == nil {
		t.Fatal("wrapping suffix lengths accepted")
	}
}

// TestWireMetering checks the decorator's accounting channel: remote
// frames bill their true wire size to the bound PE's current phase,
// self-sends bill nothing (no bytes leave the PE).
func TestWireMetering(t *testing.T) {
	f, err := WrapFabric(local.New(2), Config{Name: "flate", MinSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	e0 := f.Endpoint(0).(*Endpoint)
	e1 := f.Endpoint(1).(*Endpoint)
	pe0, pe1 := &stats.PE{Rank: 0}, &stats.PE{Rank: 1}
	e0.BindWireStats(pe0)
	e0.SetWirePhase(stats.PhaseExchange)
	e1.BindWireStats(pe1)

	small := []byte("tiny")
	big := bytes.Repeat([]byte("abcdefgh"), 1024)
	e0.Send(0, 1, big) // self-send: not metered
	e0.Release(e0.Recv(0, 1))
	e0.Send(1, 2, small)
	e0.Send(1, 2, big)
	got1 := e1.Recv(0, 2)
	got2 := e1.Recv(0, 2)
	if !bytes.Equal(got1, small) || !bytes.Equal(got2, big) {
		t.Fatal("payloads corrupted")
	}

	sent := pe0.TotalWire().Sent
	wantSmall := int64(len(small)) + 1 // below threshold: raw frame
	if sent <= wantSmall {
		t.Fatalf("wire sent %d: big frame not metered", sent)
	}
	if sent >= wantSmall+int64(len(big)) {
		t.Fatalf("wire sent %d: compression not reflected (raw would be %d)",
			sent, wantSmall+int64(len(big)))
	}
	if pe0.Wire[stats.PhaseExchange].Sent != sent {
		t.Fatalf("wire bytes not attributed to the set phase: %+v", pe0.Wire)
	}
	if recv := pe1.TotalWire().Recv; recv != sent {
		t.Fatalf("receiver metered %d wire bytes, sender %d", recv, sent)
	}
}

// TestParseAndNames pins the registry surface the CLI flags build on.
func TestParseAndNames(t *testing.T) {
	for in, want := range map[string]string{
		"": "none", "none": "none", "FLATE": "flate", " lcp ": "lcp",
	} {
		got, err := Parse(in)
		if err != nil || got != want {
			t.Fatalf("Parse(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := Parse("zstd"); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if Names() != "none, flate, lcp" {
		t.Fatalf("Names() = %q", Names())
	}
}
