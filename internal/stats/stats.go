// Package stats provides per-PE, per-phase accounting of communication
// volume, message counts and local work for the distributed string sorting
// algorithms, together with the α-β machine cost model from Section II of
// the paper (Bingmann, Sanders, Schimek: "Communication-Efficient String
// Sorting", IPDPS 2020).
//
// The paper reports two metrics per experiment: running time and bytes sent
// per string. Communication volume is hardware independent and is counted
// exactly at the send boundary of the message-passing substrate. Running
// time on the original 1280-core InfiniBand cluster cannot be measured
// faithfully on a single host, so the harness additionally computes a
// deterministic model time
//
//	T = Σ_phase [ max_PE(work)/Rate + α·max_PE(messages) + β·max_PE(bytes) ]
//
// which preserves the relative shapes (who wins, where the crossovers fall)
// that the paper's evaluation establishes.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Phase identifies an algorithm phase for accounting purposes. Every send,
// receive and unit of local work is attributed to the phase the PE is
// currently in.
type Phase int

// Phases of the distributed string sorting algorithms. They correspond to
// the four steps of Figure 1 of the paper plus the prefix-doubling step
// (1+ε) of PDMS and a catch-all for everything else.
const (
	PhaseOther     Phase = iota // setup, redistribution, verification
	PhaseLocalSort              // Step 1: sequential local sorting
	PhaseDupDetect              // Step 1+ε: distinguishing prefix approximation
	PhasePartition              // Step 2: sampling and splitter selection
	PhaseExchange               // Step 3: all-to-all string exchange
	PhaseMerge                  // Step 4: multiway merging
	NumPhases
)

// String returns the human-readable phase name.
func (ph Phase) String() string {
	switch ph {
	case PhaseOther:
		return "other"
	case PhaseLocalSort:
		return "local_sort"
	case PhaseDupDetect:
		return "dup_detect"
	case PhasePartition:
		return "partition"
	case PhaseExchange:
		return "exchange"
	case PhaseMerge:
		return "merge"
	default:
		return fmt.Sprintf("phase(%d)", int(ph))
	}
}

// PhaseCounters accumulates the per-phase totals of one PE.
type PhaseCounters struct {
	BytesSent int64 // payload bytes sent to other PEs (self-sends excluded)
	BytesRecv int64 // payload bytes received from other PEs
	Messages  int64 // number of point-to-point messages sent to other PEs
	Work      int64 // local work units (characters inspected/moved)
}

// WireCounters accumulates the post-codec byte totals of one PE: the bytes
// that actually crossed the fabric after the transport's wire codec ran, as
// opposed to the raw model bytes of PhaseCounters. Without a codec the two
// are equal; with one, Sent/Recv shrink (or, for incompressible frames,
// grow by the per-frame codec header). Wire bytes never feed the α-β model
// time — they are the second accounting channel the figures report
// alongside the paper's raw volume.
type WireCounters struct {
	Sent int64 // post-codec bytes shipped to other PEs (self-sends excluded)
	Recv int64 // post-codec bytes received from other PEs
}

// PE holds the accounting state of a single processing element. A PE value
// is owned by exactly one goroutine while an algorithm runs; it must only be
// read by other goroutines after the machine has finished.
//
// Phases holds the deterministic counters the α-β model time and the
// bytes-per-string figures are computed from; they are bit-identical across
// transports and runs. Wall and Overlap are wall-clock measurements of the
// split-phase overlap model: nondeterministic, never fed into ModelTime,
// and excluded from cross-backend statistics comparisons.
type PE struct {
	Rank   int
	Phases [NumPhases]PhaseCounters
	// Wire[ph] counts the post-codec bytes of frames encoded or decoded
	// while ph was the wire-accounting phase. The machine-wide totals are
	// deterministic for a fixed codec (frame encodings are pure functions
	// of their payloads); the per-phase split is attribution-grade only —
	// a split-phase collective drained in a later phase bills its frames'
	// wire bytes there, while the raw counters stay with the posting phase.
	// Compare totals, not per-phase wire values, across seam modes.
	Wire [NumPhases]WireCounters
	// Wall[ph] is the wall-clock nanoseconds this PE spent with ph as its
	// accounting phase (accumulated at every comm.SetPhase transition).
	Wall [NumPhases]int64
	// Overlap[ph] is the wall-clock nanoseconds of split-phase collective
	// time hidden under compute: for every Pending posted in phase ph, the
	// span from posting to the last drained payload minus the time the PE
	// actually spent blocked waiting on it. Zero for blocking collectives.
	Overlap [NumPhases]int64
	// Cores is the width of the intra-PE work pool this PE ran with, and
	// CPU[ph] the summed busy nanoseconds of all pool workers (caller
	// included) inside parallel regions attributed to phase ph. CPU is the
	// multi-core evidence channel: CPU[ph] > Wall[ph] proves real parallel
	// execution in that phase, since a lone goroutine cannot be busy longer
	// than the wall. Like Wall and Overlap these are measurements — never
	// model inputs, never part of deterministic cross-run comparisons.
	Cores int64
	CPU   [NumPhases]int64
	// MergeStartNS and ExchangeDoneNS are wall-clock milestones of the
	// streaming merge seam, in UnixNano (0 = not recorded). MergeStartNS is
	// stamped when the Step-4 loser tree emits its first merged string;
	// ExchangeDoneNS when the LAST Step-3 payload of the chunked exchange
	// arrived. MergeStartNS < ExchangeDoneNS is the streaming seam's
	// headline: merging began while exchange frames were still in flight.
	// Like Wall and Overlap these are measurements, never model inputs.
	MergeStartNS   int64
	ExchangeDoneNS int64
	// SpillBytesWritten, SpillBytesRead and PeakLiveBytes are the gauges of
	// the out-of-core pipeline: bytes the PE's spill pool wrote to page
	// files, bytes it paged back in ahead of the merge cursor, and the
	// high-water mark of metered live arena bytes. Like Wall and Overlap
	// these live on the measured channel — WHAT spills depends on arrival
	// timing, so the values vary run to run and across transports, and they
	// never feed the model time or the deterministic comparisons. All three
	// are zero when no memory budget was configured.
	SpillBytesWritten int64
	SpillBytesRead    int64
	PeakLiveBytes     int64
	// Reconnects, ResentFrames and ResentBytes are the transport's
	// failure-recovery gauges: connections re-established after a drop,
	// and the frames/bytes replayed from the resend ring to resume them
	// (tcp only; zero on the local backend and on undisturbed runs). They
	// live on the measured channel with Wall and Overlap: recovery happens
	// below the accounting boundary, so the deterministic model statistics
	// are bit-identical whether or not connections died mid-run.
	Reconnects   int64
	ResentFrames int64
	ResentBytes  int64
}

// TotalWire returns the sum of the PE's wire counters over all phases.
func (pe *PE) TotalWire() WireCounters {
	var t WireCounters
	for ph := Phase(0); ph < NumPhases; ph++ {
		t.Sent += pe.Wire[ph].Sent
		t.Recv += pe.Wire[ph].Recv
	}
	return t
}

// Add accumulates the counters of a phase.
func (pe *PE) Add(ph Phase, c PhaseCounters) {
	p := &pe.Phases[ph]
	p.BytesSent += c.BytesSent
	p.BytesRecv += c.BytesRecv
	p.Messages += c.Messages
	p.Work += c.Work
}

// Total returns the sum of all phase counters of the PE.
func (pe *PE) Total() PhaseCounters {
	var t PhaseCounters
	for ph := Phase(0); ph < NumPhases; ph++ {
		c := pe.Phases[ph]
		t.BytesSent += c.BytesSent
		t.BytesRecv += c.BytesRecv
		t.Messages += c.Messages
		t.Work += c.Work
	}
	return t
}

// CostModel holds the α-β machine parameters of Section II plus a local
// compute rate. The defaults are calibrated to a 2013-era InfiniBand 4X FDR
// cluster like ForHLR I: a few microseconds of message startup latency,
// roughly 5 GB/s point-to-point bandwidth per node, and a sequential string
// sorting rate in the hundreds of millions of characters per second.
type CostModel struct {
	Alpha float64 // seconds per message (startup latency)
	Beta  float64 // seconds per payload byte
	Rate  float64 // local work units (characters) per second
}

// DefaultModel returns the calibrated default cost model.
func DefaultModel() CostModel {
	return CostModel{
		Alpha: 2e-6,    // 2 µs startup latency
		Beta:  2.5e-10, // 4 GB/s effective bandwidth
		Rate:  250e6,   // 250 M characters per second local work
	}
}

// Report aggregates the accounting of all PEs of one algorithm run.
type Report struct {
	P     int
	PEs   []*PE
	Model CostModel
}

// NewReport creates a report over the given PEs.
func NewReport(pes []*PE, model CostModel) *Report {
	return &Report{P: len(pes), PEs: pes, Model: model}
}

// phaseMax returns, for one phase, the maxima over all PEs of the individual
// counters (bottleneck values in the sense of the paper's analysis).
func (r *Report) phaseMax(ph Phase) PhaseCounters {
	var m PhaseCounters
	for _, pe := range r.PEs {
		c := pe.Phases[ph]
		if c.BytesSent > m.BytesSent {
			m.BytesSent = c.BytesSent
		}
		if c.BytesRecv > m.BytesRecv {
			m.BytesRecv = c.BytesRecv
		}
		if c.Messages > m.Messages {
			m.Messages = c.Messages
		}
		if c.Work > m.Work {
			m.Work = c.Work
		}
	}
	return m
}

// PhaseTime returns the model time of a single phase: the bottleneck local
// work plus the α-β cost of the bottleneck communication.
func (r *Report) PhaseTime(ph Phase) float64 {
	m := r.phaseMax(ph)
	bytes := m.BytesSent
	if m.BytesRecv > bytes {
		bytes = m.BytesRecv
	}
	return float64(m.Work)/r.Model.Rate +
		r.Model.Alpha*float64(m.Messages) +
		r.Model.Beta*float64(bytes)
}

// ModelTime returns the total model running time: the sum of the per-phase
// bottleneck times. Summing per phase (rather than per PE) reflects that
// the phases are separated by collective operations that act as barriers.
func (r *Report) ModelTime() float64 {
	var t float64
	for ph := Phase(0); ph < NumPhases; ph++ {
		t += r.PhaseTime(ph)
	}
	return t
}

// TotalBytesSent returns the sum over all PEs of bytes sent.
func (r *Report) TotalBytesSent() int64 {
	var b int64
	for _, pe := range r.PEs {
		b += pe.Total().BytesSent
	}
	return b
}

// TotalMessages returns the sum over all PEs of messages sent.
func (r *Report) TotalMessages() int64 {
	var m int64
	for _, pe := range r.PEs {
		m += pe.Total().Messages
	}
	return m
}

// TotalWork returns the sum over all PEs of local work units.
func (r *Report) TotalWork() int64 {
	var w int64
	for _, pe := range r.PEs {
		w += pe.Total().Work
	}
	return w
}

// TotalWireBytesSent returns the sum over all PEs of post-codec bytes that
// actually crossed the fabric. Equal to TotalBytesSent when no codec
// decorates the transport (the comm layer mirrors raw volume into the wire
// counters then); strictly smaller when a compressing codec pays off.
func (r *Report) TotalWireBytesSent() int64 {
	var b int64
	for _, pe := range r.PEs {
		b += pe.TotalWire().Sent
	}
	return b
}

// WireBytesPerString returns the average post-codec communication volume
// per input string — the wire-side counterpart of BytesPerString.
func (r *Report) WireBytesPerString(n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(r.TotalWireBytesSent()) / float64(n)
}

// CompressionRatio returns wire bytes over raw bytes (1.0 means every
// frame shipped verbatim; below 1.0 the codec shrank the traffic). With no
// raw traffic at all the ratio is defined as 1.
func (r *Report) CompressionRatio() float64 {
	raw := r.TotalBytesSent()
	if raw == 0 {
		return 1
	}
	return float64(r.TotalWireBytesSent()) / float64(raw)
}

// MaxBytesSent returns the bottleneck send volume: the maximum over PEs.
func (r *Report) MaxBytesSent() int64 {
	var b int64
	for _, pe := range r.PEs {
		if s := pe.Total().BytesSent; s > b {
			b = s
		}
	}
	return b
}

// MaxBytesRecv returns the bottleneck receive volume: the maximum over PEs
// of bytes received. This is the load-balancing metric of the skew
// experiment — a PE that receives a disproportionate share of characters
// is the straggler of the exchange and merge phases.
func (r *Report) MaxBytesRecv() int64 {
	var b int64
	for _, pe := range r.PEs {
		var recv int64
		for ph := Phase(0); ph < NumPhases; ph++ {
			recv += pe.Phases[ph].BytesRecv
		}
		if recv > b {
			b = recv
		}
	}
	return b
}

// MeanBytesRecv returns the average per-PE receive volume.
func (r *Report) MeanBytesRecv() float64 {
	if len(r.PEs) == 0 {
		return 0
	}
	var sum int64
	for _, pe := range r.PEs {
		for ph := Phase(0); ph < NumPhases; ph++ {
			sum += pe.Phases[ph].BytesRecv
		}
	}
	return float64(sum) / float64(len(r.PEs))
}

// BytesPerString returns the average communication volume per input string,
// the metric of the lower panels of Figures 4 and 5 of the paper.
func (r *Report) BytesPerString(n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(r.TotalBytesSent()) / float64(n)
}

// PhaseWallNS returns the bottleneck wall-clock span of a phase: the
// maximum over PEs of the time spent with that accounting phase active.
// Wall spans are measurements, not model values — they vary run to run.
func (r *Report) PhaseWallNS(ph Phase) int64 {
	var m int64
	for _, pe := range r.PEs {
		if pe.Wall[ph] > m {
			m = pe.Wall[ph]
		}
	}
	return m
}

// MaxWallNS returns the largest per-PE total wall span — roughly the
// elapsed time of the run as seen by its slowest PE.
func (r *Report) MaxWallNS() int64 {
	var m int64
	for _, pe := range r.PEs {
		var w int64
		for ph := Phase(0); ph < NumPhases; ph++ {
			w += pe.Wall[ph]
		}
		if w > m {
			m = w
		}
	}
	return m
}

// TotalOverlapNS returns the total communication time hidden under compute
// by split-phase collectives, summed over all PEs and phases. This is the
// machine-wide "overlap-ms" headline of the overlapped exchange/merge
// pipeline: wall time the bulk-synchronous seam would have spent waiting.
func (r *Report) TotalOverlapNS() int64 {
	var o int64
	for _, pe := range r.PEs {
		for ph := Phase(0); ph < NumPhases; ph++ {
			o += pe.Overlap[ph]
		}
	}
	return o
}

// MaxMergeLeadNS returns the streaming seam's merge lead: the maximum over
// PEs of how long before its last Step-3 arrival the PE's loser tree
// emitted the first merged string. Positive means merging demonstrably
// began while exchange frames were still in flight; 0 means the milestone
// pair was not recorded (eager seam) or no PE got ahead of its exchange.
func (r *Report) MaxMergeLeadNS() int64 {
	var m int64
	for _, pe := range r.PEs {
		if pe.MergeStartNS == 0 || pe.ExchangeDoneNS == 0 {
			continue
		}
		if lead := pe.ExchangeDoneNS - pe.MergeStartNS; lead > m {
			m = lead
		}
	}
	return m
}

// MaxCores returns the largest intra-PE pool width of the run (1 when
// every PE ran sequentially).
func (r *Report) MaxCores() int64 {
	var m int64 = 1
	for _, pe := range r.PEs {
		if pe.Cores > m {
			m = pe.Cores
		}
	}
	return m
}

// TotalCPUNS returns the summed busy nanoseconds of all intra-PE pool
// workers over all PEs and phases — the CPU-seconds actually burned inside
// parallel regions, comparable against MaxWallNS for a machine-wide
// parallel-efficiency read.
func (r *Report) TotalCPUNS() int64 {
	var t int64
	for _, pe := range r.PEs {
		for ph := Phase(0); ph < NumPhases; ph++ {
			t += pe.CPU[ph]
		}
	}
	return t
}

// PhaseCPUNS returns the summed worker busy nanoseconds of one phase over
// all PEs.
func (r *Report) PhaseCPUNS(ph Phase) int64 {
	var t int64
	for _, pe := range r.PEs {
		t += pe.CPU[ph]
	}
	return t
}

// TotalSpillBytesWritten returns the machine-wide bytes spilled to page
// files. Positive proves the out-of-core path actually paged (the smoke
// matrix asserts this under a tiny budget); 0 means everything stayed
// resident.
func (r *Report) TotalSpillBytesWritten() int64 {
	var b int64
	for _, pe := range r.PEs {
		b += pe.SpillBytesWritten
	}
	return b
}

// TotalSpillBytesRead returns the machine-wide bytes paged back in from
// spill files.
func (r *Report) TotalSpillBytesRead() int64 {
	var b int64
	for _, pe := range r.PEs {
		b += pe.SpillBytesRead
	}
	return b
}

// TotalReconnects returns the machine-wide count of connections
// re-established after a drop. Positive proves the run actually survived
// connection loss (the chaos differential tests assert this); 0 means the
// fabric stayed up end to end.
func (r *Report) TotalReconnects() int64 {
	var n int64
	for _, pe := range r.PEs {
		n += pe.Reconnects
	}
	return n
}

// TotalResentFrames returns the machine-wide count of frames replayed from
// resend rings during reconnects.
func (r *Report) TotalResentFrames() int64 {
	var n int64
	for _, pe := range r.PEs {
		n += pe.ResentFrames
	}
	return n
}

// TotalResentBytes returns the machine-wide payload bytes replayed during
// reconnects. Resends live below the accounting boundary: they appear
// here and nowhere in the deterministic counters.
func (r *Report) TotalResentBytes() int64 {
	var n int64
	for _, pe := range r.PEs {
		n += pe.ResentBytes
	}
	return n
}

// MaxPeakLiveBytes returns the bottleneck peak of metered live arena
// bytes: the largest per-PE high-water mark. Under a budget of B every PE
// must stay at B plus the documented fixed overhead allowance — the
// out-of-core differential tests assert exactly that on this accessor.
func (r *Report) MaxPeakLiveBytes() int64 {
	var m int64
	for _, pe := range r.PEs {
		if pe.PeakLiveBytes > m {
			m = pe.PeakLiveBytes
		}
	}
	return m
}

// MaxOverlapNS returns the bottleneck overlap: the maximum over PEs of
// their total hidden communication time. Unlike TotalOverlapNS (a sum of
// per-PE values), this is directly comparable to wall spans.
func (r *Report) MaxOverlapNS() int64 {
	var m int64
	for _, pe := range r.PEs {
		var o int64
		for ph := Phase(0); ph < NumPhases; ph++ {
			o += pe.Overlap[ph]
		}
		if o > m {
			m = o
		}
	}
	return m
}

// WallTable formats the measured per-phase wall spans and overlap as an
// aligned text table. Unlike Table, these columns are wall-clock
// measurements and differ run to run; they are reported separately so the
// deterministic table stays comparable across transports. The column
// labels carry the aggregation: wall spans are bottleneck values (max over
// PEs), overlap is summed PE-milliseconds — the two are deliberately not
// comparable, which is why both say so.
func (r *Report) WallTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %16s %14s\n",
		"phase", "wall_ms (max)", "overlap_ms (sum)", "cpu_ms (sum)")
	for ph := Phase(0); ph < NumPhases; ph++ {
		wall := r.PhaseWallNS(ph)
		var overlap int64
		for _, pe := range r.PEs {
			overlap += pe.Overlap[ph]
		}
		cpu := r.PhaseCPUNS(ph)
		if wall == 0 && overlap == 0 && cpu == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %14.3f %16.3f %14.3f\n",
			ph, float64(wall)/1e6, float64(overlap)/1e6, float64(cpu)/1e6)
	}
	fmt.Fprintf(&b, "%-12s %14.3f %16.3f %14.3f\n",
		"total", float64(r.MaxWallNS())/1e6, float64(r.TotalOverlapNS())/1e6,
		float64(r.TotalCPUNS())/1e6)
	return b.String()
}

// Table formats a per-phase breakdown as an aligned text table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %14s %10s %14s %10s\n",
		"phase", "bytes_sent", "bytes_recv", "messages", "work", "time_s")
	for ph := Phase(0); ph < NumPhases; ph++ {
		var sent, recv, msgs, work int64
		for _, pe := range r.PEs {
			c := pe.Phases[ph]
			sent += c.BytesSent
			recv += c.BytesRecv
			msgs += c.Messages
			work += c.Work
		}
		if sent == 0 && recv == 0 && msgs == 0 && work == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %14d %14d %10d %14d %10.4f\n",
			ph, sent, recv, msgs, work, r.PhaseTime(ph))
	}
	fmt.Fprintf(&b, "%-12s %14d %14s %10d %14d %10.4f\n",
		"total", r.TotalBytesSent(), "", r.TotalMessages(), r.TotalWork(), r.ModelTime())
	return b.String()
}

// Imbalance returns the ratio of the maximum to the mean per-PE total work,
// a load balancing quality indicator (1.0 is perfect).
func (r *Report) Imbalance() float64 {
	if len(r.PEs) == 0 {
		return 1
	}
	var sum, max int64
	for _, pe := range r.PEs {
		w := pe.Total().Work
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(r.PEs))
	return float64(max) / mean
}

// WorkQuantiles returns the given quantiles (in [0,1]) of per-PE total work.
func (r *Report) WorkQuantiles(qs ...float64) []int64 {
	ws := make([]int64, len(r.PEs))
	for i, pe := range r.PEs {
		ws[i] = pe.Total().Work
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		if len(ws) == 0 {
			continue
		}
		idx := int(q * float64(len(ws)-1))
		out[i] = ws[idx]
	}
	return out
}
