package stats

import (
	"strings"
	"testing"
)

func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseOther:     "other",
		PhaseLocalSort: "local_sort",
		PhaseDupDetect: "dup_detect",
		PhasePartition: "partition",
		PhaseExchange:  "exchange",
		PhaseMerge:     "merge",
	}
	for ph, name := range want {
		if ph.String() != name {
			t.Fatalf("%d.String() = %q, want %q", ph, ph.String(), name)
		}
	}
}

func TestPEAddAndTotal(t *testing.T) {
	pe := &PE{Rank: 3}
	pe.Add(PhaseExchange, PhaseCounters{BytesSent: 100, Messages: 2})
	pe.Add(PhaseExchange, PhaseCounters{BytesSent: 50, BytesRecv: 70})
	pe.Add(PhaseMerge, PhaseCounters{Work: 1000})
	tot := pe.Total()
	if tot.BytesSent != 150 || tot.BytesRecv != 70 || tot.Messages != 2 || tot.Work != 1000 {
		t.Fatalf("total = %+v", tot)
	}
}

func buildReport() *Report {
	pes := []*PE{{Rank: 0}, {Rank: 1}, {Rank: 2}}
	pes[0].Add(PhaseExchange, PhaseCounters{BytesSent: 1000, Messages: 10, Work: 500})
	pes[1].Add(PhaseExchange, PhaseCounters{BytesSent: 3000, Messages: 5, Work: 100})
	pes[2].Add(PhaseMerge, PhaseCounters{Work: 10_000_000})
	return NewReport(pes, CostModel{Alpha: 1e-6, Beta: 1e-9, Rate: 1e8})
}

func TestPhaseTimeUsesBottlenecks(t *testing.T) {
	r := buildReport()
	// Exchange: max bytes 3000, max msgs 10, max work 500.
	want := 500.0/1e8 + 1e-6*10 + 1e-9*3000
	got := r.PhaseTime(PhaseExchange)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("PhaseTime = %g, want %g", got, want)
	}
	// Merge is dominated by PE 2's work.
	if mt := r.PhaseTime(PhaseMerge); mt < 0.09 || mt > 0.11 {
		t.Fatalf("merge time = %g, want ~0.1", mt)
	}
}

func TestModelTimeIsSumOfPhases(t *testing.T) {
	r := buildReport()
	var sum float64
	for ph := Phase(0); ph < NumPhases; ph++ {
		sum += r.PhaseTime(ph)
	}
	if r.ModelTime() != sum {
		t.Fatalf("ModelTime %g != Σ phases %g", r.ModelTime(), sum)
	}
}

func TestAggregates(t *testing.T) {
	r := buildReport()
	if r.TotalBytesSent() != 4000 {
		t.Fatalf("TotalBytesSent = %d", r.TotalBytesSent())
	}
	if r.MaxBytesSent() != 3000 {
		t.Fatalf("MaxBytesSent = %d", r.MaxBytesSent())
	}
	if r.TotalMessages() != 15 {
		t.Fatalf("TotalMessages = %d", r.TotalMessages())
	}
	if r.TotalWork() != 10_000_600 {
		t.Fatalf("TotalWork = %d", r.TotalWork())
	}
	if bps := r.BytesPerString(400); bps != 10 {
		t.Fatalf("BytesPerString = %g", bps)
	}
	if bps := r.BytesPerString(0); bps != 0 {
		t.Fatalf("BytesPerString(0) = %g", bps)
	}
}

func TestImbalance(t *testing.T) {
	r := buildReport()
	// Work: 500, 100, 10M → max/mean ≈ 3.
	imb := r.Imbalance()
	if imb < 2.5 || imb > 3.1 {
		t.Fatalf("Imbalance = %g", imb)
	}
	empty := NewReport(nil, DefaultModel())
	if empty.Imbalance() != 1 {
		t.Fatal("empty report imbalance != 1")
	}
}

func TestWorkQuantiles(t *testing.T) {
	r := buildReport()
	qs := r.WorkQuantiles(0, 0.5, 1)
	if qs[0] != 100 || qs[1] != 500 || qs[2] != 10_000_000 {
		t.Fatalf("quantiles = %v", qs)
	}
}

func TestTableRendering(t *testing.T) {
	r := buildReport()
	table := r.Table()
	for _, want := range []string{"exchange", "merge", "total", "bytes_sent"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	// Phases with no activity are omitted.
	if strings.Contains(table, "dup_detect") {
		t.Fatalf("idle phase rendered:\n%s", table)
	}
}

func TestDefaultModelPlausible(t *testing.T) {
	m := DefaultModel()
	if m.Alpha <= 0 || m.Beta <= 0 || m.Rate <= 0 {
		t.Fatalf("non-positive model constants: %+v", m)
	}
	// Latency of one message must exceed the per-byte cost by orders of
	// magnitude (α ≫ β), the regime all the algorithm tradeoffs assume.
	if m.Alpha < 1000*m.Beta {
		t.Fatalf("α/β ratio implausible: %+v", m)
	}
}

func TestMaxMergeLeadNS(t *testing.T) {
	mk := func(start, done int64) *PE {
		return &PE{MergeStartNS: start, ExchangeDoneNS: done}
	}
	// No milestones recorded (eager seams) → 0.
	r := NewReport([]*PE{mk(0, 0), mk(0, 0)}, DefaultModel())
	if r.MaxMergeLeadNS() != 0 {
		t.Fatalf("unrecorded milestones: lead %d, want 0", r.MaxMergeLeadNS())
	}
	// Half-recorded pairs must not contribute.
	r = NewReport([]*PE{mk(100, 0), mk(0, 100)}, DefaultModel())
	if r.MaxMergeLeadNS() != 0 {
		t.Fatalf("half-recorded milestones: lead %d, want 0", r.MaxMergeLeadNS())
	}
	// Merge after the last arrival (negative lead) reports 0, and the
	// bottleneck is the max positive lead over PEs.
	r = NewReport([]*PE{mk(900, 500), mk(400, 700), mk(650, 700)}, DefaultModel())
	if got := r.MaxMergeLeadNS(); got != 300 {
		t.Fatalf("lead %d, want 300", got)
	}
}
