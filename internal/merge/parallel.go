package merge

import (
	"bytes"

	"dss/internal/par"
	"dss/internal/partition"
)

// DefaultParMin is the minimum number of strings below which the
// partitioned parallel merge is not worth its selection overhead and the
// merge runs sequentially even on a wide pool.
const DefaultParMin = 2048

// resolveParMin maps the configuration convention (0 = default, negative =
// disabled) to an effective threshold.
func resolveParMin(parMin int) int {
	if parMin == 0 {
		return DefaultParMin
	}
	return parMin
}

// Hooks are optional trace callbacks of the partitioned merges, threaded
// down from the comm layer's recorder. The zero value is fully disabled
// and costs nothing; the callbacks never influence what is merged.
type Hooks struct {
	// Obs observes each pool worker's busy span of the partitioned phase
	// (nil = unobserved, see par.Observer).
	Obs par.Observer
	// OnPartition is invoked once after multisequence selection with the
	// output boundaries: bounds[j]..bounds[j+1] is partition j's output
	// slot. The partition seams of the timeline come from here.
	OnPartition func(bounds []int)
}

// MergePar is Merge on a work pool: the runs are split into disjoint,
// globally ordered subranges by multisequence selection and each subrange
// is merged by an independent plain loser tree. Output and the work count
// are byte-identical to the sequential merge at every pool width (a nil or
// width-1 pool, or fewer than parMin strings, IS the sequential path).
// Returns the merged sequence, the character work, and the pool busy-ns.
func MergePar(pool *par.Pool, seqs []Sequence, parMin int) (Sequence, int64, int64) {
	return mergeSeqs(pool, seqs, false, parMin, Hooks{})
}

// MergeLCPPar is MergeLCP on a work pool; see MergePar. Seam LCPs at
// partition boundaries are recomputed against the predecessor element, so
// the output LCP array matches the sequential merge exactly.
func MergeLCPPar(pool *par.Pool, seqs []Sequence, parMin int) (Sequence, int64, int64) {
	return mergeSeqs(pool, seqs, true, parMin, Hooks{})
}

// MergeParHooked / MergeLCPParHooked are the traced variants: identical
// merges with the hooks reporting worker spans and partition seams.
func MergeParHooked(pool *par.Pool, seqs []Sequence, parMin int, h Hooks) (Sequence, int64, int64) {
	return mergeSeqs(pool, seqs, false, parMin, h)
}

// MergeLCPParHooked is MergeLCPPar with trace hooks; see MergeParHooked.
func MergeLCPParHooked(pool *par.Pool, seqs []Sequence, parMin int, h Hooks) (Sequence, int64, int64) {
	return mergeSeqs(pool, seqs, true, parMin, h)
}

func mergeSeqs(pool *par.Pool, seqs []Sequence, useLCP bool, parMin int, h Hooks) (Sequence, int64, int64) {
	total := 0
	streams := 0
	last := -1
	anySats := false
	for i, s := range seqs {
		if useLCP && s.Len() > 0 && len(s.LCPs) != s.Len() {
			panic("merge: sequence missing LCP array")
		}
		if s.Sats != nil {
			if len(s.Sats) != s.Len() {
				panic("merge: satellite array length mismatch")
			}
			anySats = true
		}
		total += s.Len()
		if s.Len() > 0 {
			streams++
			last = i
		}
	}

	var out Sequence
	if total == 0 {
		return out, 0, 0
	}
	if streams == 1 {
		// Single non-empty run: pass through (the sequential fast path).
		s := seqs[last]
		out.Strings = append(out.Strings, s.Strings...)
		if useLCP {
			out.LCPs = append(out.LCPs, s.LCPs...)
			out.LCPs[0] = 0
		}
		if anySats {
			out.Sats = appendSats(out.Sats, s, s.Len())
		}
		return out, 0, 0
	}

	out.Strings = make([][]byte, total)
	if useLCP {
		out.LCPs = make([]int32, total)
	}
	if anySats {
		out.Sats = make([]uint64, total)
	}

	parts := 1
	if pool != nil && !pool.Sequential() {
		if min := resolveParMin(parMin); min >= 0 && total >= min {
			if parts = pool.Cores(); parts > total {
				parts = total
			}
		}
	}

	if parts <= 1 {
		t := newTree(seqs, useLCP)
		t.init()
		t.emit(total, out.Strings, out.LCPs, out.Sats)
		work := t.work
		t.release()
		if useLCP {
			out.LCPs[0] = 0
		}
		return out, work, 0
	}

	// Partition: exact global boundaries over the runs (unbilled — the
	// sequential merge never performs these comparisons).
	runs := make([][][]byte, len(seqs))
	for i, s := range seqs {
		runs[i] = s.Strings
	}
	cuts := partition.SplitPoints(runs, nil, parts)
	bounds := make([]int, parts+1)
	for j := 1; j <= parts; j++ {
		n := 0
		for q := range runs {
			n += cuts[j][q]
		}
		bounds[j] = n
	}
	if h.OnPartition != nil {
		h.OnPartition(bounds)
	}

	works := make([]int64, parts)
	busy := pool.ForEachObs(parts, func(j int) {
		lo, hi := bounds[j], bounds[j+1]
		if lo == hi {
			return
		}
		var lcps []int32
		if useLCP {
			lcps = out.LCPs[lo:hi]
		}
		var sats []uint64
		if anySats {
			sats = out.Sats[lo:hi]
		}
		t := newTree(seqs, useLCP)
		copy(t.pos, cuts[j])
		if j == 0 {
			t.init() // billed: this IS the sequential merge's tree build
		} else {
			t.reseed(predecessor(seqs, cuts[j]))
		}
		t.emit(hi-lo, out.Strings[lo:hi], lcps, sats)
		works[j] = t.work
		t.release()
	}, h.Obs)

	var work int64
	for _, w := range works {
		work += w
	}
	if useLCP {
		out.LCPs[0] = 0
	}
	return out, work, busy
}

// predecessor returns the output element immediately before the partition
// starting at cuts: the maximal last-selected element, where equal strings
// compare by run index (higher run wins, matching the (string, run) order
// in which the merge emits them). Only called for partitions with a
// non-empty prefix, so at least one cut is positive.
func predecessor(seqs []Sequence, cuts []int) []byte {
	var w []byte
	found := false
	for q := range seqs {
		if cuts[q] == 0 {
			continue
		}
		cand := seqs[q].Strings[cuts[q]-1]
		if !found || bytes.Compare(cand, w) >= 0 {
			w, found = cand, true
		}
	}
	return w
}
