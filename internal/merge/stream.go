// Streaming K-way merge: the same loser trees as merge.go, pulled over
// Sources that may still be arriving. MergeStream is the Step-4 front-end
// of the streaming exchange seam — the tree starts as soon as every run
// can produce its FIRST head and from then on blocks only when the one
// head it needs next has not been decoded yet (the blocking Head call is
// where the caller drains more frames into its run readers).
//
// Work-count identity: the comparison sequence of a loser tree is a pure
// function of the head sequences, the per-head LCP values and the stream
// count. MergeStream presents exactly the strings and LCPs the eager path
// presents, pads to the same power-of-two tree and replays the same paths,
// so the character work it reports is bit-identical to Merge/MergeLCP on
// the same runs — asserted by the differential tests in stream_test.go.
package merge

// Source is a pull-based sorted string run. Implementations are typically
// backed by an incremental run reader over a partially received exchange
// payload (see core's streaming seam); SliceSource adapts a materialized
// Sequence.
//
// Aliasing contract: the slice returned by Head must remain valid and
// byte-identical until the caller is done with the merged output — the
// loser tree caches heads across comparisons and the output Sequence
// aliases them, exactly like the eager merge aliases its input runs. In
// particular a Source must never hand out sub-slices of transport buffers
// that are recycled afterwards; decode into stable, append-only storage
// (wire.RunReader's arenas obey this). Violations corrupt the merge output
// silently, which is why the contract is pinned by dedicated tests on both
// the reader and the merge side.
type Source interface {
	// Head returns the run's current head, blocking until it is available;
	// ok=false reports the run exhausted. Repeated calls without Advance
	// return the same head. A live head must be NON-NIL — an empty string
	// is an empty non-nil slice, as the wire decoders produce — because
	// nil is the loser tree's +∞ exhausted sentinel: a nil head with
	// ok=true would silently drop the rest of the run.
	Head() (s []byte, ok bool)
	// HeadLCP returns the LCP of the current head with the run's previous
	// string (0 at the first string). Only called after a successful Head.
	HeadLCP() int32
	// HeadSat returns the current head's satellite word. Only called after
	// a successful Head, and only when the merge runs with Sats.
	HeadSat() uint64
	// Advance consumes the current head.
	Advance()
}

// StreamOptions configure MergeStream.
type StreamOptions struct {
	// LCP selects the LCP-aware loser tree (and LCP output), like MergeLCP
	// versus Merge.
	LCP bool
	// Sats carries one satellite word per string through the merge. Unlike
	// the eager path, which sniffs Sats from the input runs, streaming
	// callers declare it up front (the runs may not have arrived yet).
	Sats bool
	// OnFirstOutput, if set, is invoked exactly once, immediately before
	// the tree emits its first merged string — the merge-start milestone
	// the overlap accounting records. Not invoked for an empty merge.
	OnFirstOutput func()
}

// MergeStream merges the sources with a loser tree, pulling heads on
// demand, and returns the merged run and the number of characters
// inspected. The output is identical (strings, LCPs, satellites, work) to
// Merge/MergeLCP over the fully materialized runs.
func MergeStream(sources []Source, opt StreamOptions) (Sequence, int64) {
	k := 1
	for k < len(sources) {
		k <<= 1
	}
	t := &streamTree{
		k:       k,
		loser:   make([]int, k),
		srcs:    sources,
		heads:   make([][]byte, len(sources)),
		fetched: make([]bool, len(sources)),
		curH:    make([]int32, len(sources)),
		useLCP:  opt.LCP,
	}
	out := Sequence{Strings: make([][]byte, 0)}
	if opt.LCP {
		out.LCPs = make([]int32, 0)
	}
	if opt.Sats {
		out.Sats = make([]uint64, 0)
	}
	winner := t.initNode(1)
	first := true
	for {
		w := t.head(winner)
		if w == nil {
			break
		}
		if first {
			first = false
			if opt.OnFirstOutput != nil {
				opt.OnFirstOutput()
			}
		}
		out.Strings = append(out.Strings, w)
		if opt.LCP {
			out.LCPs = append(out.LCPs, t.curH[winner])
		}
		if opt.Sats {
			out.Sats = append(out.Sats, t.srcs[winner].HeadSat())
		}
		// Advance the winner's stream; the new head's LCP with the last
		// output is the stream's own LCP entry (see run in merge.go).
		t.srcs[winner].Advance()
		t.fetched[winner] = false
		if t.useLCP {
			if t.head(winner) != nil {
				t.curH[winner] = t.srcs[winner].HeadLCP()
			} else {
				t.curH[winner] = 0
			}
		}
		// Replay the path from the winner's leaf to the root.
		node := (winner + t.k) / 2
		for node >= 1 {
			if t.less(t.loser[node], winner) {
				t.loser[node], winner = winner, t.loser[node]
			}
			node /= 2
		}
	}
	if opt.LCP && len(out.LCPs) > 0 {
		out.LCPs[0] = 0
	}
	return out, t.work
}

// streamTree is the loser tree of merge.go with the head cache pulled from
// Sources instead of indexed slices. The comparison logic is shared with
// the eager tree through the lessHeads helpers so the two cannot drift.
type streamTree struct {
	k       int
	loser   []int
	srcs    []Source
	heads   [][]byte // cached current heads; valid where fetched
	fetched []bool
	curH    []int32
	useLCP  bool
	work    int64
}

// head returns the cached head of stream s, pulling (and possibly
// blocking on) the source the first time after an Advance. nil is the +∞
// sentinel of an exhausted or padding stream.
func (t *streamTree) head(s int) []byte {
	if s >= len(t.srcs) {
		return nil
	}
	if !t.fetched[s] {
		h, ok := t.srcs[s].Head()
		if !ok {
			h = nil
		}
		t.heads[s] = h
		t.fetched[s] = true
	}
	return t.heads[s]
}

func (t *streamTree) less(a, b int) bool {
	if t.useLCP {
		return lessHeadsLCP(t.head(a), t.head(b), a, b, t.curH, &t.work)
	}
	return lessHeadsPlain(t.head(a), t.head(b), a, b, &t.work)
}

// initNode plays the initial tournament of the subtree rooted at node and
// returns its winner stream (identical to tree.initNode).
func (t *streamTree) initNode(node int) int {
	if node >= t.k {
		return node - t.k
	}
	l := t.initNode(2 * node)
	r := t.initNode(2*node + 1)
	if t.less(l, r) {
		t.loser[node] = r
		return l
	}
	t.loser[node] = l
	return r
}

// SliceSource adapts a fully materialized Sequence to the Source
// interface: the eager inputs replayed through the streaming front-end,
// used by the differential tests and by callers that mix ready and
// arriving runs.
type SliceSource struct {
	Seq Sequence
	pos int
}

// Head returns the current head of the sequence.
func (s *SliceSource) Head() ([]byte, bool) {
	if s.pos >= s.Seq.Len() {
		return nil, false
	}
	return s.Seq.Strings[s.pos], true
}

// HeadLCP returns the current head's LCP entry.
func (s *SliceSource) HeadLCP() int32 {
	if s.Seq.LCPs == nil {
		return 0
	}
	return s.Seq.LCPs[s.pos]
}

// HeadSat returns the current head's satellite word.
func (s *SliceSource) HeadSat() uint64 {
	if s.Seq.Sats == nil {
		return 0
	}
	return s.Seq.Sats[s.pos]
}

// Advance consumes the current head.
func (s *SliceSource) Advance() { s.pos++ }
