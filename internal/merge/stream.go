// Streaming K-way merge: the same loser trees as merge.go, pulled over
// Sources that may still be arriving. MergeStream is the Step-4 front-end
// of the streaming exchange seam — the tree starts as soon as every run
// can produce its FIRST head and from then on blocks only when the one
// head it needs next has not been decoded yet (the blocking Head call is
// where the caller drains more frames into its run readers).
//
// Work-count identity: the comparison sequence of a loser tree is a pure
// function of the head sequences, the per-head LCP values and the stream
// count. MergeStream presents exactly the strings and LCPs the eager path
// presents, pads to the same power-of-two tree and replays the same paths,
// so the character work it reports is bit-identical to Merge/MergeLCP on
// the same runs — asserted by the differential tests in stream_test.go.
//
// Parallel handoff: with a pool and a Snapshot callback, the streaming
// tree periodically asks the caller whether the exchange has fully
// arrived. Once it has, the live tree state is transplanted onto an eager
// tree over the materialized remainders (same heads, same curH, same
// losers — a pure continuation) and the rest of the merge runs through
// the partitioned parallel path of parallel.go, preserving both the
// early-start MergeLeadMS semantics and the byte-identical output/work
// contract at every pool width.
package merge

import (
	"dss/internal/par"
	"dss/internal/partition"
)

// Source is a pull-based sorted string run. Implementations are typically
// backed by an incremental run reader over a partially received exchange
// payload (see core's streaming seam); SliceSource adapts a materialized
// Sequence.
//
// Aliasing contract: the slice returned by Head must remain valid and
// byte-identical until the caller is done with the merged output — the
// loser tree caches heads across comparisons and the output Sequence
// aliases them, exactly like the eager merge aliases its input runs. In
// particular a Source must never hand out sub-slices of transport buffers
// that are recycled afterwards; decode into stable, append-only storage
// (wire.RunReader's arenas obey this). Violations corrupt the merge output
// silently, which is why the contract is pinned by dedicated tests on both
// the reader and the merge side.
type Source interface {
	// Head returns the run's current head, blocking until it is available;
	// ok=false reports the run exhausted. Repeated calls without Advance
	// return the same head. A live head must be NON-NIL — an empty string
	// is an empty non-nil slice, as the wire decoders produce — because
	// nil is the loser tree's +∞ exhausted sentinel: a nil head with
	// ok=true would silently drop the rest of the run.
	Head() (s []byte, ok bool)
	// HeadLCP returns the LCP of the current head with the run's previous
	// string (0 at the first string). Only called after a successful Head.
	HeadLCP() int32
	// HeadSat returns the current head's satellite word. Only called after
	// a successful Head, and only when the merge runs with Sats.
	HeadSat() uint64
	// Advance consumes the current head.
	Advance()
}

// StreamOptions configure MergeStream.
type StreamOptions struct {
	// LCP selects the LCP-aware loser tree (and LCP output), like MergeLCP
	// versus Merge.
	LCP bool
	// Sats carries one satellite word per string through the merge. Unlike
	// the eager path, which sniffs Sats from the input runs, streaming
	// callers declare it up front (the runs may not have arrived yet).
	Sats bool
	// OnFirstOutput, if set, is invoked exactly once, immediately before
	// the tree emits its first merged string — the merge-start milestone
	// the overlap accounting records. Not invoked for an empty merge.
	OnFirstOutput func()
	// Pool, if non-nil and wider than one, enables the parallel handoff:
	// once Snapshot reports the exchange drained, the remainder of the
	// merge is partitioned across the pool. With a nil/width-1 pool or a
	// nil Snapshot the merge is fully sequential (the exact legacy path).
	Pool *par.Pool
	// ParMin gates the handoff's partitioned finish by remaining strings:
	// 0 means DefaultParMin, negative disables partitioning (the handoff
	// then continues on the single live tree).
	ParMin int
	// Snapshot, if set, is polled between outputs. It returns the fully
	// materialized remainders of all sources (aligned with the sources
	// slice, each remainder's entry 0 being the current un-advanced head)
	// and ok=true when — and only when — every source can be drained
	// without blocking. The merge commits to the snapshot as soon as it is
	// offered: implementations may treat the materializing call as
	// destructive (the sources are not pulled again afterwards).
	Snapshot func() ([]Sequence, bool)
	// Hooks report worker spans and partition seams of the partitioned
	// finish to the timeline trace; zero value = disabled.
	Hooks Hooks
}

// handoffPollEvery is how many outputs the streaming tree emits between
// Snapshot polls. Polling is O(sources) per call; 64 keeps it invisible
// while bounding the post-arrival sequential tail.
const handoffPollEvery = 64

// MergeStream merges the sources with a loser tree, pulling heads on
// demand, and returns the merged run and the number of characters
// inspected. The output is identical (strings, LCPs, satellites, work) to
// Merge/MergeLCP over the fully materialized runs.
func MergeStream(sources []Source, opt StreamOptions) (Sequence, int64) {
	out, work, _ := MergeStreamPar(sources, opt)
	return out, work
}

// MergeStreamPar is MergeStream with the parallel handoff enabled (see
// StreamOptions.Pool/Snapshot); it additionally returns the pool busy-ns
// accumulated by the partitioned finish.
func MergeStreamPar(sources []Source, opt StreamOptions) (Sequence, int64, int64) {
	k := 1
	for k < len(sources) {
		k <<= 1
	}
	st := getTreeState(k)
	t := &streamTree{
		k:       k,
		loser:   st.loser[:k],
		srcs:    sources,
		heads:   st.heads[:len(sources)],
		fetched: st.fetched[:len(sources)],
		curH:    st.curH[:len(sources)],
		useLCP:  opt.LCP,
		state:   st,
	}
	clear(t.fetched)
	clear(t.curH)
	out := Sequence{Strings: make([][]byte, 0)}
	if opt.LCP {
		out.LCPs = make([]int32, 0)
	}
	if opt.Sats {
		out.Sats = make([]uint64, 0)
	}
	handoff := opt.Snapshot != nil && opt.Pool != nil && !opt.Pool.Sequential()
	winner := t.initNode(1)
	first := true
	for {
		w := t.head(winner)
		if w == nil {
			break
		}
		if first {
			first = false
			if opt.OnFirstOutput != nil {
				opt.OnFirstOutput()
			}
		}
		out.Strings = append(out.Strings, w)
		if opt.LCP {
			out.LCPs = append(out.LCPs, t.curH[winner])
		}
		if opt.Sats {
			out.Sats = append(out.Sats, t.srcs[winner].HeadSat())
		}
		// Advance the winner's stream; the new head's LCP with the last
		// output is the stream's own LCP entry (see emit in merge.go).
		t.srcs[winner].Advance()
		t.fetched[winner] = false
		if t.useLCP {
			if t.head(winner) != nil {
				t.curH[winner] = t.srcs[winner].HeadLCP()
			} else {
				t.curH[winner] = 0
			}
		}
		// Replay the path from the winner's leaf to the root.
		node := (winner + t.k) / 2
		for node >= 1 {
			if t.less(t.loser[node], winner) {
				t.loser[node], winner = winner, t.loser[node]
			}
			node /= 2
		}
		// The tree is at a clean boundary (output emitted, stream advanced,
		// path replayed): the right moment to hand the rest to the pool.
		if handoff && len(out.Strings)%handoffPollEvery == 0 {
			if rem, ok := opt.Snapshot(); ok {
				t.winner = winner
				return finishPartitioned(t, rem, out, opt)
			}
		}
	}
	if opt.LCP && len(out.LCPs) > 0 {
		out.LCPs[0] = 0
	}
	work := t.work
	t.release()
	return out, work, 0
}

// finishPartitioned completes a streaming merge whose exchange has fully
// arrived: the live streamTree state is transplanted onto an eager tree
// over the materialized remainders (partition 0 — the sequential
// continuation), and further partitions are cut by multisequence selection
// and reseeded from their predecessor element exactly like MergePar. The
// returned work (prefix + all partitions), output strings, LCPs and
// satellites are byte-identical to the fully sequential streaming merge.
// Releases t's pooled state.
func finishPartitioned(t *streamTree, rem []Sequence, prefix Sequence, opt StreamOptions) (Sequence, int64, int64) {
	total := 0
	for _, s := range rem {
		total += s.Len()
	}
	if total == 0 {
		// The remainder is empty: the next head pull would have ended the
		// loop anyway.
		if opt.LCP && len(prefix.LCPs) > 0 {
			prefix.LCPs[0] = 0
		}
		work := t.work
		t.release()
		return prefix, work, 0
	}

	done := prefix.Len()
	out := Sequence{Strings: make([][]byte, done+total)}
	copy(out.Strings, prefix.Strings)
	if opt.LCP {
		out.LCPs = make([]int32, done+total)
		copy(out.LCPs, prefix.LCPs)
	}
	if opt.Sats {
		out.Sats = make([]uint64, done+total)
		copy(out.Sats, prefix.Sats)
	}

	// Transplant the live tree: rem[s].Strings[0] is the same arena slice
	// as the cached head of stream s, so an eager tree at pos=0 with the
	// streaming tree's losers, curH and winner is the exact continuation.
	et := newTree(rem, opt.LCP)
	if et.k != t.k {
		panic("merge: handoff tree size mismatch")
	}
	copy(et.loser, t.loser)
	copy(et.curH, t.curH)
	et.winner = t.winner
	et.work = t.work
	t.release()

	pool := opt.Pool
	parts := 1
	if min := resolveParMin(opt.ParMin); min >= 0 && total >= min {
		if parts = pool.Cores(); parts > total {
			parts = total
		}
	}

	if parts <= 1 {
		// Too little left to partition: finish on the transplanted tree.
		var lcps []int32
		if opt.LCP {
			lcps = out.LCPs[done:]
		}
		var sats []uint64
		if opt.Sats {
			sats = out.Sats[done:]
		}
		et.emit(total, out.Strings[done:], lcps, sats)
		work := et.work
		et.release()
		if opt.LCP {
			out.LCPs[0] = 0
		}
		return out, work, 0
	}

	runs := make([][][]byte, len(rem))
	for i, s := range rem {
		runs[i] = s.Strings
	}
	cuts := partition.SplitPoints(runs, nil, parts)
	bounds := make([]int, parts+1)
	for j := 1; j <= parts; j++ {
		n := 0
		for q := range runs {
			n += cuts[j][q]
		}
		bounds[j] = n
	}
	if opt.Hooks.OnPartition != nil {
		opt.Hooks.OnPartition(bounds)
	}

	works := make([]int64, parts)
	busy := pool.ForEachObs(parts, func(j int) {
		lo, hi := bounds[j], bounds[j+1]
		if lo == hi {
			// Unreachable (parts ≤ total makes every bound strictly
			// increasing), but partition 0's prefix work must never be lost.
			if j == 0 {
				works[j] = et.work
				et.release()
			}
			return
		}
		var lcps []int32
		if opt.LCP {
			lcps = out.LCPs[done+lo : done+hi]
		}
		var sats []uint64
		if opt.Sats {
			sats = out.Sats[done+lo : done+hi]
		}
		pt := et // partition 0 continues the transplanted tree
		if j > 0 {
			pt = newTree(rem, opt.LCP)
			copy(pt.pos, cuts[j])
			pt.reseed(predecessor(rem, cuts[j]))
		}
		pt.emit(hi-lo, out.Strings[done+lo:done+hi], lcps, sats)
		works[j] = pt.work
		pt.release()
	}, opt.Hooks.Obs)

	var work int64
	for _, w := range works {
		work += w
	}
	if opt.LCP {
		out.LCPs[0] = 0
	}
	return out, work, busy
}

// streamTree is the loser tree of merge.go with the head cache pulled from
// Sources instead of indexed slices. The comparison logic is shared with
// the eager tree through the lessHeads helpers so the two cannot drift,
// and the backing arrays come from the same size-classed pool.
type streamTree struct {
	k       int
	loser   []int
	srcs    []Source
	heads   [][]byte // cached current heads; valid where fetched
	fetched []bool
	curH    []int32
	useLCP  bool
	work    int64
	winner  int // stashed at handoff time for the transplant
	state   *treeState
}

// release returns the tree's backing arrays to the package pool.
func (t *streamTree) release() {
	putTreeState(t.state)
	t.state = nil
}

// head returns the cached head of stream s, pulling (and possibly
// blocking on) the source the first time after an Advance. nil is the +∞
// sentinel of an exhausted or padding stream.
func (t *streamTree) head(s int) []byte {
	if s >= len(t.srcs) {
		return nil
	}
	if !t.fetched[s] {
		h, ok := t.srcs[s].Head()
		if !ok {
			h = nil
		}
		t.heads[s] = h
		t.fetched[s] = true
	}
	return t.heads[s]
}

func (t *streamTree) less(a, b int) bool {
	if t.useLCP {
		return lessHeadsLCP(t.head(a), t.head(b), a, b, t.curH, &t.work)
	}
	return lessHeadsPlain(t.head(a), t.head(b), a, b, &t.work)
}

// initNode plays the initial tournament of the subtree rooted at node and
// returns its winner stream (identical to tree.initNode).
func (t *streamTree) initNode(node int) int {
	if node >= t.k {
		return node - t.k
	}
	l := t.initNode(2 * node)
	r := t.initNode(2*node + 1)
	if t.less(l, r) {
		t.loser[node] = r
		return l
	}
	t.loser[node] = l
	return r
}

// SliceSource adapts a fully materialized Sequence to the Source
// interface: the eager inputs replayed through the streaming front-end,
// used by the differential tests and by callers that mix ready and
// arriving runs.
type SliceSource struct {
	Seq Sequence
	pos int
}

// Head returns the current head of the sequence.
func (s *SliceSource) Head() ([]byte, bool) {
	if s.pos >= s.Seq.Len() {
		return nil, false
	}
	return s.Seq.Strings[s.pos], true
}

// HeadLCP returns the current head's LCP entry.
func (s *SliceSource) HeadLCP() int32 {
	if s.Seq.LCPs == nil {
		return 0
	}
	return s.Seq.LCPs[s.pos]
}

// HeadSat returns the current head's satellite word.
func (s *SliceSource) HeadSat() uint64 {
	if s.Seq.Sats == nil {
		return 0
	}
	return s.Seq.Sats[s.pos]
}

// Advance consumes the current head.
func (s *SliceSource) Advance() { s.pos++ }
