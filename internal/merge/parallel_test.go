package merge

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dss/internal/par"
)

// genSeqs builds k sorted runs with LCP arrays (and optional satellites)
// from a shared small alphabet, so equal strings and deep shared prefixes
// are common.
func genSeqs(rng *rand.Rand, k, maxLen int, sats bool) []Sequence {
	vocab := []string{"", "a", "ab", "abc", "abcd", "ax", "b", "ba", "bab", "c", "ca", "cab"}
	seqs := make([]Sequence, k)
	for q := 0; q < k; q++ {
		n := rng.Intn(maxLen + 1)
		strs := make([][]byte, n)
		for i := range strs {
			strs[i] = []byte(vocab[rng.Intn(len(vocab))])
		}
		sortRun(strs)
		seqs[q] = seqFromStrings(strs, sats, uint64(q))
	}
	return seqs
}

func sortRun(strs [][]byte) {
	for i := 1; i < len(strs); i++ {
		for j := i; j > 0 && bytes.Compare(strs[j], strs[j-1]) < 0; j-- {
			strs[j], strs[j-1] = strs[j-1], strs[j]
		}
	}
}

func seqFromStrings(strs [][]byte, sats bool, tag uint64) Sequence {
	s := Sequence{Strings: strs, LCPs: make([]int32, len(strs))}
	for i := 1; i < len(strs); i++ {
		l := 0
		for l < len(strs[i-1]) && l < len(strs[i]) && strs[i-1][l] == strs[i][l] {
			l++
		}
		s.LCPs[i] = int32(l)
	}
	if sats {
		s.Sats = make([]uint64, len(strs))
		for i := range s.Sats {
			s.Sats[i] = tag<<32 | uint64(i)
		}
	}
	return s
}

func requireEqualMerge(t *testing.T, label string, want, got Sequence, wantWork, gotWork int64) {
	t.Helper()
	if len(got.Strings) != len(want.Strings) {
		t.Fatalf("%s: %d strings, want %d", label, len(got.Strings), len(want.Strings))
	}
	for i := range want.Strings {
		if !bytes.Equal(got.Strings[i], want.Strings[i]) {
			t.Fatalf("%s: string %d = %q, want %q", label, i, got.Strings[i], want.Strings[i])
		}
	}
	if (got.LCPs == nil) != (want.LCPs == nil) || len(got.LCPs) != len(want.LCPs) {
		t.Fatalf("%s: LCP shape mismatch: got %d (nil=%v) want %d (nil=%v)",
			label, len(got.LCPs), got.LCPs == nil, len(want.LCPs), want.LCPs == nil)
	}
	for i := range want.LCPs {
		if got.LCPs[i] != want.LCPs[i] {
			t.Fatalf("%s: LCP %d = %d, want %d", label, i, got.LCPs[i], want.LCPs[i])
		}
	}
	if (got.Sats == nil) != (want.Sats == nil) || len(got.Sats) != len(want.Sats) {
		t.Fatalf("%s: satellite shape mismatch", label)
	}
	for i := range want.Sats {
		if got.Sats[i] != want.Sats[i] {
			t.Fatalf("%s: satellite %d = %d, want %d", label, i, got.Sats[i], want.Sats[i])
		}
	}
	if gotWork != wantWork {
		t.Fatalf("%s: work = %d, want %d", label, gotWork, wantWork)
	}
}

// TestMergeParMatchesSequential pins the tentpole contract: at every pool
// width the partitioned merge reproduces the sequential merge's strings,
// LCP array, satellites and character work exactly. parMin=1 forces the
// partitioned path even on tiny inputs.
func TestMergeParMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	widths := []int{1, 2, 3, 8}
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(9)
		sats := trial%3 == 0
		seqs := genSeqs(rng, k, 40, sats)
		for _, useLCP := range []bool{false, true} {
			var want Sequence
			var wantWork int64
			if useLCP {
				want, wantWork = MergeLCP(seqs)
			} else {
				want, wantWork = Merge(seqs)
			}
			for _, width := range widths {
				pool := par.New(width)
				var got Sequence
				var gotWork int64
				if useLCP {
					got, gotWork, _ = MergeLCPPar(pool, seqs, 1)
				} else {
					got, gotWork, _ = MergePar(pool, seqs, 1)
				}
				label := fmt.Sprintf("trial=%d k=%d lcp=%v sats=%v width=%d", trial, k, useLCP, sats, width)
				requireEqualMerge(t, label, want, got, wantWork, gotWork)
			}
		}
	}
}

// TestMergeParDisabled checks the threshold gates: negative parMin always
// runs sequentially, and inputs below the threshold do too (result still
// identical, busy = 0 because the pool is never engaged).
func TestMergeParDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seqs := genSeqs(rng, 5, 30, false)
	want, wantWork := MergeLCP(seqs)
	pool := par.New(4)

	got, work, busy := MergeLCPPar(pool, seqs, -1)
	requireEqualMerge(t, "parMin<0", want, got, wantWork, work)
	if busy != 0 {
		t.Fatalf("parMin<0: busy = %d, want 0", busy)
	}

	got, work, busy = MergeLCPPar(pool, seqs, 1<<20)
	requireEqualMerge(t, "below threshold", want, got, wantWork, work)
	if busy != 0 {
		t.Fatalf("below threshold: busy = %d, want 0", busy)
	}
}

// TestMergeStreamParHandoff drives the streaming merge over SliceSources
// with a Snapshot that starts succeeding after a countdown of polls, and
// checks the handed-off partitioned finish is byte-identical to the fully
// sequential streaming merge — including the work count — at several pool
// widths and handoff points.
func TestMergeStreamParHandoff(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	widths := []int{2, 3, 8}
	countdowns := []int{0, 1, 3}
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(6)
		sats := trial%2 == 0
		seqs := genSeqs(rng, k, 120, sats)
		for _, useLCP := range []bool{false, true} {
			opt := StreamOptions{LCP: useLCP, Sats: sats}
			want, wantWork := MergeStream(slices(seqs), opt)
			for _, width := range widths {
				for _, countdown := range countdowns {
					srcs := slices(seqs)
					polls := 0
					popt := opt
					popt.Pool = par.New(width)
					popt.ParMin = 1
					popt.Snapshot = func() ([]Sequence, bool) {
						if polls < countdown {
							polls++
							return nil, false
						}
						return remainders(srcs, seqs, sats), true
					}
					got, work, _ := MergeStreamPar(srcs, popt)
					label := fmt.Sprintf("trial=%d k=%d lcp=%v sats=%v width=%d countdown=%d",
						trial, k, useLCP, sats, width, countdown)
					requireEqualMerge(t, label, want, got, wantWork, work)
				}
			}
		}
	}
}

// TestMergeStreamParNoSnapshot pins the graceful fallback: a Snapshot that
// never reports ready leaves the merge fully sequential and identical.
func TestMergeStreamParNoSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seqs := genSeqs(rng, 4, 200, true)
	opt := StreamOptions{LCP: true, Sats: true}
	want, wantWork := MergeStream(slices(seqs), opt)

	popt := opt
	popt.Pool = par.New(4)
	popt.ParMin = 1
	popt.Snapshot = func() ([]Sequence, bool) { return nil, false }
	got, work, busy := MergeStreamPar(slices(seqs), popt)
	requireEqualMerge(t, "never-ready snapshot", want, got, wantWork, work)
	if busy != 0 {
		t.Fatalf("never-ready snapshot: busy = %d, want 0", busy)
	}
}

// slices wraps the sequences in fresh SliceSources.
func slices(seqs []Sequence) []Source {
	srcs := make([]Source, len(seqs))
	for i := range seqs {
		srcs[i] = &SliceSource{Seq: seqs[i]}
	}
	return srcs
}

// remainders materializes what is left of every source, entry 0 being the
// current un-advanced head — the shape core's snapshot produces.
func remainders(srcs []Source, seqs []Sequence, sats bool) []Sequence {
	rem := make([]Sequence, len(srcs))
	for i, s := range srcs {
		ss := s.(*SliceSource)
		rem[i] = Sequence{
			Strings: seqs[i].Strings[ss.pos:],
			LCPs:    seqs[i].LCPs[ss.pos:],
		}
		if sats {
			rem[i].Sats = seqs[i].Sats[ss.pos:]
		}
	}
	return rem
}

// FuzzMergeParallelEquivalence feeds arbitrary byte soup through both the
// sequential and partitioned merges (eager and streaming-handoff) at
// widths 1/2/3/8 and requires identical strings, LCPs, satellites and
// work at every width.
func FuzzMergeParallelEquivalence(f *testing.F) {
	f.Add([]byte("ab\x00abc\x01b\x02"), uint8(3))
	f.Add([]byte("\x00\x00\x01aaaa\x02aaab"), uint8(5))
	f.Add([]byte("x"), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8) {
		k := 1 + int(kRaw)%9
		// Deterministically slice data into k sorted runs.
		runs := make([][][]byte, k)
		for i, b := range data {
			q := int(b+byte(i)) % k
			runs[q] = append(runs[q], data[i:i+min(len(data)-i, 1+int(b)%7)])
		}
		seqs := make([]Sequence, k)
		for q := range runs {
			sortRun(runs[q])
			seqs[q] = seqFromStrings(runs[q], true, uint64(q))
		}
		for _, useLCP := range []bool{false, true} {
			var want Sequence
			var wantWork int64
			if useLCP {
				want, wantWork = MergeLCP(seqs)
			} else {
				want, wantWork = Merge(seqs)
			}
			for _, width := range []int{1, 2, 3, 8} {
				pool := par.New(width)
				var got Sequence
				var gotWork int64
				if useLCP {
					got, gotWork, _ = MergeLCPPar(pool, seqs, 1)
				} else {
					got, gotWork, _ = MergePar(pool, seqs, 1)
				}
				label := fmt.Sprintf("eager lcp=%v width=%d", useLCP, width)
				requireEqualMerge(t, label, want, got, wantWork, gotWork)
			}
			// Streaming with an immediate snapshot at width 3.
			srcs := slices(seqs)
			got, gotWork, _ := MergeStreamPar(srcs, StreamOptions{
				LCP:    useLCP,
				Sats:   true,
				Pool:   par.New(3),
				ParMin: 1,
				Snapshot: func() ([]Sequence, bool) {
					return remainders(srcs, seqs, true), true
				},
			})
			swant, swork := MergeStream(slices(seqs), StreamOptions{LCP: useLCP, Sats: true})
			requireEqualMerge(t, fmt.Sprintf("stream lcp=%v", useLCP), swant, got, swork, gotWork)
		}
	})
}
