package merge

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// randomRuns builds k independently sorted runs with correct LCP arrays
// and satellite words.
func randomRuns(rng *rand.Rand, k, maxLen int, sats bool) []Sequence {
	seqs := make([]Sequence, k)
	for i := range seqs {
		n := rng.Intn(maxLen + 1)
		ss := make([][]byte, n)
		for j := range ss {
			l := rng.Intn(12)
			s := make([]byte, l)
			for x := range s {
				s[x] = byte('a' + rng.Intn(3)) // small alphabet: long LCPs, many ties
			}
			ss[j] = s
		}
		sort.Slice(ss, func(a, b int) bool { return bytes.Compare(ss[a], ss[b]) < 0 })
		lcps := make([]int32, n)
		for j := 1; j < n; j++ {
			lcps[j] = lcpOf(ss[j-1], ss[j])
		}
		seqs[i] = Sequence{Strings: ss, LCPs: lcps}
		if sats {
			sv := make([]uint64, n)
			for j := range sv {
				sv[j] = uint64(i)<<32 | uint64(j)
			}
			seqs[i].Sats = sv
		}
	}
	return seqs
}

func lcpOf(a, b []byte) int32 {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return int32(i)
}

func sliceSources(seqs []Sequence) []Source {
	out := make([]Source, len(seqs))
	for i := range seqs {
		out[i] = &SliceSource{Seq: seqs[i]}
	}
	return out
}

func sequencesEqual(t *testing.T, label string, want, got Sequence) {
	t.Helper()
	if len(want.Strings) != len(got.Strings) {
		t.Fatalf("%s: %d strings, want %d", label, len(got.Strings), len(want.Strings))
	}
	for i := range want.Strings {
		if !bytes.Equal(want.Strings[i], got.Strings[i]) {
			t.Fatalf("%s: string %d is %q, want %q", label, i, got.Strings[i], want.Strings[i])
		}
	}
	if (want.LCPs == nil) != (got.LCPs == nil) || len(want.LCPs) != len(got.LCPs) {
		t.Fatalf("%s: LCP array shape differs", label)
	}
	for i := range want.LCPs {
		if want.LCPs[i] != got.LCPs[i] {
			t.Fatalf("%s: LCP %d is %d, want %d", label, i, got.LCPs[i], want.LCPs[i])
		}
	}
	for i := range want.Sats {
		if want.Sats[i] != got.Sats[i] {
			t.Fatalf("%s: sat %d is %d, want %d", label, i, got.Sats[i], want.Sats[i])
		}
	}
}

// TestMergeStreamMatchesEager is the work-count identity differential: the
// streaming tree over SliceSources must reproduce the eager merge exactly
// — strings, LCPs, satellites AND the character-work counter, which the
// model time is computed from — across run counts (including non-power-of-
// two tree paddings), LCP and plain modes, and satellite carriage.
func TestMergeStreamMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(9)
		sats := trial%3 == 0
		seqs := randomRuns(rng, k, 40, sats)

		wantLCP, workLCP := MergeLCP(cloneSeqs(seqs))
		gotLCP, workStreamLCP := MergeStream(sliceSources(seqs), StreamOptions{LCP: true, Sats: sats})
		sequencesEqual(t, "lcp", wantLCP, gotLCP)
		if workLCP != workStreamLCP {
			t.Fatalf("trial %d: LCP work %d, want %d (k=%d)", trial, workStreamLCP, workLCP, k)
		}

		wantPlain, workPlain := Merge(cloneSeqs(seqs))
		gotPlain, workStreamPlain := MergeStream(sliceSources(seqs), StreamOptions{Sats: sats})
		sequencesEqual(t, "plain", Sequence{Strings: wantPlain.Strings, Sats: wantPlain.Sats}, gotPlain)
		if workPlain != workStreamPlain {
			t.Fatalf("trial %d: plain work %d, want %d (k=%d)", trial, workStreamPlain, workPlain, k)
		}
	}
}

// cloneSeqs guards against in-place mutation: the eager and streaming
// merges must both see pristine inputs.
func cloneSeqs(seqs []Sequence) []Sequence {
	out := make([]Sequence, len(seqs))
	copy(out, seqs)
	return out
}

// TestMergeStreamFirstOutputHook pins the merge-start milestone semantics:
// invoked exactly once, before the first output, and never for an empty
// merge.
func TestMergeStreamFirstOutputHook(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqs := randomRuns(rng, 4, 20, false)
	calls := 0
	out, _ := MergeStream(sliceSources(seqs), StreamOptions{LCP: true, OnFirstOutput: func() { calls++ }})
	if len(out.Strings) > 0 && calls != 1 {
		t.Fatalf("OnFirstOutput called %d times, want 1", calls)
	}
	empty := []Sequence{{}, {}}
	calls = 0
	if out, _ := MergeStream(sliceSources(empty), StreamOptions{OnFirstOutput: func() { calls++ }}); len(out.Strings) != 0 || calls != 0 {
		t.Fatalf("empty merge: %d outputs, %d hook calls", len(out.Strings), calls)
	}
}

// growingSource simulates an incremental run reader: strings materialize
// on demand into an append-only arena that REALLOCATES as it grows — the
// exact storage behavior of wire.RunReader. Earlier heads keep pointing at
// the superseded backing arrays, which is legal under the aliasing
// contract (append-only, never overwritten); the merge output must come
// out intact even though the arena moved many times mid-merge.
type growingSource struct {
	encoded [][]byte // the run's strings, copied in lazily
	lcps    []int32
	arena   []byte
	pos     int
	head    []byte
	has     bool
}

func (g *growingSource) Head() ([]byte, bool) {
	if g.pos >= len(g.encoded) {
		return nil, false
	}
	if !g.has {
		// Decode on demand: append into the shared arena, forcing periodic
		// reallocation (the arena starts tiny and never reserves).
		off := len(g.arena)
		g.arena = append(g.arena, g.encoded[g.pos]...)
		end := len(g.arena)
		g.head = g.arena[off:end:end]
		g.has = true
	}
	return g.head, true
}

func (g *growingSource) HeadLCP() int32  { return g.lcps[g.pos] }
func (g *growingSource) HeadSat() uint64 { return 0 }
func (g *growingSource) Advance()        { g.pos++; g.has = false }

// TestMergeStreamAliasingContract enforces the documented Source contract
// end to end: heads that live in append-only arenas stay valid across
// arena growth (reallocation), so the merged output — which aliases the
// heads, exactly like the eager merge aliases its input runs — must be
// byte-identical to the eager reference. This is the latent bug class of
// resumable readers: a source that RECYCLED head storage instead of
// growing it would corrupt the output silently (wire.RunReader's
// no-chunk-aliasing test covers that half).
func TestMergeStreamAliasingContract(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seqs := randomRuns(rng, 5, 60, false)
	want, _ := MergeLCP(cloneSeqs(seqs))
	srcs := make([]Source, len(seqs))
	for i, s := range seqs {
		srcs[i] = &growingSource{encoded: s.Strings, lcps: s.LCPs, arena: make([]byte, 0, 1)}
	}
	got, _ := MergeStream(srcs, StreamOptions{LCP: true})
	sequencesEqual(t, "aliasing", want, got)
}
