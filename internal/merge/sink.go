// Sink-mode streaming merge: the out-of-core drain of the loser tree.
// MergeStreamSink is MergeStream with the output Sequence replaced by a
// per-item callback, so the merged run never accumulates in memory — the
// budgeted pipeline points the sink at a sorted-run file writer and
// recycles each source's arena as its strings are consumed.
package merge

// Sink receives one merged item: the string, its LCP with the previous
// output (0 for the first; 0 throughout for non-LCP merges) and its
// satellite word (0 without Sats). The string is only guaranteed valid for
// the duration of the call — sources may recycle their arenas once their
// string has been sunk — so a sink that keeps it must copy.
type Sink func(s []byte, lcp int32, sat uint64) error

// MergeStreamSink merges the sources through the streaming loser tree and
// pushes every output item into sink, in order. The item sequence
// (strings, LCPs, satellites) and the returned character work are
// bit-identical to MergeStream over the same sources: the two share the
// tree and its comparators. The merge is deliberately sequential — an
// incrementally written output file has no partition boundaries to hand
// off to — so opt.Pool and opt.Snapshot are ignored; opt.OnFirstOutput is
// honored. A sink error aborts the merge and is returned; sources are left
// mid-run (the caller's cleanup owns them).
func MergeStreamSink(sources []Source, opt StreamOptions, sink Sink) (n int64, work int64, err error) {
	k := 1
	for k < len(sources) {
		k <<= 1
	}
	st := getTreeState(k)
	t := &streamTree{
		k:       k,
		loser:   st.loser[:k],
		srcs:    sources,
		heads:   st.heads[:len(sources)],
		fetched: st.fetched[:len(sources)],
		curH:    st.curH[:len(sources)],
		useLCP:  opt.LCP,
		state:   st,
	}
	clear(t.fetched)
	clear(t.curH)
	defer t.release()

	winner := t.initNode(1)
	first := true
	for {
		w := t.head(winner)
		if w == nil {
			break
		}
		lcp := int32(0)
		if opt.LCP && !first {
			lcp = t.curH[winner]
		}
		var sat uint64
		if opt.Sats {
			sat = t.srcs[winner].HeadSat()
		}
		if first {
			first = false
			if opt.OnFirstOutput != nil {
				opt.OnFirstOutput()
			}
		}
		if err := sink(w, lcp, sat); err != nil {
			return n, t.work, err
		}
		n++
		t.srcs[winner].Advance()
		t.fetched[winner] = false
		if t.useLCP {
			if t.head(winner) != nil {
				t.curH[winner] = t.srcs[winner].HeadLCP()
			} else {
				t.curH[winner] = 0
			}
		}
		node := (winner + t.k) / 2
		for node >= 1 {
			if t.less(t.loser[node], winner) {
				t.loser[node], winner = winner, t.loser[node]
			}
			node /= 2
		}
	}
	return n, t.work, nil
}
