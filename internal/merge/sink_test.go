package merge

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestMergeStreamSinkMatchesStream is the sink-mode differential: pushing
// the merge through a per-item callback must reproduce MergeStream exactly
// — strings, LCPs, satellites, item count AND the character-work counter
// the model time is billed from — across run counts, LCP/plain modes and
// satellite carriage. This is what licenses the budgeted pipeline to swap
// the accumulating merge for the sink drain without touching model stats.
func TestMergeStreamSinkMatchesStream(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(9)
		useLCP := trial%2 == 0
		sats := trial%3 == 0
		seqs := randomRuns(rng, k, 40, sats)
		opt := StreamOptions{LCP: useLCP, Sats: sats}

		want, wantWork := MergeStream(sliceSources(seqs), opt)

		var got Sequence
		firstCalls := 0
		optSink := opt
		optSink.OnFirstOutput = func() { firstCalls++ }
		n, work, err := MergeStreamSink(sliceSources(seqs), optSink,
			func(s []byte, lcp int32, sat uint64) error {
				got.Strings = append(got.Strings, append([]byte(nil), s...))
				if useLCP {
					got.LCPs = append(got.LCPs, lcp)
				}
				if sats {
					got.Sats = append(got.Sats, sat)
				}
				return nil
			})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != int64(len(want.Strings)) {
			t.Fatalf("trial %d: sink saw %d items, want %d", trial, n, len(want.Strings))
		}
		if work != wantWork {
			t.Fatalf("trial %d: sink work %d, want %d (k=%d lcp=%v)", trial, work, wantWork, k, useLCP)
		}
		if len(want.Strings) > 0 && firstCalls != 1 {
			t.Fatalf("trial %d: OnFirstOutput called %d times, want 1", trial, firstCalls)
		}
		if !useLCP {
			want.LCPs = nil
		}
		sequencesEqual(t, "sink", want, got)
	}
}

// TestMergeStreamSinkErrorAborts pins the abort contract: a sink error
// stops the merge immediately and is returned verbatim, with n reflecting
// only the items successfully sunk.
func TestMergeStreamSinkErrorAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seqs := randomRuns(rng, 4, 30, false)
	total := 0
	for _, s := range seqs {
		total += s.Len()
	}
	if total < 8 {
		t.Fatal("instance too small for the abort test")
	}
	boom := errors.New("sink full")
	calls := 0
	n, _, err := MergeStreamSink(sliceSources(seqs), StreamOptions{LCP: true},
		func(s []byte, lcp int32, sat uint64) error {
			calls++
			if calls == 5 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got err %v, want the sink error", err)
	}
	if calls != 5 || n != 4 {
		t.Fatalf("sink called %d times with n=%d, want 5 calls and n=4", calls, n)
	}
}

// TestMergeStreamSinkEmptyAndAliasing covers the edges: an all-empty merge
// never invokes sink or OnFirstOutput, and the sunk string may alias a
// source arena only for the duration of the call (the test mutates its copy
// and re-checks nothing downstream changed).
func TestMergeStreamSinkEmptyAndAliasing(t *testing.T) {
	calls := 0
	n, work, err := MergeStreamSink(sliceSources([]Sequence{{}, {}, {}}),
		StreamOptions{OnFirstOutput: func() { calls++ }},
		func(s []byte, lcp int32, sat uint64) error { calls++; return nil })
	if err != nil || n != 0 || work != 0 || calls != 0 {
		t.Fatalf("empty merge: n=%d work=%d calls=%d err=%v, want all zero", n, work, calls, err)
	}

	seqs := []Sequence{
		{Strings: [][]byte{[]byte("aa"), []byte("cc")}, LCPs: []int32{0, 0}},
		{Strings: [][]byte{[]byte("bb")}, LCPs: []int32{0}},
	}
	var got [][]byte
	_, _, err = MergeStreamSink(sliceSources(seqs), StreamOptions{LCP: true},
		func(s []byte, lcp int32, sat uint64) error {
			got = append(got, append([]byte(nil), s...))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("item %d: got %q want %q", i, got[i], want[i])
		}
	}
}
