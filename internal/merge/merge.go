// Package merge implements K-way merging of sorted string runs with loser
// trees (tournament trees): the classic atomic variant used by the FKmerge
// baseline, and the LCP-aware variant of Section II-B of the paper
// [Bingmann, Eberle, Sanders: Engineering Parallel String Sorting], which
// merges m strings with at most m·log K + ΔL character comparisons, where
// ΔL is the total increment of the LCP array entries — every character is
// inspected only once across the whole merge.
//
// Both variants optionally carry one word of satellite data per string
// through the merge and break ties by input run index, making the merge
// stable with respect to the run order (runs arrive ordered by source PE,
// so equal strings stay ordered by origin).
package merge

import (
	"dss/internal/strutil"
)

// Sequence is one sorted input run and the merged output format.
type Sequence struct {
	Strings [][]byte
	LCPs    []int32  // LCPs[i] = LCP(Strings[i-1], Strings[i]); LCPs[0] = 0
	Sats    []uint64 // optional satellite data, parallel to Strings
}

// Len returns the number of strings in the sequence.
func (s Sequence) Len() int { return len(s.Strings) }

// Merge performs a K-way merge with a plain (non-LCP) loser tree, the
// merging strategy of FKmerge and MS-simple. Input LCP arrays are ignored;
// the output has no LCP array. Returns the merged run and the number of
// characters inspected.
func Merge(seqs []Sequence) (Sequence, int64) {
	out, work, _ := MergePar(nil, seqs, -1)
	return out, work
}

// MergeLCP performs a K-way merge with the LCP loser tree: it consumes the
// runs' LCP arrays, inspects each character at most once, and produces the
// LCP array of the output.
func MergeLCP(seqs []Sequence) (Sequence, int64) {
	out, work, _ := MergeLCPPar(nil, seqs, -1)
	return out, work
}

// tree is the array-based loser tree over K streams (K padded to a power
// of two with exhausted sentinel streams). Internal nodes 1..k-1 store the
// loser stream of the comparison at that node; leaves are implicit. The
// backing arrays come from the size-classed package pool (pool.go).
type tree struct {
	k      int   // number of leaves, power of two
	loser  []int // loser[node] for node in [1,k)
	pos    []int // per-stream read position
	seqs   []Sequence
	curH   []int32 // per-stream LCP of current head with the last output
	useLCP bool
	work   int64
	winner int // current overall winner (valid after init/reseed)
	state  *treeState
}

// newTree builds a tree over the sequences with pooled, zeroed state.
// Callers position it with copy(t.pos, ...) if they start mid-run, then
// call init (billed) or reseed (unbilled) before emit.
func newTree(seqs []Sequence, useLCP bool) *tree {
	k := 1
	for k < len(seqs) {
		k <<= 1
	}
	st := getTreeState(k)
	t := &tree{
		k:      k,
		loser:  st.loser[:k],
		pos:    st.pos[:len(seqs)],
		seqs:   seqs,
		curH:   st.curH[:len(seqs)],
		useLCP: useLCP,
		state:  st,
	}
	clear(t.pos)
	clear(t.curH)
	return t
}

// release returns the tree's backing arrays to the package pool. The tree
// must not be used afterwards.
func (t *tree) release() {
	putTreeState(t.state)
	t.state = nil
}

func (t *tree) head(s int) []byte {
	if s >= len(t.seqs) || t.pos[s] >= t.seqs[s].Len() {
		return nil // exhausted: +∞ sentinel
	}
	return t.seqs[s].Strings[t.pos[s]]
}

// lessHeadsPlain compares stream heads with full comparisons; nil is +∞
// and ties break toward the lower stream index. Shared verbatim between
// the eager and streaming trees so the comparison sequences — and with
// them the work counts — cannot drift apart.
func lessHeadsPlain(sa, sb []byte, a, b int, work *int64) bool {
	switch {
	case sa == nil && sb == nil:
		return a < b
	case sa == nil:
		return false
	case sb == nil:
		return true
	}
	cmp, lcp := strutil.CompareLCP(sa, sb, 0)
	*work += int64(lcp + 1)
	if cmp == 0 {
		return a < b
	}
	return cmp < 0
}

// lessHeadsLCP compares stream heads using the LCP-compare rule: both
// heads are ≥ the last output w and curH[s] = LCP(head(s), w), so if the
// curH values differ the head with the longer shared prefix is smaller,
// without looking at a single character. On equality it compares from the
// shared prefix and updates the loser's curH to LCP(a, b) so the invariant
// (curH of a node's loser = LCP with the winner that passed the node) is
// maintained. Shared between the eager and streaming trees.
func lessHeadsLCP(sa, sb []byte, a, b int, curH []int32, work *int64) bool {
	switch {
	case sa == nil && sb == nil:
		return a < b
	case sa == nil:
		return false
	case sb == nil:
		return true
	}
	ha, hb := curH[a], curH[b]
	switch {
	case ha > hb:
		// a shares more with w: a < b, and LCP(a,b) = hb = curH[b]. b is
		// the loser and its curH already equals LCP with the new winner.
		return true
	case ha < hb:
		return false
	default:
		cmp, lcp := strutil.CompareLCP(sa, sb, int(ha))
		*work += int64(lcp - int(ha) + 1)
		if cmp < 0 || (cmp == 0 && a < b) {
			curH[b] = int32(lcp) // b loses to a
			return true
		}
		curH[a] = int32(lcp) // a loses to b
		return false
	}
}

func (t *tree) less(a, b int) bool {
	if t.useLCP {
		return lessHeadsLCP(t.head(a), t.head(b), a, b, t.curH, &t.work)
	}
	return lessHeadsPlain(t.head(a), t.head(b), a, b, &t.work)
}

// initNode plays the initial tournament of the subtree rooted at node and
// returns its winner stream.
func (t *tree) initNode(node int) int {
	if node >= t.k {
		return node - t.k
	}
	l := t.initNode(2 * node)
	r := t.initNode(2*node + 1)
	if t.less(l, r) {
		t.loser[node] = r
		return l
	}
	t.loser[node] = l
	return r
}

// init plays the initial tournament, billing its comparisons to the work
// counter — the sequential merge's (and partition 0's) tree build.
func (t *tree) init() {
	t.winner = t.initNode(1)
}

// reseed rebuilds the tree state a sequential merge would have at the
// current positions, WITHOUT billing any work — the entry point of
// partitions j ≥ 1 of the parallel merge. wPrev is the output element
// immediately preceding this partition's range (the maximal last-selected
// element under the merge's (string, run) tie order).
//
// Why this reproduces the sequential state exactly: a loser tree over a
// strict total order is a pure function of the current heads — at every
// node the passed-up winner is the subtree minimum and loser[node] is the
// other sub-winner, regardless of the insertion history. For the LCP tree
// the canonical curH values are LCP(head, w) for every stream whose head
// a comparison has not yet demoted, and LCP(loser, winner-at-its-node) for
// the demoted ones; seeding curH[s] = LCP(head(s), wPrev) and replaying
// the tournament restores precisely that (lessHeadsLCP's side effects
// install the losers' values). With identical state, the subsequent emit
// replays the sequential merge's comparison sequence character for
// character, so the BILLED work of all partitions sums to the sequential
// total.
func (t *tree) reseed(wPrev []byte) {
	if t.useLCP {
		for s := range t.seqs {
			if h := t.head(s); h != nil {
				t.curH[s] = int32(strutil.LCP(h, wPrev))
			} else {
				t.curH[s] = 0
			}
		}
	}
	// Play the tournament with the work counter parked: the comparisons
	// (and their curH side effects) happen, the characters they inspect are
	// bookkeeping of the partitioned schedule, not merge work — the
	// sequential merge never performs them.
	saved := t.work
	t.winner = t.initNode(1)
	t.work = saved
}

// emit produces the next n merged outputs with indexed writes into the
// caller's (sub)slices: strings must have length ≥ n; lcps and sats may be
// nil when the caller wants no LCP/satellite output.
func (t *tree) emit(n int, strings [][]byte, lcps []int32, sats []uint64) {
	w := t.winner
	for i := 0; i < n; i++ {
		strings[i] = t.head(w)
		if lcps != nil {
			lcps[i] = t.curH[w]
		}
		if sats != nil {
			var v uint64
			if t.seqs[w].Sats != nil {
				v = t.seqs[w].Sats[t.pos[w]]
			}
			sats[i] = v
		}
		// Advance the winner's stream: the new head's LCP with the last
		// output is exactly the stream's own LCP entry, because the last
		// output was the previous element of that stream.
		t.pos[w]++
		if t.useLCP {
			if t.pos[w] < t.seqs[w].Len() {
				t.curH[w] = t.seqs[w].LCPs[t.pos[w]]
			} else {
				t.curH[w] = 0
			}
		}
		// Replay the path from the winner's leaf to the root.
		node := (w + t.k) / 2
		for node >= 1 {
			if t.less(t.loser[node], w) {
				t.loser[node], w = w, t.loser[node]
			}
			node /= 2
		}
	}
	t.winner = w
}

func appendSats(dst []uint64, s Sequence, n int) []uint64 {
	if s.Sats != nil {
		return append(dst, s.Sats[:n]...)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	return dst
}
