// Package merge implements K-way merging of sorted string runs with loser
// trees (tournament trees): the classic atomic variant used by the FKmerge
// baseline, and the LCP-aware variant of Section II-B of the paper
// [Bingmann, Eberle, Sanders: Engineering Parallel String Sorting], which
// merges m strings with at most m·log K + ΔL character comparisons, where
// ΔL is the total increment of the LCP array entries — every character is
// inspected only once across the whole merge.
//
// Both variants optionally carry one word of satellite data per string
// through the merge and break ties by input run index, making the merge
// stable with respect to the run order (runs arrive ordered by source PE,
// so equal strings stay ordered by origin).
package merge

import (
	"dss/internal/strutil"
)

// Sequence is one sorted input run and the merged output format.
type Sequence struct {
	Strings [][]byte
	LCPs    []int32  // LCPs[i] = LCP(Strings[i-1], Strings[i]); LCPs[0] = 0
	Sats    []uint64 // optional satellite data, parallel to Strings
}

// Len returns the number of strings in the sequence.
func (s Sequence) Len() int { return len(s.Strings) }

// Merge performs a K-way merge with a plain (non-LCP) loser tree, the
// merging strategy of FKmerge and MS-simple. Input LCP arrays are ignored;
// the output has no LCP array. Returns the merged run and the number of
// characters inspected.
func Merge(seqs []Sequence) (Sequence, int64) {
	return run(seqs, false)
}

// MergeLCP performs a K-way merge with the LCP loser tree: it consumes the
// runs' LCP arrays, inspects each character at most once, and produces the
// LCP array of the output.
func MergeLCP(seqs []Sequence) (Sequence, int64) {
	return run(seqs, true)
}

// tree is the array-based loser tree over K streams (K padded to a power
// of two with exhausted sentinel streams). Internal nodes 1..k-1 store the
// loser stream of the comparison at that node; leaves are implicit.
type tree struct {
	k      int   // number of leaves, power of two
	loser  []int // loser[node] for node in [1,k)
	pos    []int // per-stream read position
	seqs   []Sequence
	curH   []int32 // per-stream LCP of current head with the last output
	useLCP bool
	work   int64
}

func (t *tree) head(s int) []byte {
	if s >= len(t.seqs) || t.pos[s] >= t.seqs[s].Len() {
		return nil // exhausted: +∞ sentinel
	}
	return t.seqs[s].Strings[t.pos[s]]
}

// lessHeadsPlain compares stream heads with full comparisons; nil is +∞
// and ties break toward the lower stream index. Shared verbatim between
// the eager and streaming trees so the comparison sequences — and with
// them the work counts — cannot drift apart.
func lessHeadsPlain(sa, sb []byte, a, b int, work *int64) bool {
	switch {
	case sa == nil && sb == nil:
		return a < b
	case sa == nil:
		return false
	case sb == nil:
		return true
	}
	cmp, lcp := strutil.CompareLCP(sa, sb, 0)
	*work += int64(lcp + 1)
	if cmp == 0 {
		return a < b
	}
	return cmp < 0
}

// lessHeadsLCP compares stream heads using the LCP-compare rule: both
// heads are ≥ the last output w and curH[s] = LCP(head(s), w), so if the
// curH values differ the head with the longer shared prefix is smaller,
// without looking at a single character. On equality it compares from the
// shared prefix and updates the loser's curH to LCP(a, b) so the invariant
// (curH of a node's loser = LCP with the winner that passed the node) is
// maintained. Shared between the eager and streaming trees.
func lessHeadsLCP(sa, sb []byte, a, b int, curH []int32, work *int64) bool {
	switch {
	case sa == nil && sb == nil:
		return a < b
	case sa == nil:
		return false
	case sb == nil:
		return true
	}
	ha, hb := curH[a], curH[b]
	switch {
	case ha > hb:
		// a shares more with w: a < b, and LCP(a,b) = hb = curH[b]. b is
		// the loser and its curH already equals LCP with the new winner.
		return true
	case ha < hb:
		return false
	default:
		cmp, lcp := strutil.CompareLCP(sa, sb, int(ha))
		*work += int64(lcp - int(ha) + 1)
		if cmp < 0 || (cmp == 0 && a < b) {
			curH[b] = int32(lcp) // b loses to a
			return true
		}
		curH[a] = int32(lcp) // a loses to b
		return false
	}
}

func (t *tree) less(a, b int) bool {
	if t.useLCP {
		return lessHeadsLCP(t.head(a), t.head(b), a, b, t.curH, &t.work)
	}
	return lessHeadsPlain(t.head(a), t.head(b), a, b, &t.work)
}

// initNode plays the initial tournament of the subtree rooted at node and
// returns its winner stream.
func (t *tree) initNode(node int) int {
	if node >= t.k {
		return node - t.k
	}
	l := t.initNode(2 * node)
	r := t.initNode(2*node + 1)
	if t.less(l, r) {
		t.loser[node] = r
		return l
	}
	t.loser[node] = l
	return r
}

// run merges the sequences.
func run(seqs []Sequence, useLCP bool) (Sequence, int64) {
	total := 0
	streams := 0
	anySats := false
	for _, s := range seqs {
		total += s.Len()
		if s.Len() > 0 {
			streams++
		}
		if s.Sats != nil {
			anySats = true
		}
		if useLCP && s.Len() > 0 && s.LCPs == nil {
			panic("merge: MergeLCP requires input LCP arrays")
		}
		if s.Sats != nil && len(s.Sats) != s.Len() {
			panic("merge: satellite length mismatch")
		}
		if s.LCPs != nil && len(s.LCPs) != s.Len() {
			panic("merge: lcp length mismatch")
		}
	}
	out := Sequence{Strings: make([][]byte, 0, total)}
	if useLCP {
		out.LCPs = make([]int32, 0, total)
	}
	if anySats {
		out.Sats = make([]uint64, 0, total)
	}
	if total == 0 {
		return out, 0
	}
	// Fast path: a single non-empty stream passes through.
	if streams == 1 {
		for _, s := range seqs {
			if s.Len() == 0 {
				continue
			}
			out.Strings = append(out.Strings, s.Strings...)
			if useLCP {
				out.LCPs = append(out.LCPs, s.LCPs...)
				if len(out.LCPs) > 0 {
					out.LCPs[0] = 0
				}
			}
			if anySats {
				out.Sats = appendSats(out.Sats, s, s.Len())
			}
		}
		return out, 0
	}

	k := 1
	for k < len(seqs) {
		k <<= 1
	}
	t := &tree{
		k:      k,
		loser:  make([]int, k),
		pos:    make([]int, len(seqs)),
		seqs:   seqs,
		curH:   make([]int32, len(seqs)),
		useLCP: useLCP,
	}
	winner := t.initNode(1)
	for produced := 0; produced < total; produced++ {
		w := t.head(winner)
		out.Strings = append(out.Strings, w)
		if useLCP {
			out.LCPs = append(out.LCPs, t.curH[winner])
		}
		if anySats {
			s := seqs[winner]
			var v uint64
			if s.Sats != nil {
				v = s.Sats[t.pos[winner]]
			}
			out.Sats = append(out.Sats, v)
		}
		// Advance the winner's stream: the new head's LCP with the last
		// output w is exactly the stream's own LCP entry, because w was
		// the previous element of that stream.
		t.pos[winner]++
		if useLCP {
			if t.pos[winner] < seqs[winner].Len() {
				t.curH[winner] = seqs[winner].LCPs[t.pos[winner]]
			} else {
				t.curH[winner] = 0
			}
		}
		// Replay the path from the winner's leaf to the root.
		node := (winner + t.k) / 2
		for node >= 1 {
			if t.less(t.loser[node], winner) {
				t.loser[node], winner = winner, t.loser[node]
			}
			node /= 2
		}
	}
	if useLCP && len(out.LCPs) > 0 {
		out.LCPs[0] = 0
	}
	return out, t.work
}

func appendSats(dst []uint64, s Sequence, n int) []uint64 {
	if s.Sats != nil {
		return append(dst, s.Sats[:n]...)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	return dst
}
