package merge

import (
	"math/bits"
	"sync"
)

// treeState is the pooled backing store shared by the eager tree and the
// streaming tree: all arrays have capacity ≥ the padded leaf count of the
// tree that borrowed them. heads/fetched are only used by streamTree.
type treeState struct {
	loser   []int
	pos     []int
	curH    []int32
	heads   [][]byte
	fetched []bool
}

// treePools holds one sync.Pool per power-of-two size class, mirroring
// strsort.GetSized/Put: merges of similar K reuse each other's arrays, and
// the padded sentinel state stops being a per-merge allocation.
var treePools [bits.UintSize + 1]sync.Pool

func stateClass(k int) int { return bits.Len(uint(k)) }

func getTreeState(k int) *treeState {
	if st, _ := treePools[stateClass(k)].Get().(*treeState); st != nil && cap(st.loser) >= k {
		return st
	}
	return &treeState{
		loser:   make([]int, k),
		pos:     make([]int, k),
		curH:    make([]int32, k),
		heads:   make([][]byte, k),
		fetched: make([]bool, k),
	}
}

func putTreeState(st *treeState) {
	if st == nil {
		return
	}
	// Drop string references so pooled state never pins input arenas.
	clear(st.heads[:cap(st.heads)])
	clear(st.fetched[:cap(st.fetched)])
	treePools[stateClass(cap(st.loser))].Put(st)
}
