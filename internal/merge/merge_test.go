package merge

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"dss/internal/strsort"
	"dss/internal/strutil"
)

// makeRuns splits random strings into k sorted runs with LCP arrays.
func makeRuns(rng *rand.Rand, k, total, maxLen, sigma int) ([]Sequence, [][]byte) {
	all := make([][]byte, total)
	for i := range all {
		l := rng.Intn(maxLen + 1)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('a' + rng.Intn(sigma))
		}
		all[i] = s
	}
	seqs := make([]Sequence, k)
	for i, s := range all {
		r := rng.Intn(k)
		seqs[r].Strings = append(seqs[r].Strings, s)
		_ = i
	}
	for r := range seqs {
		lcp, _ := strsort.SortLCP(seqs[r].Strings, nil)
		seqs[r].LCPs = lcp
	}
	ref := strutil.Clone(all)
	sort.Slice(ref, func(i, j int) bool { return bytes.Compare(ref[i], ref[j]) < 0 })
	return seqs, ref
}

func TestMergeLCPRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(9)
		total := rng.Intn(500)
		seqs, ref := makeRuns(rng, k, total, 15, 2)
		out, _ := MergeLCP(seqs)
		if out.Len() != len(ref) {
			t.Fatalf("trial %d: merged %d strings, want %d", trial, out.Len(), len(ref))
		}
		for i := range ref {
			if !bytes.Equal(out.Strings[i], ref[i]) {
				t.Fatalf("trial %d: position %d: got %q, want %q", trial, i, out.Strings[i], ref[i])
			}
		}
		if i := strutil.ValidateLCPArray(out.Strings, out.LCPs); i >= 0 {
			t.Fatalf("trial %d: wrong output LCP at %d", trial, i)
		}
	}
}

func TestMergePlainRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(6)
		seqs, ref := makeRuns(rng, k, rng.Intn(400), 10, 3)
		out, _ := Merge(seqs)
		for i := range ref {
			if !bytes.Equal(out.Strings[i], ref[i]) {
				t.Fatalf("trial %d: position %d mismatch", trial, i)
			}
		}
		if out.LCPs != nil {
			t.Fatal("plain merge must not output LCPs")
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	// No sequences.
	out, _ := MergeLCP(nil)
	if out.Len() != 0 {
		t.Fatal("empty merge produced output")
	}
	// All empty sequences.
	out, _ = MergeLCP([]Sequence{{}, {}, {}})
	if out.Len() != 0 {
		t.Fatal("empty sequences produced output")
	}
	// Single stream passes through.
	ss := [][]byte{[]byte("a"), []byte("ab"), []byte("b")}
	lcp := strutil.ComputeLCPArray(ss)
	out, work := MergeLCP([]Sequence{{}, {Strings: ss, LCPs: lcp}, {}})
	if out.Len() != 3 || work != 0 {
		t.Fatalf("single stream: len=%d work=%d", out.Len(), work)
	}
	if i := strutil.ValidateLCPArray(out.Strings, out.LCPs); i >= 0 {
		t.Fatalf("single stream LCP wrong at %d", i)
	}
}

func TestMergeWithEmptyStringsAndDuplicates(t *testing.T) {
	a := [][]byte{[]byte(""), []byte(""), []byte("x")}
	b := [][]byte{[]byte(""), []byte("x"), []byte("x")}
	seqs := []Sequence{
		{Strings: a, LCPs: strutil.ComputeLCPArray(a)},
		{Strings: b, LCPs: strutil.ComputeLCPArray(b)},
	}
	out, _ := MergeLCP(seqs)
	want := []string{"", "", "", "x", "x", "x"}
	for i, w := range want {
		if string(out.Strings[i]) != w {
			t.Fatalf("position %d: %q", i, out.Strings[i])
		}
	}
	if i := strutil.ValidateLCPArray(out.Strings, out.LCPs); i >= 0 {
		t.Fatalf("LCP wrong at %d", i)
	}
}

func TestMergeStableByRunIndex(t *testing.T) {
	// Equal strings must come out ordered by input run index (origin PE).
	a := [][]byte{[]byte("dup")}
	b := [][]byte{[]byte("dup")}
	c := [][]byte{[]byte("dup")}
	seqs := []Sequence{
		{Strings: a, LCPs: []int32{0}, Sats: []uint64{0}},
		{Strings: b, LCPs: []int32{0}, Sats: []uint64{1}},
		{Strings: c, LCPs: []int32{0}, Sats: []uint64{2}},
	}
	out, _ := MergeLCP(seqs)
	for i := 0; i < 3; i++ {
		if out.Sats[i] != uint64(i) {
			t.Fatalf("stability violated: sats = %v", out.Sats)
		}
	}
}

func TestMergeSatellites(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seqs, _ := makeRuns(rng, 4, 200, 8, 2)
	// Tag every string with a unique satellite.
	id := uint64(0)
	type pair struct {
		s   string
		sat uint64
	}
	var want []pair
	for r := range seqs {
		seqs[r].Sats = make([]uint64, seqs[r].Len())
		for i := range seqs[r].Sats {
			seqs[r].Sats[i] = id
			want = append(want, pair{string(seqs[r].Strings[i]), id})
			id++
		}
	}
	out, _ := MergeLCP(seqs)
	if len(out.Sats) != out.Len() {
		t.Fatal("satellite output length mismatch")
	}
	// Every (string, sat) pair must be preserved.
	got := map[uint64]string{}
	for i := range out.Sats {
		got[out.Sats[i]] = string(out.Strings[i])
	}
	for _, p := range want {
		if got[p.sat] != p.s {
			t.Fatalf("satellite %d carries %q, want %q", p.sat, got[p.sat], p.s)
		}
	}
}

func TestMergeLCPWorkBound(t *testing.T) {
	// The LCP merge of m strings from K runs must use at most
	// m·(log K + 1) + ΔL character comparisons (Section II-B). We check a
	// looser constant to avoid brittleness.
	rng := rand.New(rand.NewSource(24))
	k, total := 8, 4000
	seqs, _ := makeRuns(rng, k, total, 40, 2)
	var deltaL int64
	out, work := MergeLCP(seqs)
	for i := range out.LCPs {
		deltaL += int64(out.LCPs[i])
	}
	bound := int64(total)*(4+1) + 4*deltaL // log2(8)=3, slack
	if work > bound {
		t.Fatalf("LCP merge work %d exceeds bound %d (ΔL=%d)", work, bound, deltaL)
	}
	// And it must be far below the naive full-comparison cost when LCPs
	// are long.
	_, plainWork := Merge(seqs)
	if work > plainWork {
		t.Fatalf("LCP merge (%d) did more character work than plain merge (%d)", work, plainWork)
	}
}

func TestMergeManyRuns(t *testing.T) {
	// K larger than any power-of-two boundary nearby, with ragged sizes.
	rng := rand.New(rand.NewSource(25))
	for _, k := range []int{1, 2, 3, 5, 17, 33} {
		seqs, ref := makeRuns(rng, k, 300, 6, 2)
		out, _ := MergeLCP(seqs)
		for i := range ref {
			if !bytes.Equal(out.Strings[i], ref[i]) {
				t.Fatalf("k=%d: position %d mismatch", k, i)
			}
		}
	}
}

func BenchmarkMergeLCP8Runs(b *testing.B) {
	rng := rand.New(rand.NewSource(26))
	seqs, _ := makeRuns(rng, 8, 100000, 30, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeLCP(seqs)
	}
}

func BenchmarkMergePlain8Runs(b *testing.B) {
	rng := rand.New(rand.NewSource(27))
	seqs, _ := makeRuns(rng, 8, 100000, 30, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(seqs)
	}
}
