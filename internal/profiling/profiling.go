// Package profiling implements the shared -cpuprofile / -memprofile
// flags of the dss binaries on runtime/pprof: one RegisterFlags call per
// binary, Start after flag parsing, and Exit instead of os.Exit so the
// profiles are flushed on EVERY exit path — success, usage errors and
// fatal run errors alike.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuprofile *string
	memprofile *string
	cpuFile    *os.File
)

// RegisterFlags registers -cpuprofile and -memprofile on fs (pass
// flag.CommandLine for the process-wide set).
func RegisterFlags(fs *flag.FlagSet) {
	cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
}

// Start begins CPU profiling if -cpuprofile was given. Call once, after
// flag parsing and before the run.
func Start() error {
	if cpuprofile == nil || *cpuprofile == "" {
		return nil
	}
	f, err := os.Create(*cpuprofile)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	cpuFile = f
	return nil
}

// Stop flushes the CPU profile and writes the heap profile. Idempotent;
// Exit calls it, so only long-lived callers that never Exit need it.
func Stop() {
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
		cpuFile = nil
	}
	if memprofile != nil && *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			return
		}
		runtime.GC() // materialize the final live set before the snapshot
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
		}
		f.Close()
		memprofile = nil
	}
}

// Exit flushes the profiles and terminates the process. The binaries use
// it everywhere they would call os.Exit, so a -cpuprofile of a failing
// run is still written.
func Exit(code int) {
	Stop()
	os.Exit(code)
}
