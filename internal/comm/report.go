package comm

import (
	"fmt"

	"dss/internal/stats"
	"dss/internal/wire"
)

// countersPerPE is the flattened size of one PE's phase counters: the four
// deterministic counters, the wall span, overlap and worker-CPU
// measurements of the overlap and intra-PE parallelism models, and the two
// wire-byte counters of the codec layer, per phase — plus the two per-PE
// milestone timestamps of the streaming merge seam, the pool width, the
// three spill gauges of the out-of-core pipeline, and the three
// failure-recovery gauges of the transport (reconnects, resent frames,
// resent bytes).
const countersPerPE = int(stats.NumPhases)*9 + 9

// AllgatherReport exchanges every PE's accounting snapshot and returns a
// machine-wide report, identical on every member — the SPMD counterpart of
// Machine.Report for runs where each process owns a single Comm (NewComm).
// Every PE's counters are snapshotted before the exchange, so the gather's
// own traffic is excluded from the report: the returned statistics match
// what an in-process Machine.Report would have shown at the same point,
// bit for bit. gid selects the tag namespace of the internal collective and
// must be unused by concurrently live groups.
func AllgatherReport(c *Comm, model stats.CostModel, gid int) *stats.Report {
	c.flushWall() // close the running wall span so it is part of the snapshot
	snap := *c.st // value copy: the collective below mutates the live counters
	vals := make([]uint64, countersPerPE)
	for ph := stats.Phase(0); ph < stats.NumPhases; ph++ {
		pc := snap.Phases[ph]
		vals[int(ph)*9+0] = uint64(pc.BytesSent)
		vals[int(ph)*9+1] = uint64(pc.BytesRecv)
		vals[int(ph)*9+2] = uint64(pc.Messages)
		vals[int(ph)*9+3] = uint64(pc.Work)
		vals[int(ph)*9+4] = uint64(snap.Wall[ph])
		vals[int(ph)*9+5] = uint64(snap.Overlap[ph])
		vals[int(ph)*9+6] = uint64(snap.Wire[ph].Sent)
		vals[int(ph)*9+7] = uint64(snap.Wire[ph].Recv)
		vals[int(ph)*9+8] = uint64(snap.CPU[ph])
	}
	vals[int(stats.NumPhases)*9+0] = uint64(snap.MergeStartNS)
	vals[int(stats.NumPhases)*9+1] = uint64(snap.ExchangeDoneNS)
	vals[int(stats.NumPhases)*9+2] = uint64(snap.Cores)
	vals[int(stats.NumPhases)*9+3] = uint64(snap.SpillBytesWritten)
	vals[int(stats.NumPhases)*9+4] = uint64(snap.SpillBytesRead)
	vals[int(stats.NumPhases)*9+5] = uint64(snap.PeakLiveBytes)
	vals[int(stats.NumPhases)*9+6] = uint64(snap.Reconnects)
	vals[int(stats.NumPhases)*9+7] = uint64(snap.ResentFrames)
	vals[int(stats.NumPhases)*9+8] = uint64(snap.ResentBytes)
	g := NewGroup(c, WorldRanks(c.P()), gid)
	parts := g.Allgatherv(wire.EncodeUint64s(vals))
	pes := make([]*stats.PE, len(parts))
	for i, part := range parts {
		vs, err := wire.DecodeUint64s(part)
		if err != nil || len(vs) != countersPerPE {
			panic(fmt.Sprintf("comm: corrupt stats snapshot from PE %d: %v", i, err))
		}
		pe := &stats.PE{Rank: i}
		for ph := stats.Phase(0); ph < stats.NumPhases; ph++ {
			pe.Phases[ph] = stats.PhaseCounters{
				BytesSent: int64(vs[int(ph)*9+0]),
				BytesRecv: int64(vs[int(ph)*9+1]),
				Messages:  int64(vs[int(ph)*9+2]),
				Work:      int64(vs[int(ph)*9+3]),
			}
			pe.Wall[ph] = int64(vs[int(ph)*9+4])
			pe.Overlap[ph] = int64(vs[int(ph)*9+5])
			pe.Wire[ph] = stats.WireCounters{
				Sent: int64(vs[int(ph)*9+6]),
				Recv: int64(vs[int(ph)*9+7]),
			}
			pe.CPU[ph] = int64(vs[int(ph)*9+8])
		}
		pe.MergeStartNS = int64(vs[int(stats.NumPhases)*9+0])
		pe.ExchangeDoneNS = int64(vs[int(stats.NumPhases)*9+1])
		pe.Cores = int64(vs[int(stats.NumPhases)*9+2])
		pe.SpillBytesWritten = int64(vs[int(stats.NumPhases)*9+3])
		pe.SpillBytesRead = int64(vs[int(stats.NumPhases)*9+4])
		pe.PeakLiveBytes = int64(vs[int(stats.NumPhases)*9+5])
		pe.Reconnects = int64(vs[int(stats.NumPhases)*9+6])
		pe.ResentFrames = int64(vs[int(stats.NumPhases)*9+7])
		pe.ResentBytes = int64(vs[int(stats.NumPhases)*9+8])
		pes[i] = pe
	}
	c.Release(parts...)
	return stats.NewReport(pes, model)
}
