package comm

import (
	"fmt"
	"sort"

	"dss/internal/wire"
)

// Group is a communicator: an ordered subset of the machine's PEs on which
// collective operations are defined (like an MPI communicator). All members
// of a group must call the group's collectives in the same order. Distinct
// groups that are live at the same time must use distinct gid values so
// that their messages cannot be confused.
type Group struct {
	c     *Comm
	ranks []int // global ranks of the members, ascending
	myIdx int   // index of this PE within ranks
	gid   int   // tag namespace of this group
	seq   int   // per-group collective sequence number
}

// NewGroup creates a communicator over the given global ranks (which must
// contain the calling PE and be identical, including order, on every
// member). gid selects the tag namespace; concurrent groups need distinct
// gids, and the same logical group must use the same gid on all members.
func NewGroup(c *Comm, ranks []int, gid int) *Group {
	if !sort.IntsAreSorted(ranks) {
		panic("comm: group ranks must be sorted")
	}
	myIdx := -1
	for i, r := range ranks {
		if r == c.Rank() {
			myIdx = i
			break
		}
	}
	if myIdx < 0 {
		panic(fmt.Sprintf("comm: PE %d not a member of group %v", c.Rank(), ranks))
	}
	return &Group{c: c, ranks: ranks, myIdx: myIdx, gid: gid}
}

// N returns the group size.
func (g *Group) N() int { return len(g.ranks) }

// Idx returns the calling PE's index within the group.
func (g *Group) Idx() int { return g.myIdx }

// GlobalRank translates a group index to a machine rank.
func (g *Group) GlobalRank(idx int) int { return g.ranks[idx] }

// Comm returns the underlying per-PE endpoint.
func (g *Group) Comm() *Comm { return g.c }

// nextTag reserves a fresh tag for one collective operation. Members stay
// in lockstep because they execute the same sequence of collectives.
func (g *Group) nextTag() int {
	g.seq++
	return g.gid<<32 | g.seq
}

// send/recv helpers addressing group indices.
func (g *Group) send(idx, tag int, data []byte) { g.c.Send(g.ranks[idx], tag, data) }
func (g *Group) recv(idx, tag int) []byte       { return g.c.Recv(g.ranks[idx], tag) }

// Barrier blocks until every group member has entered it. It uses the
// dissemination algorithm: ⌈log n⌉ rounds of pairwise signalling. The
// blocking form is the split-phase IBarrier completed immediately.
func (g *Group) Barrier() {
	pd := g.IBarrier()
	pd.noOverlap = true
	pd.Wait()
}

// Bcast distributes root's data to all members along a binomial tree
// (O(log n) rounds, every member sends at most log n messages). Every
// member returns the payload; on the root the input is returned unchanged.
func (g *Group) Bcast(root int, data []byte) []byte {
	tag := g.nextTag()
	n := len(g.ranks)
	rel := (g.myIdx - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root) % n
			data = g.recv(src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			g.send(dst, tag, data)
		}
		mask >>= 1
	}
	return data
}

// gatherEntry is one member's contribution inside a gather bundle.
func packGather(entries map[int][]byte) []byte {
	w := wire.NewBuffer(64)
	w.Uvarint(uint64(len(entries)))
	// Deterministic order for reproducible byte counts.
	idxs := make([]int, 0, len(entries))
	for idx := range entries {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		w.Uvarint(uint64(idx))
		w.BytesPrefixed(entries[idx])
	}
	return w.Bytes()
}

func unpackGather(msg []byte, into map[int][]byte) error {
	r := wire.NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < cnt; i++ {
		idx, err := r.Uvarint()
		if err != nil {
			return err
		}
		payload, err := r.BytesPrefixed()
		if err != nil {
			return err
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		into[int(idx)] = cp
	}
	return nil
}

// Gatherv collects every member's payload at root along a binomial tree.
// On the root it returns a slice indexed by group index; on other members
// it returns nil.
func (g *Group) Gatherv(root int, data []byte) [][]byte {
	tag := g.nextTag()
	n := len(g.ranks)
	rel := (g.myIdx - root + n) % n
	collected := map[int][]byte{g.myIdx: data}
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			dst := (rel - mask + root) % n
			g.send(dst, tag, packGather(collected))
			return nil
		}
		srcRel := rel + mask
		if srcRel < n {
			src := (srcRel + root) % n
			bundle := g.recv(src, tag)
			if err := unpackGather(bundle, collected); err != nil {
				panic(fmt.Sprintf("comm: corrupt gather bundle: %v", err))
			}
			g.c.Release(bundle) // unpackGather copied the payloads out
		}
		mask <<= 1
	}
	out := make([][]byte, n)
	for idx, payload := range collected {
		out[idx] = payload
	}
	return out
}

// Allgatherv collects every member's payload on every member: a binomial
// gather to member 0 followed by a broadcast of the packed bundle. The
// blocking form is the split-phase IAllgatherv completed immediately.
func (g *Group) Allgatherv(data []byte) [][]byte {
	pd := g.IAllgatherv(data)
	pd.noOverlap = true
	return pd.Wait()
}

// Alltoallv performs personalized all-to-all communication: parts[i] is the
// payload for group member i, and the result's i-th entry is the payload
// received from member i. Direct delivery: n-1 pairwise rounds, which is
// the low-volume (cost O(αp + βh)) variant discussed in Section II. The
// blocking form is the split-phase IAlltoallv completed immediately.
func (g *Group) Alltoallv(parts [][]byte) [][]byte {
	pd := g.IAlltoallv(parts)
	pd.noOverlap = true
	return pd.Wait()
}

// AlltoallvHypercube performs personalized all-to-all communication by
// store-and-forward routing along a hypercube, the low-latency variant of
// Section II: O(log n) message rounds at the price of each payload being
// forwarded up to log n times (communication volume grows by that factor).
// The group size must be a power of two.
func (g *Group) AlltoallvHypercube(parts [][]byte) [][]byte {
	n := len(g.ranks)
	if n&(n-1) != 0 {
		panic("comm: hypercube alltoall requires power-of-two group size")
	}
	if len(parts) != n {
		panic(fmt.Sprintf("comm: alltoallv needs %d parts, got %d", n, len(parts)))
	}
	tag := g.nextTag()
	// pending[dst] accumulates payload chunks destined for dst; chunks for
	// the same destination are concatenated in (origin-sorted) bundles, so
	// the caller must be able to concatenate payload fragments. To keep
	// arbitrary payloads intact we carry (origin, payload) pairs.
	type routed struct {
		origin  int
		payload []byte
	}
	pending := make([][]routed, n)
	for dst, p := range parts {
		pending[dst] = append(pending[dst], routed{origin: g.myIdx, payload: p})
	}
	for bit := 1; bit < n; bit <<= 1 {
		partner := g.myIdx ^ bit
		// Bundle everything whose destination differs from me in this bit.
		w := wire.NewBuffer(64)
		var count uint64
		for dst := 0; dst < n; dst++ {
			if dst&bit != g.myIdx&bit {
				count += uint64(len(pending[dst]))
			}
		}
		w.Uvarint(count)
		for dst := 0; dst < n; dst++ {
			if dst&bit != g.myIdx&bit {
				for _, rt := range pending[dst] {
					w.Uvarint(uint64(dst))
					w.Uvarint(uint64(rt.origin))
					w.BytesPrefixed(rt.payload)
				}
				pending[dst] = nil
			}
		}
		g.send(partner, tag+0, w.Bytes())
		msg := g.recv(partner, tag+0)
		r := wire.NewReader(msg)
		cnt, err := r.Uvarint()
		if err != nil {
			panic("comm: corrupt hypercube bundle")
		}
		for i := uint64(0); i < cnt; i++ {
			dst64, err1 := r.Uvarint()
			origin64, err2 := r.Uvarint()
			payload, err3 := r.BytesPrefixed()
			if err1 != nil || err2 != nil || err3 != nil {
				panic("comm: corrupt hypercube bundle")
			}
			cp := make([]byte, len(payload))
			copy(cp, payload)
			pending[dst64] = append(pending[dst64], routed{origin: int(origin64), payload: cp})
		}
		g.c.Release(msg) // payload chunks were copied out above
	}
	out := make([][]byte, n)
	for _, rt := range pending[g.myIdx] {
		out[rt.origin] = rt.payload
	}
	for i := range out {
		if out[i] == nil {
			out[i] = []byte{}
		}
	}
	return out
}

// ReduceBytes folds every member's payload into one value at root using a
// binomial tree. combine must be associative over the payloads in group
// index order: combine(a, b) where a's members all have lower group indices
// than b's, and must not retain hi (it is recycled after the call).
// Non-roots return nil.
func (g *Group) ReduceBytes(root int, data []byte, combine func(lo, hi []byte) []byte) []byte {
	tag := g.nextTag()
	n := len(g.ranks)
	rel := (g.myIdx - root + n) % n
	acc := data
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			dst := (rel - mask + root) % n
			g.send(dst, tag, acc)
			return nil
		}
		srcRel := rel + mask
		if srcRel < n {
			src := (srcRel + root) % n
			hi := g.recv(src, tag)
			acc = combine(acc, hi)
			g.c.Release(hi)
		}
		mask <<= 1
	}
	return acc
}

// ReduceUint64 performs an elementwise reduction of equal-length uint64
// vectors at root. Non-roots return nil.
func (g *Group) ReduceUint64(root int, vals []uint64, op func(a, b uint64) uint64) []uint64 {
	res := g.ReduceBytes(root, wire.EncodeUint64s(vals), func(lo, hi []byte) []byte {
		a, err1 := wire.DecodeUint64s(lo)
		b, err2 := wire.DecodeUint64s(hi)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			panic("comm: corrupt reduce payload")
		}
		for i := range a {
			a[i] = op(a[i], b[i])
		}
		return wire.EncodeUint64s(a)
	})
	if res == nil {
		return nil
	}
	out, err := wire.DecodeUint64s(res)
	if err != nil {
		panic("comm: corrupt reduce result")
	}
	return out
}

// AllreduceUint64 performs an elementwise reduction visible on every member.
func (g *Group) AllreduceUint64(vals []uint64, op func(a, b uint64) uint64) []uint64 {
	res := g.ReduceUint64(0, vals, op)
	var packed []byte
	if g.myIdx == 0 {
		packed = wire.EncodeUint64s(res)
	}
	packed = g.Bcast(0, packed)
	out, err := wire.DecodeUint64s(packed)
	if err != nil {
		panic("comm: corrupt allreduce result")
	}
	g.c.Release(packed)
	return out
}

// Sum, Max and Min are reduction operators for ReduceUint64/AllreduceUint64.
func Sum(a, b uint64) uint64 { return a + b }

// Max returns the larger operand.
func Max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller operand.
func Min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ExscanUint64 returns the exclusive prefix sums of one value per member:
// member i receives Σ_{j<i} vals_j (member 0 receives 0), plus the global
// total. Implemented with an allgather, which is volume-optimal for the
// single-word values the sorters need (bucket sizes, string counts).
func (g *Group) ExscanUint64(val uint64) (prefix, total uint64) {
	parts := g.Allgatherv(wire.EncodeUint64s([]uint64{val}))
	for i, p := range parts {
		vs, err := wire.DecodeUint64s(p)
		if err != nil || len(vs) != 1 {
			panic("comm: corrupt exscan payload")
		}
		if i < g.myIdx {
			prefix += vs[0]
		}
		total += vs[0]
	}
	g.c.Release(parts...)
	return prefix, total
}
