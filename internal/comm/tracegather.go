// Cross-process trace aggregation: after a multi-process run, every rank
// ships its serialized trace buffer to every other rank through the same
// report machinery the statistics use, with a clock-offset estimation
// round first so the per-host timestamps line up in one merged timeline.
//
// Clock model. OS processes — possibly on different hosts — stamp events
// with their own wall clocks. GatherTrace estimates each rank's offset to
// rank 0 with Cristian's algorithm: a few ping rounds against rank 0,
// each sampling (t0, rank 0's clock, t1); the sample with the smallest
// round-trip bounds the error best, and offset = rootTS − (t0+t1)/2 under
// the symmetric-delay assumption. On one host (loopback TCP, the tests)
// the clocks are identical and the estimate collapses to ~0; across hosts
// it aligns the timelines to within the minimum RTT.
//
// Ordering. Call GatherTrace strictly AFTER AllgatherReport: its pings
// and buffer exchange go through the normal accounting boundary, and the
// deterministic statistics must be snapshotted before this traffic — that
// is how the model stats stay bit-identical with tracing on or off.
package comm

import (
	"fmt"
	"time"

	"dss/internal/trace"
	"dss/internal/wire"
)

// clockPingRounds is how many offset samples each rank takes against
// rank 0; the minimum-RTT sample wins.
const clockPingRounds = 5

// estimateClockOffset measures this rank's wall-clock offset to rank 0 in
// nanoseconds (0 on rank 0 itself). Rank 0 serves the ranks in order, so
// the message pattern is deterministic. tag selects a fresh tag in the
// caller's group-id namespace.
func estimateClockOffset(c *Comm, tag int) int64 {
	if c.P() == 1 {
		return 0
	}
	if c.Rank() == 0 {
		buf := make([]uint64, 1)
		for src := 1; src < c.P(); src++ {
			for round := 0; round < clockPingRounds; round++ {
				ping := c.Recv(src, tag)
				c.Release(ping)
				buf[0] = uint64(time.Now().UnixNano())
				c.Send(src, tag, wire.EncodeUint64s(buf))
			}
		}
		return 0
	}
	var best int64
	bestRTT := int64(-1)
	for round := 0; round < clockPingRounds; round++ {
		t0 := time.Now().UnixNano()
		c.Send(0, tag, nil)
		reply := c.Recv(0, tag)
		t1 := time.Now().UnixNano()
		vs, err := wire.DecodeUint64s(reply)
		if err != nil || len(vs) != 1 {
			panic(fmt.Sprintf("comm: corrupt clock ping reply: %v", err))
		}
		c.Release(reply)
		rootTS := int64(vs[0])
		if rtt := t1 - t0; bestRTT < 0 || rtt < bestRTT {
			bestRTT = rtt
			best = rootTS - (t0+t1)/2
		}
	}
	return best
}

// GatherTrace exchanges every rank's trace buffer and returns all of
// them, rank-ordered and identical on every member, with each buffer's
// OffsetNS set to the estimated correction onto rank 0's clock. All ranks
// of the world must call it collectively (rec may differ in capacity but
// must be non-nil everywhere). gid selects the tag namespace and must be
// unused by concurrently live groups.
func GatherTrace(c *Comm, rec *trace.Recorder, gid int) []*trace.Buffer {
	g := NewGroup(c, WorldRanks(c.P()), gid)
	// offset is rank0Clock − localClock, so TS + OffsetNS lands each local
	// stamp in rank 0's clock domain.
	offset := estimateClockOffset(c, g.nextTag())
	buf := rec.Snapshot()
	buf.OffsetNS = offset
	parts := g.Allgatherv(buf.Marshal())
	bufs := make([]*trace.Buffer, len(parts))
	for i, part := range parts {
		b, err := trace.UnmarshalBuffer(part)
		if err != nil {
			panic(fmt.Sprintf("comm: corrupt trace buffer from PE %d: %v", i, err))
		}
		bufs[i] = b
	}
	c.Release(parts...)
	return bufs
}
