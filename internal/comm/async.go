// Split-phase (non-blocking) collectives. Each I* operation posts whatever
// traffic it can immediately — eager sends never block — and returns a
// Pending handle; the caller overlaps local compute with the in-flight
// communication and drains the results incrementally (PollRecv / PollAny)
// or all at once (Wait). The blocking collectives of group.go are thin
// veneers (I* immediately followed by Wait), so the two forms are
// interchangeable and their accounting is bit-identical.
//
// Accounting model. ALL traffic of a split-phase collective — the sends
// posted up front, the sends issued while completing inside Wait, and every
// receive — is attributed to the accounting phase that was current when the
// collective was POSTED, no matter which phase the PE is in when it drains.
// This is what keeps the deterministic statistics (model time, bytes per
// string) independent of how much overlap the caller achieves: an exchange
// posted in the exchange phase bills to the exchange phase even when its
// runs are drained during merging.
//
// Overlap model. Each Pending measures, in wall-clock time, the span from
// posting to the LAST ARRIVAL of its payloads and subtracts the time the
// PE actually spent blocked waiting for deliveries; the difference — the
// compute executed while communication was genuinely still in flight — is
// credited to stats.PE.Overlap of the posting phase. Compute after the
// last arrival earns nothing (there is no communication left to hide), so
// a balanced workload on an instant transport honestly reports ~0. These
// are measurements (nondeterministic), reported alongside — never inside —
// the α-β model time.
package comm

import (
	"fmt"
	"sort"
	"time"

	"dss/internal/stats"
	"dss/internal/trace"
)

// pendingOp distinguishes the collective kinds behind a Pending.
type pendingOp int

const (
	opAlltoallv pendingOp = iota
	opBarrier
	opAllgatherv
)

func (op pendingOp) String() string {
	switch op {
	case opAlltoallv:
		return "IAlltoallv"
	case opBarrier:
		return "IBarrier"
	case opAllgatherv:
		return "IAllgatherv"
	default:
		return fmt.Sprintf("pendingOp(%d)", int(op))
	}
}

// postName / doneName are the interned trace labels of the collective
// lifecycle instants, precomputed so the hot path never concatenates.
func (op pendingOp) postName() string {
	switch op {
	case opAlltoallv:
		return "IAlltoallv post"
	case opBarrier:
		return "IBarrier post"
	default:
		return "IAllgatherv post"
	}
}

func (op pendingOp) doneName() string {
	switch op {
	case opAlltoallv:
		return "IAlltoallv done"
	case opBarrier:
		return "IBarrier done"
	default:
		return "IAllgatherv done"
	}
}

// Pending is a split-phase collective in flight. It is confined to the PE
// goroutine that posted it, like the Comm itself. Exactly one of the
// draining methods consumes each payload: a payload handed out by PollRecv
// or PollAny is owned by the caller (and releasable via Comm.Release) and
// will NOT be returned again by Wait.
type Pending struct {
	g      *Group
	op     pendingOp
	tag    int
	phase  stats.Phase // accounting phase captured at post time
	posted time.Time
	waited time.Duration // total time spent blocked on this collective
	// lastArrival is the latest known moment a payload of this collective
	// became receivable (transport delivery stamp for PollAny, receive
	// return time for targeted receives, posted for the self part). The
	// overlap span ends HERE, not at the last drain: compute executed
	// after everything has arrived hides nothing.
	lastArrival time.Time

	// Alltoallv state.
	self      []byte // copy of the caller's own part, available immediately
	results   [][]byte
	drained   []bool
	remaining int
	srcs      []int // scratch for the undrained-source list, reused per drain
	// Staged-posting state (IAlltoallvStaged): outgoing parts still owed via
	// Post. Draining is rejected until every part has been posted.
	toPost    int
	postedIdx []bool

	// Barrier/Allgatherv completion, run by Wait.
	finish     func() [][]byte
	waitCalled bool
	// noOverlap suppresses the overlap credit: set by the blocking veneers
	// (I* immediately followed by Wait), which by definition hide no
	// communication — otherwise every blocking collective would credit the
	// few nanoseconds between posting and draining as "overlap" noise.
	noOverlap bool
}

// IAlltoallv posts a personalized all-to-all exchange: parts[i] is the
// payload for group member i. All outgoing messages are sent before it
// returns (sends are eager and never block); the incoming payloads are
// drained from the returned handle. The traffic is identical, message for
// message, to the blocking Alltoallv — which is now literally
// IAlltoallv(parts).Wait().
func (g *Group) IAlltoallv(parts [][]byte) *Pending {
	n := len(g.ranks)
	if len(parts) != n {
		panic(fmt.Sprintf("comm: alltoallv needs %d parts, got %d", n, len(parts)))
	}
	pd := g.newPending(opAlltoallv)
	pd.results = make([][]byte, n)
	pd.drained = make([]bool, n)
	pd.remaining = n
	// Self part: logical copy, no communication, ready immediately.
	pd.self = make([]byte, len(parts[g.myIdx]))
	copy(pd.self, parts[g.myIdx])
	for i := 1; i < n; i++ {
		dst := (g.myIdx + i) % n
		pd.sendIdx(dst, parts[dst])
	}
	return pd
}

// IAlltoallvStaged posts the receive side of a personalized all-to-all
// exchange with the outgoing parts still to come: each part is handed over
// individually with Post, the moment it is ready. This is the send-side
// counterpart of PollAny's incremental draining — the parallel Step-3
// encoder posts each bucket as its encoder task finishes instead of
// holding the whole exchange back for the slowest bucket. Accounting is
// bit-identical to IAlltoallv whatever the posting order: the same bytes
// and message counts are billed per destination to the phase captured
// HERE, at post time. Draining (PollAny/PollRecv/Wait) is rejected until
// every member's part has been posted.
func (g *Group) IAlltoallvStaged() *Pending {
	n := len(g.ranks)
	pd := g.newPending(opAlltoallv)
	pd.results = make([][]byte, n)
	pd.drained = make([]bool, n)
	pd.remaining = n
	pd.toPost = n
	pd.postedIdx = make([]bool, n)
	return pd
}

// Post hands group member idx's outgoing part to a staged exchange,
// sending it immediately (eager, never blocks). The self part is copied,
// like IAlltoallv's. Each member must be posted exactly once; Post must be
// called from the PE goroutine that owns the Comm (encoder tasks signal a
// completion channel and the PE posts, keeping all accounting confined).
func (pd *Pending) Post(idx int, part []byte) {
	if pd.postedIdx == nil {
		panic(fmt.Sprintf("comm: Post on a non-staged %v", pd.op))
	}
	if idx < 0 || idx >= len(pd.postedIdx) {
		panic(fmt.Sprintf("comm: Post index %d out of range (n=%d)", idx, len(pd.postedIdx)))
	}
	if pd.postedIdx[idx] {
		panic(fmt.Sprintf("comm: Post(%d): member already posted", idx))
	}
	pd.postedIdx[idx] = true
	pd.toPost--
	if idx == pd.g.myIdx {
		pd.self = append([]byte(nil), part...)
		return
	}
	pd.sendIdx(idx, part)
}

// PollAny blocks until some undrained member's payload is available, marks
// it drained, and returns it with the member's group index. The PE's own
// part is returned first; after that, payloads come in arrival order (up
// to a scan-width race in the transport — see transport.PopAny), which is
// what lets a caller decode and process each run while the stragglers are
// still in flight. ok=false reports that every member has been drained.
func (pd *Pending) PollAny() (idx int, data []byte, ok bool) {
	pd.checkDrainable()
	if pd.remaining == 0 {
		return -1, nil, false
	}
	if !pd.drained[pd.g.myIdx] {
		return pd.g.myIdx, pd.take(pd.g.myIdx, pd.self), true
	}
	if pd.srcs == nil {
		pd.srcs = make([]int, 0, pd.remaining)
	}
	srcs := pd.srcs[:0]
	for i, d := range pd.drained {
		if !d {
			srcs = append(srcs, pd.g.ranks[i])
		}
	}
	src, data := pd.recvAny(srcs)
	pd.accountRecv(src, len(data))
	idx = sort.SearchInts(pd.g.ranks, src)
	return idx, pd.take(idx, data), true
}

// PollRecv blocks until the payload from the given group member is
// available, marks it drained, and returns it. Payloads from other members
// that arrive earlier stay queued in the transport. Panics if the member
// was already drained.
func (pd *Pending) PollRecv(idx int) []byte {
	pd.checkDrainable()
	if idx < 0 || idx >= len(pd.drained) {
		panic(fmt.Sprintf("comm: PollRecv index %d out of range (n=%d)", idx, len(pd.drained)))
	}
	if pd.drained[idx] {
		panic(fmt.Sprintf("comm: PollRecv(%d): member already drained", idx))
	}
	if idx == pd.g.myIdx {
		return pd.take(idx, pd.self)
	}
	src := pd.g.ranks[idx]
	data := pd.timedRecv(src, pd.tag)
	pd.accountRecv(src, len(data))
	return pd.take(idx, data)
}

// timedRecv / recvAny perform a transport receive, accumulating the
// blocked time and the last-arrival stamp for the overlap measurement. The
// clock calls are skipped entirely for the blocking veneers (noOverlap),
// which never read either — the blocking collectives stay as cheap as
// before the split-phase layer.
//
// For a targeted Recv no delivery stamp is available, so the return time
// serves as the arrival estimate: exact when the receive actually blocked
// (the return IS the arrival), and within the pickup latency when the
// payload was already queued.
func (pd *Pending) timedRecv(src, tag int) []byte {
	if pd.noOverlap {
		return pd.g.c.t.Recv(src, tag)
	}
	t0 := time.Now()
	data := pd.g.c.t.Recv(src, tag)
	now := time.Now()
	pd.waited += now.Sub(t0)
	pd.lastArrival = now
	return data
}

func (pd *Pending) recvAny(srcs []int) (int, []byte) {
	if pd.noOverlap {
		src, data, _ := pd.g.c.t.RecvAny(srcs, pd.tag)
		return src, data
	}
	t0 := time.Now()
	src, data, arrived := pd.g.c.t.RecvAny(srcs, pd.tag)
	// Blocked time is counted only up to the message's ARRIVAL, not the
	// receive's return: the gap between the two is scheduler wake-up
	// latency, which would otherwise overstate waiting (it can exceed the
	// whole overlap span under CPU contention) and must not be subtracted
	// from the overlap credit. A message that was already queued (arrived
	// before t0) cost no waiting at all.
	if arrived.After(t0) {
		pd.waited += arrived.Sub(t0)
	}
	if arrived.After(pd.lastArrival) {
		pd.lastArrival = arrived
	}
	return src, data
}

// Wait completes the collective. For IAlltoallv it drains every remaining
// member and returns the payloads indexed by group index, with entries
// already handed out by PollRecv/PollAny left nil (their ownership was
// transferred when they were drained) — calling it on a fully drained
// exchange is legal and returns the all-nil slice. For IBarrier it returns
// nil once every member has entered; for IAllgatherv it returns every
// member's payload. Wait may be called at most once.
func (pd *Pending) Wait() [][]byte {
	if pd.waitCalled {
		panic(fmt.Sprintf("comm: Wait called twice on %v", pd.op))
	}
	pd.waitCalled = true
	if pd.finish != nil {
		out := pd.finish()
		pd.complete()
		return out
	}
	for pd.remaining > 0 {
		idx, data, _ := pd.PollAny()
		pd.results[idx] = data
	}
	return pd.results
}

// IBarrier posts this PE's entry into a dissemination barrier: the first
// round's signal goes out immediately, the remaining ⌈log n⌉−1 rounds run
// inside Wait. The message pattern (and therefore the accounting) is
// identical to the blocking Barrier, which is IBarrier().Wait().
func (g *Group) IBarrier() *Pending {
	pd := g.newPending(opBarrier)
	n := len(g.ranks)
	if n > 1 {
		pd.sendIdx((g.myIdx+1)%n, nil)
	}
	pd.finish = func() [][]byte {
		for k := 1; k < n; k <<= 1 {
			if k > 1 {
				pd.sendIdx((g.myIdx+k)%n, nil)
			}
			pd.recvIdx((g.myIdx - k + n) % n)
		}
		return nil
	}
	return pd
}

// IAllgatherv posts this PE's contribution to an allgather: leaves of the
// binomial gather tree (odd group indices) send immediately, everything
// else — the inner gather rounds and the broadcast of the packed bundle —
// runs inside Wait. Message pattern and bytes are identical to the blocking
// Allgatherv, which is IAllgatherv(data).Wait().
func (g *Group) IAllgatherv(data []byte) *Pending {
	pd := g.newPending(opAllgatherv)
	gatherTag := pd.tag
	bcastTag := g.nextTag()
	n := len(g.ranks)
	sentEagerly := n > 1 && g.myIdx&1 != 0
	if !sentEagerly {
		// The contribution leaves this PE only inside Wait, so snapshot it
		// now: like IAlltoallv's self copy, the caller keeps ownership of
		// data and may reuse it during the overlap window.
		data = append([]byte(nil), data...)
	}
	collected := map[int][]byte{g.myIdx: data}
	if sentEagerly {
		// A leaf's whole gather contribution is known (and serialized) at
		// post time.
		pd.sendTag(g.myIdx-1, gatherTag, packGather(collected))
	}
	pd.finish = func() [][]byte {
		// Binomial gather to member 0 (replicates Gatherv with root 0).
		forwarded := sentEagerly
		for mask := 1; mask < n && !forwarded; mask <<= 1 {
			if g.myIdx&mask != 0 {
				pd.sendTag(g.myIdx-mask, gatherTag, packGather(collected))
				forwarded = true
				break
			}
			if src := g.myIdx + mask; src < n {
				bundle := pd.recvTag(src, gatherTag)
				if err := unpackGather(bundle, collected); err != nil {
					panic(fmt.Sprintf("comm: corrupt gather bundle: %v", err))
				}
				pd.g.c.Release(bundle) // unpackGather copied the payloads out
			}
		}
		// Member 0 packs the full set; binomial broadcast of the bundle.
		var packed []byte
		if g.myIdx == 0 {
			packed = packGather(collected)
		}
		mask := 1
		for mask < n {
			if g.myIdx&mask != 0 {
				packed = pd.recvTag(g.myIdx-mask, bcastTag)
				break
			}
			mask <<= 1
		}
		mask >>= 1
		for mask > 0 {
			if g.myIdx+mask < n {
				pd.sendTag(g.myIdx+mask, bcastTag, packed)
			}
			mask >>= 1
		}
		m := make(map[int][]byte)
		if err := unpackGather(packed, m); err != nil {
			panic(fmt.Sprintf("comm: corrupt allgather bundle: %v", err))
		}
		pd.g.c.Release(packed)
		out := make([][]byte, n)
		for idx, payload := range m {
			out[idx] = payload
		}
		return out
	}
	return pd
}

// newPending captures the posting context shared by every split-phase
// collective: a fresh tag, the current accounting phase, and the wall clock
// for the overlap measurement.
func (g *Group) newPending(op pendingOp) *Pending {
	g.c.tr.Instant(trace.TrackControl, op.postName(), 0, 0)
	now := time.Now()
	return &Pending{
		g:      g,
		op:     op,
		tag:    g.nextTag(),
		phase:  g.c.phase,
		posted: now,
		// The self part (and a degenerate single-member collective) is
		// "delivered" at post time; real receives push this forward.
		lastArrival: now,
	}
}

// take marks a member drained and finishes the overlap measurement when it
// was the last one.
func (pd *Pending) take(idx int, data []byte) []byte {
	pd.drained[idx] = true
	pd.remaining--
	if pd.remaining == 0 {
		pd.complete()
	}
	return data
}

// checkDrainable rejects incremental draining on collectives that complete
// only as a whole. A fully drained IAlltoallv is fine: PollAny reports it
// with ok=false and PollRecv rejects per member.
func (pd *Pending) checkDrainable() {
	if pd.op != opAlltoallv {
		panic(fmt.Sprintf("comm: %v supports only Wait, not incremental draining", pd.op))
	}
	if pd.toPost > 0 {
		panic(fmt.Sprintf("comm: draining a staged alltoallv with %d parts unposted", pd.toPost))
	}
}

// complete credits the overlap achieved by this collective: the wall span
// from posting to the LAST ARRIVAL, minus the time actually spent blocked
// waiting, is communication that ran hidden under the caller's compute.
// Ending the span at the last arrival (not the last drain) is what keeps
// the metric honest: once every payload has been delivered there is no
// in-flight communication left to hide, so compute after that point —
// e.g. decoding runs that were already queued — earns no credit. All
// blocked time lies before the last arrival by construction (a receive
// only unblocks on a delivery), so the subtraction never double-counts.
func (pd *Pending) complete() {
	if pd.noOverlap {
		return
	}
	ov := pd.lastArrival.Sub(pd.posted) - pd.waited
	if ov > 0 {
		pd.g.c.st.Overlap[pd.phase] += ov.Nanoseconds()
	}
	// Arg carries the overlap credit in nanoseconds (clamped at 0), so the
	// timeline shows per-collective how much communication stayed hidden.
	ovNS := ov.Nanoseconds()
	if ovNS < 0 {
		ovNS = 0
	}
	pd.g.c.tr.Instant(trace.TrackControl, pd.op.doneName(), ovNS, 0)
}

// sendIdx / sendTag / recvIdx / recvTag move one message of the collective,
// attributing volume and message counts — through the same Comm accounting
// helpers the blocking operations use — to the phase captured at post time
// (NOT the PE's current phase), so that draining during a later phase
// leaves the deterministic statistics untouched.
func (pd *Pending) sendIdx(idx int, data []byte) { pd.sendTag(idx, pd.tag, data) }

func (pd *Pending) sendTag(idx, tag int, data []byte) {
	pd.g.c.sendAs(pd.phase, pd.g.ranks[idx], tag, data)
}

func (pd *Pending) recvIdx(idx int) []byte { return pd.recvTag(idx, pd.tag) }

func (pd *Pending) recvTag(idx, tag int) []byte {
	src := pd.g.ranks[idx]
	data := pd.timedRecv(src, tag)
	pd.accountRecv(src, len(data))
	return data
}

// accountRecv attributes received bytes to the posting phase.
func (pd *Pending) accountRecv(src, n int) {
	pd.g.c.accountRecvAs(pd.phase, src, n)
}
