package comm

import (
	"bytes"
	"fmt"
	"testing"

	"dss/internal/stats"
	"dss/internal/wire"
)

// ps is the set of PE counts exercised by every collective test, including
// non-powers of two and the degenerate single-PE machine.
var ps = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestSendRecvBasic(t *testing.T) {
	m := New(2)
	err := m.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("ping"))
			if got := c.Recv(1, 8); string(got) != "pong" {
				return fmt.Errorf("got %q", got)
			}
		} else {
			if got := c.Recv(0, 7); string(got) != "ping" {
				return fmt.Errorf("got %q", got)
			}
			c.Send(0, 8, []byte("pong"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	m := New(2)
	err := m.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("original")
			c.Send(1, 1, buf)
			copy(buf, "MUTATED!")
			c.Send(1, 2, nil) // sync
		} else {
			got := c.Recv(0, 1)
			c.Recv(0, 2)
			if string(got) != "original" {
				return fmt.Errorf("payload aliased sender memory: %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessagesNonOvertakingSameTag(t *testing.T) {
	m := New(2)
	const k = 100
	err := m.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(1, 3, []byte{byte(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				got := c.Recv(0, 3)
				if len(got) != 1 || got[0] != byte(i) {
					return fmt.Errorf("message %d out of order: %v", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectiveReceive(t *testing.T) {
	m := New(2)
	err := m.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 10, []byte("ten"))
			c.Send(1, 20, []byte("twenty"))
		} else {
			// Receive in the opposite order of sending.
			if got := c.Recv(0, 20); string(got) != "twenty" {
				return fmt.Errorf("tag 20: got %q", got)
			}
			if got := c.Recv(0, 10); string(got) != "ten" {
				return fmt.Errorf("tag 10: got %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendNotCounted(t *testing.T) {
	m := New(1)
	err := m.Run(func(c *Comm) error {
		c.Send(0, 1, []byte("loop"))
		if got := c.Recv(0, 1); string(got) != "loop" {
			return fmt.Errorf("self-send lost: %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Report().TotalBytesSent(); got != 0 {
		t.Fatalf("self-send counted as %d bytes of communication", got)
	}
}

func TestVolumeAccounting(t *testing.T) {
	m := New(2)
	err := m.Run(func(c *Comm) error {
		c.SetPhase(stats.PhaseExchange)
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 1000))
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Report()
	if got := r.TotalBytesSent(); got != 1000 {
		t.Fatalf("TotalBytesSent = %d, want 1000", got)
	}
	if got := r.TotalMessages(); got != 1 {
		t.Fatalf("TotalMessages = %d, want 1", got)
	}
	if got := r.PEs[1].Phases[stats.PhaseExchange].BytesRecv; got != 1000 {
		t.Fatalf("PE1 BytesRecv = %d, want 1000", got)
	}
}

func TestRunPropagatesError(t *testing.T) {
	m := New(3)
	err := m.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestBarrier(t *testing.T) {
	for _, p := range ps {
		m := New(p)
		counter := make([]int32, p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			counter[c.Rank()] = 1
			g.Barrier()
			// After the barrier every PE must see every counter set.
			for i := 0; i < p; i++ {
				if counter[i] != 1 {
					return fmt.Errorf("p=%d: PE %d passed barrier before PE %d arrived", p, c.Rank(), i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range ps {
		for root := 0; root < p; root += max(1, p/3) {
			m := New(p)
			payload := []byte(fmt.Sprintf("hello from %d", root))
			err := m.Run(func(c *Comm) error {
				g := c.World()
				var data []byte
				if c.Rank() == root {
					data = payload
				}
				got := g.Bcast(root, data)
				if !bytes.Equal(got, payload) {
					return fmt.Errorf("p=%d root=%d rank=%d: got %q", p, root, c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBcastLogarithmicMessages(t *testing.T) {
	const p = 16
	m := New(p)
	err := m.Run(func(c *Comm) error {
		g := c.World()
		var data []byte
		if c.Rank() == 0 {
			data = make([]byte, 100)
		}
		g.Bcast(0, data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Binomial tree: exactly p-1 messages in total, and the root sends only
	// log2(p) of them.
	r := m.Report()
	if got := r.TotalMessages(); got != p-1 {
		t.Fatalf("bcast messages = %d, want %d", got, p-1)
	}
	if got := r.PEs[0].Total().Messages; got != 4 {
		t.Fatalf("root messages = %d, want log2(16)=4", got)
	}
}

func TestGatherv(t *testing.T) {
	for _, p := range ps {
		for root := 0; root < p; root += max(1, p/2) {
			m := New(p)
			err := m.Run(func(c *Comm) error {
				g := c.World()
				mine := []byte(fmt.Sprintf("pe%d", c.Rank()))
				parts := g.Gatherv(root, mine)
				if c.Rank() != root {
					if parts != nil {
						return fmt.Errorf("non-root got parts")
					}
					return nil
				}
				if len(parts) != p {
					return fmt.Errorf("got %d parts, want %d", len(parts), p)
				}
				for i, part := range parts {
					if string(part) != fmt.Sprintf("pe%d", i) {
						return fmt.Errorf("part %d = %q", i, part)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestAllgatherv(t *testing.T) {
	for _, p := range ps {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			mine := []byte(fmt.Sprintf("data-%d", c.Rank()*c.Rank()))
			parts := g.Allgatherv(mine)
			if len(parts) != p {
				return fmt.Errorf("got %d parts", len(parts))
			}
			for i, part := range parts {
				want := fmt.Sprintf("data-%d", i*i)
				if string(part) != want {
					return fmt.Errorf("part %d = %q, want %q", i, part, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoallv(t *testing.T) {
	for _, p := range ps {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			parts := make([][]byte, p)
			for dst := 0; dst < p; dst++ {
				parts[dst] = []byte(fmt.Sprintf("%d->%d", c.Rank(), dst))
			}
			got := g.Alltoallv(parts)
			for src := 0; src < p; src++ {
				want := fmt.Sprintf("%d->%d", src, c.Rank())
				if string(got[src]) != want {
					return fmt.Errorf("from %d: got %q, want %q", src, got[src], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoallvHypercube(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			parts := make([][]byte, p)
			for dst := 0; dst < p; dst++ {
				parts[dst] = []byte(fmt.Sprintf("%d=>%d", c.Rank(), dst))
			}
			got := g.AlltoallvHypercube(parts)
			for src := 0; src < p; src++ {
				want := fmt.Sprintf("%d=>%d", src, c.Rank())
				if string(got[src]) != want {
					return fmt.Errorf("from %d: got %q, want %q", src, got[src], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestHypercubeTradesVolumeForLatency(t *testing.T) {
	// The hypercube all-to-all must use fewer message rounds but more
	// volume than the direct variant (Section II tradeoff).
	const p = 16
	const sz = 1000
	run := func(hyper bool) (msgs, bytes int64) {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			parts := make([][]byte, p)
			for dst := 0; dst < p; dst++ {
				parts[dst] = make([]byte, sz)
			}
			if hyper {
				g.AlltoallvHypercube(parts)
			} else {
				g.Alltoallv(parts)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		r := m.Report()
		return r.PEs[0].Total().Messages, r.TotalBytesSent()
	}
	dMsgs, dBytes := run(false)
	hMsgs, hBytes := run(true)
	if hMsgs >= dMsgs {
		t.Fatalf("hypercube sends %d msgs/PE, direct %d; want fewer", hMsgs, dMsgs)
	}
	if hBytes <= dBytes {
		t.Fatalf("hypercube volume %d <= direct %d; store-and-forward must cost more", hBytes, dBytes)
	}
}

func TestReduceUint64(t *testing.T) {
	for _, p := range ps {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			vals := []uint64{uint64(c.Rank()), 1, uint64(c.Rank() * 10)}
			res := g.ReduceUint64(0, vals, Sum)
			if c.Rank() != 0 {
				if res != nil {
					return fmt.Errorf("non-root got result")
				}
				return nil
			}
			wantSum := uint64(p * (p - 1) / 2)
			if res[0] != wantSum || res[1] != uint64(p) || res[2] != wantSum*10 {
				return fmt.Errorf("reduce = %v", res)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	for _, p := range ps {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			got := g.AllreduceUint64([]uint64{uint64(c.Rank() + 5)}, Max)
			if got[0] != uint64(p+4) {
				return fmt.Errorf("max = %d, want %d", got[0], p+4)
			}
			got = g.AllreduceUint64([]uint64{uint64(c.Rank() + 5)}, Min)
			if got[0] != 5 {
				return fmt.Errorf("min = %d, want 5", got[0])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestExscan(t *testing.T) {
	for _, p := range ps {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			prefix, total := g.ExscanUint64(uint64(c.Rank() + 1))
			wantPrefix := uint64(c.Rank() * (c.Rank() + 1) / 2)
			wantTotal := uint64(p * (p + 1) / 2)
			if prefix != wantPrefix || total != wantTotal {
				return fmt.Errorf("exscan = (%d,%d), want (%d,%d)", prefix, total, wantPrefix, wantTotal)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestSubgroupCollectives(t *testing.T) {
	// Two disjoint groups run collectives concurrently with distinct gids.
	const p = 8
	m := New(p)
	err := m.Run(func(c *Comm) error {
		var ranks []int
		gid := 1
		if c.Rank()%2 == 0 {
			ranks = []int{0, 2, 4, 6}
		} else {
			ranks = []int{1, 3, 5, 7}
			gid = 2
		}
		g := NewGroup(c, ranks, gid)
		got := g.AllreduceUint64([]uint64{uint64(c.Rank())}, Sum)
		want := uint64(0 + 2 + 4 + 6)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if got[0] != want {
			return fmt.Errorf("rank %d: group sum = %d, want %d", c.Rank(), got[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceBytesOrdered(t *testing.T) {
	// String concatenation is associative but not commutative: the reduce
	// must combine payloads strictly in group index order.
	for _, p := range ps {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			mine := []byte{byte('a' + c.Rank())}
			res := g.ReduceBytes(0, mine, func(lo, hi []byte) []byte {
				return append(append([]byte{}, lo...), hi...)
			})
			if c.Rank() != 0 {
				return nil
			}
			want := make([]byte, p)
			for i := range want {
				want[i] = byte('a' + i)
			}
			if !bytes.Equal(res, want) {
				return fmt.Errorf("reduce order: got %q, want %q", res, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestMachineReuseAndReset(t *testing.T) {
	m := New(2)
	body := func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 10))
		} else {
			c.Recv(0, 1)
		}
		return nil
	}
	if err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	if got := m.Report().TotalBytesSent(); got != 20 {
		t.Fatalf("accumulated volume = %d, want 20", got)
	}
	m.ResetStats()
	if got := m.Report().TotalBytesSent(); got != 0 {
		t.Fatalf("volume after reset = %d", got)
	}
}

func TestGroupGlobalRankTranslation(t *testing.T) {
	m := New(6)
	err := m.Run(func(c *Comm) error {
		if c.Rank() != 2 && c.Rank() != 5 {
			return nil
		}
		g := NewGroup(c, []int{2, 5}, 9)
		if g.N() != 2 {
			return fmt.Errorf("N = %d", g.N())
		}
		if g.GlobalRank(0) != 2 || g.GlobalRank(1) != 5 {
			return fmt.Errorf("translation wrong")
		}
		wantIdx := 0
		if c.Rank() == 5 {
			wantIdx = 1
		}
		if g.Idx() != wantIdx {
			return fmt.Errorf("Idx = %d, want %d", g.Idx(), wantIdx)
		}
		// Exchange through the group.
		got := g.AllreduceUint64([]uint64{uint64(c.Rank())}, Sum)
		if got[0] != 7 {
			return fmt.Errorf("sum = %d", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestModelTimeMonotoneInVolume(t *testing.T) {
	run := func(size int) float64 {
		m := New(4)
		err := m.Run(func(c *Comm) error {
			c.SetPhase(stats.PhaseExchange)
			g := c.World()
			parts := make([][]byte, 4)
			for i := range parts {
				parts[i] = make([]byte, size)
			}
			g.Alltoallv(parts)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Report().ModelTime()
	}
	small, large := run(100), run(100000)
	if large <= small {
		t.Fatalf("model time not monotone: %g <= %g", large, small)
	}
}

func TestWirePayloadThroughMachine(t *testing.T) {
	// Round-trip an LCP-compressed string run through a real exchange.
	m := New(2)
	ss := [][]byte{[]byte("alpha"), []byte("alphabet"), []byte("alps")}
	lcps := []int32{0, 5, 2}
	err := m.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, wire.EncodeStringsLCP(ss, lcps))
			return nil
		}
		got, gotLCP, err := wire.DecodeStringsLCP(c.Recv(0, 1))
		if err != nil {
			return err
		}
		for i := range ss {
			if !bytes.Equal(got[i], ss[i]) {
				return fmt.Errorf("string %d = %q", i, got[i])
			}
		}
		if gotLCP[1] != 5 || gotLCP[2] != 2 {
			return fmt.Errorf("lcps = %v", gotLCP)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
