// Package comm is the accounting-and-collectives layer the paper's
// algorithms run on. The original implementation uses MPI on an InfiniBand
// cluster; here each processing element (PE) owns a transport endpoint with
// strictly private memory, and all data crosses PE boundaries through
// explicit tagged point-to-point messages and collective operations built
// on top of them.
//
// The message substrate itself is pluggable (package transport): the
// default backend runs every PE as a goroutine with in-process mailboxes
// (transport/local), and the TCP backend runs PEs as OS processes connected
// by persistent pairwise sockets (transport/tcp). comm is deliberately thin
// over it — rank metadata, Send/Recv forwarding, and the collectives — so
// the algorithms in internal/core are oblivious to the delivery mechanism.
//
// Byte accounting lives HERE, not in the transports: every payload byte and
// message sent to a *different* PE is attributed to the sending PE's
// current accounting phase (package stats) at the comm Send/Recv boundary.
// This is how the "bytes sent per string" panels of Figures 4 and 5 are
// reproduced exactly, and it is why the statistics are bit-identical across
// backends: the transports move bytes, comm counts them.
//
// Message semantics follow MPI: every Send's payload is copied (a PE can
// never observe another PE's memory), messages between a fixed (sender,
// receiver) pair are non-overtaking, and a receive selects the earliest
// pending message from the requested source with the requested tag.
package comm

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"dss/internal/par"
	"dss/internal/stats"
	"dss/internal/trace"
	"dss/internal/transport"
	"dss/internal/transport/local"
)

// Machine is a distributed-memory machine with P processing elements over
// an in-process fabric. Create one with New (goroutine mailboxes) or
// NewOver (any fabric, e.g. loopback TCP), then execute an SPMD program
// with Run. A Machine can be reused for several consecutive Run calls;
// statistics accumulate until ResetStats is called. Call Close when done to
// release fabric resources (a no-op for the local backend).
//
// SPMD multi-process programs do not use a Machine at all: each process
// wraps its own endpoint with NewComm instead.
type Machine struct {
	fabric transport.Fabric
	pes    []*stats.PE
	model  stats.CostModel
	pool   *par.Pool
	recs   []*trace.Recorder // per-PE timeline recorders; nil = tracing off
}

// New creates a machine with p PEs over the in-process mailbox transport
// and the default cost model.
func New(p int) *Machine {
	if p <= 0 {
		panic("comm: machine needs at least one PE")
	}
	return NewOver(local.New(p))
}

// NewOver creates a machine over an existing connected fabric.
func NewOver(f transport.Fabric) *Machine {
	p := f.P()
	m := &Machine{
		fabric: f,
		pes:    make([]*stats.PE, p),
		model:  stats.DefaultModel(),
	}
	for rank := 0; rank < p; rank++ {
		m.pes[rank] = &stats.PE{Rank: rank}
	}
	return m
}

// P returns the number of PEs.
func (m *Machine) P() int { return m.fabric.P() }

// SetModel replaces the cost model used for reports.
func (m *Machine) SetModel(model stats.CostModel) { m.model = model }

// SetPool installs an intra-PE work pool shared by all PEs of the machine
// (nil reverts to sequential). Sharing one pool machine-wide is the right
// bound on a single host: the PE goroutines themselves already occupy
// cores, and the pool's token count caps the extra helpers.
func (m *Machine) SetPool(p *par.Pool) { m.pool = p }

// EnableTrace creates one timeline recorder per PE (capacity <= 0 selects
// the default ring size) so subsequent Run calls record phase spans,
// collective posts, transport frame instants and worker spans. The
// recorders only observe — the deterministic statistics are bit-identical
// with tracing on or off.
func (m *Machine) EnableTrace(capacity int) {
	m.recs = make([]*trace.Recorder, m.P())
	for rank := range m.recs {
		m.recs[rank] = trace.New(rank, capacity)
	}
}

// TraceBuffers snapshots the per-PE recorders created by EnableTrace; nil
// when tracing was never enabled. In-process PEs share one clock, so the
// buffers carry zero clock offsets.
func (m *Machine) TraceBuffers() []*trace.Buffer {
	if m.recs == nil {
		return nil
	}
	bufs := make([]*trace.Buffer, len(m.recs))
	for i, r := range m.recs {
		bufs[i] = r.Snapshot()
	}
	return bufs
}

// Report returns the accounting report accumulated so far.
func (m *Machine) Report() *stats.Report {
	return stats.NewReport(m.pes, m.model)
}

// ResetStats clears all accumulated counters.
func (m *Machine) ResetStats() {
	for i := range m.pes {
		m.pes[i] = &stats.PE{Rank: i}
	}
}

// Close tears down the underlying fabric. A no-op for the local backend;
// for socket-backed fabrics it closes every connection.
func (m *Machine) Close() error { return m.fabric.Close() }

// Run executes f once per PE, concurrently, and waits for all PEs to
// finish. Each invocation receives a Comm bound to its rank. If any PE
// returns an error or panics, Run returns an error describing the first
// failure (all PEs are still waited for; a panicking PE may leave peers
// blocked in Recv, which Run detects only through the test timeout, so
// algorithm code must not panic in normal operation).
func (m *Machine) Run(f func(c *Comm) error) error {
	p := m.fabric.P()
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("PE %d panicked: %v\n%s", rank, r, debug.Stack())
					// Unblock every peer that might be waiting on us by
					// flooding poison messages is not safe in general; we
					// rely on the panic being a programming error surfaced
					// in tests. Mark and return.
				}
			}()
			c := newComm(m.fabric.Endpoint(rank), m.pes[rank])
			c.SetPool(m.pool)
			if m.recs != nil {
				c.SetTrace(m.recs[rank])
			}
			errs[rank] = f(c)
			c.flushWall()
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one PE's endpoint of the machine: its transport endpoint and its
// accounting state. A Comm is confined to the goroutine running the PE.
type Comm struct {
	t          transport.Transport
	st         *stats.PE
	wm         wireMeter       // non-nil when the transport meters wire bytes itself
	ns         netStats        // non-nil when the transport reports reconnect counters
	tr         *trace.Recorder // timeline recorder; nil = tracing off
	pool       *par.Pool       // intra-PE work pool; nil = sequential
	phase      stats.Phase
	phaseStart time.Time // start of the current phase's wall span
}

// wireMeter is the optional transport interface of the wire-compression
// decorator (transport/codec): a transport that changes the bytes crossing
// the fabric meters the actual frame sizes into the PE's wire counters and
// follows the comm layer's phase transitions. Transports without the
// interface ship frames verbatim, and comm mirrors the raw volume into the
// wire counters instead — stats.PE.Wire is always populated either way.
type wireMeter interface {
	BindWireStats(*stats.PE)
	SetWirePhase(stats.Phase)
}

// traceBinder is the optional transport interface of decorators that
// record their own timeline events: the codec decorator implements it to
// put post-codec frame sizes next to the raw volume on the timeline.
type traceBinder interface {
	BindTrace(*trace.Recorder)
}

// netStats is the optional transport interface of backends that survive
// connection loss (transport/tcp, seen through the decorators): cumulative
// counts of reconnects and of frames/bytes replayed from resend rings.
// comm snapshots them into the PE's measured-channel stats alongside wall
// time — recovery happens below the accounting boundary and never touches
// the deterministic counters.
type netStats interface {
	NetStats() (reconnects, resentFrames, resentBytes int64)
}

// NewComm wraps a single connected transport endpoint for SPMD runs where
// each OS process is one PE (see transport/tcp.Connect and cmd/dss-worker).
// The Comm starts with fresh accounting state; the caller keeps ownership
// of the endpoint and is responsible for closing it.
func NewComm(t transport.Transport) *Comm {
	return newComm(t, &stats.PE{Rank: t.Rank()})
}

// newComm binds a transport endpoint to its accounting state, hooking up
// the wire metering when the transport supports it.
func newComm(t transport.Transport, pe *stats.PE) *Comm {
	c := &Comm{t: t, st: pe, phaseStart: time.Now()}
	if wm, ok := t.(wireMeter); ok {
		wm.BindWireStats(pe)
		wm.SetWirePhase(c.phase)
		c.wm = wm
	}
	if ns, ok := t.(netStats); ok {
		c.ns = ns
	}
	return c
}

// Rank returns this PE's rank in [0, P).
func (c *Comm) Rank() int { return c.t.Rank() }

// P returns the number of PEs of the machine.
func (c *Comm) P() int { return c.t.P() }

// SetPhase switches the accounting phase for subsequent operations and
// returns the previous phase. Besides steering the deterministic counters
// it closes the old phase's wall-clock span (stats.PE.Wall), which feeds
// the overlap model's per-phase timeline.
func (c *Comm) SetPhase(ph stats.Phase) stats.Phase {
	c.flushWall()
	old := c.phase
	c.phase = ph
	if c.wm != nil {
		c.wm.SetWirePhase(ph)
	}
	if c.tr != nil {
		c.tr.End(trace.TrackControl, old.String())
		c.tr.Begin(trace.TrackControl, ph.String())
	}
	if trace.LiveOn() {
		trace.Live.SetPhase(c.t.Rank(), ph.String())
	}
	return old
}

// SetTrace installs the PE's timeline recorder (nil = tracing off) and
// opens the current phase's span. A codec-decorated transport is bound
// too, so post-codec frame sizes land on the same timeline. The recorder
// only observes; no deterministic counter depends on it.
func (c *Comm) SetTrace(r *trace.Recorder) {
	c.tr = r
	if tb, ok := c.t.(traceBinder); ok {
		tb.BindTrace(r)
	}
	r.Begin(trace.TrackControl, c.phase.String())
}

// Trace returns the PE's timeline recorder; nil when tracing is off.
// Layers below comm (spill pools, merge hooks) pick it up from here.
func (c *Comm) Trace() *trace.Recorder { return c.tr }

// flushWall folds the elapsed wall time of the current phase span into the
// PE's Wall counters and restarts the span.
func (c *Comm) flushWall() {
	// Snapshot the transport's cumulative failure-recovery counters while
	// we are at an accounting boundary anyway (overwrite, not add — the
	// transport's counters are already cumulative).
	if c.ns != nil {
		c.st.Reconnects, c.st.ResentFrames, c.st.ResentBytes = c.ns.NetStats()
	}
	now := time.Now()
	if !c.phaseStart.IsZero() {
		c.st.Wall[c.phase] += now.Sub(c.phaseStart).Nanoseconds()
	}
	c.phaseStart = now
}

// Phase returns the current accounting phase.
func (c *Comm) Phase() stats.Phase { return c.phase }

// AddWork credits local work units (character inspections, moves) to the
// current phase.
func (c *Comm) AddWork(units int64) {
	c.st.Phases[c.phase].Work += units
}

// SetPool installs this PE's intra-PE work pool (nil = sequential) and
// records the pool width in the PE's statistics.
func (c *Comm) SetPool(p *par.Pool) {
	c.pool = p
	c.st.Cores = int64(p.Cores())
}

// Pool returns the PE's intra-PE work pool; nil means sequential, which
// every par entry point treats as the exact width-1 code path.
func (c *Comm) Pool() *par.Pool { return c.pool }

// AddCPU credits busy worker nanoseconds from a parallel region to the
// current phase's CPU measurement channel (never a model input).
func (c *Comm) AddCPU(ns int64) {
	c.st.CPU[c.phase] += ns
}

// StatsPE returns this PE's accounting state. While the PE is running it
// must only be read from the PE's own goroutine.
func (c *Comm) StatsPE() *stats.PE { return c.st }

// Send transmits data to dst with the given tag. The payload is copied (or
// fully written out) by the transport, so the caller retains ownership of
// data. Self-sends are delivered but do not count as communication volume
// (no bytes leave the PE). The volume and message count are attributed here,
// at the comm boundary, identically for every backend.
func (c *Comm) Send(dst, tag int, data []byte) {
	c.sendAs(c.phase, dst, tag, data)
}

// Recv blocks until a message with the given tag arrives from src and
// returns its payload. The returned slice is owned by the caller.
func (c *Comm) Recv(src, tag int) []byte {
	data := c.t.Recv(src, tag)
	c.accountRecvAs(c.phase, src, len(data))
	return data
}

// accountSendAs / accountRecvAs are the single home of the deterministic
// volume accounting, parameterized by the phase to bill: the blocking
// operations bill the current phase, split-phase Pendings bill the phase
// captured at post time, and the chunked exchange bills each bucket here
// as ONE logical message before shipping its frames itself. Keeping one
// copy is what guarantees all forms stay bit-identical.
func (c *Comm) accountSendAs(ph stats.Phase, dst, n int) {
	if dst != c.t.Rank() {
		pc := &c.st.Phases[ph]
		pc.BytesSent += int64(n)
		pc.Messages++
		if c.wm == nil {
			// No codec decorates the transport: every frame ships
			// verbatim, so the wire volume IS the raw volume.
			c.st.Wire[ph].Sent += int64(n)
		}
		c.tr.Instant(trace.TrackControl, "send", int64(n), int64(dst))
		if trace.LiveOn() {
			trace.Live.RawSent.Add(int64(n))
			if c.wm == nil {
				trace.Live.WireSent.Add(int64(n))
			}
		}
	}
}

func (c *Comm) sendAs(ph stats.Phase, dst, tag int, data []byte) {
	c.accountSendAs(ph, dst, len(data))
	c.t.Send(dst, tag, data)
}

func (c *Comm) accountRecvAs(ph stats.Phase, src, n int) {
	if src != c.t.Rank() {
		c.st.Phases[ph].BytesRecv += int64(n)
		if c.wm == nil {
			c.st.Wire[ph].Recv += int64(n)
		}
		c.tr.Instant(trace.TrackControl, "recv", int64(n), int64(src))
		if trace.LiveOn() {
			trace.Live.RawRecv.Add(int64(n))
			if c.wm == nil {
				trace.Live.WireRecv.Add(int64(n))
			}
		}
	}
}

// WorkerObserver returns a par.Observer that attributes each worker's
// busy interval of a labeled fork point to its goroutine track; nil when
// tracing is off (par treats nil as unobserved, so the disabled path
// costs nothing).
func (c *Comm) WorkerObserver(label string) par.Observer {
	tr := c.tr
	if tr == nil {
		return nil
	}
	return func(worker int, startNS, endNS int64) {
		tr.Span(trace.TrackWorker0+int32(worker), label, startNS, endNS)
	}
}

// ForEachSpan is Pool().ForEach with trace attribution: each
// participating worker's busy span lands on its goroutine track under the
// given label when tracing is enabled. The schedule and the returned busy
// nanoseconds are identical to a plain ForEach.
func (c *Comm) ForEachSpan(label string, n int, fn func(i int)) int64 {
	return c.pool.ForEachObs(n, fn, c.WorkerObserver(label))
}

// Release returns payload buffers (typically obtained from Recv or a
// collective) to the transport's buffer pool for reuse. Call it only when
// the payload — including every sub-slice handed out by a decoder — is no
// longer referenced; decoders that copy their results out (the wire
// package's arena decoders do) leave the message releasable. Releasing is
// optional and never required for correctness.
func (c *Comm) Release(bufs ...[]byte) {
	c.t.Release(bufs...)
}

// SendRecv exchanges a message with a partner PE: it sends data to partner
// and receives the partner's message with the same tag. Safe against
// deadlock because sends never block.
func (c *Comm) SendRecv(partner, tag int, data []byte) []byte {
	c.Send(partner, tag, data)
	return c.Recv(partner, tag)
}

// WorldRanks returns the rank list [0, p) — the membership of the world
// group.
func WorldRanks(p int) []int {
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// World returns the group of all PEs, on which the collective operations
// are defined.
func (c *Comm) World() *Group {
	return &Group{c: c, ranks: WorldRanks(c.t.P()), myIdx: c.t.Rank(), gid: 0}
}
