// Package comm implements the distributed-memory machine substrate that the
// paper's algorithms run on. The original implementation uses MPI on an
// InfiniBand cluster; here each processing element (PE) is a goroutine with
// strictly private memory, and all data crosses PE boundaries through
// explicit tagged point-to-point messages and collective operations built
// on top of them.
//
// The substrate enforces message-passing discipline: every Send copies its
// payload, so a PE can never observe another PE's memory. Every payload
// byte and message sent to a *different* PE is attributed to the sending
// PE's current accounting phase (package stats), which is how the
// "bytes sent per string" panels of Figures 4 and 5 are reproduced exactly.
//
// Message semantics follow MPI: messages between a fixed (sender, receiver)
// pair are non-overtaking, and a receive selects the earliest pending
// message from the requested source with the requested tag.
package comm

import (
	"fmt"
	"math/bits"
	"runtime/debug"
	"sync"

	"dss/internal/stats"
)

// bufPool recycles message payload buffers in power-of-two size classes.
// Send draws its mandatory payload copy from here, and receivers that have
// fully consumed a payload hand it back through Comm.Release, making a
// steady-state exchange allocation-free. Returning buffers is optional:
// an unreleased buffer is simply collected by the GC.
//
// The free lists are plain mutex-guarded stacks rather than sync.Pool:
// putting a []byte into a sync.Pool boxes the slice header on every call,
// which would re-introduce exactly the per-message allocation the pool is
// meant to remove. The Machine keeps one bufPool per PE and each PE only
// ever touches its own (Send and Release are PE-goroutine-confined like
// the rest of Comm), so the mutex is never contended; it exists only to
// keep the type safe against future cross-PE use. Buffers migrate freely:
// a buffer allocated by the sender's pool may be released into the
// receiver's.
type bufPool struct {
	mu      sync.Mutex
	classes [numBufClasses][][]byte
}

// numBufClasses covers pooled payloads up to 128 MiB; larger ones fall
// back to plain allocation. maxPerClass bounds the memory parked per size
// class.
const (
	numBufClasses = 28
	maxPerClass   = 256
)

// get returns a buffer of length n with capacity of the containing size
// class. Contents are unspecified; callers overwrite the full length.
func (p *bufPool) get(n int) []byte {
	if n == 0 {
		return []byte{}
	}
	c := bits.Len(uint(n - 1)) // smallest c with n ≤ 1<<c
	if c >= numBufClasses {
		return make([]byte, n)
	}
	p.mu.Lock()
	if l := len(p.classes[c]); l > 0 {
		b := p.classes[c][l-1]
		p.classes[c] = p.classes[c][:l-1]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]byte, n, 1<<c)
}

// put returns a buffer to the pool, classed by its capacity so that a
// future get never receives a buffer that is too small.
func (p *bufPool) put(b []byte) {
	n := cap(b)
	if n == 0 {
		return
	}
	c := bits.Len(uint(n)) - 1 // largest c with 1<<c ≤ cap
	if c >= numBufClasses {
		return
	}
	p.mu.Lock()
	if len(p.classes[c]) < maxPerClass {
		p.classes[c] = append(p.classes[c], b[:0])
	}
	p.mu.Unlock()
}

// envelope is one in-flight message.
type envelope struct {
	tag  int
	data []byte
}

// mailbox queues messages from one fixed sender to one fixed receiver.
// Senders never block (the queue is unbounded); receivers block until a
// message with a matching tag arrives.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []envelope
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(tag int, data []byte) {
	m.mu.Lock()
	m.q = append(m.q, envelope{tag: tag, data: data})
	m.mu.Unlock()
	m.cond.Broadcast()
}

// pop removes and returns the earliest message with the given tag,
// blocking until one is available.
func (m *mailbox) pop(tag int) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.q {
			if m.q[i].tag == tag {
				data := m.q[i].data
				m.q = append(m.q[:i], m.q[i+1:]...)
				return data
			}
		}
		m.cond.Wait()
	}
}

// Machine is a simulated distributed-memory machine with P processing
// elements. Create one with New, then execute an SPMD program with Run.
// A Machine can be reused for several consecutive Run calls; statistics
// accumulate until ResetStats is called.
type Machine struct {
	p     int
	boxes [][]*mailbox // boxes[dst][src]
	pes   []*stats.PE
	model stats.CostModel
	pools []bufPool // per-PE recycled payload buffers (see Send / Release)
}

// New creates a machine with p PEs and the default cost model.
func New(p int) *Machine {
	if p <= 0 {
		panic("comm: machine needs at least one PE")
	}
	m := &Machine{
		p:     p,
		boxes: make([][]*mailbox, p),
		pes:   make([]*stats.PE, p),
		model: stats.DefaultModel(),
		pools: make([]bufPool, p),
	}
	for dst := 0; dst < p; dst++ {
		m.boxes[dst] = make([]*mailbox, p)
		for src := 0; src < p; src++ {
			m.boxes[dst][src] = newMailbox()
		}
		m.pes[dst] = &stats.PE{Rank: dst}
	}
	return m
}

// P returns the number of PEs.
func (m *Machine) P() int { return m.p }

// SetModel replaces the cost model used for reports.
func (m *Machine) SetModel(model stats.CostModel) { m.model = model }

// Report returns the accounting report accumulated so far.
func (m *Machine) Report() *stats.Report {
	return stats.NewReport(m.pes, m.model)
}

// ResetStats clears all accumulated counters.
func (m *Machine) ResetStats() {
	for i := range m.pes {
		m.pes[i] = &stats.PE{Rank: i}
	}
}

// Run executes f once per PE, concurrently, and waits for all PEs to
// finish. Each invocation receives a Comm bound to its rank. If any PE
// returns an error or panics, Run returns an error describing the first
// failure (all PEs are still waited for; a panicking PE may leave peers
// blocked in Recv, which Run detects only through the test timeout, so
// algorithm code must not panic in normal operation).
func (m *Machine) Run(f func(c *Comm) error) error {
	errs := make([]error, m.p)
	var wg sync.WaitGroup
	wg.Add(m.p)
	for rank := 0; rank < m.p; rank++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("PE %d panicked: %v\n%s", rank, r, debug.Stack())
					// Unblock every peer that might be waiting on us by
					// flooding poison messages is not safe in general; we
					// rely on the panic being a programming error surfaced
					// in tests. Mark and return.
				}
			}()
			errs[rank] = f(&Comm{rank: rank, m: m, st: m.pes[rank]})
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one PE's endpoint of the machine: its rank, its mailboxes and its
// accounting state. A Comm is confined to the goroutine running the PE.
type Comm struct {
	rank  int
	m     *Machine
	st    *stats.PE
	phase stats.Phase
}

// Rank returns this PE's rank in [0, P).
func (c *Comm) Rank() int { return c.rank }

// P returns the number of PEs of the machine.
func (c *Comm) P() int { return c.m.p }

// SetPhase switches the accounting phase for subsequent operations and
// returns the previous phase.
func (c *Comm) SetPhase(ph stats.Phase) stats.Phase {
	old := c.phase
	c.phase = ph
	return old
}

// Phase returns the current accounting phase.
func (c *Comm) Phase() stats.Phase { return c.phase }

// AddWork credits local work units (character inspections, moves) to the
// current phase.
func (c *Comm) AddWork(units int64) {
	c.st.Phases[c.phase].Work += units
}

// Send transmits data to dst with the given tag. The payload is copied, so
// the caller retains ownership of data. Self-sends are delivered but do not
// count as communication volume (no bytes leave the PE). The copy is drawn
// from the machine's buffer pool; the receiver may hand it back with
// Release once fully consumed.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.m.p {
		panic(fmt.Sprintf("comm: send to invalid rank %d (P=%d)", dst, c.m.p))
	}
	cp := c.m.pools[c.rank].get(len(data))
	copy(cp, data)
	if dst != c.rank {
		ph := &c.st.Phases[c.phase]
		ph.BytesSent += int64(len(data))
		ph.Messages++
	}
	c.m.boxes[dst][c.rank].push(tag, cp)
}

// Recv blocks until a message with the given tag arrives from src and
// returns its payload. The returned slice is owned by the caller.
func (c *Comm) Recv(src, tag int) []byte {
	if src < 0 || src >= c.m.p {
		panic(fmt.Sprintf("comm: recv from invalid rank %d (P=%d)", src, c.m.p))
	}
	data := c.m.boxes[c.rank][src].pop(tag)
	if src != c.rank {
		c.st.Phases[c.phase].BytesRecv += int64(len(data))
	}
	return data
}

// Release returns payload buffers (typically obtained from Recv or a
// collective) to the machine's buffer pool for reuse by future Sends. Call
// it only when the payload — including every sub-slice handed out by a
// decoder — is no longer referenced; decoders that copy their results out
// (the wire package's arena decoders do) leave the message releasable.
// Releasing is optional and never required for correctness.
func (c *Comm) Release(bufs ...[]byte) {
	for _, b := range bufs {
		c.m.pools[c.rank].put(b)
	}
}

// SendRecv exchanges a message with a partner PE: it sends data to partner
// and receives the partner's message with the same tag. Safe against
// deadlock because sends never block.
func (c *Comm) SendRecv(partner, tag int, data []byte) []byte {
	c.Send(partner, tag, data)
	return c.Recv(partner, tag)
}

// World returns the group of all PEs, on which the collective operations
// are defined.
func (c *Comm) World() *Group {
	ranks := make([]int, c.m.p)
	for i := range ranks {
		ranks[i] = i
	}
	return &Group{c: c, ranks: ranks, myIdx: c.rank, gid: 0}
}
