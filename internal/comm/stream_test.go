package comm

import (
	"bytes"
	"testing"

	"dss/internal/stats"
)

// TestIAlltoallvChunkedMatchesEager is the accounting differential of the
// chunked exchange: reassembling every member's fragments must reproduce
// the eager Alltoallv payloads byte for byte, and the deterministic
// per-phase counters — one logical message and the full bucket volume per
// destination, billed to the posting phase — must be bit-identical to the
// eager collective, for every PE count and across chunk sizes including
// degenerate single-byte frames.
func TestIAlltoallvChunkedMatchesEager(t *testing.T) {
	for _, p := range ps {
		mRef := New(p)
		refOut := make([][][]byte, p)
		if err := mRef.Run(func(c *Comm) error {
			c.SetPhase(stats.PhaseExchange)
			refOut[c.Rank()] = c.World().Alltoallv(alltoallParts(c.Rank(), p))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		refStats := phaseCounters(mRef)

		for _, chunk := range []int{1, 7, 64, 0 /* default */} {
			m := New(p)
			out := make([][][]byte, p)
			if err := m.Run(func(c *Comm) error {
				c.SetPhase(stats.PhaseExchange)
				pd := c.World().IAlltoallvChunked(alltoallParts(c.Rank(), p), chunk)
				// Drain while in a DIFFERENT phase: receive volume must
				// still bill to the posting phase, like every Pending.
				c.SetPhase(stats.PhaseMerge)
				buckets := make([][]byte, p)
				seen := make([]bool, p)
				for {
					idx, frag, frame, last, ok := pd.RecvChunk()
					if !ok {
						break
					}
					buckets[idx] = append(buckets[idx], frag...)
					c.Release(frame)
					if last {
						if seen[idx] {
							t.Errorf("p=%d chunk=%d: member %d finished twice", p, chunk, idx)
						}
						seen[idx] = true
					}
				}
				for idx, done := range seen {
					if !done {
						t.Errorf("p=%d chunk=%d: member %d never finished", p, chunk, idx)
					}
				}
				out[c.Rank()] = buckets
				if c.StatsPE().ExchangeDoneNS == 0 {
					t.Errorf("p=%d chunk=%d: exchange-done milestone not stamped", p, chunk)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for rank := 0; rank < p; rank++ {
				for src := 0; src < p; src++ {
					if !bytes.Equal(refOut[rank][src], out[rank][src]) {
						t.Fatalf("p=%d chunk=%d: rank %d bucket from %d differs", p, chunk, rank, src)
					}
				}
			}
			got := phaseCounters(m)
			for rank := 0; rank < p; rank++ {
				if got[rank] != refStats[rank] {
					t.Fatalf("p=%d chunk=%d: rank %d counters differ:\neager:   %+v\nchunked: %+v",
						p, chunk, rank, refStats[rank], got[rank])
				}
			}
		}
	}
}

// TestIAlltoallvChunkedFrameSequence pins the per-member fragment protocol:
// within one member, fragments surface in send order with exactly one
// last-marked frame, the self part arrives first as a single fragment, and
// empty buckets still deliver their (empty, last) completion fragment.
func TestIAlltoallvChunkedFrameSequence(t *testing.T) {
	const p = 4
	m := New(p)
	if err := m.Run(func(c *Comm) error {
		parts := make([][]byte, p)
		for dst := range parts {
			if dst%2 == 0 {
				parts[dst] = nil // empty buckets complete too
			} else {
				parts[dst] = bytes.Repeat([]byte{byte(c.Rank()*16 + dst)}, 10)
			}
		}
		pd := c.World().IAlltoallvChunked(parts, 3)
		// What rank r receives from member s is s's parts[r]: empty when r
		// is even, 10 bytes (4 three-byte frames) when r is odd.
		recvEmpty := c.Rank()%2 == 0
		first := true
		counts := make([]int, p)
		for {
			idx, frag, _, last, ok := pd.RecvChunk()
			if !ok {
				break
			}
			if first {
				if idx != c.Rank() || !last {
					t.Errorf("rank %d: first fragment was (%d, last=%v), want own part complete", c.Rank(), idx, last)
				}
				first = false
			}
			counts[idx]++
			if recvEmpty && (len(frag) != 0 || counts[idx] != 1) {
				t.Errorf("rank %d: empty bucket from %d delivered %d bytes in fragment %d",
					c.Rank(), idx, len(frag), counts[idx])
			}
		}
		if _, _, _, _, ok := pd.RecvChunk(); ok {
			t.Errorf("rank %d: RecvChunk after completion reported a fragment", c.Rank())
		}
		for idx, n := range counts {
			want := 4 // 10 payload bytes at 3-byte frames
			if recvEmpty || idx == c.Rank() {
				want = 1 // empty buckets and the self part are one fragment
			}
			if n != want {
				t.Errorf("rank %d: member %d delivered %d fragments, want %d", c.Rank(), idx, n, want)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
