package comm

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dss/internal/stats"
)

// phaseCounters extracts the deterministic per-phase counters of every PE.
// Wall and Overlap are wall-clock measurements and deliberately excluded:
// the differential guarantee of the split-phase layer covers exactly the
// counters the model time and the figures are computed from.
func phaseCounters(m *Machine) [][stats.NumPhases]stats.PhaseCounters {
	out := make([][stats.NumPhases]stats.PhaseCounters, len(m.pes))
	for i, pe := range m.pes {
		out[i] = pe.Phases
	}
	return out
}

// alltoallParts builds a deterministic, size-skewed payload set.
func alltoallParts(rank, p int) [][]byte {
	parts := make([][]byte, p)
	for dst := 0; dst < p; dst++ {
		parts[dst] = bytes.Repeat([]byte{byte(rank*31 + dst)}, (rank+dst*7)%97)
	}
	return parts
}

// TestIAlltoallvWaitMatchesBlocking is the differential test of the
// acceptance criteria: the blocking Alltoallv and IAlltoallv+Wait must
// produce byte-identical outputs and bit-identical deterministic counters
// (hence identical model-ms and bytes-str), on every PE count.
func TestIAlltoallvWaitMatchesBlocking(t *testing.T) {
	for _, p := range ps {
		run := func(split bool) ([][][]byte, [][stats.NumPhases]stats.PhaseCounters) {
			m := New(p)
			got := make([][][]byte, p)
			err := m.Run(func(c *Comm) error {
				c.SetPhase(stats.PhaseExchange)
				g := c.World()
				parts := alltoallParts(c.Rank(), p)
				if split {
					got[c.Rank()] = g.IAlltoallv(parts).Wait()
				} else {
					got[c.Rank()] = g.Alltoallv(parts)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return got, phaseCounters(m)
		}
		blockOut, blockStats := run(false)
		splitOut, splitStats := run(true)
		for rank := 0; rank < p; rank++ {
			for src := 0; src < p; src++ {
				if !bytes.Equal(blockOut[rank][src], splitOut[rank][src]) {
					t.Fatalf("p=%d rank=%d src=%d: payloads differ", p, rank, src)
				}
			}
			if blockStats[rank] != splitStats[rank] {
				t.Fatalf("p=%d rank=%d: counters differ:\nblocking: %+v\nsplit:    %+v",
					p, rank, blockStats[rank], splitStats[rank])
			}
		}
	}
}

// TestIAlltoallvPollAnyDrain drains with PollAny (arrival order) and checks
// that every payload arrives exactly once, intact, with the same
// deterministic counters as the blocking collective, and that releasing
// each payload exactly once is pool-safe (the -race CI job runs this).
func TestIAlltoallvPollAnyDrain(t *testing.T) {
	for _, p := range ps {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			c.SetPhase(stats.PhaseExchange)
			g := c.World()
			parts := alltoallParts(c.Rank(), p)
			pd := g.IAlltoallv(parts)
			c.SetPhase(stats.PhaseMerge) // drain in a later phase, like the sorters
			seen := make([]bool, p)
			for {
				src, data, ok := pd.PollAny()
				if !ok {
					break
				}
				if seen[src] {
					return fmt.Errorf("source %d drained twice", src)
				}
				seen[src] = true
				want := bytes.Repeat([]byte{byte(src*31 + c.Rank())}, (src+c.Rank()*7)%97)
				if !bytes.Equal(data, want) {
					return fmt.Errorf("payload from %d corrupted", src)
				}
				c.Release(data)
			}
			for src, s := range seen {
				if !s {
					return fmt.Errorf("source %d never drained", src)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// The exchange was posted in PhaseExchange and drained in
		// PhaseMerge; all its bytes must still be billed to the posting
		// phase, so the counters match a fully blocking exchange.
		blocking := New(p)
		err = blocking.Run(func(c *Comm) error {
			c.SetPhase(stats.PhaseExchange)
			out := c.World().Alltoallv(alltoallParts(c.Rank(), p))
			c.Release(out...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		a, b := phaseCounters(m), phaseCounters(blocking)
		for rank := range a {
			if a[rank] != b[rank] {
				t.Fatalf("p=%d rank=%d: split-phase drain moved counters between phases:\nsplit:    %+v\nblocking: %+v",
					p, rank, a[rank], b[rank])
			}
		}
	}
}

// TestPollRecvTargetedDrain drains members in reverse rank order with
// PollRecv and checks payload integrity.
func TestPollRecvTargetedDrain(t *testing.T) {
	const p = 5
	m := New(p)
	err := m.Run(func(c *Comm) error {
		g := c.World()
		pd := g.IAlltoallv(alltoallParts(c.Rank(), p))
		for idx := p - 1; idx >= 0; idx-- {
			data := pd.PollRecv(idx)
			want := bytes.Repeat([]byte{byte(idx*31 + c.Rank())}, (idx+c.Rank()*7)%97)
			if !bytes.Equal(data, want) {
				return fmt.Errorf("payload from %d corrupted", idx)
			}
			c.Release(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIBarrierMatchesBarrier checks that IBarrier+Wait synchronizes and
// produces the message counts of the dissemination barrier.
func TestIBarrierMatchesBarrier(t *testing.T) {
	for _, p := range ps {
		run := func(split bool) [][stats.NumPhases]stats.PhaseCounters {
			m := New(p)
			counter := make([]int32, p)
			err := m.Run(func(c *Comm) error {
				g := c.World()
				counter[c.Rank()] = 1
				if split {
					g.IBarrier().Wait()
				} else {
					g.Barrier()
				}
				for i := 0; i < p; i++ {
					if counter[i] != 1 {
						return fmt.Errorf("PE %d passed before PE %d arrived", c.Rank(), i)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return phaseCounters(m)
		}
		a, b := run(false), run(true)
		for rank := range a {
			if a[rank] != b[rank] {
				t.Fatalf("p=%d rank=%d: barrier counters differ", p, rank)
			}
		}
	}
}

// TestIAllgathervMatchesAllgatherv checks results and counters of the
// split-phase allgather against the blocking one.
func TestIAllgathervMatchesAllgatherv(t *testing.T) {
	for _, p := range ps {
		run := func(split bool) ([][][]byte, [][stats.NumPhases]stats.PhaseCounters) {
			m := New(p)
			got := make([][][]byte, p)
			err := m.Run(func(c *Comm) error {
				c.SetPhase(stats.PhasePartition)
				g := c.World()
				mine := []byte(fmt.Sprintf("data-%d", c.Rank()*c.Rank()))
				if split {
					pd := g.IAllgatherv(mine)
					got[c.Rank()] = pd.Wait()
				} else {
					got[c.Rank()] = g.Allgatherv(mine)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return got, phaseCounters(m)
		}
		blockOut, blockStats := run(false)
		splitOut, splitStats := run(true)
		for rank := 0; rank < p; rank++ {
			for i := 0; i < p; i++ {
				want := fmt.Sprintf("data-%d", i*i)
				if string(blockOut[rank][i]) != want || string(splitOut[rank][i]) != want {
					t.Fatalf("p=%d rank=%d member %d: got %q / %q, want %q",
						p, rank, i, blockOut[rank][i], splitOut[rank][i], want)
				}
			}
			if blockStats[rank] != splitStats[rank] {
				t.Fatalf("p=%d rank=%d: allgather counters differ", p, rank)
			}
		}
	}
}

// TestWaitAfterPartialDrainLeavesHandedOutNil pins the ownership contract:
// payloads already handed out by PollRecv/PollAny do not reappear in Wait's
// result, so no buffer can be double-released.
func TestWaitAfterPartialDrainLeavesHandedOutNil(t *testing.T) {
	const p = 4
	m := New(p)
	err := m.Run(func(c *Comm) error {
		g := c.World()
		pd := g.IAlltoallv(alltoallParts(c.Rank(), p))
		first, firstData, ok := pd.PollAny()
		if !ok {
			return fmt.Errorf("PollAny returned no payload")
		}
		c.Release(firstData)
		rest := pd.Wait()
		if rest[first] != nil {
			return fmt.Errorf("member %d handed out by PollAny reappeared in Wait", first)
		}
		for idx, data := range rest {
			if idx == first {
				continue
			}
			if data == nil {
				return fmt.Errorf("member %d missing from Wait result", idx)
			}
			c.Release(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIAllgathervCallerKeepsOwnership pins the buffer-ownership contract
// of the split-phase allgather: the caller may mutate (or reuse) its
// contribution buffer between posting and Wait — the overlap-compute
// window the API exists for — and every member must still receive the
// bytes as they were at post time, on leaves and inner tree nodes alike.
func TestIAllgathervCallerKeepsOwnership(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		m := New(p)
		err := m.Run(func(c *Comm) error {
			g := c.World()
			buf := []byte(fmt.Sprintf("orig-%d", c.Rank()))
			pd := g.IAllgatherv(buf)
			copy(buf, "MUTATED!!") // caller reuses its buffer mid-flight
			parts := pd.Wait()
			for i, part := range parts {
				want := fmt.Sprintf("orig-%d", i)
				if string(part) != want {
					return fmt.Errorf("member %d: got %q, want %q", i, part, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestWaitAfterFullDrainReturnsAllNil pins the edge of the mixed-drain
// contract: when every member was already drained incrementally, Wait is
// still legal and returns the all-nil slice instead of panicking.
func TestWaitAfterFullDrainReturnsAllNil(t *testing.T) {
	const p = 3
	m := New(p)
	err := m.Run(func(c *Comm) error {
		g := c.World()
		pd := g.IAlltoallv(alltoallParts(c.Rank(), p))
		for i := 0; i < p; i++ {
			c.Release(pd.PollRecv(i))
		}
		for idx, data := range pd.Wait() {
			if data != nil {
				return fmt.Errorf("member %d reappeared after full incremental drain", idx)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOverlapCreditedForHiddenComm is the deterministic, scheduler-proof
// anchor of the overlap model (the acceptance assertion "overlap-ms > 0"):
// one PE delays its post by a fixed 20 ms, the others spend ~1 ms of
// "decode" per drained run, so every non-straggler PE provably executes
// compute while the straggler's payload is still in flight. The credited
// overlap must be positive and bounded by the straggler's delay; the
// straggler itself (whose payloads all arrived before it posted) earns
// none. Sleeps stand in for compute deliberately — they are non-blocked
// time to the Pending regardless of GOMAXPROCS or runner load.
func TestOverlapCreditedForHiddenComm(t *testing.T) {
	const p = 4
	const stragglerDelay = 20 * time.Millisecond
	m := New(p)
	overlap := make([]int64, p)
	err := m.Run(func(c *Comm) error {
		c.SetPhase(stats.PhaseExchange)
		g := c.World()
		if c.Rank() == p-1 {
			time.Sleep(stragglerDelay)
		}
		pd := g.IAlltoallv(alltoallParts(c.Rank(), p))
		for {
			_, data, ok := pd.PollAny()
			if !ok {
				break
			}
			time.Sleep(time.Millisecond) // stand-in for decode compute
			c.Release(data)
		}
		overlap[c.Rank()] = c.StatsPE().Overlap[stats.PhaseExchange]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < p-1; rank++ {
		if overlap[rank] <= 0 {
			t.Errorf("rank %d: no overlap credited despite decoding under a %v straggler", rank, stragglerDelay)
		}
		if got := time.Duration(overlap[rank]); got > stragglerDelay+stragglerDelay/2 {
			t.Errorf("rank %d: overlap %v exceeds any plausible in-flight span", rank, got)
		}
	}
}

// TestSplitPhaseBarrierEagerSignal checks that the eagerly posted round-0
// signal of IBarrier lets a peer make progress before Wait is called: PE 1
// can observe PE 0's barrier entry while PE 0 is still computing.
func TestSplitPhaseBarrierEagerSignal(t *testing.T) {
	m := New(2)
	err := m.Run(func(c *Comm) error {
		g := c.World()
		pd := g.IBarrier()
		// Both PEs have posted their round-0 signal; Wait can now complete
		// without further sends on either side for n=2.
		pd.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
