package comm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dss/internal/stats"
)

// TestRandomizedTrafficIntegrity floods the machine with random messages
// from every PE to every PE with random tags and sizes, then verifies that
// every payload arrives intact, in per-(pair, tag) FIFO order, and that
// the byte accounting matches exactly what was sent.
func TestRandomizedTrafficIntegrity(t *testing.T) {
	const p = 6
	const rounds = 300
	m := New(p)
	// Deterministic plan computed up-front so receivers know what to expect.
	type msg struct {
		tag  int
		size int
	}
	plan := make([][][]msg, p) // plan[src][dst] = ordered messages
	rng := rand.New(rand.NewSource(7))
	var totalBytes int64
	var totalMsgs int64
	for src := 0; src < p; src++ {
		plan[src] = make([][]msg, p)
		for r := 0; r < rounds; r++ {
			dst := rng.Intn(p)
			mm := msg{tag: 1 + rng.Intn(3), size: rng.Intn(200)}
			plan[src][dst] = append(plan[src][dst], mm)
			if dst != src {
				totalBytes += int64(mm.size)
				totalMsgs++
			}
		}
	}
	payload := func(src, dst, k, size int) []byte {
		b := make([]byte, size)
		for i := range b {
			b[i] = byte(src*31 + dst*17 + k*7 + i)
		}
		return b
	}
	err := m.Run(func(c *Comm) error {
		c.SetPhase(stats.PhaseExchange)
		src := c.Rank()
		// Send everything first (sends never block).
		for dst := 0; dst < p; dst++ {
			for k, mm := range plan[src][dst] {
				c.Send(dst, mm.tag, payload(src, dst, k, mm.size))
			}
		}
		// Receive per source in per-tag FIFO order.
		for from := 0; from < p; from++ {
			byTag := map[int][]int{} // tag → ordered indices into plan
			for k, mm := range plan[from][c.Rank()] {
				byTag[mm.tag] = append(byTag[mm.tag], k)
			}
			for tag, idxs := range byTag {
				for _, k := range idxs {
					mm := plan[from][c.Rank()][k]
					got := c.Recv(from, tag)
					want := payload(from, c.Rank(), k, mm.size)
					if !bytes.Equal(got, want) {
						return fmt.Errorf("PE %d: message %d from %d tag %d corrupted",
							c.Rank(), k, from, tag)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if got := rep.TotalBytesSent(); got != totalBytes {
		t.Fatalf("accounting drift: %d bytes counted, %d sent", got, totalBytes)
	}
	if got := rep.TotalMessages(); got != totalMsgs {
		t.Fatalf("message count drift: %d counted, %d sent", got, totalMsgs)
	}
}

// TestConcurrentCollectiveSequences runs many collectives back to back on
// the same group and checks each result, guarding against tag reuse bugs.
func TestConcurrentCollectiveSequences(t *testing.T) {
	const p = 5
	m := New(p)
	err := m.Run(func(c *Comm) error {
		g := c.World()
		for round := 0; round < 50; round++ {
			sum := g.AllreduceUint64([]uint64{uint64(c.Rank() + round)}, Sum)[0]
			want := uint64(p*round + p*(p-1)/2)
			if sum != want {
				return fmt.Errorf("round %d: sum %d, want %d", round, sum, want)
			}
			payload := []byte(fmt.Sprintf("round-%d", round))
			got := g.Bcast(round%p, payloadIf(c.Rank() == round%p, payload))
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("round %d: bcast got %q", round, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func payloadIf(cond bool, b []byte) []byte {
	if cond {
		return b
	}
	return nil
}

// TestLargePayloads pushes multi-megabyte messages through collectives.
func TestLargePayloads(t *testing.T) {
	const p = 4
	m := New(p)
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 2654435761)
	}
	err := m.Run(func(c *Comm) error {
		g := c.World()
		var data []byte
		if c.Rank() == 2 {
			data = big
		}
		got := g.Bcast(2, data)
		if !bytes.Equal(got, big) {
			return fmt.Errorf("PE %d: large bcast corrupted", c.Rank())
		}
		parts := make([][]byte, p)
		for i := range parts {
			parts[i] = big[:1<<20]
		}
		recv := g.Alltoallv(parts)
		for i := range recv {
			if !bytes.Equal(recv[i], big[:1<<20]) {
				return fmt.Errorf("PE %d: large alltoall corrupted from %d", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestManyPEs exercises a machine larger than GOMAXPROCS.
func TestManyPEs(t *testing.T) {
	const p = 100
	m := New(p)
	err := m.Run(func(c *Comm) error {
		g := c.World()
		sum := g.AllreduceUint64([]uint64{1}, Sum)[0]
		if sum != p {
			return fmt.Errorf("sum = %d", sum)
		}
		prefix, total := g.ExscanUint64(uint64(c.Rank()))
		if total != p*(p-1)/2 {
			return fmt.Errorf("total = %d", total)
		}
		_ = prefix
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
