// Chunked split-phase alltoallv: the transport seam of the streaming
// merge. IAlltoallvChunked ships every outgoing bucket as a SEQUENCE of
// bounded frames instead of one message, so the receiver can feed each
// arriving fragment into an incremental run reader and start merging after
// the first head of every run is decodable — before the last frame lands.
//
// Accounting model. Chunking is transport-level pipelining of ONE logical
// message, like TCP segmentation below MPI: the α-β model (and the
// "bytes per string" figures) bill each bucket exactly as the un-chunked
// IAlltoallv does — its full payload size and ONE message, attributed to
// the phase current at post time on the send side and billed to that same
// phase as the fragments drain on the receive side. The per-frame flag
// byte is framing overhead below the accounting boundary (the wire-codec
// decorator meters it into the wire counters, where it honestly belongs);
// the deterministic statistics are therefore bit-identical to the eager
// seam by construction, which the differential suite asserts end to end.
//
// Overlap model. A ChunkPending measures posting→last-arrival minus
// blocked time exactly like Pending: time the PE spent decoding and
// merging between frame arrivals is communication hidden under compute.
// Completion additionally stamps stats.PE.ExchangeDoneNS so the merge-start
// milestone (stats.PE.MergeStartNS, stamped by the streaming merge's first
// output) can be compared against the last arrival.
package comm

import (
	"fmt"
	"sort"
	"time"

	"dss/internal/stats"
	"dss/internal/trace"
	"dss/internal/transport"
)

// DefaultStreamChunk is the frame payload bound of the chunked exchange
// when the caller does not pick one: large enough to amortize per-frame
// transport costs, small enough that a multi-kilobyte run yields several
// decode opportunities before it has fully arrived.
const DefaultStreamChunk = 8 << 10

// Frame flags of the chunked exchange: every physical frame carries one
// leading flag byte marking whether it completes its bucket.
const (
	chunkMore byte = 0
	chunkLast byte = 1
)

// ChunkPending is a chunked split-phase alltoallv in flight. Like Pending
// it is confined to the PE goroutine that posted it. Frames of one member
// are delivered in order (transport non-overtaking); across members they
// surface in arrival order.
type ChunkPending struct {
	g      *Group
	tag    int
	phase  stats.Phase // accounting phase captured at post time
	posted time.Time
	waited time.Duration
	// lastArrival is the delivery stamp of the latest frame (posted for the
	// self part); the overlap span ends here, as in Pending.
	lastArrival time.Time

	self      []byte // copy of the caller's own part, available immediately
	done      []bool // per member: full bucket delivered
	remaining int
	srcs      []int // scratch for the undrained-source list
	// noOverlap suppresses the overlap credit and the milestone stamp,
	// like the blocking veneers of the eager collectives (Alltoallv =
	// IAlltoallv + Wait): a caller that drains the whole exchange right
	// after posting hides no communication by definition, and must report
	// the same zero overlap the eager blocking seam reports.
	noOverlap bool
}

// NoOverlapCredit marks the exchange as bulk-synchronous for the overlap
// model: no overlap is credited and the exchange-done milestone stays
// unset (so no merge lead is reported either). Call it before the first
// RecvChunk; the deterministic accounting is unaffected.
func (pd *ChunkPending) NoOverlapCredit() { pd.noOverlap = true }

// IAlltoallvChunked posts a personalized all-to-all exchange delivered in
// bounded frames: parts[i] is the payload for group member i, shipped as
// ⌈len/chunkSize⌉ frames (at least one, so empty buckets still signal
// completion). chunkSize ≤ 0 selects DefaultStreamChunk. All outgoing
// frames are sent before it returns (sends are eager and never block); the
// incoming fragments are drained with RecvChunk. The deterministic
// accounting is identical, bucket for bucket, to IAlltoallv(parts).
func (g *Group) IAlltoallvChunked(parts [][]byte, chunkSize int) *ChunkPending {
	n := len(g.ranks)
	if len(parts) != n {
		panic(fmt.Sprintf("comm: alltoallv needs %d parts, got %d", n, len(parts)))
	}
	if chunkSize <= 0 {
		chunkSize = DefaultStreamChunk
	}
	g.c.tr.Instant(trace.TrackControl, "IAlltoallvChunked post", 0, 0)
	now := time.Now()
	pd := &ChunkPending{
		g:           g,
		tag:         g.nextTag(),
		phase:       g.c.phase,
		posted:      now,
		lastArrival: now,
		done:        make([]bool, n),
		remaining:   n,
	}
	pd.self = append([]byte(nil), parts[g.myIdx]...)
	frame := make([]byte, 0, chunkSize+1)
	for i := 1; i < n; i++ {
		idx := (g.myIdx + i) % n
		dst := g.ranks[idx]
		// One logical message: bill the whole bucket up front (through the
		// same accounting home every collective uses), then ship the
		// frames below the accounting boundary.
		g.c.accountSendAs(pd.phase, dst, len(parts[idx]))
		rest := parts[idx]
		for {
			chunk := rest
			flag := chunkLast
			if len(chunk) > chunkSize {
				chunk, flag = rest[:chunkSize], chunkMore
			}
			rest = rest[len(chunk):]
			frame = append(append(frame[:0], flag), chunk...)
			g.c.tr.Instant(trace.TrackControl, "frame-send", int64(len(chunk)), int64(dst))
			g.c.t.Send(dst, pd.tag, frame)
			if flag == chunkLast {
				break
			}
		}
	}
	return pd
}

// RecvChunk blocks until the next frame of the exchange is available and
// returns its payload fragment together with the sending member's group
// index; last marks the final fragment of that member's bucket. The PE's
// own part is delivered first, as a single fragment; after that, fragments
// surface in arrival order across members and in send order within one
// member. chunk aliases frame, the whole transport buffer backing it:
// consume (copy out of) chunk, then Release(frame) — releasing the FRAME
// keeps the buffer in its original pool size class, which the flag-
// stripped sub-slice would drop out of. ok=false reports that every
// member's bucket has been fully delivered.
func (pd *ChunkPending) RecvChunk() (idx int, chunk, frame []byte, last, ok bool) {
	if pd.remaining == 0 {
		return -1, nil, nil, false, false
	}
	if !pd.done[pd.g.myIdx] {
		pd.finishMember(pd.g.myIdx)
		return pd.g.myIdx, pd.self, pd.self, true, true
	}
	srcs := pd.undrained()
	var src int
	if pd.noOverlap {
		src, frame, _ = pd.g.c.t.RecvAny(srcs, pd.tag)
	} else {
		t0 := time.Now()
		var arrived time.Time
		src, frame, arrived = pd.g.c.t.RecvAny(srcs, pd.tag)
		// Blocked time counts only up to the frame's ARRIVAL (see
		// Pending.recvAny for why scheduler wake-up latency is excluded).
		if arrived.After(t0) {
			pd.waited += arrived.Sub(t0)
		}
		if arrived.After(pd.lastArrival) {
			pd.lastArrival = arrived
		}
	}
	return pd.deliverFrame(src, frame)
}

// TryRecvChunk is the non-blocking variant of RecvChunk: it returns the
// next frame only if one is already receivable, reporting ok=false (with
// no other effect) when nothing is queued right now or the underlying
// transport does not expose the transport.AnyPoller capability. The self
// part, accounting, completion bookkeeping and the aliasing/Release
// contract are exactly RecvChunk's; no blocked time accrues since the call
// never waits. Mixing TryRecvChunk and RecvChunk on one exchange is fine —
// an early opportunistic drain shifts WHEN fragments are consumed, never
// how they are billed.
func (pd *ChunkPending) TryRecvChunk() (idx int, chunk, frame []byte, last, ok bool) {
	if pd.remaining == 0 {
		return -1, nil, nil, false, false
	}
	if !pd.done[pd.g.myIdx] {
		pd.finishMember(pd.g.myIdx)
		return pd.g.myIdx, pd.self, pd.self, true, true
	}
	poller, can := pd.g.c.t.(transport.AnyPoller)
	if !can {
		return -1, nil, nil, false, false
	}
	src, frame, arrived, got := poller.TryRecvAny(pd.undrained(), pd.tag)
	if !got {
		return -1, nil, nil, false, false
	}
	if !pd.noOverlap && arrived.After(pd.lastArrival) {
		pd.lastArrival = arrived
	}
	return pd.deliverFrame(src, frame)
}

// Drained reports that every member's bucket has been fully delivered.
func (pd *ChunkPending) Drained() bool { return pd.remaining == 0 }

// undrained returns the ranks whose buckets are still incomplete.
func (pd *ChunkPending) undrained() []int {
	if pd.srcs == nil {
		pd.srcs = make([]int, 0, pd.remaining)
	}
	srcs := pd.srcs[:0]
	for i, d := range pd.done {
		if !d {
			srcs = append(srcs, pd.g.ranks[i])
		}
	}
	return srcs
}

// deliverFrame performs the shared receive tail: flag parsing, accounting,
// and completion bookkeeping for one received frame.
func (pd *ChunkPending) deliverFrame(src int, frame []byte) (idx int, chunk []byte, frameOut []byte, last, ok bool) {
	if len(frame) == 0 {
		panic(fmt.Sprintf("comm: empty chunked-exchange frame from rank %d", src))
	}
	last = frame[0] == chunkLast
	chunk = frame[1:]
	pd.g.c.tr.Instant(trace.TrackControl, "frame-recv", int64(len(chunk)), int64(src))
	pd.g.c.accountRecvAs(pd.phase, src, len(chunk))
	idx = sort.SearchInts(pd.g.ranks, src)
	if last {
		pd.finishMember(idx)
	}
	return idx, chunk, frame, last, true
}

// finishMember marks one member's bucket fully delivered and, when it was
// the last, credits the overlap and stamps the exchange-done milestone
// (both suppressed for a bulk-synchronous exchange, see NoOverlapCredit).
func (pd *ChunkPending) finishMember(idx int) {
	pd.done[idx] = true
	pd.remaining--
	if pd.remaining == 0 && !pd.noOverlap {
		if ov := pd.lastArrival.Sub(pd.posted) - pd.waited; ov > 0 {
			pd.g.c.st.Overlap[pd.phase] += ov.Nanoseconds()
		}
		pd.g.c.st.ExchangeDoneNS = pd.lastArrival.UnixNano()
		pd.g.c.tr.Instant(trace.TrackControl, "exchange-done", 0, 0)
	}
}
