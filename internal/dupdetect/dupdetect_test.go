package dupdetect

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dss/internal/comm"
	"dss/internal/strutil"
)

// runApprox distributes the global string set over p PEs round-robin, runs
// ApproxDist collectively and returns the per-string bounds in global order
// plus the machine for volume inspection.
func runApprox(t *testing.T, global [][]byte, p int, opt Options) ([]int32, *comm.Machine) {
	t.Helper()
	m := comm.New(p)
	dist := make([]int32, len(global))
	locals := make([][][]byte, p)
	idxs := make([][]int, p)
	for i, s := range global {
		pe := i % p
		locals[pe] = append(locals[pe], s)
		idxs[pe] = append(idxs[pe], i)
	}
	err := m.Run(func(c *comm.Comm) error {
		res := ApproxDist(c, locals[c.Rank()], opt)
		if len(res.Dist) != len(locals[c.Rank()]) {
			return fmt.Errorf("got %d bounds for %d strings", len(res.Dist), len(locals[c.Rank()]))
		}
		for j, d := range res.Dist {
			dist[idxs[c.Rank()][j]] = d
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dist, m
}

// checkSound verifies the two soundness properties of the approximation:
// bounds never exceed string lengths, and transmitting Dist[i] characters
// preserves the pairwise order of all distinct strings.
func checkSound(t *testing.T, global [][]byte, dist []int32) {
	t.Helper()
	for i, s := range global {
		if int(dist[i]) > len(s) {
			t.Fatalf("bound %d exceeds length of %q", dist[i], s)
		}
	}
	for i := range global {
		for j := range global {
			if i == j {
				continue
			}
			a, b := global[i], global[j]
			pa, pb := a[:dist[i]], b[:dist[j]]
			cmpFull := bytes.Compare(a, b)
			cmpPref := bytes.Compare(pa, pb)
			if cmpFull != 0 && cmpPref != 0 && cmpFull != cmpPref {
				t.Fatalf("prefixes invert order: %q(%d) vs %q(%d)", a, dist[i], b, dist[j])
			}
			if cmpFull != 0 && cmpPref == 0 && !bytes.Equal(a, b) {
				// Distinct strings may only tie if one prefix pair is a
				// cut-short representation — which must not happen when
				// fingerprints are collision-free: a unique prefix cannot
				// equal another string's transmitted prefix of equal length.
				t.Fatalf("distinct strings %q, %q tie under prefixes %q, %q", a, b, pa, pb)
			}
		}
	}
}

func genStrings(rng *rand.Rand, n, maxLen, sigma int) [][]byte {
	ss := make([][]byte, n)
	for i := range ss {
		l := rng.Intn(maxLen + 1)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('a' + rng.Intn(sigma))
		}
		ss[i] = s
	}
	return ss
}

func TestApproxDistSoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, p := range []int{1, 2, 3, 5, 8} {
		for trial := 0; trial < 4; trial++ {
			global := genStrings(rng, 60, 24, 2)
			dist, _ := runApprox(t, global, p, Options{GroupID: 1})
			checkSound(t, global, dist)
		}
	}
}

func TestApproxDistUpperBoundsTrueDist(t *testing.T) {
	// With collision-free fingerprints, Dist[i] >= min(DIST(s_i), |s_i|):
	// the bound can only overestimate.
	rng := rand.New(rand.NewSource(52))
	global := genStrings(rng, 200, 30, 3)
	trueDist := strutil.DistinguishingPrefixes(global)
	dist, _ := runApprox(t, global, 4, Options{GroupID: 1})
	for i := range global {
		if dist[i] < trueDist[i] {
			t.Fatalf("bound %d below true DIST %d for %q", dist[i], trueDist[i], global[i])
		}
	}
}

func TestApproxDistTightForUniquePrefixes(t *testing.T) {
	// Strings diverging in the first 8 characters must resolve in the very
	// first round with the default initial guess.
	var global [][]byte
	for i := 0; i < 64; i++ {
		s := append([]byte{byte('A' + i/8), byte('a' + i%8)}, bytes.Repeat([]byte("tail"), 16)...)
		global = append(global, s)
	}
	dist, _ := runApprox(t, global, 4, Options{GroupID: 1, InitialLen: 8})
	for i, d := range dist {
		if d != 8 {
			t.Fatalf("string %d: bound %d, want 8 (first-round resolution)", i, d)
		}
	}
}

func TestApproxDistExactDuplicates(t *testing.T) {
	// Full duplicates can never get a unique fingerprint; they must resolve
	// by the length rule with bound |s|.
	global := [][]byte{
		[]byte("duplicate-string"), []byte("duplicate-string"),
		[]byte("duplicate-string"), []byte("unique-string-xx"),
	}
	dist, _ := runApprox(t, global, 2, Options{GroupID: 1})
	for i := 0; i < 3; i++ {
		if int(dist[i]) != len(global[i]) {
			t.Fatalf("duplicate %d: bound %d, want full length %d", i, dist[i], len(global[i]))
		}
	}
	checkSound(t, global, dist)
}

func TestApproxDistPrefixChain(t *testing.T) {
	// s_k = "a"*k: every string is a prefix of the next; all must be sent
	// in full (their ends are their only distinguishers).
	var global [][]byte
	for k := 0; k <= 20; k++ {
		global = append(global, bytes.Repeat([]byte("a"), k))
	}
	dist, _ := runApprox(t, global, 3, Options{GroupID: 1})
	for i, s := range global {
		if int(dist[i]) != len(s) {
			t.Fatalf("chain string %d: bound %d, want %d", i, dist[i], len(s))
		}
	}
	checkSound(t, global, dist)
}

func TestApproxDistEmptyInput(t *testing.T) {
	m := comm.New(3)
	err := m.Run(func(c *comm.Comm) error {
		res := ApproxDist(c, nil, Options{GroupID: 1})
		if len(res.Dist) != 0 {
			return fmt.Errorf("bounds for empty input")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestApproxDistLongSharedPrefixNeedsIterations(t *testing.T) {
	// Two strings sharing 1000 characters force the doubling loop deep.
	a := append(bytes.Repeat([]byte("z"), 1000), 'a')
	b := append(bytes.Repeat([]byte("z"), 1000), 'b')
	global := [][]byte{a, b}
	dist, _ := runApprox(t, global, 2, Options{GroupID: 1})
	checkSound(t, global, dist)
	for i, d := range dist {
		if int(d) < 1001 {
			t.Fatalf("string %d: bound %d too small (prefixes equal up to 1000)", i, d)
		}
	}
}

func TestApproxDistDoublingBoundedOvershoot(t *testing.T) {
	// With ε=1 (doubling) the bound is below 2·DIST for strings resolved by
	// uniqueness (geometric overshoot), modulo the initial guess.
	rng := rand.New(rand.NewSource(53))
	var global [][]byte
	for i := 0; i < 100; i++ {
		// ~64-character shared prefix region, then unique tails.
		s := append(bytes.Repeat([]byte("q"), 64), []byte(fmt.Sprintf("%06d", i))...)
		global = append(global, s)
		_ = rng
	}
	trueDist := strutil.DistinguishingPrefixes(global)
	dist, _ := runApprox(t, global, 4, Options{GroupID: 1, InitialLen: 8})
	for i := range global {
		if int(dist[i]) > 2*int(trueDist[i])+8 && int(dist[i]) != len(global[i]) {
			t.Fatalf("string %d: bound %d overshoots true DIST %d by more than 2×",
				i, dist[i], trueDist[i])
		}
	}
}

func TestGolombVariantAgreesAndSavesVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	global := genStrings(rng, 4000, 40, 2)
	plain, mPlain := runApprox(t, global, 8, Options{GroupID: 1})
	gol, mGol := runApprox(t, global, 8, Options{GroupID: 1, Golomb: true})
	for i := range plain {
		if plain[i] != gol[i] {
			t.Fatalf("Golomb variant changed bound %d: %d vs %d", i, gol[i], plain[i])
		}
	}
	vPlain := mPlain.Report().TotalBytesSent()
	vGol := mGol.Report().TotalBytesSent()
	if vGol >= vPlain {
		t.Fatalf("Golomb coding did not reduce volume: %d vs %d", vGol, vPlain)
	}
}

func TestTwoLevelFingerprintsSoundAndCheaper(t *testing.T) {
	// Two-level fingerprinting pays when most prefixes per round are
	// unique (its design assumption in [10]): a moderately large alphabet
	// makes first-round prefixes mostly distinct.
	rng := rand.New(rand.NewSource(57))
	global := genStrings(rng, 6000, 30, 8)
	plain, mPlain := runApprox(t, global, 8, Options{GroupID: 1})
	two, mTwo := runApprox(t, global, 8, Options{GroupID: 1, TwoLevel: true})
	checkSound(t, global[:80], two[:80]) // spot-check soundness (O(n²) check)
	// Two-level bounds may differ (32-bit collisions delay some strings by
	// one doubling), but must stay sound upper bounds of the plain bounds'
	// guarantees: never smaller than the true DIST.
	trueDist := strutil.DistinguishingPrefixes(global)
	for i := range two {
		if two[i] < trueDist[i] {
			t.Fatalf("two-level bound %d below true DIST %d", two[i], trueDist[i])
		}
	}
	_ = plain
	vPlain := mPlain.Report().TotalBytesSent()
	vTwo := mTwo.Report().TotalBytesSent()
	if vTwo >= vPlain {
		t.Fatalf("two-level fingerprints did not save volume: %d vs %d", vTwo, vPlain)
	}
}

func TestHypercubeRoutingTradesLatencyForVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	global := genStrings(rng, 4000, 25, 2)
	direct, mDirect := runApprox(t, global, 8, Options{GroupID: 1})
	hyper, mHyper := runApprox(t, global, 8, Options{GroupID: 1, Hypercube: true})
	for i := range direct {
		if direct[i] != hyper[i] {
			t.Fatalf("hypercube routing changed bound %d: %d vs %d", i, hyper[i], direct[i])
		}
	}
	// Fewer messages per PE, more volume (store-and-forward).
	msgsD := mDirect.Report().PEs[0].Total().Messages
	msgsH := mHyper.Report().PEs[0].Total().Messages
	if msgsH >= msgsD {
		t.Fatalf("hypercube routing sent %d msgs/PE, direct %d", msgsH, msgsD)
	}
	if mHyper.Report().TotalBytesSent() <= mDirect.Report().TotalBytesSent() {
		t.Fatal("hypercube routing should cost volume")
	}
}

func TestHypercubeFallbackNonPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	global := genStrings(rng, 500, 15, 2)
	dist, _ := runApprox(t, global, 5, Options{GroupID: 1, Hypercube: true})
	checkSound(t, global, dist)
}

func TestEpsilonGrowthFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	global := genStrings(rng, 300, 50, 2)
	for _, eps := range []float64{0.5, 1, 2, 3} {
		dist, _ := runApprox(t, global, 4, Options{GroupID: 1, Eps: eps})
		checkSound(t, global, dist)
	}
}

func TestVolumePerStringLogarithmic(t *testing.T) {
	// Theorem 6: the duplicate detection sends O(log p) bits per string.
	// With 64-bit fingerprints our constant is 8 bytes + verdict bit per
	// round; with few rounds volume per string must stay small.
	rng := rand.New(rand.NewSource(56))
	n := 8000
	global := make([][]byte, n)
	for i := range global {
		global[i] = []byte(fmt.Sprintf("%08d-%08d", rng.Intn(1000000), i))
	}
	_, m := runApprox(t, global, 8, Options{GroupID: 1})
	perString := float64(m.Report().TotalBytesSent()) / float64(n)
	if perString > 40 {
		t.Fatalf("duplicate detection sends %.1f bytes/string; want ≤ 40", perString)
	}
}
