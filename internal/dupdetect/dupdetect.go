// Package dupdetect implements the communication-efficient distributed
// duplicate detection of [Sanders, Schlag, Müller 2013] applied to
// geometrically growing string prefixes — Step (1+ε) of Algorithm PDMS
// (Section VI-A of the paper, Theorem 6).
//
// For every local string the algorithm computes an upper bound on its
// distinguishing prefix length DIST(s): starting from an initial guess ℓ,
// each iteration fingerprints the length-ℓ prefix of every unresolved
// string, routes the fingerprints to PE (fp mod p), counts global
// multiplicities, and reports back which fingerprints are globally unique.
// A unique fingerprint proves the prefix has no duplicate anywhere, so the
// prefix is distinguishing and the string is resolved with bound ℓ. Errors
// are one-sided: a hash collision can only make a distinct prefix look
// duplicated, which grows the bound (safe), never shrinks it.
//
// Strings shorter than ℓ are resolved with bound |s|: transmitting the
// whole string (whose end acts as a terminator) always suffices to order
// it against any other string, duplicates included.
package dupdetect

import (
	"sort"

	"dss/internal/comm"
	"dss/internal/fingerprint"
	"dss/internal/golomb"
	"dss/internal/stats"
	"dss/internal/wire"
)

// Options control the prefix doubling loop.
type Options struct {
	// Eps is the geometric growth factor: the prefix guess is multiplied by
	// 1+Eps each iteration. The default 1 gives prefix doubling (the "PD"
	// in PDMS).
	Eps float64
	// InitialLen is the first prefix length guess ℓ₀ (paper:
	// Θ(⌈log p / log σ⌉)). Default 8.
	InitialLen int
	// Golomb enables Golomb coding of the sorted fingerprint messages
	// (algorithm PDMS-Golomb). Without it fingerprints travel as raw
	// 8-byte values.
	Golomb bool
	// TwoLevel enables the two-round fingerprinting of [Sanders, Schlag,
	// Müller 2013]: each iteration first exchanges short 32-bit
	// fingerprints; only the (few) candidates whose short fingerprint
	// collides are re-checked with full 64-bit fingerprints in a second
	// exchange. Cuts fingerprint volume roughly in half when most prefixes
	// are unique. Errors remain one-sided.
	TwoLevel bool
	// Hypercube routes the fingerprint all-to-alls indirectly along a
	// hypercube: latency drops from αp to α·log p per iteration at the
	// price of a log p factor in fingerprint volume (the Theorem 6 latency
	// variant). Requires a power-of-two machine; otherwise direct delivery
	// is used.
	Hypercube bool
	// Seed selects the fingerprint hash function.
	Seed uint64
	// GroupID is the communicator tag namespace to use.
	GroupID int
}

func (o *Options) setDefaults() {
	if o.Eps <= 0 {
		o.Eps = 1
	}
	if o.InitialLen <= 0 {
		o.InitialLen = 8
	}
}

// Result reports the prefix approximation outcome.
type Result struct {
	// Dist[i] is the approximated distinguishing prefix length of ss[i],
	// capped at len(ss[i]). Transmitting Dist[i] characters of ss[i]
	// preserves the global string order (see package comment).
	Dist []int32
	// Iterations is the number of duplicate detection rounds executed.
	Iterations int
	// ResolvedUnique counts strings resolved by a unique fingerprint;
	// ResolvedLength counts strings resolved because ℓ reached their length.
	ResolvedUnique, ResolvedLength int
}

// ApproxDist runs the distributed prefix doubling on the local string set
// ss (one call per PE, collectively). It returns per-string distinguishing
// prefix bounds. Accounting goes to stats.PhaseDupDetect.
func ApproxDist(c *comm.Comm, ss [][]byte, opt Options) Result {
	opt.setDefaults()
	prevPhase := c.SetPhase(stats.PhaseDupDetect)
	defer c.SetPhase(prevPhase)

	p := c.P()
	g := comm.NewGroup(c, allRanks(p), opt.GroupID)
	hasher := fingerprint.New(opt.Seed)

	n := len(ss)
	res := Result{Dist: make([]int32, n)}
	states := make([]fingerprint.State, n)
	candidates := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		candidates = append(candidates, int32(i))
	}

	ell := opt.InitialLen
	for {
		// Global termination check.
		remaining := g.AllreduceUint64([]uint64{uint64(len(candidates))}, comm.Sum)[0]
		if remaining == 0 {
			break
		}
		res.Iterations++

		// Fingerprint the length-ℓ prefixes, extending incrementally.
		// A string shorter than ℓ participates one final time with a
		// *terminated* fingerprint — it must keep blocking longer strings
		// that have it as a proper prefix (in the paper's model the
		// 0-terminator is a real character) — and then resolves with bound
		// |s| regardless of the verdict: transmitting the whole string is
		// always sufficient, duplicates included.
		lengthResolve := make(map[int32]bool)
		allReqs := make([]req, 0, len(candidates))
		for _, ci := range candidates {
			// Strictly shorter than ℓ: the guess has grown past the end of
			// the string, so the "prefix" includes the terminator. At
			// exactly ℓ == |s| the prefix is the whole string WITHOUT the
			// terminator and must collide with equal-length prefixes of
			// longer strings.
			var fp uint64
			if n := len(ss[ci]); n < ell {
				prevPos := states[ci].Pos()
				states[ci] = hasher.Extend(states[ci], ss[ci], n)
				c.AddWork(int64(n - prevPos))
				fp = hasher.FinalizeTerminated(states[ci])
				lengthResolve[ci] = true
			} else {
				prevPos := states[ci].Pos()
				states[ci] = hasher.Extend(states[ci], ss[ci], ell)
				c.AddWork(int64(ell - prevPos)) // only fresh characters are hashed
				fp = hasher.Finalize(states[ci])
			}
			allReqs = append(allReqs, req{cand: ci, fp: fp})
		}

		// Uniqueness check, optionally in two fingerprint resolutions:
		// a cheap 32-bit round first, then a full 64-bit round for the
		// candidates whose short fingerprint collided.
		var uniqueCands map[int32]bool
		if opt.TwoLevel {
			shortUnique := uniqueRound(g, p, allReqs, roundOpts{short: true, hyper: opt.Hypercube})
			var recheck []req
			uniqueCands = make(map[int32]bool, len(shortUnique))
			for _, r := range allReqs {
				if shortUnique[r.cand] {
					uniqueCands[r.cand] = true
				} else {
					recheck = append(recheck, r)
				}
			}
			longUnique := uniqueRound(g, p, recheck, roundOpts{golomb: opt.Golomb, hyper: opt.Hypercube})
			for cand := range longUnique {
				uniqueCands[cand] = true
			}
		} else {
			uniqueCands = uniqueRound(g, p, allReqs, roundOpts{golomb: opt.Golomb, hyper: opt.Hypercube})
		}

		// Resolve candidates: unique fingerprints prove distinguishing
		// prefixes; strings shorter than ℓ resolve with their full length
		// after their terminated blocking round.
		live := candidates[:0]
		for _, ci := range candidates {
			switch {
			case lengthResolve[ci]:
				res.Dist[ci] = int32(len(ss[ci]))
				res.ResolvedLength++
			case uniqueCands[ci]:
				res.Dist[ci] = int32(ell)
				res.ResolvedUnique++
			default:
				live = append(live, ci)
			}
		}
		candidates = live

		// Grow the guess geometrically.
		next := int(float64(ell) * (1 + opt.Eps))
		if next <= ell {
			next = ell + 1
		}
		ell = next
	}
	return res
}

// req is one candidate's fingerprint submission.
type req struct {
	cand int32
	fp   uint64
}

// roundOpts select the wire format and routing of one uniqueness round.
type roundOpts struct {
	short  bool // 32-bit fingerprints (first level of TwoLevel)
	golomb bool // Golomb-code the (sorted) fingerprints
	hyper  bool // hypercube-route the all-to-alls (power-of-two p only)
}

// uniqueRound routes each request's fingerprint to PE (fp mod p), counts
// global multiplicities there, and returns the set of candidates whose
// fingerprint is globally unique. One collective call per PE.
func uniqueRound(g *comm.Group, p int, reqs []req, ro roundOpts) map[int32]bool {
	// Short rounds count by the upper 32 bits (well-mixed by the
	// finalizer); routing must use the same value so all copies of a
	// fingerprint meet at the same PE.
	perDest := make([][]req, p)
	for _, r := range reqs {
		fp := r.fp
		if ro.short {
			fp >>= 32
		}
		d := int(fp % uint64(p))
		perDest[d] = append(perDest[d], req{cand: r.cand, fp: fp})
	}

	exchange := func(parts [][]byte) [][]byte {
		if ro.hyper && p&(p-1) == 0 {
			return g.AlltoallvHypercube(parts)
		}
		return g.Alltoallv(parts)
	}

	parts := make([][]byte, p)
	for d := 0; d < p; d++ {
		fps := make([]uint64, len(perDest[d]))
		for j, r := range perDest[d] {
			fps[j] = r.fp
		}
		switch {
		case ro.golomb:
			sort.Slice(perDest[d], func(a, b int) bool { return perDest[d][a].fp < perDest[d][b].fp })
			for j, r := range perDest[d] {
				fps[j] = r.fp
			}
			parts[d] = golomb.EncodeSorted(fps)
		case ro.short:
			parts[d] = wire.EncodeUint32sFixed(fps)
		default:
			parts[d] = wire.EncodeUint64sFixed(fps)
		}
	}
	recvd := exchange(parts)

	counts := make(map[uint64]int)
	decoded := make([][]uint64, p)
	for src := 0; src < p; src++ {
		var fps []uint64
		var err error
		switch {
		case ro.golomb:
			fps, err = golomb.DecodeSorted(recvd[src])
		case ro.short:
			fps, err = wire.DecodeUint32sFixed(recvd[src])
		default:
			fps, err = wire.DecodeUint64sFixed(recvd[src])
		}
		if err != nil {
			panic("dupdetect: corrupt fingerprint message: " + err.Error())
		}
		decoded[src] = fps
		for _, fp := range fps {
			counts[fp]++
		}
	}

	replies := make([][]byte, p)
	for src := 0; src < p; src++ {
		bits := make([]bool, len(decoded[src]))
		for j, fp := range decoded[src] {
			bits[j] = counts[fp] == 1
		}
		replies[src] = wire.EncodeBitset(bits)
	}
	verdicts := exchange(replies)

	unique := make(map[int32]bool)
	for d := 0; d < p; d++ {
		bits, err := wire.DecodeBitset(verdicts[d])
		if err != nil || len(bits) != len(perDest[d]) {
			panic("dupdetect: corrupt verdict message")
		}
		for j, r := range perDest[d] {
			if bits[j] {
				unique[r.cand] = true
			}
		}
	}
	return unique
}

func allRanks(p int) []int {
	r := make([]int, p)
	for i := range r {
		r[i] = i
	}
	return r
}
