package dupdetect

import (
	"math/rand"
	"testing"

	"dss/internal/comm"
	"dss/internal/input"
	"dss/internal/strutil"
)

// runEstimate distributes global strings and runs the estimator.
func runEstimate(t *testing.T, global [][]byte, p, sampleSize int, seed uint64) EstimateResult {
	t.Helper()
	locals := make([][][]byte, p)
	for i, s := range global {
		locals[i%p] = append(locals[i%p], s)
	}
	m := comm.New(p)
	results := make([]EstimateResult, p)
	err := m.Run(func(c *comm.Comm) error {
		results[c.Rank()] = EstimateD(c, locals[c.Rank()], sampleSize, seed, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe := 1; pe < p; pe++ {
		if results[pe].AvgDist != results[0].AvgDist {
			t.Fatalf("PEs disagree on estimate: %v vs %v", results[pe], results[0])
		}
	}
	return results[0]
}

func trueDN(global [][]byte) float64 {
	return float64(strutil.TotalD(global)) / float64(len(global))
}

func TestEstimateDRandomStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	var global [][]byte
	for i := 0; i < 3000; i++ {
		l := 8 + rng.Intn(16)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('a' + rng.Intn(3))
		}
		global = append(global, s)
	}
	truth := trueDN(global)
	res := runEstimate(t, global, 4, 600, 1)
	if res.SampleSize < 300 || res.SampleSize > 1200 {
		t.Fatalf("sample size %d far from target 600", res.SampleSize)
	}
	if res.AvgDist < 0.7*truth || res.AvgDist > 1.3*truth {
		t.Fatalf("estimate %.2f outside ±30%% of true D/n %.2f", res.AvgDist, truth)
	}
}

func TestEstimateDFullSampleIsExact(t *testing.T) {
	// Sampling probability 1: the estimate must equal D/n exactly.
	rng := rand.New(rand.NewSource(72))
	var global [][]byte
	for i := 0; i < 400; i++ {
		l := 3 + rng.Intn(10)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('a' + rng.Intn(2))
		}
		global = append(global, s)
	}
	truth := trueDN(global)
	for _, p := range []int{1, 3, 8} {
		res := runEstimate(t, global, p, 10*len(global), 1)
		if res.SampleSize != len(global) {
			t.Fatalf("p=%d: sampled %d of %d", p, res.SampleSize, len(global))
		}
		if diff := res.AvgDist - truth; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("p=%d: full-sample estimate %.4f != true %.4f", p, res.AvgDist, truth)
		}
	}
}

func TestEstimateDDuplicatesExcludeSelfOnly(t *testing.T) {
	// Two copies of one string: DIST = len for both (the other copy forces
	// full-length inspection). The estimator must not let the sampled
	// occurrence "distinguish against itself" (which would give DIST 1).
	global := [][]byte{
		[]byte("twin-string"), []byte("twin-string"), []byte("other"),
	}
	res := runEstimate(t, global, 3, 100, 1)
	// Full sample: avg = (11 + 11 + 1)/3.
	want := (11.0 + 11.0 + 1.0) / 3.0
	if diff := res.AvgDist - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("estimate %.3f, want %.3f", res.AvgDist, want)
	}
}

func TestEstimateDDistinguishesEasyFromHardInstances(t *testing.T) {
	// The Section VIII use case: pick a suffix-sorting strategy by D/n.
	easy := input.SuffixInstance(input.SuffixConfig{TextLen: 3000, Seed: 3}, 0, 1)
	hard := input.DN(input.DNConfig{StringsPerPE: 3000, Length: 100, Ratio: 0.9, Seed: 3}, 0, 1)
	eRes := runEstimate(t, easy, 4, 400, 2)
	hRes := runEstimate(t, hard, 4, 400, 2)
	if eRes.AvgDist*4 > hRes.AvgDist {
		t.Fatalf("estimator cannot separate easy (%.1f) from hard (%.1f)",
			eRes.AvgDist, hRes.AvgDist)
	}
}

func TestEstimateDEmptyInput(t *testing.T) {
	res := runEstimate(t, nil, 3, 100, 1)
	if res.SampleSize != 0 || res.AvgDist != 0 {
		t.Fatalf("empty input gave %+v", res)
	}
}

func TestEstimateDPrefixChains(t *testing.T) {
	// a, aa, aaa, ...: DIST(s) = |s| for all but the longest (whose DIST
	// is also |s| after capping). Exact full-sample check.
	var global [][]byte
	sum := 0.0
	for k := 1; k <= 30; k++ {
		global = append(global, make([]byte, k))
		for j := 0; j < k; j++ {
			global[len(global)-1][j] = 'a'
		}
		sum += float64(k)
	}
	res := runEstimate(t, global, 4, 1000, 1)
	want := sum / 30
	if diff := res.AvgDist - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("chain estimate %.3f, want %.3f", res.AvgDist, want)
	}
	if res.MaxDist != 30 {
		t.Fatalf("MaxDist = %d, want 30", res.MaxDist)
	}
}
