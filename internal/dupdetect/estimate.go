package dupdetect

import (
	"bytes"
	"math/rand"
	"sort"

	"dss/internal/comm"
	"dss/internal/stats"
	"dss/internal/strutil"
	"dss/internal/wire"
)

// EstimateD approximates the average distinguishing prefix length D/n of a
// distributed string set by gossiping a small random sample — the
// Section VIII suggestion for choosing between string-sorting-based and
// more sophisticated suffix sorters: "gossip a small sample of the input
// strings; then, without further communication, their distinguishing
// prefix sizes can be computed locally".
//
// Protocol: every PE contributes a Bernoulli sample of its strings (about
// sampleSize/p each); the samples are all-gathered; every PE computes, for
// each sample string, the maximum LCP with its own local strings
// (excluding the sampled occurrence itself); a max-reduction yields
// DIST(s) = maxLCP+1 (capped at |s|) exactly for each sample string, and
// the average estimates D/n.
//
// The estimate is exact on the sample: sampling error only comes from
// which strings were drawn, which is why Section VIII warns that a small
// sample misses heavy-tailed DIST distributions (dˆ ≫ D/n).
//
// EstimateD is a collective call; accounting goes to stats.PhaseDupDetect.
type EstimateResult struct {
	// AvgDist is the estimated D/n: the mean DIST over the sample.
	AvgDist float64
	// MaxDist is the largest DIST observed in the sample (a lower bound
	// on d̂).
	MaxDist int
	// SampleSize is the number of strings actually sampled globally.
	SampleSize int
}

// EstimateD runs the estimator over the local strings ss (need not be
// sorted). sampleSize is the global target sample size.
func EstimateD(c *comm.Comm, ss [][]byte, sampleSize int, seed uint64, gid int) EstimateResult {
	prevPhase := c.SetPhase(stats.PhaseDupDetect)
	defer c.SetPhase(prevPhase)
	p := c.P()
	g := comm.NewGroup(c, allRanks(p), gid)

	// Bernoulli sample: expected sampleSize/p strings per PE.
	rng := rand.New(rand.NewSource(int64(seed) ^ int64(c.Rank()+1)*0x5851f42d4c957f2d))
	_, total := g.ExscanUint64(uint64(len(ss)))
	var prob float64
	if total > 0 {
		prob = float64(sampleSize) / float64(total)
		if prob > 1 {
			prob = 1
		}
	}
	type picked struct {
		idx int
		s   []byte
	}
	var mine []picked
	for i, s := range ss {
		if rng.Float64() < prob {
			mine = append(mine, picked{idx: i, s: s})
		}
	}

	// Gossip the sample with origin tags so the owner can exclude the
	// sampled occurrence itself from the max-LCP computation.
	w := wire.NewBuffer(64)
	w.Uvarint(uint64(len(mine)))
	for _, pk := range mine {
		w.Uvarint(uint64(pk.idx))
		w.BytesPrefixed(pk.s)
	}
	parts := g.Allgatherv(w.Bytes())

	type sample struct {
		pe, idx int
		s       []byte
	}
	var samples []sample
	for pe, part := range parts {
		r := wire.NewReader(part)
		cnt, err := r.Uvarint()
		if err != nil {
			panic("dupdetect: corrupt estimate sample")
		}
		for k := uint64(0); k < cnt; k++ {
			idx, err1 := r.Uvarint()
			s, err2 := r.BytesPrefixed()
			if err1 != nil || err2 != nil {
				panic("dupdetect: corrupt estimate sample")
			}
			cp := make([]byte, len(s))
			copy(cp, s)
			samples = append(samples, sample{pe: pe, idx: int(idx), s: cp})
		}
	}

	// Local max-LCP for each sample string against the local set, via a
	// sorted copy and neighbor inspection around the insertion point.
	sorted := make([]int, len(ss))
	for i := range sorted {
		sorted[i] = i
	}
	sort.Slice(sorted, func(a, b int) bool {
		return bytes.Compare(ss[sorted[a]], ss[sorted[b]]) < 0
	})
	localMax := make([]uint64, len(samples))
	var work int64
	for si, smp := range samples {
		pos := sort.Search(len(sorted), func(k int) bool {
			return bytes.Compare(ss[sorted[k]], smp.s) >= 0
		})
		best := 0
		// Scan outwards from the insertion point; LCP can only shrink as
		// we move away, so a handful of neighbors suffices — but the
		// sampled occurrence itself (and duplicates of it) must be
		// skipped, which may require passing over an equal run.
		for k := pos; k < len(sorted); k++ {
			i := sorted[k]
			if smp.pe == c.Rank() && i == smp.idx {
				continue
			}
			h := strutil.LCP(ss[i], smp.s)
			work += int64(h + 1)
			if h > best {
				best = h
			}
			if h < len(smp.s) || (len(ss[i]) == len(smp.s)) {
				// Once past the equal run the LCP is final.
				break
			}
		}
		for k := pos - 1; k >= 0; k-- {
			i := sorted[k]
			if smp.pe == c.Rank() && i == smp.idx {
				continue
			}
			h := strutil.LCP(ss[i], smp.s)
			work += int64(h + 1)
			if h > best {
				best = h
			}
			break // below the insertion point the first non-self entry decides
		}
		localMax[si] = uint64(best)
	}
	c.AddWork(work)

	// Global max per sample string, then DIST = maxLCP+1 capped at |s|.
	globalMax := g.AllreduceUint64(localMax, comm.Max)
	res := EstimateResult{SampleSize: len(samples)}
	if len(samples) == 0 {
		return res
	}
	var sum float64
	for si, smp := range samples {
		d := int(globalMax[si]) + 1
		if d > len(smp.s) {
			d = len(smp.s)
		}
		sum += float64(d)
		if d > res.MaxDist {
			res.MaxDist = d
		}
	}
	res.AvgDist = sum / float64(len(samples))
	return res
}
