// Package debugserve is the live introspection endpoint behind the
// -debug-addr flag of dss-sort and dss-worker: one HTTP listener serving
// the standard pprof profiles, expvar gauges of the run in flight
// (current phase, live arena bytes, raw/wire traffic, spill volume) and
// an on-demand Chrome trace snapshot of every live PE recorder.
//
//	/debug/pprof/     — net/http/pprof (profile, heap, goroutine, ...)
//	/debug/vars       — expvar; the run gauges live under the "dss" key
//	/debug/dsstrace   — Chrome trace-event JSON snapshot of the live rings
//
// Starting the server flips the trace package's live switch, so the
// gauges are maintained and recorders register for snapshots from then
// on; with the flag unset nothing in the hot paths pays more than one
// atomic load.
package debugserve

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"dss/internal/trace"
)

var publishOnce sync.Once

// Start enables live introspection and serves the debug endpoint on addr
// (host:port; port 0 picks a free one). It returns the bound address —
// callers print it so port-0 listeners are reachable — and never blocks:
// the server runs on its own goroutine for the life of the process.
func Start(addr string) (string, error) {
	trace.EnableLive()
	publishOnce.Do(func() {
		expvar.Publish("dss", expvar.Func(func() any { return trace.Live.Map() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugserve: %w", err)
	}
	// An explicit mux rather than http.DefaultServeMux: the pprof side
	// effects of importing net/http/pprof land on the default mux, but a
	// private one keeps this endpoint self-contained and test-friendly.
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/dsstrace", serveTrace)
	go http.Serve(ln, mux) //nolint:errcheck // lives until process exit
	return ln.Addr().String(), nil
}

// serveTrace snapshots every live PE recorder of this process and writes
// a Chrome trace-event JSON document — the same format as -trace files,
// but on demand, mid-run, without stopping anything.
func serveTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WriteChromeTrace(w, trace.Snapshots()); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}
