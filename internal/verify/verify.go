// Package verify provides distributed correctness checks for the sorters:
// global sortedness across PE boundaries, LCP array validation, and
// order-independent multiset preservation. The checks communicate only
// O(1) data per PE and are used by the test suite, the CLI tools and the
// benchmark harness (with statistics excluded from the measured run).
package verify

import (
	"errors"
	"fmt"

	"dss/internal/comm"
	"dss/internal/strutil"
	"dss/internal/wire"
)

// Errors returned by the checks.
var (
	ErrLocalOrder  = errors.New("verify: fragment not locally sorted")
	ErrGlobalOrder = errors.New("verify: fragments out of order across PEs")
	ErrLCP         = errors.New("verify: LCP array mismatch")
	ErrMultiset    = errors.New("verify: output is not a permutation of the input")
)

// Sortedness checks that every PE's fragment is locally sorted and that
// the fragments are globally ordered by rank (PE i's last string ≤ PE
// i+1's first string, skipping empty PEs). Collective call: every PE must
// enter it, and every PE participates in the exchange even if its own
// fragment is already known to be out of order (an early return on one PE
// would deadlock the others inside the collective).
func Sortedness(c *comm.Comm, ss [][]byte, gid int) error {
	return sortedness(c, ss, nil, gid)
}

// SortednessLCP is Sortedness fused with LCP array validation: when lcps
// is non-nil, local order and LCP correctness are checked in ONE
// CompareLCP pass per adjacent pair instead of the two character scans of
// Sortedness + LCPs — the sorters already produced the LCP array, so
// validating it subsumes the order check. With nil lcps it degrades to
// plain Sortedness. Collective call with the same message schedule either
// way, so mixed use across PEs is not allowed.
func SortednessLCP(c *comm.Comm, ss [][]byte, lcps []int32, gid int) error {
	return sortedness(c, ss, lcps, gid)
}

func sortedness(c *comm.Comm, ss [][]byte, lcps []int32, gid int) error {
	var localErr error
	if lcps != nil {
		if i := strutil.ValidateSortedLCP(ss, lcps); i >= 0 {
			// Distinguish order violations from LCP mismatches only on the
			// failure path.
			if i > 0 && strutil.Compare(ss[i-1], ss[i]) > 0 {
				localErr = fmt.Errorf("%w at index %d", ErrLocalOrder, i)
			} else {
				localErr = fmt.Errorf("%w at index %d", ErrLCP, i)
			}
		}
	} else if !strutil.IsSorted(ss) {
		localErr = ErrLocalOrder
	}
	var first, last []byte
	if len(ss) > 0 {
		first, last = ss[0], ss[len(ss)-1]
	}
	return boundaryCheck(c, localErr, len(ss) > 0, first, last, gid)
}

// boundaryCheck runs the collective half of the sortedness checks: every
// PE contributes its local verdict and its fragment's first/last string,
// and the shared scan asserts PE i's last ≤ PE i+1's first (skipping
// empty PEs). Collective call with one Allgatherv; the materialized and
// the streaming front-ends share it, so their message schedules are
// identical and mixed use across PEs is allowed.
func boundaryCheck(c *comm.Comm, localErr error, nonEmpty bool, first, last []byte, gid int) error {
	g := comm.NewGroup(c, ranks(c.P()), gid)
	w := wire.NewBuffer(32)
	if localErr == nil {
		w.Uvarint(1)
	} else {
		w.Uvarint(0)
	}
	if !nonEmpty {
		w.Uvarint(0)
	} else {
		w.Uvarint(1)
		w.BytesPrefixed(first)
		w.BytesPrefixed(last)
	}
	parts := g.Allgatherv(w.Bytes())
	var prevLast []byte
	havePrev := false
	var firstErr error
	for pe, part := range parts {
		r := wire.NewReader(part)
		sortedFlag, err0 := r.Uvarint()
		has, err := r.Uvarint()
		if err0 != nil || err != nil {
			return fmt.Errorf("verify: corrupt boundary message from PE %d", pe)
		}
		if sortedFlag == 0 && firstErr == nil {
			if pe == c.Rank() && localErr != nil {
				firstErr = fmt.Errorf("%w (PE %d)", localErr, pe)
			} else {
				firstErr = fmt.Errorf("%w (PE %d)", ErrLocalOrder, pe)
			}
		}
		if has == 0 {
			continue
		}
		peFirst, err1 := r.BytesPrefixed()
		peLast, err2 := r.BytesPrefixed()
		if err1 != nil || err2 != nil {
			return fmt.Errorf("verify: corrupt boundary message from PE %d", pe)
		}
		if havePrev && strutil.Compare(prevLast, peFirst) > 0 && firstErr == nil {
			firstErr = fmt.Errorf("%w (boundary before PE %d)", ErrGlobalOrder, pe)
		}
		prevLast = append([]byte(nil), peLast...)
		havePrev = true
	}
	return firstErr
}

// StreamChecker is the out-of-core counterpart of SortednessLCP: a PE
// whose fragment lives in a sorted-run file streams it through Add in
// output order — no materialized array needed, memory use is two string
// buffers — and Finish runs the same collective boundary exchange as
// Sortedness. Add validates local order and, for runs carrying an LCP
// column, that each stored LCP is exactly the true LCP with the previous
// item.
type StreamChecker struct {
	n        int64
	first    []byte
	prev     []byte
	started  bool
	localErr error
}

// Add feeds the next item of the fragment. s may alias a reused buffer —
// the checker copies what it keeps.
func (sc *StreamChecker) Add(s []byte, lcp int32, hasLCP bool) {
	if !sc.started {
		sc.started = true
		sc.first = append([]byte(nil), s...)
	} else if sc.localErr == nil {
		h := matchLen(sc.prev, s)
		if h < len(sc.prev) && (h == len(s) || sc.prev[h] > s[h]) {
			sc.localErr = fmt.Errorf("%w at index %d", ErrLocalOrder, sc.n)
		} else if hasLCP && int(lcp) != h {
			sc.localErr = fmt.Errorf("%w at index %d", ErrLCP, sc.n)
		}
	}
	sc.prev = append(sc.prev[:0], s...)
	sc.n++
}

// Finish completes the check across PE boundaries. Collective call with
// the same message schedule as Sortedness/SortednessLCP.
func (sc *StreamChecker) Finish(c *comm.Comm, gid int) error {
	return boundaryCheck(c, sc.localErr, sc.started, sc.first, sc.prev, gid)
}

// matchLen returns the length of the longest common prefix of a and b.
func matchLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// LCPs checks a fragment's LCP array against direct recomputation.
func LCPs(ss [][]byte, lcps []int32) error {
	if lcps == nil {
		return nil
	}
	if i := strutil.ValidateLCPArray(ss, lcps); i >= 0 {
		return fmt.Errorf("%w at index %d", ErrLCP, i)
	}
	return nil
}

// Multiset checks that the global output multiset equals the global input
// multiset: every PE contributes (hash, count) of its local input and its
// local output; the sums must agree. Collective call.
func Multiset(c *comm.Comm, input, output [][]byte, gid int) error {
	return MultisetStream(c, input, strutil.MultisetHash(output), int64(len(output)), gid)
}

// MultisetStream is Multiset with a pre-accumulated output side: callers
// that stream their output (the out-of-core pipeline's run files) fold
// each string through strutil.MultisetAdd and pass the accumulator here.
// Collective call with the same message schedule as Multiset, so budgeted
// and in-RAM PEs may mix.
func MultisetStream(c *comm.Comm, input [][]byte, outHash uint64, outCount int64, gid int) error {
	g := comm.NewGroup(c, ranks(c.P()), gid)
	sums := g.AllreduceUint64([]uint64{
		strutil.MultisetHash(input), uint64(len(input)),
		outHash, uint64(outCount),
	}, comm.Sum)
	if sums[0] != sums[2] || sums[1] != sums[3] {
		return fmt.Errorf("%w (count %d → %d)", ErrMultiset, sums[1], sums[3])
	}
	return nil
}

func ranks(p int) []int {
	r := make([]int, p)
	for i := range r {
		r[i] = i
	}
	return r
}
