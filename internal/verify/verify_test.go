package verify

import (
	"errors"
	"testing"

	"dss/internal/comm"
)

// run executes f on a p-PE machine and returns the first error.
func run(p int, f func(c *comm.Comm) error) error {
	return comm.New(p).Run(f)
}

func TestSortednessAccepts(t *testing.T) {
	frags := [][][]byte{
		{[]byte("a"), []byte("b")},
		{},                          // empty PE in the middle
		{[]byte("b"), []byte("cc")}, // equal boundary values allowed
		{[]byte("cc")},
	}
	err := run(4, func(c *comm.Comm) error {
		return Sortedness(c, frags[c.Rank()], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortednessRejectsLocalDisorder(t *testing.T) {
	frags := [][][]byte{
		{[]byte("b"), []byte("a")},
		{[]byte("c")},
	}
	err := run(2, func(c *comm.Comm) error {
		return Sortedness(c, frags[c.Rank()], 1)
	})
	if !errors.Is(err, ErrLocalOrder) {
		t.Fatalf("err = %v, want ErrLocalOrder", err)
	}
}

func TestSortednessRejectsBoundaryDisorder(t *testing.T) {
	frags := [][][]byte{
		{[]byte("m"), []byte("z")},
		{[]byte("a")}, // smaller than PE 0's last string
	}
	err := run(2, func(c *comm.Comm) error {
		return Sortedness(c, frags[c.Rank()], 1)
	})
	if !errors.Is(err, ErrGlobalOrder) {
		t.Fatalf("err = %v, want ErrGlobalOrder", err)
	}
}

func TestSortednessSkipsEmptyBoundaries(t *testing.T) {
	// Only the outer PEs hold data; the middle must not break the chain.
	frags := [][][]byte{
		{[]byte("a")}, {}, {}, {[]byte("b")},
	}
	err := run(4, func(c *comm.Comm) error {
		return Sortedness(c, frags[c.Rank()], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLCPsValidation(t *testing.T) {
	ss := [][]byte{[]byte("ab"), []byte("abc"), []byte("b")}
	if err := LCPs(ss, []int32{0, 2, 0}); err != nil {
		t.Fatal(err)
	}
	if err := LCPs(ss, []int32{0, 1, 0}); !errors.Is(err, ErrLCP) {
		t.Fatalf("err = %v, want ErrLCP", err)
	}
	if err := LCPs(ss, nil); err != nil {
		t.Fatal("nil LCP array must be accepted (algorithms without LCP output)")
	}
}

func TestMultisetAcceptsPermutation(t *testing.T) {
	in := [][][]byte{
		{[]byte("x"), []byte("y")},
		{[]byte("z")},
	}
	out := [][][]byte{
		{[]byte("z"), []byte("y")}, // redistributed
		{[]byte("x")},
	}
	err := run(2, func(c *comm.Comm) error {
		return Multiset(c, in[c.Rank()], out[c.Rank()], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultisetRejectsLossAndDuplication(t *testing.T) {
	in := [][][]byte{{[]byte("x"), []byte("y")}, {[]byte("z")}}
	lost := [][][]byte{{[]byte("x")}, {[]byte("z")}}
	err := run(2, func(c *comm.Comm) error {
		return Multiset(c, in[c.Rank()], lost[c.Rank()], 1)
	})
	if !errors.Is(err, ErrMultiset) {
		t.Fatalf("lost string: err = %v", err)
	}
	swapped := [][][]byte{{[]byte("x"), []byte("x")}, {[]byte("z")}}
	err = run(2, func(c *comm.Comm) error {
		return Multiset(c, in[c.Rank()], swapped[c.Rank()], 1)
	})
	if !errors.Is(err, ErrMultiset) {
		t.Fatalf("duplicated string: err = %v", err)
	}
}

func TestSingplePEVerify(t *testing.T) {
	err := run(1, func(c *comm.Comm) error {
		if err := Sortedness(c, [][]byte{[]byte("a"), []byte("b")}, 1); err != nil {
			return err
		}
		return Multiset(c, [][]byte{[]byte("a")}, [][]byte{[]byte("a")}, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
}
