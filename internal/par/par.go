// Package par provides the bounded, deterministic intra-PE work pool the
// sorting algorithms use to spread Step-1 local sorting, Step-3 bucket
// encoding and run decoding over multiple cores without changing any
// result or any deterministic statistic.
//
// Determinism contract. The pool never decides WHAT is computed, only
// WHERE: every task writes to its own index-addressed slot (ForEach,
// MapOrdered) or to memory it exclusively owns (Group), and callers
// combine per-task outputs in index order. Counter totals are summed from
// per-task accumulators whose addition is order-independent (int64 adds).
// A caller that follows this contract gets bit-identical results for every
// pool width, which is what keeps the repo's model statistics invariant
// under -cores.
//
// Scheduling model. A Pool of width W owns W−1 helper tokens. Fork points
// (ForEach, Group.Go) try-acquire a token for a helper goroutine and fall
// back to running the task inline on the calling goroutine when none is
// free — so nested fork points degrade gracefully to sequential execution
// instead of deadlocking, at most W goroutines ever compute at once, and a
// width-1 (or nil) pool is EXACTLY the sequential code path: tasks run
// inline, in index order, on the caller.
//
// Every fork point returns the summed busy nanoseconds of its tasks
// (caller's share included). That is the "CPU seconds" channel of
// stats.PE: wall-clock spans cannot show multi-core speedup on their own,
// but busy/wall > 1 in a phase proves real parallel execution.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded intra-PE work pool. The zero value is not usable; nil
// is, and behaves as a width-1 sequential pool. Pools are safe for
// concurrent use and may be shared by several PEs of one in-process
// machine (the token bound then caps the machine-wide helper count, which
// is the right bound: the PE goroutines themselves already occupy cores).
type Pool struct {
	cores  int
	tokens chan struct{} // cores−1 helper permits; try-acquired, never blocked on
}

// New creates a pool of the given width. cores <= 0 selects
// runtime.GOMAXPROCS(0); cores == 1 yields the pure sequential pool.
func New(cores int) *Pool {
	if cores <= 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	p := &Pool{cores: cores}
	if cores > 1 {
		p.tokens = make(chan struct{}, cores-1)
		for i := 0; i < cores-1; i++ {
			p.tokens <- struct{}{}
		}
	}
	return p
}

// Cores returns the pool width; 1 for a nil pool.
func (p *Pool) Cores() int {
	if p == nil {
		return 1
	}
	return p.cores
}

// Sequential reports whether the pool runs everything inline on the
// caller (nil pool or width 1): the exact sequential code path.
func (p *Pool) Sequential() bool { return p == nil || p.cores == 1 }

// taskPanic carries the first panic of a helper goroutine to the caller.
type taskPanic struct {
	val   any
	stack []byte
}

func rethrow(pv *taskPanic) {
	panic(fmt.Sprintf("par: task panicked: %v\n%s", pv.val, pv.stack))
}

// Observer sees one callback per participating worker of an observed fork
// point, after that worker finishes: worker 0 is the calling goroutine,
// 1..W−1 the helpers, with the worker's busy interval as wall-clock
// nanosecond stamps. Observers exist for trace attribution; a nil
// Observer costs nothing. Callbacks may arrive concurrently from the
// worker goroutines themselves.
type Observer func(worker int, startNS, endNS int64)

// ForEach runs fn(0..n-1), each index exactly once, spreading the indices
// over the caller plus up to Cores()−1 helper goroutines, and returns the
// summed busy nanoseconds of all workers. It blocks until every index is
// done (a barrier). Indices are dispensed in order, so on a sequential
// pool the calls happen exactly as a plain loop would. A panic in any task
// is re-raised on the caller after the barrier.
func (p *Pool) ForEach(n int, fn func(i int)) int64 {
	return p.ForEachObs(n, fn, nil)
}

// ForEachObs is ForEach with an optional Observer reporting each
// participating worker's busy span — the fork/join attribution channel of
// the timeline trace. The schedule is identical to ForEach; the observer
// never influences WHAT runs or WHERE.
func (p *Pool) ForEachObs(n int, fn func(i int), obs Observer) int64 {
	if n <= 0 {
		return 0
	}
	if p.Sequential() || n == 1 {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		d := time.Since(t0).Nanoseconds()
		if obs != nil {
			end := t0.UnixNano() + d
			obs(0, t0.UnixNano(), end)
		}
		return d
	}
	var (
		next  atomic.Int64
		busy  atomic.Int64
		fault atomic.Pointer[taskPanic]
		wg    sync.WaitGroup
	)
	worker := func(id int) {
		t0 := time.Now()
		defer func() {
			busy.Add(time.Since(t0).Nanoseconds())
			if obs != nil {
				obs(id, t0.UnixNano(), time.Now().UnixNano())
			}
			if r := recover(); r != nil {
				fault.CompareAndSwap(nil, &taskPanic{val: r, stack: stack()})
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	// Helpers only with a free token; the caller always participates.
	helpers := min(p.cores-1, n-1)
	spawned := 0
spawn:
	for h := 0; h < helpers; h++ {
		select {
		case <-p.tokens:
			spawned++
			id := spawned
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { p.tokens <- struct{}{} }()
				worker(id)
			}()
		default:
			break spawn
		}
	}
	worker(0)
	wg.Wait()
	if pv := fault.Load(); pv != nil {
		rethrow(pv)
	}
	return busy.Load()
}

// MapOrdered runs fn(0..n-1) on the pool and returns the results in index
// order — the schedule can never reorder them — plus the summed busy
// nanoseconds.
func MapOrdered[T any](p *Pool, n int, fn func(i int) T) ([]T, int64) {
	out := make([]T, n)
	busy := p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out, busy
}

// Group collects dynamically spawned tasks (Go) for one joint Wait. Tasks
// may spawn further tasks on the same Group from inside themselves —
// recursion over an irregular tree — and every spawn degrades to inline
// execution when no helper token is free, so a Group on a sequential pool
// is a plain depth-first recursion. Go and Wait follow the usual
// WaitGroup discipline: Wait may only be called after the direct Go calls
// of the owning goroutine are done (task-internal Go calls are covered by
// their running parent task).
type Group struct {
	p     *Pool
	wg    sync.WaitGroup
	busy  atomic.Int64
	fault atomic.Pointer[taskPanic]
}

// Group creates a task group on the pool.
func (p *Pool) Group() *Group { return &Group{p: p} }

// Go schedules fn: on a helper goroutine when a token is free, otherwise
// inline (in which case it has completed when Go returns, and its panics
// propagate directly — exactly the sequential behavior).
func (g *Group) Go(fn func()) {
	if g.p.Sequential() {
		t0 := time.Now()
		fn()
		g.busy.Add(time.Since(t0).Nanoseconds())
		return
	}
	select {
	case <-g.p.tokens:
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer func() { g.p.tokens <- struct{}{} }()
			t0 := time.Now()
			defer func() {
				g.busy.Add(time.Since(t0).Nanoseconds())
				if r := recover(); r != nil {
					g.fault.CompareAndSwap(nil, &taskPanic{val: r, stack: stack()})
				}
			}()
			fn()
		}()
	default:
		t0 := time.Now()
		fn()
		g.busy.Add(time.Since(t0).Nanoseconds())
	}
}

// Wait blocks until every spawned task has finished and returns the summed
// busy nanoseconds of all tasks. A panic in any helper task is re-raised
// here. Wait may be called once per Group.
func (g *Group) Wait() int64 {
	g.wg.Wait()
	if pv := g.fault.Load(); pv != nil {
		rethrow(pv)
	}
	return g.busy.Load()
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
