package par

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 8} {
		p := New(cores)
		const n = 1000
		hits := make([]int32, n)
		p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("cores=%d: index %d executed %d times", cores, i, h)
			}
		}
	}
}

func TestNilPoolIsSequential(t *testing.T) {
	var p *Pool
	if !p.Sequential() || p.Cores() != 1 {
		t.Fatalf("nil pool: Sequential=%v Cores=%d", p.Sequential(), p.Cores())
	}
	// Inline execution in index order, on the calling goroutine.
	var order []int
	p.ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
	g := p.Group()
	ran := false
	g.Go(func() { ran = true })
	if !ran {
		t.Fatal("sequential Group.Go did not run inline")
	}
	g.Wait()
}

func TestMapOrderedPreservesIndexOrder(t *testing.T) {
	p := New(4)
	out, busy := MapOrdered(p, 257, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if busy < 0 {
		t.Fatalf("negative busy time %d", busy)
	}
}

// TestDeterministicAccumulation is the merge-back contract in miniature:
// per-task partial sums combined by order-independent addition must give
// the same total at every pool width.
func TestDeterministicAccumulation(t *testing.T) {
	const n = 10000
	var want int64
	for i := 0; i < n; i++ {
		want += int64(i * 7)
	}
	for _, cores := range []int{1, 2, 4, 16} {
		p := New(cores)
		var got atomic.Int64
		p.ForEach(n, func(i int) { got.Add(int64(i * 7)) })
		if got.Load() != want {
			t.Fatalf("cores=%d: sum %d, want %d", cores, got.Load(), want)
		}
	}
}

// TestNestedForkPointsDegradeInline drives recursion deeper than the token
// supply: inner fork points must run inline instead of deadlocking, and
// every leaf must still execute exactly once.
func TestNestedForkPointsDegradeInline(t *testing.T) {
	p := New(3)
	var leaves atomic.Int64
	var recurse func(g *Group, depth int)
	recurse = func(g *Group, depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		for k := 0; k < 3; k++ {
			g.Go(func() { recurse(g, depth-1) })
		}
	}
	g := p.Group()
	recurse(g, 6)
	g.Wait()
	if want := int64(729); leaves.Load() != want {
		t.Fatalf("leaves = %d, want %d", leaves.Load(), want)
	}
	// All tokens must be back: the next ForEach can still parallelize.
	if got := len(p.tokens); got != p.cores-1 {
		t.Fatalf("%d/%d tokens returned after nested run", got, p.cores-1)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, cores := range []int{1, 4} {
		p := New(cores)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("cores=%d: panic did not propagate", cores)
				}
				if cores > 1 && !strings.Contains(r.(string), "boom") {
					t.Fatalf("cores=%d: wrapped panic lost the cause: %v", cores, r)
				}
			}()
			p.ForEach(64, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
		if p.tokens != nil && len(p.tokens) != p.cores-1 {
			t.Fatalf("cores=%d: tokens leaked across a panic", cores)
		}
	}
}

func TestGroupPanicPropagatesOnWait(t *testing.T) {
	p := New(4)
	g := p.Group()
	var sawInline any
	func() {
		defer func() { sawInline = recover() }()
		for k := 0; k < 32; k++ {
			g.Go(func() {
				time.Sleep(time.Microsecond)
				panic("task fault")
			})
		}
	}()
	if sawInline != nil {
		// An inline task panicked straight through Go — also correct; the
		// spawned remainder still joins below.
		if !strings.Contains(sawInline.(string), "task fault") {
			t.Fatalf("inline panic lost the cause: %v", sawInline)
		}
		// Spawned siblings may have panicked as well; join them tolerantly.
		func() {
			defer func() { _ = recover() }()
			g.Wait()
		}()
		return
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Wait did not re-raise the helper panic")
		}
	}()
	g.Wait()
}

// TestPoolRandomizedScheduleStress is the -race stress run of the
// determinism suite: tasks of wildly varying duration, random nesting and
// random pool widths hammer the token machinery while all partial results
// land in index-addressed slots. Any cross-task data race is the race
// detector's to find; the assertions pin the merge-back invariants.
func TestPoolRandomizedScheduleStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		cores := 1 + rng.Intn(8)
		p := New(cores)
		n := 1 + rng.Intn(200)
		delays := make([]time.Duration, n)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(50)) * time.Microsecond
		}
		out := make([]int, n)
		var total atomic.Int64
		busy := p.ForEach(n, func(i int) {
			if delays[i] > 0 {
				time.Sleep(delays[i])
			}
			if i%7 == 0 {
				// Nested fork point under load.
				sub, _ := MapOrdered(p, 3, func(j int) int { return i + j })
				out[i] = sub[0] + sub[1] + sub[2] - 2*i - 3
			} else {
				out[i] = i
			}
			total.Add(int64(i))
		})
		for i, v := range out {
			if v != i {
				t.Fatalf("round %d cores=%d: out[%d] = %d", round, cores, i, v)
			}
		}
		if want := int64(n) * int64(n-1) / 2; total.Load() != want {
			t.Fatalf("round %d: total %d want %d", round, total.Load(), want)
		}
		if busy <= 0 {
			t.Fatalf("round %d: busy = %d", round, busy)
		}
		if p.tokens != nil && len(p.tokens) != cores-1 {
			t.Fatalf("round %d: %d/%d tokens after drain", round, len(p.tokens), cores-1)
		}
	}
}
