// The sorted-run file format: what a budgeted worker writes instead of
// accumulating its merged output arena. The format is streaming on both
// sides — the writer needs no counts up front (unlike the Step-3 wire
// framing, which declares its string count first), the reader needs no
// index — and it front-codes each string against its predecessor, so a
// sorted run with long shared prefixes costs little more on disk than the
// LCP-compressed exchange payload did on the wire.
//
// Layout:
//
//	"DSSRUN1\n"  8-byte magic
//	flags        1 byte: bit0 = items carry an LCP column,
//	                     bit1 = items carry a satellite column
//	pages        uvarint itemCount > 0, then itemCount items:
//	               [uvarint lcp]  (only with bit0; front-coded prefix length)
//	               [uvarint sat]  (only with bit1)
//	               uvarint suffixLen, suffixLen bytes
//	terminator   uvarint 0
//
// Without the LCP column every item stores its full bytes (lcp fixed 0).
// The front coding runs across page boundaries: prev is the previous item
// of the whole run, like the wire format's LCP rematerialization.
package spill

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

var runMagic = [8]byte{'D', 'S', 'S', 'R', 'U', 'N', '1', '\n'}

const (
	runFlagLCP = 1 << 0
	runFlagSat = 1 << 1
)

// ErrRunCorrupt reports a malformed sorted-run file.
var ErrRunCorrupt = errors.New("spill: corrupt sorted-run file")

// RunWriterOpts selects the optional item columns of a sorted-run file.
type RunWriterOpts struct {
	LCP  bool // store the front-coded LCP column (LCP-merging families)
	Sats bool // store the satellite column (PDMS origins)
}

// RunWriter streams one PE's merged output to w page by page. Memory use
// is bounded by one page buffer regardless of run length; the optional
// pool meters that buffer. Not safe for concurrent use.
type RunWriter struct {
	w     io.Writer
	opts  RunWriterOpts
	page  []byte
	inPg  int // items encoded into the current page
	prev  []byte
	pool  *Pool
	pgCap int
	count int64
	err   error
	done  bool
}

// NewRunWriter starts a sorted-run file on w. pool (optional) meters the
// page buffer against the budget; pageSize <= 0 inherits the pool's page
// size (or DefaultPageSize without a pool), so the buffer scales with the
// budget the pool was configured for.
func NewRunWriter(w io.Writer, opts RunWriterOpts, pool *Pool, pageSize int) (*RunWriter, error) {
	if pageSize <= 0 {
		if pool != nil {
			pageSize = pool.PageSize()
		} else {
			pageSize = DefaultPageSize
		}
	}
	var flags byte
	if opts.LCP {
		flags |= runFlagLCP
	}
	if opts.Sats {
		flags |= runFlagSat
	}
	hdr := append(append([]byte{}, runMagic[:]...), flags)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("spill: run header: %w", err)
	}
	rw := &RunWriter{w: w, opts: opts, pgCap: pageSize, pool: pool}
	if pool != nil {
		pool.Reserve(int64(pageSize))
	}
	return rw, nil
}

// Add appends one merged item. lcp is the string's LCP with the previous
// item of the run (ignored without the LCP column); sat its satellite word
// (ignored without the satellite column). The string is copied — callers
// may recycle its arena as soon as Add returns.
func (rw *RunWriter) Add(s []byte, lcp int32, sat uint64) error {
	if rw.err != nil {
		return rw.err
	}
	if rw.inPg == 0 {
		rw.page = rw.page[:0]
	}
	if rw.opts.LCP {
		if lcp < 0 || int(lcp) > len(rw.prev) {
			rw.err = fmt.Errorf("spill: run writer: lcp %d out of range (prev len %d)", lcp, len(rw.prev))
			return rw.err
		}
		rw.page = binary.AppendUvarint(rw.page, uint64(lcp))
	} else {
		lcp = 0
	}
	if rw.opts.Sats {
		rw.page = binary.AppendUvarint(rw.page, sat)
	}
	suffix := s[lcp:]
	rw.page = binary.AppendUvarint(rw.page, uint64(len(suffix)))
	rw.page = append(rw.page, suffix...)
	rw.prev = append(rw.prev[:int(lcp)], suffix...)
	rw.inPg++
	rw.count++
	if len(rw.page) >= rw.pgCap {
		rw.flushPage()
	}
	return rw.err
}

func (rw *RunWriter) flushPage() {
	if rw.inPg == 0 || rw.err != nil {
		return
	}
	var cnt [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(cnt[:], uint64(rw.inPg))
	if _, err := rw.w.Write(cnt[:n]); err == nil {
		_, err = rw.w.Write(rw.page)
		rw.err = err
	} else {
		rw.err = err
	}
	rw.inPg = 0
	rw.page = rw.page[:0]
}

// Count returns the items written so far.
func (rw *RunWriter) Count() int64 { return rw.count }

// Close flushes the tail page and writes the terminator. It does not close
// the underlying writer. Idempotent.
func (rw *RunWriter) Close() error {
	if rw.done {
		return rw.err
	}
	rw.done = true
	rw.flushPage()
	if rw.err == nil {
		_, rw.err = rw.w.Write([]byte{0})
	}
	if rw.pool != nil {
		rw.pool.Release(int64(rw.pgCap))
		rw.pool = nil
	}
	return rw.err
}

// RunScanner streams a sorted-run file back item by item.
type RunScanner struct {
	br     *bufio.Reader
	hasLCP bool
	hasSat bool
	left   int // items remaining in the current page
	prev   []byte
	err    error
	done   bool
}

// NewRunScanner opens a sorted-run stream, validating the header.
func NewRunScanner(r io.Reader) (*RunScanner, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var hdr [9]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("spill: run header: %w", err)
	}
	if [8]byte(hdr[:8]) != runMagic {
		return nil, ErrRunCorrupt
	}
	return &RunScanner{
		br:     br,
		hasLCP: hdr[8]&runFlagLCP != 0,
		hasSat: hdr[8]&runFlagSat != 0,
	}, nil
}

// HasLCP reports whether items carry the LCP column.
func (sc *RunScanner) HasLCP() bool { return sc.hasLCP }

// HasSats reports whether items carry the satellite column.
func (sc *RunScanner) HasSats() bool { return sc.hasSat }

// Next returns the next item. ok=false with a nil error means the run
// ended cleanly at its terminator. The returned string aliases the
// scanner's reused prev buffer: it is only valid until the next call —
// copy it to keep it.
func (sc *RunScanner) Next() (s []byte, lcp int32, sat uint64, ok bool, err error) {
	if sc.err != nil || sc.done {
		return nil, 0, 0, false, sc.err
	}
	if sc.left == 0 {
		n, err := binary.ReadUvarint(sc.br)
		if err != nil {
			sc.err = fmt.Errorf("spill: run page count: %w", err)
			return nil, 0, 0, false, sc.err
		}
		if n == 0 {
			sc.done = true
			return nil, 0, 0, false, nil
		}
		if n > maxRunPageItems {
			sc.err = ErrRunCorrupt
			return nil, 0, 0, false, sc.err
		}
		sc.left = int(n)
	}
	sc.left--
	var h uint64
	if sc.hasLCP {
		if h, err = binary.ReadUvarint(sc.br); err != nil {
			sc.err = fmt.Errorf("spill: run item: %w", err)
			return nil, 0, 0, false, sc.err
		}
		if h > uint64(len(sc.prev)) {
			sc.err = ErrRunCorrupt
			return nil, 0, 0, false, sc.err
		}
	}
	if sc.hasSat {
		if sat, err = binary.ReadUvarint(sc.br); err != nil {
			sc.err = fmt.Errorf("spill: run item: %w", err)
			return nil, 0, 0, false, sc.err
		}
	}
	slen, err := binary.ReadUvarint(sc.br)
	if err != nil {
		sc.err = fmt.Errorf("spill: run item: %w", err)
		return nil, 0, 0, false, sc.err
	}
	if slen > maxSectionLen {
		sc.err = ErrRunCorrupt
		return nil, 0, 0, false, sc.err
	}
	sc.prev = sc.prev[:h]
	need := int(h) + int(slen)
	if cap(sc.prev) < need {
		grown := make([]byte, int(h), need)
		copy(grown, sc.prev)
		sc.prev = grown
	}
	tail := sc.prev[h:need]
	sc.prev = sc.prev[:need]
	if _, err := io.ReadFull(sc.br, tail); err != nil {
		sc.err = fmt.Errorf("spill: run item: %w", err)
		return nil, 0, 0, false, sc.err
	}
	return sc.prev, int32(h), sat, true, nil
}

// maxRunPageItems and maxSectionLen bound declared counts so a corrupt
// stream fails fast instead of allocating unboundedly (mirrors the wire
// package's section bound).
const (
	maxRunPageItems = 1 << 30
	maxSectionLen   = 1<<31 - 1
)

// ReadRunFile loads a whole sorted-run file into memory — a convenience
// for tests and for diffing a budgeted run against an in-RAM one.
func ReadRunFile(r io.Reader) (ss [][]byte, lcps []int32, sats []uint64, err error) {
	sc, err := NewRunScanner(r)
	if err != nil {
		return nil, nil, nil, err
	}
	for {
		s, lcp, sat, ok, err := sc.Next()
		if err != nil {
			return nil, nil, nil, err
		}
		if !ok {
			break
		}
		ss = append(ss, append([]byte(nil), s...))
		if sc.HasLCP() {
			lcps = append(lcps, lcp)
		}
		if sc.HasSats() {
			sats = append(sats, sat)
		}
	}
	return ss, lcps, sats, nil
}
