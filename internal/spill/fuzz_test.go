package spill

import (
	"bytes"
	"testing"
)

// fuzzItems derives a sorted-run item sequence from raw fuzz bytes: each
// item is a short prefix of the corpus data with a correct LCP against its
// predecessor, so the writer's front-coding invariants hold regardless of
// input. Returns nil when data can't seed even one item.
func fuzzItems(data []byte) (ss [][]byte, lcps []int32, sats []uint64) {
	var prev []byte
	for i := 0; i+2 <= len(data); {
		n := int(data[i]) % 48
		i++
		if i+n > len(data) {
			n = len(data) - i
		}
		s := append([]byte(nil), data[i:i+n]...)
		i += n
		lcp := 0
		for lcp < len(prev) && lcp < len(s) && prev[lcp] == s[lcp] {
			lcp++
		}
		ss = append(ss, s)
		lcps = append(lcps, int32(lcp))
		sats = append(sats, uint64(n)<<32|uint64(i))
		prev = s
	}
	return ss, lcps, sats
}

// FuzzRunFileRoundTrip drives arbitrary item sequences through RunWriter →
// RunScanner at fuzz-chosen page sizes and flag combinations and demands an
// exact round-trip: same strings, same satellites, LCPs consistent with the
// strings themselves, clean terminator. This is the spill-page analogue of
// the wire package's FuzzRunReader.
func FuzzRunFileRoundTrip(f *testing.F) {
	f.Add([]byte("3abc3abd3xyz"), uint8(3), uint16(64))
	f.Add([]byte{}, uint8(0), uint16(1))
	f.Add(bytes.Repeat([]byte{0, 1, 2, 3}, 64), uint8(2), uint16(7))
	f.Fuzz(func(t *testing.T, data []byte, flags8 uint8, page16 uint16) {
		opts := RunWriterOpts{LCP: flags8&1 != 0, Sats: flags8&2 != 0}
		pageSize := int(page16%4096) + 1
		ss, lcps, sats := fuzzItems(data)

		var buf bytes.Buffer
		rw, err := NewRunWriter(&buf, opts, nil, pageSize)
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		for i, s := range ss {
			if err := rw.Add(s, lcps[i], sats[i]); err != nil {
				t.Fatalf("add %d: %v", i, err)
			}
		}
		if err := rw.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if rw.Count() != int64(len(ss)) {
			t.Fatalf("count %d, want %d", rw.Count(), len(ss))
		}

		gotSS, gotLCPs, gotSats, err := ReadRunFile(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if len(gotSS) != len(ss) {
			t.Fatalf("round-trip %d items, want %d", len(gotSS), len(ss))
		}
		for i := range ss {
			if !bytes.Equal(gotSS[i], ss[i]) {
				t.Fatalf("item %d: got %q want %q", i, gotSS[i], ss[i])
			}
		}
		if opts.LCP {
			for i := range lcps {
				if gotLCPs[i] != lcps[i] {
					t.Fatalf("lcp %d: got %d want %d", i, gotLCPs[i], lcps[i])
				}
			}
		}
		if opts.Sats {
			for i := range sats {
				if gotSats[i] != sats[i] {
					t.Fatalf("sat %d: got %d want %d", i, gotSats[i], sats[i])
				}
			}
		}
	})
}

// FuzzRunScanner feeds arbitrary bytes — valid files, truncations, and pure
// garbage — to the scanner. The contract under corruption is errors, never
// panics, stalls, or unbounded allocation; a stream that scans to a clean
// end must be byte-for-byte replayable to the same items.
func FuzzRunScanner(f *testing.F) {
	var valid bytes.Buffer
	rw, _ := NewRunWriter(&valid, RunWriterOpts{LCP: true, Sats: true}, nil, 32)
	rw.Add([]byte("alpha"), 0, 1)
	rw.Add([]byte("alphabet"), 5, 2)
	rw.Add([]byte("beta"), 0, 3)
	rw.Close()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte("DSSRUN1\n"))
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := NewRunScanner(bytes.NewReader(data))
		if err != nil {
			return
		}
		var items [][]byte
		for {
			s, _, _, ok, err := sc.Next()
			if err != nil {
				return
			}
			if !ok {
				break
			}
			items = append(items, append([]byte(nil), s...))
			if len(items) > 1<<16 {
				t.Fatalf("scanner emitted over %d items from %d input bytes", 1<<16, len(data))
			}
		}
		// Clean end: a replay must agree exactly.
		again, _, _, err := ReadRunFile(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("clean scan but replay errors: %v", err)
		}
		if len(again) != len(items) {
			t.Fatalf("replay %d items, first scan %d", len(again), len(items))
		}
		for i := range items {
			if !bytes.Equal(again[i], items[i]) {
				t.Fatalf("replay item %d differs", i)
			}
		}
	})
}
