// Package spill gives the out-of-core pipeline its bounded-memory
// machinery: a Pool that meters every live arena byte of one PE against a
// configured budget, page files that absorb run bytes the budget cannot
// hold (written behind the PE's back on the intra-PE work pool and paged
// back in sequentially ahead of the merge cursor), and the sorted-run file
// format the Step-4 drain writes instead of accumulating a result arena.
//
// Accounting model. The Pool counts bytes, it never blocks: callers
// Reserve what they decode or buffer, Release what they recycle, and ask
// Over() when deciding whether the next run chunk may stay resident or
// must go to its page file. Peak() records the high-water mark — the
// "peak live arena bytes" channel of the run statistics. The budget covers
// the metered arenas only; the fixed overhead on top (the local input
// fragment, one encode arena during Step 3, one transport frame, and the
// stale arena block each RunReader pins after a recycle) is documented in
// the README's out-of-core section.
//
// Lifecycle. Every Pool owns a private temporary directory; page files
// live only there, and Close — idempotent, safe under defer on error and
// panic paths alike — removes the whole directory. A crashed or failed
// merge therefore never leaves orphaned spill pages behind.
package spill

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dss/internal/par"
	"dss/internal/trace"
)

// DefaultPageSize is the write-behind flush granularity of page files and
// the buffer bound of RunWriter: spill I/O happens in chunks of roughly
// this many bytes.
const DefaultPageSize = 256 << 10

// MinPageSize floors the budget-derived page size; pages below this would
// fragment spill I/O into uselessly small writes.
const MinPageSize = 4 << 10

// defaultPageSizeFor derives the page size from the budget when the caller
// did not pin one. Pending pages (a spill file's unflushed tail, the run
// writer's open page) stay reserved against the budget until they reach
// the page size, so the page must be a small fraction of the budget —
// with PageSize >= Budget, spilling could never release memory and the
// bound would degenerate to the in-RAM footprint. A sixteenth keeps the
// per-file pending overhead at ~6% of the budget while still batching I/O.
func defaultPageSizeFor(budget int64) int {
	ps := int64(DefaultPageSize)
	if budget > 0 && ps > budget/16 {
		ps = budget / 16
	}
	if ps < MinPageSize {
		ps = MinPageSize
	}
	return int(ps)
}

// Config parameterizes a Pool.
type Config struct {
	// Budget is the live-byte budget in bytes. 0 means unlimited: the pool
	// still meters (Peak stays meaningful) but Over never reports true.
	Budget int64
	// Dir is the parent directory for the pool's private page directory
	// (default: the OS temp dir).
	Dir string
	// PageSize overrides the write-behind flush granularity
	// (default DefaultPageSize).
	PageSize int
	// Create overrides page-file creation — a fault-injection seam for the
	// lifecycle tests. nil means os.Create.
	Create func(name string) (*os.File, error)
}

// Pool meters one PE's live arena bytes against the budget and owns the
// PE's spill page files. The counters are atomic: the PE goroutine and the
// write-behind helpers update them concurrently.
type Pool struct {
	cfg     Config
	dir     string
	workers *par.Pool
	tr      *trace.Recorder // timeline recorder; nil = tracing off

	live    atomic.Int64
	peak    atomic.Int64
	written atomic.Int64
	read    atomic.Int64

	closeOnce sync.Once
	closeErr  error
	nfiles    atomic.Int64
}

// NewPool creates a pool with its private page directory under cfg.Dir.
func NewPool(cfg Config, workers *par.Pool) (*Pool, error) {
	if cfg.PageSize <= 0 {
		cfg.PageSize = defaultPageSizeFor(cfg.Budget)
	}
	dir, err := os.MkdirTemp(cfg.Dir, "dss-spill-*")
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &Pool{cfg: cfg, dir: dir, workers: workers}, nil
}

// SetTrace installs the PE's timeline recorder (nil = tracing off): page
// flushes and page-ins become instants on the spill track with live-byte
// counter samples alongside. The recorder is mutex-protected, so the
// write-behind helpers record through it safely.
func (p *Pool) SetTrace(tr *trace.Recorder) { p.tr = tr }

// Dir returns the pool's private page directory.
func (p *Pool) Dir() string { return p.dir }

// Budget returns the configured live-byte budget (0 = unlimited).
func (p *Pool) Budget() int64 { return p.cfg.Budget }

// PageSize returns the spill I/O granularity.
func (p *Pool) PageSize() int { return p.cfg.PageSize }

// Reserve meters n freshly live bytes and updates the high-water mark.
func (p *Pool) Reserve(n int64) {
	if n == 0 {
		return
	}
	live := p.live.Add(n)
	if trace.LiveOn() {
		trace.Live.LiveBytes.Add(n)
	}
	for {
		peak := p.peak.Load()
		if live <= peak || p.peak.CompareAndSwap(peak, live) {
			return
		}
	}
}

// Release returns n bytes to the budget.
func (p *Pool) Release(n int64) {
	p.live.Add(-n)
	if trace.LiveOn() {
		trace.Live.LiveBytes.Add(-n)
	}
}

// Over reports that the live bytes exceed a configured budget.
func (p *Pool) Over() bool {
	return p.cfg.Budget > 0 && p.live.Load() > p.cfg.Budget
}

// Live returns the currently metered live bytes.
func (p *Pool) Live() int64 { return p.live.Load() }

// Peak returns the high-water mark of metered live bytes.
func (p *Pool) Peak() int64 { return p.peak.Load() }

// BytesWritten returns the spill bytes written to page files so far.
func (p *Pool) BytesWritten() int64 { return p.written.Load() }

// BytesRead returns the spill bytes paged back in from disk so far.
func (p *Pool) BytesRead() int64 { return p.read.Load() }

// Close removes the pool's page directory and every page file in it. It is
// idempotent and safe while write-behind tasks are still in flight (their
// unlinked files vanish when the descriptors close), so callers install it
// with defer and get cleanup on success, error and panic paths alike.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() { p.closeErr = os.RemoveAll(p.dir) })
	return p.closeErr
}

// File is one spill page file: an append-only byte sequence flushed to
// disk page by page on the work pool, then read back sequentially. The
// appending and reading side must be one goroutine (the PE); only the
// page writes themselves run concurrently.
type File struct {
	p    *Pool
	f    *os.File
	werr error // first write-behind error (read/written by the PE via errMu)

	pending []byte        // bytes not yet handed to a page write
	woff    int64         // file offset where pending starts
	stable  atomic.Int64  // contiguously durable prefix of the file
	last    chan struct{} // done channel of the most recent page write
	group   *par.Group
	errMu   sync.Mutex

	finished bool
	busy     int64 // summed write-behind busy ns, reported by Finish
}

// CreateFile creates a new page file in the pool's directory.
func (p *Pool) CreateFile(label string) (*File, error) {
	name := filepath.Join(p.dir, fmt.Sprintf("%s-%d.page", label, p.nfiles.Add(1)))
	create := p.cfg.Create
	if create == nil {
		create = os.Create
	}
	f, err := create(name)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &File{p: p, f: f, group: p.workers.Group()}, nil
}

func (f *File) setErr(err error) {
	f.errMu.Lock()
	if f.werr == nil {
		f.werr = err
	}
	f.errMu.Unlock()
}

func (f *File) loadErr() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.werr
}

// Append buffers b for the write-behind chain. The bytes are copied; the
// pool meters the copy until its page write completes.
func (f *File) Append(b []byte) {
	if len(b) == 0 {
		return
	}
	f.p.Reserve(int64(len(b)))
	f.pending = append(f.pending, b...)
	if len(f.pending) >= f.p.cfg.PageSize {
		f.flush()
	}
}

// flush hands the pending buffer to a write-behind task. The tasks form an
// ordered chain (each waits for its predecessor), so stable advances
// monotonically and a reader below stable never races a write.
func (f *File) flush() {
	buf := f.pending
	f.pending = nil
	off := f.woff
	f.woff += int64(len(buf))
	prev := f.last
	done := make(chan struct{})
	f.last = done
	f.group.Go(func() {
		defer close(done)
		if prev != nil {
			<-prev
		}
		if f.loadErr() == nil {
			if _, err := f.f.WriteAt(buf, off); err != nil {
				f.setErr(err)
			}
		}
		written := f.p.written.Add(int64(len(buf)))
		f.stable.Store(off + int64(len(buf)))
		f.p.Release(int64(len(buf)))
		if f.p.tr != nil {
			f.p.tr.Instant(trace.TrackSpill, "spill-flush", int64(len(buf)), 0)
			f.p.tr.Counter("spill_written", written)
			f.p.tr.Counter("spill_live", f.p.live.Load())
		}
		if trace.LiveOn() {
			trace.Live.SpillWritten.Add(int64(len(buf)))
		}
	})
}

// Size returns the total bytes appended so far.
func (f *File) Size() int64 { return f.woff + int64(len(f.pending)) }

// Finish flushes the tail page, waits for every outstanding write and
// returns the summed busy nanoseconds of the write-behind tasks — the
// spill-CPU share the caller bills to the measured channel. The file stays
// readable; the pool's Close removes it.
func (f *File) Finish() (busyNS int64, err error) {
	if !f.finished {
		if len(f.pending) > 0 {
			f.flush()
		}
		f.busy = f.group.Wait()
		f.finished = true
	}
	return f.busy, f.loadErr()
}

// ReadSpan returns up to max bytes of the file starting at off, paging
// durable bytes back in from disk and serving the still-buffered tail
// directly. It blocks only when off lands in a page write still in flight.
// The returned slice is immutable but may alias the pending buffer; it
// stays valid because neither pages nor the pending tail are ever
// overwritten. n == 0 with a nil error means off is at the current end.
func (f *File) ReadSpan(off int64, max int) ([]byte, error) {
	if err := f.loadErr(); err != nil {
		return nil, err
	}
	if off >= f.Size() {
		return nil, nil
	}
	if off >= f.woff {
		// The tail still lives in the pending buffer of this goroutine.
		tail := f.pending[off-f.woff:]
		if len(tail) > max {
			tail = tail[:max]
		}
		return tail, nil
	}
	stable := f.stable.Load()
	if off >= stable {
		// In a page write still in flight: wait for the chain to drain.
		<-f.last
		if err := f.loadErr(); err != nil {
			return nil, err
		}
		stable = f.stable.Load()
	}
	// Only the contiguously durable prefix may be read from disk; a span
	// reaching into a page write still in flight is clamped to it.
	n := stable - off
	if n > int64(max) {
		n = int64(max)
	}
	buf := make([]byte, n)
	m, err := f.f.ReadAt(buf, off)
	if err != nil {
		return nil, fmt.Errorf("spill: page read: %w", err)
	}
	read := f.p.read.Add(int64(m))
	if f.p.tr != nil {
		f.p.tr.Instant(trace.TrackSpill, "spill-pagein", int64(m), 0)
		f.p.tr.Counter("spill_read", read)
	}
	if trace.LiveOn() {
		trace.Live.SpillRead.Add(int64(m))
	}
	return buf[:m], nil
}

// Close closes the file descriptor (the pool's Close removes the file
// itself). Outstanding writes must have been waited for via Finish.
func (f *File) Close() error { return f.f.Close() }
