package spill

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dss/internal/par"
)

func newTestPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	p, err := NewPool(cfg, par.New(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPoolAccounting pins the Reserve/Release/Peak/Over arithmetic.
func TestPoolAccounting(t *testing.T) {
	p := newTestPool(t, Config{Budget: 100})
	if p.Over() || p.Live() != 0 || p.Peak() != 0 {
		t.Fatalf("fresh pool not zeroed: live=%d peak=%d over=%v", p.Live(), p.Peak(), p.Over())
	}
	p.Reserve(60)
	if p.Over() {
		t.Fatal("over budget at 60/100")
	}
	p.Reserve(50)
	if !p.Over() {
		t.Fatal("not over budget at 110/100")
	}
	if p.Live() != 110 || p.Peak() != 110 {
		t.Fatalf("live=%d peak=%d, want 110/110", p.Live(), p.Peak())
	}
	p.Release(80)
	if p.Over() {
		t.Fatal("over budget at 30/100")
	}
	if p.Live() != 30 || p.Peak() != 110 {
		t.Fatalf("live=%d peak=%d, want 30/110 (peak is a high-water mark)", p.Live(), p.Peak())
	}
	// Budget 0 = unlimited: meters but never reports over.
	u := newTestPool(t, Config{})
	u.Reserve(1 << 40)
	if u.Over() {
		t.Fatal("unlimited pool reported over")
	}
	if u.Peak() != 1<<40 {
		t.Fatalf("unlimited pool peak=%d", u.Peak())
	}
}

// TestDefaultPageSize pins the budget-derived page size: a fixed fraction
// of the budget, floored and capped, so pending pages can always flush well
// before the budget is gone.
func TestDefaultPageSize(t *testing.T) {
	cases := []struct {
		budget int64
		want   int
	}{
		{0, DefaultPageSize},        // unlimited: full page
		{1 << 30, DefaultPageSize},  // huge budget: capped at default
		{16 << 20, DefaultPageSize}, // budget/16 above the cap
		{2 << 20, 128 << 10},        // budget/16
		{256 << 10, 16 << 10},       // budget/16
		{64 << 10, MinPageSize},     // floored
		{1, MinPageSize},            // floored
		{16 * DefaultPageSize, DefaultPageSize},
	}
	for _, c := range cases {
		if got := defaultPageSizeFor(c.budget); got != c.want {
			t.Errorf("defaultPageSizeFor(%d) = %d, want %d", c.budget, got, c.want)
		}
		p := newTestPool(t, Config{Budget: c.budget})
		if p.PageSize() != c.want {
			t.Errorf("NewPool(budget=%d).PageSize() = %d, want %d", c.budget, p.PageSize(), c.want)
		}
	}
	// An explicit page size always wins.
	p := newTestPool(t, Config{Budget: 64 << 10, PageSize: 512})
	if p.PageSize() != 512 {
		t.Fatalf("explicit page size not honored: %d", p.PageSize())
	}
}

// TestFileRoundTrip appends random spans, reads the whole file back through
// ReadSpan at a different granularity — crossing durable pages, in-flight
// writes and the pending tail — and checks bytes and gauges.
func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := newTestPool(t, Config{Budget: 1 << 20, PageSize: 256})
	f, err := p.CreateFile("t")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var want []byte
	for i := 0; i < 200; i++ {
		span := make([]byte, 1+rng.Intn(100))
		for k := range span {
			span[k] = byte(rng.Intn(256))
		}
		f.Append(span)
		want = append(want, span...)
	}
	if f.Size() != int64(len(want)) {
		t.Fatalf("Size=%d, want %d", f.Size(), len(want))
	}

	// Interleave reads with more appends: the read cursor chases a file
	// that is still growing, like the merge chasing the exchange.
	var got []byte
	for len(got) < len(want) {
		b, err := f.ReadSpan(int64(len(got)), 1+rng.Intn(300))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatalf("ReadSpan returned empty at %d < size %d", len(got), f.Size())
		}
		got = append(got, b...)
		if rng.Intn(3) == 0 {
			span := make([]byte, 1+rng.Intn(100))
			for k := range span {
				span[k] = byte(rng.Intn(256))
			}
			f.Append(span)
			want = append(want, span...)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read-back bytes differ from appended bytes")
	}
	if b, err := f.ReadSpan(f.Size(), 10); err != nil || b != nil {
		t.Fatalf("ReadSpan at EOF = (%v, %v), want (nil, nil)", b, err)
	}

	if _, err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Finish(); err != nil { // idempotent
		t.Fatal(err)
	}
	// After Finish everything is durable: a full re-read hits the disk.
	readBefore := p.BytesRead()
	var again []byte
	for int64(len(again)) < f.Size() {
		b, err := f.ReadSpan(int64(len(again)), 512)
		if err != nil {
			t.Fatal(err)
		}
		again = append(again, b...)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("post-Finish read-back differs")
	}
	if p.BytesRead() <= readBefore {
		t.Fatal("post-Finish reads not metered as BytesRead")
	}
	if p.BytesWritten() != f.Size() {
		t.Fatalf("BytesWritten=%d, want full file %d", p.BytesWritten(), f.Size())
	}
	// Every pending byte was released once its page write completed.
	if p.Live() != 0 {
		t.Fatalf("live=%d after Finish, want 0", p.Live())
	}
}

// TestFilePendingTailAlias checks the documented aliasing contract: a span
// served from the pending tail stays valid even after further appends.
func TestFilePendingTailAlias(t *testing.T) {
	p := newTestPool(t, Config{PageSize: 1 << 20}) // page never flushes
	f, err := p.CreateFile("t")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Append([]byte("hello "))
	b, err := f.ReadSpan(0, 6)
	if err != nil || string(b) != "hello " {
		t.Fatalf("ReadSpan = (%q, %v)", b, err)
	}
	f.Append(bytes.Repeat([]byte("x"), 4096)) // may reallocate pending
	if string(b) != "hello " {
		t.Fatalf("earlier span invalidated by append: %q", b)
	}
	if _, err := f.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolClose checks the lifecycle: page files live only in the pool's
// private directory and Close removes it, idempotently.
func TestPoolClose(t *testing.T) {
	parent := t.TempDir()
	p, err := NewPool(Config{Dir: parent}, par.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(p.Dir()) != parent {
		t.Fatalf("pool dir %q not under %q", p.Dir(), parent)
	}
	f, err := p.CreateFile("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Append([]byte("data"))
	if _, err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := os.Stat(p.Dir()); !os.IsNotExist(err) {
		t.Fatalf("pool dir still present after Close: %v", err)
	}
}

// TestFileCreateFailure checks the fault-injection seam: CreateFile
// surfaces the injected error and the pool still closes cleanly.
func TestFileCreateFailure(t *testing.T) {
	injected := errors.New("injected create failure")
	p := newTestPool(t, Config{Create: func(string) (*os.File, error) { return nil, injected }})
	if _, err := p.CreateFile("a"); !errors.Is(err, injected) {
		t.Fatalf("CreateFile error = %v, want injected", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileWriteFailure checks that a failing page write surfaces through
// Finish and ReadSpan instead of being swallowed by the write-behind chain.
func TestFileWriteFailure(t *testing.T) {
	dir := t.TempDir()
	p := newTestPool(t, Config{Dir: dir, PageSize: 64, Create: func(name string) (*os.File, error) {
		f, err := os.Create(name)
		if err != nil {
			return nil, err
		}
		f.Close() // writes to the closed descriptor will fail
		return f, nil
	}})
	f, err := p.CreateFile("bad")
	if err != nil {
		t.Fatal(err)
	}
	f.Append(bytes.Repeat([]byte("y"), 256)) // crosses the page size: flush fails
	if _, err := f.Finish(); err == nil {
		t.Fatal("Finish did not surface the write error")
	}
	if _, err := f.ReadSpan(0, 10); err == nil {
		t.Fatal("ReadSpan did not surface the write error")
	}
}

// TestRunFileRoundTrip round-trips items through RunWriter and RunScanner
// for every flag combination, with string shapes that exercise the front
// coding (shared prefixes, empty strings, long items crossing pages).
func TestRunFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	type item struct {
		s   string
		lcp int32
		sat uint64
	}
	for _, opts := range []RunWriterOpts{{}, {LCP: true}, {Sats: true}, {LCP: true, Sats: true}} {
		// Sorted strings with real LCPs, so the front coding is exercised.
		n := 500
		ss := make([]string, n)
		for i := range ss {
			ss[i] = fmt.Sprintf("prefix-%04d-%s", i/7, string(rune('a'+rng.Intn(26))))
		}
		items := make([]item, n)
		for i := range items {
			var lcp int32
			if i > 0 {
				for int(lcp) < len(ss[i]) && int(lcp) < len(ss[i-1]) && ss[i][lcp] == ss[i-1][lcp] {
					lcp++
				}
			}
			items[i] = item{s: ss[i], lcp: lcp, sat: rng.Uint64()}
		}

		var buf bytes.Buffer
		w, err := NewRunWriter(&buf, opts, nil, 128)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			lcp := it.lcp
			if !opts.LCP {
				lcp = 0
			}
			if err := w.Add([]byte(it.s), lcp, it.sat); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if w.Count() != int64(n) {
			t.Fatalf("Count=%d, want %d", w.Count(), n)
		}

		sc, err := NewRunScanner(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if sc.HasLCP() != opts.LCP || sc.HasSats() != opts.Sats {
			t.Fatalf("flags mismatch: HasLCP=%v HasSats=%v want %+v", sc.HasLCP(), sc.HasSats(), opts)
		}
		for i, it := range items {
			s, lcp, sat, ok, err := sc.Next()
			if err != nil || !ok {
				t.Fatalf("opts %+v item %d: Next = (%v, %v)", opts, i, ok, err)
			}
			if string(s) != it.s {
				t.Fatalf("opts %+v item %d: got %q want %q", opts, i, s, it.s)
			}
			if opts.LCP && lcp != it.lcp {
				t.Fatalf("opts %+v item %d: lcp %d want %d", opts, i, lcp, it.lcp)
			}
			if opts.Sats && sat != it.sat {
				t.Fatalf("opts %+v item %d: sat %d want %d", opts, i, sat, it.sat)
			}
		}
		if _, _, _, ok, err := sc.Next(); ok || err != nil {
			t.Fatalf("opts %+v: run did not end cleanly: (%v, %v)", opts, ok, err)
		}
	}
}

// TestRunScannerTruncated checks that a run file cut off mid-stream
// surfaces an error rather than a clean end.
func TestRunScannerTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewRunWriter(&buf, RunWriterOpts{LCP: true}, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Add([]byte(fmt.Sprintf("string-%03d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	sc, err := NewRunScanner(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, _, ok, err := sc.Next()
		if err != nil {
			return // truncation surfaced
		}
		if !ok {
			t.Fatal("truncated run ended cleanly")
		}
	}
}
