// Package strutil provides the string primitives shared by all sorters:
// lexicographic comparison with LCP output, LCP array computation and
// validation, distinguishing prefix lengths (the D and DIST(s) quantities
// of Section II of the paper), and order-independent multiset hashing used
// by the verifiers.
//
// Strings are byte slices without 0-termination; lengths are explicit
// (footnote 1 of the paper notes the algorithms adapt directly to this
// representation). The end-of-string behaves like a character smaller than
// every alphabet character: a proper prefix sorts before its extensions,
// which is exactly what bytes.Compare provides.
package strutil

import (
	"bytes"
	"encoding/binary"
	"math/bits"
	"sort"
)

// Compare returns -1, 0, or +1 for a < b, a == b, a > b lexicographically.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// mismatchFrom returns the first index ≥ from at which a and b differ,
// scanning eight bytes per step; the result is capped at min(len(a),len(b)).
// The XOR of two little-endian 64-bit loads has its lowest set bit inside
// the first differing byte, so TrailingZeros64/8 converts the word mismatch
// into a byte index without a scalar re-scan.
func mismatchFrom(a, b []byte, from int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := from
	for ; i+8 <= n; i += 8 {
		x := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
		if x != 0 {
			return i + bits.TrailingZeros64(x)>>3
		}
	}
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// LCP returns the length of the longest common prefix of a and b.
func LCP(a, b []byte) int {
	return mismatchFrom(a, b, 0)
}

// CompareLCP compares a and b, skipping the first `from` characters, which
// the caller asserts are equal. It returns the comparison result and the
// full LCP(a, b). The number of characters inspected is LCP(a,b)-from+1,
// which is what makes LCP-aware merging inspect every character only once.
func CompareLCP(a, b []byte, from int) (cmp, lcp int) {
	i := mismatchFrom(a, b, from)
	switch {
	case i < len(a) && i < len(b):
		if a[i] < b[i] {
			return -1, i
		}
		return 1, i
	case i < len(b): // a is a proper prefix of b
		return -1, i
	case i < len(a): // b is a proper prefix of a
		return 1, i
	default:
		return 0, i
	}
}

// ComputeLCPArray returns the LCP array of a sorted string array:
// out[0] = 0 and out[i] = LCP(ss[i-1], ss[i]).
func ComputeLCPArray(ss [][]byte) []int32 {
	return ComputeLCPArrayInto(ss, nil)
}

// ComputeLCPArrayInto is ComputeLCPArray writing into a caller-provided
// slice when it has sufficient capacity, so repeated computations in one
// run reuse the same allocation.
func ComputeLCPArrayInto(ss [][]byte, out []int32) []int32 {
	if cap(out) < len(ss) {
		out = make([]int32, len(ss))
	}
	out = out[:len(ss)]
	if len(out) > 0 {
		out[0] = 0
	}
	for i := 1; i < len(ss); i++ {
		out[i] = int32(LCP(ss[i-1], ss[i]))
	}
	return out
}

// ValidateSortedLCP checks sortedness and LCP correctness in one pass:
// it returns the index of the first violation (order or LCP value), or -1.
// One CompareLCP per adjacent pair replaces the two scans of
// IsSorted + ValidateLCPArray, inspecting each character once.
func ValidateSortedLCP(ss [][]byte, lcps []int32) int {
	if len(lcps) != len(ss) {
		return 0
	}
	if len(lcps) > 0 && lcps[0] != 0 {
		return 0
	}
	for i := 1; i < len(ss); i++ {
		cmp, h := CompareLCP(ss[i-1], ss[i], 0)
		if cmp > 0 || int(lcps[i]) != h {
			return i
		}
	}
	return -1
}

// IsSorted reports whether ss is lexicographically non-decreasing.
func IsSorted(ss [][]byte) bool {
	for i := 1; i < len(ss); i++ {
		if bytes.Compare(ss[i-1], ss[i]) > 0 {
			return false
		}
	}
	return true
}

// ValidateLCPArray checks that lcps is exactly the LCP array of the sorted
// array ss. It returns the index of the first violation, or -1.
func ValidateLCPArray(ss [][]byte, lcps []int32) int {
	if len(lcps) != len(ss) {
		return 0
	}
	for i := 1; i < len(ss); i++ {
		if int(lcps[i]) != LCP(ss[i-1], ss[i]) {
			return i
		}
	}
	return -1
}

// DistinguishingPrefixes returns DIST(s) for every string of the set:
// the number of characters that must be inspected to distinguish s from all
// other strings, DIST(s) = max_{t≠s} LCP(s,t)+1, capped at |s| because a
// string's end acts as a terminator that always distinguishes it (a proper
// prefix needs all its |s| characters plus the implicit terminator, and no
// more characters exist to inspect).
//
// The input need not be sorted; the function sorts a copy internally.
func DistinguishingPrefixes(ss [][]byte) []int32 {
	n := len(ss)
	out := make([]int32, n)
	if n <= 1 {
		for i, s := range ss {
			if len(s) > 0 {
				out[i] = 1
			}
		}
		if n == 1 && len(ss[0]) == 0 {
			out[0] = 0
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(ss[idx[a]], ss[idx[b]]) < 0
	})
	// In sorted order, DIST is determined by the neighbors:
	// max(LCP(prev,s), LCP(s,next)) + 1, capped at |s|.
	prevLCP := make([]int, n) // LCP with previous sorted string
	for k := 1; k < n; k++ {
		prevLCP[k] = LCP(ss[idx[k-1]], ss[idx[k]])
	}
	for k := 0; k < n; k++ {
		h := 0
		if k > 0 && prevLCP[k] > h {
			h = prevLCP[k]
		}
		if k+1 < n && prevLCP[k+1] > h {
			h = prevLCP[k+1]
		}
		d := h + 1
		if l := len(ss[idx[k]]); d > l {
			d = l
		}
		out[idx[k]] = int32(d)
	}
	return out
}

// TotalD returns D = Σ DIST(s), the total distinguishing prefix size, the
// lower bound on characters any string sorter must inspect (Section II).
func TotalD(ss [][]byte) int64 {
	var d int64
	for _, v := range DistinguishingPrefixes(ss) {
		d += int64(v)
	}
	return d
}

// TotalLen returns N = Σ |s|, the total number of characters.
func TotalLen(ss [][]byte) int64 {
	var n int64
	for _, s := range ss {
		n += int64(len(s))
	}
	return n
}

// MaxLen returns ℓ̂, the length of the longest string (0 for empty input).
func MaxLen(ss [][]byte) int {
	m := 0
	for _, s := range ss {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// fnv1a64 hashes one string (FNV-1a, 64 bit).
func fnv1a64(s []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range s {
		h ^= uint64(c)
		h *= prime
	}
	// Length tag so that "" and missing strings differ.
	h ^= uint64(len(s)) + 0x9e3779b97f4a7c15
	h *= prime
	return h
}

// MultisetHash returns an order-independent hash of a string multiset: the
// wrap-around sum of per-string hashes. Two string arrays have the same
// MultisetHash iff (up to hash collisions) they are permutations of each
// other, which is how the verifiers check that sorting permutes its input.
func MultisetHash(ss [][]byte) uint64 {
	var h uint64
	for _, s := range ss {
		h = MultisetAdd(h, s)
	}
	return h
}

// MultisetAdd folds one string into a multiset accumulator — the
// streaming counterpart of MultisetHash for callers (the out-of-core
// verifier) that never materialize the whole array.
func MultisetAdd(h uint64, s []byte) uint64 {
	return h + fnv1a64(s)
}

// Clone deep-copies a string array (strings and the spine).
func Clone(ss [][]byte) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = append([]byte(nil), s...)
	}
	return out
}

// Prefix returns s truncated to at most n characters (no copy).
func Prefix(s []byte, n int) []byte {
	if n >= len(s) {
		return s
	}
	return s[:n]
}
