package strutil

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLCP(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 0},
		{"abc", "abd", 2},
		{"abc", "abc", 3},
		{"abc", "abcdef", 3},
		{"xyz", "abc", 0},
	}
	for _, c := range cases {
		if got := LCP([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("LCP(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareLCPAgainstBytesCompare(t *testing.T) {
	f := func(a, b []byte) bool {
		cmp, lcp := CompareLCP(a, b, 0)
		if sign(cmp) != sign(bytes.Compare(a, b)) {
			return false
		}
		return lcp == LCP(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareLCPFromOffset(t *testing.T) {
	a := []byte("prefix_aaa")
	b := []byte("prefix_aab")
	cmp, lcp := CompareLCP(a, b, 7)
	if cmp != -1 || lcp != 9 {
		t.Fatalf("got (%d,%d), want (-1,9)", cmp, lcp)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestComputeAndValidateLCPArray(t *testing.T) {
	ss := [][]byte{[]byte(""), []byte("a"), []byte("ab"), []byte("abc"), []byte("b")}
	lcps := ComputeLCPArray(ss)
	want := []int32{0, 0, 1, 2, 0}
	for i := range want {
		if lcps[i] != want[i] {
			t.Fatalf("lcp[%d] = %d, want %d", i, lcps[i], want[i])
		}
	}
	if ValidateLCPArray(ss, lcps) != -1 {
		t.Fatal("valid array rejected")
	}
	lcps[2] = 0
	if ValidateLCPArray(ss, lcps) != 2 {
		t.Fatal("invalid array accepted")
	}
}

func TestDistinguishingPrefixes(t *testing.T) {
	// From the paper: DIST(s) = max_{t≠s} LCP(s,t) + 1, capped at |s|.
	ss := [][]byte{
		[]byte("algae"), // LCP 3 with algo → DIST 4
		[]byte("algo"),  // LCP 3 with algae → DIST 4
		[]byte("alpha"), // LCP 3 with alps → DIST 4
		[]byte("alps"),  // LCP 3 with alpha → DIST 4
		[]byte("snow"),  // LCP 0 with everything → DIST 1
	}
	got := DistinguishingPrefixes(ss)
	want := []int32{4, 4, 4, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DIST(%q) = %d, want %d", ss[i], got[i], want[i])
		}
	}
}

func TestDistinguishingPrefixesDuplicatesAndPrefixes(t *testing.T) {
	ss := [][]byte{
		[]byte("dup"),   // equal to next: LCP 3, DIST capped at 3
		[]byte("dup"),   //
		[]byte("du"),    // proper prefix of dup: LCP 2, DIST capped at 2
		[]byte("other"), // LCP 0 → DIST 1
		[]byte(""),      // empty: DIST 0
	}
	got := DistinguishingPrefixes(ss)
	want := []int32{3, 3, 2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DIST(%q) = %d, want %d (all %v)", ss[i], got[i], want[i], got)
		}
	}
}

func TestDistinguishingPrefixesSingleton(t *testing.T) {
	got := DistinguishingPrefixes([][]byte{[]byte("solo")})
	if got[0] != 1 {
		t.Fatalf("singleton DIST = %d, want 1", got[0])
	}
	got = DistinguishingPrefixes([][]byte{[]byte("")})
	if got[0] != 0 {
		t.Fatalf("empty singleton DIST = %d, want 0", got[0])
	}
}

func TestDistinguishingPrefixBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		ss := make([][]byte, n)
		for i := range ss {
			l := rng.Intn(8)
			s := make([]byte, l)
			for j := range s {
				s[j] = byte('a' + rng.Intn(2))
			}
			ss[i] = s
		}
		got := DistinguishingPrefixes(ss)
		for i, s := range ss {
			maxLCP := 0
			for j, u := range ss {
				if i == j {
					continue
				}
				if h := LCP(s, u); h > maxLCP {
					maxLCP = h
				}
			}
			want := maxLCP + 1
			if n == 1 {
				want = 1
			}
			if want > len(s) {
				want = len(s)
			}
			if int(got[i]) != want {
				t.Fatalf("trial %d: DIST(%q) = %d, want %d", trial, s, got[i], want)
			}
		}
	}
}

func TestTotalDAtMostN(t *testing.T) {
	f := func(raw [][]byte) bool {
		return TotalD(raw) <= TotalLen(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultisetHashPermutationInvariant(t *testing.T) {
	f := func(raw [][]byte, seed int64) bool {
		a := Clone(raw)
		b := Clone(raw)
		rand.New(rand.NewSource(seed)).Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		return MultisetHash(a) == MultisetHash(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultisetHashDetectsChanges(t *testing.T) {
	a := [][]byte{[]byte("x"), []byte("y")}
	b := [][]byte{[]byte("x"), []byte("z")}
	if MultisetHash(a) == MultisetHash(b) {
		t.Fatal("different multisets hash equal")
	}
	c := [][]byte{[]byte("xy")}
	if MultisetHash(a) == MultisetHash(c) {
		t.Fatal("concatenation collision")
	}
	// "" vs missing string must differ.
	d := [][]byte{[]byte("x"), []byte("y"), []byte("")}
	if MultisetHash(a) == MultisetHash(d) {
		t.Fatal("empty string invisible to hash")
	}
}

func TestIsSortedAndMaxLen(t *testing.T) {
	ss := [][]byte{[]byte("a"), []byte("ab"), []byte("b")}
	if !IsSorted(ss) {
		t.Fatal("sorted input rejected")
	}
	ss[2] = []byte("aa")
	if IsSorted(ss) {
		t.Fatal("unsorted input accepted")
	}
	if MaxLen(ss) != 2 {
		t.Fatalf("MaxLen = %d", MaxLen(ss))
	}
	if MaxLen(nil) != 0 {
		t.Fatal("MaxLen(nil) != 0")
	}
}

func TestPrefix(t *testing.T) {
	s := []byte("hello")
	if got := Prefix(s, 3); string(got) != "hel" {
		t.Fatalf("Prefix = %q", got)
	}
	if got := Prefix(s, 99); string(got) != "hello" {
		t.Fatalf("Prefix over length = %q", got)
	}
}

func TestDistinguishingPrefixesMatchSortedNeighborComputation(t *testing.T) {
	// DIST must be computable from sorted neighbors only; this guards the
	// implementation shortcut against the O(n²) definition.
	rng := rand.New(rand.NewSource(12))
	ss := make([][]byte, 500)
	for i := range ss {
		l := 1 + rng.Intn(10)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('0' + rng.Intn(3))
		}
		ss[i] = s
	}
	got := DistinguishingPrefixes(ss)
	sorted := Clone(ss)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	var d int64
	for _, v := range got {
		d += int64(v)
	}
	if d != TotalD(ss) {
		t.Fatal("TotalD inconsistent with DistinguishingPrefixes")
	}
}
