package strutil

import (
	"bytes"
	"math/rand"
	"testing"
)

// lcpScalar is the pre-word-wise reference implementation: one byte at a
// time. The word-wise LCP/CompareLCP must agree with it on every input.
func lcpScalar(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func compareLCPScalar(a, b []byte, from int) (cmp, lcp int) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := from
	for i < n && a[i] == b[i] {
		i++
	}
	switch {
	case i < len(a) && i < len(b):
		if a[i] < b[i] {
			return -1, i
		}
		return 1, i
	case i < len(b):
		return -1, i
	case i < len(a):
		return 1, i
	default:
		return 0, i
	}
}

// diffCases enumerates the boundary shapes the word-wise code must handle:
// empty strings, proper prefixes, tails shorter than a word, mismatches on
// every byte lane of a word, and mismatches straddling word boundaries.
func diffCases() [][2][]byte {
	var cases [][2][]byte
	add := func(a, b []byte) { cases = append(cases, [2][]byte{a, b}) }

	add(nil, nil)
	add([]byte{}, []byte{})
	add(nil, []byte("x"))
	add([]byte("x"), nil)
	add([]byte("abc"), []byte("abc"))
	add([]byte("abc"), []byte("abcd"))   // proper prefix
	add([]byte("abcd"), []byte("abc"))   // proper prefix, reversed
	add([]byte("abc"), []byte("abd"))    // mismatch in sub-word tail
	add(bytes.Repeat([]byte("a"), 100), bytes.Repeat([]byte("a"), 100))
	add(bytes.Repeat([]byte("a"), 100), bytes.Repeat([]byte("a"), 101))

	// Mismatch at every offset 0..40: covers each lane of the first words
	// and the scalar tail after the last full word.
	base := []byte("0123456789abcdefghijklmnopqrstuvwxyzABCDE")
	for k := 0; k <= 40; k++ {
		mod := append([]byte(nil), base...)
		mod[k] ^= 0x80
		add(base, mod)
		add(mod, base)
		// Also with unequal lengths beyond the mismatch.
		add(base[:k+1], mod)
		add(mod[:k+1], base)
	}
	// Equal prefixes of every length 0..24 with nothing after (prefix
	// pairs across word boundaries).
	for k := 0; k <= 24; k++ {
		add(base[:k], base)
		add(base, base[:k])
	}
	return cases
}

func TestLCPDifferential(t *testing.T) {
	for _, c := range diffCases() {
		a, b := c[0], c[1]
		if got, want := LCP(a, b), lcpScalar(a, b); got != want {
			t.Fatalf("LCP(%q, %q) = %d, scalar %d", a, b, got, want)
		}
	}
}

func TestCompareLCPDifferential(t *testing.T) {
	for _, c := range diffCases() {
		a, b := c[0], c[1]
		maxFrom := lcpScalar(a, b)
		for from := 0; from <= maxFrom; from++ {
			gc, gl := CompareLCP(a, b, from)
			wc, wl := compareLCPScalar(a, b, from)
			if gc != wc || gl != wl {
				t.Fatalf("CompareLCP(%q, %q, %d) = (%d, %d), scalar (%d, %d)",
					a, b, from, gc, gl, wc, wl)
			}
		}
	}
}

func TestCompareLCPDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("ab") // tiny alphabet forces long shared prefixes
	for iter := 0; iter < 5000; iter++ {
		a := make([]byte, rng.Intn(70))
		b := make([]byte, rng.Intn(70))
		for i := range a {
			a[i] = alphabet[rng.Intn(len(alphabet))]
		}
		copy(b, a[:min(len(a), len(b))]) // bias toward common prefixes
		for i := range b {
			if rng.Intn(20) == 0 {
				b[i] = alphabet[rng.Intn(len(alphabet))]
			}
		}
		if got, want := LCP(a, b), lcpScalar(a, b); got != want {
			t.Fatalf("LCP(%q, %q) = %d, scalar %d", a, b, got, want)
		}
		from := 0
		if h := lcpScalar(a, b); h > 0 {
			from = rng.Intn(h + 1)
		}
		gc, gl := CompareLCP(a, b, from)
		wc, wl := compareLCPScalar(a, b, from)
		if gc != wc || gl != wl {
			t.Fatalf("CompareLCP(%q, %q, %d) = (%d, %d), scalar (%d, %d)",
				a, b, from, gc, gl, wc, wl)
		}
	}
}

func TestValidateSortedLCP(t *testing.T) {
	ss := [][]byte{[]byte(""), []byte("a"), []byte("ab"), []byte("abc"), []byte("b")}
	lcps := ComputeLCPArray(ss)
	if i := ValidateSortedLCP(ss, lcps); i != -1 {
		t.Fatalf("valid input rejected at %d", i)
	}
	bad := append([]int32(nil), lcps...)
	bad[2] = 9
	if i := ValidateSortedLCP(ss, bad); i != 2 {
		t.Fatalf("LCP violation index = %d, want 2", i)
	}
	unsorted := [][]byte{[]byte("b"), []byte("a")}
	if i := ValidateSortedLCP(unsorted, ComputeLCPArrayInto(unsorted, nil)); i != 1 {
		t.Fatalf("order violation index = %d, want 1", i)
	}
}

func TestComputeLCPArrayInto(t *testing.T) {
	ss := [][]byte{[]byte("aa"), []byte("aab"), []byte("ab")}
	scratch := make([]int32, 0, 8)
	out := ComputeLCPArrayInto(ss, scratch)
	if &out[0] != &scratch[:1][0] {
		t.Fatal("scratch with sufficient capacity was not reused")
	}
	want := []int32{0, 2, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

// FuzzLCP cross-checks the word-wise LCP and CompareLCP against the scalar
// references on fuzzer-generated inputs, including a shared-prefix variant
// so the mismatch regularly lands beyond the first word.
func FuzzLCP(f *testing.F) {
	f.Add([]byte(""), []byte(""), uint8(0))
	f.Add([]byte("abc"), []byte("abd"), uint8(0))
	f.Add([]byte("aaaaaaaaaaaaaaaaa"), []byte("aaaaaaaaaaaaaaaab"), uint8(3))
	f.Add([]byte("prefix"), []byte("prefixlonger"), uint8(1))
	f.Fuzz(func(t *testing.T, a, b []byte, pad uint8) {
		// Derived pair with a long common prefix crossing word boundaries.
		common := bytes.Repeat([]byte{0x5a}, int(pad))
		a2 := append(append([]byte(nil), common...), a...)
		b2 := append(append([]byte(nil), common...), b...)
		for _, pair := range [][2][]byte{{a, b}, {a2, b2}} {
			x, y := pair[0], pair[1]
			want := lcpScalar(x, y)
			if got := LCP(x, y); got != want {
				t.Fatalf("LCP(%q, %q) = %d, scalar %d", x, y, got, want)
			}
			for _, from := range []int{0, want / 2, want} {
				gc, gl := CompareLCP(x, y, from)
				wc, wl := compareLCPScalar(x, y, from)
				if gc != wc || gl != wl {
					t.Fatalf("CompareLCP(%q, %q, %d) = (%d,%d), scalar (%d,%d)",
						x, y, from, gc, gl, wc, wl)
				}
			}
		}
	})
}
