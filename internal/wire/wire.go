// Package wire implements the binary message formats of the distributed
// string sorters: variable-length integers, plain string-set serialization,
// and the LCP-compressed exchange format of Step 3 of Algorithm MS
// (Section V-B of the paper). LCP compression transmits, for each string
// after the first of a run, only the length of the common prefix with the
// previous string and the remaining characters.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Errors returned by the decoders.
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrCorrupt   = errors.New("wire: corrupt message")
)

// Buffer is an append-only encoder for wire messages.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{b: make([]byte, 0, capacity)}
}

// Bytes returns the encoded message. The returned slice aliases the
// buffer's storage.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the current encoded length in bytes.
func (w *Buffer) Len() int { return len(w.b) }

// Uvarint appends an unsigned varint.
func (w *Buffer) Uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

// Uint64 appends a fixed-width little-endian 64-bit value.
func (w *Buffer) Uint64(v uint64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, v)
}

// Raw appends raw bytes without a length prefix.
func (w *Buffer) Raw(p []byte) {
	w.b = append(w.b, p...)
}

// Bytes16 appends a length-prefixed byte string.
func (w *Buffer) BytesPrefixed(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.Raw(p)
}

// Reader decodes wire messages produced by Buffer.
type Reader struct {
	b   []byte
	pos int
}

// NewReader returns a Reader over the given message.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining reports how many bytes are left to decode.
func (r *Reader) Remaining() int { return len(r.b) - r.pos }

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.pos += n
	return v, nil
}

// Uint64 decodes a fixed-width little-endian 64-bit value.
func (r *Reader) Uint64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

// Raw returns the next n bytes without copying.
func (r *Reader) Raw(n int) ([]byte, error) {
	if n < 0 || r.Remaining() < n {
		return nil, ErrTruncated
	}
	p := r.b[r.pos : r.pos+n]
	r.pos += n
	return p, nil
}

// BytesPrefixed decodes a length-prefixed byte string without copying.
func (r *Reader) BytesPrefixed() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, ErrTruncated
	}
	return r.Raw(int(n))
}

// UvarintLen returns the encoded size of v in bytes.
func UvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// StringsSize returns the exact encoded size of EncodeStrings(ss).
func StringsSize(ss [][]byte) int {
	total := UvarintLen(uint64(len(ss)))
	for _, s := range ss {
		total += UvarintLen(uint64(len(s))) + len(s)
	}
	return total
}

// EncodeStrings serializes a string set without LCP compression:
// count, then length-prefixed strings. This is the exchange format of
// MS-simple and FKmerge.
func EncodeStrings(ss [][]byte) []byte {
	return AppendStrings(make([]byte, 0, StringsSize(ss)), ss)
}

// AppendStrings appends the EncodeStrings encoding of ss to dst and
// returns the extended slice, letting callers serialize many runs into one
// pre-sized arena with O(1) allocations.
func AppendStrings(dst []byte, ss [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// DecodeStrings reverses EncodeStrings. The returned strings are copies and
// do not alias the message buffer beyond a single backing array.
func DecodeStrings(msg []byte) ([][]byte, error) {
	r := NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if cnt > uint64(len(msg)) {
		return nil, ErrCorrupt
	}
	out := make([][]byte, 0, cnt)
	// Single backing array for cache friendliness.
	backing := make([]byte, 0, r.Remaining())
	for i := uint64(0); i < cnt; i++ {
		s, err := r.BytesPrefixed()
		if err != nil {
			return nil, err
		}
		off := len(backing)
		backing = append(backing, s...)
		out = append(out, backing[off:off+len(s):off+len(s)])
	}
	return out, nil
}

// EncodeStringsLCP serializes a sorted run of strings with LCP compression:
// count, then for each string the LCP with the previous string of the run
// and only the remaining suffix characters. lcps[i] must be
// LCP(ss[i-1], ss[i]); lcps[0] is ignored (the first string is always sent
// in full). This is the Step 3 exchange format of Algorithm MS with LCP
// compression and of PDMS.
func EncodeStringsLCP(ss [][]byte, lcps []int32) []byte {
	return AppendStringsLCP(make([]byte, 0, StringsLCPSize(ss, lcps)), ss, lcps)
}

// StringsLCPSize returns the exact encoded size of EncodeStringsLCP.
func StringsLCPSize(ss [][]byte, lcps []int32) int {
	total := UvarintLen(uint64(len(ss)))
	for i, s := range ss {
		h := 0
		if i > 0 {
			h = int(lcps[i])
		}
		total += UvarintLen(uint64(h)) + UvarintLen(uint64(len(s)-h)) + len(s) - h
	}
	return total
}

// AppendStringsLCP appends the EncodeStringsLCP encoding to dst and
// returns the extended slice (see AppendStrings). lcps[0] is ignored: the
// first string of a run always travels in full, so callers can pass a
// sub-slice of a larger LCP array without zeroing its boundary entry.
func AppendStringsLCP(dst []byte, ss [][]byte, lcps []int32) []byte {
	if len(ss) != len(lcps) && len(ss) > 0 {
		panic(fmt.Sprintf("wire: %d strings but %d lcps", len(ss), len(lcps)))
	}
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for i, s := range ss {
		h := 0
		if i > 0 {
			h = int(lcps[i])
			if h > len(s) {
				panic(fmt.Sprintf("wire: lcp %d exceeds string length %d", h, len(s)))
			}
		}
		dst = binary.AppendUvarint(dst, uint64(h))
		dst = binary.AppendUvarint(dst, uint64(len(s)-h))
		dst = append(dst, s[h:]...)
	}
	return dst
}

// DecodeStringsLCP reverses EncodeStringsLCP, rematerializing full strings
// by copying the shared prefix from the previously decoded string. It
// returns the strings and the LCP array of the run (lcps[0] == 0).
//
// The decode is flat-arena: a first pass over the varints computes the
// exact total character count, then all strings are materialized as
// sub-slices of one contiguous backing buffer — three allocations per
// message instead of one per string, and the merged runs stay contiguous
// in memory for the Step 4 merge.
func DecodeStringsLCP(msg []byte) ([][]byte, []int32, error) {
	r := NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, nil, err
	}
	if cnt > uint64(len(msg))+1 {
		return nil, nil, ErrCorrupt
	}
	// Pass 1: validate the structure and size the arena.
	sizing := *r
	total := 0
	prevLen := 0
	for i := uint64(0); i < cnt; i++ {
		h64, err := sizing.Uvarint()
		if err != nil {
			return nil, nil, err
		}
		n64, err := sizing.Uvarint()
		if err != nil {
			return nil, nil, err
		}
		if _, err := sizing.Raw(int(n64)); err != nil {
			return nil, nil, err
		}
		h := int(h64)
		if (i == 0 && h != 0) || h > prevLen {
			return nil, nil, ErrCorrupt
		}
		prevLen = h + int(n64)
		total += prevLen
	}
	// Pass 2: materialize into the arena.
	ss := make([][]byte, 0, cnt)
	lcps := make([]int32, 0, cnt)
	arena := make([]byte, 0, total)
	var prev []byte
	for i := uint64(0); i < cnt; i++ {
		h64, _ := r.Uvarint()
		h := int(h64)
		suffix, _ := r.BytesPrefixed()
		off := len(arena)
		arena = append(arena, prev[:h]...)
		arena = append(arena, suffix...)
		end := len(arena)
		s := arena[off:end:end]
		ss = append(ss, s)
		lcps = append(lcps, int32(h))
		prev = s
	}
	if len(lcps) > 0 {
		lcps[0] = 0
	}
	return ss, lcps, nil
}

// EncodeInt32s serializes an int32 slice as varints (values must be >= 0).
func EncodeInt32s(vs []int32) []byte {
	return AppendInt32s(make([]byte, 0, Int32sSize(vs)), vs)
}

// Int32sSize returns the exact encoded size of EncodeInt32s(vs).
func Int32sSize(vs []int32) int {
	n := UvarintLen(uint64(len(vs)))
	for _, v := range vs {
		n += UvarintLen(uint64(uint32(v)))
	}
	return n
}

// AppendInt32s appends the EncodeInt32s encoding of vs to dst.
func AppendInt32s(dst []byte, vs []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, uint64(uint32(v)))
	}
	return dst
}

// AppendInt32sRun and Int32sRunSize are the EncodeInt32s format with the
// first value transmitted as zero: the run-boundary convention of the LCP
// exchange (see AppendStringsLCP), kept here so the encoding and
// DecodeInt32s live in one package.
func AppendInt32sRun(dst []byte, vs []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for i, v := range vs {
		if i == 0 {
			v = 0
		}
		dst = binary.AppendUvarint(dst, uint64(uint32(v)))
	}
	return dst
}

// Int32sRunSize returns the exact encoded size of AppendInt32sRun(nil, vs).
func Int32sRunSize(vs []int32) int {
	n := UvarintLen(uint64(len(vs)))
	for i, v := range vs {
		if i == 0 {
			v = 0
		}
		n += UvarintLen(uint64(uint32(v)))
	}
	return n
}

// DecodeInt32s reverses EncodeInt32s.
func DecodeInt32s(msg []byte) ([]int32, error) {
	r := NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if cnt > uint64(len(msg))+1 {
		return nil, ErrCorrupt
	}
	out := make([]int32, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		v, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, int32(uint32(v)))
	}
	return out, nil
}

// EncodeUint64s serializes a uint64 slice as varints.
func EncodeUint64s(vs []uint64) []byte {
	w := NewBuffer(len(vs)*4 + 8)
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Uvarint(v)
	}
	return w.Bytes()
}

// DecodeUint64s reverses EncodeUint64s.
func DecodeUint64s(msg []byte) ([]uint64, error) {
	r := NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if cnt > uint64(len(msg))+1 {
		return nil, ErrCorrupt
	}
	out := make([]uint64, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		v, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// EncodeUint64sFixed serializes a uint64 slice with fixed 8-byte values,
// the uncompressed fingerprint exchange format (PDMS without Golomb coding).
func EncodeUint64sFixed(vs []uint64) []byte {
	w := NewBuffer(len(vs)*8 + 8)
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Uint64(v)
	}
	return w.Bytes()
}

// DecodeUint64sFixed reverses EncodeUint64sFixed.
func DecodeUint64sFixed(msg []byte) ([]uint64, error) {
	r := NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if cnt*8 > uint64(len(msg))+8 {
		return nil, ErrCorrupt
	}
	out := make([]uint64, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		v, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// EncodeUint32sFixed serializes values (each < 2^32) with fixed 4-byte
// little-endian encoding — the short-fingerprint exchange format of the
// two-level duplicate detection.
func EncodeUint32sFixed(vs []uint64) []byte {
	w := NewBuffer(len(vs)*4 + 8)
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		if v > 0xFFFFFFFF {
			panic("wire: value exceeds 32 bits")
		}
		w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return w.Bytes()
}

// DecodeUint32sFixed reverses EncodeUint32sFixed.
func DecodeUint32sFixed(msg []byte) ([]uint64, error) {
	r := NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if cnt*4 > uint64(len(msg))+4 {
		return nil, ErrCorrupt
	}
	out := make([]uint64, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		raw, err := r.Raw(4)
		if err != nil {
			return nil, err
		}
		out = append(out, uint64(raw[0])|uint64(raw[1])<<8|uint64(raw[2])<<16|uint64(raw[3])<<24)
	}
	return out, nil
}

// EncodeBitset packs booleans into a bitset message.
func EncodeBitset(bs []bool) []byte {
	w := NewBuffer(len(bs)/8 + 10)
	w.Uvarint(uint64(len(bs)))
	var cur byte
	nbits := 0
	for _, b := range bs {
		if b {
			cur |= 1 << uint(nbits)
		}
		nbits++
		if nbits == 8 {
			w.Raw([]byte{cur})
			cur, nbits = 0, 0
		}
	}
	if nbits > 0 {
		w.Raw([]byte{cur})
	}
	return w.Bytes()
}

// DecodeBitset reverses EncodeBitset.
func DecodeBitset(msg []byte) ([]bool, error) {
	r := NewReader(msg)
	cnt, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	nbytes := int((cnt + 7) / 8)
	raw, err := r.Raw(nbytes)
	if err != nil {
		return nil, err
	}
	out := make([]bool, cnt)
	for i := range out {
		out[i] = raw[i/8]&(1<<uint(i%8)) != 0
	}
	return out, nil
}
