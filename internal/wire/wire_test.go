package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBufferRoundtripPrimitives(t *testing.T) {
	w := NewBuffer(0)
	w.Uvarint(0)
	w.Uvarint(1)
	w.Uvarint(1<<63 + 5)
	w.Uint64(0xdeadbeefcafebabe)
	w.BytesPrefixed([]byte("hello"))
	w.BytesPrefixed(nil)
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	for _, want := range []uint64{0, 1, 1<<63 + 5} {
		got, err := r.Uvarint()
		if err != nil || got != want {
			t.Fatalf("Uvarint = %d, %v; want %d", got, err, want)
		}
	}
	if got, err := r.Uint64(); err != nil || got != 0xdeadbeefcafebabe {
		t.Fatalf("Uint64 = %x, %v", got, err)
	}
	if got, err := r.BytesPrefixed(); err != nil || string(got) != "hello" {
		t.Fatalf("BytesPrefixed = %q, %v", got, err)
	}
	if got, err := r.BytesPrefixed(); err != nil || len(got) != 0 {
		t.Fatalf("empty BytesPrefixed = %q, %v", got, err)
	}
	if got, err := r.Raw(3); err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v, %v", got, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderTruncation(t *testing.T) {
	r := NewReader([]byte{0x80}) // incomplete varint
	if _, err := r.Uvarint(); err != ErrTruncated {
		t.Fatalf("Uvarint on truncated input: err = %v, want ErrTruncated", err)
	}
	r = NewReader([]byte{1, 2})
	if _, err := r.Uint64(); err != ErrTruncated {
		t.Fatalf("Uint64 on short input: err = %v", err)
	}
	r = NewReader([]byte{5, 'a'})
	if _, err := r.BytesPrefixed(); err != ErrTruncated {
		t.Fatalf("BytesPrefixed on short input: err = %v", err)
	}
}

func TestEncodeStringsRoundtrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{},
		{[]byte("")},
		{[]byte("a")},
		{[]byte("alpha"), []byte("beta"), []byte(""), []byte("gamma")},
	}
	for _, ss := range cases {
		got, err := DecodeStrings(EncodeStrings(ss))
		if err != nil {
			t.Fatalf("DecodeStrings(%q): %v", ss, err)
		}
		if len(got) != len(ss) {
			t.Fatalf("count = %d, want %d", len(got), len(ss))
		}
		for i := range ss {
			if !bytes.Equal(got[i], ss[i]) {
				t.Fatalf("string %d = %q, want %q", i, got[i], ss[i])
			}
		}
	}
}

func TestEncodeStringsQuick(t *testing.T) {
	f := func(ss [][]byte) bool {
		got, err := DecodeStrings(EncodeStrings(ss))
		if err != nil || len(got) != len(ss) {
			return false
		}
		for i := range ss {
			if !bytes.Equal(got[i], ss[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// sortedRun builds a sorted run of strings and its LCP array.
func sortedRun(rng *rand.Rand, n int) ([][]byte, []int32) {
	ss := make([][]byte, n)
	for i := range ss {
		l := rng.Intn(12)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('a' + rng.Intn(3))
		}
		ss[i] = s
	}
	// Sort.
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && bytes.Compare(ss[j-1], ss[j]) > 0; j-- {
			ss[j-1], ss[j] = ss[j], ss[j-1]
		}
	}
	lcps := make([]int32, n)
	for i := 1; i < n; i++ {
		h := 0
		for h < len(ss[i-1]) && h < len(ss[i]) && ss[i-1][h] == ss[i][h] {
			h++
		}
		lcps[i] = int32(h)
	}
	return ss, lcps
}

func TestEncodeStringsLCPRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		ss, lcps := sortedRun(rng, rng.Intn(20))
		msg := EncodeStringsLCP(ss, lcps)
		gotSS, gotLCP, err := DecodeStringsLCP(msg)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(gotSS) != len(ss) {
			t.Fatalf("count = %d, want %d", len(gotSS), len(ss))
		}
		for i := range ss {
			if !bytes.Equal(gotSS[i], ss[i]) {
				t.Fatalf("string %d = %q, want %q", i, gotSS[i], ss[i])
			}
			if i > 0 && gotLCP[i] != lcps[i] {
				t.Fatalf("lcp %d = %d, want %d", i, gotLCP[i], lcps[i])
			}
		}
	}
}

func TestLCPCompressionSavesBytes(t *testing.T) {
	// Strings sharing long prefixes must compress well.
	var ss [][]byte
	var lcps []int32
	prefix := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 50; i++ {
		s := append(append([]byte{}, prefix...), byte('a'+i%26), byte('0'+i/26))
		ss = append(ss, s)
		if i == 0 {
			lcps = append(lcps, 0)
		} else {
			h := 100
			if ss[i-1][100] == s[100] {
				h = 101
			}
			lcps = append(lcps, int32(h))
		}
	}
	plain := len(EncodeStrings(ss))
	comp := len(EncodeStringsLCP(ss, lcps))
	if comp*5 > plain {
		t.Fatalf("LCP compression too weak: %d vs %d plain bytes", comp, plain)
	}
}

func TestDecodeStringsLCPCorrupt(t *testing.T) {
	// First string claiming nonzero LCP is corrupt.
	w := NewBuffer(0)
	w.Uvarint(1)
	w.Uvarint(3) // lcp 3 with nonexistent previous string
	w.BytesPrefixed([]byte("abc"))
	if _, _, err := DecodeStringsLCP(w.Bytes()); err == nil {
		t.Fatal("expected error for corrupt first-string LCP")
	}
	// LCP exceeding previous string length is corrupt.
	w = NewBuffer(0)
	w.Uvarint(2)
	w.Uvarint(0)
	w.BytesPrefixed([]byte("ab"))
	w.Uvarint(5)
	w.BytesPrefixed([]byte("c"))
	if _, _, err := DecodeStringsLCP(w.Bytes()); err == nil {
		t.Fatal("expected error for LCP exceeding previous length")
	}
}

func TestInt32sRoundtrip(t *testing.T) {
	f := func(vs []int32) bool {
		for i := range vs {
			if vs[i] < 0 {
				vs[i] = -vs[i]
			}
		}
		got, err := DecodeInt32s(EncodeInt32s(vs))
		return err == nil && reflect.DeepEqual(normalize32(got), normalize32(vs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func normalize32(v []int32) []int32 {
	if len(v) == 0 {
		return nil
	}
	return v
}

func TestUint64sRoundtrip(t *testing.T) {
	f := func(vs []uint64) bool {
		got, err := DecodeUint64s(EncodeUint64s(vs))
		if err != nil || len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		gotF, err := DecodeUint64sFixed(EncodeUint64sFixed(vs))
		if err != nil || len(gotF) != len(vs) {
			return false
		}
		for i := range vs {
			if gotF[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetRoundtrip(t *testing.T) {
	f := func(bs []bool) bool {
		got, err := DecodeBitset(EncodeBitset(bs))
		if err != nil || len(got) != len(bs) {
			return false
		}
		for i := range bs {
			if got[i] != bs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65} {
		bs := make([]bool, n)
		for i := range bs {
			bs[i] = i%3 == 0
		}
		got, err := DecodeBitset(EncodeBitset(bs))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range bs {
			if got[i] != bs[i] {
				t.Fatalf("n=%d bit %d mismatch", n, i)
			}
		}
	}
}
