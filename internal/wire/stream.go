// Incremental run decoding for the streaming merge: a RunReader consumes an
// encoded Step-3 run chunk by chunk — sliced at ARBITRARY byte boundaries,
// as the chunked exchange delivers it — and yields decoded strings on
// demand, resumable mid-frame. The decoded output is identical, string for
// string and LCP for LCP, to the corresponding one-shot decoder
// (DecodeStrings / DecodeStringsLCP / their composite layouts): the
// streaming seam must not change a single byte of what the merge sees.
//
// Aliasing contract: decoded strings NEVER alias the fed chunks. Every
// character is copied into reader-owned arenas, so callers may recycle (or
// scribble over) a chunk buffer the moment Feed returns — which they do:
// chunks come from the transport's buffer pool and are released
// immediately. Arenas are append-only and never overwritten, so a string
// handed out by Next stays valid and immutable for the lifetime of the
// reader's output (the loser tree caches heads and the merged Sequence
// aliases them; see merge.Source for the consuming side of the contract).
package wire

import "encoding/binary"

// RunFormat identifies the wire layout of one exchanged run for incremental
// decoding. The layouts are exactly the ones the sorters' Step-3 encoders
// produce; RunReader must track every format change made there.
type RunFormat int

const (
	// RunStrings is the EncodeStrings layout: count, then length-prefixed
	// strings (MS-simple and FKmerge).
	RunStrings RunFormat = iota
	// RunStringsLCP is the EncodeStringsLCP layout: count, then per string
	// the LCP with the predecessor and the remaining suffix (MS).
	RunStringsLCP
	// RunTagged is the (string, uint64) pair layout of hQuick's
	// redistribution payloads: count, then per item a length-prefixed
	// string followed by a varint tag.
	RunTagged
	// RunPrefixOrigins is PDMS's composite layout: a length-prefixed
	// RunStringsLCP blob followed by a length-prefixed origin blob (count,
	// then one varint origin per string). Strings become available only
	// when their origin has also been decoded — the merge outputs
	// (prefix, origin) pairs, never one without the other.
	RunPrefixOrigins
)

// Item is one decoded string of a run: the string itself, its LCP with the
// run's previous string (0 for the first, and always 0 for non-LCP
// formats), and its satellite word (tag or origin; 0 for plain formats).
type Item struct {
	S   []byte
	LCP int32
	Sat uint64
}

// maxSectionLen bounds a declared section length of the composite format;
// it mirrors the transports' frame limit. A length varint beyond it cannot
// belong to a real message (and would overflow the int section budget), so
// it is rejected as corruption instead of waiting for 2 GiB that will
// never arrive.
const maxSectionLen = 1<<31 - 1

// parse status of one pump step.
type status int

const (
	stOK status = iota
	stNeedMore
	stFail
)

// state machine positions. Plain formats use stCount→stItem→stDone; the
// composite RunPrefixOrigins walks all of them.
type rrState int

const (
	rrBlobLen rrState = iota
	rrCount
	rrItem
	rrSkipBlob
	rrOblobLen
	rrOCount
	rrOrigin
	rrSkipOblob
	rrDone
)

// RunReader incrementally decodes one encoded run. Feed it the run's bytes
// in any number of chunks (copied internally), call Finish when the last
// chunk is in, and pull decoded strings with Next. A reader is confined to
// one goroutine.
type RunReader struct {
	format   RunFormat
	pending  []byte // buffered undecoded bytes (copies of fed chunks)
	off      int    // consumed prefix of pending
	finished bool
	err      error

	st  rrState
	cnt uint64 // declared string count (valid from state > rrCount)
	sec int    // remaining bytes of the current bounded section; -1 = unbounded

	arena   []byte // decoded characters; items' strings are sub-slices
	prev    []byte // previously decoded string, for LCP rematerialization
	items   []Item // decoded items awaiting emission (minus the recycled prefix)
	base    int    // items dropped from the front of items by Recycle
	norigin int    // origins attached so far, run-total (RunPrefixOrigins)
	emitted int    // items handed out by Next, run-total
}

// NewRunReader returns a reader for one run in the given format.
func NewRunReader(format RunFormat) *RunReader {
	st := rrCount
	if format == RunPrefixOrigins {
		st = rrBlobLen
	}
	// The arena starts non-nil so that every decoded string — including an
	// empty string at the very start of the run — is a non-nil slice, like
	// the one-shot decoders produce. A nil head would read as the loser
	// tree's +∞ exhausted sentinel and silently drop the rest of the run.
	return &RunReader{format: format, st: st, sec: -1, arena: []byte{}}
}

// Feed appends the next chunk of the encoded run. The chunk is copied; the
// caller keeps ownership and may recycle it immediately. Feeding after
// Finish, or garbage past the end of a complete run, is ignored — exactly
// like the one-shot decoders ignore trailing bytes.
func (r *RunReader) Feed(chunk []byte) {
	if r.finished || r.st == rrDone || r.err != nil {
		return
	}
	// Compact the consumed prefix before growing: decoded strings live in
	// the arena, never in pending, so the move invalidates nothing.
	if r.off > 0 && (r.off >= len(r.pending) || r.off > 4096) {
		r.pending = append(r.pending[:0], r.pending[r.off:]...)
		r.off = 0
	}
	r.pending = append(r.pending, chunk...)
	r.pump()
}

// Finish marks the end of the run's byte stream. A run still mid-item after
// Finish is truncated and reports an error from Next.
func (r *RunReader) Finish() {
	if r.finished {
		return
	}
	r.finished = true
	r.pump()
}

// Done reports that every string of the run has been decoded and emitted.
func (r *RunReader) Done() bool {
	return r.err == nil && r.st == rrDone && r.emitted == int(r.cnt)
}

// Err returns the first decoding error, if any.
func (r *RunReader) Err() error { return r.err }

// Next returns the next decoded string of the run. ok=false with a nil
// error means no string is available yet: more chunks are needed, or —
// when Done reports true — the run is complete. The returned Item's string
// obeys the aliasing contract in the package comment.
func (r *RunReader) Next() (Item, bool, error) {
	if r.err != nil {
		return Item{}, false, r.err
	}
	if r.emitted < r.available() {
		it := r.items[r.emitted-r.base]
		r.items[r.emitted-r.base] = Item{} // drop the reader's alias early
		r.emitted++
		return it, true, nil
	}
	if r.finished && !r.Done() {
		// The stream ended but the run is incomplete and no parse error was
		// recorded: the remaining items can never materialize.
		r.err = ErrTruncated
		return Item{}, false, r.err
	}
	return Item{}, false, nil
}

// available counts the items ready for emission (as a run-total, comparable
// to emitted): decoded strings, capped by decoded origins for the composite
// format.
func (r *RunReader) available() int {
	if r.format == RunPrefixOrigins {
		return r.norigin
	}
	return r.base + len(r.items)
}

// decoded returns the run-total number of strings decoded so far.
func (r *RunReader) decoded() int { return r.base + len(r.items) }

// ArenaBytes returns the live size of the reader's character arena: the
// decoded-but-not-recycled characters a budget accountant should meter.
// The buffered undecoded chunk bytes (bounded by the exchange frame size)
// and the one stale arena block pinned by prev after a Recycle are the
// documented fixed overhead on top of this figure.
func (r *RunReader) ArenaBytes() int { return len(r.arena) }

// Recycle drops the reader's references to every item already emitted and —
// once no decoded item is left waiting — replaces the character arena with a
// fresh one, returning the number of arena bytes released. Strings handed
// out earlier stay valid (arenas are never overwritten, only unreferenced),
// but a caller that recycles takes over their lifetime: the reader no longer
// pins them. prev keeps aliasing the retired arena until the next string is
// decoded against it; that one stale block is part of the documented budget
// overhead allowance.
func (r *RunReader) Recycle() int {
	if d := r.emitted - r.base; d > 0 {
		n := copy(r.items, r.items[d:])
		clear(r.items[n:])
		r.items = r.items[:n]
		r.base = r.emitted
	}
	if len(r.items) > 0 {
		// Undrained items still alias the arena; nothing to release yet.
		return 0
	}
	freed := len(r.arena)
	if freed > 0 {
		r.arena = []byte{}
	}
	return freed
}

// pump advances the state machine over the buffered bytes as far as it can.
func (r *RunReader) pump() {
	for r.err == nil {
		switch r.st {
		case rrBlobLen:
			v, s := r.uvarint()
			if s != stOK {
				return
			}
			if v > maxSectionLen {
				r.err = ErrCorrupt
				return
			}
			r.sec = int(v)
			r.st = rrCount
		case rrCount:
			v, s := r.uvarint()
			if s != stOK {
				return
			}
			r.cnt = v
			if v == 0 {
				r.st = r.afterItems()
				continue
			}
			r.st = rrItem
		case rrItem:
			if s := r.item(); s != stOK {
				return
			}
			if uint64(r.decoded()) == r.cnt {
				r.st = r.afterItems()
			}
		case rrSkipBlob, rrSkipOblob:
			if s := r.skipSection(); s != stOK {
				return
			}
			if r.st == rrSkipBlob {
				r.sec = -1
				r.st = rrOblobLen
			} else {
				r.st = rrDone
			}
		case rrOblobLen:
			v, s := r.uvarint()
			if s != stOK {
				return
			}
			if v > maxSectionLen {
				r.err = ErrCorrupt
				return
			}
			r.sec = int(v)
			r.st = rrOCount
		case rrOCount:
			v, s := r.uvarint()
			if s != stOK {
				return
			}
			if v != r.cnt {
				// The one-shot path rejects origin/string count mismatches;
				// so does the streaming one.
				r.err = ErrCorrupt
				return
			}
			if v == 0 {
				r.st = rrSkipOblob
				continue
			}
			r.st = rrOrigin
		case rrOrigin:
			v, s := r.uvarint()
			if s != stOK {
				return
			}
			r.items[r.norigin-r.base].Sat = v
			r.norigin++
			if uint64(r.norigin) == r.cnt {
				r.st = rrSkipOblob
			}
		case rrDone:
			return
		}
	}
}

// afterItems returns the state following the last decoded string. For the
// composite format the remaining blob bytes (if any) are skipped, like the
// one-shot decoder ignores a blob tail.
func (r *RunReader) afterItems() rrState {
	if r.format == RunPrefixOrigins {
		return rrSkipBlob
	}
	return rrDone
}

// window returns the parseable bytes: the buffered tail, capped at the
// current section budget. capped reports that the cap (not the buffer end)
// bounds the window — running out of a capped window is corruption-grade
// truncation, not a need for more chunks.
func (r *RunReader) window() (win []byte, capped bool) {
	win = r.pending[r.off:]
	if r.sec >= 0 && r.sec < len(win) {
		return win[:r.sec], true
	}
	return win, false
}

// consume commits n parsed bytes.
func (r *RunReader) consume(n int) {
	r.off += n
	if r.sec >= 0 {
		r.sec -= n
	}
}

// short classifies an incomplete parse: within an exhausted section or
// after Finish the bytes can never arrive (ErrTruncated, matching the
// one-shot decoders); otherwise more chunks are simply needed.
func (r *RunReader) short(capped bool) status {
	if capped || r.finished {
		r.err = ErrTruncated
		return stFail
	}
	return stNeedMore
}

// uvarint parses one varint at the read position.
func (r *RunReader) uvarint() (uint64, status) {
	win, capped := r.window()
	v, n := binary.Uvarint(win)
	if n > 0 {
		r.consume(n)
		return v, stOK
	}
	if n < 0 {
		r.err = ErrCorrupt
		return 0, stFail
	}
	return 0, r.short(capped)
}

// item transactionally parses one string record: nothing is consumed
// unless the whole record is available.
func (r *RunReader) item() status {
	win, capped := r.window()
	pos := 0
	next := func() (uint64, status) {
		v, n := binary.Uvarint(win[pos:])
		if n > 0 {
			pos += n
			return v, stOK
		}
		if n < 0 {
			r.err = ErrCorrupt
			return 0, stFail
		}
		return 0, r.short(capped)
	}

	var h, length, sat uint64
	var s status
	switch r.format {
	case RunStringsLCP, RunPrefixOrigins:
		if h, s = next(); s != stOK {
			return s
		}
		if length, s = next(); s != stOK {
			return s
		}
	default: // RunStrings, RunTagged
		if length, s = next(); s != stOK {
			return s
		}
	}
	if length > uint64(len(win)-pos) {
		return r.short(capped)
	}
	body := win[pos : pos+int(length)]
	pos += int(length)
	if r.format == RunTagged {
		if sat, s = next(); s != stOK {
			return s
		}
	}

	switch r.format {
	case RunStringsLCP, RunPrefixOrigins:
		// Mirror the one-shot validation: the first string carries no
		// prefix, and no prefix may exceed the predecessor's length.
		if (r.decoded() == 0 && h != 0) || h > uint64(len(r.prev)) {
			r.err = ErrCorrupt
			return stFail
		}
		off := len(r.arena)
		r.arena = append(r.arena, r.prev[:h]...)
		r.arena = append(r.arena, body...)
		end := len(r.arena)
		str := r.arena[off:end:end]
		r.prev = str
		r.items = append(r.items, Item{S: str, LCP: int32(h)})
	default:
		off := len(r.arena)
		r.arena = append(r.arena, body...)
		end := len(r.arena)
		r.items = append(r.items, Item{S: r.arena[off:end:end], Sat: sat})
	}
	r.consume(pos)
	return stOK
}

// skipSection discards the remainder of the current bounded section.
func (r *RunReader) skipSection() status {
	avail := len(r.pending) - r.off
	n := r.sec
	if n > avail {
		n = avail
	}
	r.off += n
	r.sec -= n
	if r.sec == 0 {
		return stOK
	}
	if r.finished {
		r.err = ErrTruncated
		return stFail
	}
	return stNeedMore
}
