package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

// oneShot is the reference decoder of a format: the exact non-streaming
// path each RunFormat mirrors (DecodeStrings / DecodeStringsLCP for the
// wire formats, the core-layer composites re-stated here).
func oneShot(format RunFormat, msg []byte) ([]Item, error) {
	switch format {
	case RunStrings:
		ss, err := DecodeStrings(msg)
		if err != nil {
			return nil, err
		}
		items := make([]Item, len(ss))
		for i, s := range ss {
			items[i] = Item{S: s}
		}
		return items, nil
	case RunStringsLCP:
		ss, lcps, err := DecodeStringsLCP(msg)
		if err != nil {
			return nil, err
		}
		items := make([]Item, len(ss))
		for i, s := range ss {
			items[i] = Item{S: s, LCP: lcps[i]}
		}
		return items, nil
	case RunTagged:
		// Mirror of core's decodeTagged.
		r := NewReader(msg)
		cnt, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		var items []Item
		for i := uint64(0); i < cnt; i++ {
			s, err := r.BytesPrefixed()
			if err != nil {
				return nil, err
			}
			u, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			items = append(items, Item{S: append([]byte(nil), s...), Sat: u})
		}
		return items, nil
	case RunPrefixOrigins:
		// Mirror of PDMS's eager exchange decode.
		r := NewReader(msg)
		blob, err := r.BytesPrefixed()
		if err != nil {
			return nil, err
		}
		oblob, err := r.BytesPrefixed()
		if err != nil {
			return nil, err
		}
		ss, lcps, err := DecodeStringsLCP(blob)
		if err != nil {
			return nil, err
		}
		os, err := DecodeUint64s(oblob)
		if err != nil {
			return nil, err
		}
		if len(os) != len(ss) {
			return nil, ErrCorrupt
		}
		items := make([]Item, len(ss))
		for i, s := range ss {
			items[i] = Item{S: s, LCP: lcps[i], Sat: os[i]}
		}
		return items, nil
	}
	panic("unknown format")
}

// streamDecode runs a RunReader over msg cut at the given boundaries
// (ascending offsets into msg) and collects every item.
func streamDecode(format RunFormat, msg []byte, cuts []int) ([]Item, error) {
	r := NewRunReader(format)
	prev := 0
	for _, c := range cuts {
		r.Feed(msg[prev:c])
		prev = c
	}
	r.Feed(msg[prev:])
	r.Finish()
	var items []Item
	for {
		it, ok, err := r.Next()
		if err != nil {
			return items, err
		}
		if !ok {
			if !r.Done() {
				return items, fmt.Errorf("reader stalled: not done, no error")
			}
			return items, nil
		}
		items = append(items, it)
	}
}

func itemsEqual(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].S, b[i].S) || a[i].LCP != b[i].LCP || a[i].Sat != b[i].Sat {
			return false
		}
	}
	return true
}

// lcpOf computes the LCP of two byte strings (test-local helper).
func lcpOf(a, b []byte) int32 {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return int32(i)
}

// encodeRun builds a valid encoded run of the given format over a sorted
// string set with per-string satellite words.
func encodeRun(format RunFormat, ss [][]byte, sats []uint64) []byte {
	lcps := make([]int32, len(ss))
	for i := 1; i < len(ss); i++ {
		lcps[i] = lcpOf(ss[i-1], ss[i])
	}
	switch format {
	case RunStrings:
		return EncodeStrings(ss)
	case RunStringsLCP:
		return EncodeStringsLCP(ss, lcps)
	case RunTagged:
		w := NewBuffer(64)
		w.Uvarint(uint64(len(ss)))
		for i, s := range ss {
			w.BytesPrefixed(s)
			w.Uvarint(sats[i])
		}
		return w.Bytes()
	case RunPrefixOrigins:
		blob := EncodeStringsLCP(ss, lcps)
		var msg []byte
		msg = binary.AppendUvarint(msg, uint64(len(blob)))
		msg = append(msg, blob...)
		ow := NewBuffer(64)
		ow.Uvarint(uint64(len(ss)))
		for i := range ss {
			ow.Uvarint(sats[i])
		}
		msg = binary.AppendUvarint(msg, uint64(ow.Len()))
		msg = append(msg, ow.Bytes()...)
		return msg
	}
	panic("unknown format")
}

var runFormats = []RunFormat{RunStrings, RunStringsLCP, RunTagged, RunPrefixOrigins}

// testRuns are the string-set shapes every format is exercised with.
func testRuns() [][][]byte {
	return [][][]byte{
		{},
		{[]byte("")},
		{[]byte("a")},
		{[]byte(""), []byte(""), []byte("")},
		{[]byte("aa"), []byte("aab"), []byte("aab"), []byte("abc"), []byte("b")},
		{[]byte("shared-prefix-shared-prefix-1"), []byte("shared-prefix-shared-prefix-2"),
			[]byte("shared-prefix-shared-prefix-2x"), []byte("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzz")},
	}
}

// TestRunReaderEverySplitPoint feeds every test run, in every format,
// sliced at EVERY single byte boundary (two chunks) and additionally in
// uniform chunks of 1..5 bytes, and requires the decoded items to be
// identical to the one-shot decoder's.
func TestRunReaderEverySplitPoint(t *testing.T) {
	for _, format := range runFormats {
		for ri, ss := range testRuns() {
			sats := make([]uint64, len(ss))
			for i := range sats {
				sats[i] = uint64(i)*977 + 5
			}
			msg := encodeRun(format, ss, sats)
			want, err := oneShot(format, msg)
			if err != nil {
				t.Fatalf("format %d run %d: reference decode failed: %v", format, ri, err)
			}
			// Two chunks, split at every boundary (0 and len included).
			for cut := 0; cut <= len(msg); cut++ {
				got, err := streamDecode(format, msg, []int{cut})
				if err != nil {
					t.Fatalf("format %d run %d cut %d: %v", format, ri, cut, err)
				}
				if !itemsEqual(want, got) {
					t.Fatalf("format %d run %d cut %d: items differ", format, ri, cut)
				}
			}
			// Uniform tiny chunks: every reader state resumes repeatedly.
			for width := 1; width <= 5; width++ {
				var cuts []int
				for c := width; c < len(msg); c += width {
					cuts = append(cuts, c)
				}
				got, err := streamDecode(format, msg, cuts)
				if err != nil {
					t.Fatalf("format %d run %d width %d: %v", format, ri, width, err)
				}
				if !itemsEqual(want, got) {
					t.Fatalf("format %d run %d width %d: items differ", format, ri, width)
				}
			}
		}
	}
}

// TestRunReaderGarbageTailsAndTruncations pins the failure-mode parity
// with the one-shot decoders: garbage appended after a complete run is
// ignored (exactly like the one-shot decoders ignore trailing bytes), and
// every strict prefix of an encoding either errors cleanly or — never —
// fabricates a complete run.
func TestRunReaderGarbageTailsAndTruncations(t *testing.T) {
	ss := [][]byte{[]byte("aa"), []byte("aab"), []byte("abc"), []byte("b")}
	sats := []uint64{9, 8, 7, 6}
	for _, format := range runFormats {
		msg := encodeRun(format, ss, sats)
		want, err := oneShot(format, msg)
		if err != nil {
			t.Fatalf("format %d: reference decode failed: %v", format, err)
		}
		// Garbage tails, fed both within the final chunk and as extra ones.
		for _, tail := range [][]byte{{0x00}, {0xff, 0xff, 0xff}, bytes.Repeat([]byte{0xab}, 64)} {
			dirty := append(append([]byte(nil), msg...), tail...)
			if wantDirty, err := oneShot(format, dirty); err != nil || !itemsEqual(want, wantDirty) {
				t.Fatalf("format %d: one-shot no longer ignores tails (%v)", format, err)
			}
			for _, cuts := range [][]int{{len(msg)}, {len(msg) / 2}, {len(msg), len(msg) + 1}} {
				got, err := streamDecode(format, dirty, cuts)
				if err != nil {
					t.Fatalf("format %d tail cuts %v: %v", format, cuts, err)
				}
				if !itemsEqual(want, got) {
					t.Fatalf("format %d tail cuts %v: items differ", format, cuts)
				}
			}
		}
		// Truncations: the one-shot decoder fails on every strict prefix of
		// this encoding; the streaming reader must fail too (possibly after
		// emitting the items that were already complete), never stall or
		// panic.
		for cut := 0; cut < len(msg); cut++ {
			if _, err := oneShot(format, msg[:cut]); err == nil {
				continue // a prefix that happens to decode (not for these runs)
			}
			if _, err := streamDecode(format, msg[:cut], []int{cut / 2}); err == nil {
				t.Fatalf("format %d: truncation at %d not reported", format, cut)
			}
		}
	}
}

// TestRunReaderDoesNotAliasChunks enforces the reader half of the merge
// aliasing contract: decoded strings must never reference the fed chunk
// storage. Every chunk is fed through ONE reused buffer that is scribbled
// over immediately after Feed returns — exactly what the transport's
// buffer pool does — and the decoded items must still match the one-shot
// reference at the end.
func TestRunReaderDoesNotAliasChunks(t *testing.T) {
	ss := [][]byte{[]byte("alpha"), []byte("alphabet"), []byte("alphabetical"), []byte("beta")}
	sats := []uint64{1, 2, 3, 4}
	for _, format := range runFormats {
		msg := encodeRun(format, ss, sats)
		want, _ := oneShot(format, msg)
		r := NewRunReader(format)
		scratch := make([]byte, 3)
		var got []Item
		for off := 0; off < len(msg); off += len(scratch) {
			end := off + len(scratch)
			if end > len(msg) {
				end = len(msg)
			}
			chunk := scratch[:end-off]
			copy(chunk, msg[off:end])
			r.Feed(chunk)
			for i := range chunk {
				chunk[i] = 0xee // recycle the buffer: decoded data must survive
			}
			for {
				it, ok, err := r.Next()
				if err != nil {
					t.Fatalf("format %d: %v", format, err)
				}
				if !ok {
					break
				}
				got = append(got, it)
			}
		}
		r.Finish()
		for {
			it, ok, err := r.Next()
			if err != nil {
				t.Fatalf("format %d: %v", format, err)
			}
			if !ok {
				break
			}
			got = append(got, it)
		}
		if !r.Done() {
			t.Fatalf("format %d: reader not done", format)
		}
		if !itemsEqual(want, got) {
			t.Fatalf("format %d: decoded items corrupted by chunk-buffer reuse", format)
		}
	}
}

// FuzzRunReader compares the streaming reader against the one-shot
// decoder on arbitrary bytes and arbitrary chunkings: when the one-shot
// path accepts the message the reader must produce the identical item
// sequence; when it rejects, the reader must report a clean error (items
// it emitted before hitting the corruption are fine — a streaming decoder
// cannot see the tail first). Never a panic, a stall, or an over-read.
func FuzzRunReader(f *testing.F) {
	for _, format := range runFormats {
		for _, ss := range testRuns() {
			sats := make([]uint64, len(ss))
			for i := range sats {
				sats[i] = uint64(i) * 3
			}
			f.Add(uint8(format), uint8(3), encodeRun(format, ss, sats))
		}
	}
	f.Add(uint8(RunStringsLCP), uint8(1), []byte{2, 0, 3, 'a', 'b', 'c', 9, 1})  // lcp 9 > prev len
	f.Add(uint8(RunPrefixOrigins), uint8(2), []byte{200, 1, 0, 3, 'x'})          // blob longer than msg
	f.Add(uint8(RunTagged), uint8(1), bytes.Repeat([]byte{0xff}, 16))            // varint overflow
	f.Fuzz(func(t *testing.T, f8, width8 uint8, msg []byte) {
		format := RunFormat(f8 % 4)
		width := int(width8%16) + 1
		want, wantErr := oneShot(format, msg)
		var cuts []int
		for c := width; c < len(msg); c += width {
			cuts = append(cuts, c)
		}
		got, gotErr := streamDecode(format, msg, cuts)
		if wantErr == nil {
			if gotErr != nil {
				t.Fatalf("one-shot accepts but stream rejects: %v", gotErr)
			}
			if !itemsEqual(want, got) {
				t.Fatalf("items differ:\none-shot: %d items\nstream:   %d items", len(want), len(got))
			}
		} else if gotErr == nil {
			t.Fatalf("one-shot rejects (%v) but stream accepts %d items", wantErr, len(got))
		}
	})
}

// TestRunReaderEmptyFirstStringIsNonNil is the regression test of the nil
// head bug: a run BEGINNING with empty strings must decode them as empty
// NON-NIL slices, exactly like the one-shot arena decoders do — a nil
// string reads as the loser tree's exhausted sentinel and would silently
// drop the rest of the run (see merge.Source's Head contract).
func TestRunReaderEmptyFirstStringIsNonNil(t *testing.T) {
	ss := [][]byte{{}, {}, []byte("b")}
	sats := []uint64{1, 2, 3}
	for _, format := range runFormats {
		msg := encodeRun(format, ss, sats)
		for _, width := range []int{1, 2, len(msg)} {
			var cuts []int
			for c := width; c < len(msg); c += width {
				cuts = append(cuts, c)
			}
			items, err := streamDecode(format, msg, cuts)
			if err != nil {
				t.Fatalf("format %d width %d: %v", format, width, err)
			}
			if len(items) != len(ss) {
				t.Fatalf("format %d width %d: %d items, want %d", format, width, len(items), len(ss))
			}
			for i, it := range items {
				if it.S == nil {
					t.Fatalf("format %d width %d: item %d decoded to a nil slice", format, width, i)
				}
			}
		}
	}
}

// TestRunReaderRejectsHugeSectionLengths pins the composite format's
// section-length sanity check: a declared blob or origin-blob length
// beyond any real frame must fail as clean corruption (the one-shot
// decoder's ErrTruncated equivalent), never overflow the int section
// budget into a negative skip and panic.
func TestRunReaderRejectsHugeSectionLengths(t *testing.T) {
	for _, huge := range []uint64{1 << 31, 1 << 62, 1 << 63, ^uint64(0)} {
		// blobLen = huge, then plausible run bytes.
		msg := binary.AppendUvarint(nil, huge)
		msg = append(msg, 1, 0, 1, 'x')
		if _, err := streamDecode(RunPrefixOrigins, msg, []int{1, 3}); err == nil {
			t.Fatalf("blob length %d accepted", huge)
		}
		// Valid blob, huge oblobLen.
		blob := EncodeStringsLCP([][]byte{[]byte("x")}, []int32{0})
		msg = binary.AppendUvarint(nil, uint64(len(blob)))
		msg = append(msg, blob...)
		msg = binary.AppendUvarint(msg, huge)
		msg = append(msg, 1, 7)
		if _, err := streamDecode(RunPrefixOrigins, msg, []int{2, 5}); err == nil {
			t.Fatalf("oblob length %d accepted", huge)
		}
	}
}
