// Multisequence selection: exact rank-based splitting of K sorted runs
// into globally ordered parts, the partitioning step of the parallel
// Step-4 merge. Where the rest of this package picks APPROXIMATE splitters
// by sampling (Step 2 decides which PE a string belongs to, and imbalance
// there only costs load), the parallel merge needs EXACT boundaries: every
// worker must merge a contiguous subrange of the final output, so the
// boundaries are the j·total/parts order statistics of the union of the
// runs — computed here without merging, by binary-searching ranks.
//
// Total order. Elements are ordered by (string, run index, position):
// ties between equal strings break toward the lower run, and within one
// run toward the earlier position — exactly the order of the loser trees
// in internal/merge (lower stream index wins ties, runs are FIFO). Under
// a total order every element has a distinct global rank, so the selected
// per-run counts always sum to the requested target, with no tie
// fix-up pass.
//
// These functions are pure (no communicator, no accounting): the parallel
// merge calls them as unbilled bookkeeping, off the work-count channel.
package partition

import (
	"bytes"
	"sort"
)

// MultiSelect returns, for each run, the absolute position pos[q] in
// [starts[q], len(runs[q])] such that the elements runs[q][starts[q]:pos[q]]
// are exactly the `target` globally smallest remaining elements under the
// (string, run, position) order. starts may be nil (all zeros); target must
// be in [0, total remaining]. The per-run counts pos[q]−starts[q] sum to
// target. Cost: O(K² · log²(n/K)) string comparisons.
func MultiSelect(runs [][][]byte, starts []int, target int) []int {
	k := len(runs)
	pos := make([]int, k)
	for q := 0; q < k; q++ {
		lo := startOf(starts, q)
		rem := len(runs[q]) - lo
		// pos[q] − lo = number of run-q elements among the target smallest
		// = first relative index i whose global rank reaches target. The
		// rank is strictly increasing in i (distinct ranks), so the
		// predicate is monotone and sort.Search applies.
		pos[q] = lo + sort.Search(rem, func(i int) bool {
			return rankOf(runs, starts, q, i) >= target
		})
	}
	return pos
}

// rankOf returns the global rank (number of strictly smaller remaining
// elements under the (string, run, position) order) of element i (relative
// to the run's start) of run q.
func rankOf(runs [][][]byte, starts []int, q, i int) int {
	w := runs[q][startOf(starts, q)+i]
	rank := i // earlier elements of the same run are all smaller
	for r := range runs {
		if r == q {
			continue
		}
		sub := runs[r][startOf(starts, r):]
		if r < q {
			// A lower run wins ties: elements of r that compare ≤ w
			// precede (w, q, ·).
			rank += sort.Search(len(sub), func(j int) bool {
				return bytes.Compare(sub[j], w) > 0
			})
		} else {
			// A higher run loses ties: only strictly smaller elements
			// precede.
			rank += sort.Search(len(sub), func(j int) bool {
				return bytes.Compare(sub[j], w) >= 0
			})
		}
	}
	return rank
}

// SplitPoints cuts the remaining elements of the runs into `parts` globally
// ordered, contiguous-in-every-run subranges of near-equal size: the
// returned cuts have parts+1 rows, cuts[0] = starts (zeros when nil),
// cuts[parts] = run lengths, and row j holds the per-run absolute
// boundaries of the j·total/parts order statistic. Rows are monotone in j
// for every run, so [cuts[j][q], cuts[j+1][q]) are disjoint and cover each
// run's remainder.
func SplitPoints(runs [][][]byte, starts []int, parts int) [][]int {
	k := len(runs)
	total := 0
	for q := 0; q < k; q++ {
		total += len(runs[q]) - startOf(starts, q)
	}
	cuts := make([][]int, parts+1)
	first := make([]int, k)
	for q := 0; q < k; q++ {
		first[q] = startOf(starts, q)
	}
	cuts[0] = first
	for j := 1; j < parts; j++ {
		cuts[j] = MultiSelect(runs, starts, total*j/parts)
	}
	last := make([]int, k)
	for q := 0; q < k; q++ {
		last[q] = len(runs[q])
	}
	cuts[parts] = last
	return cuts
}

// startOf reads starts[q] with nil meaning zero.
func startOf(starts []int, q int) int {
	if starts == nil {
		return 0
	}
	return starts[q]
}
