package partition

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTieKeyOrderMatchesPairOrder(t *testing.T) {
	f := func(a, b []byte, ta, tb uint64) bool {
		ka := TieKey(a, ta)
		kb := TieKey(b, tb)
		var want int
		if c := bytes.Compare(a, b); c != 0 {
			want = c
		} else {
			switch {
			case ta < tb:
				want = -1
			case ta > tb:
				want = 1
			}
		}
		return sign(bytes.Compare(ka, kb)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestTieKeyEscapeBytes(t *testing.T) {
	// Strings containing the escape and terminator bytes must round-trip
	// and order correctly.
	cases := [][]byte{
		{}, {0x00}, {0x01}, {0x00, 0x00}, {0x01, 0x00}, {0x02}, {0xff},
		{0x00, 0xff}, {0x01, 0x01, 0x01},
	}
	for _, a := range cases {
		s, tag, ok := DecodeTieKey(TieKey(a, 42))
		if !ok || tag != 42 || !bytes.Equal(s, a) {
			t.Fatalf("roundtrip failed for %v: %v %d %v", a, s, tag, ok)
		}
		for _, b := range cases {
			ka, kb := TieKey(a, 7), TieKey(b, 7)
			if sign(bytes.Compare(ka, kb)) != sign(bytes.Compare(a, b)) {
				t.Fatalf("order broken for %v vs %v", a, b)
			}
		}
	}
}

func TestCompareTieAgainstMaterialized(t *testing.T) {
	f := func(s []byte, tag uint64, k []byte, ktag uint64) bool {
		key := TieKey(k, ktag)
		return CompareTie(s, tag, key) == sign(bytes.Compare(TieKey(s, tag), key))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketsTieSplitsDuplicates(t *testing.T) {
	// 100 copies of one string with splitters cutting the run by tag.
	ss := make([][]byte, 100)
	for i := range ss {
		ss[i] = []byte("dup")
	}
	rank := 3
	splitters := [][]byte{
		TieKey([]byte("dup"), tieTag(rank, 24)),
		TieKey([]byte("dup"), tieTag(rank, 49)),
		TieKey([]byte("dup"), tieTag(rank, 74)),
	}
	off := BucketsTie(ss, rank, splitters)
	want := []int{0, 25, 50, 75, 100}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("off = %v, want %v", off, want)
		}
	}
}

func TestSelectSplittersTieBreakBalancesDuplicates(t *testing.T) {
	// All PEs hold only copies of the same string. Plain splitters dump
	// everything into one bucket; tie-break splitters spread it evenly.
	p := 8
	locals := make([][][]byte, p)
	for pe := range locals {
		for j := 0; j < 200; j++ {
			locals[pe] = append(locals[pe], []byte("all-equal"))
		}
	}
	maxBucket := func(tie bool) int {
		counts := make([]int, p)
		splitters := runSelect(t, locals, func(pe int) Options {
			return Options{V: 2*p - 1, GroupID: 1, TieBreak: tie}
		})
		for pe := range locals {
			var off []int
			if tie {
				off = BucketsTie(locals[pe], pe, splitters)
			} else {
				off = Buckets(locals[pe], splitters)
			}
			for b := 0; b < p; b++ {
				counts[b] += off[b+1] - off[b]
			}
		}
		m := 0
		for _, c := range counts {
			if c > m {
				m = c
			}
		}
		return m
	}
	plain := maxBucket(false)
	tie := maxBucket(true)
	if plain < 1600 {
		t.Fatalf("plain splitters unexpectedly balanced duplicates: max %d", plain)
	}
	if tie > 400 { // mean is 200
		t.Fatalf("tie-break bucket still unbalanced: max %d of 1600", tie)
	}
}

// runSelect variant is defined in partition_test.go.

func TestRandomSamplingBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	p := 8
	global := genStrings(rng, 4000, 1, 10, 4)
	locals := distribute(global, p)
	splitters := runSelect(t, locals, func(int) Options {
		return Options{V: 64, GroupID: 1, RandomSampling: true, Seed: 5}
	})
	sizes := bucketSizesGlobal(global, splitters)
	mean := len(global) / p
	for b, size := range sizes {
		if size > 3*mean {
			t.Fatalf("random sampling bucket %d holds %d (mean %d)", b, size, mean)
		}
	}
}

func TestRandomSamplingDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	p := 4
	global := genStrings(rng, 800, 1, 8, 3)
	locals := distribute(global, p)
	a := runSelect(t, locals, func(int) Options {
		return Options{V: 16, GroupID: 1, RandomSampling: true, Seed: 9}
	})
	b := runSelect(t, locals, func(int) Options {
		return Options{V: 16, GroupID: 1, RandomSampling: true, Seed: 9}
	})
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatal("random sampling not reproducible under fixed seed")
		}
	}
}

func TestTieKeySortStability(t *testing.T) {
	// Sorting tie keys of equal strings must order by tag — the property
	// the distributed sample sorter relies on.
	keys := [][]byte{
		TieKey([]byte("x"), 30),
		TieKey([]byte("x"), 10),
		TieKey([]byte("x"), 20),
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	var tags []uint64
	for _, k := range keys {
		_, tag, ok := DecodeTieKey(k)
		if !ok {
			t.Fatal("decode failed")
		}
		tags = append(tags, tag)
	}
	if tags[0] != 10 || tags[1] != 20 || tags[2] != 30 {
		t.Fatalf("tags = %v", tags)
	}
}
