package partition

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refElement tags a string with its (run, position) origin so the reference
// can realize the exact (string, run, position) total order by sorting.
type refElement struct {
	s        []byte
	run, pos int
}

// refSelect brute-forces the target smallest remaining elements by tagging
// and sorting, then counts how many land in each run.
func refSelect(runs [][][]byte, starts []int, target int) []int {
	var all []refElement
	for q := range runs {
		for i := startOf(starts, q); i < len(runs[q]); i++ {
			all = append(all, refElement{runs[q][i], q, i})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		c := bytes.Compare(all[a].s, all[b].s)
		if c != 0 {
			return c < 0
		}
		if all[a].run != all[b].run {
			return all[a].run < all[b].run
		}
		return all[a].pos < all[b].pos
	})
	pos := make([]int, len(runs))
	for q := range runs {
		pos[q] = startOf(starts, q)
	}
	for _, e := range all[:target] {
		pos[e.run]++
	}
	return pos
}

func checkSelect(t *testing.T, runs [][][]byte, starts []int, target int) {
	t.Helper()
	got := MultiSelect(runs, starts, target)
	want := refSelect(runs, starts, target)
	if len(got) != len(want) {
		t.Fatalf("target %d: got %d runs, want %d", target, len(got), len(want))
	}
	sum := 0
	for q := range got {
		if got[q] != want[q] {
			t.Fatalf("target %d: pos[%d] = %d, want %d (got %v want %v)",
				target, q, got[q], want[q], got, want)
		}
		if got[q] < startOf(starts, q) || got[q] > len(runs[q]) {
			t.Fatalf("target %d: pos[%d] = %d out of bounds [%d,%d]",
				target, q, got[q], startOf(starts, q), len(runs[q]))
		}
		sum += got[q] - startOf(starts, q)
	}
	if sum != target {
		t.Fatalf("target %d: counts sum to %d", target, sum)
	}
}

func sortedRun(strs ...string) [][]byte {
	run := make([][]byte, len(strs))
	for i, s := range strs {
		run[i] = []byte(s)
	}
	sort.Slice(run, func(a, b int) bool { return bytes.Compare(run[a], run[b]) < 0 })
	return run
}

func totalOf(runs [][][]byte, starts []int) int {
	n := 0
	for q := range runs {
		n += len(runs[q]) - startOf(starts, q)
	}
	return n
}

func TestMultiSelectAdversarial(t *testing.T) {
	cases := []struct {
		name string
		runs [][][]byte
	}{
		{"all-equal", [][][]byte{
			sortedRun("aaa", "aaa", "aaa"),
			sortedRun("aaa", "aaa"),
			sortedRun("aaa", "aaa", "aaa", "aaa"),
		}},
		{"empty-runs", [][][]byte{
			{},
			sortedRun("b", "c"),
			{},
			sortedRun("a", "d"),
			{},
		}},
		{"all-empty", [][][]byte{{}, {}, {}}},
		{"one-giant-run", [][][]byte{
			sortedRun("a", "b", "c", "d", "e", "f", "g", "h", "i", "j"),
			sortedRun("e"),
			{},
		}},
		{"k-equals-1", [][][]byte{
			sortedRun("x", "y", "z"),
		}},
		{"non-power-of-two-k", [][][]byte{
			sortedRun("apple", "cherry"),
			sortedRun("banana", "fig"),
			sortedRun("apple", "banana", "grape"),
			sortedRun("date"),
			sortedRun("banana"),
		}},
		{"empty-strings", [][][]byte{
			sortedRun("", "", "a"),
			sortedRun("", "a", "a"),
		}},
		{"shared-prefixes", [][][]byte{
			sortedRun("prefix", "prefixa", "prefixaa", "prefixab"),
			sortedRun("prefix", "prefixab", "prefixb"),
			sortedRun("prefixa", "prefixaa"),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			total := totalOf(tc.runs, nil)
			for target := 0; target <= total; target++ {
				checkSelect(t, tc.runs, nil, target)
			}
		})
	}
}

func TestMultiSelectNonzeroStarts(t *testing.T) {
	runs := [][][]byte{
		sortedRun("a", "b", "b", "c", "e"),
		sortedRun("b", "b", "d"),
		sortedRun("a", "a", "f"),
	}
	starts := []int{2, 1, 0}
	total := totalOf(runs, starts)
	for target := 0; target <= total; target++ {
		checkSelect(t, runs, starts, target)
	}
}

func TestMultiSelectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{"", "a", "aa", "ab", "abc", "b", "ba", "bb", "c", "ca"}
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(7)
		runs := make([][][]byte, k)
		starts := make([]int, k)
		for q := range runs {
			n := rng.Intn(12)
			strs := make([]string, n)
			for i := range strs {
				strs[i] = alphabet[rng.Intn(len(alphabet))]
			}
			runs[q] = sortedRun(strs...)
			if n > 0 {
				starts[q] = rng.Intn(n + 1)
			}
		}
		useStarts := starts
		if trial%2 == 0 {
			useStarts = nil
		}
		total := totalOf(runs, useStarts)
		for _, target := range []int{0, total / 3, total / 2, total} {
			checkSelect(t, runs, useStarts, target)
		}
	}
}

func TestSplitPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(6)
		runs := make([][][]byte, k)
		for q := range runs {
			n := rng.Intn(15)
			strs := make([]string, n)
			for i := range strs {
				strs[i] = fmt.Sprintf("s%02d", rng.Intn(10))
			}
			runs[q] = sortedRun(strs...)
		}
		total := totalOf(runs, nil)
		for _, parts := range []int{1, 2, 3, 5, 8} {
			cuts := SplitPoints(runs, nil, parts)
			if len(cuts) != parts+1 {
				t.Fatalf("parts=%d: %d rows", parts, len(cuts))
			}
			for q := range runs {
				if cuts[0][q] != 0 || cuts[parts][q] != len(runs[q]) {
					t.Fatalf("parts=%d run=%d: endpoints %d..%d, want 0..%d",
						parts, q, cuts[0][q], cuts[parts][q], len(runs[q]))
				}
			}
			// Rows monotone per run; per-row sizes match the target schedule.
			for j := 1; j <= parts; j++ {
				size := 0
				for q := range runs {
					if cuts[j][q] < cuts[j-1][q] {
						t.Fatalf("parts=%d run=%d: row %d (%d) < row %d (%d)",
							parts, q, j, cuts[j][q], j-1, cuts[j-1][q])
					}
					size += cuts[j][q] - cuts[0][q]
				}
				want := total * j / parts
				if j == parts {
					want = total
				}
				if size != want {
					t.Fatalf("parts=%d row=%d: cumulative size %d, want %d", parts, j, size, want)
				}
			}
			// Every row is an exact selection boundary.
			for j := 1; j < parts; j++ {
				want := refSelect(runs, nil, total*j/parts)
				for q := range runs {
					if cuts[j][q] != want[q] {
						t.Fatalf("parts=%d row=%d: cuts %v, want %v", parts, j, cuts[j], want)
					}
				}
			}
		}
	}
}
