// Package partition implements Step 2 of the distributed merge sorters:
// regular sampling of the locally sorted string arrays, global splitter
// selection, and bucket boundary computation (Section V-A of the paper).
//
// Two sampling strategies are provided. String-based sampling picks v
// evenly spaced strings per PE and guarantees buckets of at most n/p + n/v
// strings (Theorem 2). Character-based sampling spaces the samples evenly
// by character mass — optionally weighted by approximated distinguishing
// prefix lengths, as PDMS does — and guarantees buckets of at most
// N/p + N/v + (p+v)·ℓ̂ characters (Theorem 3), which balances the actual
// work when string lengths are skewed.
//
// The pv samples are sorted either centrally on PE 0 (the Fischer-Kurpicz
// approach, a scalability bottleneck the paper measures) or by a caller-
// provided distributed sorter (hQuick in Algorithms MS and PDMS).
package partition

import (
	"bytes"
	"math/rand"
	"sort"

	"dss/internal/comm"
	"dss/internal/stats"
	"dss/internal/strsort"
	"dss/internal/wire"
)

// Sampling selects the sampling strategy.
type Sampling int

// Sampling strategies.
const (
	StringSampling Sampling = iota // balance string counts (Theorem 2)
	CharSampling                   // balance character counts (Theorem 3)
)

// String returns the strategy name.
func (s Sampling) String() string {
	if s == CharSampling {
		return "char"
	}
	return "string"
}

// DistSorter sorts the given strings, which are distributed over all PEs,
// and returns the calling PE's fragment of the globally sorted sequence.
// Algorithm MS plugs hQuick in here; gid is a fresh communicator namespace.
type DistSorter func(c *comm.Comm, samples [][]byte, gid int) [][]byte

// Options configure splitter selection.
type Options struct {
	// V is the oversampling factor: samples per PE. The splitter count is
	// always P-1. The paper uses v = Θ(p) for the theory (Theorems 2-4);
	// fallback default is 16 when the caller does not choose.
	V int
	// Sampling selects string- or character-based sampling.
	Sampling Sampling
	// Weights optionally reweights character-based sampling: Weights[i] is
	// the character mass of the i-th local string (PDMS passes the
	// approximated distinguishing prefix lengths). nil means |s|.
	Weights []int32
	// Transform optionally replaces the sampled string: given a local
	// index it returns the sample representative (PDMS returns the
	// distinguishing prefix, bounding splitter length by d̂). nil means the
	// full string.
	Transform func(i int) []byte
	// DistSort, if non-nil, sorts the sample distributedly; otherwise the
	// samples are gathered and sorted on PE 0 (FKmerge-style).
	DistSort DistSorter
	// TieBreak augments samples (and later bucket comparisons, via
	// BucketsTie) with unique (PE, index) tags, splitting runs of equal
	// strings evenly across buckets — the Section VIII extension for
	// duplicate-heavy inputs. The returned splitters are tie keys (see
	// TieKey) and must be used with BucketsTie, not Buckets.
	TieBreak bool
	// RandomSampling draws the v samples uniformly at random instead of by
	// regular spacing (the Section VIII variant: needs fewer samples in
	// expectation, and expected splitter length drops from ℓ̂ to the mean).
	RandomSampling bool
	// Seed drives RandomSampling.
	Seed uint64
	// GroupID is the communicator namespace for the selection collectives.
	GroupID int
}

func (o *Options) setDefaults() {
	if o.V <= 0 {
		o.V = 16
	}
}

// SelectSplitters computes P-1 global splitters over the locally sorted
// string array ss (one collective call per PE). Every PE returns the same
// splitter array, sorted ascending. Accounting goes to stats.PhasePartition.
func SelectSplitters(c *comm.Comm, ss [][]byte, opt Options) [][]byte {
	opt.setDefaults()
	prev := c.SetPhase(stats.PhasePartition)
	defer c.SetPhase(prev)

	p := c.P()
	if p == 1 {
		return nil
	}
	// Decorrelate the per-PE random sampling streams.
	opt.Seed ^= uint64(c.Rank()+1) * 0x2545f4914f6cdd1d
	if opt.TieBreak {
		base := opt.Transform
		if base == nil {
			base = func(i int) []byte { return ss[i] }
		}
		rank := c.Rank()
		opt.Transform = func(i int) []byte {
			return TieKey(base(i), tieTag(rank, i))
		}
	}
	samples := drawSamples(ss, opt)

	g := comm.NewGroup(c, allRanks(p), opt.GroupID)
	var splitters [][]byte
	if opt.DistSort == nil {
		splitters = centralSelect(g, samples, p, c)
	} else {
		splitters = distributedSelect(c, g, samples, p, opt)
	}
	return splitters
}

// drawSamples picks the local samples per the configured strategy.
func drawSamples(ss [][]byte, opt Options) [][]byte {
	v := opt.V
	transform := opt.Transform
	if transform == nil {
		transform = func(i int) []byte { return ss[i] }
	}
	if len(ss) == 0 {
		return nil
	}
	out := make([][]byte, 0, v)
	if opt.RandomSampling {
		// Uniform random sampling (with replacement); weights ignored —
		// the random variant of Section VIII balances in expectation.
		rng := rand.New(rand.NewSource(int64(opt.Seed)))
		for j := 0; j < v; j++ {
			out = append(out, transform(rng.Intn(len(ss))))
		}
		return out
	}
	switch opt.Sampling {
	case StringSampling:
		// ω = |S|/(v+1); samples at ranks ω·j for j = 1..v.
		for j := 1; j <= v; j++ {
			idx := j * len(ss) / (v + 1)
			if idx >= len(ss) {
				idx = len(ss) - 1
			}
			out = append(out, transform(idx))
		}
	case CharSampling:
		weight := func(i int) int64 {
			if opt.Weights != nil {
				return int64(opt.Weights[i])
			}
			return int64(len(ss[i]))
		}
		var total int64
		for i := range ss {
			total += weight(i)
		}
		if total == 0 {
			// Degenerate: all-empty strings; fall back to string sampling.
			for j := 1; j <= v; j++ {
				idx := j * len(ss) / (v + 1)
				if idx >= len(ss) {
					idx = len(ss) - 1
				}
				out = append(out, transform(idx))
			}
			return out
		}
		// ω' = total/(v+1); pick the string at or following each rank j·ω'.
		var cum int64
		j := 1
		for i := range ss {
			cum += weight(i)
			for j <= v && cum > total*int64(j)/int64(v+1) {
				out = append(out, transform(i))
				j++
			}
		}
		for ; j <= v; j++ { // rounding leftovers: repeat the last string
			out = append(out, transform(len(ss)-1))
		}
	}
	return out
}

// centralSelect gathers all samples on PE 0, sorts them sequentially,
// selects P-1 equidistant splitters and broadcasts them.
func centralSelect(g *comm.Group, samples [][]byte, p int, c *comm.Comm) [][]byte {
	parts := g.Gatherv(0, wire.EncodeStrings(samples))
	var packed []byte
	if g.Idx() == 0 {
		var all [][]byte
		for _, part := range parts {
			ss, err := wire.DecodeStrings(part)
			if err != nil {
				panic("partition: corrupt sample message")
			}
			all = append(all, ss...)
		}
		work := strsort.Sort(all, nil)
		c.AddWork(work)
		packed = wire.EncodeStrings(pickEquidistant(all, p))
	}
	packed = g.Bcast(0, packed)
	splitters, err := wire.DecodeStrings(packed)
	if err != nil {
		panic("partition: corrupt splitter broadcast")
	}
	return splitters
}

// pickEquidistant picks p-1 equidistant splitters from the sorted sample V:
// fi = V[⌈i·|V|/p⌉ - 1] (the paper's V[v·i − 1] for |V| = p·v).
func pickEquidistant(sorted [][]byte, p int) [][]byte {
	out := make([][]byte, 0, p-1)
	if len(sorted) == 0 {
		for i := 1; i < p; i++ {
			out = append(out, []byte{})
		}
		return out
	}
	for i := 1; i < p; i++ {
		idx := i*len(sorted)/p - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, sorted[idx])
	}
	return out
}

// distributedSelect sorts the sample with the caller-provided distributed
// sorter, then extracts the strings at the global splitter ranks and
// all-gathers them.
func distributedSelect(c *comm.Comm, g *comm.Group, samples [][]byte, p int, opt Options) [][]byte {
	frag := opt.DistSort(c, samples, opt.GroupID+1)
	// Global rank of my fragment start.
	prefix, total := g.ExscanUint64(uint64(len(frag)))
	if total == 0 {
		out := make([][]byte, p-1)
		for i := range out {
			out[i] = []byte{}
		}
		return out
	}
	// Contribute the splitters that fall into my fragment.
	contrib := wire.NewBuffer(64)
	type pick struct {
		i int
		s []byte
	}
	var picks []pick
	for i := 1; i < p; i++ {
		rank := uint64(i) * total / uint64(p)
		var idx uint64
		if rank > 0 {
			idx = rank - 1
		}
		if idx >= prefix && idx < prefix+uint64(len(frag)) {
			picks = append(picks, pick{i: i, s: frag[idx-prefix]})
		}
	}
	contrib.Uvarint(uint64(len(picks)))
	for _, pk := range picks {
		contrib.Uvarint(uint64(pk.i))
		contrib.BytesPrefixed(pk.s)
	}
	parts := g.Allgatherv(contrib.Bytes())
	splitters := make([][]byte, p-1)
	for _, part := range parts {
		r := wire.NewReader(part)
		cnt, err := r.Uvarint()
		if err != nil {
			panic("partition: corrupt splitter contribution")
		}
		for k := uint64(0); k < cnt; k++ {
			i64, err1 := r.Uvarint()
			s, err2 := r.BytesPrefixed()
			if err1 != nil || err2 != nil || i64 < 1 || i64 > uint64(p-1) {
				panic("partition: corrupt splitter contribution")
			}
			cp := make([]byte, len(s))
			copy(cp, s)
			splitters[i64-1] = cp
		}
	}
	for i, s := range splitters {
		if s == nil {
			splitters[i] = []byte{}
		}
	}
	return splitters
}

// Buckets computes the bucket boundaries of the locally sorted array ss for
// the given splitters: bucket i receives the strings s with
// f_i < s ≤ f_{i+1} (f_0 = −∞, f_p = +∞). It returns p+1 offsets with
// off[0] = 0 and off[p] = len(ss); bucket i is ss[off[i]:off[i+1]].
// Binary search costs O(p·log n̂·ℓ̂) like in the paper's analysis.
func Buckets(ss [][]byte, splitters [][]byte) []int {
	p := len(splitters) + 1
	off := make([]int, p+1)
	off[p] = len(ss)
	for i := 1; i < p; i++ {
		f := splitters[i-1]
		// First index with ss[idx] > f (strings equal to the splitter stay
		// in the lower bucket: f_i < s ≤ f_{i+1}).
		off[i] = sort.Search(len(ss), func(k int) bool {
			return bytes.Compare(ss[k], f) > 0
		})
	}
	// Monotonicity despite equal/unsorted splitters is guaranteed because
	// splitters are sorted; assert cheaply in debug fashion.
	for i := 1; i <= p; i++ {
		if off[i] < off[i-1] {
			panic("partition: non-monotone bucket offsets (unsorted splitters?)")
		}
	}
	return off
}

// BucketStats summarizes the global bucket balance for testing and for the
// skew experiments: the maximum number of strings and characters any PE
// receives.
func BucketStats(c *comm.Comm, ss [][]byte, off []int, gid int) (maxStrings, maxChars uint64) {
	p := c.P()
	g := comm.NewGroup(c, allRanks(p), gid)
	counts := make([]uint64, 2*p)
	for i := 0; i < p; i++ {
		counts[2*i] = uint64(off[i+1] - off[i])
		var chars uint64
		for _, s := range ss[off[i]:off[i+1]] {
			chars += uint64(len(s))
		}
		counts[2*i+1] = chars
	}
	sums := g.AllreduceUint64(counts, comm.Sum)
	for i := 0; i < p; i++ {
		if sums[2*i] > maxStrings {
			maxStrings = sums[2*i]
		}
		if sums[2*i+1] > maxChars {
			maxChars = sums[2*i+1]
		}
	}
	return maxStrings, maxChars
}

func allRanks(p int) []int {
	r := make([]int, p)
	for i := range r {
		r[i] = i
	}
	return r
}
