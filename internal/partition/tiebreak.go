package partition

import (
	"encoding/binary"
	"sort"
)

// Tie breaking (Section VIII, "one could remove load balancing problems
// due to duplicate strings by tie breaking techniques", after [Axtmann &
// Sanders, Robust Massively Parallel Sorting]).
//
// With plain splitters, all copies of a duplicated string fall into the
// same bucket: an input consisting of one repeated string sends everything
// to one PE. Tie breaking augments every string s with a globally unique
// tag (origin PE, local index) and partitions by the pair (s, tag), which
// splits runs of equal strings evenly across buckets.
//
// The pair is mapped to a single byte key whose plain lexicographic order
// equals the lexicographic order of (s, tag), so the distributed sample
// sorter (hQuick) can sort tie keys like ordinary strings:
//
//	enc(s, tag) = escape(s) ‖ 0x00 ‖ tag (8 bytes big-endian)
//
// where escape replaces byte b < 2 by the pair (0x01, b). The terminator
// 0x00 is strictly smaller than every escaped byte, so a proper prefix
// still sorts first, and the tag is only reached when the strings are
// byte-equal.

// TieKey encodes (s, tag) into an order-preserving byte key.
func TieKey(s []byte, tag uint64) []byte {
	out := make([]byte, 0, len(s)+10)
	for _, b := range s {
		if b < 2 {
			out = append(out, 0x01, b)
		} else {
			out = append(out, b)
		}
	}
	out = append(out, 0x00)
	return binary.BigEndian.AppendUint64(out, tag)
}

// CompareTie compares the pair (s, tag) against an encoded tie key without
// materializing the pair's own encoding.
func CompareTie(s []byte, tag uint64, key []byte) int {
	pos := 0
	for _, b := range s {
		var eb [2]byte
		n := 1
		if b < 2 {
			eb[0], eb[1] = 0x01, b
			n = 2
		} else {
			eb[0] = b
		}
		for k := 0; k < n; k++ {
			if pos >= len(key) {
				return 1 // key exhausted: key is a strict prefix
			}
			if eb[k] != key[pos] {
				if eb[k] < key[pos] {
					return -1
				}
				return 1
			}
			pos++
		}
	}
	// s consumed; the key must now hold the terminator.
	if pos >= len(key) {
		return 1
	}
	if key[pos] != 0x00 {
		return -1 // key continues with string bytes: s is a proper prefix
	}
	pos++
	if pos+8 > len(key) {
		return 1 // malformed/truncated tag sorts first
	}
	ktag := binary.BigEndian.Uint64(key[pos:])
	switch {
	case tag < ktag:
		return -1
	case tag > ktag:
		return 1
	default:
		return 0
	}
}

// DecodeTieKey recovers (s, tag) from an encoded key (testing helper).
func DecodeTieKey(key []byte) ([]byte, uint64, bool) {
	var s []byte
	i := 0
	for i < len(key) {
		b := key[i]
		if b == 0x00 {
			if i+9 != len(key) {
				return nil, 0, false
			}
			return s, binary.BigEndian.Uint64(key[i+1:]), true
		}
		if b == 0x01 {
			if i+1 >= len(key) {
				return nil, 0, false
			}
			s = append(s, key[i+1])
			i += 2
			continue
		}
		s = append(s, b)
		i++
	}
	return nil, 0, false
}

// BucketsTie computes bucket boundaries like Buckets, but against
// tie-key splitters: string k is compared as the pair
// (ss[k], tag(rank, k)). ss must be locally sorted; equal strings are
// ordered by their position, which makes the pair order globally
// consistent.
func BucketsTie(ss [][]byte, rank int, splitters [][]byte) []int {
	p := len(splitters) + 1
	off := make([]int, p+1)
	off[p] = len(ss)
	for i := 1; i < p; i++ {
		f := splitters[i-1]
		off[i] = sort.Search(len(ss), func(k int) bool {
			return CompareTie(ss[k], tieTag(rank, k), f) > 0
		})
	}
	for i := 1; i <= p; i++ {
		if off[i] < off[i-1] {
			panic("partition: non-monotone tie-break offsets")
		}
	}
	return off
}

// tieTag builds the unique tag of the k-th sorted string of a PE.
func tieTag(rank, k int) uint64 {
	return uint64(uint32(rank))<<32 | uint64(uint32(k))
}

// TieTag is the exported tag constructor (rank, sorted position).
func TieTag(rank, k int) uint64 { return tieTag(rank, k) }
