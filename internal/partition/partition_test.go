package partition

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"dss/internal/comm"
	"dss/internal/strsort"
	"dss/internal/strutil"
)

// distribute splits global strings over p PEs round-robin and sorts each
// local set (the precondition of Step 2).
func distribute(global [][]byte, p int) [][][]byte {
	locals := make([][][]byte, p)
	for i, s := range global {
		locals[i%p] = append(locals[i%p], s)
	}
	for pe := range locals {
		strsort.Sort(locals[pe], nil)
	}
	return locals
}

func genStrings(rng *rand.Rand, n, minLen, maxLen, sigma int) [][]byte {
	ss := make([][]byte, n)
	for i := range ss {
		l := minLen
		if maxLen > minLen {
			l += rng.Intn(maxLen - minLen)
		}
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('a' + rng.Intn(sigma))
		}
		ss[i] = s
	}
	return ss
}

// runSelect runs SelectSplitters on every PE and checks agreement.
func runSelect(t *testing.T, locals [][][]byte, opt func(pe int) Options) [][]byte {
	t.Helper()
	p := len(locals)
	m := comm.New(p)
	results := make([][][]byte, p)
	err := m.Run(func(c *comm.Comm) error {
		results[c.Rank()] = SelectSplitters(c, locals[c.Rank()], opt(c.Rank()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pe := 1; pe < p; pe++ {
		if len(results[pe]) != len(results[0]) {
			t.Fatalf("PE %d got %d splitters, PE 0 got %d", pe, len(results[pe]), len(results[0]))
		}
		for i := range results[0] {
			if !bytes.Equal(results[pe][i], results[0][i]) {
				t.Fatalf("PE %d splitter %d = %q, PE 0 has %q", pe, i, results[pe][i], results[0][i])
			}
		}
	}
	if len(results[0]) != p-1 {
		t.Fatalf("got %d splitters, want %d", len(results[0]), p-1)
	}
	for i := 1; i < len(results[0]); i++ {
		if bytes.Compare(results[0][i-1], results[0][i]) > 0 {
			t.Fatalf("splitters unsorted at %d", i)
		}
	}
	return results[0]
}

func TestSelectSplittersAgreeAcrossPEs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, p := range []int{2, 3, 5, 8} {
		global := genStrings(rng, 500, 1, 12, 3)
		locals := distribute(global, p)
		runSelect(t, locals, func(int) Options {
			return Options{V: 8, GroupID: 1}
		})
	}
}

func TestTheorem2StringBucketBound(t *testing.T) {
	// Theorem 2: every bucket holds at most n/p + n/v strings.
	rng := rand.New(rand.NewSource(62))
	for _, p := range []int{2, 4, 8} {
		for _, v := range []int{4, 16, 64} {
			n := 4000
			global := genStrings(rng, n, 1, 10, 4)
			locals := distribute(global, p)
			splitters := runSelect(t, locals, func(int) Options {
				return Options{V: v, Sampling: StringSampling, GroupID: 1}
			})
			sizes := bucketSizesGlobal(global, splitters)
			bound := n/p + n/v + p + v // rounding slack
			for b, size := range sizes {
				if size > bound {
					t.Fatalf("p=%d v=%d: bucket %d has %d strings > bound %d",
						p, v, b, size, bound)
				}
			}
		}
	}
}

func TestTheorem3CharBucketBound(t *testing.T) {
	// Theorem 3: at most N/p + N/v + (p+v)·ℓ̂ characters per bucket, even
	// with skewed string lengths.
	rng := rand.New(rand.NewSource(63))
	for _, p := range []int{2, 4, 8} {
		v := 16
		var global [][]byte
		// Skew: 20% of strings are 10× longer.
		for i := 0; i < 2000; i++ {
			l := 5 + rng.Intn(10)
			if i%5 == 0 {
				l *= 10
			}
			s := make([]byte, l)
			for j := range s {
				s[j] = byte('a' + rng.Intn(3))
			}
			global = append(global, s)
		}
		locals := distribute(global, p)
		splitters := runSelect(t, locals, func(int) Options {
			return Options{V: v, Sampling: CharSampling, GroupID: 1}
		})
		chars := bucketCharsGlobal(global, splitters)
		nTotal := int(strutil.TotalLen(global))
		lhat := strutil.MaxLen(global)
		bound := nTotal/p + nTotal/v + (p+v+2)*lhat
		for b, cc := range chars {
			if cc > bound {
				t.Fatalf("p=%d: bucket %d has %d chars > bound %d", p, b, cc, bound)
			}
		}
	}
}

func TestCharSamplingBeatsStringSamplingOnSkew(t *testing.T) {
	// The Section VII-E skew experiment: with skewed output lengths,
	// char-based sampling must yield better character balance.
	rng := rand.New(rand.NewSource(64))
	var global [][]byte
	for i := 0; i < 3000; i++ {
		var s []byte
		if i < 600 { // the smallest strings are padded 4× (paper's skew)
			s = append(bytes.Repeat([]byte{'a'}, 40), byte('a'+rng.Intn(26)), byte('a'+rng.Intn(26)))
		} else {
			s = []byte{byte('b' + rng.Intn(20)), byte('a' + rng.Intn(26)), byte('a' + rng.Intn(26))}
		}
		global = append(global, s)
	}
	p := 8
	locals := distribute(global, p)
	sStr := runSelect(t, locals, func(int) Options {
		return Options{V: 16, Sampling: StringSampling, GroupID: 1}
	})
	sChr := runSelect(t, locals, func(int) Options {
		return Options{V: 16, Sampling: CharSampling, GroupID: 1}
	})
	maxStr := maxOf(bucketCharsGlobal(global, sStr))
	maxChr := maxOf(bucketCharsGlobal(global, sChr))
	if maxChr >= maxStr {
		t.Fatalf("char sampling (%d) not better than string sampling (%d) on skew", maxChr, maxStr)
	}
}

func TestDistributedSelectMatchesCentralizedRoughly(t *testing.T) {
	// With a trivial "distributed" sorter that routes everything through a
	// real global sort, the selected splitters must drive balanced buckets.
	rng := rand.New(rand.NewSource(65))
	global := genStrings(rng, 2000, 1, 8, 4)
	p := 4
	locals := distribute(global, p)
	fakeDist := func(c *comm.Comm, samples [][]byte, gid int) [][]byte {
		// Gather everything everywhere, sort, return an equal slice per PE.
		g := comm.NewGroup(c, []int{0, 1, 2, 3}, gid)
		parts := g.Allgatherv(encodeStrings(samples))
		var all [][]byte
		for _, part := range parts {
			all = append(all, decodeStrings(part)...)
		}
		strsort.Sort(all, nil)
		lo := c.Rank() * len(all) / p
		hi := (c.Rank() + 1) * len(all) / p
		return all[lo:hi]
	}
	splitters := runSelect(t, locals, func(int) Options {
		return Options{V: 16, GroupID: 1, DistSort: fakeDist}
	})
	sizes := bucketSizesGlobal(global, splitters)
	bound := len(global)/p + len(global)/16 + p + 16
	for b, size := range sizes {
		if size > bound {
			t.Fatalf("bucket %d: %d > %d", b, size, bound)
		}
	}
}

func TestBucketsBoundaries(t *testing.T) {
	ss := [][]byte{
		[]byte("a"), []byte("b"), []byte("b"), []byte("c"), []byte("d"), []byte("e"),
	}
	// Splitters b, d: bucket0 = s ≤ b, bucket1 = b < s ≤ d, bucket2 = s > d.
	off := Buckets(ss, [][]byte{[]byte("b"), []byte("d")})
	want := []int{0, 3, 5, 6}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("off = %v, want %v", off, want)
		}
	}
	// Empty input.
	off = Buckets(nil, [][]byte{[]byte("m")})
	if off[0] != 0 || off[1] != 0 || off[2] != 0 {
		t.Fatalf("empty buckets = %v", off)
	}
	// No splitters: single bucket.
	off = Buckets(ss, nil)
	if len(off) != 2 || off[1] != 6 {
		t.Fatalf("single bucket offsets = %v", off)
	}
}

func TestBucketsEqualSplittersAndDuplicates(t *testing.T) {
	// All strings equal to all splitters: everything lands in bucket 0.
	ss := [][]byte{[]byte("x"), []byte("x"), []byte("x")}
	off := Buckets(ss, [][]byte{[]byte("x"), []byte("x")})
	if off[1] != 3 || off[2] != 3 {
		t.Fatalf("duplicate splitters: off = %v", off)
	}
}

func TestSelectSplittersEmptyPEs(t *testing.T) {
	// Some PEs have no strings at all.
	p := 4
	locals := make([][][]byte, p)
	locals[1] = [][]byte{[]byte("m"), []byte("q")}
	runSelect(t, locals, func(int) Options {
		return Options{V: 4, GroupID: 1}
	})
}

func TestTransformTruncatesSplitters(t *testing.T) {
	// PDMS samples distinguishing prefixes: splitters must be prefixes.
	rng := rand.New(rand.NewSource(66))
	global := genStrings(rng, 400, 20, 30, 3)
	p := 4
	locals := distribute(global, p)
	dists := make([][]int32, p)
	for pe := range locals {
		dists[pe] = strutil.DistinguishingPrefixes(locals[pe])
	}
	splitters := runSelect(t, locals, func(pe int) Options {
		return Options{
			V:        8,
			Sampling: CharSampling,
			Weights:  dists[pe],
			Transform: func(i int) []byte {
				return locals[pe][i][:dists[pe][i]]
			},
			GroupID: 1,
		}
	})
	maxSplit := 0
	for _, f := range splitters {
		if len(f) > maxSplit {
			maxSplit = len(f)
		}
	}
	if maxSplit >= 20 {
		t.Fatalf("splitters not truncated to distinguishing prefixes: max len %d", maxSplit)
	}
}

// Helpers.

func bucketSizesGlobal(global [][]byte, splitters [][]byte) []int {
	sorted := strutil.Clone(global)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	off := Buckets(sorted, splitters)
	sizes := make([]int, len(off)-1)
	for i := range sizes {
		sizes[i] = off[i+1] - off[i]
	}
	return sizes
}

func bucketCharsGlobal(global [][]byte, splitters [][]byte) []int {
	sorted := strutil.Clone(global)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	off := Buckets(sorted, splitters)
	chars := make([]int, len(off)-1)
	for i := range chars {
		for _, s := range sorted[off[i]:off[i+1]] {
			chars[i] += len(s)
		}
	}
	return chars
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func encodeStrings(ss [][]byte) []byte {
	var buf []byte
	buf = append(buf, byte(len(ss)), byte(len(ss)>>8))
	for _, s := range ss {
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

func decodeStrings(b []byte) [][]byte {
	n := int(b[0]) | int(b[1])<<8
	out := make([][]byte, 0, n)
	pos := 2
	for i := 0; i < n; i++ {
		l := int(b[pos])
		pos++
		out = append(out, b[pos:pos+l])
		pos += l
	}
	return out
}
