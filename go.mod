module dss

go 1.24
