// Budget-mode plumbing: the per-PE glue between the public Config and the
// out-of-core pipeline in internal/core and internal/spill. With
// Config.MemBudget set, each PE gets its own spill pool (page files under
// a private temp dir, removed on success, error and panic paths alike)
// and streams its merged fragment into a sorted-run file instead of
// materializing an output arena; the public result carries the file path
// and the readers below.
package stringsort

import (
	"fmt"
	"os"
	"path/filepath"

	"dss/internal/comm"
	"dss/internal/core"
	"dss/internal/spill"
	"dss/internal/strutil"
	"dss/internal/verify"
)

// newSpillPool is the spill pool constructor — a package variable so the
// lifecycle tests can inject creation failures.
var newSpillPool = spill.NewPool

// runOpts selects the sorted-run file columns per algorithm: LCPs for the
// LCP-producing sorters, satellites for the origin-reporting ones.
func runOpts(a Algorithm) spill.RunWriterOpts {
	switch a {
	case HQuick:
		return spill.RunWriterOpts{LCP: true, Sats: true}
	case MS:
		return spill.RunWriterOpts{LCP: true}
	case PDMS, PDMSGolomb:
		return spill.RunWriterOpts{LCP: true, Sats: true}
	default: // MSSimple, FKMerge: plain strings
		return spill.RunWriterOpts{}
	}
}

// runPath names one PE's sorted-run output file inside the run directory.
func runPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("pe%d.run", rank))
}

// runDirOf recovers the run directory from a PEOutput.RunFile path.
func runDirOf(runFile string) string { return filepath.Dir(runFile) }

// runBudget executes one PE's budget-mode sort: it creates the PE's spill
// pool and sorted-run writer, dispatches the algorithm with the budget
// options set, closes the writer, and stamps the spill gauges into the
// PE's stats record (measured channel — the values vary run to run and
// must be stamped before the report is gathered). The pool's Close is
// deferred, so the page files are removed even when the sort panics.
func runBudget(c *comm.Comm, local [][]byte, cfg Config, path string) (core.Result, error) {
	sp, err := newSpillPool(spill.Config{
		Budget:   cfg.MemBudget,
		Dir:      cfg.SpillDir,
		PageSize: cfg.SpillPageSize,
	}, c.Pool())
	if err != nil {
		return core.Result{}, err
	}
	defer sp.Close()
	sp.SetTrace(c.Trace())
	f, err := os.Create(path)
	if err != nil {
		return core.Result{}, fmt.Errorf("stringsort: run file: %w", err)
	}
	defer f.Close()
	out, err := spill.NewRunWriter(f, runOpts(cfg.Algorithm), sp, cfg.SpillPageSize)
	if err != nil {
		return core.Result{}, err
	}
	res := dispatch(c, local, cfg, sp, out)
	if err := out.Close(); err != nil {
		return core.Result{}, fmt.Errorf("stringsort: run file: %w", err)
	}
	pe := c.StatsPE()
	pe.SpillBytesWritten = sp.BytesWritten()
	pe.SpillBytesRead = sp.BytesRead()
	pe.PeakLiveBytes = sp.Peak()
	return res, nil
}

// validateRun streams the PE's sorted-run file through the distributed
// verifier: local order, stored-LCP correctness and cross-PE boundaries
// in one pass, plus multiset preservation for full-string outputs —
// without materializing the fragment. Collective call, message-schedule
// compatible with the in-RAM Validate path.
func validateRun(c *comm.Comm, path string, input [][]byte, prefixOnly bool) error {
	rf, err := OpenRun(path)
	if err != nil {
		return err
	}
	defer rf.Close()
	var chk verify.StreamChecker
	var outHash uint64
	var outCount int64
	for {
		s, lcp, _, ok, err := rf.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		chk.Add(s, lcp, rf.HasLCP())
		if !prefixOnly {
			outHash = strutil.MultisetAdd(outHash, s)
		}
		outCount++
	}
	if err := chk.Finish(c, 901); err != nil {
		return err
	}
	if !prefixOnly {
		return verify.MultisetStream(c, input, outHash, outCount, 902)
	}
	return nil
}

// RunFile streams a budget-mode sorted-run output file (PEOutput.RunFile)
// item by item.
type RunFile struct {
	f  *os.File
	sc *spill.RunScanner
}

// OpenRun opens a sorted-run file for streaming.
func OpenRun(path string) (*RunFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sc, err := spill.NewRunScanner(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RunFile{f: f, sc: sc}, nil
}

// HasLCP reports whether items carry an LCP column (MS, PDMS, hQuick).
func (r *RunFile) HasLCP() bool { return r.sc.HasLCP() }

// HasOrigins reports whether items carry provenance (PDMS, hQuick).
func (r *RunFile) HasOrigins() bool { return r.sc.HasSats() }

// Next returns the next item of the run. ok=false with a nil error means
// the run ended cleanly. s aliases an internal buffer valid only until
// the next call — copy it to keep it.
func (r *RunFile) Next() (s []byte, lcp int32, origin Origin, ok bool, err error) {
	s, lcp, sat, ok, err := r.sc.Next()
	if ok && r.sc.HasSats() {
		origin = Origin{PE: int(sat >> 32), Index: int(uint32(sat))}
	}
	return s, lcp, origin, ok, err
}

// Close closes the underlying file.
func (r *RunFile) Close() error { return r.f.Close() }

// ReadRunFile loads a whole sorted-run file into memory — a convenience
// for tests and small outputs; large runs should stream through OpenRun.
func ReadRunFile(path string) (ss [][]byte, lcps []int32, origins []Origin, err error) {
	rf, err := OpenRun(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer rf.Close()
	for {
		s, lcp, o, ok, err := rf.Next()
		if err != nil {
			return nil, nil, nil, err
		}
		if !ok {
			return ss, lcps, origins, nil
		}
		ss = append(ss, append([]byte(nil), s...))
		if rf.HasLCP() {
			lcps = append(lcps, lcp)
		}
		if rf.HasOrigins() {
			origins = append(origins, o)
		}
	}
}
