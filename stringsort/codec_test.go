package stringsort

import (
	"math/rand"
	"sync"
	"testing"

	"dss/internal/input"
	"dss/internal/transport/tcp"
)

// deterministicNoWire additionally zeroes the wire-side fields, which —
// unlike everything else in deterministic() — legitimately differ when the
// configs under comparison run DIFFERENT codecs. Comparisons across
// transports or seam modes with the same codec keep using deterministic():
// wire bytes are frame-for-frame identical there.
func deterministicNoWire(st Stats) Stats {
	st = deterministic(st)
	st.WireBytes = 0
	st.WireBytesPerString = 0
	st.CompressionRatio = 0
	return st
}

// fig4Inputs builds the Figure-4 weak-scaling instance exactly as
// bench_test.go does.
func fig4Inputs(p, nPerPE, length int, ratio float64) [][][]byte {
	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.DN(input.DNConfig{
			StringsPerPE: nPerPE, Length: length, Ratio: ratio, Seed: 1,
		}, pe, p)
	}
	return inputs
}

// TestCodecsPreserveModelStatsAndShrinkWire is the acceptance assertion of
// the wire-compression subsystem on the Fig. 4 inputs: under EVERY codec
// the model statistics (model time, bytes/string, per-phase counters) and
// the sorted output are bit-identical to the undecorated run — the codec
// layer must be invisible to the paper's accounting — while the flate and
// lcp codecs ship strictly fewer wire bytes per string than the raw model
// volume.
func TestCodecsPreserveModelStatsAndShrinkWire(t *testing.T) {
	inputs := fig4Inputs(8, 1000, 100, 0.5)
	for _, algo := range []Algorithm{MS, PDMS, MSSimple} {
		base, err := Sort(inputs, Config{Algorithm: algo, Seed: 1})
		if err != nil {
			t.Fatalf("%v baseline: %v", algo, err)
		}
		if base.Stats.WireBytes != base.Stats.BytesSent || base.Stats.CompressionRatio != 1 {
			t.Fatalf("%v: undecorated run must report wire == raw, got %d vs %d",
				algo, base.Stats.WireBytes, base.Stats.BytesSent)
		}
		for _, name := range []string{"none", "flate", "lcp"} {
			res, err := Sort(inputs, Config{Algorithm: algo, Seed: 1, Codec: name})
			if err != nil {
				t.Fatalf("%v codec %s: %v", algo, name, err)
			}
			if !equalOutputs(sortOutputs(base), sortOutputs(res)) {
				t.Fatalf("%v: output differs under codec %s", algo, name)
			}
			if deterministicNoWire(res.Stats) != deterministicNoWire(base.Stats) {
				t.Fatalf("%v: model statistics differ under codec %s:\nbase:  %+v\ncodec: %+v",
					algo, name, base.Stats, res.Stats)
			}
			switch name {
			case "none":
				if res.Stats.WireBytes != res.Stats.BytesSent {
					t.Fatalf("%v: codec none changed the wire volume", algo)
				}
			default:
				if res.Stats.WireBytes >= res.Stats.BytesSent {
					t.Fatalf("%v: codec %s did not shrink the wire: %d wire vs %d raw bytes",
						algo, name, res.Stats.WireBytes, res.Stats.BytesSent)
				}
				if res.Stats.WireBytesPerString >= base.Stats.BytesPerString {
					t.Fatalf("%v: codec %s wire bytes/str %.2f not below raw bytes/str %.2f",
						algo, name, res.Stats.WireBytesPerString, base.Stats.BytesPerString)
				}
				if r := res.Stats.CompressionRatio; r <= 0 || r >= 1 {
					t.Fatalf("%v: codec %s compression ratio %.3f out of (0,1)", algo, name, r)
				}
			}
		}
	}
}

// TestCodecIdenticalAcrossTransportsAndSeams pins the stronger invariant
// for a FIXED codec: the wire bytes themselves are deterministic — the
// same frames cross the fabric whether the substrate is in-process
// mailboxes or TCP sockets, and whether the Step-3 seam is split-phase or
// bulk-synchronous. Full Stats (including the wire fields) must therefore
// be bit-identical across all four cells.
func TestCodecIdenticalAcrossTransportsAndSeams(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	inputs := genInputs(rng, 4, 130)
	for _, name := range []string{"flate", "lcp"} {
		base := Config{Algorithm: MS, Seed: 13, Validate: true, Codec: name}
		ref, err := Sort(inputs, base)
		if err != nil {
			t.Fatalf("codec %s local/split: %v", name, err)
		}
		for _, cell := range []struct {
			label string
			mut   func(*Config)
		}{
			{"tcp/split", func(c *Config) { c.Transport = TransportTCP }},
			{"local/blocking", func(c *Config) { c.BlockingExchange = true }},
			{"tcp/blocking", func(c *Config) { c.Transport = TransportTCP; c.BlockingExchange = true }},
		} {
			cfg := base
			cell.mut(&cfg)
			res, err := Sort(inputs, cfg)
			if err != nil {
				t.Fatalf("codec %s %s: %v", name, cell.label, err)
			}
			if !equalOutputs(sortOutputs(ref), sortOutputs(res)) {
				t.Fatalf("codec %s: output differs in cell %s", name, cell.label)
			}
			if deterministic(res.Stats) != deterministic(ref.Stats) {
				t.Fatalf("codec %s: statistics (incl. wire bytes) differ in cell %s:\nref:  %+v\ngot:  %+v",
					name, cell.label, ref.Stats, res.Stats)
			}
		}
	}
}

// TestRunPEMatchesSortUnderCodec runs the SPMD entry point with a codec —
// the dss-worker shape, each rank decorating its own TCP endpoint — and
// requires fragment-identical output and bit-identical statistics
// (including the wire counters, which travel through AllgatherReport)
// compared to the in-process Sort with the same codec.
func TestRunPEMatchesSortUnderCodec(t *testing.T) {
	const p = 4
	rng := rand.New(rand.NewSource(408))
	inputs := genInputs(rng, p, 120)
	cfg := Config{Algorithm: PDMS, Seed: 29, Reconstruct: true, Codec: "flate"}

	want, err := Sort(inputs, cfg)
	if err != nil {
		t.Fatalf("in-process sort: %v", err)
	}
	if want.Stats.WireBytes >= want.Stats.BytesSent {
		t.Fatalf("flate did not shrink this instance: %d wire vs %d raw",
			want.Stats.WireBytes, want.Stats.BytesSent)
	}

	f, err := tcp.NewLoopback(p)
	if err != nil {
		t.Fatalf("loopback fabric: %v", err)
	}
	defer f.Close()

	runs := make([]*PERun, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			runs[rank], errs[rank] = RunPE(f.Endpoint(rank), inputs[rank], cfg)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank := 0; rank < p; rank++ {
		if !equalOutputs(want.PEs[rank].Strings, runs[rank].Output.Strings) {
			t.Fatalf("rank %d: SPMD fragment differs from Sort fragment", rank)
		}
		if deterministic(runs[rank].Stats) != deterministic(want.Stats) {
			t.Fatalf("rank %d: SPMD statistics differ from Sort:\nsort: %+v\nspmd: %+v",
				rank, want.Stats, runs[rank].Stats)
		}
	}
}

// TestConfigRejectsUnknownCodec pins the validation path of both entry
// points.
func TestConfigRejectsUnknownCodec(t *testing.T) {
	if _, err := Sort([][][]byte{{[]byte("a")}}, Config{Codec: "zstd"}); err == nil {
		t.Fatal("Sort accepted an unknown codec")
	}
	f, err := tcp.NewLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := RunPE(f.Endpoint(0), nil, Config{Codec: "zstd"}); err == nil {
		t.Fatal("RunPE accepted an unknown codec")
	}
}
