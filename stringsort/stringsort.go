// Package stringsort is the public API of the distributed string sorting
// library, a Go reproduction of "Communication-Efficient String Sorting"
// (Bingmann, Sanders, Schimek; IPDPS 2020). It sorts large string sets on
// a simulated distributed-memory machine with p processing elements and
// reports exact communication statistics alongside a model running time.
//
// Quick start:
//
//	out, err := stringsort.Sort(inputs, stringsort.Config{
//		P:         8,
//		Algorithm: stringsort.PDMS,
//	})
//
// where inputs[pe] is PE pe's local string array. The result contains each
// PE's fragment of the globally sorted sequence, the per-fragment LCP
// arrays, and the communication/work statistics the paper's evaluation is
// based on. See the examples/ directory for complete programs.
package stringsort

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dss/internal/comm"
	"dss/internal/core"
	"dss/internal/dupdetect"
	"dss/internal/par"
	"dss/internal/partition"
	"dss/internal/spill"
	"dss/internal/stats"
	"dss/internal/trace"
	"dss/internal/transport"
	"dss/internal/transport/chaos"
	"dss/internal/transport/codec"
	"dss/internal/transport/local"
	"dss/internal/transport/tcp"
	"dss/internal/verify"
)

// Algorithm selects one of the paper's six evaluated sorting algorithms.
type Algorithm int

// The algorithms of the Section VII evaluation.
const (
	// HQuick is hypercube quicksort adapted to strings (Section IV): the
	// atomic baseline with polylogarithmic latency.
	HQuick Algorithm = iota
	// FKMerge is the Fischer-Kurpicz distributed mergesort (Section II-C),
	// the only previously published distributed string sorter.
	FKMerge
	// MSSimple is Distributed String Merge Sort with no LCP optimizations.
	MSSimple
	// MS is Distributed String Merge Sort with LCP compression and
	// LCP-aware merging (Section V).
	MS
	// PDMS is Distributed Prefix-Doubling String Merge Sort (Section VI).
	PDMS
	// PDMSGolomb is PDMS with Golomb-coded duplicate detection messages.
	PDMSGolomb
)

// Algorithms lists all algorithms in evaluation order.
var Algorithms = []Algorithm{FKMerge, HQuick, MSSimple, MS, PDMSGolomb, PDMS}

// String returns the paper's name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case HQuick:
		return "hQuick"
	case FKMerge:
		return "FKmerge"
	case MSSimple:
		return "MS-simple"
	case MS:
		return "MS"
	case PDMS:
		return "PDMS"
	case PDMSGolomb:
		return "PDMS-Golomb"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves a (case-insensitive) algorithm name.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("stringsort: unknown algorithm %q (have %v)", name, Algorithms)
}

// AlgorithmNames returns the canonical algorithm names in evaluation order,
// comma-separated — the single source for CLI usage strings.
func AlgorithmNames() string {
	names := make([]string, len(Algorithms))
	for i, a := range Algorithms {
		names[i] = a.String()
	}
	return strings.Join(names, ", ")
}

// ParsePeers splits a comma-separated host:port peer table, trimming
// whitespace around each entry. Empty input yields nil.
func ParsePeers(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// Transport selects the message substrate a Sort run executes on. The
// algorithms and the reported statistics are substrate-independent: byte
// accounting happens at the comm layer, so model time and bytes/string are
// bit-identical across transports.
type Transport int

const (
	// TransportLocal runs every PE as a goroutine with in-process
	// mailboxes (the default; zero setup cost).
	TransportLocal Transport = iota
	// TransportTCP runs every PE over real TCP sockets — loopback ports
	// chosen automatically, or the addresses in Config.TCPPeers. The PEs
	// still live in this process; use RunPE and cmd/dss-worker to spread
	// them over OS processes and hosts.
	TransportTCP
)

// Transports lists the selectable substrates.
var Transports = []Transport{TransportLocal, TransportTCP}

// String returns the canonical transport name.
func (t Transport) String() string {
	switch t {
	case TransportLocal:
		return "local"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// ParseTransport resolves a (case-insensitive) transport name.
func ParseTransport(name string) (Transport, error) {
	for _, t := range Transports {
		if strings.EqualFold(t.String(), name) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("stringsort: unknown transport %q (have %v)", name, Transports)
}

// Origin identifies the provenance of a PDMS output prefix.
type Origin struct {
	PE    int
	Index int
}

// Config configures one sorting run.
type Config struct {
	// P is the number of processing elements (default: len(inputs)).
	P int
	// Algorithm selects the sorter (default MS).
	Algorithm Algorithm
	// Oversampling is the per-PE sample count v of Step 2; 0 lets the
	// algorithm pick v = 2p−1 (Θ(p), quantile-aligned).
	Oversampling int
	// CharSampling switches to character-based splitter sampling
	// (Theorem 3 load balancing; the skew experiment of Section VII-E).
	CharSampling bool
	// Eps is PDMS's prefix growth factor (default 1 = doubling).
	Eps float64
	// TieBreak partitions by (string, origin) pairs in the MS family,
	// spreading duplicated strings evenly over PEs (Section VIII).
	TieBreak bool
	// RandomSampling draws random instead of regular samples (Section VIII).
	RandomSampling bool
	// Seed drives all randomized components.
	Seed uint64
	// Model overrides the α-β cost model used for the model time.
	Model *stats.CostModel
	// Validate runs the distributed verifier after sorting and fails the
	// run on any violation (sorting statistics unaffected; validation
	// volume is excluded).
	Validate bool
	// Reconstruct materializes full strings for PDMS results (extra
	// communication excluded from the reported statistics).
	Reconstruct bool
	// Transport selects the message substrate (default TransportLocal).
	Transport Transport
	// TCPPeers optionally pins the TCP transport's bind addresses, one
	// host:port per PE (len must equal P). Empty means automatic loopback
	// ports. Ignored by the local transport.
	TCPPeers []string
	// BlockingExchange selects the bulk-synchronous Step-3 seam (exchange
	// completes before any run is decoded) instead of the default
	// split-phase one that decodes each incoming run on arrival. The
	// deterministic statistics (model time, bytes/string) are identical
	// either way; blocking mode exists for differential testing and as the
	// reference point of the overlap measurements.
	BlockingExchange bool
	// StreamingMerge selects the streaming Step-3→Step-4 seam: buckets
	// ship as chunked transfers feeding incremental run readers, and the
	// Step-4 loser tree starts on partially decoded runs — merging begins
	// before the last exchange frame arrives (reported as
	// Stats.MergeLeadMS). Sorted output and the deterministic statistics
	// are bit-identical to the eager seam under every transport, codec and
	// exchange mode; combining with BlockingExchange runs the chunked
	// machinery bulk-synchronously (the differential reference).
	StreamingMerge bool
	// StreamChunk bounds the streaming frame payload in bytes (0 = the
	// default, 8 KiB). Only meaningful with StreamingMerge.
	StreamChunk int
	// Codec names the wire codec decorating the transport ("", "none",
	// "flate", "lcp"): frames are compressed before they cross the fabric
	// and restored on receive. The paper's statistics are unaffected —
	// model time and bytes/string are billed on the raw payloads and stay
	// bit-identical under every codec — while Stats.WireBytes reports what
	// actually crossed the wire. Works identically over the local and TCP
	// substrates and under both exchange seams.
	Codec string
	// CodecMinSize is the compression threshold in bytes: frames smaller
	// than this ship uncompressed (0 means the codec default, 64).
	CodecMinSize int
	// Cores bounds the intra-PE work pool: each PE spreads its Step-1
	// local sort, Step-3 bucket encode and run decode over up to Cores
	// workers. 0 selects runtime.GOMAXPROCS(0); 1 forces the exact
	// sequential path. The deterministic statistics — sorted output, LCPs,
	// work units, model time, bytes/string — are bit-identical at every
	// width; only wall clock (and the measured CPU channel) changes.
	Cores int
	// ParMergeMin gates the partitioned parallel Step-4 merge by received
	// strings per PE: below the threshold the merge runs sequentially even
	// on a wide pool. 0 selects the default (2048); negative disables the
	// parallel merge entirely. Output and every deterministic statistic are
	// identical at any value — the partitioned merge reproduces the
	// sequential merge byte for byte (strings, LCPs, origins, work).
	ParMergeMin int
	// MemBudget > 0 switches the run to the bounded-memory out-of-core
	// pipeline: each PE meters the Step-3 run arenas against this per-PE
	// byte budget, spills whole runs to page files once over budget, and
	// streams its merged fragment to a sorted-run file instead of
	// materializing it (PEOutput.RunFile; Strings/LCPs/Origins stay nil).
	// Sorted output bytes and the deterministic statistics are identical to
	// the unbudgeted run; peak metered memory stays within the budget plus
	// a fixed per-PE overhead (see README, "Out-of-core pipeline"). The
	// Reconstruct option is ignored in budget mode — PDMS run files carry
	// each prefix's origin for the caller to resolve. hQuick bounds only
	// its output accumulation (its doubling working set is inherently
	// resident).
	MemBudget int64
	// SpillDir is where budget-mode page files and run files live (""
	// means the OS temp dir). Page files are removed when the run ends,
	// on success and failure alike.
	SpillDir string
	// SpillPageSize bounds the spill page and run-writer buffer size in
	// bytes (0 = the default, 256 KiB). Only meaningful with MemBudget.
	SpillPageSize int
	// Trace, when non-empty, writes a Chrome trace-event JSON timeline of
	// the run to this file: per-PE phase spans, per-frame transport events,
	// worker-goroutine busy spans, merge handoff/seam instants and spill
	// counter samples, loadable in Perfetto (ui.perfetto.dev) or
	// chrome://tracing. Tracing never touches the deterministic statistics
	// — model time and bytes/string stay bit-identical with tracing on or
	// off. Under RunPE the per-process buffers are gathered to rank 0
	// (clock-aligned) and only rank 0 writes the file.
	Trace string
	// TraceCapacity bounds each PE's trace ring in events (0 = the default,
	// 32768). The ring keeps the newest events; the export repairs span
	// pairs broken by wraparound and reports the dropped count.
	TraceCapacity int
	// Chaos names a fault-injection severity level ("delay", "reorder",
	// "drop"; see transport/chaos) decorating the transport UNDER the wire
	// codec: frames are delayed, reordered across independent streams,
	// and — over TCP — established connections are killed mid-exchange and
	// resumed via the transport's reconnect-with-resend machinery. The
	// sorted output and the deterministic statistics are bit-identical to
	// an undisturbed run; only the measured channel (wall clock,
	// Stats.Reconnects) shows the faults. Empty disables chaos.
	Chaos string
	// ChaosSeed selects the deterministic fault schedule (frame delays and
	// drop points are a pure function of seed, rank and send sequence).
	ChaosSeed uint64
	// NetRetries bounds how many times each TCP pairwise connection may be
	// re-established after a drop before the run fails. 0 means the
	// transport default (8); negative disables reconnection — the first
	// drop kills the run. Ignored by the local transport.
	NetRetries int
	// NetTimeout bounds each TCP reconnect attempt (redial backoff window
	// on the dialing side, replacement-arrival wait on the accepting
	// side). 0 means the transport default (10 s).
	NetTimeout time.Duration
}

// PEOutput is one PE's fragment of the sorted result.
type PEOutput struct {
	// Strings is the locally sorted fragment (globally ordered by PE).
	// For PDMS runs without Reconstruct these are distinguishing prefixes.
	Strings [][]byte
	// LCPs is the fragment's LCP array (nil for MS-simple and FKmerge).
	LCPs []int32
	// Origins is the provenance of each string (PDMS only).
	Origins []Origin
	// RunFile is the PE's sorted-run output file in budget mode
	// (Config.MemBudget > 0); Strings/LCPs/Origins are nil then. Stream it
	// with OpenRun or load it with ReadRunFile. The file lives under
	// Config.SpillDir until the caller removes it.
	RunFile string
	// RunCount is the number of items in RunFile (budget mode only).
	RunCount int64
}

// Stats summarizes one run's cost, the two metrics of Figures 4 and 5.
// All fields except OverlapMS, MaxOverlapMS, WallMS and WallTable are
// deterministic: bit-identical across transports, seam modes (blocking vs
// split-phase) and runs. Those four wall-clock fields are measurements of
// the overlap model and vary run to run; comparisons across backends must
// ignore them (zero the fields before ==, as the package tests do).
type Stats struct {
	ModelTime      float64 // α-β model running time in seconds
	BytesSent      int64   // total payload bytes sent between PEs
	BytesPerString float64 // BytesSent / global input size
	MaxBytesSent   int64   // bottleneck send volume: max over PEs
	MaxBytesRecv   int64   // bottleneck receive volume: max over PEs
	MeanBytesRecv  float64 // average per-PE receive volume
	Messages       int64   // total point-to-point messages
	Work           int64   // total local work units (characters)
	Imbalance      float64 // max/mean per-PE work
	PhaseTable     string  // human-readable per-phase breakdown
	// WireBytes is the total post-codec volume that actually crossed the
	// fabric: equal to BytesSent without a codec, smaller when Config.Codec
	// compresses the frames. Deterministic for a fixed codec (frame
	// encodings are pure functions of their payloads).
	WireBytes int64
	// WireBytesPerString is WireBytes over the global input size — the
	// wire-side counterpart of BytesPerString.
	WireBytesPerString float64
	// CompressionRatio is WireBytes / BytesSent (1.0 means verbatim).
	CompressionRatio float64
	// OverlapMS is the total communication time (summed PE-milliseconds,
	// wall clock) the split-phase Step-3 exchange hid under Step-4 decode
	// work — time a bulk-synchronous seam would have spent waiting. As a
	// sum over PEs it can exceed WallMS; compare MaxOverlapMS to wall
	// spans instead. Zero with BlockingExchange.
	OverlapMS float64
	// MaxOverlapMS is the bottleneck overlap: the largest per-PE hidden
	// communication time in ms, directly comparable to WallMS.
	MaxOverlapMS float64
	// WallMS is the slowest PE's total wall-clock time in ms (measured, not
	// modeled).
	WallMS float64
	// MergeLeadMS is the streaming seam's merge lead: the largest per-PE
	// span between the loser tree's first merged output and that PE's LAST
	// Step-3 frame arrival, in ms. Positive means merging demonstrably
	// began while exchange frames were still in flight; 0 under the eager
	// seams (the milestone is not recorded there). Measured, not modeled.
	MergeLeadMS float64
	// WallTable is the human-readable per-phase breakdown of the measured
	// wall spans and overlap (nondeterministic, like OverlapMS/WallMS).
	WallTable string
	// Cores is the intra-PE work pool width the run executed with (the
	// maximum over PEs; they are normally identical). Deterministic: a
	// configuration echo, not a measurement.
	Cores int
	// CPUMS is the total worker-busy time in PE-milliseconds summed over
	// all PEs and phases — the measured CPU channel of the intra-PE pool.
	// CPUMS exceeding a phase's wall span proves parallel execution.
	// Nondeterministic, like WallMS; zero the field before cross-backend
	// comparisons.
	CPUMS float64
	// MergeWallMS is the merge phase's bottleneck wall-clock span in ms.
	// Nondeterministic, like WallMS.
	MergeWallMS float64
	// MergeCPUMS is the merge phase's summed worker-busy time in
	// PE-milliseconds. MergeCPUMS exceeding MergeWallMS proves the Step-4
	// merge itself ran in parallel (the partitioned loser trees).
	// Nondeterministic, like CPUMS.
	MergeCPUMS float64
	// PeakMemBytes is the bottleneck peak of metered live bytes over PEs
	// in budget mode (run arenas + spill buffers); 0 without a budget.
	// Measured, not modeled: the exact peak depends on arrival order, so
	// zero the field before cross-backend comparisons like the other
	// wall-clock fields.
	PeakMemBytes int64
	// SpillBytesWritten is the machine-wide volume written to spill page
	// files; 0 without a budget or when the input fit in memory.
	// Nondeterministic, like PeakMemBytes.
	SpillBytesWritten int64
	// SpillBytesRead is the machine-wide volume paged back in from spill
	// files during the merge. Nondeterministic, like PeakMemBytes.
	SpillBytesRead int64
	// Reconnects is the machine-wide count of TCP connections
	// re-established after a drop (injected or real); 0 means the fabric
	// stayed up end to end. Measured, not modeled: zero the field before
	// cross-run comparisons like the other wall-clock fields.
	Reconnects int64
	// ResentFrames and ResentBytes are the frames and payload bytes
	// replayed from resend rings to resume dropped connections. Resends
	// happen below the accounting boundary: these gauges move while
	// ModelTime, BytesSent and Messages stay bit-identical.
	// Nondeterministic, like Reconnects.
	ResentFrames int64
	ResentBytes  int64
}

// WriteSummary writes the human-readable run summary that dss-sort and
// dss-worker print to stderr. One shared copy — like the tuning flags —
// so the two binaries' output cannot drift apart: the CI smoke matrix
// greps these exact labels. machine describes the execution shape (e.g.
// "8 PEs" or "4 worker processes"); n is the global input string count.
func (st Stats) WriteSummary(w io.Writer, algo Algorithm, machine string, n int) {
	fmt.Fprintf(w, "algorithm:        %v on %s\n", algo, machine)
	fmt.Fprintf(w, "strings:          %d\n", n)
	fmt.Fprintf(w, "model time:       %.4f s\n", st.ModelTime)
	fmt.Fprintf(w, "bytes sent:       %d (%.1f per string)\n", st.BytesSent, st.BytesPerString)
	fmt.Fprintf(w, "wire bytes:       %d (%.1f per string, %.3fx raw)\n",
		st.WireBytes, st.WireBytesPerString, st.CompressionRatio)
	fmt.Fprintf(w, "messages:         %d\n", st.Messages)
	fmt.Fprintf(w, "work imbalance:   %.3f\n", st.Imbalance)
	fmt.Fprintf(w, "cores:            %d per PE (%.3f PE-ms worker CPU)\n", st.Cores, st.CPUMS)
	fmt.Fprintf(w, "wall time:        %.3f ms (slowest PE)\n", st.WallMS)
	fmt.Fprintf(w, "overlap:          %.3f ms max per PE, %.3f PE-ms summed (comm hidden under compute)\n",
		st.MaxOverlapMS, st.OverlapMS)
	fmt.Fprintf(w, "merge lead:       %.3f ms (first merged string ahead of the last Step-3 frame; 0 = eager seam)\n",
		st.MergeLeadMS)
	fmt.Fprintf(w, "merge par:        %.3f PE-ms merge CPU over %.3f ms merge wall (CPU > wall = partitioned merge engaged)\n",
		st.MergeCPUMS, st.MergeWallMS)
	fmt.Fprintf(w, "spill:            %d bytes written, %d read back, %d peak live (0 = everything stayed in memory)\n",
		st.SpillBytesWritten, st.SpillBytesRead, st.PeakMemBytes)
	fmt.Fprintf(w, "net:              %d reconnects, %d frames resent (%d bytes; all-zero = no connection ever dropped)\n",
		st.Reconnects, st.ResentFrames, st.ResentBytes)
	fmt.Fprintf(w, "%s", st.PhaseTable)
	fmt.Fprintf(w, "%s", st.WallTable)
}

// statsFromReport flattens a machine-wide report into the public Stats.
func statsFromReport(rep *stats.Report, n int64) Stats {
	return Stats{
		ModelTime:          rep.ModelTime(),
		BytesSent:          rep.TotalBytesSent(),
		BytesPerString:     rep.BytesPerString(n),
		MaxBytesSent:       rep.MaxBytesSent(),
		MaxBytesRecv:       rep.MaxBytesRecv(),
		MeanBytesRecv:      rep.MeanBytesRecv(),
		Messages:           rep.TotalMessages(),
		Work:               rep.TotalWork(),
		Imbalance:          rep.Imbalance(),
		PhaseTable:         rep.Table(),
		WireBytes:          rep.TotalWireBytesSent(),
		WireBytesPerString: rep.WireBytesPerString(n),
		CompressionRatio:   rep.CompressionRatio(),
		OverlapMS:          float64(rep.TotalOverlapNS()) / 1e6,
		MaxOverlapMS:       float64(rep.MaxOverlapNS()) / 1e6,
		WallMS:             float64(rep.MaxWallNS()) / 1e6,
		MergeLeadMS:        float64(rep.MaxMergeLeadNS()) / 1e6,
		WallTable:          rep.WallTable(),
		Cores:              int(rep.MaxCores()),
		CPUMS:              float64(rep.TotalCPUNS()) / 1e6,
		MergeWallMS:        float64(rep.PhaseWallNS(stats.PhaseMerge)) / 1e6,
		MergeCPUMS:         float64(rep.PhaseCPUNS(stats.PhaseMerge)) / 1e6,
		PeakMemBytes:       rep.MaxPeakLiveBytes(),
		SpillBytesWritten:  rep.TotalSpillBytesWritten(),
		SpillBytesRead:     rep.TotalSpillBytesRead(),
		Reconnects:         rep.TotalReconnects(),
		ResentFrames:       rep.TotalResentFrames(),
		ResentBytes:        rep.TotalResentBytes(),
	}
}

// Result is the outcome of a distributed sorting run.
type Result struct {
	PEs        []PEOutput
	Stats      Stats
	PrefixOnly bool // PDMS without Reconstruct: fragments hold prefixes
}

// Sort sorts the distributed string set inputs (inputs[pe] = PE pe's local
// strings) with the configured algorithm and returns the per-PE fragments
// and run statistics. Input arrays are not modified.
func Sort(inputs [][][]byte, cfg Config) (*Result, error) {
	p := cfg.P
	if p == 0 {
		p = len(inputs)
	}
	if p <= 0 {
		return nil, fmt.Errorf("stringsort: need at least one PE")
	}
	if len(inputs) > p {
		return nil, fmt.Errorf("stringsort: %d input fragments for %d PEs", len(inputs), p)
	}
	// Oversampling 0 lets the algorithms pick v = Θ(p) (Theorems 2–4).
	machine, err := newMachine(p, cfg)
	if err != nil {
		return nil, err
	}
	// The machine is closed explicitly on the success path so
	// transport-level failures the algorithms never blocked on — a reader
	// that hit a decode error, an exhausted reconnect budget — surface in
	// the run's result instead of vanishing with a deferred Close.
	closed := false
	defer func() {
		if !closed {
			machine.Close()
		}
	}()
	if cfg.Model != nil {
		machine.SetModel(*cfg.Model)
	}
	machine.SetPool(par.New(cfg.Cores))
	if cfg.Trace != "" || trace.LiveOn() {
		machine.EnableTrace(cfg.TraceCapacity)
	}

	local := func(pe int) [][]byte {
		if pe < len(inputs) {
			return inputs[pe]
		}
		return nil
	}
	results := make([]core.Result, p)
	// Budget mode: the PEs stream their merged fragments into sorted-run
	// files inside one fresh directory under cfg.SpillDir. The directory
	// outlives Sort on success (the caller reads the run files and removes
	// it) but is torn down on every error path.
	var runDir string
	if cfg.MemBudget > 0 {
		runDir, err = os.MkdirTemp(cfg.SpillDir, "dss-runs-")
		if err != nil {
			return nil, fmt.Errorf("stringsort: run dir: %w", err)
		}
	}
	fail := func(err error) (*Result, error) {
		if runDir != "" {
			os.RemoveAll(runDir)
		}
		return nil, err
	}
	err = machine.Run(func(c *comm.Comm) error {
		if cfg.MemBudget > 0 {
			res, err := runBudget(c, local(c.Rank()), cfg, runPath(runDir, c.Rank()))
			if err != nil {
				return err
			}
			results[c.Rank()] = res
			return nil
		}
		results[c.Rank()] = dispatch(c, local(c.Rank()), cfg, nil, nil)
		return nil
	})
	if err != nil {
		return fail(err)
	}

	// Snapshot the sorting statistics before any post-processing
	// communication (validation, reconstruction).
	rep := machine.Report()
	var n int64
	for pe := 0; pe < p; pe++ {
		n += int64(len(local(pe)))
	}
	st := statsFromReport(rep, n)

	prefixOnly := results[0].PrefixOnly
	// Reconstruction needs the materialized prefixes; in budget mode the
	// fragments live in run files carrying each prefix's origin instead.
	if prefixOnly && cfg.Reconstruct && cfg.MemBudget == 0 {
		err := machine.Run(func(c *comm.Comm) error {
			full := core.Reconstruct(c, results[c.Rank()], local(c.Rank()), 900)
			results[c.Rank()].Strings = full
			results[c.Rank()].LCPs = nil // prefix LCPs do not apply to full strings
			results[c.Rank()].PrefixOnly = false
			return nil
		})
		if err != nil {
			return nil, err
		}
		prefixOnly = false
	}

	if cfg.Validate {
		err := machine.Run(func(c *comm.Comm) error {
			if cfg.MemBudget > 0 {
				// Stream the run file through the verifier — same collective
				// schedule as the in-RAM checks, no materialized fragment.
				return validateRun(c, runPath(runDir, c.Rank()), local(c.Rank()), prefixOnly)
			}
			res := results[c.Rank()]
			// One fused pass validates local order and the LCP array
			// together (the sorters already produced the LCPs; recomputing
			// them separately from an IsSorted scan would inspect every
			// character twice). Algorithms without LCP output fall back to
			// the plain order check.
			if err := verify.SortednessLCP(c, res.Strings, res.LCPs, 901); err != nil {
				return err
			}
			if !prefixOnly {
				if err := verify.Multiset(c, local(c.Rank()), res.Strings, 902); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fail(err)
		}
	}

	// The timeline is written after every post-processing step so the
	// validation/reconstruction rounds appear on it too; the deterministic
	// statistics were snapshotted long before and are unaffected.
	if cfg.Trace != "" {
		if err := trace.WriteFile(cfg.Trace, machine.TraceBuffers()); err != nil {
			return fail(fmt.Errorf("stringsort: trace: %w", err))
		}
	}

	closed = true
	if err := machine.Close(); err != nil {
		return fail(fmt.Errorf("stringsort: transport: %w", err))
	}

	out := &Result{PEs: make([]PEOutput, p), Stats: st, PrefixOnly: prefixOnly}
	for pe := 0; pe < p; pe++ {
		peOut := PEOutput{Strings: results[pe].Strings, LCPs: results[pe].LCPs}
		if results[pe].Origins != nil {
			peOut.Origins = make([]Origin, len(results[pe].Origins))
			for i, o := range results[pe].Origins {
				peOut.Origins[i] = Origin{PE: int(o.PE), Index: int(o.Index)}
			}
		}
		if cfg.MemBudget > 0 {
			peOut.RunFile = runPath(runDir, pe)
			peOut.RunCount = results[pe].Drained
		}
		out.PEs[pe] = peOut
	}
	return out, nil
}

// newMachine builds the comm machine for the configured transport,
// decorating the fabric with the chaos fault injector (innermost, so
// faults hit the post-codec wire frames) and the wire codec when either
// is selected.
func newMachine(p int, cfg Config) (*comm.Machine, error) {
	var f transport.Fabric
	switch cfg.Transport {
	case TransportLocal:
		f = local.New(p)
	case TransportTCP:
		var err error
		tcfg := tcp.Config{
			ReconnectTimeout: cfg.NetTimeout,
			MaxReconnects:    cfg.NetRetries,
		}
		if len(cfg.TCPPeers) > 0 {
			if len(cfg.TCPPeers) != p {
				return nil, fmt.Errorf("stringsort: %d TCP peer addresses for %d PEs", len(cfg.TCPPeers), p)
			}
			f, err = tcp.NewFabricConfig(cfg.TCPPeers, tcfg)
		} else {
			f, err = tcp.NewLoopbackConfig(p, tcfg)
		}
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("stringsort: unknown transport %v", cfg.Transport)
	}
	f, err := wrapChaos(f, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	f, err = wrapCodec(f, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	return comm.NewOver(f), nil
}

// wrapChaos decorates the fabric with the configured fault-injection
// schedule ("" disables chaos, the production default). Chaos wraps the
// raw backend directly — the codec decorator goes on top — so injected
// delays, reorders and connection drops disturb the frames actually on
// the wire.
func wrapChaos(f transport.Fabric, cfg Config) (transport.Fabric, error) {
	if cfg.Chaos == "" {
		return f, nil
	}
	ccfg, err := chaos.Parse(cfg.Chaos)
	if err != nil {
		return f, fmt.Errorf("stringsort: %w", err)
	}
	ccfg.Seed = cfg.ChaosSeed
	return chaos.WrapFabric(f, ccfg), nil
}

// wrapCodec decorates the fabric with the configured wire codec. The
// default ("" / "none") leaves the fabric untouched — the raw hot path
// stays exactly as before, and the comm layer mirrors raw volume into the
// wire counters so Stats.WireBytes is meaningful either way.
func wrapCodec(f transport.Fabric, cfg Config) (transport.Fabric, error) {
	name, err := codec.Parse(cfg.Codec)
	if err != nil {
		return f, err
	}
	if name == "none" {
		return f, nil
	}
	return codec.WrapFabric(f, codec.Config{Name: name, MinSize: cfg.CodecMinSize})
}

// dispatch runs the configured algorithm on one PE. sp and out are nil in
// the default in-RAM mode; budget mode (runBudget) passes the PE's spill
// pool and sorted-run writer through to the algorithm's budget options.
func dispatch(c *comm.Comm, ss [][]byte, cfg Config, sp *spill.Pool, out *spill.RunWriter) core.Result {
	sampling := partition.StringSampling
	if cfg.CharSampling {
		sampling = partition.CharSampling
	}
	switch cfg.Algorithm {
	case HQuick:
		return core.HQuick(c, ss, core.HQOptions{
			GroupID: 1, Seed: cfg.Seed, TrackPhases: true,
			BlockingExchange: cfg.BlockingExchange,
			StreamingMerge:   cfg.StreamingMerge, StreamChunk: cfg.StreamChunk,
			Spill: sp, Out: out,
		})
	case FKMerge:
		return core.FKMerge(c, ss, core.FKOptions{
			GroupID: 1, BlockingExchange: cfg.BlockingExchange,
			StreamingMerge: cfg.StreamingMerge, StreamChunk: cfg.StreamChunk,
			ParMergeMin: cfg.ParMergeMin,
			Spill:       sp, Out: out,
		})
	case MSSimple:
		o := core.MSSimple()
		o.GroupID = 1
		o.Seed = cfg.Seed
		o.V = cfg.Oversampling
		o.Sampling = sampling
		o.TieBreak = cfg.TieBreak
		o.RandomSampling = cfg.RandomSampling
		o.BlockingExchange = cfg.BlockingExchange
		o.StreamingMerge = cfg.StreamingMerge
		o.StreamChunk = cfg.StreamChunk
		o.ParMergeMin = cfg.ParMergeMin
		o.Spill = sp
		o.Out = out
		return core.MergeSort(c, ss, o)
	case MS:
		o := core.DefaultMS()
		o.GroupID = 1
		o.Seed = cfg.Seed
		o.V = cfg.Oversampling
		o.Sampling = sampling
		o.TieBreak = cfg.TieBreak
		o.RandomSampling = cfg.RandomSampling
		o.BlockingExchange = cfg.BlockingExchange
		o.StreamingMerge = cfg.StreamingMerge
		o.StreamChunk = cfg.StreamChunk
		o.ParMergeMin = cfg.ParMergeMin
		o.Spill = sp
		o.Out = out
		return core.MergeSort(c, ss, o)
	case PDMS, PDMSGolomb:
		o := core.DefaultPDMS()
		o.Golomb = cfg.Algorithm == PDMSGolomb
		o.GroupID = 1
		o.Seed = cfg.Seed
		o.V = cfg.Oversampling
		if cfg.Eps > 0 {
			o.Eps = cfg.Eps
		}
		if cfg.CharSampling {
			o.StringSamplingOverride = false
		}
		o.BlockingExchange = cfg.BlockingExchange
		o.StreamingMerge = cfg.StreamingMerge
		o.StreamChunk = cfg.StreamChunk
		o.ParMergeMin = cfg.ParMergeMin
		o.Spill = sp
		o.Out = out
		return core.PDMS(c, ss, o)
	default:
		panic(fmt.Sprintf("stringsort: unknown algorithm %v", cfg.Algorithm))
	}
}

// Estimate is the result of EstimateDN.
type Estimate struct {
	// AvgDist is the estimated average distinguishing prefix length D/n.
	AvgDist float64
	// MaxDist is the largest DIST seen in the sample (lower bound on d̂).
	MaxDist int
	// SampleSize is the number of strings sampled globally.
	SampleSize int
	// Suggested is the algorithm the estimate recommends: PDMS when the
	// distinguishing prefixes are a small fraction of the data, MS
	// otherwise (the Section VIII algorithm-selection use case).
	Suggested Algorithm
}

// EstimateDN approximates D/n of a distributed string set by gossiping a
// random sample of about sampleSize strings — the Section VIII technique
// for choosing a sorting strategy without sorting ("when D/n is small, we
// can use string sorting based algorithms"). Far cheaper than sorting:
// the communication volume is O(sampleSize · avg length) in total.
func EstimateDN(inputs [][][]byte, sampleSize int, seed uint64) (Estimate, error) {
	p := len(inputs)
	if p == 0 {
		return Estimate{}, fmt.Errorf("stringsort: need at least one PE")
	}
	machine := comm.New(p)
	results := make([]dupdetect.EstimateResult, p)
	var avgLen float64
	var total int64
	for _, in := range inputs {
		for _, s := range in {
			total += int64(len(s))
		}
	}
	var n int64
	for _, in := range inputs {
		n += int64(len(in))
	}
	if n > 0 {
		avgLen = float64(total) / float64(n)
	}
	err := machine.Run(func(c *comm.Comm) error {
		results[c.Rank()] = dupdetect.EstimateD(c, inputs[c.Rank()], sampleSize, seed, 1)
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	r := results[0]
	est := Estimate{AvgDist: r.AvgDist, MaxDist: r.MaxDist, SampleSize: r.SampleSize}
	// Prefix doubling pays off when the distinguishing prefixes are well
	// below the average string length; otherwise its overhead loses to
	// plain LCP compression (the Fig. 4 crossover).
	if avgLen > 0 && r.AvgDist < 0.5*avgLen {
		est.Suggested = PDMS
	} else {
		est.Suggested = MS
	}
	return est, nil
}

// SortStrings is a convenience wrapper for single-node callers: it
// distributes the strings round-robin over cfg.P PEs, sorts, and returns
// the concatenated sorted strings. PDMS results are reconstructed to full
// strings automatically.
func SortStrings(ss []string, cfg Config) ([]string, error) {
	if cfg.P <= 0 {
		cfg.P = 4
	}
	inputs := make([][][]byte, cfg.P)
	for i, s := range ss {
		pe := i % cfg.P
		inputs[pe] = append(inputs[pe], []byte(s))
	}
	cfg.Reconstruct = true
	res, err := Sort(inputs, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ss))
	for _, pe := range res.PEs {
		if pe.RunFile != "" {
			// Budget mode: the fragment lives in a sorted-run file.
			err := func() error {
				rf, err := OpenRun(pe.RunFile)
				if err != nil {
					return err
				}
				defer rf.Close()
				for {
					s, _, _, ok, err := rf.Next()
					if err != nil {
						return err
					}
					if !ok {
						return nil
					}
					out = append(out, string(s))
				}
			}()
			if err != nil {
				return nil, err
			}
			continue
		}
		for _, s := range pe.Strings {
			out = append(out, string(s))
		}
	}
	if len(res.PEs) > 0 && res.PEs[0].RunFile != "" {
		os.RemoveAll(runDirOf(res.PEs[0].RunFile))
	}
	return out, nil
}
