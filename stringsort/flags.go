package stringsort

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dss/internal/transport/chaos"
	"dss/internal/transport/codec"
)

// TuningFlags bundles the algorithm-tuning command-line flags shared by
// cmd/dss-sort and cmd/dss-worker. Both binaries register the identical
// set through RegisterTuningFlags, so they cannot drift apart: every knob
// that shapes the sort itself (algorithm, sampling, exchange seam,
// validation, seed) is accepted by both. Only the flags that describe HOW
// the machine is assembled differ between them — dss-sort owns -p,
// -transport and -peers (it builds the whole machine in one process),
// dss-worker owns -rank, -peers and -rendezvous (one OS process per PE,
// always TCP) — and those gaps are intentional, documented in each
// binary's usage text.
type TuningFlags struct {
	Algo         *string
	Seed         *uint64
	Oversampling *int
	CharSample   *bool
	Eps          *float64
	TieBreak     *bool
	RandomSample *bool
	Exchange     *string
	Merge        *string
	MergeChunk   *int
	Codec        *string
	CodecMin     *int
	Validate     *bool
	Cores        *int
	ParMergeMin  *int
	MemBudget    *string
	SpillDir     *string
	Trace        *string
	TraceCap     *int
	Chaos        *string
	ChaosSeed    *uint64
	NetRetries   *int
	NetTimeout   *time.Duration
}

// RegisterTuningFlags registers the shared tuning flags on fs (use
// flag.CommandLine for the process-wide set) and returns the handle to
// resolve them after parsing.
func RegisterTuningFlags(fs *flag.FlagSet) *TuningFlags {
	return &TuningFlags{
		Algo:         fs.String("algo", "MS", "algorithm: "+AlgorithmNames()),
		Seed:         fs.Uint64("seed", 1, "random seed (identical on all workers of one job)"),
		Oversampling: fs.Int("oversampling", 0, "per-PE sample count v of Step 2 (0 = automatic 2p-1)"),
		CharSample:   fs.Bool("charsample", false, "character-based splitter sampling (skew experiment)"),
		Eps:          fs.Float64("eps", 0, "PDMS prefix growth factor (0 = default doubling)"),
		TieBreak:     fs.Bool("tiebreak", false, "partition by (string, origin) pairs to spread duplicates"),
		RandomSample: fs.Bool("randomsample", false, "random instead of regular splitter samples"),
		Exchange:     fs.String("exchange", "split", "Step-3 seam: split (overlap exchange with merge decode) or blocking (bulk-synchronous)"),
		Merge:        fs.String("merge", "eager", "Step-4 front-end: eager (merge fully decoded runs) or streaming (loser tree starts on partially decoded runs)"),
		MergeChunk:   fs.Int("merge-chunk", 0, "streaming frame payload bound in bytes (0 = default 8 KiB; only with -merge=streaming)"),
		Codec:        fs.String("codec", "none", "wire codec decorating the transport: "+codec.Names()+" (model stats unaffected)"),
		CodecMin:     fs.Int("codec-min", codec.DefaultMinSize, "frames smaller than this many bytes ship uncompressed"),
		Validate:     fs.Bool("validate", false, "run the distributed verifier after sorting"),
		Cores:        fs.Int("cores", 0, "intra-PE work pool width (0 = GOMAXPROCS, 1 = sequential; output and model stats identical at any width)"),
		ParMergeMin:  fs.Int("par-merge-min", 0, "minimum received strings before the Step-4 merge is partitioned across the pool (0 = default 2048, negative = always sequential)"),
		MemBudget:    fs.String("mem-budget", "", "per-PE memory budget for the out-of-core pipeline, e.g. 64m or 1g (empty = unbounded in-RAM run; output streamed to sorted-run files when set)"),
		SpillDir:     fs.String("spill-dir", "", "directory for spill page files and sorted-run output (empty = OS temp dir; only with -mem-budget)"),
		Trace:        fs.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file (load in ui.perfetto.dev; under dss-worker, rank 0 writes the merged cross-process trace)"),
		TraceCap:     fs.Int("trace-cap", 0, "per-PE trace ring capacity in events (0 = default 32768; the ring keeps the newest events)"),
		Chaos:        fs.String("chaos", "", "fault-injection level wrapped under the codec: "+strings.Join(chaos.Names(), ", ")+" (empty = off; output and model stats must be unaffected)"),
		ChaosSeed:    fs.Uint64("chaos-seed", 1, "seed of the deterministic chaos schedule (same seed = same faults)"),
		NetRetries:   fs.Int("net-retries", 0, "TCP reconnect budget per peer connection (0 = default 8, negative = never reconnect)"),
		NetTimeout:   fs.Duration("net-timeout", 0, "TCP reconnect deadline per attempt (0 = default 10s)"),
	}
}

// Apply resolves the parsed flag values into cfg. It returns an error for
// an unknown algorithm or exchange mode.
func (tf *TuningFlags) Apply(cfg *Config) error {
	algo, err := ParseAlgorithm(*tf.Algo)
	if err != nil {
		return err
	}
	blocking, err := ParseExchangeMode(*tf.Exchange)
	if err != nil {
		return err
	}
	streaming, err := ParseMergeMode(*tf.Merge)
	if err != nil {
		return err
	}
	codecName, err := codec.Parse(*tf.Codec)
	if err != nil {
		return err
	}
	if *tf.Chaos != "" {
		if _, err := chaos.Parse(*tf.Chaos); err != nil {
			return err
		}
	}
	cfg.Algorithm = algo
	cfg.Codec = codecName
	cfg.CodecMinSize = *tf.CodecMin
	cfg.Seed = *tf.Seed
	cfg.Oversampling = *tf.Oversampling
	cfg.CharSampling = *tf.CharSample
	cfg.Eps = *tf.Eps
	cfg.TieBreak = *tf.TieBreak
	cfg.RandomSampling = *tf.RandomSample
	cfg.BlockingExchange = blocking
	cfg.StreamingMerge = streaming
	cfg.StreamChunk = *tf.MergeChunk
	cfg.Validate = *tf.Validate
	cfg.Cores = *tf.Cores
	cfg.ParMergeMin = *tf.ParMergeMin
	budget, err := ParseMemBudget(*tf.MemBudget)
	if err != nil {
		return err
	}
	cfg.MemBudget = budget
	cfg.SpillDir = *tf.SpillDir
	cfg.Trace = *tf.Trace
	cfg.TraceCapacity = *tf.TraceCap
	cfg.Chaos = *tf.Chaos
	cfg.ChaosSeed = *tf.ChaosSeed
	cfg.NetRetries = *tf.NetRetries
	cfg.NetTimeout = *tf.NetTimeout
	return nil
}

// ParseMemBudget resolves a -mem-budget value: a byte count with an
// optional binary suffix k, m or g (case-insensitive), e.g. "64m" = 64
// MiB. Empty means 0 (no budget, in-RAM run).
func ParseMemBudget(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	orig := s
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("stringsort: bad memory budget %q (want e.g. 65536, 64m, 1g)", orig)
	}
	return n * mult, nil
}

// ParseMergeMode resolves the -merge flag value: "eager" (merge fully
// decoded runs, the default) or "streaming" (start the loser tree on
// partially decoded runs), reported as Config.StreamingMerge.
func ParseMergeMode(name string) (streaming bool, err error) {
	switch name {
	case "eager":
		return false, nil
	case "streaming", "stream":
		return true, nil
	default:
		return false, fmt.Errorf("stringsort: unknown merge mode %q (have eager, streaming)", name)
	}
}

// ParseExchangeMode resolves the -exchange flag value: "split" (the
// default overlapped seam) or "blocking" (bulk-synchronous), reported as
// Config.BlockingExchange.
func ParseExchangeMode(name string) (blocking bool, err error) {
	switch name {
	case "split", "overlap":
		return false, nil
	case "blocking":
		return true, nil
	default:
		return false, fmt.Errorf("stringsort: unknown exchange mode %q (have split, blocking)", name)
	}
}
