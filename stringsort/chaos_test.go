package stringsort

import (
	"math/rand"
	"testing"
)

// TestChaosIdentityAcrossSeams is the differential fault-injection pin:
// PDMS and MS run over real loopback TCP under the harshest chaos level —
// which kills established connections mid-exchange with partial final
// writes — across both Step-3 seams and both Step-4 front-ends, and every
// cell must produce byte-identical output and bit-identical deterministic
// statistics compared to the undisturbed run of the same configuration.
// Each chaos cell must also actually have recovered from at least one
// connection drop (Stats.Reconnects ≥ 1), or the cell proved nothing.
func TestChaosIdentityAcrossSeams(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential runs many TCP sorts")
	}
	rng := rand.New(rand.NewSource(406))
	inputs := genInputs(rng, 4, 120)
	for _, algo := range []Algorithm{MS, PDMS} {
		for _, blocking := range []bool{false, true} {
			for _, streaming := range []bool{false, true} {
				name := algo.String() + "/" + map[bool]string{false: "split", true: "blocking"}[blocking] +
					"/" + map[bool]string{false: "eager", true: "streaming"}[streaming]
				t.Run(name, func(t *testing.T) {
					base := Config{
						Algorithm:        algo,
						Seed:             31,
						Transport:        TransportTCP,
						BlockingExchange: blocking,
						StreamingMerge:   streaming,
						Validate:         true,
						Reconstruct:      true,
					}
					runChaosCell(t, inputs, base)
				})
			}
		}
	}
}

// TestChaosIdentityAllFamilies covers the remaining algorithm families at
// the drop level: every algorithm of the suite survives mid-run connection
// loss with identical output and deterministic statistics.
func TestChaosIdentityAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential runs many TCP sorts")
	}
	rng := rand.New(rand.NewSource(407))
	inputs := genInputs(rng, 4, 120)
	for _, algo := range []Algorithm{FKMerge, HQuick, MSSimple, PDMSGolomb} {
		t.Run(algo.String(), func(t *testing.T) {
			base := Config{
				Algorithm:   algo,
				Seed:        37,
				Transport:   TransportTCP,
				Validate:    true,
				Reconstruct: true,
			}
			runChaosCell(t, inputs, base)
		})
	}
}

// runChaosCell sorts once undisturbed and once under the "drop" chaos
// level and requires identical output, identical deterministic stats, and
// at least one actual reconnect in the disturbed run.
func runChaosCell(t *testing.T, inputs [][][]byte, base Config) {
	t.Helper()
	want, err := Sort(inputs, base)
	if err != nil {
		t.Fatalf("undisturbed: %v", err)
	}
	cfg := base
	cfg.Chaos = "drop"
	cfg.ChaosSeed = 0xD00D
	got, err := Sort(inputs, cfg)
	if err != nil {
		t.Fatalf("under chaos: %v", err)
	}
	if !equalOutputs(sortOutputs(want), sortOutputs(got)) {
		t.Fatalf("output differs under chaos")
	}
	if deterministic(want.Stats) != deterministic(got.Stats) {
		t.Fatalf("deterministic statistics differ under chaos:\nclean: %+v\nchaos: %+v",
			want.Stats, got.Stats)
	}
	if got.Stats.Reconnects < 1 {
		t.Fatalf("chaos run recovered zero connection drops (reconnects=%d, resent=%d frames) — the schedule exercised nothing",
			got.Stats.Reconnects, got.Stats.ResentFrames)
	}
	if want.Stats.Reconnects != 0 {
		t.Fatalf("undisturbed run reports %d reconnects", want.Stats.Reconnects)
	}
}

// TestChaosIdentityLocalTransport pins that the decorator is honest on the
// in-process substrate too: no connections exist, so the drop schedule
// degrades to delay/reorder only, and output and deterministic statistics
// still match the undisturbed run exactly.
func TestChaosIdentityLocalTransport(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	inputs := genInputs(rng, 4, 100)
	base := Config{Algorithm: MS, Seed: 41, Validate: true, Reconstruct: true}
	want, err := Sort(inputs, base)
	if err != nil {
		t.Fatalf("undisturbed: %v", err)
	}
	cfg := base
	cfg.Chaos = "drop"
	cfg.ChaosSeed = 7
	got, err := Sort(inputs, cfg)
	if err != nil {
		t.Fatalf("under chaos: %v", err)
	}
	if !equalOutputs(sortOutputs(want), sortOutputs(got)) {
		t.Fatal("output differs under chaos on the local transport")
	}
	if deterministic(want.Stats) != deterministic(got.Stats) {
		t.Fatal("deterministic statistics differ under chaos on the local transport")
	}
	if got.Stats.Reconnects != 0 {
		t.Fatalf("local transport reports %d reconnects", got.Stats.Reconnects)
	}
}
