package stringsort

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dss/internal/transport/tcp"
)

// traceDoc is the Chrome trace-event JSON shape the exporter writes.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Args map[string]any `json:"args"`
}

// phaseNames are the algorithm phases every traced PDMS PE must show as
// begin spans on its control track (stats.Phase.String() of the five
// non-idle phases).
var phaseNames = []string{"local_sort", "dup_detect", "partition", "exchange", "merge"}

func loadTrace(t *testing.T, path string) traceDoc {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("trace has no events")
	}
	return doc
}

// phaseSpans counts, per pid, the phase names seen as B events on the
// control track (tid 0).
func phaseSpans(doc traceDoc) map[int]map[string]int {
	spans := make(map[int]map[string]int)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "B" || ev.TID != 0 {
			continue
		}
		if spans[ev.PID] == nil {
			spans[ev.PID] = make(map[string]int)
		}
		spans[ev.PID][ev.Name]++
	}
	return spans
}

func countEvents(doc traceDoc, name, ph string) int {
	n := 0
	for _, ev := range doc.TraceEvents {
		if ev.Name == name && ev.Ph == ph {
			n++
		}
	}
	return n
}

// TestSortTraceTimeline runs an in-process PDMS sort with tracing and
// checks the exported timeline end to end: valid JSON, one process track
// per PE with all five phase spans, per-frame transport events from the
// streaming exchange, the merge milestones, and balanced begin/end pairs.
func TestSortTraceTimeline(t *testing.T) {
	const p = 4
	inputs := testInputs(p, 300)
	path := filepath.Join(t.TempDir(), "trace.json")
	res, err := Sort(inputs, Config{
		Algorithm:      PDMS,
		StreamingMerge: true,
		Trace:          path,
	})
	if err != nil {
		t.Fatal(err)
	}
	untraced, err := Sort(inputs, Config{Algorithm: PDMS, StreamingMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ModelTime != untraced.Stats.ModelTime ||
		res.Stats.BytesSent != untraced.Stats.BytesSent ||
		res.Stats.Messages != untraced.Stats.Messages {
		t.Errorf("tracing changed the deterministic stats: traced (%v, %d, %d) vs untraced (%v, %d, %d)",
			res.Stats.ModelTime, res.Stats.BytesSent, res.Stats.Messages,
			untraced.Stats.ModelTime, untraced.Stats.BytesSent, untraced.Stats.Messages)
	}

	doc := loadTrace(t, path)
	spans := phaseSpans(doc)
	for pe := 0; pe < p; pe++ {
		for _, name := range phaseNames {
			if spans[pe][name] == 0 {
				t.Errorf("PE %d: no %q phase span on the control track", pe, name)
			}
		}
	}
	for _, want := range []struct{ name, ph string }{
		{"frame-send", "i"},  // chunked exchange frames out
		{"frame-recv", "i"},  // ... and in
		{"send", "i"},        // raw billing instants
		{"merge-start", "i"}, // first merged output milestone
		{"IAlltoallvChunked post", "i"},
	} {
		if countEvents(doc, want.name, want.ph) == 0 {
			t.Errorf("no %q (%s) events in the trace", want.name, want.ph)
		}
	}
	// Every track must close what it opens (the ring did not wrap here).
	type track struct{ pid, tid int }
	depth := make(map[track]int)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			depth[track{ev.PID, ev.TID}]++
		case "E":
			k := track{ev.PID, ev.TID}
			depth[k]--
			if depth[k] < 0 {
				t.Fatalf("unbalanced E on pid=%d tid=%d", ev.PID, ev.TID)
			}
		}
	}
	for k, d := range depth {
		if d != 0 {
			t.Errorf("pid=%d tid=%d: %d unclosed spans", k.pid, k.tid, d)
		}
	}
}

// TestSortTraceWorkerTracks asserts the par-layer attribution: with a
// wide pool the trace carries named worker tracks with busy spans
// ("local-sort", "encode", "merge", ...).
func TestSortTraceWorkerTracks(t *testing.T) {
	inputs := testInputs(4, 400)
	path := filepath.Join(t.TempDir(), "trace.json")
	if _, err := Sort(inputs, Config{
		Algorithm: MS,
		Cores:     4,
		// Partition even these small runs so the merge worker spans appear.
		ParMergeMin: 1,
		Trace:       path,
	}); err != nil {
		t.Fatal(err)
	}
	doc := loadTrace(t, path)
	workerSpans := 0
	workerTracks := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "B" && ev.TID >= 2 { // TrackWorker0 = 2
			workerSpans++
		}
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if n, ok := ev.Args["name"].(string); ok {
				workerTracks[n] = true
			}
		}
	}
	if workerSpans == 0 {
		t.Errorf("no worker-track busy spans at cores=4")
	}
	if !workerTracks["worker 0"] {
		t.Errorf("no 'worker 0' thread_name metadata; tracks: %v", workerTracks)
	}
	if countEvents(doc, "merge-seam", "i") == 0 {
		t.Errorf("no merge-seam partition instants at par-merge-min=1")
	}
}

// TestSortTraceSpill asserts the spill hooks: a run forced out of core
// must put spill-flush/spill-pagein instants and counter samples on the
// spill track.
func TestSortTraceSpill(t *testing.T) {
	inputs := testInputs(4, 2000)
	path := filepath.Join(t.TempDir(), "trace.json")
	res, err := Sort(inputs, Config{
		Algorithm: MS,
		MemBudget: 8 << 10,
		SpillDir:  t.TempDir(),
		Trace:     path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PEs) > 0 && res.PEs[0].RunFile != "" {
		defer os.RemoveAll(filepath.Dir(res.PEs[0].RunFile))
	}
	if res.Stats.SpillBytesWritten == 0 {
		t.Fatalf("8 KiB budget did not engage on a ~%d KiB/PE input", 2000*30/1024)
	}
	doc := loadTrace(t, path)
	if countEvents(doc, "spill-flush", "i") == 0 {
		t.Errorf("spilling run recorded no spill-flush instants")
	}
	if countEvents(doc, "spill_written", "C") == 0 {
		t.Errorf("spilling run recorded no spill_written counter samples")
	}
}

// TestRunPETraceAggregation is the cross-process aggregation path, run
// the way dss-worker runs it: every rank of a 4-PE loopback TCP fabric
// calls RunPE with Config.Trace set, the buffers are gathered with
// clock-offset estimation, and rank 0 alone writes one merged file that
// must show all five phase spans for every pid.
func TestRunPETraceAggregation(t *testing.T) {
	const p = 4
	inputs := testInputs(p, 300)
	fab, err := tcp.NewLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	path := filepath.Join(t.TempDir(), "trace.json")
	var wg sync.WaitGroup
	errs := make([]error, p)
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			_, errs[rank] = RunPE(fab.Endpoint(rank), inputs[rank], Config{
				Algorithm:      PDMS,
				StreamingMerge: true,
				Trace:          path,
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	doc := loadTrace(t, path)
	spans := phaseSpans(doc)
	for pe := 0; pe < p; pe++ {
		for _, name := range phaseNames {
			if spans[pe][name] == 0 {
				t.Errorf("PE %d: no %q phase span in the merged cross-process trace", pe, name)
			}
		}
	}
	// Process metadata must name all four ranks.
	procs := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.PID] = true
		}
	}
	for pe := 0; pe < p; pe++ {
		if !procs[pe] {
			t.Errorf("no process_name metadata for PE %d", pe)
		}
	}
}

// testInputs builds a deterministic distributed input of n strings per PE.
func testInputs(p, n int) [][][]byte {
	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		for i := 0; i < n; i++ {
			inputs[pe] = append(inputs[pe],
				[]byte(fmt.Sprintf("trace-%03d-%04d-%s", (pe*7+i*13)%997, i, "padpadpad")))
		}
	}
	return inputs
}
