package stringsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dss/internal/transport/tcp"
)

// sortOutputs flattens a Result's fragments for comparison.
func sortOutputs(res *Result) [][]byte {
	var all [][]byte
	for _, pe := range res.PEs {
		all = append(all, pe.Strings...)
	}
	return all
}

func equalOutputs(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// deterministic zeroes the wall-clock measurement fields of a Stats so the
// remaining fields can be compared bit for bit: OverlapMS and WallMS are
// measured (they legitimately differ across transports and runs), while
// everything else is accounted and must be identical.
func deterministic(st Stats) Stats {
	st.OverlapMS = 0
	st.MaxOverlapMS = 0
	st.WallMS = 0
	st.MergeLeadMS = 0
	st.WallTable = ""
	st.CPUMS = 0
	st.MergeWallMS = 0
	st.MergeCPUMS = 0
	st.Reconnects = 0
	st.ResentFrames = 0
	st.ResentBytes = 0
	return st
}

// TestTCPBackendMatchesLocal runs the same sort over the in-process mailbox
// substrate and over real loopback TCP sockets and requires byte-identical
// output and bit-identical statistics: byte accounting lives at the comm
// layer, so model-ms and bytes/str must not depend on the wire.
func TestTCPBackendMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	inputs := genInputs(rng, 4, 120)
	for _, algo := range []Algorithm{MS, HQuick, PDMSGolomb} {
		base := Config{Algorithm: algo, Seed: 11, Validate: true, Reconstruct: true}

		cfgLocal := base
		cfgLocal.Transport = TransportLocal
		resLocal, err := Sort(inputs, cfgLocal)
		if err != nil {
			t.Fatalf("%v local: %v", algo, err)
		}

		cfgTCP := base
		cfgTCP.Transport = TransportTCP
		resTCP, err := Sort(inputs, cfgTCP)
		if err != nil {
			t.Fatalf("%v tcp: %v", algo, err)
		}

		if !equalOutputs(sortOutputs(resLocal), sortOutputs(resTCP)) {
			t.Fatalf("%v: TCP output differs from local output", algo)
		}
		if deterministic(resLocal.Stats) != deterministic(resTCP.Stats) {
			t.Fatalf("%v: statistics differ across transports:\nlocal: %+v\ntcp:   %+v",
				algo, resLocal.Stats, resTCP.Stats)
		}
	}
}

// TestRunPEMatchesSort runs the SPMD entry point — one RunPE call per rank
// over a real TCP mesh, the exact shape cmd/dss-worker executes — and
// requires fragment-identical output and bit-identical statistics compared
// to the in-process Sort of the same input and seed.
func TestRunPEMatchesSort(t *testing.T) {
	const p = 4
	rng := rand.New(rand.NewSource(405))
	inputs := genInputs(rng, p, 150)
	cfg := Config{Algorithm: PDMS, Seed: 23, Validate: true, Reconstruct: true}

	want, err := Sort(inputs, cfg)
	if err != nil {
		t.Fatalf("in-process sort: %v", err)
	}

	f, err := tcp.NewLoopback(p)
	if err != nil {
		t.Fatalf("loopback fabric: %v", err)
	}
	defer f.Close()

	runs := make([]*PERun, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			runs[rank], errs[rank] = RunPE(f.Endpoint(rank), inputs[rank], cfg)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}

	for rank := 0; rank < p; rank++ {
		if !equalOutputs(want.PEs[rank].Strings, runs[rank].Output.Strings) {
			t.Fatalf("rank %d: SPMD fragment differs from Sort fragment", rank)
		}
		if deterministic(runs[rank].Stats) != deterministic(want.Stats) {
			t.Fatalf("rank %d: SPMD statistics differ from Sort:\nsort:  %+v\nspmd:  %+v",
				rank, want.Stats, runs[rank].Stats)
		}
	}
}

// TestRunPERejectsMismatchedP pins the Config.P validation.
func TestRunPERejectsMismatchedP(t *testing.T) {
	f, err := tcp.NewLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			_, errs[rank] = RunPE(f.Endpoint(rank), nil, Config{P: 5})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: mismatched P accepted", rank)
		}
	}
}

// TestParseTransport pins the canonical names.
func TestParseTransport(t *testing.T) {
	for _, tr := range Transports {
		got, err := ParseTransport(tr.String())
		if err != nil || got != tr {
			t.Fatalf("round-trip %v: got %v, err %v", tr, got, err)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if fmt.Sprint(TransportLocal, TransportTCP) != "local tcp" {
		t.Fatalf("canonical names changed: %v %v", TransportLocal, TransportTCP)
	}
}
