package stringsort

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dss/internal/input"
	"dss/internal/transport"
	"dss/internal/transport/local"
)

// TestStreamingMergeIdentity is the end-to-end differential suite of the
// streaming merge: for every algorithm × transport × exchange seam × merge
// front-end, the sorted output must be byte-identical and the
// deterministic statistics (model time, bytes/string, per-phase counters,
// work — everything the Fig4/Fig5 benches report) bit-identical to the
// local/split/eager reference cell. The streaming cells run with a tiny
// frame bound so every run is sliced into many fragments and the readers
// resume mid-varint, mid-suffix and mid-section constantly.
func TestStreamingMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(508))
	inputs := genInputs(rng, 4, 140)
	for _, algo := range Algorithms {
		base := Config{Algorithm: algo, Seed: 37, Validate: true, Reconstruct: true}
		ref, err := Sort(inputs, base)
		if err != nil {
			t.Fatalf("%v reference: %v", algo, err)
		}
		refOut := sortOutputs(ref)
		for _, tr := range Transports {
			for _, blocking := range []bool{false, true} {
				for _, streaming := range []bool{false, true} {
					cfg := base
					cfg.Transport = tr
					cfg.BlockingExchange = blocking
					cfg.StreamingMerge = streaming
					if streaming {
						cfg.StreamChunk = 45 // force many fragments per run
					}
					cell := fmt.Sprintf("%v/%v/blocking=%v/streaming=%v", algo, tr, blocking, streaming)
					res, err := Sort(inputs, cfg)
					if err != nil {
						t.Fatalf("%s: %v", cell, err)
					}
					if !equalOutputs(refOut, sortOutputs(res)) {
						t.Fatalf("%s: output differs from the eager reference", cell)
					}
					if deterministic(res.Stats) != deterministic(ref.Stats) {
						t.Fatalf("%s: deterministic statistics differ:\nref:  %+v\ncell: %+v",
							cell, ref.Stats, res.Stats)
					}
					if !streaming && res.Stats.MergeLeadMS != 0 {
						t.Fatalf("%s: eager seam reported a merge lead of %.3f ms; must be zero",
							cell, res.Stats.MergeLeadMS)
					}
					// The bulk-synchronous reference cells hide nothing by
					// definition — with either merge front-end they must
					// report the exact zeros the eager blocking seam pins.
					if blocking && (res.Stats.OverlapMS != 0 || res.Stats.MergeLeadMS != 0) {
						t.Fatalf("%s: blocking seam reported overlap %.3f ms / lead %.3f ms; must be zero",
							cell, res.Stats.OverlapMS, res.Stats.MergeLeadMS)
					}
				}
			}
		}
	}
}

// TestStreamingMergeEmptyStrings is the regression test of the nil-head
// bug: a run whose FIRST string is empty must not be mistaken for an
// exhausted source (nil is the loser tree's +∞ sentinel — see the
// merge.Source contract). Empty strings sort first, so they land exactly
// at the head of rank 0's runs; the streaming seam must deliver every
// string, byte- and stat-identical to the eager seam, for all algorithms.
func TestStreamingMergeEmptyStrings(t *testing.T) {
	inputs := [][][]byte{
		{[]byte(""), []byte("b"), []byte("")},
		{[]byte("a"), []byte(""), []byte("c")},
		{[]byte(""), []byte("")},
		{[]byte("d")},
	}
	for _, algo := range Algorithms {
		base := Config{Algorithm: algo, Seed: 3, Validate: true, Reconstruct: true}
		ref, err := Sort(inputs, base)
		if err != nil {
			t.Fatalf("%v eager: %v", algo, err)
		}
		if n := len(sortOutputs(ref)); n != 9 {
			t.Fatalf("%v eager: %d strings, want 9", algo, n)
		}
		cfg := base
		cfg.StreamingMerge = true
		cfg.StreamChunk = 2
		res, err := Sort(inputs, cfg)
		if err != nil {
			t.Fatalf("%v streaming: %v", algo, err)
		}
		if !equalOutputs(sortOutputs(ref), sortOutputs(res)) {
			t.Fatalf("%v: streaming dropped or reordered strings on empty-string input", algo)
		}
		if deterministic(res.Stats) != deterministic(ref.Stats) {
			t.Fatalf("%v: deterministic statistics differ on empty-string input", algo)
		}
	}
}

// TestStreamingMergeIdentityUnderCodecs pins the streaming seam below the
// codec boundary: with a compressing wire codec the streaming cells must
// still produce byte-identical output and bit-identical model statistics —
// the chunked frames are codec-framed individually, which only the wire
// counters may see.
func TestStreamingMergeIdentityUnderCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(509))
	inputs := genInputs(rng, 4, 120)
	for _, algo := range []Algorithm{MS, PDMSGolomb} {
		base := Config{Algorithm: algo, Seed: 41, Validate: true, Reconstruct: true}
		ref, err := Sort(inputs, base)
		if err != nil {
			t.Fatalf("%v reference: %v", algo, err)
		}
		for _, codec := range []string{"flate", "lcp"} {
			cfg := base
			cfg.Codec = codec
			cfg.StreamingMerge = true
			cfg.StreamChunk = 64
			res, err := Sort(inputs, cfg)
			if err != nil {
				t.Fatalf("%v streaming codec=%s: %v", algo, codec, err)
			}
			if !equalOutputs(sortOutputs(ref), sortOutputs(res)) {
				t.Fatalf("%v streaming codec=%s: output differs", algo, codec)
			}
			if deterministicNoWire(res.Stats) != deterministicNoWire(ref.Stats) {
				t.Fatalf("%v streaming codec=%s: model statistics differ:\nref:  %+v\ncell: %+v",
					algo, codec, ref.Stats, res.Stats)
			}
		}
	}
}

// jitterEndpoint decorates a transport endpoint with a randomized delay
// before every Send, spacing out the frame arrivals like a congested
// fabric would — the delivery-timing adversary of the streaming seam's
// stress tests. Each endpoint owns its rng (Sends happen on the PE
// goroutine only).
type jitterEndpoint struct {
	transport.Transport
	rng *rand.Rand
	max time.Duration
}

func (j *jitterEndpoint) Send(dst, tag int, data []byte) {
	if j.max > 0 {
		time.Sleep(time.Duration(j.rng.Int63n(int64(j.max))))
	}
	j.Transport.Send(dst, tag, data)
}

// runJittered executes an SPMD run over a jittered local fabric and
// returns the per-rank results (identical Stats on every rank).
func runJittered(t *testing.T, inputs [][][]byte, cfg Config, maxDelay time.Duration, seed int64) []*PERun {
	t.Helper()
	p := len(inputs)
	f := local.New(p)
	runs := make([]*PERun, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			ep := &jitterEndpoint{
				Transport: f.Endpoint(rank),
				rng:       rand.New(rand.NewSource(seed + int64(rank))),
				max:       maxDelay,
			}
			runs[rank], errs[rank] = RunPE(ep, inputs[rank], cfg)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return runs
}

// TestStreamingMergeStartsBeforeLastFrame is the acceptance assertion of
// the streaming seam: with -merge=streaming, merging demonstrably begins
// BEFORE the final Step-3 frame arrives. The input skews the per-PE sizes
// so one straggler posts its buckets last, and every Send is jittered so
// that straggler's fragments arrive spaced out: the loser tree has the
// first head of every run long before the straggler's bucket completes,
// and the merge-start milestone must land ahead of the last arrival
// (Stats.MergeLeadMS > 0). The sorted output must still match the eager
// in-process reference exactly.
func TestStreamingMergeStartsBeforeLastFrame(t *testing.T) {
	const p, length = 4, 64
	sizes := []int{150, 200, 250, 1500} // heavy straggler skew
	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.Random(sizes[pe], length, 26, pe, p, 181)
	}
	ref, err := Sort(inputs, Config{Algorithm: MS, Seed: 9})
	if err != nil {
		t.Fatalf("eager reference: %v", err)
	}
	cfg := Config{Algorithm: MS, Seed: 9, StreamingMerge: true, StreamChunk: 256}
	// The milestones are wall-clock measurements, so a pathological
	// scheduler could serialize one attempt into a zero lead; a few
	// attempts make that vanishingly unlikely without weakening the
	// assertion.
	ok := false
	for attempt := 0; attempt < 5 && !ok; attempt++ {
		runs := runJittered(t, inputs, cfg, 120*time.Microsecond, 900+int64(attempt))
		for rank := range runs {
			if !equalOutputs(ref.PEs[rank].Strings, runs[rank].Output.Strings) {
				t.Fatalf("attempt %d rank %d: streaming fragment differs from eager reference", attempt, rank)
			}
			if deterministic(runs[rank].Stats) != deterministic(ref.Stats) {
				t.Fatalf("attempt %d rank %d: deterministic statistics differ:\nref:  %+v\ngot:  %+v",
					attempt, rank, ref.Stats, runs[rank].Stats)
			}
		}
		ok = runs[0].Stats.MergeLeadMS > 0
	}
	if !ok {
		t.Fatal("streaming merge never started before the last Step-3 frame arrived " +
			"(MergeLeadMS stayed 0); the loser tree is not running on partially decoded runs")
	}
}

// TestStreamingSeamRaceStress is the concurrency stress of the
// PollAny/loser-tree handoff: many PEs, tiny fragments (a handful of bytes
// per frame, so every reader resumes mid-item constantly), randomized
// delivery jitter, all algorithm families with a Step-3 seam — run under
// -race in CI. Output and deterministic statistics must match the eager
// in-process reference on every rank.
func TestStreamingSeamRaceStress(t *testing.T) {
	const p = 6
	rng := rand.New(rand.NewSource(510))
	inputs := genInputs(rng, p, 45)
	for _, algo := range []Algorithm{MS, MSSimple, PDMS, HQuick} {
		cfg := Config{Algorithm: algo, Seed: 17, Validate: true, Reconstruct: true}
		ref, err := Sort(inputs, cfg)
		if err != nil {
			t.Fatalf("%v eager reference: %v", algo, err)
		}
		scfg := cfg
		scfg.StreamingMerge = true
		scfg.StreamChunk = 16
		runs := runJittered(t, inputs, scfg, 40*time.Microsecond, 7000)
		for rank := range runs {
			if !equalOutputs(ref.PEs[rank].Strings, runs[rank].Output.Strings) {
				t.Fatalf("%v rank %d: streaming fragment differs from eager reference", algo, rank)
			}
			if deterministic(runs[rank].Stats) != deterministic(ref.Stats) {
				t.Fatalf("%v rank %d: deterministic statistics differ:\nref: %+v\ngot: %+v",
					algo, rank, ref.Stats, runs[rank].Stats)
			}
		}
	}
}
