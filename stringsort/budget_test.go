package stringsort

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dss/internal/par"
	"dss/internal/spill"
	"dss/internal/transport/tcp"
)

// runPEOverTCP executes one RunPE per rank over a loopback TCP fabric and
// fails the test on any rank error.
func runPEOverTCP(t *testing.T, inputs [][][]byte, cfg Config) []*PERun {
	t.Helper()
	p := len(inputs)
	f, err := tcp.NewLoopback(p)
	if err != nil {
		t.Fatalf("loopback fabric: %v", err)
	}
	defer f.Close()
	runs := make([]*PERun, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			runs[rank], errs[rank] = RunPE(f.Endpoint(rank), inputs[rank], cfg)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return runs
}

// budgetInvariant zeroes the measured fields of a Stats — the wall-clock
// channel plus the spill gauges, which exist only in budget mode — so a
// budgeted run's statistics can be compared bit for bit against an
// unbudgeted run of the same input: the out-of-core pipeline must not move
// a single deterministic counter.
func budgetInvariant(st Stats) Stats {
	st = deterministic(st)
	st.PeakMemBytes = 0
	st.SpillBytesWritten = 0
	st.SpillBytesRead = 0
	return st
}

// budgetCase is the tiny-budget configuration of the differential tests:
// the per-PE input volume is several times the budget, so the merge
// families must go through at least two spill generations (multiple page
// flushes and page-ins) to finish at all.
const (
	testBudget   = 4 << 10
	testPage     = 512
	testChunk    = 512
	testPEs      = 4
	testPerPE    = 4000
	testOverhead = testPEs*testChunk + 16*testPage // arrival overshoot + write-behind/pinned slack
)

func budgetConfig(base Config, dir string) Config {
	base.MemBudget = testBudget
	base.SpillPageSize = testPage
	base.SpillDir = dir
	return base
}

// TestBudgetDifferential sorts the same input with and without a memory
// budget for every algorithm family and requires byte-identical output
// (strings, LCP columns, origins), bit-identical deterministic statistics,
// real spill traffic for the merge families, and a metered peak within
// budget + the documented fixed overhead.
func TestBudgetDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	inputs := genInputs(rng, testPEs, testPerPE)
	for _, algo := range []Algorithm{FKMerge, MSSimple, MS, PDMS, PDMSGolomb, HQuick} {
		t.Run(algo.String(), func(t *testing.T) {
			base := Config{Algorithm: algo, Seed: 21, Validate: true, StreamChunk: testChunk}
			ram, err := Sort(inputs, base)
			if err != nil {
				t.Fatalf("in-RAM sort: %v", err)
			}
			bu, err := Sort(inputs, budgetConfig(base, t.TempDir()))
			if err != nil {
				t.Fatalf("budget sort: %v", err)
			}
			if bu.PrefixOnly != ram.PrefixOnly {
				t.Fatalf("PrefixOnly: budget %v, in-RAM %v", bu.PrefixOnly, ram.PrefixOnly)
			}
			for pe := range bu.PEs {
				out := bu.PEs[pe]
				if out.Strings != nil || out.RunFile == "" {
					t.Fatalf("PE %d: budget result should hold a run file, not strings", pe)
				}
				ss, lcps, origins, err := ReadRunFile(out.RunFile)
				if err != nil {
					t.Fatalf("PE %d: read run file: %v", pe, err)
				}
				if int64(len(ss)) != out.RunCount {
					t.Fatalf("PE %d: RunCount %d but file holds %d items", pe, out.RunCount, len(ss))
				}
				want := ram.PEs[pe]
				if !equalOutputs(ss, want.Strings) {
					t.Fatalf("PE %d: budget output differs from in-RAM output", pe)
				}
				if want.LCPs != nil {
					if len(lcps) != len(want.LCPs) {
						t.Fatalf("PE %d: LCP column length %d, want %d", pe, len(lcps), len(want.LCPs))
					}
					for i := range lcps {
						if i > 0 && lcps[i] != want.LCPs[i] {
							t.Fatalf("PE %d: LCP[%d] = %d, want %d", pe, i, lcps[i], want.LCPs[i])
						}
					}
				}
				if want.Origins != nil {
					if len(origins) != len(want.Origins) {
						t.Fatalf("PE %d: origin column length %d, want %d", pe, len(origins), len(want.Origins))
					}
					for i := range origins {
						if origins[i] != want.Origins[i] {
							t.Fatalf("PE %d: origin[%d] = %+v, want %+v", pe, i, origins[i], want.Origins[i])
						}
					}
				}
			}
			if got, want := budgetInvariant(bu.Stats), budgetInvariant(ram.Stats); got != want {
				t.Fatalf("deterministic stats moved under the budget:\nbudget: %+v\nin-RAM: %+v", got, want)
			}
			if algo == HQuick {
				// hQuick is not out of core: the budget bounds only the
				// output accumulation, so no spill traffic is expected.
				return
			}
			if bu.Stats.SpillBytesWritten < 2*testPage {
				t.Fatalf("expected at least two spilled pages, got %d bytes", bu.Stats.SpillBytesWritten)
			}
			if bu.Stats.SpillBytesRead == 0 {
				t.Fatalf("expected spilled bytes to be paged back in")
			}
			if bu.Stats.PeakMemBytes == 0 {
				t.Fatalf("expected a metered peak")
			}
			if bu.Stats.PeakMemBytes > testBudget+testOverhead {
				t.Fatalf("peak %d exceeds budget %d + overhead %d", bu.Stats.PeakMemBytes, testBudget, testOverhead)
			}
		})
	}
}

// TestBudgetAcrossSeamsAndTransports pins the spilling run's output and
// deterministic statistics across the exchange seams (split vs blocking),
// the merge front-ends (eager vs streaming flag — budget mode runs the
// chunked machinery either way) and the transports (local vs TCP).
func TestBudgetAcrossSeamsAndTransports(t *testing.T) {
	rng := rand.New(rand.NewSource(809))
	inputs := genInputs(rng, testPEs, testPerPE)
	base := Config{Algorithm: MS, Seed: 33, Validate: true, StreamChunk: testChunk}

	type variant struct {
		name string
		mut  func(*Config)
	}
	variants := []variant{
		{"eager-local", func(c *Config) {}},
		{"streaming-local", func(c *Config) { c.StreamingMerge = true }},
		{"blocking-local", func(c *Config) { c.BlockingExchange = true }},
		{"eager-tcp", func(c *Config) { c.Transport = TransportTCP }},
	}
	var refOut [][][]byte
	var refStats Stats
	for i, v := range variants {
		cfg := budgetConfig(base, t.TempDir())
		v.mut(&cfg)
		res, err := Sort(inputs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		outs := make([][][]byte, len(res.PEs))
		for pe, p := range res.PEs {
			ss, _, _, err := ReadRunFile(p.RunFile)
			if err != nil {
				t.Fatalf("%s: PE %d: %v", v.name, pe, err)
			}
			outs[pe] = ss
		}
		if res.Stats.SpillBytesWritten == 0 {
			t.Fatalf("%s: expected spill traffic", v.name)
		}
		if i == 0 {
			refOut, refStats = outs, res.Stats
			continue
		}
		for pe := range outs {
			if !equalOutputs(outs[pe], refOut[pe]) {
				t.Fatalf("%s: PE %d output differs from %s", v.name, pe, variants[0].name)
			}
		}
		if got, want := budgetInvariant(res.Stats), budgetInvariant(refStats); got != want {
			t.Fatalf("%s: deterministic stats differ from %s:\n%+v\n%+v", v.name, variants[0].name, got, want)
		}
	}
}

// TestBudgetSpillLifecycle checks the page-file housekeeping: page files
// are created inside the configured spill directory while the run is in
// flight and are all gone when Sort returns — after a successful run and
// after a failing one alike.
func TestBudgetSpillLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(810))
	inputs := genInputs(rng, testPEs, testPerPE)
	dir := t.TempDir()

	var mu sync.Mutex
	var created []string
	var poolDirs []string
	orig := newSpillPool
	newSpillPool = func(cfg spill.Config, workers *par.Pool) (*spill.Pool, error) {
		inner := cfg.Create
		if inner == nil {
			inner = os.Create
		}
		cfg.Create = func(name string) (*os.File, error) {
			mu.Lock()
			created = append(created, name)
			mu.Unlock()
			return inner(name)
		}
		p, err := orig(cfg, workers)
		if p != nil {
			mu.Lock()
			poolDirs = append(poolDirs, p.Dir())
			mu.Unlock()
		}
		return p, err
	}
	defer func() { newSpillPool = orig }()

	res, err := Sort(inputs, budgetConfig(Config{Algorithm: MS, Seed: 5, StreamChunk: testChunk}, dir))
	if err != nil {
		t.Fatalf("budget sort: %v", err)
	}
	if len(created) == 0 {
		t.Fatalf("expected page files to be created")
	}
	for _, name := range created {
		if !strings.HasPrefix(name, dir+string(filepath.Separator)) {
			t.Fatalf("page file %q escaped the configured spill dir %q", name, dir)
		}
		if _, err := os.Stat(name); !os.IsNotExist(err) {
			t.Fatalf("page file %q survived the run", name)
		}
	}
	for _, d := range poolDirs {
		if _, err := os.Stat(d); !os.IsNotExist(err) {
			t.Fatalf("spill dir %q survived the run", d)
		}
	}
	// The sorted-run files themselves are the caller's to remove.
	for pe, p := range res.PEs {
		if _, err := os.Stat(p.RunFile); err != nil {
			t.Fatalf("PE %d run file missing: %v", pe, err)
		}
	}
	os.RemoveAll(runDirOf(res.PEs[0].RunFile))
}

// TestBudgetSpillFailureCleanup injects a page-file creation failure and
// requires Sort to surface an error while still removing every spill
// artifact and the partial sorted-run directory.
func TestBudgetSpillFailureCleanup(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	inputs := genInputs(rng, testPEs, testPerPE)
	dir := t.TempDir()

	var mu sync.Mutex
	var poolDirs []string
	orig := newSpillPool
	newSpillPool = func(cfg spill.Config, workers *par.Pool) (*spill.Pool, error) {
		cfg.Create = func(name string) (*os.File, error) {
			return nil, fmt.Errorf("injected create failure for %s", name)
		}
		p, err := orig(cfg, workers)
		if p != nil {
			mu.Lock()
			poolDirs = append(poolDirs, p.Dir())
			mu.Unlock()
		}
		return p, err
	}
	defer func() { newSpillPool = orig }()

	_, err := Sort(inputs, budgetConfig(Config{Algorithm: MS, Seed: 5, StreamChunk: testChunk}, dir))
	if err == nil || !strings.Contains(err.Error(), "injected create failure") {
		t.Fatalf("expected the injected failure to surface, got %v", err)
	}
	for _, d := range poolDirs {
		if _, err := os.Stat(d); !os.IsNotExist(err) {
			t.Fatalf("spill dir %q survived the failed run", d)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read spill dir: %v", err)
	}
	for _, e := range entries {
		t.Fatalf("artifact %q survived the failed run", e.Name())
	}
}

// TestBudgetRunPE runs the budget pipeline through the SPMD entry point
// over an in-process TCP fabric and diffs every rank's run file against
// the in-process Sort of the same input.
func TestBudgetRunPE(t *testing.T) {
	rng := rand.New(rand.NewSource(812))
	inputs := genInputs(rng, testPEs, testPerPE/4)
	base := Config{Algorithm: PDMS, Seed: 9, Validate: true, StreamChunk: testChunk}
	cfg := budgetConfig(base, t.TempDir())
	cfg.MemBudget = 1 << 10 // quarter-size input, quarter-size budget

	ram, err := Sort(inputs, base)
	if err != nil {
		t.Fatalf("in-RAM sort: %v", err)
	}
	runs := runPEOverTCP(t, inputs, cfg)
	for pe, run := range runs {
		ss, _, _, err := ReadRunFile(run.Output.RunFile)
		if err != nil {
			t.Fatalf("PE %d: %v", pe, err)
		}
		if !equalOutputs(ss, ram.PEs[pe].Strings) {
			t.Fatalf("PE %d: RunPE budget output differs from Sort", pe)
		}
		if got, want := budgetInvariant(run.Stats), budgetInvariant(ram.Stats); got != want {
			t.Fatalf("PE %d: stats differ:\n%+v\n%+v", pe, got, want)
		}
		os.RemoveAll(runDirOf(run.Output.RunFile))
	}
}

func TestParseMemBudget(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		bad  bool
	}{
		{"", 0, false},
		{"65536", 65536, false},
		{"64k", 64 << 10, false},
		{"64K", 64 << 10, false},
		{"8m", 8 << 20, false},
		{"2G", 2 << 30, false},
		{"-1", 0, true},
		{"64q", 0, true},
		{"m", 0, true},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseMemBudget(c.in)
		if c.bad {
			if err == nil {
				t.Fatalf("ParseMemBudget(%q): expected error, got %d", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("ParseMemBudget(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}
