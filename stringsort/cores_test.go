package stringsort

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"dss/internal/input"
)

// coreInvariant additionally zeroes the Cores configuration echo, which —
// unlike everything else deterministic() keeps — legitimately differs when
// the configs under comparison run DIFFERENT pool widths. Everything that
// remains must be bit-identical at every width.
func coreInvariant(st Stats) Stats {
	st = deterministic(st)
	st.Cores = 0
	return st
}

// equalFragments compares the per-PE fragments of two results exactly:
// strings, LCP arrays and origins. The parallel pool must not perturb the
// output permutation, only the wall clock.
func equalFragments(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.PEs) != len(b.PEs) {
		t.Fatalf("%s: %d vs %d PE fragments", label, len(a.PEs), len(b.PEs))
	}
	for pe := range a.PEs {
		if !equalOutputs(a.PEs[pe].Strings, b.PEs[pe].Strings) {
			t.Fatalf("%s: PE %d fragment differs", label, pe)
		}
		al, bl := a.PEs[pe].LCPs, b.PEs[pe].LCPs
		if len(al) != len(bl) {
			t.Fatalf("%s: PE %d LCP length %d vs %d", label, pe, len(al), len(bl))
		}
		for i := range al {
			if al[i] != bl[i] {
				t.Fatalf("%s: PE %d LCP[%d] = %d vs %d", label, pe, i, al[i], bl[i])
			}
		}
		ao, bo := a.PEs[pe].Origins, b.PEs[pe].Origins
		if len(ao) != len(bo) {
			t.Fatalf("%s: PE %d origin length %d vs %d", label, pe, len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("%s: PE %d origin[%d] = %+v vs %+v", label, pe, i, ao[i], bo[i])
			}
		}
	}
}

// TestCoresDeterminism is the intra-PE parallelism determinism suite: every
// algorithm, under both merge front-ends, must produce byte-identical
// fragments (strings, LCPs, origins) and bit-identical deterministic
// statistics — model time, bytes sent, messages, work — at pool widths 1,
// 2 and N. Width 1 is the exact sequential path; any divergence at a wider
// pool means the parallel decomposition changed the algorithm, not just
// the schedule.
func TestCoresDeterminism(t *testing.T) {
	widths := []int{1, 2, runtime.GOMAXPROCS(0) + 3}
	rng := rand.New(rand.NewSource(606))
	inputs := genInputs(rng, 4, 200)
	for _, algo := range Algorithms {
		for _, streaming := range []bool{false, true} {
			base := Config{Algorithm: algo, Seed: 17, StreamingMerge: streaming}
			base.Cores = 1
			want, err := Sort(inputs, base)
			if err != nil {
				t.Fatalf("%v cores=1: %v", algo, err)
			}
			if want.Stats.Cores != 1 {
				t.Fatalf("%v: Stats.Cores = %d at width 1", algo, want.Stats.Cores)
			}
			for _, w := range widths[1:] {
				label := fmt.Sprintf("%v streaming=%v cores=%d", algo, streaming, w)
				cfg := base
				cfg.Cores = w
				got, err := Sort(inputs, cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if got.Stats.Cores != w {
					t.Fatalf("%s: Stats.Cores = %d", label, got.Stats.Cores)
				}
				equalFragments(t, label, want, got)
				if coreInvariant(want.Stats) != coreInvariant(got.Stats) {
					t.Fatalf("%s: statistics differ from sequential:\ncores=1: %+v\ncores=%d: %+v",
						label, want.Stats, w, got.Stats)
				}
			}
		}
	}
}

// TestCoresDeterminismParMerge forces the partitioned Step-4 merge on
// every algorithm and both merge front-ends with ParMergeMin=1 (the small
// inputs here are far below the default threshold, so without the override
// the parallel merge would never engage). Fragments, LCPs, origins and
// every deterministic statistic — including the character/LCP work count
// the merge bills — must match width 1 bit for bit at widths 2 and N: the
// deterministic merge-back contract of the multisequence-selection
// partitioned loser trees.
func TestCoresDeterminismParMerge(t *testing.T) {
	widths := []int{1, 2, runtime.GOMAXPROCS(0) + 3}
	rng := rand.New(rand.NewSource(707))
	inputs := genInputs(rng, 4, 200)
	for _, algo := range Algorithms {
		for _, streaming := range []bool{false, true} {
			base := Config{Algorithm: algo, Seed: 23, StreamingMerge: streaming, ParMergeMin: 1}
			base.Cores = 1
			want, err := Sort(inputs, base)
			if err != nil {
				t.Fatalf("%v cores=1: %v", algo, err)
			}
			for _, w := range widths[1:] {
				label := fmt.Sprintf("%v streaming=%v parmerge cores=%d", algo, streaming, w)
				cfg := base
				cfg.Cores = w
				got, err := Sort(inputs, cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				equalFragments(t, label, want, got)
				if coreInvariant(want.Stats) != coreInvariant(got.Stats) {
					t.Fatalf("%s: statistics differ from sequential:\ncores=1: %+v\ncores=%d: %+v",
						label, want.Stats, w, got.Stats)
				}
			}
		}
	}
}

// TestCoresDeterminismParMergeLarge crosses the DEFAULT parallel-merge
// threshold (no override: each PE receives well over merge.DefaultParMin
// strings) under both merge front-ends, so the production configuration of
// the partitioned merge — selection, reseeded partitions, streaming
// handoff — is exercised end to end with width-invariant results.
func TestCoresDeterminismParMergeLarge(t *testing.T) {
	const p, nPerPE = 4, 5000
	inputs := make([][][]byte, p)
	for pe := range inputs {
		inputs[pe] = input.Random(nPerPE, 24, 2, pe, p, int64(800+pe))
	}
	for _, streaming := range []bool{false, true} {
		base := Config{Algorithm: MS, Seed: 37, Cores: 1, StreamingMerge: streaming}
		want, err := Sort(inputs, base)
		if err != nil {
			t.Fatalf("streaming=%v cores=1: %v", streaming, err)
		}
		for _, w := range []int{2, 8} {
			label := fmt.Sprintf("MS large streaming=%v cores=%d", streaming, w)
			cfg := base
			cfg.Cores = w
			got, err := Sort(inputs, cfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			equalFragments(t, label, want, got)
			if coreInvariant(want.Stats) != coreInvariant(got.Stats) {
				t.Fatalf("%s: statistics differ:\ncores=1: %+v\ncores=%d: %+v",
					label, want.Stats, w, got.Stats)
			}
		}
	}
}

// TestCoresDeterminismLargeSort crosses strsort's parallel-sort threshold
// (inputs big enough that the Step-1 chunked radix and forked multikey
// quicksort actually engage) and requires the same width invariance on the
// LCP-producing algorithm with the most seams (MS: LCP compression,
// LCP-aware merge, split-phase exchange).
func TestCoresDeterminismLargeSort(t *testing.T) {
	const p, nPerPE = 4, 5000 // ≥ strsort's parSortMin per PE
	inputs := make([][][]byte, p)
	for pe := range inputs {
		inputs[pe] = input.Random(nPerPE, 24, 2, pe, p, int64(700+pe))
	}
	base := Config{Algorithm: MS, Seed: 31, Cores: 1}
	want, err := Sort(inputs, base)
	if err != nil {
		t.Fatalf("cores=1: %v", err)
	}
	cfg := base
	cfg.Cores = 8
	got, err := Sort(inputs, cfg)
	if err != nil {
		t.Fatalf("cores=8: %v", err)
	}
	equalFragments(t, "MS large", want, got)
	if coreInvariant(want.Stats) != coreInvariant(got.Stats) {
		t.Fatalf("MS large: statistics differ:\ncores=1: %+v\ncores=8: %+v",
			want.Stats, got.Stats)
	}
}
