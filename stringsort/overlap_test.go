package stringsort

import (
	"math/rand"
	"testing"

	"dss/internal/input"
)

// TestBlockingExchangeMatchesSplitPhase is the end-to-end differential of
// the split-phase refactor: for every algorithm, the default overlapped
// Step-3→Step-4 seam must produce byte-identical output and bit-identical
// deterministic statistics (model time, bytes/string, per-phase counters —
// everything the Fig4/Fig5 benches report) compared to the bulk-synchronous
// seam, which reproduces the pre-refactor behavior.
func TestBlockingExchangeMatchesSplitPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	inputs := genInputs(rng, 4, 140)
	for _, algo := range Algorithms {
		base := Config{Algorithm: algo, Seed: 31, Validate: true, Reconstruct: true}

		cfgBlock := base
		cfgBlock.BlockingExchange = true
		resBlock, err := Sort(inputs, cfgBlock)
		if err != nil {
			t.Fatalf("%v blocking: %v", algo, err)
		}

		cfgSplit := base
		resSplit, err := Sort(inputs, cfgSplit)
		if err != nil {
			t.Fatalf("%v split-phase: %v", algo, err)
		}

		if !equalOutputs(sortOutputs(resBlock), sortOutputs(resSplit)) {
			t.Fatalf("%v: split-phase output differs from blocking output", algo)
		}
		if deterministic(resBlock.Stats) != deterministic(resSplit.Stats) {
			t.Fatalf("%v: statistics differ across seam modes:\nblocking: %+v\nsplit:    %+v",
				algo, resBlock.Stats, resSplit.Stats)
		}
		if resBlock.Stats.OverlapMS != 0 {
			t.Fatalf("%v: blocking seam reported %.3f ms overlap; must be zero",
				algo, resBlock.Stats.OverlapMS)
		}
	}
}

// TestSplitPhaseReportsOverlap is the acceptance assertion of the overlap
// model: the split-phase seam must measure overlap-ms > 0 — communication
// time hidden under the decode of runs that arrived earlier. The overlap
// span honestly ends at the LAST ARRIVAL, so a perfectly balanced workload
// on the instant in-process transport can legitimately report ~0; the test
// therefore skews the per-PE input sizes heavily. The slow PEs encode and
// post their buckets long after the fast PEs posted theirs, and the fast
// PEs decode the runs that already landed while the stragglers' buckets
// are still in flight — exactly the wall-clock win the refactor exists
// for, and decode of thousands of strings is far above clock resolution.
func TestSplitPhaseReportsOverlap(t *testing.T) {
	const p, length = 4, 64
	sizes := []int{500, 1000, 4000, 8000} // heavy straggler skew
	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.Random(sizes[pe], length, 26, pe, p, 99)
	}
	for _, algo := range []Algorithm{MS, PDMS} {
		// The measurement depends on real goroutine timing, so a pathological
		// scheduler (single-core CI under -race) could serialize one run into
		// zero measured overlap; a few attempts make that vanishingly
		// unlikely without weakening the assertion. The scheduler-proof
		// anchor of the same invariant is comm's
		// TestOverlapCreditedForHiddenComm.
		ok := false
		for attempt := 0; attempt < 5 && !ok; attempt++ {
			res, err := Sort(inputs, Config{Algorithm: algo, Seed: 7})
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			if res.Stats.WallMS <= 0 {
				t.Fatalf("%v: no wall spans measured", algo)
			}
			ok = res.Stats.OverlapMS > 0
		}
		if !ok {
			t.Fatalf("%v: split-phase exchange hid no communication in any attempt; "+
				"the Step-3 exchange is not overlapping Step-4 decoding", algo)
		}
	}
}
