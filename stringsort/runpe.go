package stringsort

import (
	"fmt"
	"os"

	"dss/internal/comm"
	"dss/internal/core"
	"dss/internal/par"
	"dss/internal/stats"
	"dss/internal/trace"
	"dss/internal/transport"
	"dss/internal/transport/chaos"
	"dss/internal/transport/codec"
	"dss/internal/verify"
)

// Reserved tag namespaces of the run's coordination collectives. The
// algorithms use GroupID 1 (and neighbors); reconstruction/validation use
// 900–902 as in Sort; the stats exchange stays clear of both.
const (
	statsGID  = 980
	extentGID = 981
	// traceGID gathers the per-process trace buffers AFTER the stats
	// exchange, so its traffic never reaches the reported deterministic
	// counters (AllgatherReport snapshots on entry).
	traceGID = 982
)

// PERun is one PE's share of a distributed sorting run executed with RunPE.
type PERun struct {
	// Output is this PE's fragment of the globally sorted sequence.
	Output PEOutput
	// Stats are the machine-wide run statistics, identical on every PE
	// (the per-PE counters are exchanged after sorting; that exchange is
	// excluded from the counters, so the numbers are bit-identical to an
	// in-process Sort of the same input).
	Stats Stats
	// PrefixOnly reports that Output.Strings holds distinguishing prefixes
	// (PDMS without Reconstruct).
	PrefixOnly bool
}

// RunPE executes one PE's share of a distributed sort in SPMD style: every
// rank of the fabric calls RunPE with the same Config and its local input
// fragment, typically from its own OS process over a TCP endpoint
// (transport/tcp.Connect; see cmd/dss-worker). It is the multi-process
// counterpart of Sort — Sort(inputs, cfg) is equivalent to RunPE on every
// rank of an in-process fabric with local = inputs[rank].
//
// The caller keeps ownership of the endpoint: RunPE does not close it, so
// several runs can reuse one fabric. Config.P must be zero or equal the
// fabric size; Config.Transport and Config.TCPPeers are ignored (the
// endpoint already embodies that choice). Config.Codec is honored: RunPE
// decorates the endpoint with the wire codec exactly like Sort decorates
// its fabric, so every rank of an SPMD job must be launched with the same
// codec (the frames are self-describing, but mixed configs would compress
// only part of the traffic).
func RunPE(t transport.Transport, local [][]byte, cfg Config) (*PERun, error) {
	if cfg.P != 0 && cfg.P != t.P() {
		return nil, fmt.Errorf("stringsort: Config.P=%d but fabric has %d PEs", cfg.P, t.P())
	}
	// Chaos sits directly on the backend, under the codec, so injected
	// faults hit the exact post-codec wire frames — the same stacking order
	// Sort builds via wrapChaos/wrapCodec. RunPE owns the decorator (the
	// caller owns only the inner endpoint), so it must be drained on every
	// return path: a delayed frame still queued when the caller closes the
	// endpoint would be delivered into a closed transport.
	if cfg.Chaos != "" {
		ccfg, err := chaos.Parse(cfg.Chaos)
		if err != nil {
			return nil, err
		}
		ccfg.Seed = cfg.ChaosSeed
		ce := chaos.Wrap(t, ccfg)
		defer ce.Drain()
		t = ce
	}
	if name, err := codec.Parse(cfg.Codec); err != nil {
		return nil, err
	} else if name != "none" {
		wrapped, err := codec.Wrap(t, codec.Config{Name: name, MinSize: cfg.CodecMinSize})
		if err != nil {
			return nil, err
		}
		t = wrapped
	}
	c := comm.NewComm(t)
	c.SetPool(par.New(cfg.Cores))
	if cfg.Trace != "" || trace.LiveOn() {
		c.SetTrace(trace.New(c.Rank(), cfg.TraceCapacity))
	}
	// Budget mode: this rank streams its merged fragment to a sorted-run
	// file in a fresh directory under cfg.SpillDir (each worker process
	// makes its own). The directory survives on success for the caller to
	// read; every error path below tears it down.
	var res core.Result
	var runDir string
	if cfg.MemBudget > 0 {
		var err error
		runDir, err = os.MkdirTemp(cfg.SpillDir, "dss-runs-")
		if err != nil {
			return nil, fmt.Errorf("stringsort: run dir: %w", err)
		}
		res, err = runBudget(c, local, cfg, runPath(runDir, c.Rank()))
		if err != nil {
			os.RemoveAll(runDir)
			return nil, err
		}
	} else {
		res = dispatch(c, local, cfg, nil, nil)
	}

	// Snapshot and exchange the sorting statistics before any
	// post-processing communication (validation, reconstruction), exactly
	// like Sort. AllgatherReport snapshots each PE's counters on entry, so
	// its own traffic is excluded.
	model := stats.DefaultModel()
	if cfg.Model != nil {
		model = *cfg.Model
	}
	rep := comm.AllgatherReport(c, model, statsGID)
	g := comm.NewGroup(c, comm.WorldRanks(t.P()), extentGID)
	_, n := g.ExscanUint64(uint64(len(local)))
	st := statsFromReport(rep, int64(n))

	prefixOnly := res.PrefixOnly
	if prefixOnly && cfg.Reconstruct && cfg.MemBudget == 0 {
		res.Strings = core.Reconstruct(c, res, local, 900)
		res.LCPs = nil // prefix LCPs do not apply to full strings
		res.PrefixOnly = false
		prefixOnly = false
	}

	if cfg.Validate {
		if cfg.MemBudget > 0 {
			if err := validateRun(c, runPath(runDir, c.Rank()), local, prefixOnly); err != nil {
				os.RemoveAll(runDir)
				return nil, err
			}
		} else {
			if err := verify.SortednessLCP(c, res.Strings, res.LCPs, 901); err != nil {
				return nil, err
			}
			if !prefixOnly {
				if err := verify.Multiset(c, local, res.Strings, 902); err != nil {
					return nil, err
				}
			}
		}
	}

	// Gather and export the timeline last: strictly after AllgatherReport
	// (so the gather's traffic never reaches the reported deterministic
	// counters) and after validation/reconstruction so those rounds appear
	// on it. Collective — every rank participates, rank 0 writes the file
	// with all buffers aligned to its clock.
	if cfg.Trace != "" {
		bufs := comm.GatherTrace(c, c.Trace(), traceGID)
		if c.Rank() == 0 {
			if err := trace.WriteFile(cfg.Trace, bufs); err != nil {
				return nil, fmt.Errorf("stringsort: trace: %w", err)
			}
		}
	}

	out := &PERun{Stats: st, PrefixOnly: prefixOnly}
	out.Output = PEOutput{Strings: res.Strings, LCPs: res.LCPs}
	if res.Origins != nil {
		out.Output.Origins = make([]Origin, len(res.Origins))
		for i, o := range res.Origins {
			out.Output.Origins[i] = Origin{PE: int(o.PE), Index: int(o.Index)}
		}
	}
	if cfg.MemBudget > 0 {
		out.Output.RunFile = runPath(runDir, c.Rank())
		out.Output.RunCount = res.Drained
	}
	return out, nil
}
