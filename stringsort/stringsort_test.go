package stringsort

import (
	"math/rand"
	"sort"
	"testing"

	"dss/internal/input"
	"dss/internal/strutil"
)

func genInputs(rng *rand.Rand, p, nPerPE int) [][][]byte {
	inputs := make([][][]byte, p)
	for pe := range inputs {
		inputs[pe] = input.Random(nPerPE, 18, 3, pe, p, rng.Int63())
	}
	return inputs
}

func flatten(inputs [][][]byte) [][]byte {
	var all [][]byte
	for _, in := range inputs {
		all = append(all, in...)
	}
	return all
}

func TestSortAllAlgorithmsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, algo := range Algorithms {
		inputs := genInputs(rng, 6, 150)
		res, err := Sort(inputs, Config{
			Algorithm:   algo,
			Seed:        7,
			Validate:    true,
			Reconstruct: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		var concat [][]byte
		for _, pe := range res.PEs {
			concat = append(concat, pe.Strings...)
		}
		if !strutil.IsSorted(concat) {
			t.Fatalf("%v: output not globally sorted", algo)
		}
		if strutil.MultisetHash(concat) != strutil.MultisetHash(flatten(inputs)) {
			t.Fatalf("%v: output not a permutation", algo)
		}
		if res.Stats.BytesSent <= 0 || res.Stats.ModelTime <= 0 {
			t.Fatalf("%v: missing statistics: %+v", algo, res.Stats)
		}
	}
}

func TestSortStringsConvenience(t *testing.T) {
	words := []string{"pear", "apple", "fig", "banana", "apple", "date", ""}
	got, err := SortStrings(words, Config{P: 3, Algorithm: PDMS})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string{}, words...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d strings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPDMSPrefixOnlyWithoutReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	inputs := genInputs(rng, 4, 100)
	res, err := Sort(inputs, Config{Algorithm: PDMS, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PrefixOnly {
		t.Fatal("PDMS result without Reconstruct must be PrefixOnly")
	}
	for pe, out := range res.PEs {
		if len(out.Origins) != len(out.Strings) {
			t.Fatalf("PE %d: origins missing", pe)
		}
	}
}

func TestValidateCatchesNothingOnGoodRuns(t *testing.T) {
	// Validation across several p values including p > fragments.
	rng := rand.New(rand.NewSource(103))
	inputs := genInputs(rng, 3, 80)
	res, err := Sort(inputs, Config{P: 5, Algorithm: MS, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PEs) != 5 {
		t.Fatalf("got %d fragments", len(res.PEs))
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("pdms-golomb"); err != nil {
		t.Fatal("case-insensitive parse failed")
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Sort(nil, Config{}); err == nil {
		t.Fatal("zero PEs accepted")
	}
	if _, err := Sort(make([][][]byte, 4), Config{P: 2}); err == nil {
		t.Fatal("more fragments than PEs accepted")
	}
}

func TestTieBreakBalancesDuplicatesEndToEnd(t *testing.T) {
	p := 6
	inputs := make([][][]byte, p)
	for pe := range inputs {
		for j := 0; j < 200; j++ {
			inputs[pe] = append(inputs[pe], []byte("same-everywhere"))
		}
	}
	run := func(tie bool) int {
		res, err := Sort(inputs, Config{Algorithm: MS, TieBreak: tie, Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		m := 0
		for _, pe := range res.PEs {
			if len(pe.Strings) > m {
				m = len(pe.Strings)
			}
		}
		return m
	}
	if plain := run(false); plain < 1000 {
		t.Fatalf("plain MS balanced all-equal input unexpectedly: %d", plain)
	}
	if tie := run(true); tie > 2*200 {
		t.Fatalf("tie-break fragment %d of 1200", tie)
	}
}

func TestRandomSamplingConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	inputs := genInputs(rng, 4, 200)
	res, err := Sort(inputs, Config{Algorithm: MS, RandomSampling: true, Seed: 3, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PEs) != 4 {
		t.Fatal("wrong PE count")
	}
}

func TestEstimateDNSuggestsByWorkload(t *testing.T) {
	p := 4
	// Suffix-like tiny-D workload.
	small := make([][][]byte, p)
	for pe := range small {
		small[pe] = input.SuffixInstance(input.SuffixConfig{TextLen: 2000, Seed: 9}, pe, p)
	}
	est, err := EstimateDN(small, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Suggested != PDMS {
		t.Fatalf("tiny-D workload suggested %v, want PDMS (est %.1f)", est.Suggested, est.AvgDist)
	}
	// D ≈ N workload.
	big := make([][][]byte, p)
	for pe := range big {
		big[pe] = input.DN(input.DNConfig{StringsPerPE: 500, Length: 80, Ratio: 1, Seed: 9}, pe, p)
	}
	est, err = EstimateDN(big, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Suggested != MS {
		t.Fatalf("D≈N workload suggested %v, want MS (est %.1f)", est.Suggested, est.AvgDist)
	}
}

func TestStatsOrderingAcrossAlgorithms(t *testing.T) {
	// On a small-D workload the volume ordering of the paper must hold:
	// PDMS < MS < MS-simple.
	p := 8
	inputs := make([][][]byte, p)
	for pe := range inputs {
		inputs[pe] = input.DN(input.DNConfig{
			StringsPerPE: 300, Length: 120, Ratio: 0.25, Seed: 5,
		}, pe, p)
	}
	vol := map[Algorithm]int64{}
	for _, algo := range []Algorithm{MSSimple, MS, PDMS} {
		res, err := Sort(inputs, Config{Algorithm: algo, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		vol[algo] = res.Stats.BytesSent
	}
	if !(vol[PDMS] < vol[MS] && vol[MS] < vol[MSSimple]) {
		t.Fatalf("volume ordering violated: PDMS=%d MS=%d MS-simple=%d",
			vol[PDMS], vol[MS], vol[MSSimple])
	}
}
