#!/usr/bin/env bash
# bench.sh — run the paper-figure benchmarks and snapshot the results.
#
# Runs BenchmarkFig4/BenchmarkFig5* (and optionally any extra -bench
# pattern) with -benchmem, then converts the output into a JSON snapshot
# BENCH_<date>.json at the repository root, so the performance trajectory
# of the repo is recorded PR over PR.
#
# Every b.ReportMetric unit becomes a JSON column automatically (unit name
# sanitized: "model-ms" -> model_ms, "bytes/str" -> bytes_per_str,
# "wire-bytes/str" -> wire_bytes_per_str, "compression-x" ->
# compression_x, "overlap-ms" -> overlap_ms). model_ms and bytes_per_str
# are deterministic and codec-invariant; wire_bytes_per_str and
# compression_x record what the selected wire codec actually put on the
# fabric (equal to bytes_per_str / 1.0 without one); overlap_ms is the
# measured wall-clock communication time the split-phase Step-3 exchange
# hid under Step-4 decoding; merge_cpu_ms is the PE-summed CPU time inside
# the Step-4 merge (exceeding the merge wall time proves the partitioned
# merge ran in parallel) and merge_speedup_x the merge phase's wall-clock
# speedup over the same run forced to cores=1; peak_mem_bytes is the
# bottleneck PE's peak metered live arena bytes and spill_bytes the
# machine-wide out-of-core traffic (page-file writes + read-backs, 0
# without a budget) — both measured, like overlap_ms.
#
# BENCH_CODEC decorates the benchmark transports with a wire codec
# (none/flate/lcp). BENCH_CORES sets the intra-PE work pool width (0 =
# GOMAXPROCS); the snapshot metadata records the requested width alongside
# gomaxprocs and host_cpus so a speedup_x column can always be read in
# context. BENCH_MEMBUDGET runs every benchmark through the bounded-memory
# out-of-core pipeline (e.g. 64k, 1m; empty = unbounded in-RAM) — the
# model columns are budget-invariant, while peak_mem_bytes and spill_bytes
# record what the budget cost. BENCH_BASELINE compares the fresh
# snapshot's model columns against an earlier BENCH_*.json and fails on
# any drift — run it with a codec, a pool width or a budget to prove the
# paper's numbers don't move:
#
#   BENCH_CODEC=flate BENCH_BASELINE=BENCH_2026-07-30.json scripts/bench.sh
#   BENCH_CORES=4 BENCH_BASELINE=BENCH_2026-07-30.json BENCH_OUT=/tmp/b.json scripts/bench.sh
#   BENCH_MEMBUDGET=64k BENCH_BASELINE=BENCH_2026-07-30.json BENCH_OUT=/tmp/b.json scripts/bench.sh
#
# Usage:
#   scripts/bench.sh                 # Fig4 + Fig5, benchtime 3x
#   BENCHTIME=10x scripts/bench.sh   # more iterations
#   BENCH_PATTERN='BenchmarkFig4' scripts/bench.sh
#   BENCH_OUT=BENCH_custom.json scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkFig4|BenchmarkFig5}"
BENCHTIME="${BENCHTIME:-3x}"
CODEC="${BENCH_CODEC:-none}"
CORES="${BENCH_CORES:-0}"
MEMBUDGET="${BENCH_MEMBUDGET:-}"
BASELINE="${BENCH_BASELINE:-}"
HOST_CPUS="$(getconf _NPROCESSORS_ONLN)"
DATE="$(date +%Y-%m-%d)"
OUT="${BENCH_OUT:-BENCH_${DATE}.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Refuse to clobber the baseline we are about to compare against (easy to
# hit: the default OUT is BENCH_<today>.json, which IS the baseline when
# rechecking a snapshot taken the same day — the comparison would then
# vacuously pass against itself).
if [ -n "$BASELINE" ] && [ "$(readlink -f "$OUT" 2>/dev/null || echo "$OUT")" = "$(readlink -f "$BASELINE" 2>/dev/null || echo "$BASELINE")" ]; then
    echo "BENCH_BASELINE ($BASELINE) and the output snapshot ($OUT) are the same file; set BENCH_OUT elsewhere" >&2
    exit 1
fi

echo "running: DSS_BENCH_CODEC=$CODEC DSS_BENCH_CORES=$CORES DSS_BENCH_MEMBUDGET=$MEMBUDGET go test -run '^$' -bench '$PATTERN' -benchmem -benchtime $BENCHTIME ." >&2
DSS_BENCH_CODEC="$CODEC" DSS_BENCH_CORES="$CORES" DSS_BENCH_MEMBUDGET="$MEMBUDGET" go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

# The execution-shape metadata makes the measured columns (speedup_x,
# overlap_ms) readable in context: cores is the requested intra-PE pool
# width (0 = GOMAXPROCS), gomaxprocs is the test binary's actual value
# (parsed from the -N benchmark name suffix), host_cpus the machine size.
awk -v date="$DATE" -v benchtime="$BENCHTIME" -v codec="$CODEC" \
    -v cores="$CORES" -v hostcpus="$HOST_CPUS" -v membudget="$MEMBUDGET" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"codec\": \"%s\",\n", date, benchtime, codec
    gomaxprocs = 1  # the -N name suffix is omitted when GOMAXPROCS is 1
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    if (match(name, /-[0-9]+$/))  # the -GOMAXPROCS suffix
        gomaxprocs = substr(name, RSTART + 1, RLENGTH - 1) + 0
    sub(/-[0-9]+$/, "", name)
    iters = $2
    line = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        key = unit
        gsub(/\//, "_per_", key)
        gsub(/[^A-Za-z0-9_]/, "_", key)
        line = line sprintf(", \"%s\": %s", key, val)
    }
    results[++n] = sprintf("    {\"name\": \"%s\", \"iters\": %s%s}", name, iters, line)
}
END {
    printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu
    printf "  \"cores\": %d,\n  \"gomaxprocs\": %d,\n  \"host_cpus\": %d,\n", cores, gomaxprocs, hostcpus
    printf "  \"mem_budget\": \"%s\",\n", membudget
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", results[i], (i < n ? "," : "")
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2

# Baseline comparison: the deterministic model columns (model_ms,
# bytes_per_str) must be bit-identical per benchmark to the baseline
# snapshot — they are codec-invariant by construction, so any drift is an
# algorithmic change, not wire compression.
if [ -n "$BASELINE" ]; then
    awk '
    function key(line) {
        match(line, /"name": "[^"]*"/)
        return substr(line, RSTART + 9, RLENGTH - 10)
    }
    function model(line,    m) {
        m = ""
        if (match(line, /"model_ms": [^,}]*/))      m = m "|" substr(line, RSTART + 12, RLENGTH - 12)
        if (match(line, /"bytes_per_str": [^,}]*/)) m = m "|" substr(line, RSTART + 17, RLENGTH - 17)
        return m
    }
    /"name"/ {
        if (NR == FNR) { base[key($0)] = model($0); next }
        total++
        k = key($0)
        if (!(k in base))            { bad++; printf "MISSING in baseline: %s\n", k; next }
        if (base[k] != model($0))    { bad++; printf "DRIFT %s: %s -> %s\n", k, base[k], model($0); next }
        ok++
    }
    END {
        printf "%d/%d model metrics bit-identical to baseline\n", ok, total
        exit (bad > 0 || total == 0)
    }' "$BASELINE" "$OUT" >&2
fi
