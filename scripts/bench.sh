#!/usr/bin/env bash
# bench.sh — run the paper-figure benchmarks and snapshot the results.
#
# Runs BenchmarkFig4/BenchmarkFig5* (and optionally any extra -bench
# pattern) with -benchmem, then converts the output into a JSON snapshot
# BENCH_<date>.json at the repository root, so the performance trajectory
# of the repo is recorded PR over PR.
#
# Every b.ReportMetric unit becomes a JSON column automatically (unit name
# sanitized: "model-ms" -> model_ms, "bytes/str" -> bytes_per_str,
# "overlap-ms" -> overlap_ms). model_ms and bytes_per_str are
# deterministic; overlap_ms is the measured wall-clock communication time
# the split-phase Step-3 exchange hid under Step-4 decoding.
#
# Usage:
#   scripts/bench.sh                 # Fig4 + Fig5, benchtime 3x
#   BENCHTIME=10x scripts/bench.sh   # more iterations
#   BENCH_PATTERN='BenchmarkFig4' scripts/bench.sh
#   BENCH_OUT=BENCH_custom.json scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkFig4|BenchmarkFig5}"
BENCHTIME="${BENCHTIME:-3x}"
DATE="$(date +%Y-%m-%d)"
OUT="${BENCH_OUT:-BENCH_${DATE}.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running: go test -run '^$' -bench '$PATTERN' -benchmem -benchtime $BENCHTIME ." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

awk -v date="$DATE" -v benchtime="$BENCHTIME" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"%s\",\n", date, benchtime
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    iters = $2
    line = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        key = unit
        gsub(/\//, "_per_", key)
        gsub(/[^A-Za-z0-9_]/, "_", key)
        line = line sprintf(", \"%s\": %s", key, val)
    }
    results[++n] = sprintf("    {\"name\": \"%s\", \"iters\": %s%s}", name, iters, line)
}
END {
    printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu
    printf "  \"results\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", results[i], (i < n ? "," : "")
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2
