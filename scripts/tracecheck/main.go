// Command tracecheck validates a Chrome trace-event JSON file written by
// the -trace flag: the document must parse, and every PE of the run must
// show all five algorithm phase spans (local_sort, dup_detect, partition,
// exchange, merge) on its control track. The CI trace smoke runs it
// against a 4-PE dss-sort timeline.
//
// Usage:
//
//	tracecheck -pes 4 trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type traceDoc struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		PID  int    `json:"pid"`
		TID  int    `json:"tid"`
	} `json:"traceEvents"`
}

var requiredPhases = []string{"local_sort", "dup_detect", "partition", "exchange", "merge"}

func main() {
	pes := flag.Int("pes", 0, "require all five phase spans for PEs 0..pes-1 (0 = only validate JSON)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-pes N] trace.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s is not valid trace JSON: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	if len(doc.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "tracecheck: %s holds no events\n", flag.Arg(0))
		os.Exit(1)
	}
	// Phase spans live on the control track (tid 0) as B events.
	spans := make(map[int]map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "B" || ev.TID != 0 {
			continue
		}
		if spans[ev.PID] == nil {
			spans[ev.PID] = make(map[string]bool)
		}
		spans[ev.PID][ev.Name] = true
	}
	bad := false
	for pe := 0; pe < *pes; pe++ {
		for _, name := range requiredPhases {
			if !spans[pe][name] {
				fmt.Fprintf(os.Stderr, "tracecheck: PE %d has no %q phase span\n", pe, name)
				bad = true
			}
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s ok — %d events, %d PEs with full phase coverage\n",
		flag.Arg(0), len(doc.TraceEvents), len(spans))
}
