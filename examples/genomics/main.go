// Genomics sorts a synthetic DNA read set (the paper's DNAREADS scenario:
// preprocessing for genome assembly or index construction) with Algorithm
// MS, then uses the LCP arrays that the sorter produces for free to
// deduplicate reads and to find highly covered regions — both are
// adjacency scans over the sorted order, no further comparisons needed.
//
// Run with: go run ./examples/genomics
package main

import (
	"fmt"
	"log"

	"dss/internal/input"
	"dss/stringsort"
)

func main() {
	const p = 4
	const readsPerPE = 3000

	inputs := make([][][]byte, p)
	for pe := 0; pe < p; pe++ {
		inputs[pe] = input.DNAReads(input.DNAConfig{
			ReadsPerPE: readsPerPE,
			Seed:       42,
		}, pe, p)
	}

	res, err := stringsort.Sort(inputs, stringsort.Config{
		Algorithm: stringsort.MS,
		Validate:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Deduplication: a read equals its predecessor iff the LCP covers the
	// whole read. Fragment boundaries are handled by carrying the last
	// read across (fragments are globally ordered).
	var prev []byte
	reads, uniques := 0, 0
	maxRun, curRun := 1, 1
	var maxRead []byte
	longLCP := 0 // reads sharing ≥ 30 chars with their predecessor
	for _, frag := range res.PEs {
		for i, s := range frag.Strings {
			reads++
			var h int
			if i == 0 {
				h = lcp(prev, s)
			} else {
				h = int(frag.LCPs[i])
			}
			if prev != nil && h == len(s) && h == len(prev) {
				curRun++
				if curRun > maxRun {
					maxRun = curRun
					maxRead = s
				}
			} else {
				uniques++
				curRun = 1
			}
			if h >= 30 {
				longLCP++
			}
			prev = s
		}
	}

	fmt.Printf("reads:             %d (length %d, alphabet ACGT)\n", reads, len(prev))
	fmt.Printf("unique reads:      %d (%.1f%% duplicates)\n",
		uniques, 100*float64(reads-uniques)/float64(reads))
	fmt.Printf("deepest duplicate: %d copies of %.30s...\n", maxRun, maxRead)
	fmt.Printf("overlap candidates (LCP ≥ 30): %d\n", longLCP)
	fmt.Printf("\nsort statistics: %.1f bytes/read sent, model time %.4f s\n",
		res.Stats.BytesPerString, res.Stats.ModelTime)
}

func lcp(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}
