// Paperwalkthrough reproduces Figures 2 and 3 of the paper on their
// example strings: it runs Algorithm MS and Algorithm PDMS on the same
// twelve strings over three PEs and renders the outputs the way the paper
// draws them — characters covered by LCP compression shown as "-", and the
// characters PDMS never transmits shown as "·".
//
// Run with: go run ./examples/paperwalkthrough [-algo ms|pdms]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"dss/stringsort"
)

// The per-PE inputs of Figure 2.
var inputs = [][][]byte{
	{[]byte("alpha"), []byte("order"), []byte("alps"), []byte("algae")},
	{[]byte("sorter"), []byte("snow"), []byte("algo"), []byte("sorbet")},
	{[]byte("sorted"), []byte("orange"), []byte("soul"), []byte("organ")},
}

func main() {
	algo := flag.String("algo", "both", "ms, pdms or both")
	flag.Parse()

	if *algo == "ms" || *algo == "both" {
		walkthroughMS()
	}
	if *algo == "pdms" || *algo == "both" {
		walkthroughPDMS()
	}
}

func walkthroughMS() {
	fmt.Println("=== Figure 2: Algorithm MS on the example strings ===")
	printInputs()

	res, err := stringsort.Sort(inputs, stringsort.Config{
		Algorithm: stringsort.MS,
		Validate:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nStep 4 result: merged fragments with LCP arrays.")
	fmt.Println("Characters shown as '-' were never retransmitted within a")
	fmt.Println("sorted run thanks to LCP compression (Step 3):")
	for pe, frag := range res.PEs {
		fmt.Printf("  PE %d:\n", pe)
		for i, s := range frag.Strings {
			h := 0
			if i > 0 && frag.LCPs != nil {
				h = int(frag.LCPs[i])
			}
			fmt.Printf("    %s%s\n", strings.Repeat("-", h), s[h:])
		}
	}
	fmt.Printf("\ncommunication: %.1f bytes per string\n", res.Stats.BytesPerString)
}

func walkthroughPDMS() {
	fmt.Println("\n=== Figure 3: Algorithm PDMS on the example strings ===")
	printInputs()

	res, err := stringsort.Sort(inputs, stringsort.Config{
		Algorithm: stringsort.PDMS,
		// Start the doubling at 2 characters so the example shows several
		// rounds like the figure (depth 1, 2, 4, 8).
		Eps:      1,
		Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reconstruct the full strings to show what PDMS did NOT transmit.
	full, err := stringsort.Sort(inputs, stringsort.Config{
		Algorithm:   stringsort.PDMS,
		Eps:         1,
		Reconstruct: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nStep 3+4 result: only the approximate distinguishing")
	fmt.Println("prefixes travel; characters shown as '·' stayed at home:")
	for pe := range res.PEs {
		fmt.Printf("  PE %d:\n", pe)
		for i, prefix := range res.PEs[pe].Strings {
			whole := full.PEs[pe].Strings[i]
			omitted := len(whole) - len(prefix)
			fmt.Printf("    %s%s   (from PE %d)\n",
				prefix, strings.Repeat("·", omitted), res.PEs[pe].Origins[i].PE)
		}
	}
	fmt.Printf("\ncommunication: %.1f bytes per string (vs %d-char strings)\n",
		res.Stats.BytesPerString, len("sorter"))
}

func printInputs() {
	fmt.Println("input:")
	for pe, ss := range inputs {
		var words []string
		for _, s := range ss {
			words = append(words, string(s))
		}
		fmt.Printf("  PE %d: %s\n", pe, strings.Join(words, " "))
	}
}
