// Quickstart: sort a small string set on a simulated 4-PE machine with
// Algorithm MS and print the globally sorted result, the LCP arrays and
// the communication statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dss/stringsort"
)

func main() {
	// The strings of Figure 2 of the paper, distributed over 3 PEs.
	inputs := [][][]byte{
		{[]byte("alpha"), []byte("order"), []byte("alps"), []byte("algae")},
		{[]byte("sorter"), []byte("snow"), []byte("algo"), []byte("sorbet")},
		{[]byte("sorted"), []byte("orange"), []byte("soul"), []byte("organ")},
	}

	res, err := stringsort.Sort(inputs, stringsort.Config{
		Algorithm: stringsort.MS,
		Validate:  true, // check sortedness + permutation after the run
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("globally sorted output (fragment per PE, with LCP values):")
	for pe, frag := range res.PEs {
		fmt.Printf("  PE %d:\n", pe)
		for i, s := range frag.Strings {
			lcp := int32(0)
			if frag.LCPs != nil {
				lcp = frag.LCPs[i]
			}
			fmt.Printf("    %-8s lcp=%d\n", s, lcp)
		}
	}
	fmt.Printf("\nmodel time: %.6f s\n", res.Stats.ModelTime)
	fmt.Printf("communication: %d bytes total, %.1f per string\n",
		res.Stats.BytesSent, res.Stats.BytesPerString)
}
