// Algoselect demonstrates the Section VIII application of Theorem 6: pick
// a sorting strategy by estimating D/n from a small gossiped sample before
// committing to a full sort. "A simple application might be to choose an
// algorithm for suffix sorting based on approximations of D — when D/n is
// small, we can use string sorting based algorithms, otherwise, more
// sophisticated algorithms are better."
//
// The program estimates D/n for three very different workloads, lets the
// estimator suggest an algorithm, runs both PDMS and MS, and shows that
// the suggestion picks the cheaper one.
//
// Run with: go run ./examples/algoselect
package main

import (
	"fmt"
	"log"

	"dss/internal/input"
	"dss/stringsort"
)

func main() {
	const p = 4
	workloads := []struct {
		name string
		gen  func(pe int) [][]byte
	}{
		{"suffixes of a text (D ≪ N)", func(pe int) [][]byte {
			return input.SuffixInstance(input.SuffixConfig{TextLen: 6000, Seed: 1}, pe, p)
		}},
		{"DNA reads (D/N ≈ 0.4)", func(pe int) [][]byte {
			return input.DNAReads(input.DNAConfig{ReadsPerPE: 2000, Seed: 1}, pe, p)
		}},
		{"D/N = 0.9 instance (D ≈ N)", func(pe int) [][]byte {
			return input.DN(input.DNConfig{StringsPerPE: 2000, Length: 100, Ratio: 0.9, Seed: 1}, pe, p)
		}},
	}

	for _, w := range workloads {
		inputs := make([][][]byte, p)
		var n, chars int
		for pe := 0; pe < p; pe++ {
			inputs[pe] = w.gen(pe)
			n += len(inputs[pe])
			for _, s := range inputs[pe] {
				chars += len(s)
			}
		}

		est, err := stringsort.EstimateDN(inputs, 300, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", w.name)
		fmt.Printf("  estimated D/n: %.1f chars (avg string %.1f) from %d samples → suggest %v\n",
			est.AvgDist, float64(chars)/float64(n), est.SampleSize, est.Suggested)

		for _, algo := range []stringsort.Algorithm{stringsort.PDMS, stringsort.MS} {
			res, err := stringsort.Sort(inputs, stringsort.Config{Algorithm: algo, Seed: 42})
			if err != nil {
				log.Fatal(err)
			}
			marker := " "
			if algo == est.Suggested {
				marker = "*"
			}
			fmt.Printf("  %s %-12v model time %8.4f s, %8.1f bytes/string\n",
				marker, algo, res.Stats.ModelTime, res.Stats.BytesPerString)
		}
		fmt.Println()
	}
}
